//===- tools/rmld.cpp - The RegionML compile-and-run daemon ---------------===//
//
// Serve the concurrent compile-and-run service over a socket:
//
//   rmld                               loopback, ephemeral port
//   rmld --port 7080                   fixed port
//   rmld --jobs 4 --queue 64           worker pool + admission bound
//   rmld --cache 256 --cache-dir D     warm-start compile cache
//   rmld --sched ljf                   longest-predicted-job-first
//   rmld --sched fair --tenant-default legacy
//                                      per-tenant fair share, untagged
//                                      traffic in the "legacy" bucket
//   rmld --sched deadline --auto-budget
//                                      EDF dequeue + learned budgets
//   curl http://127.0.0.1:PORT/stats   live ServiceStats JSON
//
// Clients speak the length-prefixed binary protocol (net/Protocol.h) —
// bench_traffic is the reference client — or plain HTTP GET for
// /healthz and /stats. SIGINT/SIGTERM begin a graceful drain: stop
// accepting, finish and flush every admitted request, then exit.
//
//===----------------------------------------------------------------------===//

#include "net/Server.h"
#include "service/Service.h"

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

using namespace rml;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: rmld [options]\n"
      "  --bind ADDR            address to listen on (default 127.0.0.1)\n"
      "  --port N               port to listen on; 0 picks an ephemeral\n"
      "                         port and prints it (default 0)\n"
      "  --jobs N               service worker threads (default: one per\n"
      "                         hardware thread)\n"
      "  --queue N              admission queue capacity; a full queue\n"
      "                         sheds requests with an immediate Shed\n"
      "                         response (default 256)\n"
      "  --cache N              compile-cache entries (default 128)\n"
      "  --cache-dir DIR        persistent compile-cache directory\n"
      "  --cache-max-bytes N    disk-cache byte watermark; a background\n"
      "                         sweeper evicts oldest entries past it\n"
      "                         (default 0 = unbounded)\n"
      "  --cache-max-age SECS   disk-cache entry age cut-off (default 0\n"
      "                         = no age limit)\n"
      "  --cache-sweep-ms MS    sweep cadence (default 5000)\n"
      "  --page-pool N          cross-request page-pool pages; 0\n"
      "                         disables pooling (default 1024)\n"
      "  --prewarm-pool         allocate the page pool eagerly\n"
      "  --sched fifo|ljf|deadline|fair\n"
      "                         dequeue policy (default fifo): ljf orders\n"
      "                         by the cost model's predicted nanos,\n"
      "                         deadline is EDF on the request deadline,\n"
      "                         fair is per-tenant deficit round-robin\n"
      "  --fair-quantum N       fair-share DRR quantum in cost units\n"
      "                         (default 1Mi)\n"
      "  --tenant-default NAME  fair-share bucket for requests that sent\n"
      "                         no tenant (default: anonymous bucket)\n"
      "  --phase-budget P=NS    per-phase budget in nanos; repeatable\n"
      "  --auto-budget          derive default phase budgets from the\n"
      "                         cost model's observed distributions once\n"
      "                         enough samples exist (ignored when any\n"
      "                         --phase-budget is given)\n"
      "  --budget-quantile Q    auto-budget quantile (default 0.95)\n"
      "  --budget-multiplier M  auto-budget safety factor (default 8)\n"
      "  --step-limit N         evaluation fuel per run; 0 keeps the\n"
      "                         runtime default\n"
      "  --adaptive-gc          run every execution under the adaptive\n"
      "                         GC policy (same results, adapted pause\n"
      "                         shape)\n"
      "  --gc-pause-budget NS   GC pause-time budget in nanos per run;\n"
      "                         with --adaptive-gc the policy backs\n"
      "                         collection off until pauses fit\n"
      "  --gc-threshold WORDS   collection trigger per run; 0 keeps the\n"
      "                         runtime default (load-testing knob:\n"
      "                         small values make short requests\n"
      "                         collect)\n"
      "  --max-conns N          open-connection bound (default 1024)\n"
      "  --drain-grace MS       grace period for the shutdown drain\n"
      "                         before stragglers are closed "
      "(default 5000)\n");
}

} // namespace

int main(int Argc, char **Argv) {
  // Block the drain signals before any thread exists so the service
  // workers inherit the mask and the loop's signalfd is the only
  // consumer.
  sigset_t DrainSigs;
  sigemptyset(&DrainSigs);
  sigaddset(&DrainSigs, SIGINT);
  sigaddset(&DrainSigs, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &DrainSigs, nullptr);

  service::ServiceConfig SvcCfg;
  net::ServerConfig NetCfg;

  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "rmld: %s needs an argument\n", A);
        std::exit(2);
      }
      return Argv[++I];
    };
    if (!std::strcmp(A, "--bind")) {
      NetCfg.BindAddr = Next();
    } else if (!std::strcmp(A, "--port")) {
      NetCfg.Port = static_cast<uint16_t>(std::strtoul(Next(), nullptr, 10));
    } else if (!std::strcmp(A, "--jobs")) {
      SvcCfg.Workers = static_cast<unsigned>(std::strtoul(Next(), nullptr, 10));
    } else if (!std::strcmp(A, "--queue")) {
      SvcCfg.QueueCapacity = std::strtoull(Next(), nullptr, 10);
    } else if (!std::strcmp(A, "--cache")) {
      SvcCfg.CacheCapacity = std::strtoull(Next(), nullptr, 10);
    } else if (!std::strcmp(A, "--cache-dir")) {
      SvcCfg.CacheDir = Next();
    } else if (!std::strcmp(A, "--cache-max-bytes")) {
      SvcCfg.CacheMaxBytes = std::strtoull(Next(), nullptr, 10);
    } else if (!std::strcmp(A, "--cache-max-age")) {
      SvcCfg.CacheMaxAgeSeconds = std::strtoull(Next(), nullptr, 10);
    } else if (!std::strcmp(A, "--cache-sweep-ms")) {
      SvcCfg.CacheSweepIntervalMillis =
          std::max<uint64_t>(std::strtoull(Next(), nullptr, 10), 1);
    } else if (!std::strcmp(A, "--page-pool")) {
      SvcCfg.PagePoolPages = std::strtoull(Next(), nullptr, 10);
    } else if (!std::strcmp(A, "--prewarm-pool")) {
      SvcCfg.PrewarmPool = true;
    } else if (!std::strcmp(A, "--sched")) {
      const char *S = Next();
      if (!service::parseSchedPolicy(S, SvcCfg.Policy)) {
        std::fprintf(stderr, "rmld: unknown scheduler '%s'\n", S);
        return 2;
      }
    } else if (!std::strcmp(A, "--fair-quantum")) {
      SvcCfg.FairShareQuantum =
          std::max<uint64_t>(std::strtoull(Next(), nullptr, 10), 1);
    } else if (!std::strcmp(A, "--tenant-default")) {
      NetCfg.TenantDefault = Next();
    } else if (!std::strcmp(A, "--auto-budget")) {
      SvcCfg.AutoBudget = true;
    } else if (!std::strcmp(A, "--budget-quantile")) {
      SvcCfg.BudgetQuantile = std::strtod(Next(), nullptr);
    } else if (!std::strcmp(A, "--budget-multiplier")) {
      SvcCfg.BudgetMultiplier = std::strtod(Next(), nullptr);
    } else if (!std::strcmp(A, "--phase-budget")) {
      const char *S = Next();
      const char *Eq = std::strchr(S, '=');
      if (!Eq || Eq == S) {
        std::fprintf(stderr,
                     "rmld: --phase-budget wants PHASE=NANOS, got '%s'\n", S);
        return 2;
      }
      SvcCfg.PhaseBudgets[std::string(S, Eq)] =
          std::strtoull(Eq + 1, nullptr, 10);
    } else if (!std::strcmp(A, "--step-limit")) {
      NetCfg.StepLimit = std::strtoull(Next(), nullptr, 10);
    } else if (!std::strcmp(A, "--adaptive-gc")) {
      NetCfg.AdaptiveGc = true;
    } else if (!std::strcmp(A, "--gc-pause-budget")) {
      NetCfg.GcPauseBudgetNanos = std::strtoull(Next(), nullptr, 10);
    } else if (!std::strcmp(A, "--gc-threshold")) {
      NetCfg.GcThresholdWords = std::strtoull(Next(), nullptr, 10);
    } else if (!std::strcmp(A, "--max-conns")) {
      NetCfg.MaxConnections = std::strtoull(Next(), nullptr, 10);
    } else if (!std::strcmp(A, "--drain-grace")) {
      NetCfg.DrainGraceMs =
          static_cast<unsigned>(std::strtoul(Next(), nullptr, 10));
    } else if (!std::strcmp(A, "--help") || !std::strcmp(A, "-h")) {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "rmld: unknown option '%s'\n", A);
      usage();
      return 2;
    }
  }
  // Service first, Server second: completion callbacks capture the
  // Server, so Service::shutdown() (which finishes every callback) must
  // run before the Server dies — and it does, below, before either
  // object goes out of scope in reverse order.
  service::Service Svc(SvcCfg);
  net::Server Srv(Svc, NetCfg);
  if (!Srv.ok()) {
    std::fprintf(stderr, "rmld: %s\n", Srv.error().c_str());
    return 1;
  }
  if (!Srv.drainOnSignals({SIGINT, SIGTERM})) {
    std::fprintf(stderr, "rmld: cannot route signals to the drain\n");
    return 1;
  }

  std::printf("rmld: listening on %s:%u (workers=%u queue=%zu sched=%s)\n",
              NetCfg.BindAddr.c_str(), static_cast<unsigned>(Srv.port()),
              Svc.config().effectiveWorkers(), SvcCfg.QueueCapacity,
              service::schedPolicyName(SvcCfg.Policy));
  std::fflush(stdout);

  Srv.run();

  // The loop has drained every connection; now drain the service so
  // any ShutdownRejected callbacks fire while the Server is alive.
  Svc.shutdown();

  net::NetStats NS = Srv.stats();
  std::fprintf(stderr,
               "rmld: net accepted=%llu closed=%llu requests=%llu "
               "http=%llu responses=%llu sheds=%llu deadline_sheds=%llu "
               "wait_sheds=%llu "
               "protocol_errors=%llu orphaned=%llu overflows=%llu\n",
               static_cast<unsigned long long>(NS.Accepted),
               static_cast<unsigned long long>(NS.Closed),
               static_cast<unsigned long long>(NS.BinaryRequests),
               static_cast<unsigned long long>(NS.HttpRequests),
               static_cast<unsigned long long>(NS.Responses),
               static_cast<unsigned long long>(NS.Sheds),
               static_cast<unsigned long long>(NS.DeadlineSheds),
               static_cast<unsigned long long>(NS.WaitSheds),
               static_cast<unsigned long long>(NS.ProtocolErrors),
               static_cast<unsigned long long>(NS.OrphanedCompletions),
               static_cast<unsigned long long>(NS.AcceptOverflows));
  std::fprintf(stderr, "rmld: service %s\n", Svc.stats().json().c_str());
  std::printf("rmld: drained, exiting\n");
  return 0;
}
