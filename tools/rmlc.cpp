//===- tools/rmlc.cpp - The RegionML command-line driver ------------------===//
//
// Compile and run MiniML programs from the command line:
//
//   rmlc prog.mml                      compile (rg) and run
//   rmlc --strategy rg-|r prog.mml     the paper's other strategies
//   rmlc --print-program prog.mml      show the region-annotated program
//   rmlc --print-scheme f prog.mml     show f's region type scheme
//   rmlc --captures prog.mml           per-closure captured-region report
//   rmlc --stats prog.mml              heap/GC statistics after the run
//   rmlc --no-run prog.mml             static pipeline only
//   rmlc --spurious identify           scheme (3) instead of scheme (2)
//   rmlc --gc-threshold N              collection trigger (words)
//   rmlc --no-tagfree --no-finite      representation knobs
//   rmlc -e 'expr'                     compile a one-liner
//   rmlc --serve-batch D --jobs 4      compile+run every .mml under D
//                                      through the concurrent service
//   rmlc --time-phases prog.mml        per-phase wall-time table
//   rmlc --trace out.json prog.mml     Chrome trace-event dump
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"

#include "service/Service.h"
#include "smallstep/Step.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <future>
#include <map>
#include <sstream>
#include <string>
#include <vector>

using namespace rml;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: rmlc [options] <file.mml | -e 'program'>\n"
      "  --strategy rg|rg-|r    compilation strategy (default rg)\n"
      "  --spurious fresh|identify\n"
      "                         scheme (2) or scheme (3) for spurious\n"
      "                         type variables (default fresh)\n"
      "  --print-program        print the region-annotated program\n"
      "  --print-scheme NAME    print NAME's region type scheme\n"
      "  --captures             print the per-closure captured-region\n"
      "                         report (value vs latent-effect capture;\n"
      "                         the escaped residue marks regions only\n"
      "                         containment keeps alive — the rg-\n"
      "                         dangling-pointer window)\n"
      "  --stats                print heap/GC statistics\n"
      "  --profile              print region-representation decisions\n"
      "  --no-run               stop after the static pipeline\n"
      "  --smallstep            cross-check the result against the\n"
      "                         paper's formal semantics (pure programs)\n"
      "  --no-check             skip the Figure 4 region type checker\n"
      "  --gc-threshold WORDS   collection trigger (default 32768)\n"
      "  --retain-pages         exact dangling-pointer diagnostics\n"
      "  --generational         minor/major collections ([16,17])\n"
      "  --no-tagfree           disable the tag-free representation\n"
      "  --no-finite            disable finite (exact-size) regions\n"
      "  --adaptive-gc          adapt the GC trigger (and generational\n"
      "                         cadence) to the run's own pause history;\n"
      "                         identical results, adapted pause shape\n"
      "  --gc-pause-budget NS   GC pause-time budget in nanos: overruns\n"
      "                         are counted, and with --adaptive-gc the\n"
      "                         policy collects less often until pauses\n"
      "                         fit\n"
      "  --serve-batch PATHS    compile+run every .mml program named by\n"
      "                         PATHS (comma-separated files and/or\n"
      "                         directories) through the concurrent\n"
      "                         service; prints a per-program line and a\n"
      "                         stats summary\n"
      "  --jobs N               service worker threads (default: one per\n"
      "                         hardware thread)\n"
      "  --cache N              service compile-cache entries "
      "(default 128)\n"
      "  --cache-dir DIR        persistent compile-cache directory: the\n"
      "                         static products of every compile are\n"
      "                         written there (one content-hash-named\n"
      "                         file each) and reused across process\n"
      "                         restarts; safe to share between\n"
      "                         processes (--serve-batch only)\n"
      "  --cache-max-bytes N    disk-cache byte watermark: a background\n"
      "                         sweeper evicts oldest entries until the\n"
      "                         directory fits (0 = unbounded;\n"
      "                         --serve-batch only)\n"
      "  --cache-max-age SECS   disk-cache entry age cut-off (0 = no\n"
      "                         limit; --serve-batch only)\n"
      "  --cache-sweep-ms MS    sweep cadence (default 5000;\n"
      "                         --serve-batch only)\n"
      "  --page-pool N          standard pages the cross-request page\n"
      "                         pool may hold; 0 disables pooling\n"
      "                         (default 1024; --serve-batch only)\n"
      "  --prewarm-pool         allocate the page pool eagerly so the\n"
      "                         first wave runs on recycled pages\n"
      "                         (--serve-batch only)\n"
      "  --sched fifo|ljf|deadline|fair\n"
      "                         service dequeue policy: submission order,\n"
      "                         longest-predicted-job-first (the learned\n"
      "                         cost model's nanos), earliest-deadline-\n"
      "                         first, or per-tenant fair share\n"
      "                         (default fifo; --serve-batch only)\n"
      "  --phase-budget P=NS    cut requests off once static phase P\n"
      "                         (parse, infer, ...) exceeds NS nanos;\n"
      "                         repeatable (--serve-batch only)\n"
      "  --auto-budget          derive phase budgets from the cost\n"
      "                         model's observed distributions instead\n"
      "                         of fixed --phase-budget values\n"
      "                         (--serve-batch only)\n"
      "  --time-phases          print a per-phase wall-time table (per\n"
      "                         request, or aggregated in --serve-batch)\n"
      "  --trace FILE           write a Chrome trace-event JSON of every\n"
      "                         pipeline phase to FILE\n");
}

std::optional<std::string> readFile(const char *Path) {
  std::ifstream In(Path);
  if (!In)
    return std::nullopt;
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

/// Expands the --serve-batch argument: a comma-separated mix of .mml
/// files and directories (scanned non-recursively for *.mml, sorted).
std::vector<std::string> collectBatchPaths(const std::string &Spec) {
  namespace fs = std::filesystem;
  std::vector<std::string> Out;
  size_t Pos = 0;
  while (Pos <= Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    std::string Piece = Spec.substr(
        Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
    Pos = Comma == std::string::npos ? Spec.size() + 1 : Comma + 1;
    if (Piece.empty())
      continue;
    std::error_code Ec;
    if (fs::is_directory(Piece, Ec)) {
      std::vector<std::string> Dir;
      for (const fs::directory_entry &E : fs::directory_iterator(Piece, Ec))
        if (E.is_regular_file() && E.path().extension() == ".mml")
          Dir.push_back(E.path().string());
      std::sort(Dir.begin(), Dir.end());
      Out.insert(Out.end(), Dir.begin(), Dir.end());
    } else {
      Out.push_back(Piece);
    }
  }
  return Out;
}

/// One row per phase; the total row is the sum of the rows above it,
/// i.e. the whole compile+run wall time as the phase manager saw it.
void printPhaseTable(const std::vector<PhaseProfile> &Profiles) {
  std::printf("%-14s %12s %8s %14s\n", "phase", "time (ms)", "diags",
              "arena nodes");
  uint64_t TotalNanos = 0;
  for (const PhaseProfile &P : Profiles) {
    TotalNanos += P.WallNanos;
    if (P.Skipped) {
      std::printf("%-14s %12s %8s %14s\n", P.Name.c_str(), "skipped", "-",
                  "-");
      continue;
    }
    std::printf("%-14s %12.3f %8llu %14llu", P.Name.c_str(),
                P.WallNanos / 1e6,
                static_cast<unsigned long long>(P.DiagnosticsEmitted),
                static_cast<unsigned long long>(P.ArenaNodeDelta));
    if (P.Name == Compiler::RunPhaseName)
      std::printf("   (%llu gc, %llu words alloc)",
                  static_cast<unsigned long long>(P.GcCount),
                  static_cast<unsigned long long>(P.AllocWords));
    std::printf("\n");
  }
  std::printf("%-14s %12.3f\n", "total", TotalNanos / 1e6);
}

/// The --serve-batch variant: per-phase aggregates over the whole run.
void printPhaseAggregates(const service::ServiceStats &S) {
  std::printf("%-14s %12s %12s %8s\n", "phase", "total (ms)", "max (ms)",
              "count");
  uint64_t TotalNanos = 0;
  for (const service::ServiceStats::PhaseAggregate &A : S.Phases) {
    TotalNanos += A.SumNanos;
    std::printf("%-14s %12.3f %12.3f %8llu\n", A.Name.c_str(),
                A.SumNanos / 1e6, A.MaxNanos / 1e6,
                static_cast<unsigned long long>(A.Count));
  }
  std::printf("%-14s %12.3f\n", "total", TotalNanos / 1e6);
}

/// Writes the collected trace; non-fatal on failure (the run already
/// happened).
void finishTrace(const ChromeTraceSink &Sink, const std::string &Path) {
  if (Sink.writeFile(Path))
    std::fprintf(stderr, "[trace: %zu event(s) written to %s]\n",
                 Sink.eventCount(), Path.c_str());
  else
    std::fprintf(stderr, "rmlc: cannot write trace to '%s'\n", Path.c_str());
}

/// The --serve-batch driver: every program goes through the concurrent
/// service; results print in submission order.
int serveBatch(const std::string &Spec, unsigned Jobs, size_t CacheCap,
               const std::string &CacheDir, uint64_t CacheMaxBytes,
               uint64_t CacheMaxAge, uint64_t CacheSweepMs, size_t PoolPages,
               bool PrewarmPool,
               service::SchedPolicy Policy,
               const std::map<std::string, uint64_t> &Budgets, bool AutoBudget,
               const CompileOptions &Opts, const rt::EvalOptions &EvalOpts,
               bool Stats, bool TimePhases, const std::string &TracePath) {
  std::vector<std::string> Paths = collectBatchPaths(Spec);
  if (Paths.empty()) {
    std::fprintf(stderr, "rmlc: --serve-batch '%s' names no .mml programs\n",
                 Spec.c_str());
    return 2;
  }

  ChromeTraceSink Trace;
  service::ServiceConfig Cfg;
  Cfg.Workers = Jobs;
  Cfg.CacheCapacity = CacheCap;
  Cfg.CacheDir = CacheDir;
  Cfg.CacheMaxBytes = CacheMaxBytes;
  Cfg.CacheMaxAgeSeconds = CacheMaxAge;
  if (CacheSweepMs)
    Cfg.CacheSweepIntervalMillis = CacheSweepMs;
  Cfg.PagePoolPages = PoolPages;
  Cfg.PrewarmPool = PrewarmPool;
  Cfg.Policy = Policy;
  Cfg.PhaseBudgets = Budgets;
  Cfg.AutoBudget = AutoBudget;
  if (!TracePath.empty())
    Cfg.Trace = &Trace;
  service::Service Svc(Cfg);

  std::vector<std::pair<std::string, std::future<service::Response>>> Futures;
  Futures.reserve(Paths.size());
  for (const std::string &P : Paths) {
    std::optional<std::string> Text = readFile(P.c_str());
    if (!Text) {
      std::fprintf(stderr, "rmlc: cannot read '%s'\n", P.c_str());
      return 2;
    }
    service::Request Req;
    Req.Source = std::move(*Text);
    Req.Opts = Opts;
    Req.EvalOpts = EvalOpts;
    Futures.emplace_back(P, Svc.submit(std::move(Req)));
  }

  int Failures = 0;
  for (auto &[Path, Fut] : Futures) {
    service::Response R = Fut.get();
    const char *Status;
    std::string Detail;
    if (R.Status == service::RequestOutcome::Budget) {
      Status = "over budget";
      Detail = R.Error;
      ++Failures;
    } else if (!R.CompileOk) {
      Status = "compile error";
      Detail = R.Diagnostics;
      ++Failures;
    } else if (R.Outcome == rt::RunOutcome::Ok) {
      Status = "ok";
      Detail = "val it = " + R.ResultText;
    } else {
      Status = R.Outcome == rt::RunOutcome::DanglingPointer ? "gc failure"
                                                            : "run error";
      Detail = R.Error;
      ++Failures;
    }
    while (!Detail.empty() && Detail.back() == '\n')
      Detail.pop_back();
    std::printf("%-40s %-13s %s%s\n", Path.c_str(), Status,
                R.CacheHit ? "[cached] " : "", Detail.c_str());
  }

  // Every future has resolved, but a worker decrements the in-flight
  // gauge only after completing the hand-off; join them so the final
  // snapshot reads settled (in_flight 0, not a transient 1).
  Svc.shutdown();
  service::ServiceStats S = Svc.stats();
  if (S.BudgetExceeded)
    std::printf("[%llu request(s) cut off over phase budget]\n",
                static_cast<unsigned long long>(S.BudgetExceeded));
  if (S.BudgetAutoDerived)
    std::printf("[auto-budget engaged on %llu compile(s)]\n",
                static_cast<unsigned long long>(S.BudgetAutoDerived));
  if (!CacheDir.empty()) {
    std::printf("[disk cache '%s': %llu hit(s), %llu miss(es), %llu "
                "reject(s), %llu write error(s)]\n",
                CacheDir.c_str(), static_cast<unsigned long long>(S.DiskHits),
                static_cast<unsigned long long>(S.DiskMisses),
                static_cast<unsigned long long>(S.DiskLoadRejects),
                static_cast<unsigned long long>(S.DiskWriteErrors));
    if (S.SweptFiles || S.SweepErrors)
      std::printf("[disk sweeper: %llu file(s) evicted, %llu byte(s), "
                  "%llu error(s)]\n",
                  static_cast<unsigned long long>(S.SweptFiles),
                  static_cast<unsigned long long>(S.SweptBytes),
                  static_cast<unsigned long long>(S.SweepErrors));
  }
  std::printf("%zu program(s), %d failure(s); %llu cache hit(s), "
              "%llu miss(es); queue high-water %llu; %.0f%% worker "
              "utilization; %llu gc run(s), %llu words allocated; "
              "%.0f%% page reuse (%llu pooled page(s) held)\n",
              Paths.size(), Failures,
              static_cast<unsigned long long>(S.CacheHits),
              static_cast<unsigned long long>(S.CacheMisses),
              static_cast<unsigned long long>(S.QueueHighWater),
              100.0 * S.utilization(),
              static_cast<unsigned long long>(S.TotalGcCount),
              static_cast<unsigned long long>(S.TotalAllocWords),
              100.0 * S.poolReuseRatio(),
              static_cast<unsigned long long>(S.PoolFreePages));
  if (TimePhases)
    printPhaseAggregates(S);
  if (Stats)
    std::printf("%s\n", S.json().c_str());
  if (!TracePath.empty())
    finishTrace(Trace, TracePath);
  return Failures == 0 ? 0 : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  CompileOptions Opts;
  rt::EvalOptions EvalOpts;
  bool PrintProgram = false, Stats = false, Profile = false, Run = true;
  bool CrossCheck = false;
  std::string SchemeName, Source;
  bool HaveSource = false;
  std::string BatchSpec;
  unsigned Jobs = 0;
  size_t CacheCap = 128;
  std::string CacheDir;
  uint64_t CacheMaxBytes = 0, CacheMaxAge = 0, CacheSweepMs = 0;
  size_t PoolPages = rt::PagePool::DefaultMaxPages; // on by default
  bool PrewarmPool = false, TimePhases = false, AutoBudget = false;
  service::SchedPolicy Policy = service::SchedPolicy::Fifo;
  std::map<std::string, uint64_t> Budgets;
  std::string TracePath;

  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "rmlc: %s needs an argument\n", A);
        std::exit(2);
      }
      return Argv[++I];
    };
    if (!std::strcmp(A, "--strategy")) {
      const char *S = Next();
      if (!std::strcmp(S, "rg"))
        Opts.Strat = Strategy::Rg;
      else if (!std::strcmp(S, "rg-"))
        Opts.Strat = Strategy::RgMinus;
      else if (!std::strcmp(S, "r"))
        Opts.Strat = Strategy::R;
      else {
        std::fprintf(stderr, "rmlc: unknown strategy '%s'\n", S);
        return 2;
      }
    } else if (!std::strcmp(A, "--spurious")) {
      const char *S = Next();
      Opts.Spurious = !std::strcmp(S, "identify")
                          ? SpuriousMode::IdentifyWithFun
                          : SpuriousMode::FreshSecondary;
    } else if (!std::strcmp(A, "--print-program")) {
      PrintProgram = true;
    } else if (!std::strcmp(A, "--print-scheme")) {
      SchemeName = Next();
    } else if (!std::strcmp(A, "--captures")) {
      Opts.Captures = true;
    } else if (!std::strcmp(A, "--stats")) {
      Stats = true;
    } else if (!std::strcmp(A, "--profile")) {
      Profile = true;
    } else if (!std::strcmp(A, "--smallstep")) {
      CrossCheck = true;
    } else if (!std::strcmp(A, "--no-run")) {
      Run = false;
    } else if (!std::strcmp(A, "--no-check")) {
      Opts.Check = false;
    } else if (!std::strcmp(A, "--gc-threshold")) {
      EvalOpts.GcThresholdWords = std::strtoull(Next(), nullptr, 10);
    } else if (!std::strcmp(A, "--retain-pages")) {
      EvalOpts.RetainReleasedPages = true;
    } else if (!std::strcmp(A, "--generational")) {
      EvalOpts.Generational = true;
    } else if (!std::strcmp(A, "--no-tagfree")) {
      EvalOpts.TagFreePairs = false;
    } else if (!std::strcmp(A, "--no-finite")) {
      EvalOpts.UseFiniteRegions = false;
    } else if (!std::strcmp(A, "--adaptive-gc")) {
      EvalOpts.AdaptiveGc = true;
    } else if (!std::strcmp(A, "--gc-pause-budget")) {
      EvalOpts.GcPauseBudgetNanos = std::strtoull(Next(), nullptr, 10);
    } else if (!std::strcmp(A, "--serve-batch")) {
      BatchSpec = Next();
    } else if (!std::strcmp(A, "--jobs")) {
      Jobs = static_cast<unsigned>(std::strtoul(Next(), nullptr, 10));
    } else if (!std::strcmp(A, "--cache")) {
      CacheCap = std::strtoull(Next(), nullptr, 10);
    } else if (!std::strcmp(A, "--cache-dir")) {
      CacheDir = Next();
    } else if (!std::strcmp(A, "--cache-max-bytes")) {
      CacheMaxBytes = std::strtoull(Next(), nullptr, 10);
    } else if (!std::strcmp(A, "--cache-max-age")) {
      CacheMaxAge = std::strtoull(Next(), nullptr, 10);
    } else if (!std::strcmp(A, "--cache-sweep-ms")) {
      CacheSweepMs = std::strtoull(Next(), nullptr, 10);
    } else if (!std::strcmp(A, "--page-pool")) {
      PoolPages = std::strtoull(Next(), nullptr, 10);
    } else if (!std::strncmp(A, "--page-pool=", 12)) {
      PoolPages = std::strtoull(A + 12, nullptr, 10);
    } else if (!std::strcmp(A, "--prewarm-pool")) {
      PrewarmPool = true;
    } else if (!std::strcmp(A, "--sched")) {
      const char *S = Next();
      if (!service::parseSchedPolicy(S, Policy)) {
        std::fprintf(stderr, "rmlc: unknown scheduler '%s'\n", S);
        return 2;
      }
    } else if (!std::strcmp(A, "--phase-budget")) {
      const char *S = Next();
      const char *Eq = std::strchr(S, '=');
      if (!Eq || Eq == S) {
        std::fprintf(stderr,
                     "rmlc: --phase-budget wants PHASE=NANOS, got '%s'\n", S);
        return 2;
      }
      Budgets[std::string(S, Eq)] = std::strtoull(Eq + 1, nullptr, 10);
    } else if (!std::strcmp(A, "--auto-budget")) {
      AutoBudget = true;
    } else if (!std::strcmp(A, "--time-phases")) {
      TimePhases = true;
    } else if (!std::strcmp(A, "--trace")) {
      TracePath = Next();
    } else if (!std::strcmp(A, "-e")) {
      Source = Next();
      HaveSource = true;
    } else if (!std::strcmp(A, "--help") || !std::strcmp(A, "-h")) {
      usage();
      return 0;
    } else if (A[0] == '-') {
      std::fprintf(stderr, "rmlc: unknown option '%s'\n", A);
      usage();
      return 2;
    } else {
      std::optional<std::string> Text = readFile(A);
      if (!Text) {
        std::fprintf(stderr, "rmlc: cannot read '%s'\n", A);
        return 2;
      }
      Source = std::move(*Text);
      HaveSource = true;
    }
  }
  if (!BatchSpec.empty())
    return serveBatch(BatchSpec, Jobs, CacheCap, CacheDir, CacheMaxBytes,
                      CacheMaxAge, CacheSweepMs, PoolPages, PrewarmPool, Policy,
                      Budgets, AutoBudget, Opts, EvalOpts, Stats, TimePhases,
                      TracePath);
  if (!HaveSource) {
    usage();
    return 2;
  }

  ChromeTraceSink Trace;
  Compiler C;
  if (!TracePath.empty())
    C.setTraceSink(&Trace);
  auto Unit = C.compile(Source, Opts);
  if (!Unit) {
    std::fprintf(stderr, "%s", C.diagnostics().str().c_str());
    if (TimePhases)
      printPhaseTable(C.lastPhaseProfiles());
    if (!TracePath.empty())
      finishTrace(Trace, TracePath);
    return 1;
  }

  if (!SchemeName.empty()) {
    std::string S = C.schemeOf(*Unit, SchemeName);
    if (S.empty()) {
      std::fprintf(stderr, "rmlc: no scheme for '%s'\n", SchemeName.c_str());
      return 1;
    }
    std::printf("%s : %s\n", SchemeName.c_str(), S.c_str());
  }
  if (PrintProgram)
    std::printf("%s\n", C.printProgram(*Unit).c_str());
  if (Opts.Captures)
    std::fputs(C.captureReport(*Unit).c_str(), stdout);
  if (Profile) {
    std::printf("strategy %s: %u schemes, %u letregions, %u finite "
                "regions, %u tag-free regions, %u/%u dropped formals, "
                "%u/%u spurious functions\n",
                strategyName(Opts.Strat), Unit->Inferred.NumSchemes,
                Unit->Inferred.NumLetRegions, Unit->Mult.finiteCount(),
                Unit->Kinds.tagFreeCount(), Unit->Drops.DroppedFormals,
                Unit->Drops.TotalFormals, Unit->Spurious.SpuriousFunctions,
                Unit->Spurious.TotalFunctions);
  }
  if (!Run) {
    if (TimePhases)
      printPhaseTable(C.lastPhaseProfiles());
    if (!TracePath.empty())
      finishTrace(Trace, TracePath);
    return 0;
  }

  rt::RunResult R = C.run(*Unit, EvalOpts);
  if (!R.Output.empty())
    std::fputs(R.Output.c_str(), stdout);
  int RunExit = 0;
  switch (R.Outcome) {
  case rt::RunOutcome::Ok:
    std::printf("val it = %s\n", R.ResultText.c_str());
    break;
  case rt::RunOutcome::UncaughtException:
    std::fprintf(stderr, "rmlc: %s\n", R.Error.c_str());
    RunExit = 1;
    break;
  case rt::RunOutcome::DanglingPointer:
    std::fprintf(stderr, "rmlc: GC failure: %s\n", R.Error.c_str());
    RunExit = 1;
    break;
  case rt::RunOutcome::RuntimeError:
    std::fprintf(stderr, "rmlc: runtime error: %s\n", R.Error.c_str());
    RunExit = 1;
    break;
  }
  if (TimePhases) {
    // Static phases then the runtime phase: one row per phase, summing
    // to the whole compile+run wall time.
    std::vector<PhaseProfile> All = C.lastPhaseProfiles();
    All.push_back(R.Phase);
    printPhaseTable(All);
  }
  if (!TracePath.empty())
    finishTrace(Trace, TracePath);
  if (RunExit)
    return RunExit;
  if (Profile) {
    std::fprintf(stderr, "top allocating regions:\n");
    unsigned Shown = 0;
    for (const rt::RegionProfile &P : R.Regions) {
      if (P.AllocWords == 0 || Shown++ >= 8)
        break;
      std::fprintf(stderr,
                   "  r%-5u %-8s %8llu words over %llu instance(s)%s\n",
                   P.StaticId, regionKindName(P.Kind),
                   static_cast<unsigned long long>(P.AllocWords),
                   static_cast<unsigned long long>(P.Instances),
                   P.Finite ? " [finite]" : "");
    }
  }
  if (Stats)
    std::fprintf(stderr,
                 "[%llu steps, %llu words allocated, peak %llu Kb, "
                 "%llu collections (%llu words copied), %llu regions "
                 "(%llu finite)]\n",
                 static_cast<unsigned long long>(R.Steps),
                 static_cast<unsigned long long>(R.Heap.AllocWords),
                 static_cast<unsigned long long>(R.Heap.peakBytes() / 1024),
                 static_cast<unsigned long long>(R.Heap.GcCount),
                 static_cast<unsigned long long>(R.Heap.CopiedWords),
                 static_cast<unsigned long long>(R.Heap.RegionsCreated),
                 static_cast<unsigned long long>(
                     R.Heap.FiniteRegionsCreated));
  if (CrossCheck) {
    RExprArena Arena;
    SmallStep Machine(Arena, C.names());
    Effect Phi{AtomicEffect(RegionVar::global())};
    SmallStep::RunResult SR =
        Machine.run(Unit->program().Root, Phi, 10'000'000);
    if (!SR.Finished) {
      std::fprintf(stderr,
                   "rmlc: small-step cross-check inconclusive: %s\n",
                   SR.Why.c_str());
      return 1;
    }
    std::string Formal = printRExpr(SR.Final, C.names());
    std::fprintf(stderr, "[small-step semantics agrees: %s]\n",
                 Formal.c_str());
  }
  return 0;
}
