#!/usr/bin/env bash
#===- tools/smoke_net.sh - rmld end-to-end smoke -------------------------===#
#
# Proves the network front door works as a real daemon, not just under
# gtest:
#
#   1. Serve: start rmld on an ephemeral loopback port, curl /healthz
#      and /stats (the saturation gauges must be present), drive a
#      short mixed bench_traffic burst, then SIGTERM and require a
#      clean drain ("drained, exiting", exit status 0).
#   2. Shed: restart rmld deliberately overloaded (--jobs 1 --queue 1,
#      cache off, all-cold sources) and require a nonzero shed count
#      in the bench_traffic JSON summary — admission control must drop
#      load instead of queueing it, and the daemon must still drain
#      cleanly afterwards.
#
# Usage: tools/smoke_net.sh [BUILD_DIR]     (default: ./build)
#
#===----------------------------------------------------------------------===#

set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD="${1:-$ROOT/build}"
RMLD="$BUILD/tools/rmld"
BENCH="$BUILD/bench/bench_traffic"

[ -x "$RMLD" ] || { echo "smoke_net: missing $RMLD" >&2; exit 1; }
[ -x "$BENCH" ] || { echo "smoke_net: missing $BENCH" >&2; exit 1; }

OUT="$(mktemp -d)"
RMLD_PID=""
cleanup() {
  [ -n "$RMLD_PID" ] && kill "$RMLD_PID" 2>/dev/null || true
  rm -rf "$OUT"
}
trap cleanup EXIT

# Start rmld with the given flags; sets RMLD_PID and PORT.
start_rmld() {
  : > "$OUT/rmld.out"
  "$RMLD" --port 0 "$@" > "$OUT/rmld.out" 2> "$OUT/rmld.err" &
  RMLD_PID=$!
  PORT=""
  for _ in $(seq 1 100); do
    PORT="$(sed -n 's/.*listening on [0-9.]*:\([0-9]*\).*/\1/p' \
      "$OUT/rmld.out")"
    [ -n "$PORT" ] && break
    kill -0 "$RMLD_PID" 2>/dev/null || {
      echo "smoke_net: rmld died at startup" >&2
      cat "$OUT/rmld.err" >&2
      exit 1
    }
    sleep 0.1
  done
  [ -n "$PORT" ] || { echo "smoke_net: no listening port" >&2; exit 1; }
  echo "smoke_net: rmld pid=$RMLD_PID port=$PORT"
}

# SIGTERM rmld and require a graceful drain.
stop_rmld() {
  kill -TERM "$RMLD_PID"
  local status=0
  wait "$RMLD_PID" || status=$?
  RMLD_PID=""
  if [ "$status" -ne 0 ]; then
    echo "smoke_net: rmld exited $status" >&2
    cat "$OUT/rmld.err" >&2
    exit 1
  fi
  grep -q 'drained, exiting' "$OUT/rmld.out" || {
    echo "smoke_net: no clean-drain marker in rmld output" >&2
    exit 1
  }
}

echo "== smoke_net phase 1: serve =="
start_rmld --jobs 2 --queue 64

curl -fsS "http://127.0.0.1:$PORT/healthz" | grep -q '^ok$' || {
  echo "smoke_net: /healthz failed" >&2
  exit 1
}
STATS="$(curl -fsS "http://127.0.0.1:$PORT/stats")"
for key in '"submitted":' '"queue_depth":' '"in_flight":' \
  '"uptime_seconds":'; do
  echo "$STATS" | grep -q "$key" || {
    echo "smoke_net: /stats missing $key" >&2
    echo "$STATS" >&2
    exit 1
  }
done
echo "smoke_net: /healthz + /stats ok"

"$BENCH" --port "$PORT" --rate 120 --duration 2 --conns 2 \
  | tee "$OUT/bench1.out"
SUMMARY="$(grep -o '{"sent":.*}' "$OUT/bench1.out" | tail -1)"
echo "$SUMMARY" | grep -q '"p99_ms":' || {
  echo "smoke_net: bench summary missing percentiles" >&2
  exit 1
}
RESP="$(echo "$SUMMARY" | grep -o '"responses":[0-9]*' | cut -d: -f2)"
[ "$RESP" -gt 0 ] || { echo "smoke_net: no responses" >&2; exit 1; }

stop_rmld
echo "smoke_net: phase 1 ok (responses=$RESP)"

echo "== smoke_net phase 2: shed under overload =="
# One worker, a one-slot queue, no cache, all-cold sources: arrivals
# far outrun service and admission control has to shed.
start_rmld --jobs 1 --queue 1 --cache 0
"$BENCH" --port "$PORT" --rate 2000 --duration 1 --conns 2 \
  --hot-ratio 0 | tee "$OUT/bench2.out"
SUMMARY="$(grep -o '{"sent":.*}' "$OUT/bench2.out" | tail -1)"
SHED="$(echo "$SUMMARY" | grep -o '"shed":[0-9]*' | cut -d: -f2)"
[ -n "$SHED" ] && [ "$SHED" -gt 0 ] || {
  echo "smoke_net: expected a nonzero shed count under overload" >&2
  exit 1
}
stop_rmld
echo "smoke_net: phase 2 ok (shed=$SHED)"

echo "== smoke_net: all green =="
