#!/usr/bin/env bash
#===- tools/check.sh - Tier-1 verify + TSan concurrency gate -------------===#
#
# The checks a change must pass before it lands:
#
#   1. configure + build + full ctest in build/ (the tier-1 suite), and
#   2. a -DRML_SANITIZE=thread build in build-tsan/ running the
#      concurrency-sensitive labels: the service layer, the scheduler
#      policies (completion-order and drain tests), and the
#      cross-request page pool (including the 8-thread region-runtime
#      stress test), the persistent disk cache (shared-directory
#      multi-service stress), the network front door (wire codec,
#      HTTP shim, and loopback end-to-end against a live Server),
#      the flat runnable IR (round-trip/corruption fuzz plus the
#      warm-restart execute-from-disk service tests), the learned
#      cost model (prediction/EWMA/budget units plus a multi-threaded
#      coherence check), the memory system (GcPolicy units plus
#      the adaptive-vs-static and tree-vs-flat differentials), and the
#      capture-tracking analysis (report byte-identity across cache
#      tiers and process restarts, the CaptureQuery wire kind, and the
#      disk-format version gate).
#
# Usage: tools/check.sh            # from anywhere inside the repo
#
#===----------------------------------------------------------------------===#

set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 2)"

echo "== tier 1: build + full test suite =="
cmake -B "$ROOT/build" -S "$ROOT"
cmake --build "$ROOT/build" -j "$JOBS"
ctest --test-dir "$ROOT/build" --output-on-failure -j "$JOBS"

echo "== tsan: service + pool + sched + disk + net + flat + cost + mem + capture labels =="
cmake -B "$ROOT/build-tsan" -S "$ROOT" -DRML_SANITIZE=thread
cmake --build "$ROOT/build-tsan" -j "$JOBS"
ctest --test-dir "$ROOT/build-tsan" -L 'service|pool|sched|disk|net|flat|cost|mem|capture' --output-on-failure

echo "== check.sh: all green =="
