//===- bench/Programs.h - The benchmark suite -------------------*- C++ -*-===//
//
// Part of RegionML, a reproduction of "Garbage-Collection Safety for
// Region-Based Type-Polymorphic Programs" (Elsman, PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MiniML sources for the Figure 9 benchmark suite. The paper's programs
/// are Standard ML (fib37, tak, msort, life, mandelbrot, ...); these are
/// the same program *shapes* rewritten in MiniML and scaled to interpreter
/// speed, each prefixed with a small basis library (compose, map, app,
/// foldl, filter, append, length) that — like the SML Basis Library in
/// Section 4.1 — contributes the suite's spurious functions.
///
//===----------------------------------------------------------------------===//

#ifndef RML_BENCH_PROGRAMS_H
#define RML_BENCH_PROGRAMS_H

#include <string>
#include <vector>

namespace rml::bench {

struct BenchProgram {
  std::string Name;
  std::string Source;
  /// Lines of code excluding the shared basis (the paper's loc column
  /// excludes the Basis Library).
  unsigned Loc = 0;
};

/// The shared mini-basis prepended to every program.
const std::string &basisSource();

/// The full suite (basis already prepended to every Source).
const std::vector<BenchProgram> &benchmarkSuite();

/// A single program by name (null if unknown).
const BenchProgram *findBenchmark(const std::string &Name);

/// The Figure 1 / Figure 8 programs that crash the rg- collector.
const std::string &danglingPointerProgram(); // Figure 1 (composition)
const std::string &spuriousChainProgram();   // Figure 8 (g / o chain)
const std::string &exnDanglingProgram();     // Section 4.4 (exception)

} // namespace rml::bench

#endif // RML_BENCH_PROGRAMS_H
