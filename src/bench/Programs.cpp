//===- bench/Programs.cpp -------------------------------------------------===//

#include "bench/Programs.h"

#include <algorithm>

using namespace rml::bench;

//===----------------------------------------------------------------------===//
// Shared basis
//===----------------------------------------------------------------------===//

static const char *BasisText = R"BASIS(
fun compose fg = fn x => #1 fg (#2 fg x)
fun composeOpt fg = fn x =>
  case #2 fg x of nil => nil | v :: _ => [#1 fg v]
fun id x = x
fun map f xs = case xs of nil => nil | h :: t => f h :: map f t
fun app f xs = case xs of nil => () | h :: t => (f h; app f t)
fun foldl f acc xs = case xs of nil => acc | h :: t => foldl f (f h acc) t
fun filter p xs =
  case xs of nil => nil
  | h :: t => if p h then h :: filter p t else filter p t
fun append xs ys = case xs of nil => ys | h :: t => h :: append t ys
fun length xs = case xs of nil => 0 | _ :: t => 1 + length t
fun upto a b = if a > b then nil else a :: upto (a + 1) b
fun concatMap f xs =
  case xs of nil => nil | h :: t => append (f h) (concatMap f t)
fun rev xs =
  let fun go acc ys = case ys of nil => acc | h :: t => go (h :: acc) t
  in go nil xs end
)BASIS";

const std::string &rml::bench::basisSource() {
  static const std::string Basis = BasisText;
  return Basis;
}

//===----------------------------------------------------------------------===//
// The suite
//===----------------------------------------------------------------------===//

namespace {

struct RawProgram {
  const char *Name;
  const char *Body;
};

const RawProgram RawSuite[] = {
    {"fib", R"(
fun fib n = if n < 2 then n else fib (n - 1) + fib (n - 2)
;fib 24
)"},

    {"tak", R"(
fun tak x y z =
  if y < x
  then tak (tak (x - 1) y z) (tak (y - 1) z x) (tak (z - 1) x y)
  else z
;tak 16 10 4
)"},

    {"ack", R"(
fun ack m n =
  if m = 0 then n + 1
  else if n = 0 then ack (m - 1) 1
  else ack (m - 1) (ack m (n - 1))
;ack 2 120
)"},

    {"nrev", R"(
fun nrev xs = case xs of nil => nil | h :: t => append (nrev t) [h]
fun iter n acc =
  if n = 0 then acc
  else iter (n - 1) (length (nrev (upto 1 90)) + acc)
;iter 60 0
)"},

    {"msort", R"(
fun split xs =
  case xs of nil => (nil, nil)
  | h :: t =>
      (case t of nil => ([h], nil)
       | h2 :: t2 => let val p = split t2
                     in (h :: #1 p, h2 :: #2 p) end)
fun merge xs ys =
  case xs of nil => ys
  | h :: t =>
      (case ys of nil => xs
       | h2 :: t2 =>
           if h < h2 then h :: merge t ys else h2 :: merge xs t2)
fun msort xs =
  case xs of nil => nil
  | h :: t =>
      (case t of nil => xs
       | _ :: _ => let val p = split xs
                   in merge (msort (#1 p)) (msort (#2 p)) end)
fun mklist n = if n = 0 then nil else (n * 1103 mod 911) :: mklist (n - 1)
fun iter n acc =
  if n = 0 then acc
  else iter (n - 1) (length (msort (mklist 300)) + acc)
;iter 20 0
)"},

    {"qsort", R"(
fun qsort xs =
  case xs of nil => nil
  | h :: t =>
      append (qsort (filter (fn x => x < h) t))
             (h :: qsort (filter (fn x => x >= h) t))
fun mklist n = if n = 0 then nil else (n * 761 mod 509) :: mklist (n - 1)
fun iter n acc =
  if n = 0 then acc
  else iter (n - 1) (length (qsort (mklist 250)) + acc)
;iter 20 0
)"},

    {"life", R"(
fun mem x ys = case ys of nil => false | h :: t => h = x orelse mem x t
fun nbrs c = [c - 65, c - 64, c - 63, c - 1, c + 1, c + 63, c + 64, c + 65]
fun uniq xs =
  case xs of nil => nil
  | h :: t => if mem h t then uniq t else h :: uniq t
fun alive board c =
  let val n = length (filter (fn x => mem x board) (nbrs c))
  in if mem c board then n = 2 orelse n = 3 else n = 3 end
fun step board =
  let val cand = uniq (append board (concatMap nbrs board))
  in filter (alive board) cand end
fun gens n board = if n = 0 then board else gens (n - 1) (step board)
(* a glider on a 64-wide torus-free grid *)
;length (gens 12 [2050, 2115, 2177, 2178, 2179])
)"},

    {"mandel", R"(
fun mand cr ci =
  let fun loop zr zi i =
        if i = 0 then 0
        else
          let val zr2 = zr * zr div 4096
              val zi2 = zi * zi div 4096
          in if zr2 + zi2 > 16384 then i
             else loop (zr2 - zi2 + cr) (2 * zr * zi div 4096 + ci) (i - 1)
          end
  in loop 0 0 24 end
fun row y xs = foldl (fn x => fn a => a + mand (x * 256 - 8192) (y * 256 - 4096)) 0 xs
val cols = upto 0 47
;foldl (fn y => fn a => a + row y cols) 0 (upto 0 31)
)"},

    {"sieve", R"(
fun sieve xs =
  case xs of nil => nil
  | p :: t => p :: sieve (filter (fn x => x mod p <> 0) t)
;length (sieve (upto 2 900))
)"},

    {"queens", R"(
fun safe q qs d =
  case qs of nil => true
  | h :: t => h <> q andalso h <> q + d andalso h <> q - d
              andalso safe q t (d + 1)
fun queens n =
  let fun place k =
        if k = 0 then [nil]
        else concatMap
               (fn qs => map (fn q => q :: qs)
                             (filter (fn q => safe q qs 1) (upto 1 n)))
               (place (k - 1))
  in length (place n) end
;queens 6
)"},

    {"strings", R"(
fun build n = if n = 0 then nil else itos n :: build (n - 1)
fun cat xs = foldl (fn s => fn acc => acc ^ s) "" xs
fun iter n acc =
  if n = 0 then acc else iter (n - 1) (size (cat (build 60)) + acc)
;iter 40 0
)"},

    {"hof", R"(
(* composition pipelines: spurious-variable instantiations at boxed types
   (the string pipeline instantiates compose's gamma with a string), but
   every captured value stays live — the common, safe case the paper's
   benchmarks exhibit *)
fun mkpipe n =
  if n = 0 then id
  else compose (fn x => x + 1, compose (fn x => x * 2, mkpipe (n - 1)))
fun decorate s = compose (fn t => t ^ "!", compose (fn t => s ^ t, id))
fun build n = if n = 0 then nil else itos n :: build (n - 1)
fun applyAll f xs = map f xs
val pipe = mkpipe 8
val deco = decorate "<"
val strsum = foldl (fn s => fn a => a + size (deco s)) 0 (build 40)
;strsum + foldl (fn x => fn a => a + x) 0 (applyAll pipe (upto 1 600))
)"},

    {"refs", R"(
fun loop r n = if n = 0 then !r else (r := !r + n; loop r (n - 1))
fun iter k acc =
  if k = 0 then acc else iter (k - 1) (loop (ref 0) 700 + acc)
;iter 60 0
)"},

    {"exn", R"(
exception Found of int
fun find p xs =
  (app (fn x => if p x then raise Found x else ()) xs; 0 - 1)
  handle Found v => v
fun iter n acc =
  if n = 0 then acc
  else iter (n - 1) (find (fn x => x * x > n * 40) (upto 1 200) + acc)
;iter 150 0
)"},

    {"ratio", R"(
(* exact rational arithmetic over pairs, computing continued-fraction
   convergents of sqrt(2) — the paper's ratio benchmark shape: heavy
   small-pair allocation *)
fun gcd a b = if b = 0 then a else gcd b (a mod b)
fun norm r =
  let val g = gcd (#1 r) (#2 r)
  in if g = 0 then r else (#1 r div g, #2 r div g) end
fun radd r s = norm (#1 r * #2 s + #1 s * #2 r, #2 r * #2 s)
fun rinv r = (#2 r, #1 r)
fun conv n =
  if n = 0 then (1, 1)
  else radd (1, 1) (rinv (radd (1, 1) (conv (n - 1))))
fun iter k acc =
  if k = 0 then acc
  else iter (k - 1) (#1 (conv 12) + acc)
;iter 300 0
)"},

    {"msortrf", R"(
(* msort reading its input through a reference (the paper's msort-rf):
   mutation forces the collector to track cross-region stores *)
fun split xs =
  case xs of nil => (nil, nil)
  | h :: t =>
      (case t of nil => ([h], nil)
       | h2 :: t2 => let val p = split t2
                     in (h :: #1 p, h2 :: #2 p) end)
fun merge xs ys =
  case xs of nil => ys
  | h :: t =>
      (case ys of nil => xs
       | h2 :: t2 =>
           if h < h2 then h :: merge t ys else h2 :: merge xs t2)
fun msort xs =
  case xs of nil => nil
  | h :: t =>
      (case t of nil => xs
       | _ :: _ => let val p = split xs
                   in merge (msort (#1 p)) (msort (#2 p)) end)
fun mklist n = if n = 0 then nil else (n * 653 mod 499) :: mklist (n - 1)
fun iter cell n acc =
  if n = 0 then acc
  else (cell := msort (!cell);
        iter cell (n - 1)
             (acc + (case !cell of nil => 0 | h :: _ => h)))
;let val cell = ref (mklist 300) in iter cell 20 0 end
)"},

    {"minterp", R"(
(* a stack-machine interpreter over int-list programs (opcode 0 pushes
   the next word; 1 adds; 2 multiplies; 3 duplicates) — the shape of the
   paper's larger benchmarks (DLX, vliw): instruction dispatch over boxed
   structures *)
fun exec prog stack =
  case prog of nil => (case stack of nil => 0 | v :: _ => v)
  | op1 :: rest =>
      if op1 = 0
      then (case rest of nil => 0
            | n :: rest2 => exec rest2 (n :: stack))
      else if op1 = 1
      then (case stack of nil => 0
            | a :: s2 => (case s2 of nil => 0
                          | b :: s3 => exec rest ((a + b) :: s3)))
      else if op1 = 2
      then (case stack of nil => 0
            | a :: s2 => (case s2 of nil => 0
                          | b :: s3 => exec rest ((a * b mod 9973) :: s3)))
      else (case stack of nil => 0
            | a :: s2 => exec rest (a :: (a :: s2)))
fun genProg n =
  if n = 0 then [0, 1]
  else if n mod 3 = 0 then 0 :: (n mod 11) :: 3 :: 2 :: genProg (n - 1)
  else if n mod 3 = 1 then 0 :: (n mod 7) :: 1 :: genProg (n - 1)
  else 0 :: (n mod 5) :: 0 :: 2 :: 1 :: 2 :: genProg (n - 1)
fun iter n acc =
  if n = 0 then acc
  else iter (n - 1) (exec (genProg 60) nil + acc)
;iter 60 0
)"},

    {"deadcap", R"(
(* dead-value capture in composed closures, the Figure 1 shape, but each
   closure is consumed before the next collection — safe under every
   strategy, yet rg and rg- place the dead string's letregion differently
   (the paper's diff column) *)
fun mkh u = compose (let val x = "oh" ^ "no"
                     in (fn _ => 0, fn v => x) end)
fun use u = let val h = mkh () in h () end
fun iter n acc =
  if n = 0 then acc
  else let val r = use ()
           val w = work 120
       in iter (n - 1) (acc + r) end
;iter 200 0
)"},

    {"zebra", R"(
(* constraint-search flavoured: permutations with pruning, list-heavy *)
fun insertAll x xs =
  case xs of nil => [[x]]
  | h :: t => (x :: xs) :: map (fn r => h :: r) (insertAll x t)
fun perms xs =
  case xs of nil => [nil]
  | h :: t => concatMap (insertAll h) (perms t)
fun sumHeads xss = foldl (fn xs => fn a =>
  (case xs of nil => a | h :: _ => a + h)) 0 xss
fun iter n acc =
  if n = 0 then acc else iter (n - 1) (sumHeads (perms (upto 1 6)) + acc)
;iter 8 0
)"},
};

std::vector<BenchProgram> buildSuite() {
  std::vector<BenchProgram> Out;
  for (const RawProgram &Raw : RawSuite) {
    BenchProgram P;
    P.Name = Raw.Name;
    std::string Body = Raw.Body;
    P.Loc = static_cast<unsigned>(
        std::count(Body.begin(), Body.end(), '\n'));
    P.Source = basisSource() + Body;
    Out.push_back(std::move(P));
  }
  return Out;
}

} // namespace

const std::vector<BenchProgram> &rml::bench::benchmarkSuite() {
  static const std::vector<BenchProgram> Suite = buildSuite();
  return Suite;
}

const BenchProgram *rml::bench::findBenchmark(const std::string &Name) {
  for (const BenchProgram &P : benchmarkSuite())
    if (P.Name == Name)
      return &P;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// The unsound programs (Figures 1 and 8, Section 4.4)
//===----------------------------------------------------------------------===//

const std::string &rml::bench::danglingPointerProgram() {
  // Figure 1: composing a function that silently discards its argument
  // with one returning a dead string captures "ohno" in a closure whose
  // (pre-paper) type forgets the string's region.
  static const std::string P = basisSource() + R"(
fun run u =
  let val h = compose (let val x = "oh" ^ "no"
                       in (fn _ => (), fn () => x) end)
      val w = work 20000
  in h () end
;run ()
)";
  return P;
}

const std::string &rml::bench::spuriousChainProgram() {
  // Figure 8: the spurious variable of g is instantiated for the spurious
  // variable of compose — only the transitive closure of Section 4.3
  // catches the dependency.
  static const std::string P = basisSource() + R"(
fun g f = compose (let val x = f ()
                   in (fn _ => (), fn () => x) end)
fun run u =
  let val h = g (fn () => "oh" ^ "no")
      val w = work 20000
  in h () end
;run ()
)";
  return P;
}

const std::string &rml::bench::exnDanglingProgram() {
  // Section 4.4: a local exception whose argument type mentions a bound
  // type variable. The constructed exception value escapes with type
  // (exn, rG), which hides the payload's region entirely; only the
  // spurious treatment (the variable is pinned to the global region)
  // keeps the payload alive. Under rg- the string's region is
  // deallocated when poly returns, and the collection triggered by work
  // traces a dangling pointer through the live exception value.
  static const std::string P = basisSource() + R"(
fun poly (x : 'a) =
  let exception E of 'a
  in E x end
fun run u =
  let val e = poly ("oh" ^ "no")
      val w = work 20000
  in (raise e) handle _ => 0 end
;run ()
)";
  return P;
}
