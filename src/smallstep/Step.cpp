//===- smallstep/Step.cpp -------------------------------------------------===//

#include "smallstep/Step.h"

#include "rcheck/Check.h"

#include <cassert>

using namespace rml;

//===----------------------------------------------------------------------===//
// Substitution of values for program variables
//===----------------------------------------------------------------------===//

const RExpr *SmallStep::substVar(const RExpr *E, Symbol X, const RExpr *V) {
  if (!E)
    return nullptr;
  switch (E->K) {
  case RExpr::Kind::Var:
    return E->Name == X ? V : E;
  case RExpr::Kind::IntLit:
  case RExpr::Kind::BoolLit:
  case RExpr::Kind::UnitLit:
  case RExpr::Kind::NilVal:
  case RExpr::Kind::StrVal:
  case RExpr::Kind::StrE:
    return E;
  case RExpr::Kind::Lam:
  case RExpr::Kind::ClosVal: {
    if (E->Param == X)
      return E;
    const RExpr *Body = substVar(E->A, X, V);
    if (Body == E->A)
      return E;
    RExpr *N = Arena.clone(E);
    N->A = Body;
    return N;
  }
  case RExpr::Kind::FunBind:
  case RExpr::Kind::FunVal: {
    if (E->Param == X || E->Name == X)
      return E;
    const RExpr *Body = substVar(E->A, X, V);
    if (Body == E->A)
      return E;
    RExpr *N = Arena.clone(E);
    N->A = Body;
    return N;
  }
  case RExpr::Kind::Let: {
    const RExpr *A = substVar(E->A, X, V);
    const RExpr *B = E->Name == X ? E->B : substVar(E->B, X, V);
    if (A == E->A && B == E->B)
      return E;
    RExpr *N = Arena.clone(E);
    N->A = A;
    N->B = B;
    return N;
  }
  case RExpr::Kind::ListCase: {
    const RExpr *A = substVar(E->A, X, V);
    const RExpr *B = substVar(E->B, X, V);
    const RExpr *C = (E->HeadName == X || E->TailName == X)
                         ? E->C
                         : substVar(E->C, X, V);
    if (A == E->A && B == E->B && C == E->C)
      return E;
    RExpr *N = Arena.clone(E);
    N->A = A;
    N->B = B;
    N->C = C;
    return N;
  }
  case RExpr::Kind::Handle: {
    const RExpr *A = substVar(E->A, X, V);
    const RExpr *B = E->BindName == X ? E->B : substVar(E->B, X, V);
    if (A == E->A && B == E->B)
      return E;
    RExpr *N = Arena.clone(E);
    N->A = A;
    N->B = B;
    return N;
  }
  default: {
    const RExpr *A = substVar(E->A, X, V);
    const RExpr *B = substVar(E->B, X, V);
    const RExpr *C = substVar(E->C, X, V);
    bool Changed = A != E->A || B != E->B || C != E->C;
    std::vector<const RExpr *> Items;
    Items.reserve(E->Items.size());
    for (const RExpr *Item : E->Items) {
      const RExpr *NI = substVar(Item, X, V);
      Changed |= NI != Item;
      Items.push_back(NI);
    }
    if (!Changed)
      return E;
    RExpr *N = Arena.clone(E);
    N->A = A;
    N->B = B;
    N->C = C;
    N->Items = std::move(Items);
    return N;
  }
  }
}

//===----------------------------------------------------------------------===//
// Substitution of regions/effects/types over term annotations
//===----------------------------------------------------------------------===//

const RExpr *SmallStep::substTerm(const RExpr *E, const Subst &S,
                                  RTypeArena &Types) {
  if (!E || S.isIdentity())
    return E;
  // Respect binders: a fun value binds its quantified regions, effect
  // variables and Delta type variables, a letregion its region — the
  // substitution is restricted on entry (the paper assumes bound names
  // renamed apart; inference emits globally fresh ids, so restriction is
  // exact, not approximate).
  if (E->K == RExpr::Kind::FunBind || E->K == RExpr::Kind::FunVal) {
    Subst Restricted = S;
    for (RegionVar R : E->Sigma.QRegions)
      Restricted.Sr.erase(R);
    for (EffectVar Ev : E->Sigma.QEffects)
      Restricted.Se.erase(Ev);
    for (const auto &[Alpha, Nu] : E->Sigma.Delta)
      Restricted.St.erase(Alpha);
    if (Restricted.isIdentity())
      return E;
    RExpr *N = Arena.clone(E);
    N->A = substTerm(E->A, Restricted, Types);
    // The fun value's own allocation region is *free* (only the
    // quantifiers are bound).
    if (N->AtRho.isValid())
      N->AtRho = Restricted.apply(N->AtRho);
    if (N->MuOf)
      N->MuOf = Restricted.apply(N->MuOf, Types);
    if (N->ParamMu)
      N->ParamMu = Restricted.apply(N->ParamMu, Types);
    N->Sigma = Restricted.apply(E->Sigma, Types);
    return N;
  }
  Subst Local = S;
  if (E->K == RExpr::Kind::LetRegion)
    Local.Sr.erase(E->BoundRho);
  const Subst &SS = Local.Sr.size() != S.Sr.size() ? Local : S;
  RExpr *N = Arena.clone(E);
  N->A = substTerm(E->A, SS, Types);
  N->B = substTerm(E->B, SS, Types);
  N->C = substTerm(E->C, SS, Types);
  for (size_t I = 0; I < N->Items.size(); ++I)
    N->Items[I] = substTerm(E->Items[I], SS, Types);
  if (N->AtRho.isValid())
    N->AtRho = SS.apply(N->AtRho);
  if (N->MuOf)
    N->MuOf = SS.apply(N->MuOf, Types);
  if (N->ParamMu)
    N->ParamMu = SS.apply(N->ParamMu, Types);
  if (E->K == RExpr::Kind::Lam || E->K == RExpr::Kind::ClosVal)
    N->LatentNu = SS.apply(N->LatentNu);
  if (E->K == RExpr::Kind::RApp)
    N->Inst = composeRestricted(SS, E->Inst, Types);
  return N;
}

//===----------------------------------------------------------------------===//
// One step
//===----------------------------------------------------------------------===//

namespace {
bool bothValues(const RExpr *A, const RExpr *B) {
  return A->isValue() && B->isValue();
}
} // namespace

/// Attempts to reduce the *redex at the root* of E (allocation and
/// reduction rules of Figure 6). Returns null if E's root is not a redex
/// of the supported fragment, setting Stuck/Why accordingly.
const RExpr *SmallStep::reduce(const RExpr *E, const Effect &Phi,
                               bool &Stuck, std::string &Why) {
  auto Dangling = [&](RegionVar R) {
    Stuck = true;
    Why = "region " + printRegionVar(R) +
          " is not allocated (deallocated or never introduced)";
    return nullptr;
  };

  switch (E->K) {
  case RExpr::Kind::Lam: { // [Lam]
    if (!Phi.contains(E->AtRho))
      return Dangling(E->AtRho);
    RExpr *V = Arena.clone(E);
    V->K = RExpr::Kind::ClosVal;
    return V;
  }
  case RExpr::Kind::FunBind: { // [Fun]
    if (!Phi.contains(E->AtRho))
      return Dangling(E->AtRho);
    RExpr *V = Arena.clone(E);
    V->K = RExpr::Kind::FunVal;
    return V;
  }
  case RExpr::Kind::PairE: { // [Pair]
    if (!bothValues(E->A, E->B))
      return nullptr;
    if (!Phi.contains(E->AtRho))
      return Dangling(E->AtRho);
    RExpr *V = Arena.clone(E);
    V->K = RExpr::Kind::PairVal;
    return V;
  }
  case RExpr::Kind::StrE: { // string allocation
    if (!Phi.contains(E->AtRho))
      return Dangling(E->AtRho);
    RExpr *V = Arena.clone(E);
    V->K = RExpr::Kind::StrVal;
    return V;
  }
  case RExpr::Kind::ConsE: { // cons-cell allocation
    if (!bothValues(E->A, E->B))
      return nullptr;
    if (!Phi.contains(E->AtRho))
      return Dangling(E->AtRho);
    RExpr *V = Arena.clone(E);
    V->K = RExpr::Kind::ConsVal;
    return V;
  }
  case RExpr::Kind::LetRegion: // [Reg]
    if (E->A->isValue())
      return E->A;
    return nullptr;
  case RExpr::Kind::App: { // [App]
    if (!bothValues(E->A, E->B))
      return nullptr;
    const RExpr *F = E->A;
    if (F->K != RExpr::Kind::ClosVal) {
      Stuck = true;
      Why = "application of a non-closure value";
      return nullptr;
    }
    if (!Phi.contains(F->AtRho))
      return Dangling(F->AtRho);
    return substVar(F->A, F->Param, E->B);
  }
  case RExpr::Kind::Let: // [Let]
    if (!E->A->isValue())
      return nullptr;
    return substVar(E->B, E->Name, E->A);
  case RExpr::Kind::RApp: { // [Rapp]
    if (!E->A->isValue())
      return nullptr;
    const RExpr *F = E->A;
    if (F->K != RExpr::Kind::FunVal) {
      Stuck = true;
      Why = "region application of a non-fun value";
      return nullptr;
    }
    if (!Phi.contains(F->AtRho))
      return Dangling(F->AtRho);
    // \x.e[S][<fun>/f] at rho'.
    const RExpr *Body = substTerm(F->A, E->Inst, TyArena);
    Body = substVar(Body, F->Name, F);
    RExpr *L = Arena.make(RExpr::Kind::Lam);
    L->Loc = E->Loc;
    L->Param = F->Param;
    L->A = Body;
    L->AtRho = E->AtRho;
    const Mu *MuInst = E->MuOf;
    if (MuInst && MuInst->K == Mu::Kind::Boxed &&
        MuInst->T->K == Tau::Kind::Arrow) {
      L->ParamMu = MuInst->T->A;
      L->LatentNu = MuInst->T->Nu;
      L->MuOf = MuInst;
    }
    return L;
  }
  case RExpr::Kind::Sel: { // [Sel1]/[Sel2]
    if (!E->A->isValue())
      return nullptr;
    const RExpr *P = E->A;
    if (P->K != RExpr::Kind::PairVal) {
      Stuck = true;
      Why = "projection from a non-pair value";
      return nullptr;
    }
    if (!Phi.contains(P->AtRho))
      return Dangling(P->AtRho);
    return E->SelIndex == 1 ? P->A : P->B;
  }
  case RExpr::Kind::If: {
    if (!E->A->isValue())
      return nullptr;
    if (E->A->K != RExpr::Kind::BoolLit) {
      Stuck = true;
      Why = "if condition is not a boolean value";
      return nullptr;
    }
    return E->A->BoolValue ? E->B : E->C;
  }
  case RExpr::Kind::BinOp: {
    // andalso/orelse are lazy in the left operand.
    if (E->Op == BinOpKind::AndAlso || E->Op == BinOpKind::OrElse) {
      if (!E->A->isValue())
        return nullptr;
      if (E->A->K != RExpr::Kind::BoolLit) {
        Stuck = true;
        Why = "boolean operator on a non-boolean";
        return nullptr;
      }
      bool L = E->A->BoolValue;
      if (E->Op == BinOpKind::AndAlso) {
        if (!L) {
          RExpr *V = Arena.make(RExpr::Kind::BoolLit);
          V->BoolValue = false;
          return V;
        }
        return E->B;
      }
      if (L) {
        RExpr *V = Arena.make(RExpr::Kind::BoolLit);
        V->BoolValue = true;
        return V;
      }
      return E->B;
    }
    if (!bothValues(E->A, E->B))
      return nullptr;
    const RExpr *A = E->A, *B = E->B;
    auto IntResult = [&](int64_t X) {
      RExpr *V = Arena.make(RExpr::Kind::IntLit);
      V->IntValue = X;
      return V;
    };
    auto BoolResult = [&](bool X) {
      RExpr *V = Arena.make(RExpr::Kind::BoolLit);
      V->BoolValue = X;
      return V;
    };
    switch (E->Op) {
    case BinOpKind::Add:
      return IntResult(A->IntValue + B->IntValue);
    case BinOpKind::Sub:
      return IntResult(A->IntValue - B->IntValue);
    case BinOpKind::Mul:
      return IntResult(A->IntValue * B->IntValue);
    case BinOpKind::Div:
      if (B->IntValue == 0) {
        Stuck = true;
        Why = "division by zero (the formal fragment has no exceptions)";
        return nullptr;
      }
      return IntResult(A->IntValue / B->IntValue);
    case BinOpKind::Mod:
      if (B->IntValue == 0) {
        Stuck = true;
        Why = "modulo by zero";
        return nullptr;
      }
      return IntResult(A->IntValue % B->IntValue);
    case BinOpKind::Less:
      return BoolResult(A->IntValue < B->IntValue);
    case BinOpKind::LessEq:
      return BoolResult(A->IntValue <= B->IntValue);
    case BinOpKind::Greater:
      return BoolResult(A->IntValue > B->IntValue);
    case BinOpKind::GreaterEq:
      return BoolResult(A->IntValue >= B->IntValue);
    case BinOpKind::Eq:
    case BinOpKind::NotEq: {
      bool Equal;
      if (A->K == RExpr::Kind::StrVal && B->K == RExpr::Kind::StrVal) {
        if (!Phi.contains(A->AtRho))
          return Dangling(A->AtRho);
        if (!Phi.contains(B->AtRho))
          return Dangling(B->AtRho);
        Equal = A->StrValue == B->StrValue;
      } else if (A->K == RExpr::Kind::IntLit) {
        Equal = A->IntValue == B->IntValue;
      } else if (A->K == RExpr::Kind::BoolLit) {
        Equal = A->BoolValue == B->BoolValue;
      } else if (A->K == RExpr::Kind::UnitLit) {
        Equal = true;
      } else {
        Stuck = true;
        Why = "equality on unsupported value kind";
        return nullptr;
      }
      return BoolResult(E->Op == BinOpKind::Eq ? Equal : !Equal);
    }
    case BinOpKind::StrEq:
    case BinOpKind::Concat: {
      if (A->K != RExpr::Kind::StrVal || B->K != RExpr::Kind::StrVal) {
        Stuck = true;
        Why = "string operation on non-string values";
        return nullptr;
      }
      if (!Phi.contains(A->AtRho))
        return Dangling(A->AtRho);
      if (!Phi.contains(B->AtRho))
        return Dangling(B->AtRho);
      if (E->Op == BinOpKind::StrEq)
        return BoolResult(A->StrValue == B->StrValue);
      if (!Phi.contains(E->AtRho))
        return Dangling(E->AtRho);
      RExpr *V = Arena.make(RExpr::Kind::StrVal);
      V->StrValue = A->StrValue + B->StrValue;
      V->AtRho = E->AtRho;
      return V;
    }
    default:
      Stuck = true;
      Why = "unsupported operator in the formal fragment";
      return nullptr;
    }
  }
  case RExpr::Kind::ListCase: {
    if (!E->A->isValue())
      return nullptr;
    const RExpr *S = E->A;
    if (S->K == RExpr::Kind::NilVal)
      return E->B;
    if (S->K != RExpr::Kind::ConsVal) {
      Stuck = true;
      Why = "case on a non-list value";
      return nullptr;
    }
    if (!Phi.contains(S->AtRho))
      return Dangling(S->AtRho);
    const RExpr *Body = substVar(E->C, E->HeadName, S->A);
    return substVar(Body, E->TailName, S->B);
  }
  case RExpr::Kind::Seq: {
    for (const RExpr *Item : E->Items)
      if (!Item->isValue())
        return nullptr;
    return E->Items.back();
  }
  default:
    Stuck = true;
    Why = "construct outside the formal fragment (references, exceptions "
          "and primitives run on the realistic runtime instead)";
    return nullptr;
  }
}

StepOutcome SmallStep::step(const RExpr *E, const Effect &Phi) {
  StepOutcome Out;
  if (E->isValue()) {
    Out.K = StepOutcome::Kind::IsValue;
    return Out;
  }
  if (E->K == RExpr::Kind::Var) {
    Out.K = StepOutcome::Kind::Stuck;
    Out.Why = "free variable '" + Names.text(E->Name) + "'";
    return Out;
  }

  // [Ctx]: descend into the leftmost non-value child along the evaluation
  // context grammar of Figure 5, extending Phi under letregion.
  auto Descend = [&](const RExpr *Child, const Effect &ChildPhi,
                     auto Rebuild) -> std::optional<StepOutcome> {
    if (Child->isValue())
      return std::nullopt;
    StepOutcome Inner = step(Child, ChildPhi);
    if (Inner.K == StepOutcome::Kind::Stepped)
      Inner.Next = Rebuild(Inner.Next);
    return Inner;
  };

  switch (E->K) {
  case RExpr::Kind::Lam:
  case RExpr::Kind::FunBind:
  case RExpr::Kind::StrE:
    // Abstraction bodies are not evaluation positions: the node itself
    // is the allocation redex ([Lam]/[Fun]); string literals likewise.
    break;
  case RExpr::Kind::LetRegion: {
    Effect Inner = Phi;
    Inner.insert(AtomicEffect(E->BoundRho));
    if (auto R = Descend(E->A, Inner, [&](const RExpr *N) {
          RExpr *C = Arena.clone(E);
          C->A = N;
          return C;
        }))
      return *R;
    break;
  }
  case RExpr::Kind::Seq: {
    for (size_t I = 0; I < E->Items.size(); ++I) {
      if (E->Items[I]->isValue())
        continue;
      if (auto R = Descend(E->Items[I], Phi, [&](const RExpr *N) {
            RExpr *C = Arena.clone(E);
            C->Items[I] = N;
            return C;
          }))
        return *R;
      break;
    }
    break;
  }
  case RExpr::Kind::If:
  case RExpr::Kind::ListCase: {
    if (auto R = Descend(E->A, Phi, [&](const RExpr *N) {
          RExpr *C = Arena.clone(E);
          C->A = N;
          return C;
        }))
      return *R;
    break;
  }
  case RExpr::Kind::BinOp: {
    if (auto R = Descend(E->A, Phi, [&](const RExpr *N) {
          RExpr *C = Arena.clone(E);
          C->A = N;
          return C;
        }))
      return *R;
    if (E->Op != BinOpKind::AndAlso && E->Op != BinOpKind::OrElse) {
      if (auto R = Descend(E->B, Phi, [&](const RExpr *N) {
            RExpr *C = Arena.clone(E);
            C->B = N;
            return C;
          }))
        return *R;
    }
    break;
  }
  default: {
    if (E->A) {
      if (auto R = Descend(E->A, Phi, [&](const RExpr *N) {
            RExpr *C = Arena.clone(E);
            C->A = N;
            return C;
          }))
        return *R;
    }
    if (E->B && E->K != RExpr::Kind::Let && E->K != RExpr::Kind::If &&
        E->K != RExpr::Kind::ListCase && E->K != RExpr::Kind::Handle) {
      if (auto R = Descend(E->B, Phi, [&](const RExpr *N) {
            RExpr *C = Arena.clone(E);
            C->B = N;
            return C;
          }))
        return *R;
    }
    break;
  }
  }

  // All evaluated positions are values: the root is the redex.
  bool Stuck = false;
  std::string Why;
  const RExpr *Next = reduce(E, Phi, Stuck, Why);
  if (Next) {
    Out.K = StepOutcome::Kind::Stepped;
    Out.Next = Next;
    return Out;
  }
  Out.K = StepOutcome::Kind::Stuck;
  Out.Why = Stuck ? Why : "no applicable rule";
  return Out;
}

SmallStep::RunResult SmallStep::run(const RExpr *E, const Effect &Phi,
                                    uint64_t FuelLimit) {
  RunResult R;
  const RExpr *Cur = E;
  for (uint64_t I = 0; I < FuelLimit; ++I) {
    StepOutcome O = step(Cur, Phi);
    if (O.K == StepOutcome::Kind::IsValue) {
      R.Final = Cur;
      R.Steps = I;
      R.Finished = true;
      return R;
    }
    if (O.K == StepOutcome::Kind::Stuck) {
      R.Final = Cur;
      R.Steps = I;
      R.Why = O.Why;
      return R;
    }
    Cur = O.Next;
  }
  R.Final = Cur;
  R.Steps = FuelLimit;
  R.Why = "out of fuel";
  return R;
}

//===----------------------------------------------------------------------===//
// Context containment (Figure 7)
//===----------------------------------------------------------------------===//

bool rml::contextContained(const Effect &Phi, const RExpr *E) {
  if (!E)
    return true;
  if (E->K == RExpr::Kind::Var)
    return true;
  if (E->isValue())
    return valueContained(Phi, E);
  switch (E->K) {
  case RExpr::Kind::LetRegion: {
    if (Phi.contains(E->BoundRho))
      return false;
    Effect Inner = Phi;
    Inner.insert(AtomicEffect(E->BoundRho));
    return contextContained(Inner, E->A);
  }
  case RExpr::Kind::Let:
    return contextContained(Phi, E->A) && exprValuesContained(Phi, E->B);
  case RExpr::Kind::App:
  case RExpr::Kind::PairE:
  case RExpr::Kind::ConsE:
  case RExpr::Kind::BinOp:
  case RExpr::Kind::Assign:
    // Left-to-right: if the left is a value it must be contained (|=),
    // and the evaluation spine moves to the right child.
    if (E->A->isValue())
      return valueContained(Phi, E->A) && contextContained(Phi, E->B);
    return contextContained(Phi, E->A) && exprValuesContained(Phi, E->B);
  case RExpr::Kind::Sel:
  case RExpr::Kind::RApp:
  case RExpr::Kind::Deref:
  case RExpr::Kind::Raise:
  case RExpr::Kind::Prim:
    return contextContained(Phi, E->A);
  case RExpr::Kind::If:
  case RExpr::Kind::ListCase:
    return contextContained(Phi, E->A) && exprValuesContained(Phi, E->B) &&
           exprValuesContained(Phi, E->C);
  case RExpr::Kind::Handle:
    return contextContained(Phi, E->A) && exprValuesContained(Phi, E->B);
  case RExpr::Kind::Seq: {
    bool OnSpine = true;
    for (const RExpr *Item : E->Items) {
      if (OnSpine && Item->isValue()) {
        if (!valueContained(Phi, Item))
          return false;
        continue;
      }
      if (OnSpine) {
        if (!contextContained(Phi, Item))
          return false;
        OnSpine = false;
        continue;
      }
      if (!exprValuesContained(Phi, Item))
        return false;
    }
    return true;
  }
  default:
    return exprValuesContained(Phi, E);
  }
}
