//===- smallstep/Step.h - Small-step dynamic semantics ----------*- C++ -*-===//
//
// Part of RegionML, a reproduction of "Garbage-Collection Safety for
// Region-Based Type-Polymorphic Programs" (Elsman, PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The contextual small-step dynamic semantics of Section 3.10 (Figures 5
/// and 6) and the context-containment judgement of Figure 7. The machine
/// keeps track of the set of currently allocated regions and *disallows*
/// access to regions outside that set — exactly the paper's model of why
/// dangling pointers are fatal. It drives the executable versions of the
/// metatheory:
///
///   * Proposition 17 (unique decomposition) — step either finds a redex
///     or reports a value/stuck verdict,
///   * Proposition 18/19 + Theorem 1 (preservation, progress, soundness)
///     — tests re-check every intermediate term,
///   * Theorem 2 (containment) — contextContained is checked after every
///     step.
///
/// The machine covers the paper's term language plus the *pure*
/// extensions (conditionals, integer/boolean/string operators, lists,
/// sequencing). References, exceptions and primitives are executed by the
/// realistic runtime (src/rt), which the formal fragment does not model.
///
//===----------------------------------------------------------------------===//

#ifndef RML_SMALLSTEP_STEP_H
#define RML_SMALLSTEP_STEP_H

#include "region/RExpr.h"
#include "support/Interner.h"

#include <optional>
#include <string>

namespace rml {

/// Outcome of one small-step attempt.
struct StepOutcome {
  enum class Kind : uint8_t {
    Stepped, // e --phi--> Next
    IsValue, // e is already a value
    Stuck,   // no rule applies (type soundness says: never for well-typed
             // terms) — Why explains, e.g. "allocation into a deallocated
             // region"
  };
  Kind K = Kind::Stuck;
  const RExpr *Next = nullptr;
  std::string Why;
};

class SmallStep {
public:
  SmallStep(RExprArena &Arena, const Interner &Names)
      : Arena(Arena), Names(Names) {}

  /// One step of e under allocated-region set \p Phi (regions only).
  StepOutcome step(const RExpr *E, const Effect &Phi);

  /// Runs to a value or failure; \p FuelLimit bounds the step count.
  /// Returns the final term (a value on success) and the steps taken.
  struct RunResult {
    const RExpr *Final = nullptr;
    uint64_t Steps = 0;
    bool Finished = false; // reached a value
    std::string Why;       // failure reason when !Finished
  };
  RunResult run(const RExpr *E, const Effect &Phi, uint64_t FuelLimit);

  /// Capture-free substitution e[v/x]; \p V must be closed
  /// (Proposition 15 guarantees this for typed values).
  const RExpr *substVar(const RExpr *E, Symbol X, const RExpr *V);

  /// Applies a region/effect/type substitution to every annotation in a
  /// term — the e[rho'/rho] of rule [Rapp], generalised to the recorded
  /// full substitutions.
  const RExpr *substTerm(const RExpr *E, const Subst &S, RTypeArena &TyArena);

private:
  const RExpr *reduce(const RExpr *E, const Effect &Phi, bool &Stuck,
                      std::string &Why);

  RExprArena &Arena;
  const Interner &Names;
  RTypeArena TyArena;
};

/// Context containment phi |=c e (Figure 7).
bool contextContained(const Effect &Phi, const RExpr *E);

} // namespace rml

#endif // RML_SMALLSTEP_STEP_H
