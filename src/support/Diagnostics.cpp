//===- support/Diagnostics.cpp --------------------------------------------===//

#include "support/Diagnostics.h"

using namespace rml;

std::string SrcLoc::str() const {
  if (!isValid())
    return "<unknown>";
  return std::to_string(Line) + ":" + std::to_string(Col);
}

std::string Diagnostic::str() const {
  const char *Prefix = Kind == DiagKind::Error     ? "error"
                       : Kind == DiagKind::Warning ? "warning"
                                                   : "note";
  std::string Out = Loc.isValid() ? Loc.str() + ": " : "";
  Out += Prefix;
  Out += ": ";
  Out += Message;
  return Out;
}

void DiagnosticEngine::error(SrcLoc Loc, std::string Message) {
  Diags.push_back({DiagKind::Error, Loc, std::move(Message)});
  ++NumErrors;
}

void DiagnosticEngine::warning(SrcLoc Loc, std::string Message) {
  Diags.push_back({DiagKind::Warning, Loc, std::move(Message)});
}

void DiagnosticEngine::note(SrcLoc Loc, std::string Message) {
  Diags.push_back({DiagKind::Note, Loc, std::move(Message)});
}

std::string DiagnosticEngine::str() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.str();
    Out += '\n';
  }
  return Out;
}
