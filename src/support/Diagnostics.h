//===- support/Diagnostics.h - Source locations and diagnostics -*- C++ -*-===//
//
// Part of RegionML, a reproduction of "Garbage-Collection Safety for
// Region-Based Type-Polymorphic Programs" (Elsman, PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Source locations and a diagnostic sink. Library code never throws; every
/// pipeline phase reports failures through a DiagnosticEngine and returns a
/// failure marker. Messages follow the "lowercase start, no trailing period"
/// convention.
///
//===----------------------------------------------------------------------===//

#ifndef RML_SUPPORT_DIAGNOSTICS_H
#define RML_SUPPORT_DIAGNOSTICS_H

#include <cstdint>
#include <string>
#include <vector>

namespace rml {

/// A 1-based line/column source position. Line 0 means "unknown".
struct SrcLoc {
  uint32_t Line = 0;
  uint32_t Col = 0;

  bool isValid() const { return Line != 0; }
  std::string str() const;
  friend bool operator==(SrcLoc A, SrcLoc B) {
    return A.Line == B.Line && A.Col == B.Col;
  }
};

enum class DiagKind { Error, Warning, Note };

/// One reported diagnostic.
struct Diagnostic {
  DiagKind Kind = DiagKind::Error;
  SrcLoc Loc;
  std::string Message;

  std::string str() const;
};

/// Collects diagnostics across pipeline phases.
class DiagnosticEngine {
public:
  void error(SrcLoc Loc, std::string Message);
  void warning(SrcLoc Loc, std::string Message);
  void note(SrcLoc Loc, std::string Message);

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &all() const { return Diags; }

  /// Renders every diagnostic, one per line.
  std::string str() const;

  void clear() {
    Diags.clear();
    NumErrors = 0;
  }

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace rml

#endif // RML_SUPPORT_DIAGNOSTICS_H
