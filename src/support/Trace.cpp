//===- support/Trace.cpp --------------------------------------------------===//

#include "support/Trace.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <sstream>

using namespace rml;

uint64_t rml::traceNowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

TraceSink::~TraceSink() = default;

void rml::appendJsonEscaped(std::string &Out, std::string_view S) {
  static const char Hex[] = "0123456789abcdef";
  for (char C : S) {
    unsigned char U = static_cast<unsigned char>(C);
    switch (C) {
    case '"':
      Out += "\\\"";
      continue;
    case '\\':
      Out += "\\\\";
      continue;
    case '\b':
      Out += "\\b";
      continue;
    case '\f':
      Out += "\\f";
      continue;
    case '\n':
      Out += "\\n";
      continue;
    case '\r':
      Out += "\\r";
      continue;
    case '\t':
      Out += "\\t";
      continue;
    default:
      break;
    }
    if (U < 0x20) {
      Out += "\\u00";
      Out += Hex[U >> 4];
      Out += Hex[U & 0xf];
    } else {
      Out += C;
    }
  }
}

std::string rml::jsonEscaped(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  appendJsonEscaped(Out, S);
  return Out;
}

std::string rml::jsonFixed(double V) {
  if (!std::isfinite(V))
    V = 0.0;
  constexpr double Limit = 1e12;
  V = std::clamp(V, -Limit, Limit);
  bool Neg = V < 0;
  // Split into integer and micro parts and print those as integers:
  // integer formatting ignores the locale, so the output is always
  // "<digits>.<6 digits>" regardless of the global decimal separator.
  double Abs = Neg ? -V : V;
  unsigned long long Scaled =
      static_cast<unsigned long long>(Abs * 1e6 + 0.5);
  char Buf[48];
  std::snprintf(Buf, sizeof(Buf), "%s%llu.%06llu", Neg ? "-" : "",
                Scaled / 1000000ull, Scaled % 1000000ull);
  return Buf;
}

NoopTraceSink &NoopTraceSink::instance() {
  static NoopTraceSink Sink;
  return Sink;
}

//===----------------------------------------------------------------------===//
// ChromeTraceSink
//===----------------------------------------------------------------------===//

void ChromeTraceSink::record(const PhaseProfile &P) {
  std::lock_guard<std::mutex> Lock(M);
  auto [It, New] =
      Tids.try_emplace(std::this_thread::get_id(), Tids.size() + 1);
  (void)New;
  Events.push_back({P, It->second});
}

void ChromeTraceSink::recordCounter(const char *Name, uint64_t Value) {
  std::lock_guard<std::mutex> Lock(M);
  auto [It, New] =
      Tids.try_emplace(std::this_thread::get_id(), Tids.size() + 1);
  (void)New;
  Counters.push_back({Name, Value, traceNowNanos(), It->second});
}

std::string ChromeTraceSink::json() const {
  std::lock_guard<std::mutex> Lock(M);
  // Normalise timestamps to the earliest phase so traces start near 0.
  uint64_t Base = 0;
  bool HaveBase = false;
  for (const Event &E : Events)
    if (!HaveBase || E.P.StartNanos < Base) {
      Base = E.P.StartNanos;
      HaveBase = true;
    }
  for (const CounterEvent &C : Counters)
    if (!HaveBase || C.StartNanos < Base) {
      Base = C.StartNanos;
      HaveBase = true;
    }

  std::ostringstream Out;
  Out << std::fixed << std::setprecision(3);
  Out << "{\"traceEvents\":[";
  bool First = true;
  for (const Event &E : Events) {
    if (!First)
      Out << ",";
    First = false;
    // "X" complete events; ts/dur are microseconds per the spec.
    Out << "{\"name\":\"" << jsonEscaped(E.P.Name)
        << "\",\"cat\":\"phase\",\"ph\":\"X\",\"ts\":"
        << (E.P.StartNanos - Base) / 1000.0
        << ",\"dur\":" << E.P.WallNanos / 1000.0
        << ",\"pid\":1,\"tid\":" << E.Tid
        << ",\"args\":{\"diagnostics\":" << E.P.DiagnosticsEmitted
        << ",\"arena_nodes\":" << E.P.ArenaNodeDelta
        << ",\"gc\":" << E.P.GcCount << ",\"alloc_words\":" << E.P.AllocWords
        << ",\"copied_words\":" << E.P.CopiedWords
        << ",\"skipped\":" << (E.P.Skipped ? 1 : 0) << "}}";
    // The run phase's collector stalls: same pid/tid as the parent
    // span, strictly inside its [ts, ts+dur] window, so trace viewers
    // nest them under the run slice.
    for (const GcPauseRecord &G : E.P.GcPauses) {
      Out << ",{\"name\":\"" << (G.Minor ? "gc:minor" : "gc:major")
          << "\",\"cat\":\"gc\",\"ph\":\"X\",\"ts\":"
          << (G.StartNanos - Base) / 1000.0
          << ",\"dur\":" << G.WallNanos / 1000.0
          << ",\"pid\":1,\"tid\":" << E.Tid
          << ",\"args\":{\"copied_words\":" << G.CopiedWords
          << ",\"live_regions\":" << G.LiveRegions << "}}";
    }
  }
  // Counter samples ("C" events): viewers draw them as a stepped
  // per-name track — the adaptive GC policy's threshold over time.
  for (const CounterEvent &C : Counters) {
    if (!First)
      Out << ",";
    First = false;
    Out << "{\"name\":\"" << jsonEscaped(C.Name)
        << "\",\"cat\":\"counter\",\"ph\":\"C\",\"ts\":"
        << (C.StartNanos - Base) / 1000.0 << ",\"pid\":1,\"tid\":" << C.Tid
        << ",\"args\":{\"value\":" << C.Value << "}}";
  }
  Out << "],\"displayTimeUnit\":\"ms\"}";
  return Out.str();
}

bool ChromeTraceSink::writeFile(const std::string &Path) const {
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << json() << "\n";
  return static_cast<bool>(Out);
}

size_t ChromeTraceSink::eventCount() const {
  std::lock_guard<std::mutex> Lock(M);
  return Events.size();
}

//===----------------------------------------------------------------------===//
// PhaseTimer
//===----------------------------------------------------------------------===//

PhaseTimer::PhaseTimer(std::string Name, TraceSink *Sink)
    : Sink(Sink), T0(std::chrono::steady_clock::now()) {
  P.Name = std::move(Name);
  P.StartNanos = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          T0.time_since_epoch())
          .count());
}

PhaseProfile &PhaseTimer::stop() {
  if (!Stopped) {
    P.WallNanos = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - T0)
            .count());
    Stopped = true;
  }
  return P;
}

PhaseTimer::~PhaseTimer() {
  stop();
  if (Sink)
    Sink->record(P);
}
