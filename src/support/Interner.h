//===- support/Interner.h - String interning --------------------*- C++ -*-===//
//
// Part of RegionML, a reproduction of "Garbage-Collection Safety for
// Region-Based Type-Polymorphic Programs" (Elsman, PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A simple string interner mapping identifier spellings to dense integer
/// symbols. Symbols compare and hash in O(1) and are stable for the lifetime
/// of the interner. All frontend identifiers (program variables, exception
/// constructors) are interned; region and effect variables use their own
/// dense ID spaces (see region/Effect.h).
///
//===----------------------------------------------------------------------===//

#ifndef RML_SUPPORT_INTERNER_H
#define RML_SUPPORT_INTERNER_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace rml {

/// A dense handle for an interned identifier spelling.
struct Symbol {
  uint32_t Id = UINT32_MAX;

  constexpr Symbol() = default;
  constexpr explicit Symbol(uint32_t Id) : Id(Id) {}

  bool isValid() const { return Id != UINT32_MAX; }
  friend bool operator==(Symbol A, Symbol B) { return A.Id == B.Id; }
  friend bool operator!=(Symbol A, Symbol B) { return A.Id != B.Id; }
  friend bool operator<(Symbol A, Symbol B) { return A.Id < B.Id; }
};

/// Interns identifier spellings into Symbols and recovers the spelling.
///
/// Not thread-safe; an Interner belongs to one Compiler (one thread).
/// Once a compilation has finished, purely const access (lookup(),
/// text()) is safe from any number of threads concurrently — the service
/// layer relies on this to share compiled units read-only.
class Interner {
public:
  /// Returns the symbol for \p Text, creating it on first use.
  Symbol intern(std::string_view Text);

  /// Returns the symbol for \p Text if it is already interned, without
  /// mutating the interner (safe on a shared, read-only interner).
  std::optional<Symbol> lookup(std::string_view Text) const;

  /// Returns the spelling of \p S. \p S must have been produced by this
  /// interner.
  const std::string &text(Symbol S) const;

  /// Creates a fresh symbol guaranteed distinct from all interned
  /// spellings, rendered as "<base>$<n>". Used for generated variables.
  Symbol fresh(std::string_view Base);

  size_t size() const { return Texts.size(); }

private:
  std::unordered_map<std::string, Symbol> Map;
  std::vector<std::string> Texts;
  uint64_t FreshCounter = 0;
};

} // namespace rml

namespace std {
template <> struct hash<rml::Symbol> {
  size_t operator()(rml::Symbol S) const noexcept {
    return std::hash<uint32_t>{}(S.Id);
  }
};
} // namespace std

#endif // RML_SUPPORT_INTERNER_H
