//===- support/Interner.cpp -----------------------------------------------===//

#include "support/Interner.h"

#include <cassert>

using namespace rml;

Symbol Interner::intern(std::string_view Text) {
  auto It = Map.find(std::string(Text));
  if (It != Map.end())
    return It->second;
  Symbol S(static_cast<uint32_t>(Texts.size()));
  Texts.emplace_back(Text);
  Map.emplace(Texts.back(), S);
  return S;
}

std::optional<Symbol> Interner::lookup(std::string_view Text) const {
  auto It = Map.find(std::string(Text));
  if (It == Map.end())
    return std::nullopt;
  return It->second;
}

const std::string &Interner::text(Symbol S) const {
  assert(S.isValid() && S.Id < Texts.size() && "symbol from another interner");
  return Texts[S.Id];
}

Symbol Interner::fresh(std::string_view Base) {
  std::string Name;
  do {
    Name = std::string(Base) + "$" + std::to_string(FreshCounter++);
  } while (Map.count(Name));
  return intern(Name);
}
