//===- support/Trace.h - Phase profiles and trace sinks ---------*- C++ -*-===//
//
// Part of RegionML, a reproduction of "Garbage-Collection Safety for
// Region-Based Type-Polymorphic Programs" (Elsman, PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured-telemetry layer every tier of the pipeline reports
/// into. A pipeline step (static phase or the runtime "run" phase)
/// produces one PhaseProfile — name, wall nanos, diagnostics emitted,
/// arena-node delta, plus the heap counters the runtime phase folds in.
/// PhaseTimer is the RAII scope that measures one profile; TraceSink is
/// where finished profiles go:
///
///  * a null sink (the default everywhere) costs nothing — profiles are
///    still recorded into the CompiledUnit/Response so `--time-phases`
///    and the per-phase service aggregates work without any sink;
///  * NoopTraceSink is the explicit do-nothing sink for call sites that
///    want a non-null sink;
///  * ChromeTraceSink collects profiles from any number of threads and
///    renders them as Chrome trace-event JSON ("X" complete events,
///    loadable in chrome://tracing / Perfetto) — `rmlc --trace out.json`.
///
//===----------------------------------------------------------------------===//

#ifndef RML_SUPPORT_TRACE_H
#define RML_SUPPORT_TRACE_H

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

namespace rml {

/// One collector stall inside a run: where the pause sat on the
/// timeline, which kind of collection it was, and what it moved. The
/// begin/end pair is carried as (StartNanos, StartNanos + WallNanos).
struct GcPauseRecord {
  /// Pause begin on the steady clock (see traceNowNanos()).
  uint64_t StartNanos = 0;
  uint64_t WallNanos = 0;
  /// Minor (young pages only) vs major collection.
  bool Minor = false;
  uint64_t CopiedWords = 0;
  /// Live regions the collector traced through.
  uint64_t LiveRegions = 0;
};

/// What one pipeline phase cost. Static phases fill the first group;
/// the runtime "run" phase additionally folds in its HeapStats (the
/// heap counters stay zero for static phases).
struct PhaseProfile {
  std::string Name;
  /// Start of the phase on the steady clock (see traceNowNanos()).
  uint64_t StartNanos = 0;
  uint64_t WallNanos = 0;
  /// Diagnostics (errors, warnings, notes) the phase emitted.
  uint64_t DiagnosticsEmitted = 0;
  /// Arena nodes the phase added across the owning Compiler's arenas.
  uint64_t ArenaNodeDelta = 0;
  /// The phase did not run: a disabled checker pass, or a static phase
  /// reported through a cache hit (its work was reused, not redone).
  bool Skipped = false;
  /// Runtime-phase fold-in of rt::HeapStats; zero for static phases.
  uint64_t GcCount = 0;
  uint64_t AllocWords = 0;
  uint64_t CopiedWords = 0;
  /// Runtime-phase fold-in of the run's collector stalls, in pause
  /// order; empty for static phases. ChromeTraceSink renders these as
  /// events nested inside the run span.
  std::vector<GcPauseRecord> GcPauses;
};

/// Nanoseconds on the steady clock (the epoch is arbitrary but fixed
/// for the process; profiles from different threads are comparable).
uint64_t traceNowNanos();

/// Appends \p S to \p Out as the body of a JSON string literal:
/// backslashes and quotes are escaped, control characters become their
/// short escapes (\n, \t, ...) or \u00XX. Phase diagnostics and future
/// phase names can embed user source, so every string the trace and
/// stats renderers emit goes through here.
void appendJsonEscaped(std::string &Out, std::string_view S);

/// Convenience form of appendJsonEscaped.
std::string jsonEscaped(std::string_view S);

/// Renders \p V as a JSON number with six fixed fraction digits,
/// locale-independently (operator<< for double honours the global
/// locale's decimal separator and spells non-finite values "nan"/"inf"
/// — both invalid JSON). Non-finite values clamp to 0, magnitudes
/// beyond 1e12 to ±1e12; ratios and utilizations live in [0,1] anyway.
std::string jsonFixed(double V);

/// Where finished PhaseProfiles go. Implementations consumed by
/// concurrent pipelines (the service workers) must be thread-safe.
class TraceSink {
public:
  virtual ~TraceSink();
  virtual void record(const PhaseProfile &P) = 0;
  /// Streaming view of one collector pause, delivered as it ends (the
  /// evaluator's rt::EvalOptions::PauseSink hook). The default discards
  /// it: pauses also ride inside the run PhaseProfile's GcPauses, so
  /// most sinks need only record(). Override for live pause telemetry.
  virtual void recordGcPause(const GcPauseRecord &) {}
  /// A named counter sample at the current moment (the adaptive GC
  /// policy reports its threshold moves through this). The default
  /// discards it; ChromeTraceSink renders counter ("C") events.
  virtual void recordCounter(const char *, uint64_t) {}
};

/// Discards every profile. Stateless and trivially thread-safe.
class NoopTraceSink final : public TraceSink {
public:
  void record(const PhaseProfile &) override {}
  /// A shared instance for call sites that need a non-null sink.
  static NoopTraceSink &instance();
};

/// Thread-safe collector rendering the Chrome trace-event format: one
/// "X" (complete) event per recorded profile, timestamps normalised to
/// the earliest recorded phase, one tid per recording thread. A run
/// profile's GcPauses render as additional "gc:minor"/"gc:major" events
/// on the same tid, so viewers nest the collector stalls inside the run
/// span. The JSON object shape is
/// {"traceEvents":[...],"displayTimeUnit":"ms"}.
class ChromeTraceSink final : public TraceSink {
public:
  void record(const PhaseProfile &P) override;
  void recordCounter(const char *Name, uint64_t Value) override;

  /// Renders every recorded event; stable across calls.
  std::string json() const;

  /// json() into \p Path; false (no throw) when the file cannot be
  /// written.
  bool writeFile(const std::string &Path) const;

  size_t eventCount() const;

private:
  struct Event {
    PhaseProfile P;
    uint64_t Tid;
  };
  struct CounterEvent {
    const char *Name;
    uint64_t Value;
    uint64_t StartNanos;
    uint64_t Tid;
  };

  mutable std::mutex M;
  std::vector<Event> Events;
  std::vector<CounterEvent> Counters;
  std::unordered_map<std::thread::id, uint64_t> Tids;
};

/// RAII scope measuring one phase: the clock starts at construction and
/// stops at the first stop() (or destruction); destruction forwards the
/// finished profile to the sink, if any. Callers that need to attach
/// deltas (diagnostics, arena nodes) stop() first, fill the returned
/// profile, and let the destructor emit:
///
/// \code
///   PhaseTimer T("infer", Sink);
///   ... run the phase ...
///   PhaseProfile &P = T.stop();
///   P.ArenaNodeDelta = After - Before;
/// \endcode
class PhaseTimer {
public:
  explicit PhaseTimer(std::string Name, TraceSink *Sink = nullptr);
  ~PhaseTimer();

  PhaseTimer(const PhaseTimer &) = delete;
  PhaseTimer &operator=(const PhaseTimer &) = delete;

  /// Fixes WallNanos at the first call (idempotent) and returns the
  /// profile for the caller to finish filling.
  PhaseProfile &stop();

  PhaseProfile &profile() { return P; }
  const PhaseProfile &profile() const { return P; }

private:
  PhaseProfile P;
  TraceSink *Sink;
  std::chrono::steady_clock::time_point T0;
  bool Stopped = false;
};

} // namespace rml

#endif // RML_SUPPORT_TRACE_H
