//===- service/DiskCache.h - Persistent compile-cache tier ------*- C++ -*-===//
//
// Part of RegionML, a reproduction of "Garbage-Collection Safety for
// Region-Based Type-Polymorphic Programs" (Elsman, PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The on-disk tier beneath the in-memory CompileCache. The static
/// pipeline is pure and deterministic per (source, CompileOptions) —
/// the premise service/Hash.h documents — so the *static* products of a
/// compilation (printed program, rendered diagnostics, the top-level
/// scheme table, phase names and the eviction cost) are safe to persist
/// and reuse across process restarts: the same inputs can only ever
/// produce the same bytes.
///
/// One file per entry under the cache directory, named by the
/// 16-hex-digit content hash (`<hash>.rmlc`). Writes are atomic —
/// rendered into a private temp file and rename(2)d over the final
/// name — so concurrent writers (other workers, other processes
/// sharing the directory) either see a complete entry or none.
///
/// **Fail closed.** A load only succeeds when the versioned header
/// matches and the entry's embedded source and option bytes equal the
/// key exactly. FNV-1a collisions (two sources with one hash), format
/// drift (old/foreign files), truncation and plain corruption all
/// degrade to a miss — the service recompiles; it never serves a wrong
/// answer. Rejections and write failures are counted, never thrown.
///
/// **Runnable entries.** The CompiledUnit itself — a web of arena
/// pointers — is never serialised; instead each successful entry embeds
/// the program's flat, offset-based form (flat/Flat.h, its own magic,
/// version and checksum), which Compiler::runFlat executes directly.
/// A warm restart's first Run=true request therefore completes from
/// disk with zero compile phases. The flat section fails closed like
/// everything else: a damaged or undecodable flat unit rejects the
/// whole entry to a miss (counted in LoadRejects) rather than loading
/// a half-runnable entry.
///
/// **Bounded growth.** Left alone the directory grows one file per
/// distinct compile forever. A SweepConfig bounds it by total bytes
/// and/or entry age; a background sweeper thread (started by the
/// owning Service, or driven deterministically via sweepNow()) walks
/// the directory, drops entries past the age cut-off, then evicts
/// oldest-mtime-first until the byte watermark holds — LRU by the only
/// recency signal a shared directory offers. Sweeping is safe against
/// concurrent stores because publication is temp+rename: the sweeper
/// skips dot-prefixed temp files, and unlinking a just-published entry
/// merely costs the next load a recompile. It never serves, nor
/// destroys, a half-written entry.
///
//===----------------------------------------------------------------------===//

#ifndef RML_SERVICE_DISKCACHE_H
#define RML_SERVICE_DISKCACHE_H

#include "service/Hash.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

namespace rml::service {

struct CachedCompile;
using CachedCompileRef = std::shared_ptr<const CachedCompile>;

/// The persistent tier: load/store of static compile products keyed by
/// CacheKey. Thread-safe (counters are atomics; the filesystem provides
/// the write atomicity) and safe to share between processes pointed at
/// the same directory.
class DiskCache {
public:
  struct Counters {
    /// Verified loads served from disk.
    uint64_t Hits = 0;
    /// Loads that found no entry file.
    uint64_t Misses = 0;
    /// Entries that failed to persist (unwritable directory, rename
    /// failure); the request proceeds, only the warm start is lost.
    uint64_t WriteErrors = 0;
    /// Entry files rejected at load: bad magic/version, truncation,
    /// corruption, or a hash collision (embedded source/options differ
    /// from the key). All degrade to a miss.
    uint64_t LoadRejects = 0;
    /// Entry files the sweeper evicted (age cut-off or byte
    /// watermark), and their summed sizes.
    uint64_t SweptFiles = 0;
    uint64_t SweptBytes = 0;
    /// Sweeper passes that could not scan the directory, plus
    /// individual removals that failed (permissions, races lost in
    /// unexpected ways). The sweeper carries on; nothing throws.
    uint64_t SweepErrors = 0;
  };

  /// Retention policy for the sweeper. Zero fields impose no bound of
  /// that kind; an all-zero config makes every sweep a no-op.
  struct SweepConfig {
    /// Byte watermark over the summed entry sizes: the sweeper evicts
    /// oldest-mtime-first until the total fits.
    uint64_t MaxBytes = 0;
    /// Age cut-off: entries whose mtime is older than this many
    /// seconds are evicted regardless of the byte total.
    uint64_t MaxAgeSeconds = 0;
    /// Cadence of the background sweeper thread.
    uint64_t IntervalMillis = 5000;
  };

  /// Binds the cache to \p Dir, creating it (and parents) best-effort;
  /// a directory that cannot be created simply fails every store.
  explicit DiskCache(std::string Dir);

  /// Joins the sweeper if it is still running.
  ~DiskCache();

  /// Loads and verifies the entry for \p K; null on miss or rejection.
  /// A returned entry has FromDisk set and no Owner/Unit, but carries
  /// the persisted static products plus, for successful compiles, the
  /// decoded flat unit — so it is runnable without recompiling.
  CachedCompileRef load(const CacheKey &K) const;

  /// Persists \p V under \p K's hash, atomically. A no-op when the
  /// entry file already exists (determinism: the bytes would be
  /// identical) or when \p V itself came from disk. Best effort:
  /// failures count WriteErrors and are otherwise swallowed.
  void store(const CacheKey &K, const CachedCompile &V) const;

  Counters counters() const;
  const std::string &dir() const { return Dir; }

  /// Starts the background sweeper under \p Cfg. Idempotent per cache
  /// (a second call is ignored); an all-zero config starts nothing.
  /// The thread sweeps once immediately, then every IntervalMillis
  /// until stopSweeper() (or destruction) joins it.
  void startSweeper(const SweepConfig &Cfg);

  /// Stops and joins the sweeper thread. Safe to call when it was
  /// never started, and again after it stopped.
  void stopSweeper();

  /// One synchronous sweep pass under \p Cfg, independent of the
  /// background thread — the deterministic path tests and tools use.
  /// \returns files evicted by this pass.
  uint64_t sweepNow(const SweepConfig &Cfg) const;

  /// "<16 hex digits>.rmlc" — the entry file name for \p Hash.
  static std::string entryFileName(uint64_t Hash);

  /// Current serialisation version; bumped on any format change so old
  /// files fail closed to a miss instead of being misparsed. Version 2
  /// appended the embedded flat unit; version 3 added the Captures
  /// option byte and the persisted capture report; v1/v2 files are
  /// version-rejected.
  static constexpr uint32_t FormatVersion = 3;
  /// First bytes of every entry file.
  static constexpr char Magic[8] = {'R', 'M', 'L', 'D', 'C', 'A', 'C', 'H'};

private:
  std::string Dir;
  mutable std::atomic<uint64_t> Hits{0};
  mutable std::atomic<uint64_t> Misses{0};
  mutable std::atomic<uint64_t> WriteErrors{0};
  mutable std::atomic<uint64_t> LoadRejects{0};
  mutable std::atomic<uint64_t> SweptFiles{0};
  mutable std::atomic<uint64_t> SweptBytes{0};
  mutable std::atomic<uint64_t> SweepErrors{0};
  /// Distinguishes temp files of concurrent writers in one process.
  mutable std::atomic<uint64_t> TmpCounter{0};

  // Background sweeper state. The mutex/cv pair exists only to make
  // stopSweeper() wake a sleeping thread promptly; sweeping itself
  // takes no lock (the filesystem is the shared state).
  std::thread Sweeper;
  std::mutex SweepM;
  std::condition_variable SweepCv;
  bool SweepStop = false;
  void sweeperMain(SweepConfig Cfg);
};

} // namespace rml::service

#endif // RML_SERVICE_DISKCACHE_H
