//===- service/DiskCache.h - Persistent compile-cache tier ------*- C++ -*-===//
//
// Part of RegionML, a reproduction of "Garbage-Collection Safety for
// Region-Based Type-Polymorphic Programs" (Elsman, PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The on-disk tier beneath the in-memory CompileCache. The static
/// pipeline is pure and deterministic per (source, CompileOptions) —
/// the premise service/Hash.h documents — so the *static* products of a
/// compilation (printed program, rendered diagnostics, the top-level
/// scheme table, phase names and the eviction cost) are safe to persist
/// and reuse across process restarts: the same inputs can only ever
/// produce the same bytes.
///
/// One file per entry under the cache directory, named by the
/// 16-hex-digit content hash (`<hash>.rmlc`). Writes are atomic —
/// rendered into a private temp file and rename(2)d over the final
/// name — so concurrent writers (other workers, other processes
/// sharing the directory) either see a complete entry or none.
///
/// **Fail closed.** A load only succeeds when the versioned header
/// matches and the entry's embedded source and option bytes equal the
/// key exactly. FNV-1a collisions (two sources with one hash), format
/// drift (old/foreign files), truncation and plain corruption all
/// degrade to a miss — the service recompiles; it never serves a wrong
/// answer. Rejections and write failures are counted, never thrown.
///
/// **Runnable entries.** The CompiledUnit itself — a web of arena
/// pointers — is never serialised; instead each successful entry embeds
/// the program's flat, offset-based form (flat/Flat.h, its own magic,
/// version and checksum), which Compiler::runFlat executes directly.
/// A warm restart's first Run=true request therefore completes from
/// disk with zero compile phases. The flat section fails closed like
/// everything else: a damaged or undecodable flat unit rejects the
/// whole entry to a miss (counted in LoadRejects) rather than loading
/// a half-runnable entry.
///
//===----------------------------------------------------------------------===//

#ifndef RML_SERVICE_DISKCACHE_H
#define RML_SERVICE_DISKCACHE_H

#include "service/Hash.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

namespace rml::service {

struct CachedCompile;
using CachedCompileRef = std::shared_ptr<const CachedCompile>;

/// The persistent tier: load/store of static compile products keyed by
/// CacheKey. Thread-safe (counters are atomics; the filesystem provides
/// the write atomicity) and safe to share between processes pointed at
/// the same directory.
class DiskCache {
public:
  struct Counters {
    /// Verified loads served from disk.
    uint64_t Hits = 0;
    /// Loads that found no entry file.
    uint64_t Misses = 0;
    /// Entries that failed to persist (unwritable directory, rename
    /// failure); the request proceeds, only the warm start is lost.
    uint64_t WriteErrors = 0;
    /// Entry files rejected at load: bad magic/version, truncation,
    /// corruption, or a hash collision (embedded source/options differ
    /// from the key). All degrade to a miss.
    uint64_t LoadRejects = 0;
  };

  /// Binds the cache to \p Dir, creating it (and parents) best-effort;
  /// a directory that cannot be created simply fails every store.
  explicit DiskCache(std::string Dir);

  /// Loads and verifies the entry for \p K; null on miss or rejection.
  /// A returned entry has FromDisk set and no Owner/Unit, but carries
  /// the persisted static products plus, for successful compiles, the
  /// decoded flat unit — so it is runnable without recompiling.
  CachedCompileRef load(const CacheKey &K) const;

  /// Persists \p V under \p K's hash, atomically. A no-op when the
  /// entry file already exists (determinism: the bytes would be
  /// identical) or when \p V itself came from disk. Best effort:
  /// failures count WriteErrors and are otherwise swallowed.
  void store(const CacheKey &K, const CachedCompile &V) const;

  Counters counters() const;
  const std::string &dir() const { return Dir; }

  /// "<16 hex digits>.rmlc" — the entry file name for \p Hash.
  static std::string entryFileName(uint64_t Hash);

  /// Current serialisation version; bumped on any format change so old
  /// files fail closed to a miss instead of being misparsed. Version 2
  /// appended the embedded flat unit; v1 files are version-rejected.
  static constexpr uint32_t FormatVersion = 2;
  /// First bytes of every entry file.
  static constexpr char Magic[8] = {'R', 'M', 'L', 'D', 'C', 'A', 'C', 'H'};

private:
  std::string Dir;
  mutable std::atomic<uint64_t> Hits{0};
  mutable std::atomic<uint64_t> Misses{0};
  mutable std::atomic<uint64_t> WriteErrors{0};
  mutable std::atomic<uint64_t> LoadRejects{0};
  /// Distinguishes temp files of concurrent writers in one process.
  mutable std::atomic<uint64_t> TmpCounter{0};
};

} // namespace rml::service

#endif // RML_SERVICE_DISKCACHE_H
