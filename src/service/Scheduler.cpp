//===- service/Scheduler.cpp ----------------------------------------------===//

#include "service/Scheduler.h"

#include <algorithm>
#include <deque>
#include <vector>

using namespace rml;
using namespace rml::service;

Scheduler::~Scheduler() = default;

const char *rml::service::schedPolicyName(SchedPolicy P) {
  switch (P) {
  case SchedPolicy::Fifo:
    return "fifo";
  case SchedPolicy::Ljf:
    return "ljf";
  }
  return "fifo";
}

bool rml::service::parseSchedPolicy(std::string_view Name, SchedPolicy &Out) {
  if (Name == "fifo") {
    Out = SchedPolicy::Fifo;
    return true;
  }
  if (Name == "ljf") {
    Out = SchedPolicy::Ljf;
    return true;
  }
  return false;
}

namespace {

/// Strict submission order.
class FifoScheduler final : public Scheduler {
public:
  void push(ScheduledJob J) override { Jobs.push_back(std::move(J)); }

  ScheduledJob pop() override {
    ScheduledJob J = std::move(Jobs.front());
    Jobs.pop_front();
    return J;
  }

  size_t size() const override { return Jobs.size(); }
  const char *policyName() const override { return "fifo"; }

private:
  std::deque<ScheduledJob> Jobs;
};

/// Longest-job-first: a binary max-heap on (CostKey, earliest Seq).
/// std::priority_queue cannot hand out its move-only top, so the heap
/// lives in a plain vector driven by push_heap/pop_heap — pop_heap
/// rotates the maximum to the back, where it can be moved from.
class LjfScheduler final : public Scheduler {
public:
  void push(ScheduledJob J) override {
    Jobs.push_back(std::move(J));
    std::push_heap(Jobs.begin(), Jobs.end(), Before);
  }

  ScheduledJob pop() override {
    std::pop_heap(Jobs.begin(), Jobs.end(), Before);
    ScheduledJob J = std::move(Jobs.back());
    Jobs.pop_back();
    return J;
  }

  size_t size() const override { return Jobs.size(); }
  const char *policyName() const override { return "ljf"; }

private:
  /// Heap "less-than": the top is the largest CostKey; equal costs go
  /// to the earliest Seq (a larger Seq orders lower).
  static bool Before(const ScheduledJob &A, const ScheduledJob &B) {
    if (A.CostKey != B.CostKey)
      return A.CostKey < B.CostKey;
    return A.Seq > B.Seq;
  }

  std::vector<ScheduledJob> Jobs;
};

} // namespace

std::unique_ptr<Scheduler> rml::service::makeScheduler(SchedPolicy P) {
  if (P == SchedPolicy::Ljf)
    return std::make_unique<LjfScheduler>();
  return std::make_unique<FifoScheduler>();
}
