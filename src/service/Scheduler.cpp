//===- service/Scheduler.cpp ----------------------------------------------===//

#include "service/Scheduler.h"

#include <algorithm>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

using namespace rml;
using namespace rml::service;

Scheduler::~Scheduler() = default;

const char *rml::service::schedPolicyName(SchedPolicy P) {
  switch (P) {
  case SchedPolicy::Fifo:
    return "fifo";
  case SchedPolicy::Ljf:
    return "ljf";
  case SchedPolicy::Deadline:
    return "deadline";
  case SchedPolicy::FairShare:
    return "fair";
  }
  return "fifo";
}

bool rml::service::parseSchedPolicy(std::string_view Name, SchedPolicy &Out) {
  if (Name == "fifo") {
    Out = SchedPolicy::Fifo;
    return true;
  }
  if (Name == "ljf") {
    Out = SchedPolicy::Ljf;
    return true;
  }
  if (Name == "deadline") {
    Out = SchedPolicy::Deadline;
    return true;
  }
  if (Name == "fair") {
    Out = SchedPolicy::FairShare;
    return true;
  }
  return false;
}

namespace {

/// Strict submission order.
class FifoScheduler final : public Scheduler {
public:
  void push(ScheduledJob J) override { Jobs.push_back(std::move(J)); }

  ScheduledJob pop() override {
    ScheduledJob J = std::move(Jobs.front());
    Jobs.pop_front();
    return J;
  }

  size_t size() const override { return Jobs.size(); }
  const char *policyName() const override { return "fifo"; }

private:
  std::deque<ScheduledJob> Jobs;
};

/// Longest-job-first: a binary max-heap on (CostKey, earliest Seq).
/// std::priority_queue cannot hand out its move-only top, so the heap
/// lives in a plain vector driven by push_heap/pop_heap — pop_heap
/// rotates the maximum to the back, where it can be moved from.
class LjfScheduler final : public Scheduler {
public:
  void push(ScheduledJob J) override {
    Jobs.push_back(std::move(J));
    std::push_heap(Jobs.begin(), Jobs.end(), Before);
  }

  ScheduledJob pop() override {
    std::pop_heap(Jobs.begin(), Jobs.end(), Before);
    ScheduledJob J = std::move(Jobs.back());
    Jobs.pop_back();
    return J;
  }

  size_t size() const override { return Jobs.size(); }
  const char *policyName() const override { return "ljf"; }

private:
  /// Heap "less-than": the top is the largest CostKey; equal costs go
  /// to the earliest Seq (a larger Seq orders lower).
  static bool Before(const ScheduledJob &A, const ScheduledJob &B) {
    if (A.CostKey != B.CostKey)
      return A.CostKey < B.CostKey;
    return A.Seq > B.Seq;
  }

  std::vector<ScheduledJob> Jobs;
};

/// Earliest-deadline-first: a min-heap on (DeadlineAt, earliest Seq).
/// Requests without a deadline carry ScheduledJob::NoDeadline and sort
/// after every dated request, degrading to FIFO among themselves.
class DeadlineScheduler final : public Scheduler {
public:
  void push(ScheduledJob J) override {
    Jobs.push_back(std::move(J));
    std::push_heap(Jobs.begin(), Jobs.end(), After);
  }

  ScheduledJob pop() override {
    std::pop_heap(Jobs.begin(), Jobs.end(), After);
    ScheduledJob J = std::move(Jobs.back());
    Jobs.pop_back();
    return J;
  }

  size_t size() const override { return Jobs.size(); }
  const char *policyName() const override { return "deadline"; }

private:
  /// Heap "less-than" for a min-heap: the top is the *smallest*
  /// DeadlineAt, so A orders below B when A's deadline is later.
  static bool After(const ScheduledJob &A, const ScheduledJob &B) {
    if (A.DeadlineAt != B.DeadlineAt)
      return A.DeadlineAt > B.DeadlineAt;
    return A.Seq > B.Seq;
  }

  std::vector<ScheduledJob> Jobs;
};

/// Per-tenant deficit round-robin: each tenant keeps a FIFO of its own
/// jobs plus a deficit counter; serving a job charges its CostKey
/// against the deficit, and a tenant whose head job costs more than its
/// deficit waits for the round-robin to credit it another quantum. The
/// result: over time every active tenant gets an equal share of
/// *predicted cost*, so a tenant flooding expensive sources cannot
/// starve a tenant submitting cheap ones. A tenant that drains loses
/// its ring slot and its deficit (no banking credit while idle).
class FairShareScheduler final : public Scheduler {
public:
  explicit FairShareScheduler(uint64_t Quantum)
      : Quantum(std::max<uint64_t>(Quantum, 1)) {}

  void push(ScheduledJob J) override {
    TenantQueue &T = Tenants[J.Req.Tenant];
    if (!T.InRing) {
      T.InRing = true;
      Ring.push_back(J.Req.Tenant);
    }
    T.Jobs.push_back(std::move(J));
    ++Count;
  }

  ScheduledJob pop() override {
    // Two scans at most: one to find a tenant whose deficit already
    // covers its head job, and — when every tenant is short — one after
    // a bulk top-up of exactly the number of DRR rounds the nearest
    // head still needs (equivalent to spinning that many rounds, minus
    // the spinning).
    for (int Attempt = 0; Attempt < 2; ++Attempt) {
      uint64_t MinRounds = UINT64_MAX;
      for (size_t I = 0; I < Ring.size(); ++I) {
        size_t Idx = (RingPos + I) % Ring.size();
        TenantQueue &T = Tenants[Ring[Idx]];
        uint64_t Cost = T.Jobs.front().CostKey;
        if (T.Deficit >= Cost)
          return serve(Idx, T, Cost);
        uint64_t Rounds = (Cost - T.Deficit + Quantum - 1) / Quantum;
        MinRounds = std::min(MinRounds, Rounds);
      }
      for (const std::string &Name : Ring)
        Tenants[Name].Deficit += MinRounds * Quantum;
    }
    // Unreachable: the top-up guarantees the second scan serves.
    return serve(RingPos % Ring.size(), Tenants[Ring[RingPos % Ring.size()]],
                 0);
  }

  size_t size() const override { return Count; }
  const char *policyName() const override { return "fair"; }

private:
  struct TenantQueue {
    std::deque<ScheduledJob> Jobs;
    uint64_t Deficit = 0;
    bool InRing = false;
  };

  ScheduledJob serve(size_t Idx, TenantQueue &T, uint64_t Cost) {
    ScheduledJob J = std::move(T.Jobs.front());
    T.Jobs.pop_front();
    T.Deficit -= std::min(T.Deficit, Cost);
    --Count;
    if (T.Jobs.empty()) {
      // Drained: drop the ring slot and the unspent deficit.
      T.Deficit = 0;
      T.InRing = false;
      Ring.erase(Ring.begin() + static_cast<ptrdiff_t>(Idx));
      if (RingPos > Idx)
        --RingPos;
      if (Ring.empty())
        RingPos = 0;
      else
        RingPos %= Ring.size();
    } else {
      // Stay on this tenant so it can spend its remaining deficit
      // before the round-robin moves on.
      RingPos = Idx;
    }
    return J;
  }

  const uint64_t Quantum;
  std::unordered_map<std::string, TenantQueue> Tenants;
  /// Active tenants in round-robin order; RingPos is the next to serve.
  std::vector<std::string> Ring;
  size_t RingPos = 0;
  size_t Count = 0;
};

} // namespace

std::unique_ptr<Scheduler> rml::service::makeScheduler(SchedPolicy P,
                                                       uint64_t Quantum) {
  switch (P) {
  case SchedPolicy::Fifo:
    return std::make_unique<FifoScheduler>();
  case SchedPolicy::Ljf:
    return std::make_unique<LjfScheduler>();
  case SchedPolicy::Deadline:
    return std::make_unique<DeadlineScheduler>();
  case SchedPolicy::FairShare:
    return std::make_unique<FairShareScheduler>(Quantum);
  }
  return std::make_unique<FifoScheduler>();
}
