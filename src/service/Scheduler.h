//===- service/Scheduler.h - Pluggable dequeue policies ---------*- C++ -*-===//
//
// Part of RegionML, a reproduction of "Garbage-Collection Safety for
// Region-Based Type-Polymorphic Programs" (Elsman, PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The policy layer between admission and execution: a Scheduler owns
/// the queued ScheduledJobs and decides which one a free worker takes
/// next. Implementations are *externally synchronized* — the Service
/// calls every method under its queue mutex, so a policy is plain data
/// structure code with no locking of its own (and is trivially
/// exchangeable for experiments).
///
/// Four policies ship today: Fifo (submission order, the fairness
/// baseline), Ljf (longest-predicted-job-first by cost key — LPT
/// scheduling, which on a heterogeneous batch starts the long jobs
/// first so the short ones pack the trailing capacity, shrinking tail
/// latency), Deadline (earliest-deadline-first on the admission-stamped
/// absolute deadline), and FairShare (per-tenant deficit round-robin,
/// so one tenant's expensive sources cannot starve another's cheap
/// ones).
///
//===----------------------------------------------------------------------===//

#ifndef RML_SERVICE_SCHEDULER_H
#define RML_SERVICE_SCHEDULER_H

#include "service/Config.h"
#include "service/Request.h"

#include "support/Trace.h"

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <type_traits>

namespace rml::service {

/// One admitted request travelling through the service, with exactly
/// one completion armed: either the promise (future-style submit) or
/// the callback (event-loop submit). complete() fires whichever it is.
struct ScheduledJob {
  /// DeadlineAt for a request that set no deadline: sorts after every
  /// real deadline, so deadline-free work never preempts dated work.
  static constexpr uint64_t NoDeadline = UINT64_MAX;

  Request Req;
  /// Future-style completion (armed iff Callback is empty).
  std::promise<Response> Promise;
  /// Callback-style completion, invoked on the worker thread (or, for
  /// requests rejected at admission, inline on the submitter's thread).
  std::function<void(Response)> Callback;
  /// Scheduling weight, stamped once at admission by Scheduler::admit():
  /// the cost provider's predicted processing nanos when one is set
  /// (Service wires the CostModel here), the raw source length
  /// otherwise. Ljf orders on it; FairShare charges it against the
  /// tenant's deficit.
  uint64_t CostKey = 0;
  /// Admission sequence number: ties in CostKey resolve to the earliest
  /// submission, keeping every policy deterministic and starvation-free
  /// within a batch.
  uint64_t Seq = 0;
  /// Absolute deadline in traceNowNanos() time, stamped at admission
  /// from Request::DeadlineNanos (NoDeadline when the request set
  /// none). Only the Deadline policy orders on it.
  uint64_t DeadlineAt = NoDeadline;

  /// Resolves the armed completion with \p R.
  void complete(Response R) {
    if (Callback)
      Callback(std::move(R));
    else
      Promise.set_value(std::move(R));
  }
};

/// The dequeue-policy interface. Externally synchronized (see the file
/// comment): no Scheduler method is thread-safe on its own.
class Scheduler {
public:
  /// Maps an admitted Request to its scheduling cost (predicted
  /// processing nanos). Called under the Service's queue mutex: keep it
  /// O(1)-ish and non-blocking.
  using CostFn = std::function<uint64_t(const Request &)>;

  virtual ~Scheduler();

  /// Installs the cost provider consulted by admit(). Null restores the
  /// source-length fallback.
  void setCostProvider(CostFn F) { Provider = std::move(F); }

  /// Admission: stamps CostKey (from the provider — consulted exactly
  /// once, here and nowhere else) and the absolute DeadlineAt, then
  /// hands the job to the policy. The caller stamps Seq first.
  /// \returns the stamped CostKey, so the caller can account queued
  /// predicted cost without consulting the provider a second time.
  uint64_t admit(ScheduledJob J) {
    static_assert(std::is_invocable_r_v<uint64_t, const CostFn &,
                                        const Request &>,
                  "the cost provider must map a const Request & to a "
                  "uint64_t cost, and admit() is its only call site");
    J.CostKey = Provider ? Provider(J.Req) : J.Req.Source.size();
    J.DeadlineAt = J.Req.DeadlineNanos
                       ? traceNowNanos() + J.Req.DeadlineNanos
                       : ScheduledJob::NoDeadline;
    uint64_t Cost = J.CostKey;
    push(std::move(J));
    return Cost;
  }

  /// Enqueues a fully stamped job (admit() is the normal entry; tests
  /// push pre-stamped jobs directly).
  virtual void push(ScheduledJob J) = 0;
  /// Removes and returns the next job; undefined when empty.
  virtual ScheduledJob pop() = 0;
  virtual size_t size() const = 0;
  /// The policy's stable name ("fifo", "ljf", "deadline", "fair").
  virtual const char *policyName() const = 0;

  bool empty() const { return size() == 0; }

private:
  CostFn Provider;
};

/// Builds the Scheduler for \p P. \p FairShareQuantum is the DRR
/// quantum (cost units credited per round) used by SchedPolicy::
/// FairShare; other policies ignore it.
std::unique_ptr<Scheduler> makeScheduler(SchedPolicy P,
                                         uint64_t FairShareQuantum = 1 << 20);

} // namespace rml::service

#endif // RML_SERVICE_SCHEDULER_H
