//===- service/Scheduler.h - Pluggable dequeue policies ---------*- C++ -*-===//
//
// Part of RegionML, a reproduction of "Garbage-Collection Safety for
// Region-Based Type-Polymorphic Programs" (Elsman, PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The policy layer between admission and execution: a Scheduler owns
/// the queued ScheduledJobs and decides which one a free worker takes
/// next. Implementations are *externally synchronized* — the Service
/// calls every method under its queue mutex, so a policy is plain data
/// structure code with no locking of its own (and is trivially
/// exchangeable for experiments).
///
/// Two policies ship today: Fifo (submission order, the fairness
/// baseline) and Ljf (longest-job-first by cost key — LPT scheduling,
/// which on a heterogeneous batch starts the long jobs first so the
/// short ones pack the trailing capacity, shrinking tail latency).
///
//===----------------------------------------------------------------------===//

#ifndef RML_SERVICE_SCHEDULER_H
#define RML_SERVICE_SCHEDULER_H

#include "service/Config.h"
#include "service/Request.h"

#include <functional>
#include <future>
#include <memory>

namespace rml::service {

/// One admitted request travelling through the service, with exactly
/// one completion armed: either the promise (future-style submit) or
/// the callback (event-loop submit). complete() fires whichever it is.
struct ScheduledJob {
  Request Req;
  /// Future-style completion (armed iff Callback is empty).
  std::promise<Response> Promise;
  /// Callback-style completion, invoked on the worker thread (or, for
  /// requests rejected at admission, inline on the submitter's thread).
  std::function<void(Response)> Callback;
  /// Scheduling weight, fixed at admission: the source length today, a
  /// cached cost estimate tomorrow. Only Ljf reads it.
  uint64_t CostKey = 0;
  /// Admission sequence number: ties in CostKey resolve to the earliest
  /// submission, keeping every policy deterministic and starvation-free
  /// within a batch.
  uint64_t Seq = 0;

  /// Resolves the armed completion with \p R.
  void complete(Response R) {
    if (Callback)
      Callback(std::move(R));
    else
      Promise.set_value(std::move(R));
  }
};

/// The dequeue-policy interface. Externally synchronized (see the file
/// comment): no Scheduler method is thread-safe on its own.
class Scheduler {
public:
  virtual ~Scheduler();

  virtual void push(ScheduledJob J) = 0;
  /// Removes and returns the next job; undefined when empty.
  virtual ScheduledJob pop() = 0;
  virtual size_t size() const = 0;
  /// The policy's stable name ("fifo", "ljf").
  virtual const char *policyName() const = 0;

  bool empty() const { return size() == 0; }
};

/// Builds the Scheduler for \p P.
std::unique_ptr<Scheduler> makeScheduler(SchedPolicy P);

} // namespace rml::service

#endif // RML_SERVICE_SCHEDULER_H
