//===- service/Config.h - Service configuration -----------------*- C++ -*-===//
//
// Part of RegionML, a reproduction of "Garbage-Collection Safety for
// Region-Based Type-Polymorphic Programs" (Elsman, PLDI 2023).
//
//===----------------------------------------------------------------------===//

#ifndef RML_SERVICE_CONFIG_H
#define RML_SERVICE_CONFIG_H

#include "rt/PagePool.h"
#include "support/Trace.h"

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <thread>

namespace rml::service {

/// Which Scheduler the service dequeues with (see service/Scheduler.h).
enum class SchedPolicy : uint8_t {
  /// Strict submission order — the default, and the fairness baseline.
  Fifo,
  /// Longest-job-first by cost key (the CostModel's predicted
  /// processing nanos once history exists, source length before): on a
  /// heterogeneous batch the long compiles start first and the short
  /// ones fill the trailing capacity, shrinking the tail (p95/p99) the
  /// way LPT scheduling shrinks makespan.
  Ljf,
  /// Earliest-deadline-first on Request::DeadlineNanos; deadline-free
  /// requests sort after every dated one.
  Deadline,
  /// Per-tenant deficit round-robin on Request::Tenant: every active
  /// tenant gets an equal share of predicted cost, so one tenant's
  /// expensive sources cannot starve another's cheap ones.
  FairShare,
};

/// \returns "fifo" / "ljf" / "deadline" / "fair".
const char *schedPolicyName(SchedPolicy P);

/// Parses "fifo"/"ljf"/"deadline"/"fair"; false on anything else
/// (\p Out untouched).
bool parseSchedPolicy(std::string_view Name, SchedPolicy &Out);

/// Service configuration.
struct ServiceConfig {
  /// Worker threads; 0 means one per hardware thread (at least 1).
  unsigned Workers = 0;
  /// Bounded queue: submit() blocks once this many requests wait
  /// (backpressure toward the producers).
  size_t QueueCapacity = 256;
  /// LRU compile-cache entries; 0 disables caching.
  size_t CacheCapacity = 128;
  /// Bound on the cache's summed arena footprint (nodes across frozen
  /// per-entry Compilers); 0 leaves cost unbounded (entry count only).
  size_t CacheCostCapacity = 0;
  /// Directory for the persistent compile-cache tier (rmlc --cache-dir):
  /// each successful or failed compile's static products are written as
  /// one content-hash-named file, and a memory miss consults the
  /// directory before recompiling, so warm starts survive process
  /// restarts and the directory may be shared between processes. Empty
  /// (the default) disables the disk tier; CacheCapacity == 0 disables
  /// it too (the disk tier sits beneath the memory tier, not beside
  /// it). See service/DiskCache.h for the format and fail-closed rules.
  std::string CacheDir;
  /// Retention bounds for the disk tier (rmlc/rmld --cache-max-bytes,
  /// --cache-max-age): when either is nonzero the service runs the
  /// cache's background sweeper, which evicts entries past the age
  /// cut-off and then oldest-first past the byte watermark (see
  /// DiskCache::SweepConfig). Both zero (the default) leaves the
  /// directory unbounded, exactly as before.
  uint64_t CacheMaxBytes = 0;
  uint64_t CacheMaxAgeSeconds = 0;
  /// Background sweep cadence in milliseconds.
  uint64_t CacheSweepIntervalMillis = 5000;
  /// Standard region pages the cross-request PagePool may hold; worker
  /// runs draw pages from it and recycle them back on heap teardown.
  /// 0 disables pooling (every run round-trips the allocator). Requests
  /// that ask for RetainReleasedPages dangling detection bypass the
  /// pool regardless (see rt/PagePool.h).
  size_t PagePoolPages = rt::PagePool::DefaultMaxPages;
  /// Eagerly allocate the pool's PagePoolPages at construction so the
  /// first request wave runs entirely on recycled pages (a cold pool
  /// pays one allocator miss per page instead).
  bool PrewarmPool = false;
  /// Optional sink receiving every executed phase profile (static
  /// phases of cold compiles plus each request's runtime phase, whose
  /// GcPauses the sink can render nested). Non-owning; must be
  /// thread-safe (workers record concurrently) and outlive the service.
  /// Null disables forwarding.
  TraceSink *Trace = nullptr;
  /// Dequeue policy (rmlc --sched fifo|ljf).
  SchedPolicy Policy = SchedPolicy::Fifo;
  /// Per-phase wall-clock budgets in nanoseconds, keyed by static phase
  /// name ("parse", "infer", ...; see Compiler::staticPhaseNames()). A
  /// phase absent from the map is unlimited; a present value (zero
  /// included) cuts the request off at the next phase boundary once the
  /// phase's wall time exceeds it — RequestOutcome::Budget, counted in
  /// ServiceStats::BudgetExceeded. Budgets bind cold compiles only: a
  /// cache hit reuses finished work and pays no phase time, and the
  /// runtime "run" phase is not budgeted (interrupting the interpreter
  /// mid-flight is a different mechanism).
  std::map<std::string, uint64_t> PhaseBudgets = {};
  /// Derive default PhaseBudgets from the CostModel's observed per-phase
  /// distributions (rmlc/rmld --auto-budget): once a phase has
  /// BudgetMinSamples observations, cold compiles run under budget =
  /// quantile(BudgetQuantile) x BudgetMultiplier nanos for that phase.
  /// Explicit PhaseBudgets win (auto-derivation only fills an empty
  /// map), and until enough history exists compiles run unbudgeted —
  /// the model must never invent a budget from noise.
  bool AutoBudget = false;
  /// Observed-distribution quantile the derived budget starts from.
  double BudgetQuantile = 0.95;
  /// Headroom multiplier applied to the quantile: a derived budget
  /// should catch pathological blowups, not routine variance.
  double BudgetMultiplier = 8.0;
  /// Per-phase observations required before a budget is derived.
  size_t BudgetMinSamples = 32;
  /// DRR quantum for SchedPolicy::FairShare, in cost-key units
  /// (predicted nanos once the model has history): the credit each
  /// active tenant receives per round-robin round. Smaller is fairer
  /// but rotates tenants more; ~1ms of predicted work is a reasonable
  /// serving grain.
  uint64_t FairShareQuantum = 1 << 20;

  unsigned effectiveWorkers() const {
    if (Workers)
      return Workers;
    unsigned H = std::thread::hardware_concurrency();
    return H ? H : 1;
  }
};

} // namespace rml::service

#endif // RML_SERVICE_CONFIG_H
