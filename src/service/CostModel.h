//===- service/CostModel.h - Learned per-source cost estimates --*- C++ -*-===//
//
// Part of RegionML, a reproduction of "Garbage-Collection Safety for
// Region-Based Type-Polymorphic Programs" (Elsman, PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The learned cost model behind scheduling, admission, and budget
/// decisions. Every completed request feeds one observation — the summed
/// wall time of its executed (non-Skipped) phases, keyed by the same
/// FNV-1a content hash the compile cache uses — and three consumers read
/// the accumulated state:
///
///   - the Scheduler's cost provider calls predict() so Ljf orders by
///     *predicted* processing nanos instead of raw source length;
///   - net::Server admission calls predict() to shed work whose learned
///     cost already exceeds the client's deadline;
///   - the Executor calls deriveBudgets() to turn observed per-phase
///     distributions into default PhaseBudgets (--auto-budget).
///
/// Never-seen sources fall back to a global *per-byte* prior (EWMA of
/// cost/byte over cold compiles), so a cold prediction is PerByte x
/// sourceBytes — proportional to length, which preserves Ljf's
/// longest-source-first ordering before any key has history. Before the
/// first observation the bootstrap prediction is the byte count itself:
/// the units are wrong but the *order* (all the scheduler needs) is
/// right, and Prediction::FromPrior tells admission never to shed on it.
///
/// Thread-safe: one mutex guards all state. Observations are O(phases),
/// predictions O(1), and both are negligible next to a parse.
///
//===----------------------------------------------------------------------===//

#ifndef RML_SERVICE_COSTMODEL_H
#define RML_SERVICE_COSTMODEL_H

#include "support/Trace.h"

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace rml::service {

/// Thread-safe, content-keyed store of EWMA cost estimates.
class CostModel {
public:
  /// EWMA weight of the newest observation. High enough to converge in
  /// a handful of passes, low enough to ride out one noisy run.
  static constexpr double Alpha = 0.4;
  /// Per-phase samples retained for quantile queries: a ring, so the
  /// newest RingCapacity observations define the distribution budgets
  /// are derived from.
  static constexpr size_t RingCapacity = 512;

  /// One answer from predict().
  struct Prediction {
    /// Predicted total processing nanoseconds (>= 1). When FromPrior is
    /// set and the model has never observed anything, this is the raw
    /// byte count instead — ordinally useful, dimensionally meaningless.
    uint64_t Nanos = 1;
    /// True when the estimate came from the per-byte prior (or the
    /// bootstrap fallback) rather than a per-key entry. Admission must
    /// not shed on prior-based predictions: they rank, they don't time.
    bool FromPrior = true;
  };

  /// Counters + gauges for /stats ("cost_model": {...}).
  struct Snapshot {
    uint64_t Entries = 0;   ///< distinct keys with history
    uint64_t Hits = 0;      ///< predictions answered from a key entry
    uint64_t PriorUses = 0; ///< predictions answered from the prior
    double PriorPerByte = 0.0; ///< current cost-per-byte prior (nanos)
  };

  /// Predicts the total processing cost of the source hashing to
  /// \p Hash with \p SourceBytes bytes. Never fails: falls through
  /// entry -> per-byte prior -> bootstrap (see file comment).
  Prediction predict(uint64_t Hash, size_t SourceBytes) const;

  /// Folds one completed request into the model: the entry for \p Hash
  /// absorbs the summed non-Skipped wall nanos of \p Profiles. Pass
  /// \p UpdatePrior only for cold (non-cache-hit) completions, so the
  /// per-byte prior keeps meaning "a full compile costs this much per
  /// byte" and is not dragged down by cheap cache-hit runs. Callers
  /// skip Budget/Shutdown/InternalError outcomes — a cut-off's partial
  /// cost is not the source's cost. The per-phase quantile rings are
  /// NOT fed here: they ride the pipeline's governor hook (see
  /// observePhase), which sees phases the sum never will — the phases
  /// of a compile that was later cut off.
  void observe(uint64_t Hash, size_t SourceBytes,
               const std::vector<PhaseProfile> &Profiles, bool UpdatePrior);

  /// Lands one executed phase's wall nanos in its quantile ring. Fed
  /// from PhaseGovernor::keepGoing — the pipeline's exactly-once
  /// per-finished-phase observation stream — by the Executor's governor
  /// on every cold compile. Skipped phases are the caller's to filter.
  void observePhase(const PhaseProfile &P);

  /// Derives per-phase budgets from the observed distributions: for
  /// every static phase with at least \p MinSamples samples, budget =
  /// quantile(\p Quantile) x \p Multiplier nanos. The runtime "run"
  /// phase is never budgeted (PhaseBudgets bind compiles only). Returns
  /// an empty map until enough history exists — callers treat that as
  /// "no budgets yet", not "budget everything at zero".
  std::map<std::string, uint64_t> deriveBudgets(double Quantile,
                                                double Multiplier,
                                                size_t MinSamples) const;

  Snapshot snapshot() const;

private:
  /// Per-key EWMA of total processing nanos.
  struct Entry {
    double TotalNanos = 0.0;
    uint64_t Count = 0;
  };

  /// Fixed-capacity ring of recent wall-nano samples for one phase.
  struct PhaseRing {
    std::vector<uint64_t> Samples;
    size_t Next = 0;
  };

  mutable std::mutex M;
  std::unordered_map<uint64_t, Entry> Entries;
  /// Keyed by phase name; std::map for stable iteration in tests.
  std::map<std::string, PhaseRing> Rings;
  double PriorPerByte = 0.0;
  uint64_t PriorCount = 0;
  mutable uint64_t Hits = 0;
  mutable uint64_t PriorUses = 0;
};

} // namespace rml::service

#endif // RML_SERVICE_COSTMODEL_H
