//===- service/Service.cpp ------------------------------------------------===//

#include "service/Service.h"

#include <sstream>

using namespace rml;
using namespace rml::service;

//===----------------------------------------------------------------------===//
// ServiceStats
//===----------------------------------------------------------------------===//

std::string ServiceStats::json() const {
  std::ostringstream Out;
  Out << "{\"submitted\":" << Submitted << ",\"rejected\":" << Rejected
      << ",\"completed\":" << Completed
      << ",\"compile_errors\":" << CompileErrors << ",\"runs_ok\":" << RunsOk
      << ",\"runs_failed\":" << RunsFailed << ",\"cache_hits\":" << CacheHits
      << ",\"cache_misses\":" << CacheMisses
      << ",\"cache_evictions\":" << CacheEvictions
      << ",\"queue_depth\":" << QueueDepth
      << ",\"queue_high_water\":" << QueueHighWater
      << ",\"workers\":" << Workers << ",\"gc_count\":" << TotalGcCount
      << ",\"alloc_words\":" << TotalAllocWords
      << ",\"copied_words\":" << TotalCopiedWords
      << ",\"pool_hits\":" << PoolAcquireHits
      << ",\"pool_misses\":" << PoolAcquireMisses
      << ",\"pool_releases\":" << PoolReleases
      << ",\"pool_trims\":" << PoolTrims
      << ",\"pool_prewarmed\":" << PoolPrewarmed
      << ",\"pool_free_pages\":" << PoolFreePages
      << ",\"pool_capacity\":" << PoolCapacity
      << ",\"pool_reuse\":" << poolReuseRatio()
      << ",\"phases\":{";
  for (size_t I = 0; I < Phases.size(); ++I) {
    if (I)
      Out << ",";
    Out << "\"" << Phases[I].Name << "\":{\"sum_nanos\":"
        << Phases[I].SumNanos << ",\"max_nanos\":" << Phases[I].MaxNanos
        << ",\"count\":" << Phases[I].Count << "}";
  }
  Out << "},\"busy_nanos\":" << BusyNanos
      << ",\"uptime_nanos\":" << UptimeNanos
      << ",\"utilization\":" << utilization() << "}";
  return Out.str();
}

//===----------------------------------------------------------------------===//
// Service
//===----------------------------------------------------------------------===//

Service::Service(ServiceConfig Cfg)
    : Cfg(Cfg), Cache(Cfg.CacheCapacity, Cfg.CacheCostCapacity),
      Started(std::chrono::steady_clock::now()) {
  if (Cfg.PagePoolPages != 0) {
    Pool = std::make_unique<rt::PagePool>(Cfg.PagePoolPages);
    if (Cfg.PrewarmPool)
      Pool->prewarm(Cfg.PagePoolPages);
  }
  // One aggregate slot per pipeline phase, in stable reporting order.
  for (const std::string &Name : Compiler::staticPhaseNames())
    Counters.Phases.push_back({Name, 0, 0, 0});
  Counters.Phases.push_back({Compiler::RunPhaseName, 0, 0, 0});
  unsigned N = Cfg.effectiveWorkers();
  Threads.reserve(N);
  for (unsigned I = 0; I < N; ++I)
    Threads.emplace_back([this] { workerMain(); });
}

Service::~Service() { shutdown(); }

namespace {

Response shutdownResponse() {
  Response Rej;
  Rej.Diagnostics = "error: service is shut down";
  Rej.Outcome = rt::RunOutcome::RuntimeError;
  Rej.Error = "service is shut down";
  return Rej;
}

} // namespace

std::future<Response> Service::submit(Request R) {
  Job J;
  J.Req = std::move(R);
  std::future<Response> F = J.Promise.get_future();
  {
    std::unique_lock<std::mutex> Lock(QueueMutex);
    NotFull.wait(Lock, [this] {
      return Queue.size() < Cfg.QueueCapacity || Stopping;
    });
    // Reject rather than enqueue once shutdown has begun: a worker may
    // already have seen the queue empty and exited, so a late job could
    // otherwise never resolve.
    if (Stopping) {
      J.Promise.set_value(shutdownResponse());
      return F;
    }
    Queue.push_back(std::move(J));
    size_t Depth = Queue.size();
    {
      std::lock_guard<std::mutex> SLock(StatsMutex);
      ++Counters.Submitted;
      if (Depth > Counters.QueueHighWater)
        Counters.QueueHighWater = Depth;
    }
  }
  NotEmpty.notify_one();
  return F;
}

std::optional<std::future<Response>> Service::trySubmit(Request R) {
  Job J;
  J.Req = std::move(R);
  std::future<Response> F = J.Promise.get_future();
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    if (Stopping) {
      // Terminal, not transient: resolve like submit() so the caller
      // can tell "retry later" (nullopt) from "never".
      J.Promise.set_value(shutdownResponse());
      return F;
    }
    if (Queue.size() >= Cfg.QueueCapacity) {
      std::lock_guard<std::mutex> SLock(StatsMutex);
      ++Counters.Rejected;
      return std::nullopt;
    }
    Queue.push_back(std::move(J));
    size_t Depth = Queue.size();
    {
      std::lock_guard<std::mutex> SLock(StatsMutex);
      ++Counters.Submitted;
      if (Depth > Counters.QueueHighWater)
        Counters.QueueHighWater = Depth;
    }
  }
  NotEmpty.notify_one();
  return F;
}

void Service::shutdown() {
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    if (Stopping && Threads.empty())
      return;
    Stopping = true;
  }
  NotEmpty.notify_all();
  NotFull.notify_all();
  for (std::thread &T : Threads)
    if (T.joinable())
      T.join();
  Threads.clear();
}

void Service::workerMain() {
  for (;;) {
    Job J;
    {
      std::unique_lock<std::mutex> Lock(QueueMutex);
      NotEmpty.wait(Lock, [this] { return !Queue.empty() || Stopping; });
      if (Queue.empty())
        return; // stopping and drained
      J = std::move(Queue.front());
      Queue.pop_front();
    }
    NotFull.notify_one();

    auto T0 = std::chrono::steady_clock::now();
    Response Resp = process(J.Req);
    auto T1 = std::chrono::steady_clock::now();

    // Trace forwarding happens outside the stats lock; the sink is
    // thread-safe by contract. Skipped profiles carry no timing.
    if (Cfg.Trace)
      for (const PhaseProfile &P : Resp.Profiles)
        if (!P.Skipped)
          Cfg.Trace->record(P);

    {
      std::lock_guard<std::mutex> SLock(StatsMutex);
      ++Counters.Completed;
      if (!Resp.CompileOk)
        ++Counters.CompileErrors;
      if (Resp.Ran) {
        if (Resp.Outcome == rt::RunOutcome::Ok)
          ++Counters.RunsOk;
        else
          ++Counters.RunsFailed;
        Counters.TotalGcCount += Resp.Heap.GcCount;
        Counters.TotalAllocWords += Resp.Heap.AllocWords;
        Counters.TotalCopiedWords += Resp.Heap.CopiedWords;
      }
      for (const PhaseProfile &P : Resp.Profiles) {
        if (P.Skipped)
          continue;
        for (ServiceStats::PhaseAggregate &A : Counters.Phases)
          if (A.Name == P.Name) {
            A.SumNanos += P.WallNanos;
            if (P.WallNanos > A.MaxNanos)
              A.MaxNanos = P.WallNanos;
            ++A.Count;
            break;
          }
      }
      Counters.BusyNanos += static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(T1 - T0)
              .count());
    }
    J.Promise.set_value(std::move(Resp));
  }
}

Response Service::process(const Request &Req) {
  Response Resp;

  CacheKey Key = CacheKey::of(Req.Source, Req.Opts);
  CachedCompileRef CC = Cache.lookup(Key);
  if (CC) {
    Resp.CacheHit = true;
    // The static work was reused, not redone: report the phase shape
    // with zeroed, Skipped profiles so per-request accounting stays
    // honest (only the runtime phase below is fresh on a hit).
    Resp.Profiles.reserve(CC->Profiles.size() + 1);
    for (PhaseProfile P : CC->Profiles) {
      P.Skipped = true;
      P.StartNanos = 0;
      P.WallNanos = 0;
      P.DiagnosticsEmitted = 0;
      P.ArenaNodeDelta = 0;
      Resp.Profiles.push_back(std::move(P));
    }
  } else {
    // Miss: compile on a fresh, dedicated Compiler and freeze it into
    // the cache. Two workers racing on the same key both compile; the
    // results are bit-identical (the pipeline is deterministic) and the
    // cache keeps whichever insert lands last.
    CC = compileShared(Req.Source, Req.Opts);
    Cache.insert(Key, CC);
    Resp.Profiles = CC->Profiles;
  }

  Resp.CompileOk = CC->ok();
  Resp.Diagnostics = CC->Diagnostics;
  if (!CC->ok())
    return Resp;

  Resp.Printed = CC->Printed;
  Resp.Schemes.reserve(Req.SchemeNames.size());
  for (const std::string &Name : Req.SchemeNames)
    Resp.Schemes.emplace_back(Name, CC->schemeOf(Name));

  if (Req.Run) {
    rt::EvalOptions EvalOpts = Req.EvalOpts;
    // Route the run's heap through the shared pool — unless the request
    // asks for exact dangling detection, which quarantines it.
    if (Pool && !EvalOpts.RetainReleasedPages)
      EvalOpts.SharedPool = Pool.get();
    rt::RunResult R = CC->run(EvalOpts);
    Resp.Ran = true;
    Resp.Outcome = R.Outcome;
    Resp.Output = std::move(R.Output);
    Resp.ResultText = std::move(R.ResultText);
    Resp.Error = std::move(R.Error);
    Resp.Heap = R.Heap;
    Resp.Steps = R.Steps;
    Resp.Profiles.push_back(std::move(R.Phase));
  }
  return Resp;
}

ServiceStats Service::stats() const {
  ServiceStats Out;
  {
    std::lock_guard<std::mutex> SLock(StatsMutex);
    Out = Counters;
  }
  CompileCache::Counters CC = Cache.counters();
  Out.CacheHits = CC.Hits;
  Out.CacheMisses = CC.Misses;
  Out.CacheEvictions = CC.Evictions;
  Out.Workers = Cfg.effectiveWorkers();
  if (Pool) {
    rt::PagePoolStats PS = Pool->stats();
    Out.PoolAcquireHits = PS.AcquireHits;
    Out.PoolAcquireMisses = PS.AcquireMisses;
    Out.PoolReleases = PS.Releases;
    Out.PoolTrims = PS.Trims;
    Out.PoolPrewarmed = PS.Prewarmed;
    Out.PoolFreePages = PS.FreePages;
    Out.PoolCapacity = PS.Capacity;
  }
  {
    std::lock_guard<std::mutex> QLock(QueueMutex);
    Out.QueueDepth = Queue.size();
  }
  Out.UptimeNanos = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - Started)
          .count());
  return Out;
}
