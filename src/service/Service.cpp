//===- service/Service.cpp ------------------------------------------------===//

#include "service/Service.h"

#include "service/Hash.h"

using namespace rml;
using namespace rml::service;

namespace {

std::unique_ptr<rt::PagePool> makePool(const ServiceConfig &Cfg) {
  if (Cfg.PagePoolPages == 0)
    return nullptr;
  auto P = std::make_unique<rt::PagePool>(Cfg.PagePoolPages);
  if (Cfg.PrewarmPool)
    P->prewarm(Cfg.PagePoolPages);
  return P;
}

std::unique_ptr<DiskCache> makeDisk(const ServiceConfig &Cfg) {
  // The disk tier sits beneath the memory tier; with caching disabled
  // outright there is nothing for it to back.
  if (Cfg.CacheDir.empty() || Cfg.CacheCapacity == 0)
    return nullptr;
  return std::make_unique<DiskCache>(Cfg.CacheDir);
}

Response internalErrorResponse(const char *What) {
  Response Resp;
  Resp.Status = RequestOutcome::InternalError;
  Resp.CompileOk = false;
  Resp.Outcome = rt::RunOutcome::RuntimeError;
  Resp.Error = What;
  Resp.Diagnostics = std::string("error: internal error: ") + What;
  return Resp;
}

Response shutdownResponse() {
  Response Rej;
  Rej.Status = RequestOutcome::Shutdown;
  Rej.Diagnostics = "error: service is shut down";
  Rej.Outcome = rt::RunOutcome::RuntimeError;
  Rej.Error = "service is shut down";
  return Rej;
}

} // namespace

Service::Service(ServiceConfig CfgIn)
    : Cfg(std::move(CfgIn)), Disk(makeDisk(Cfg)),
      Cache(Cfg.CacheCapacity, Cfg.CacheCostCapacity, Disk.get()),
      Pool(makePool(Cfg)), Exec(Cfg, Cache, Pool.get(), &Model),
      Started(std::chrono::steady_clock::now()),
      Sched(makeScheduler(Cfg.Policy, Cfg.FairShareQuantum)) {
  // Scheduling weights come from the learned model: predicted
  // processing nanos for seen sources, the per-byte prior (and, before
  // any observation, the raw byte count) for cold ones. The provider
  // runs under QueueMutex; predict() is O(1) under its own lock.
  Sched->setCostProvider([this](const Request &R) {
    return Model.predict(hashCompileInputs(R.Source, R.Opts),
                         R.Source.size())
        .Nanos;
  });
  // One aggregate slot per pipeline phase, in stable reporting order.
  for (const std::string &Name : Compiler::staticPhaseNames())
    Counters.Phases.push_back({Name, 0, 0, 0});
  Counters.Phases.push_back({Compiler::RunPhaseName, 0, 0, 0});
  // Bound the disk tier when asked: the sweeper's lifetime is the
  // service's (stopped in shutdown(), and by ~DiskCache regardless).
  if (Disk && (Cfg.CacheMaxBytes || Cfg.CacheMaxAgeSeconds)) {
    DiskCache::SweepConfig SC;
    SC.MaxBytes = Cfg.CacheMaxBytes;
    SC.MaxAgeSeconds = Cfg.CacheMaxAgeSeconds;
    SC.IntervalMillis = Cfg.CacheSweepIntervalMillis;
    Disk->startSweeper(SC);
  }
  unsigned N = Cfg.effectiveWorkers();
  Threads.reserve(N);
  for (unsigned I = 0; I < N; ++I)
    Threads.emplace_back([this] { workerMain(); });
}

Service::~Service() { shutdown(); }

void Service::enqueue(ScheduledJob J) {
  // Caller holds QueueMutex and has already checked !Stopping. admit()
  // stamps CostKey (consulting the cost provider exactly once) and the
  // absolute deadline; Seq is stamped here because admission order is
  // the Service's to define.
  J.Seq = NextSeq++;
  std::string Tenant = J.Req.Tenant;
  uint64_t Cost = Sched->admit(std::move(J));
  QueuedCost.fetch_add(Cost, std::memory_order_relaxed);
  size_t Depth = Sched->size();
  std::lock_guard<std::mutex> SLock(StatsMutex);
  ++Counters.Submitted;
  ++Counters.Tenants[Tenant].Admitted;
  if (Depth > Counters.QueueHighWater)
    Counters.QueueHighWater = Depth;
}

std::future<Response> Service::submit(Request R) {
  ScheduledJob J;
  J.Req = std::move(R);
  std::future<Response> F = J.Promise.get_future();
  bool Rejected = false;
  {
    std::unique_lock<std::mutex> Lock(QueueMutex);
    NotFull.wait(Lock, [this] {
      return Sched->size() < Cfg.QueueCapacity || Stopping;
    });
    // Reject rather than enqueue once shutdown has begun: a worker may
    // already have seen the queue empty and exited, so a late job could
    // otherwise never resolve. This is also the wake-up path for a
    // producer that was blocked on a full queue when shutdown() fired.
    if (Stopping)
      Rejected = true;
    else
      enqueue(std::move(J));
  }
  if (Rejected) {
    {
      std::lock_guard<std::mutex> SLock(StatsMutex);
      ++Counters.ShutdownRejected;
    }
    J.complete(shutdownResponse());
    return F;
  }
  NotEmpty.notify_one();
  return F;
}

void Service::submit(Request R, std::function<void(Response)> Done) {
  ScheduledJob J;
  J.Req = std::move(R);
  J.Callback = std::move(Done);
  bool Rejected = false;
  {
    std::unique_lock<std::mutex> Lock(QueueMutex);
    NotFull.wait(Lock, [this] {
      return Sched->size() < Cfg.QueueCapacity || Stopping;
    });
    if (Stopping)
      Rejected = true;
    else
      enqueue(std::move(J));
  }
  // The rejection callback runs outside QueueMutex: it is user code and
  // may legitimately call stats() or submit more work.
  if (Rejected) {
    {
      std::lock_guard<std::mutex> SLock(StatsMutex);
      ++Counters.ShutdownRejected;
    }
    J.complete(shutdownResponse());
    return;
  }
  NotEmpty.notify_one();
}

std::optional<std::future<Response>> Service::trySubmit(Request R) {
  ScheduledJob J;
  J.Req = std::move(R);
  std::future<Response> F = J.Promise.get_future();
  bool Rejected = false;
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    if (Stopping) {
      // Terminal, not transient: resolve like submit() so the caller
      // can tell "retry later" (nullopt) from "never".
      Rejected = true;
    } else if (Sched->size() >= Cfg.QueueCapacity) {
      std::lock_guard<std::mutex> SLock(StatsMutex);
      ++Counters.Rejected;
      ++Counters.Tenants[J.Req.Tenant].Shed;
      return std::nullopt;
    } else {
      enqueue(std::move(J));
    }
  }
  if (Rejected) {
    {
      std::lock_guard<std::mutex> SLock(StatsMutex);
      ++Counters.ShutdownRejected;
    }
    J.complete(shutdownResponse());
    return F;
  }
  NotEmpty.notify_one();
  return F;
}

bool Service::trySubmit(Request R, std::function<void(Response)> Done) {
  ScheduledJob J;
  J.Req = std::move(R);
  J.Callback = std::move(Done);
  bool Rejected = false;
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    if (Stopping) {
      // Terminal: complete the callback (below, outside the lock)
      // rather than shed, so the caller can tell "back off" from
      // "give up".
      Rejected = true;
    } else if (Sched->size() >= Cfg.QueueCapacity) {
      std::lock_guard<std::mutex> SLock(StatsMutex);
      ++Counters.Rejected;
      ++Counters.Tenants[J.Req.Tenant].Shed;
      return false;
    } else {
      enqueue(std::move(J));
    }
  }
  if (Rejected) {
    {
      std::lock_guard<std::mutex> SLock(StatsMutex);
      ++Counters.ShutdownRejected;
    }
    J.complete(shutdownResponse());
    return true;
  }
  NotEmpty.notify_one();
  return true;
}

void Service::shutdown() {
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    Stopping = true;
  }
  // Wake the workers (to drain and exit) and any producer parked in
  // submit() on a full queue (to resolve with a Shutdown response).
  NotEmpty.notify_all();
  NotFull.notify_all();
  // Racing shutdown() calls serialize here; QueueMutex cannot be held
  // across join because the draining workers take it.
  std::lock_guard<std::mutex> JLock(JoinMutex);
  for (std::thread &T : Threads)
    if (T.joinable())
      T.join();
  Threads.clear();
  // The sweeper outlived the workers so a final flood of stores could
  // still be bounded; it stops with the service (idempotent — the
  // DiskCache destructor would also catch it).
  if (Disk)
    Disk->stopSweeper();
}

void Service::workerMain() {
  for (;;) {
    ScheduledJob J;
    {
      std::unique_lock<std::mutex> Lock(QueueMutex);
      NotEmpty.wait(Lock, [this] { return !Sched->empty() || Stopping; });
      if (Sched->empty())
        return; // stopping and drained
      J = Sched->pop();
    }
    QueuedCost.fetch_sub(J.CostKey, std::memory_order_relaxed);
    NotFull.notify_one();
    {
      std::lock_guard<std::mutex> SLock(StatsMutex);
      ++Counters.InFlight;
    }

    auto T0 = std::chrono::steady_clock::now();
    // A worker that lets an exception escape takes the whole process
    // down (std::terminate) and leaves the job's promise forever
    // unresolved. The library itself never throws, but user-supplied
    // hooks (trace sinks, GC pause sinks) and the allocator can; turn
    // anything that escapes into a resolved InternalError response and
    // keep serving.
    Response Resp;
    try {
      Resp = Exec.process(J.Req);
    } catch (const std::exception &E) {
      Resp = internalErrorResponse(E.what());
    } catch (...) {
      Resp = internalErrorResponse("unknown exception");
    }
    auto T1 = std::chrono::steady_clock::now();

    // Trace forwarding happens outside the stats lock; the sink is
    // thread-safe by contract. Skipped profiles carry no timing.
    if (Cfg.Trace)
      for (const PhaseProfile &P : Resp.Profiles)
        if (!P.Skipped)
          Cfg.Trace->record(P);

    {
      std::lock_guard<std::mutex> SLock(StatsMutex);
      ++Counters.Completed;
      if (Resp.Status == RequestOutcome::Budget)
        ++Counters.BudgetExceeded;
      else if (Resp.Status == RequestOutcome::InternalError)
        ++Counters.InternalErrors;
      else if (!Resp.CompileOk)
        ++Counters.CompileErrors;
      ++Counters.Tenants[J.Req.Tenant].Completed;
      if (Resp.Ran) {
        if (Resp.Outcome == rt::RunOutcome::Ok)
          ++Counters.RunsOk;
        else
          ++Counters.RunsFailed;
        Counters.TotalGcCount += Resp.Heap.GcCount;
        Counters.TotalAllocWords += Resp.Heap.AllocWords;
        Counters.TotalCopiedWords += Resp.Heap.CopiedWords;
        Counters.GcAdaptiveRuns += Resp.GcPolicy.Adaptive ? 1 : 0;
        Counters.GcThresholdRaises += Resp.GcPolicy.ThresholdRaises;
        Counters.GcThresholdDrops += Resp.GcPolicy.ThresholdDrops;
        Counters.GcBudgetBackoffs += Resp.GcPolicy.BudgetBackoffs;
        Counters.GcOverBudgetPauses += Resp.GcPolicy.OverBudgetPauses;
        Counters.GcMinorsPerMajorRaises += Resp.GcPolicy.MinorsPerMajorRaises;
        Counters.GcMinorsPerMajorDrops += Resp.GcPolicy.MinorsPerMajorDrops;
        // Pause histogram: the run phase's GcPauses (static phases
        // carry none), bucketed by floor(log2(wall nanos)).
        for (const PhaseProfile &P : Resp.Profiles)
          for (const GcPauseRecord &G : P.GcPauses) {
            ++Counters.GcPauseCount;
            if (G.WallNanos > Counters.GcPauseMaxNanos)
              Counters.GcPauseMaxNanos = G.WallNanos;
            size_t B = 0;
            for (uint64_t W = G.WallNanos; W >>= 1;)
              ++B;
            if (B >= ServiceStats::GcPauseBuckets)
              B = ServiceStats::GcPauseBuckets - 1;
            ++Counters.GcPauseHist[B];
          }
      }
      for (const PhaseProfile &P : Resp.Profiles) {
        if (P.Skipped)
          continue;
        for (ServiceStats::PhaseAggregate &A : Counters.Phases)
          if (A.Name == P.Name) {
            A.SumNanos += P.WallNanos;
            if (P.WallNanos > A.MaxNanos)
              A.MaxNanos = P.WallNanos;
            ++A.Count;
            break;
          }
      }
      Counters.BusyNanos += static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(T1 - T0)
              .count());
    }
    J.complete(std::move(Resp));
    {
      // In flight covers the completion hand-off too: a request whose
      // callback is still running has not finished from the operator's
      // point of view.
      std::lock_guard<std::mutex> SLock(StatsMutex);
      --Counters.InFlight;
    }
  }
}

ServiceStats Service::stats() const {
  ServiceStats Out;
  {
    std::lock_guard<std::mutex> SLock(StatsMutex);
    Out = Counters;
  }
  CompileCache::Counters CC = Cache.counters();
  Out.CacheHits = CC.Hits;
  Out.CacheMisses = CC.Misses;
  Out.CacheEvictions = CC.Evictions;
  if (Disk) {
    DiskCache::Counters DC = Disk->counters();
    Out.DiskHits = DC.Hits;
    Out.DiskMisses = DC.Misses;
    Out.DiskWriteErrors = DC.WriteErrors;
    Out.DiskLoadRejects = DC.LoadRejects;
    Out.SweptFiles = DC.SweptFiles;
    Out.SweptBytes = DC.SweptBytes;
    Out.SweepErrors = DC.SweepErrors;
  }
  Out.DiskHydrations = Exec.diskHydrations();
  Out.BudgetAutoDerived = Exec.budgetAutoDerived();
  CostModel::Snapshot MS = Model.snapshot();
  Out.CostModelEntries = MS.Entries;
  Out.CostModelHits = MS.Hits;
  Out.CostModelPriorUses = MS.PriorUses;
  Out.CostModelPriorPerByte = MS.PriorPerByte;
  Out.Workers = Cfg.effectiveWorkers();
  Out.Policy = schedPolicyName(Cfg.Policy);
  if (Pool) {
    rt::PagePoolStats PS = Pool->stats();
    Out.PoolAcquireHits = PS.AcquireHits;
    Out.PoolAcquireMisses = PS.AcquireMisses;
    Out.PoolReleases = PS.Releases;
    Out.PoolTrims = PS.Trims;
    Out.PoolPrewarmed = PS.Prewarmed;
    Out.PoolSteals = PS.Steals;
    Out.PoolBatchAcquires = PS.BatchAcquires;
    Out.PoolBatchReleases = PS.BatchReleases;
    Out.PoolLockAcquires = PS.LockAcquires;
    Out.PoolFreePages = PS.FreePages;
    Out.PoolCapacity = PS.Capacity;
  }
  {
    std::lock_guard<std::mutex> QLock(QueueMutex);
    Out.QueueDepth = Sched->size();
  }
  Out.UptimeNanos = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - Started)
          .count());
  return Out;
}
