//===- service/Stats.h - Service statistics ---------------------*- C++ -*-===//
//
// Part of RegionML, a reproduction of "Garbage-Collection Safety for
// Region-Based Type-Polymorphic Programs" (Elsman, PLDI 2023).
//
//===----------------------------------------------------------------------===//

#ifndef RML_SERVICE_STATS_H
#define RML_SERVICE_STATS_H

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rml::service {

/// A point-in-time statistics snapshot; also renderable as one-line JSON
/// (every string — phase names included — is escaped, so embedded user
/// source cannot break the line).
struct ServiceStats {
  /// Aggregate cost of one pipeline phase across every completed
  /// request (skipped phases — cache hits, a disabled checker — do not
  /// contribute): utilization decomposed by phase.
  struct PhaseAggregate {
    std::string Name;
    uint64_t SumNanos = 0;
    uint64_t MaxNanos = 0;
    /// Executed (non-skipped) instances of the phase.
    uint64_t Count = 0;
  };

  /// Per-tenant request disposition (keyed by Request::Tenant; the
  /// empty string is the anonymous tenant). Admitted counts enqueues,
  /// Completed counts worker completions, Shed counts queue-full
  /// trySubmit rejections — the operator's per-tenant fairness view.
  struct TenantCounts {
    uint64_t Admitted = 0;
    uint64_t Completed = 0;
    uint64_t Shed = 0;
  };

  uint64_t Submitted = 0;
  /// trySubmit() calls turned away at a full queue.
  uint64_t Rejected = 0;
  /// Submissions resolved with RequestOutcome::Shutdown because the
  /// service was already stopping. Disjoint from Rejected (queue-full):
  /// these producers were drained, not backpressured.
  uint64_t ShutdownRejected = 0;
  uint64_t Completed = 0;
  uint64_t CompileErrors = 0;
  /// Requests cut off by a ServiceConfig::PhaseBudgets budget
  /// (RequestOutcome::Budget). Disjoint from CompileErrors.
  uint64_t BudgetExceeded = 0;
  /// Cold compiles that ran under CostModel-derived budgets
  /// (--auto-budget with enough per-phase history). Zero until the
  /// model accumulates ServiceConfig::BudgetMinSamples observations.
  uint64_t BudgetAutoDerived = 0;
  /// Requests whose processing threw (RequestOutcome::InternalError).
  /// The worker survived and the caller got a resolved response.
  uint64_t InternalErrors = 0;
  uint64_t RunsOk = 0;
  uint64_t RunsFailed = 0;
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  uint64_t CacheEvictions = 0;
  /// Persistent-tier counters (all zero when CacheDir is unset): memory
  /// misses served from disk, disk files absent, entries that failed to
  /// persist, and entry files rejected at load (corruption, format
  /// drift, hash collisions — all degraded to a miss).
  uint64_t DiskHits = 0;
  uint64_t DiskMisses = 0;
  uint64_t DiskWriteErrors = 0;
  uint64_t DiskLoadRejects = 0;
  /// Run=true requests that hit a disk entry with no runnable flat unit
  /// and silently recompiled (Executor's hydration fallback). Zero in
  /// steady state — nonzero means warm restarts are paying for compiles
  /// they thought they had cached.
  uint64_t DiskHydrations = 0;
  /// Disk-sweeper counters (zero without --cache-max-bytes/--cache-max-age):
  /// entry files evicted by the retention policy, their summed bytes,
  /// and sweep passes or removals that failed.
  uint64_t SweptFiles = 0;
  uint64_t SweptBytes = 0;
  uint64_t SweepErrors = 0;
  /// Deepest the queue ever got (backpressure high-water mark).
  uint64_t QueueHighWater = 0;
  uint64_t QueueDepth = 0;
  /// Requests currently being processed by a worker (dequeued, not yet
  /// completed) — with QueueDepth, the live saturation picture an
  /// operator polls from rmld's /stats endpoint.
  uint64_t InFlight = 0;
  unsigned Workers = 0;
  /// The active scheduler's policy name ("fifo", "ljf").
  std::string Policy;
  /// Sum over runs of HeapStats counters (the serving-level GC bill).
  uint64_t TotalGcCount = 0;
  uint64_t TotalAllocWords = 0;
  uint64_t TotalCopiedWords = 0;
  /// Cross-request page pool counters (all zero when pooling is off).
  uint64_t PoolAcquireHits = 0;
  uint64_t PoolAcquireMisses = 0;
  uint64_t PoolReleases = 0;
  uint64_t PoolTrims = 0;
  uint64_t PoolPrewarmed = 0;
  /// v2 pool counters: hits served off a non-home shard, batch API
  /// calls, and mutex acquisitions (steal scans and trims only — the
  /// home-shard paths are lock-free, so locks per request is the
  /// contention figure of merit).
  uint64_t PoolSteals = 0;
  uint64_t PoolBatchAcquires = 0;
  uint64_t PoolBatchReleases = 0;
  uint64_t PoolLockAcquires = 0;
  uint64_t PoolFreePages = 0;
  uint64_t PoolCapacity = 0;
  /// GC-policy aggregates summed over executed runs (see
  /// rt/GcPolicyStats): runs under the adaptive policy, knob moves by
  /// cause, and pauses that overran the configured budget.
  uint64_t GcAdaptiveRuns = 0;
  uint64_t GcThresholdRaises = 0;
  uint64_t GcThresholdDrops = 0;
  uint64_t GcBudgetBackoffs = 0;
  uint64_t GcOverBudgetPauses = 0;
  uint64_t GcMinorsPerMajorRaises = 0;
  uint64_t GcMinorsPerMajorDrops = 0;
  /// Log-2 histogram of collector pause wall times across every run:
  /// bucket I counts pauses with WallNanos in [2^I, 2^(I+1)). Powers
  /// the pause-percentile estimates an operator reads against
  /// --gc-pause-budget (gc_pause_p99_ns in the stats JSON).
  static constexpr size_t GcPauseBuckets = 40;
  std::array<uint64_t, GcPauseBuckets> GcPauseHist{};
  uint64_t GcPauseCount = 0;
  uint64_t GcPauseMaxNanos = 0;
  /// Learned-cost-model counters (see service/CostModel.h): distinct
  /// keys with history, predictions served from an entry vs the prior,
  /// and the current cost-per-byte prior in nanos (a double — rendered
  /// with the locale-independent jsonFixed).
  uint64_t CostModelEntries = 0;
  uint64_t CostModelHits = 0;
  uint64_t CostModelPriorUses = 0;
  double CostModelPriorPerByte = 0.0;
  /// Nanoseconds workers spent processing (vs idle) and service uptime.
  uint64_t BusyNanos = 0;
  uint64_t UptimeNanos = 0;
  /// One aggregate per pipeline phase, in stable order: the static
  /// phases (Compiler::staticPhaseNames()) then the runtime phase.
  std::vector<PhaseAggregate> Phases;
  /// Per-tenant dispositions, keyed by Request::Tenant (sorted, so the
  /// JSON rendering is stable).
  std::map<std::string, TenantCounts> Tenants;

  /// Fraction of standard-page demand served by pool reuse, in [0,1].
  double poolReuseRatio() const {
    uint64_t Total = PoolAcquireHits + PoolAcquireMisses;
    return Total ? static_cast<double>(PoolAcquireHits) / Total : 0.0;
  }

  /// Histogram-derived pause percentile in nanos: the upper bound of
  /// the bucket holding the \p P quantile (conservative within 2x),
  /// clamped to the observed maximum. Zero when no pause was recorded.
  uint64_t gcPausePercentileNanos(double P) const;

  /// Fraction of worker-thread time spent processing, in [0,1].
  double utilization() const {
    double Denom =
        static_cast<double>(Workers) * static_cast<double>(UptimeNanos);
    return Denom > 0 ? static_cast<double>(BusyNanos) / Denom : 0.0;
  }

  /// One-line JSON rendering of every counter (stable key order).
  std::string json() const;
};

} // namespace rml::service

#endif // RML_SERVICE_STATS_H
