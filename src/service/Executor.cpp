//===- service/Executor.cpp -----------------------------------------------===//

#include "service/Executor.h"

#include "service/CostModel.h"
#include "service/Hash.h"

using namespace rml;
using namespace rml::service;

const char *rml::service::requestOutcomeName(RequestOutcome O) {
  switch (O) {
  case RequestOutcome::Ok:
    return "ok";
  case RequestOutcome::CompileError:
    return "compile_error";
  case RequestOutcome::RunFailed:
    return "run_failed";
  case RequestOutcome::Budget:
    return "budget";
  case RequestOutcome::Shutdown:
    return "shutdown";
  case RequestOutcome::InternalError:
    return "internal_error";
  }
  return "ok";
}

namespace {

/// ServiceConfig::PhaseBudgets as a PhaseGovernor: trips on the first
/// executed phase whose wall time exceeds its (present) budget. Lives
/// on the Executor's stack for exactly one compile — compileShared
/// clears it from the frozen Compiler before returning.
///
/// Doubles as the cost model's per-phase feed: keepGoing is the
/// pipeline's exactly-once per-finished-phase observation stream (see
/// PhaseGovernor in core/Pipeline.h), so each executed phase lands one
/// sample in the model's quantile rings here — including the phases of
/// a compile this very governor then cuts off, which the completion-
/// level observe() deliberately never sees.
class BudgetGovernor final : public PhaseGovernor {
public:
  BudgetGovernor(const std::map<std::string, uint64_t> &Budgets,
                 CostModel *Model)
      : Budgets(Budgets), Model(Model) {}

  bool keepGoing(const PhaseProfile &P) override {
    if (Model && !P.Skipped)
      Model->observePhase(P);
    auto It = Budgets.find(P.Name);
    // Absent = unlimited; a present 0 budgets out any executed phase
    // (real phases always take > 0 ns). Skipped phases cost nothing.
    if (It == Budgets.end() || P.Skipped || P.WallNanos <= It->second)
      return true;
    TrippedPhase = P.Name;
    return false;
  }

  const std::string &tripped() const { return TrippedPhase; }

private:
  const std::map<std::string, uint64_t> &Budgets;
  CostModel *Model;
  std::string TrippedPhase; // empty until a budget trips
};

} // namespace

Response Executor::process(const Request &Req) const {
  Response Resp = processImpl(Req);
  // One observation per completion. Budget cut-offs are excluded: a
  // partial compile's cost is not the source's cost, and learning it
  // would teach the model that expensive sources are cheap.
  if (Model && Resp.Status != RequestOutcome::Budget)
    Model->observe(hashCompileInputs(Req.Source, Req.Opts), Req.Source.size(),
                   Resp.Profiles, /*UpdatePrior=*/!Resp.CacheHit);
  return Resp;
}

Response Executor::processImpl(const Request &Req) const {
  Response Resp;

  CacheKey Key = CacheKey::of(Req.Source, Req.Opts);
  CachedCompileRef CC = Cache.lookup(Key);
  // Disk-tier entries normally carry the decoded flat unit and are as
  // runnable as fresh compiles. An entry that lost its flat section
  // (synthetic tests, future format drift) still answers compile/print/
  // scheme traffic, but a Run request must hydrate by recompiling once
  // below — counted, because the "hit" silently costs a whole compile —
  // and the insert swaps the runnable entry into the memory tier.
  if (CC && Req.Run && CC->ok() && !CC->runnable()) {
    DiskHydrations.fetch_add(1, std::memory_order_relaxed);
    CC = nullptr;
  }
  if (CC) {
    Resp.CacheHit = true;
    // The static work was reused, not redone: report the phase shape
    // with zeroed, Skipped profiles so per-request accounting stays
    // honest (only the runtime phase below is fresh on a hit).
    Resp.Profiles.reserve(CC->Profiles.size() + 1);
    for (PhaseProfile P : CC->Profiles) {
      P.Skipped = true;
      P.StartNanos = 0;
      P.WallNanos = 0;
      P.DiagnosticsEmitted = 0;
      P.ArenaNodeDelta = 0;
      Resp.Profiles.push_back(std::move(P));
    }
  } else {
    // Miss: compile on a fresh, dedicated Compiler and freeze it into
    // the cache. Two workers racing on the same key both compile; the
    // results are bit-identical (the pipeline is deterministic) and the
    // cache keeps whichever insert lands last.
    // Explicit budgets win; with --auto-budget and none set, the cost
    // model's observed per-phase distributions supply them — once it
    // has enough history (an empty derivation means "no budgets yet").
    const std::map<std::string, uint64_t> *Budgets = &Cfg.PhaseBudgets;
    std::map<std::string, uint64_t> Derived;
    if (Cfg.AutoBudget && Cfg.PhaseBudgets.empty() && Model) {
      Derived = Model->deriveBudgets(Cfg.BudgetQuantile, Cfg.BudgetMultiplier,
                                     Cfg.BudgetMinSamples);
      if (!Derived.empty()) {
        Budgets = &Derived;
        BudgetAutoDerived.fetch_add(1, std::memory_order_relaxed);
      }
    }
    // The governor is installed whenever there is a model to feed, not
    // just when budgets bind: its hook is how per-phase samples reach
    // the quantile rings.
    BudgetGovernor Gov(*Budgets, Model);
    CC = compileShared(Req.Source, Req.Opts,
                       (Budgets->empty() && !Model) ? nullptr : &Gov);
    Resp.Profiles = CC->Profiles;
    if (!Gov.tripped().empty()) {
      // Over budget: report which phase blew it and keep the entry out
      // of the cache — the cut-off produced no unit, and a cached
      // failure would wrongly stick even under a looser budget.
      Resp.Status = RequestOutcome::Budget;
      Resp.Error = "phase '" + Gov.tripped() + "' exceeded its budget";
      Resp.Diagnostics = "error: " + Resp.Error;
      // The phases that did run may have produced real diagnostics
      // (warnings, notes); the budget line must not erase them.
      if (!CC->Diagnostics.empty())
        Resp.Diagnostics += "\n" + CC->Diagnostics;
      return Resp;
    }
    Cache.insert(Key, CC);
  }

  Resp.CompileOk = CC->ok();
  Resp.Diagnostics = CC->Diagnostics;
  if (!CC->ok()) {
    Resp.Status = RequestOutcome::CompileError;
    return Resp;
  }

  Resp.Printed = CC->Printed;
  Resp.CaptureReport = CC->CaptureReport;
  Resp.Schemes.reserve(Req.SchemeNames.size());
  for (const std::string &Name : Req.SchemeNames)
    Resp.Schemes.emplace_back(Name, CC->schemeOf(Name));

  if (Req.Run) {
    rt::EvalOptions EvalOpts = Req.EvalOpts;
    // Route the run's heap through the shared pool — unless the request
    // asks for exact dangling detection, which quarantines it.
    if (Pool && !EvalOpts.RetainReleasedPages)
      EvalOpts.SharedPool = Pool;
    rt::RunResult R = CC->run(EvalOpts);
    Resp.Ran = true;
    Resp.Outcome = R.Outcome;
    if (R.Outcome != rt::RunOutcome::Ok)
      Resp.Status = RequestOutcome::RunFailed;
    Resp.Output = std::move(R.Output);
    Resp.ResultText = std::move(R.ResultText);
    Resp.Error = std::move(R.Error);
    Resp.Heap = R.Heap;
    Resp.Steps = R.Steps;
    Resp.GcPolicy = R.Policy;
    Resp.Profiles.push_back(std::move(R.Phase));
  }
  return Resp;
}
