//===- service/Service.h - Concurrent compile-and-run service ---*- C++ -*-===//
//
// Part of RegionML, a reproduction of "Garbage-Collection Safety for
// Region-Based Type-Polymorphic Programs" (Elsman, PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving layer in front of the pipeline — the shape every later
/// scaling step (sharding, async I/O, multi-backend) builds on:
///
///   submit(Request) ──> bounded MPMC queue ──> N worker threads
///        (backpressure)        │                   │
///        std::future<Response> │          content-addressed LRU
///                              │          compile cache (shared,
///                              └────────► immutable CachedCompile)
///                                                  │
///                                         region runtime + GC
///                                         (one private heap per run;
///                                          standard pages recycled
///                                          through a shared PagePool)
///
/// Requests carry source + CompileOptions + optional EvalOptions; the
/// response carries diagnostics, the printed program, requested scheme
/// renderings, the run outcome and its HeapStats. Workers respect the
/// one-Compiler-per-thread constraint by construction: cold compiles go
/// to a fresh per-entry Compiler that is frozen into the cache (see
/// service/Cache.h), and cache hits only touch the frozen units through
/// their const surface.
///
//===----------------------------------------------------------------------===//

#ifndef RML_SERVICE_SERVICE_H
#define RML_SERVICE_SERVICE_H

#include "service/Cache.h"

#include "rt/PagePool.h"

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace rml::service {

/// One unit of work: compile \p Source with \p Opts, optionally run it.
struct Request {
  std::string Source;
  CompileOptions Opts;
  /// Execute the program after a successful compile.
  bool Run = true;
  rt::EvalOptions EvalOpts;
  /// Top-level names whose region type schemes the response should
  /// render (unknown/monomorphic names render as "").
  std::vector<std::string> SchemeNames;
};

/// Everything the service produced for one request.
struct Response {
  /// The static pipeline succeeded.
  bool CompileOk = false;
  /// The compilation was served from the cache.
  bool CacheHit = false;
  /// Rendered diagnostics (empty on a clean compile).
  std::string Diagnostics;
  /// The region-annotated program (Figure 2 style).
  std::string Printed;
  /// (name, rendered scheme) for every requested SchemeName, in order.
  std::vector<std::pair<std::string, std::string>> Schemes;
  /// True when the program was executed (CompileOk && Request.Run).
  bool Ran = false;
  rt::RunOutcome Outcome = rt::RunOutcome::Ok;
  std::string Output;     // everything print-ed
  std::string ResultText; // rendered final value
  std::string Error;      // non-Ok outcome explanation
  rt::HeapStats Heap;
  uint64_t Steps = 0;
  /// Per-phase profiles for this request: the static phases in registry
  /// order (on a cache hit they are present but Skipped with zero
  /// nanos — the work was reused, not redone) followed, when the
  /// program ran, by a fresh runtime phase.
  std::vector<PhaseProfile> Profiles;
};

/// Service configuration.
struct ServiceConfig {
  /// Worker threads; 0 means one per hardware thread (at least 1).
  unsigned Workers = 0;
  /// Bounded queue: submit() blocks once this many requests wait
  /// (backpressure toward the producers).
  size_t QueueCapacity = 256;
  /// LRU compile-cache entries; 0 disables caching.
  size_t CacheCapacity = 128;
  /// Bound on the cache's summed arena footprint (nodes across frozen
  /// per-entry Compilers); 0 leaves cost unbounded (entry count only).
  size_t CacheCostCapacity = 0;
  /// Standard region pages the cross-request PagePool may hold; worker
  /// runs draw pages from it and recycle them back on heap teardown.
  /// 0 disables pooling (every run round-trips the allocator). Requests
  /// that ask for RetainReleasedPages dangling detection bypass the
  /// pool regardless (see rt/PagePool.h).
  size_t PagePoolPages = rt::PagePool::DefaultMaxPages;
  /// Eagerly allocate the pool's PagePoolPages at construction so the
  /// first request wave runs entirely on recycled pages (a cold pool
  /// pays one allocator miss per page instead).
  bool PrewarmPool = false;
  /// Optional sink receiving every executed phase profile (static
  /// phases of cold compiles plus each request's runtime phase).
  /// Non-owning; must be thread-safe (workers record concurrently) and
  /// outlive the service. Null disables forwarding.
  TraceSink *Trace = nullptr;

  unsigned effectiveWorkers() const {
    if (Workers)
      return Workers;
    unsigned H = std::thread::hardware_concurrency();
    return H ? H : 1;
  }
};

/// A point-in-time statistics snapshot; also renderable as one-line JSON.
struct ServiceStats {
  /// Aggregate cost of one pipeline phase across every completed
  /// request (skipped phases — cache hits, a disabled checker — do not
  /// contribute): utilization decomposed by phase.
  struct PhaseAggregate {
    std::string Name;
    uint64_t SumNanos = 0;
    uint64_t MaxNanos = 0;
    /// Executed (non-skipped) instances of the phase.
    uint64_t Count = 0;
  };

  uint64_t Submitted = 0;
  /// trySubmit() calls turned away at a full queue.
  uint64_t Rejected = 0;
  uint64_t Completed = 0;
  uint64_t CompileErrors = 0;
  uint64_t RunsOk = 0;
  uint64_t RunsFailed = 0;
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  uint64_t CacheEvictions = 0;
  /// Deepest the queue ever got (backpressure high-water mark).
  uint64_t QueueHighWater = 0;
  uint64_t QueueDepth = 0;
  unsigned Workers = 0;
  /// Sum over runs of HeapStats counters (the serving-level GC bill).
  uint64_t TotalGcCount = 0;
  uint64_t TotalAllocWords = 0;
  uint64_t TotalCopiedWords = 0;
  /// Cross-request page pool counters (all zero when pooling is off).
  uint64_t PoolAcquireHits = 0;
  uint64_t PoolAcquireMisses = 0;
  uint64_t PoolReleases = 0;
  uint64_t PoolTrims = 0;
  uint64_t PoolPrewarmed = 0;
  uint64_t PoolFreePages = 0;
  uint64_t PoolCapacity = 0;
  /// Nanoseconds workers spent processing (vs idle) and service uptime.
  uint64_t BusyNanos = 0;
  uint64_t UptimeNanos = 0;
  /// One aggregate per pipeline phase, in stable order: the static
  /// phases (Compiler::staticPhaseNames()) then the runtime phase.
  std::vector<PhaseAggregate> Phases;

  /// Fraction of standard-page demand served by pool reuse, in [0,1].
  double poolReuseRatio() const {
    uint64_t Total = PoolAcquireHits + PoolAcquireMisses;
    return Total ? static_cast<double>(PoolAcquireHits) / Total : 0.0;
  }

  /// Fraction of worker-thread time spent processing, in [0,1].
  double utilization() const {
    double Denom = static_cast<double>(Workers) *
                   static_cast<double>(UptimeNanos);
    return Denom > 0 ? static_cast<double>(BusyNanos) / Denom : 0.0;
  }

  /// One-line JSON rendering of every counter (stable key order).
  std::string json() const;
};

/// A thread-pool compile-and-run service. Construction spawns the
/// workers; destruction (or shutdown()) drains the queue and joins them.
/// submit() and stats() are safe from any thread.
class Service {
public:
  explicit Service(ServiceConfig Cfg = {});
  ~Service();

  Service(const Service &) = delete;
  Service &operator=(const Service &) = delete;

  /// Enqueues a request; the future resolves when a worker finishes it.
  /// Blocks while the queue is at capacity (backpressure). After
  /// shutdown() the future resolves immediately with a "service is shut
  /// down" diagnostic (the library-wide no-throw convention).
  std::future<Response> submit(Request R);

  /// Non-blocking submit for event-loop frontends: returns std::nullopt
  /// instead of blocking when the queue is at capacity (counted in
  /// ServiceStats::Rejected — the caller sheds load or retries). After
  /// shutdown() it behaves like submit(): an immediately resolved
  /// "service is shut down" future, never nullopt, so callers can tell
  /// "retry later" from "never".
  std::optional<std::future<Response>> trySubmit(Request R);

  /// Stops accepting work, finishes every queued request, joins the
  /// workers. Idempotent; the destructor calls it.
  void shutdown();

  ServiceStats stats() const;
  const ServiceConfig &config() const { return Cfg; }
  /// The cross-request page pool (null when PagePoolPages == 0).
  const rt::PagePool *pagePool() const { return Pool.get(); }

private:
  struct Job {
    Request Req;
    std::promise<Response> Promise;
  };

  void workerMain();
  Response process(const Request &Req);

  ServiceConfig Cfg;
  CompileCache Cache;
  /// Shared across all workers' run heaps; must outlive every run, so
  /// it is declared before (destroyed after) the worker threads, and
  /// shutdown() joins them before any member dies anyway.
  std::unique_ptr<rt::PagePool> Pool;
  std::vector<std::thread> Threads;
  std::chrono::steady_clock::time_point Started;

  mutable std::mutex QueueMutex;
  std::condition_variable NotEmpty; // workers wait: queue has work/stop
  std::condition_variable NotFull;  // producers wait: queue has room
  std::deque<Job> Queue;
  bool Stopping = false;

  mutable std::mutex StatsMutex;
  ServiceStats Counters; // queue/uptime fields filled in stats()
};

} // namespace rml::service

#endif // RML_SERVICE_SERVICE_H
