//===- service/Service.h - Concurrent compile-and-run service ---*- C++ -*-===//
//
// Part of RegionML, a reproduction of "Garbage-Collection Safety for
// Region-Based Type-Polymorphic Programs" (Elsman, PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving layer in front of the pipeline, decomposed into three
/// layers so each later scaling step (sharding, async I/O,
/// multi-backend) replaces exactly one of them:
///
///   admission            policy                 execution
///   submit/trySubmit ──> Scheduler ──────────> N workers x Executor
///     (backpressure,      (Fifo | Ljf,           (compile cache,
///      future- or          externally             per-phase budgets,
///      callback-style      synchronized)          region runtime + GC,
///      completion)                                shared PagePool)
///
/// This file owns the thread-pool mechanics only: the bounded queue
/// lives behind a Scheduler (service/Scheduler.h) that decides dequeue
/// order, and everything a worker does to one request is the Executor
/// (service/Executor.h). Requests carry source + CompileOptions +
/// optional EvalOptions; the response carries diagnostics, the printed
/// program, requested scheme renderings, the run outcome and its
/// HeapStats. Workers respect the one-Compiler-per-thread constraint by
/// construction: cold compiles go to a fresh per-entry Compiler that is
/// frozen into the cache (see service/Cache.h), and cache hits only
/// touch the frozen units through their const surface.
///
//===----------------------------------------------------------------------===//

#ifndef RML_SERVICE_SERVICE_H
#define RML_SERVICE_SERVICE_H

#include "service/Cache.h"
#include "service/Config.h"
#include "service/CostModel.h"
#include "service/DiskCache.h"
#include "service/Executor.h"
#include "service/Request.h"
#include "service/Scheduler.h"
#include "service/Stats.h"

#include "rt/PagePool.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace rml::service {

/// A thread-pool compile-and-run service. Construction spawns the
/// workers; destruction (or shutdown()) drains the queue and joins them.
/// submit(), trySubmit() and stats() are safe from any thread.
class Service {
public:
  explicit Service(ServiceConfig Cfg = {});
  ~Service();

  Service(const Service &) = delete;
  Service &operator=(const Service &) = delete;

  /// Enqueues a request; the future resolves when a worker finishes it.
  /// Blocks while the queue is at capacity (backpressure). A producer
  /// blocked here is woken by shutdown() and — like any submit after
  /// shutdown — gets an immediately resolved RequestOutcome::Shutdown
  /// response (the library-wide no-throw convention).
  std::future<Response> submit(Request R);

  /// Callback-style submit for event-loop frontends: no future, no
  /// thread parked on get() — \p Done runs on the worker thread that
  /// finished the request (keep it cheap and non-blocking; it must not
  /// call back into blocking Service methods). Same backpressure and
  /// shutdown behaviour as the future form, except a shutdown rejection
  /// invokes \p Done inline on the submitting thread.
  void submit(Request R, std::function<void(Response)> Done);

  /// Non-blocking submit for event-loop frontends: returns std::nullopt
  /// instead of blocking when the queue is at capacity (counted in
  /// ServiceStats::Rejected — the caller sheds load or retries). After
  /// shutdown() it behaves like submit(): an immediately resolved
  /// RequestOutcome::Shutdown future, never nullopt, so callers can
  /// tell "retry later" from "never".
  std::optional<std::future<Response>> trySubmit(Request R);

  /// The non-blocking x callback-style corner, built for the network
  /// front door (net/Server.h): an event-loop thread must neither park
  /// on a full queue nor park on a future. \returns false when the
  /// queue is at capacity — the request was shed at admission (counted
  /// in ServiceStats::Rejected) and \p Done will never run. Otherwise
  /// returns true: \p Done runs exactly once, on the worker that
  /// finishes the request, or inline on this thread with a
  /// RequestOutcome::Shutdown response when the service is stopping.
  bool trySubmit(Request R, std::function<void(Response)> Done);

  /// Stops accepting work, wakes any producer blocked in submit(),
  /// finishes every queued request, joins the workers. Idempotent and
  /// safe to race from several threads; the destructor calls it.
  void shutdown();

  ServiceStats stats() const;
  const ServiceConfig &config() const { return Cfg; }
  /// The cross-request page pool (null when PagePoolPages == 0).
  const rt::PagePool *pagePool() const { return Pool.get(); }
  /// The learned cost model every completion feeds. Exposed so the
  /// network front door can consult predictions at admission (shedding
  /// predicted-over-deadline work before it queues).
  const CostModel &costModel() const { return Model; }
  /// Summed predicted cost (CostKey nanos) of the jobs currently
  /// queued — not yet picked up by a worker. The network front door
  /// divides this by the worker count for an expected-wait estimate at
  /// admission (predicted-wait shedding). Relaxed: a load races with
  /// enqueues/dequeues by design; shedding is heuristic.
  uint64_t queuedCostNanos() const {
    return QueuedCost.load(std::memory_order_relaxed);
  }

private:
  /// Admission: stamps Seq and hands the job to Scheduler::admit()
  /// (which stamps CostKey from the model and the absolute deadline),
  /// bumps counters. Caller holds QueueMutex and has checked !Stopping.
  void enqueue(ScheduledJob J);
  void workerMain();

  ServiceConfig Cfg;
  /// The persistent tier (null when Cfg.CacheDir is empty). Declared
  /// before Cache, which holds a raw pointer to it.
  std::unique_ptr<DiskCache> Disk;
  CompileCache Cache;
  /// Shared across all workers' run heaps; must outlive every run, so
  /// it is declared before (destroyed after) the worker threads, and
  /// shutdown() joins them before any member dies anyway.
  std::unique_ptr<rt::PagePool> Pool;
  /// Learned per-source/per-phase costs; fed by the Executor on every
  /// completion, read by the scheduler's cost provider and by admission
  /// layers. Declared before Exec, which holds a pointer to it.
  CostModel Model;
  /// Stateless over Cfg/Cache/Pool/Model; shared by all workers.
  Executor Exec;
  std::vector<std::thread> Threads;
  std::chrono::steady_clock::time_point Started;

  mutable std::mutex QueueMutex;
  std::condition_variable NotEmpty; // workers wait: queue has work/stop
  std::condition_variable NotFull;  // producers wait: queue has room
  /// The dequeue policy; externally synchronized by QueueMutex.
  std::unique_ptr<Scheduler> Sched;
  /// Admission order stamp for ScheduledJob::Seq (under QueueMutex).
  uint64_t NextSeq = 0;
  bool Stopping = false;
  /// Summed CostKeys of queued (admitted, not yet dequeued) jobs.
  /// Atomic so queuedCostNanos() needs no lock.
  std::atomic<uint64_t> QueuedCost{0};

  /// Serializes the join phase of racing shutdown() calls (QueueMutex
  /// cannot be held across join — workers take it to drain).
  std::mutex JoinMutex;

  mutable std::mutex StatsMutex;
  ServiceStats Counters; // queue/uptime fields filled in stats()
};

} // namespace rml::service

#endif // RML_SERVICE_SERVICE_H
