//===- service/Hash.h - Content-addressed cache keys ------------*- C++ -*-===//
//
// Part of RegionML, a reproduction of "Garbage-Collection Safety for
// Region-Based Type-Polymorphic Programs" (Elsman, PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Content addressing for the compile cache. The static pipeline is pure
/// and deterministic per (source, CompileOptions) — the same pair always
/// yields the same region-annotated program, schemes and analyses — so a
/// compilation is fully identified by hashing exactly the inputs the
/// pipeline reads: the source text plus the Strategy / SpuriousMode /
/// Check / Captures knobs. EvalOptions deliberately do NOT enter the
/// key; they only affect run(), which is recomputed per request.
///
/// The hash is 64-bit FNV-1a: no dependencies, stable across platforms,
/// and cheap enough to be negligible next to a parse. Collisions are
/// harmless for correctness — CacheKey keeps the full source and option
/// fields and compares them on lookup; the hash is only the bucket index.
///
//===----------------------------------------------------------------------===//

#ifndef RML_SERVICE_HASH_H
#define RML_SERVICE_HASH_H

#include "core/Pipeline.h"

#include <cstdint>
#include <string>
#include <string_view>

namespace rml::service {

/// 64-bit FNV-1a, incremental: fold in bytes as they arrive.
class Fnv1a {
public:
  static constexpr uint64_t Offset = 0xcbf29ce484222325ull;
  static constexpr uint64_t Prime = 0x100000001b3ull;

  Fnv1a &bytes(std::string_view S) {
    for (unsigned char C : S) {
      H ^= C;
      H *= Prime;
    }
    return *this;
  }
  Fnv1a &byte(uint8_t B) {
    H ^= B;
    H *= Prime;
    return *this;
  }
  uint64_t value() const { return H; }

private:
  uint64_t H = Offset;
};

/// Hash of everything the static pipeline reads.
inline uint64_t hashCompileInputs(std::string_view Source,
                                  const CompileOptions &Opts) {
  return Fnv1a()
      .bytes(Source)
      .byte(static_cast<uint8_t>(Opts.Strat))
      .byte(static_cast<uint8_t>(Opts.Spurious))
      .byte(Opts.Check ? 1 : 0)
      .byte(Opts.Captures ? 1 : 0)
      .value();
}

/// The cache key: precomputed hash plus the exact inputs, so lookups are
/// collision-proof (full comparison) while hashing stays O(1) amortised.
struct CacheKey {
  uint64_t Hash = 0;
  std::string Source;
  Strategy Strat = Strategy::Rg;
  SpuriousMode Spurious = SpuriousMode::FreshSecondary;
  bool Check = true;
  bool Captures = false;

  static CacheKey of(std::string_view Source, const CompileOptions &Opts) {
    CacheKey K;
    K.Hash = hashCompileInputs(Source, Opts);
    K.Source = std::string(Source);
    K.Strat = Opts.Strat;
    K.Spurious = Opts.Spurious;
    K.Check = Opts.Check;
    K.Captures = Opts.Captures;
    return K;
  }

  friend bool operator==(const CacheKey &A, const CacheKey &B) {
    return A.Hash == B.Hash && A.Strat == B.Strat &&
           A.Spurious == B.Spurious && A.Check == B.Check &&
           A.Captures == B.Captures && A.Source == B.Source;
  }
  friend bool operator!=(const CacheKey &A, const CacheKey &B) {
    return !(A == B);
  }
};

struct CacheKeyHash {
  size_t operator()(const CacheKey &K) const {
    return static_cast<size_t>(K.Hash);
  }
};

} // namespace rml::service

#endif // RML_SERVICE_HASH_H
