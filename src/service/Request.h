//===- service/Request.h - Service request/response types -------*- C++ -*-===//
//
// Part of RegionML, a reproduction of "Garbage-Collection Safety for
// Region-Based Type-Polymorphic Programs" (Elsman, PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The admission-layer vocabulary: what a client hands the service
/// (Request) and what it gets back (Response). Split out of Service.h so
/// the Scheduler and Executor layers can speak these types without
/// seeing the thread pool.
///
//===----------------------------------------------------------------------===//

#ifndef RML_SERVICE_REQUEST_H
#define RML_SERVICE_REQUEST_H

#include "core/Pipeline.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace rml::service {

/// One unit of work: compile \p Source with \p Opts, optionally run it.
struct Request {
  std::string Source;
  CompileOptions Opts;
  /// Execute the program after a successful compile.
  bool Run = true;
  rt::EvalOptions EvalOpts;
  /// Top-level names whose region type schemes the response should
  /// render (unknown/monomorphic names render as "").
  std::vector<std::string> SchemeNames;
  /// Which tenant submitted the request. Purely a scheduling label: the
  /// FairShare policy keys its deficit round-robin on it, everything
  /// else ignores it. Empty is itself a tenant (the anonymous one), so
  /// untagged traffic shares one aggregate slot instead of bypassing
  /// fairness.
  std::string Tenant;
  /// Relative completion deadline in nanoseconds from admission; 0
  /// means none. The Deadline policy orders on the absolute deadline
  /// stamped at admission (ScheduledJob::DeadlineAt), and net::Server
  /// admission sheds requests whose *learned* predicted cost already
  /// exceeds this before they ever queue.
  uint64_t DeadlineNanos = 0;
};

/// The service-level disposition of a request — orthogonal to the
/// runtime's rt::RunOutcome (which only describes how an execution
/// ended, and stays rt::RunOutcome::Ok for requests that never ran).
enum class RequestOutcome : uint8_t {
  /// Compiled (and, if requested, ran) cleanly.
  Ok,
  /// The static pipeline failed; Response::Diagnostics says why.
  CompileError,
  /// Compiled but the execution ended non-Ok (see Response::Outcome).
  RunFailed,
  /// Cut off at a phase boundary by a ServiceConfig::PhaseBudgets
  /// budget; counted in ServiceStats::BudgetExceeded. Never cached, so
  /// a later submission under a looser budget recompiles from scratch.
  Budget,
  /// Rejected because the service was (or began) shutting down.
  Shutdown,
  /// An exception escaped request processing (a throwing trace sink or
  /// governor, bad_alloc, ...). The worker survives, the response
  /// carries e.what() in Error, and the event is counted in
  /// ServiceStats::InternalErrors. Never cached.
  InternalError,
};

/// \returns the stable lower-case name ("ok", "budget", ...).
const char *requestOutcomeName(RequestOutcome O);

/// Everything the service produced for one request.
struct Response {
  /// The static pipeline succeeded.
  bool CompileOk = false;
  /// The compilation was served from the cache.
  bool CacheHit = false;
  /// How the service disposed of the request.
  RequestOutcome Status = RequestOutcome::Ok;
  /// Rendered diagnostics (empty on a clean compile).
  std::string Diagnostics;
  /// The region-annotated program (Figure 2 style).
  std::string Printed;
  /// (name, rendered scheme) for every requested SchemeName, in order.
  std::vector<std::pair<std::string, std::string>> Schemes;
  /// The capture-tracking report (rinfer/Captures.h), non-empty exactly
  /// when the request was compiled with Opts.Captures and the compile
  /// succeeded. Byte-identical whether the compile was fresh, a memory
  /// hit, or a disk-tier hit.
  std::string CaptureReport;
  /// True when the program was executed (CompileOk && Request.Run).
  bool Ran = false;
  rt::RunOutcome Outcome = rt::RunOutcome::Ok;
  std::string Output;     // everything print-ed
  std::string ResultText; // rendered final value
  std::string Error;      // non-Ok outcome explanation
  rt::HeapStats Heap;
  uint64_t Steps = 0;
  /// What the run's GC policy did (knob moves, budget overruns, final
  /// positions). Zero-valued for requests that never ran.
  rt::GcPolicyStats GcPolicy;
  /// Per-phase profiles for this request: the static phases in registry
  /// order (on a cache hit they are present but Skipped with zero
  /// nanos — the work was reused, not redone; on a Budget cut-off the
  /// list stops at the over-budget phase) followed, when the program
  /// ran, by a fresh runtime phase carrying the run's GcPauses.
  std::vector<PhaseProfile> Profiles;
};

} // namespace rml::service

#endif // RML_SERVICE_REQUEST_H
