//===- service/Executor.h - Per-request execution with budgets --*- C++ -*-===//
//
// Part of RegionML, a reproduction of "Garbage-Collection Safety for
// Region-Based Type-Polymorphic Programs" (Elsman, PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution layer: everything that happens to one request after a
/// worker picks it up — cache lookup, cold compile under the configured
/// per-phase budgets, scheme rendering, and the region-runtime run
/// through the shared page pool. Stateless apart from the references it
/// is built over, so any number of workers share one Executor; the
/// thread-pool mechanics stay in Service, the dequeue policy in
/// Scheduler, and this file owns only *what running a request means*.
///
//===----------------------------------------------------------------------===//

#ifndef RML_SERVICE_EXECUTOR_H
#define RML_SERVICE_EXECUTOR_H

#include "service/Cache.h"
#include "service/Config.h"
#include "service/Request.h"

#include "rt/PagePool.h"

namespace rml::service {

class CostModel;

/// Runs requests against a compile cache and a page pool under one
/// ServiceConfig. process() is safe from any number of threads: the
/// cache and pool are thread-safe, and each cold compile happens on a
/// fresh per-entry Compiler governed by a stack-local budget governor.
class Executor {
public:
  /// All referents are non-owning and must outlive the Executor.
  /// \p Model (nullable) receives one observation per completion and,
  /// under ServiceConfig::AutoBudget, supplies derived phase budgets.
  Executor(const ServiceConfig &Cfg, CompileCache &Cache, rt::PagePool *Pool,
           CostModel *Model = nullptr)
      : Cfg(Cfg), Cache(Cache), Pool(Pool), Model(Model) {}

  /// The whole lifecycle of one request: cache lookup -> (on a miss)
  /// budgeted cold compile + cache insert -> schemes -> optional run.
  /// A compile cut off by ServiceConfig::PhaseBudgets returns
  /// RequestOutcome::Budget with the partial phase profiles and is
  /// *not* cached (a later, unbudgeted submission must be able to
  /// finish the work).
  Response process(const Request &Req) const;

  /// How many Run=true requests hit a disk-tier entry that carried no
  /// runnable flat unit and had to fall back to a full recompile. Zero
  /// in steady state (format-version-2 entries always embed the flat
  /// unit); nonzero flags synthetic or future-format entries whose
  /// "hit" silently cost a whole compile.
  uint64_t diskHydrations() const {
    return DiskHydrations.load(std::memory_order_relaxed);
  }

  /// How many cold compiles ran under CostModel-derived budgets
  /// (ServiceConfig::AutoBudget with an empty explicit PhaseBudgets and
  /// enough per-phase history). Zero until the model has
  /// BudgetMinSamples observations of some phase.
  uint64_t budgetAutoDerived() const {
    return BudgetAutoDerived.load(std::memory_order_relaxed);
  }

private:
  /// The cache/compile/run lifecycle; process() wraps it to feed the
  /// cost model exactly once per completion.
  Response processImpl(const Request &Req) const;

  const ServiceConfig &Cfg;
  CompileCache &Cache;
  rt::PagePool *Pool;
  /// Nullable; fed on completion, consulted for auto budgets.
  CostModel *Model;
  /// Counts the un-runnable-disk-hit recompile fallback in process().
  mutable std::atomic<uint64_t> DiskHydrations{0};
  /// Counts cold compiles governed by model-derived budgets.
  mutable std::atomic<uint64_t> BudgetAutoDerived{0};
};

} // namespace rml::service

#endif // RML_SERVICE_EXECUTOR_H
