//===- service/Cache.cpp --------------------------------------------------===//

#include "service/Cache.h"

using namespace rml;
using namespace rml::service;

CachedCompileRef rml::service::compileShared(std::string_view Source,
                                             const CompileOptions &Opts) {
  auto CC = std::make_shared<CachedCompile>();
  CC->Owner = std::make_unique<Compiler>();
  CC->Unit = CC->Owner->compile(Source, Opts);
  CC->Diagnostics = CC->Owner->diagnostics().str();
  if (CC->Unit)
    CC->Printed = CC->Owner->printProgram(*CC->Unit);
  return CC;
}

CachedCompileRef CompileCache::lookup(const CacheKey &K) {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Map.find(K);
  if (It == Map.end()) {
    ++C.Misses;
    return nullptr;
  }
  ++C.Hits;
  Lru.splice(Lru.begin(), Lru, It->second); // refresh recency
  return It->second->second;
}

void CompileCache::insert(const CacheKey &K, CachedCompileRef V) {
  if (Cap == 0)
    return;
  std::lock_guard<std::mutex> Lock(M);
  ++C.Insertions;
  auto It = Map.find(K);
  if (It != Map.end()) {
    // Lost a compile race: keep the freshest value, refresh recency.
    It->second->second = std::move(V);
    Lru.splice(Lru.begin(), Lru, It->second);
    return;
  }
  Lru.emplace_front(K, std::move(V));
  Map.emplace(Lru.front().first, Lru.begin());
  while (Map.size() > Cap) {
    Map.erase(Lru.back().first);
    Lru.pop_back();
    ++C.Evictions;
  }
}

CompileCache::Counters CompileCache::counters() const {
  std::lock_guard<std::mutex> Lock(M);
  return C;
}

size_t CompileCache::size() const {
  std::lock_guard<std::mutex> Lock(M);
  return Map.size();
}

std::vector<uint64_t> CompileCache::recencyHashes() const {
  std::lock_guard<std::mutex> Lock(M);
  std::vector<uint64_t> Out;
  Out.reserve(Lru.size());
  for (const Node &N : Lru)
    Out.push_back(N.first.Hash);
  return Out;
}
