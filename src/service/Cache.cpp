//===- service/Cache.cpp --------------------------------------------------===//

#include "service/Cache.h"

#include "service/DiskCache.h"

#include <algorithm>

using namespace rml;
using namespace rml::service;

CachedCompileRef rml::service::compileShared(std::string_view Source,
                                             const CompileOptions &Opts,
                                             PhaseGovernor *Governor) {
  auto CC = std::make_shared<CachedCompile>();
  CC->Owner = std::make_unique<Compiler>();
  CC->Owner->setPhaseGovernor(Governor);
  CC->Unit = CC->Owner->compile(Source, Opts);
  // Detach before freezing: the governor may die with its caller's
  // stack frame while the cached entry lives on (wasCutOff() persists).
  CC->Owner->setPhaseGovernor(nullptr);
  CC->Ok = CC->Unit != nullptr;
  CC->Diagnostics = CC->Owner->diagnostics().str();
  if (CC->Unit) {
    CC->Printed = CC->Owner->printProgram(*CC->Unit);
    CC->Schemes = CC->Owner->topLevelSchemes(*CC->Unit);
    CC->CaptureReport = CC->Owner->captureReport(*CC->Unit);
    // Alias the unit's flat form: run() prefers it, and the disk tier
    // persists it so warm restarts are runnable without recompiling.
    CC->Flat = CC->Unit->Flat;
  }
  CC->Profiles = CC->Owner->lastPhaseProfiles();
  CC->Cost = std::max<size_t>(1, CC->Owner->arenaFootprint().total());
  return CC;
}

CompileCache::CompileCache(size_t Capacity, size_t CostCapacity,
                           DiskCache *DiskTier)
    : Cap(Capacity), CostCap(CostCapacity), Disk(DiskTier) {
  // Entry capacity rounds up so tiny aggregate caps still admit one
  // entry per shard; the cost budget divides evenly (tests pass
  // multiples of NumShards when they need the bound exact).
  ShardCap = Cap == 0 ? 0 : (Cap + NumShards - 1) / NumShards;
  ShardCostCap = CostCap == 0 ? 0 : std::max<size_t>(1, CostCap / NumShards);
}

CachedCompileRef CompileCache::lookup(const CacheKey &K) {
  Shard &S = Shards[shardOf(K)];
  {
    std::lock_guard<std::mutex> Lock(S.M);
    auto It = S.Map.find(K);
    if (It != S.Map.end()) {
      ++S.C.Hits;
      S.Lru.splice(S.Lru.begin(), S.Lru, It->second); // refresh recency
      It->second->Stamp = RecencyClock.fetch_add(1) + 1;
      return It->second->Value;
    }
    ++S.C.Misses;
  }
  // Memory miss: consult the persistent tier outside the shard lock —
  // disk I/O under a striped lock would serialise the very workers the
  // shards exist to decouple.
  if (!Disk || Cap == 0)
    return nullptr;
  CachedCompileRef FromDisk = Disk->load(K);
  if (!FromDisk)
    return nullptr;
  // Promote without write-through (the bytes just came from that file).
  std::lock_guard<std::mutex> Lock(S.M);
  auto It = S.Map.find(K);
  if (It != S.Map.end()) {
    // A racing worker populated the slot meanwhile; prefer its entry —
    // it may already be the hydrated, runnable one.
    S.Lru.splice(S.Lru.begin(), S.Lru, It->second);
    It->second->Stamp = RecencyClock.fetch_add(1) + 1;
    return It->second->Value;
  }
  insertLocked(S, K, FromDisk);
  return FromDisk;
}

void CompileCache::insert(const CacheKey &K, CachedCompileRef V) {
  if (Cap == 0)
    return;
  bool WriteThrough = Disk && V && !V->FromDisk;
  Shard &S = Shards[shardOf(K)];
  {
    std::lock_guard<std::mutex> Lock(S.M);
    insertLocked(S, K, V);
  }
  if (WriteThrough)
    Disk->store(K, *V);
}

void CompileCache::insertLocked(Shard &S, const CacheKey &K,
                                CachedCompileRef V) {
  ++S.C.Insertions;
  size_t Cost = V ? V->Cost : 1;
  uint64_t Stamp = RecencyClock.fetch_add(1) + 1;
  auto It = S.Map.find(K);
  if (It != S.Map.end()) {
    // Lost a compile race: keep the freshest value, refresh recency.
    S.TotalCost -= It->second->Value ? It->second->Value->Cost : 1;
    S.TotalCost += Cost;
    It->second->Value = std::move(V);
    It->second->Stamp = Stamp;
    S.Lru.splice(S.Lru.begin(), S.Lru, It->second);
  } else {
    S.Lru.push_front(Node{K, std::move(V), Stamp});
    S.Map.emplace(S.Lru.front().Key, S.Lru.begin());
    S.TotalCost += Cost;
  }
  // Evict by count, then by summed arena footprint; the freshest entry
  // of the shard is never evicted (see the class comment).
  while (S.Map.size() > ShardCap ||
         (ShardCostCap != 0 && S.TotalCost > ShardCostCap &&
          S.Map.size() > 1)) {
    const Node &Victim = S.Lru.back();
    S.TotalCost -= Victim.Value ? Victim.Value->Cost : 1;
    S.Map.erase(Victim.Key);
    S.Lru.pop_back();
    ++S.C.Evictions;
  }
}

CompileCache::Counters CompileCache::counters() const {
  Counters Sum;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.M);
    Sum.Hits += S.C.Hits;
    Sum.Misses += S.C.Misses;
    Sum.Insertions += S.C.Insertions;
    Sum.Evictions += S.C.Evictions;
  }
  return Sum;
}

size_t CompileCache::size() const {
  size_t N = 0;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.M);
    N += S.Map.size();
  }
  return N;
}

size_t CompileCache::totalCost() const {
  size_t N = 0;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.M);
    N += S.TotalCost;
  }
  return N;
}

std::vector<uint64_t> CompileCache::recencyHashes() const {
  // Shards are locked one at a time; with concurrent writers this is a
  // snapshot per shard, merged by the global recency stamps.
  std::vector<std::pair<uint64_t, uint64_t>> Stamped; // (Stamp, Hash)
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.M);
    for (const Node &N : S.Lru)
      Stamped.emplace_back(N.Stamp, N.Key.Hash);
  }
  std::sort(Stamped.begin(), Stamped.end(),
            [](const auto &A, const auto &B) { return A.first > B.first; });
  std::vector<uint64_t> Out;
  Out.reserve(Stamped.size());
  for (const auto &[Stamp, Hash] : Stamped)
    Out.push_back(Hash);
  return Out;
}
