//===- service/Cache.cpp --------------------------------------------------===//

#include "service/Cache.h"

#include <algorithm>

using namespace rml;
using namespace rml::service;

CachedCompileRef rml::service::compileShared(std::string_view Source,
                                             const CompileOptions &Opts,
                                             PhaseGovernor *Governor) {
  auto CC = std::make_shared<CachedCompile>();
  CC->Owner = std::make_unique<Compiler>();
  CC->Owner->setPhaseGovernor(Governor);
  CC->Unit = CC->Owner->compile(Source, Opts);
  // Detach before freezing: the governor may die with its caller's
  // stack frame while the cached entry lives on (wasCutOff() persists).
  CC->Owner->setPhaseGovernor(nullptr);
  CC->Diagnostics = CC->Owner->diagnostics().str();
  if (CC->Unit)
    CC->Printed = CC->Owner->printProgram(*CC->Unit);
  CC->Profiles = CC->Owner->lastPhaseProfiles();
  CC->Cost = std::max<size_t>(1, CC->Owner->arenaFootprint().total());
  return CC;
}

CachedCompileRef CompileCache::lookup(const CacheKey &K) {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Map.find(K);
  if (It == Map.end()) {
    ++C.Misses;
    return nullptr;
  }
  ++C.Hits;
  Lru.splice(Lru.begin(), Lru, It->second); // refresh recency
  return It->second->second;
}

void CompileCache::insert(const CacheKey &K, CachedCompileRef V) {
  if (Cap == 0)
    return;
  std::lock_guard<std::mutex> Lock(M);
  ++C.Insertions;
  size_t Cost = V ? V->Cost : 1;
  auto It = Map.find(K);
  if (It != Map.end()) {
    // Lost a compile race: keep the freshest value, refresh recency.
    TotalCost -= It->second->second ? It->second->second->Cost : 1;
    TotalCost += Cost;
    It->second->second = std::move(V);
    Lru.splice(Lru.begin(), Lru, It->second);
  } else {
    Lru.emplace_front(K, std::move(V));
    Map.emplace(Lru.front().first, Lru.begin());
    TotalCost += Cost;
  }
  // Evict by count, then by summed arena footprint; the freshest entry
  // is never evicted (see the class comment).
  while (Map.size() > Cap ||
         (CostCap != 0 && TotalCost > CostCap && Map.size() > 1)) {
    const Node &Victim = Lru.back();
    TotalCost -= Victim.second ? Victim.second->Cost : 1;
    Map.erase(Victim.first);
    Lru.pop_back();
    ++C.Evictions;
  }
}

CompileCache::Counters CompileCache::counters() const {
  std::lock_guard<std::mutex> Lock(M);
  return C;
}

size_t CompileCache::size() const {
  std::lock_guard<std::mutex> Lock(M);
  return Map.size();
}

size_t CompileCache::totalCost() const {
  std::lock_guard<std::mutex> Lock(M);
  return TotalCost;
}

std::vector<uint64_t> CompileCache::recencyHashes() const {
  std::lock_guard<std::mutex> Lock(M);
  std::vector<uint64_t> Out;
  Out.reserve(Lru.size());
  for (const Node &N : Lru)
    Out.push_back(N.first.Hash);
  return Out;
}
