//===- service/Cache.h - Sharded LRU compile cache --------------*- C++ -*-===//
//
// Part of RegionML, a reproduction of "Garbage-Collection Safety for
// Region-Based Type-Polymorphic Programs" (Elsman, PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-safe, sharded LRU cache of compilations, content-addressed
/// by (source, Strategy, SpuriousMode, Check) — see service/Hash.h —
/// with an optional persistent second tier (service/DiskCache.h).
///
/// **How a CompiledUnit becomes shareable.** A CompiledUnit points into
/// the arenas of the Compiler that built it, and Compiler::compile()
/// mutates those arenas, so a unit is only safe to share once its owner
/// stops compiling. The cache makes that true by construction: every
/// entry carries its own dedicated Compiler that performs exactly one
/// compile and is then frozen inside an immutable, refcounted
/// CachedCompile. After that, only const operations touch the pair —
/// Compiler::run(), printProgram() and schemeOf() are const and build
/// all mutable state (region heap, evaluator stacks) per call — so any
/// number of worker threads can run the same cached unit concurrently.
///
/// Entries loaded from the disk tier carry no Owner/Unit, but they do
/// carry the program's flat form (flat::FlatUnit, decoded from the
/// entry file), which is directly executable — runnable() holds and
/// run() executes the flat interpreter, so a warm restart's first
/// Run=true request is served entirely from disk. Only a disk entry
/// whose flat section is absent (a file written by a pre-flat version
/// of the format would fail the version check first, so in practice a
/// synthetic or future-format entry) falls back to the counted
/// hydration recompile in Executor::process.
///
/// **Sharding.** The map is split into NumShards key-hash-addressed
/// shards, each with its own mutex, LRU list and cost budget, so
/// workers contending on distinct keys proceed in parallel. The
/// cost-eviction invariant ("the freshest entry is never evicted")
/// holds per shard; the aggregate surface — counters(), size(),
/// totalCost(), recencyHashes() — merges the shards, the last in
/// global recency order via per-entry recency stamps.
///
/// Failed compilations are cached too (Unit == null + rendered
/// diagnostics): repeated ill-typed submissions are common in a serving
/// setting and re-diagnosing them is pure waste.
///
//===----------------------------------------------------------------------===//

#ifndef RML_SERVICE_CACHE_H
#define RML_SERVICE_CACHE_H

#include "service/Hash.h"

#include <array>
#include <atomic>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace rml::service {

class DiskCache;

/// One immutable compilation: the frozen owner Compiler, the unit it
/// produced (null if compilation failed or the entry came from disk),
/// and the products that are cheaper to render once than per request.
struct CachedCompile {
  /// The dedicated Compiler whose arenas own Unit. Never compiled on
  /// again; only its const surface is used after construction. Null for
  /// disk-tier entries.
  std::unique_ptr<Compiler> Owner;
  /// Null when compilation failed (then Diagnostics says why) or when
  /// the entry was loaded from disk (disk entries run via Flat instead).
  std::unique_ptr<CompiledUnit> Unit;
  /// The flat, self-contained executable form (see flat/Flat.h). For
  /// fresh compiles this aliases Unit->Flat; for disk-tier entries it
  /// is decoded from the entry file and is the *only* runnable form.
  std::shared_ptr<const flat::FlatUnit> Flat;
  /// Whether the compile this entry records succeeded. For fresh
  /// compiles this mirrors Unit != nullptr; for disk-tier entries it is
  /// the persisted verdict.
  bool Ok = false;
  /// Set on entries synthesised by DiskCache::load — they carry static
  /// products only and are never written back to disk.
  bool FromDisk = false;
  /// Rendered diagnostics (errors and warnings) of the compile.
  std::string Diagnostics;
  /// printProgram() output, rendered once at compile time.
  std::string Printed;
  /// The capture-tracking report (rinfer/Captures.h), rendered once at
  /// compile time when the unit was compiled with Options.Captures.
  /// Persisted by the disk tier, so capture queries are byte-identical
  /// across tiers and restarts. Empty when the phase did not run.
  std::string CaptureReport;
  /// Every top-level binding's rendered scheme, outermost first (the
  /// lookup order of Compiler::schemeOf). Persisted by the disk tier,
  /// so scheme queries are byte-identical across tiers and restarts.
  std::vector<std::pair<std::string, std::string>> Schemes;
  /// The static phase profiles of the one compile that built this
  /// entry (Compiler::lastPhaseProfiles(); partial when it failed).
  /// Cache hits report these names as skipped/zero — the work was
  /// reused, not redone.
  std::vector<PhaseProfile> Profiles;
  /// Eviction weight: the arena nodes the frozen Owner holds
  /// (Compiler::arenaFootprint().total(), at least 1). The cache bounds
  /// the sum of these, not the entry count, so one huge program cannot
  /// pin it.
  size_t Cost = 1;

  bool ok() const { return Ok; }
  /// True when the entry can serve a Run=true request: it holds a live
  /// CompiledUnit, a flat unit, or both. Fresh compiles have both; disk
  /// entries have only Flat. False only for failed compiles and for
  /// disk entries whose file predates (or omitted) the flat section —
  /// those hit Executor::process's counted hydration fallback.
  bool runnable() const { return Flat != nullptr || Unit != nullptr; }

  /// Read-only run of the cached unit (runnable() must hold). Safe
  /// concurrently from many threads. Prefers the flat interpreter —
  /// operationally identical to the tree walk (the differential suite
  /// pins this) and the only option for disk-tier entries.
  rt::RunResult run(rt::EvalOptions EvalOpts = {}) const {
    if (Flat)
      return Compiler::runFlat(*Flat, EvalOpts);
    return Owner->run(*Unit, EvalOpts);
  }

  /// Scheme of the outermost top-level binding named \p Name, from the
  /// persisted table ("" if unknown). Identical bytes whether the entry
  /// is fresh or from disk.
  std::string schemeOf(std::string_view Name) const {
    for (const auto &[N, S] : Schemes)
      if (N == Name)
        return S;
    return std::string();
  }
};

/// Shared, immutable handle to a compilation. Entries stay alive while
/// any request still holds the handle, even after cache eviction.
using CachedCompileRef = std::shared_ptr<const CachedCompile>;

/// Compiles \p Source on a fresh, dedicated Compiler and freezes the
/// result into a shareable CachedCompile. An optional \p Governor is
/// consulted at every phase boundary (per-phase budgets); it is
/// detached from the Compiler before this returns, so the frozen entry
/// never outlives a stack-local governor. A governed cut-off looks like
/// a failed compile here (null Unit, partial Profiles) — callers that
/// care ask the frozen Owner's wasCutOff().
CachedCompileRef compileShared(std::string_view Source,
                               const CompileOptions &Opts,
                               PhaseGovernor *Governor = nullptr);

/// Thread-safe sharded LRU cache: NumShards independent (mutex, LRU
/// list, map) triples addressed by key hash; front of each list is that
/// shard's most recently used entry. Capacity 0 disables caching (every
/// lookup misses, insert is a no-op).
///
/// The entry capacity and the optional CostCapacity are split across
/// shards (rounding the per-shard entry capacity up, so tiny caps still
/// admit one entry per shard). Eviction is cost-aware per shard: beyond
/// the entry count, the per-shard cost budget bounds the summed
/// CachedCompile::Cost, evicting from the LRU end until the bound holds
/// again. The most recently inserted entry of a shard always stays,
/// even when it alone exceeds the budget — a cache that rejects its
/// newest entry would re-compile it on every request.
///
/// With a DiskCache attached, a memory miss consults the disk tier
/// (outside any shard lock) and promotes a verified hit into the shard;
/// fresh inserts write through.
class CompileCache {
public:
  struct Counters {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Insertions = 0;
    uint64_t Evictions = 0;
  };

  static constexpr size_t NumShards = 8;

  /// Shard index of \p K: the top bits of a Fibonacci-mixed hash, so
  /// consecutive FNV values spread instead of clustering. Exposed for
  /// tests that need same-shard key sets.
  static size_t shardOf(const CacheKey &K) {
    return static_cast<size_t>((K.Hash * 0x9E3779B97F4A7C15ull) >> 61);
  }

  explicit CompileCache(size_t Capacity, size_t CostCapacity = 0,
                        DiskCache *Disk = nullptr);

  /// Returns the cached compilation and refreshes its recency, or null.
  /// Counts a hit or a miss; a memory miss falls through to the disk
  /// tier when one is attached.
  CachedCompileRef lookup(const CacheKey &K);

  /// Inserts (or refreshes) \p K, evicting the least recently used
  /// entries of its shard beyond the per-shard budgets, and writes the
  /// entry through to the disk tier. Two workers racing to insert the
  /// same key is benign: the second insert wins the map slot, and the
  /// first result stays valid for whoever already holds its shared_ptr.
  void insert(const CacheKey &K, CachedCompileRef V);

  Counters counters() const;
  size_t size() const;
  size_t capacity() const { return Cap; }
  size_t costCapacity() const { return CostCap; }
  /// Summed Cost of the resident entries, across shards.
  size_t totalCost() const;

  /// Keys from most to least recently used, merged across shards by
  /// recency stamp (testing / introspection).
  std::vector<uint64_t> recencyHashes() const;

private:
  struct Node {
    CacheKey Key;
    CachedCompileRef Value;
    /// Global recency stamp (RecencyClock at last touch); merges the
    /// per-shard LRU orders into one global order.
    uint64_t Stamp = 0;
  };

  struct Shard {
    mutable std::mutex M;
    size_t TotalCost = 0;
    std::list<Node> Lru; // front = most recent
    std::unordered_map<CacheKey, std::list<Node>::iterator, CacheKeyHash> Map;
    Counters C;
  };

  /// Inserts into \p S under its lock. WriteThrough distinguishes fresh
  /// inserts (persist to disk) from disk-tier promotions (already
  /// persisted).
  void insertLocked(Shard &S, const CacheKey &K, CachedCompileRef V);

  size_t Cap;        // aggregate entry capacity (0 disables)
  size_t CostCap;    // aggregate cost capacity (0 = unbounded)
  size_t ShardCap;   // per-shard entry capacity
  size_t ShardCostCap; // per-shard cost capacity
  DiskCache *Disk;   // optional second tier (not owned)
  std::atomic<uint64_t> RecencyClock{0};
  std::array<Shard, NumShards> Shards;
};

} // namespace rml::service

#endif // RML_SERVICE_CACHE_H
