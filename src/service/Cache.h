//===- service/Cache.h - LRU compile cache ----------------------*- C++ -*-===//
//
// Part of RegionML, a reproduction of "Garbage-Collection Safety for
// Region-Based Type-Polymorphic Programs" (Elsman, PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-safe LRU cache of compilations, content-addressed by
/// (source, Strategy, SpuriousMode, Check) — see service/Hash.h.
///
/// **How a CompiledUnit becomes shareable.** A CompiledUnit points into
/// the arenas of the Compiler that built it, and Compiler::compile()
/// mutates those arenas, so a unit is only safe to share once its owner
/// stops compiling. The cache makes that true by construction: every
/// entry carries its own dedicated Compiler that performs exactly one
/// compile and is then frozen inside an immutable, refcounted
/// CachedCompile. After that, only const operations touch the pair —
/// Compiler::run(), printProgram() and schemeOf() are const and build
/// all mutable state (region heap, evaluator stacks) per call — so any
/// number of worker threads can run the same cached unit concurrently.
/// (The alternative — serialising the static results out of the arenas —
/// would copy every scheme and annotation per request; freezing the
/// owner shares them at zero marginal cost.)
///
/// Failed compilations are cached too (Unit == null + rendered
/// diagnostics): repeated ill-typed submissions are common in a serving
/// setting and re-diagnosing them is pure waste.
///
//===----------------------------------------------------------------------===//

#ifndef RML_SERVICE_CACHE_H
#define RML_SERVICE_CACHE_H

#include "service/Hash.h"

#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace rml::service {

/// One immutable compilation: the frozen owner Compiler, the unit it
/// produced (null if compilation failed), and the products that are
/// cheaper to render once than per request.
struct CachedCompile {
  /// The dedicated Compiler whose arenas own Unit. Never compiled on
  /// again; only its const surface is used after construction.
  std::unique_ptr<Compiler> Owner;
  /// Null when compilation failed (then Diagnostics says why).
  std::unique_ptr<CompiledUnit> Unit;
  /// Rendered diagnostics (errors and warnings) of the compile.
  std::string Diagnostics;
  /// printProgram() output, rendered once at compile time.
  std::string Printed;
  /// The static phase profiles of the one compile that built this
  /// entry (Compiler::lastPhaseProfiles(); partial when it failed).
  /// Cache hits report these names as skipped/zero — the work was
  /// reused, not redone.
  std::vector<PhaseProfile> Profiles;
  /// Eviction weight: the arena nodes the frozen Owner holds
  /// (Compiler::arenaFootprint().total(), at least 1). The cache bounds
  /// the sum of these, not the entry count, so one huge program cannot
  /// pin it.
  size_t Cost = 1;

  bool ok() const { return Unit != nullptr; }

  /// Read-only run of the cached unit (unit must be non-null). Safe
  /// concurrently from many threads.
  rt::RunResult run(rt::EvalOptions EvalOpts = {}) const {
    return Owner->run(*Unit, EvalOpts);
  }

  /// Scheme rendering on the frozen interner (const; "" if unknown).
  std::string schemeOf(std::string_view Name) const {
    return Unit ? Owner->schemeOf(*Unit, Name) : std::string();
  }
};

/// Shared, immutable handle to a compilation. Entries stay alive while
/// any request still holds the handle, even after cache eviction.
using CachedCompileRef = std::shared_ptr<const CachedCompile>;

/// Compiles \p Source on a fresh, dedicated Compiler and freezes the
/// result into a shareable CachedCompile. An optional \p Governor is
/// consulted at every phase boundary (per-phase budgets); it is
/// detached from the Compiler before this returns, so the frozen entry
/// never outlives a stack-local governor. A governed cut-off looks like
/// a failed compile here (null Unit, partial Profiles) — callers that
/// care ask the frozen Owner's wasCutOff().
CachedCompileRef compileShared(std::string_view Source,
                               const CompileOptions &Opts,
                               PhaseGovernor *Governor = nullptr);

/// Thread-safe LRU cache: unordered_map from CacheKey to a node of the
/// recency list; front of the list is most recently used. Capacity 0
/// disables caching (every lookup misses, insert is a no-op).
///
/// Eviction is cost-aware: besides the entry-count capacity, an
/// optional CostCapacity bounds the summed CachedCompile::Cost (arena
/// footprint) of the resident entries, evicting from the LRU end until
/// the bound holds again. The most recently inserted entry always
/// stays, even when it alone exceeds the bound — a cache that rejects
/// its newest entry would re-compile it on every request.
class CompileCache {
public:
  struct Counters {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Insertions = 0;
    uint64_t Evictions = 0;
  };

  explicit CompileCache(size_t Capacity, size_t CostCapacity = 0)
      : Cap(Capacity), CostCap(CostCapacity) {}

  /// Returns the cached compilation and refreshes its recency, or null.
  /// Counts a hit or a miss.
  CachedCompileRef lookup(const CacheKey &K);

  /// Inserts (or refreshes) \p K, evicting the least recently used entry
  /// beyond capacity. Two workers racing to insert the same key is
  /// benign: the second insert wins the map slot, and the first result
  /// stays valid for whoever already holds its shared_ptr.
  void insert(const CacheKey &K, CachedCompileRef V);

  Counters counters() const;
  size_t size() const;
  size_t capacity() const { return Cap; }
  size_t costCapacity() const { return CostCap; }
  /// Summed Cost of the resident entries.
  size_t totalCost() const;

  /// Keys from most to least recently used (testing / introspection).
  std::vector<uint64_t> recencyHashes() const;

private:
  using Node = std::pair<CacheKey, CachedCompileRef>;

  mutable std::mutex M;
  size_t Cap;
  size_t CostCap;       // 0 = unbounded cost
  size_t TotalCost = 0; // summed Cost of resident entries
  std::list<Node> Lru;  // front = most recent
  std::unordered_map<CacheKey, std::list<Node>::iterator, CacheKeyHash> Map;
  Counters C;
};

} // namespace rml::service

#endif // RML_SERVICE_CACHE_H
