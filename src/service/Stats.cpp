//===- service/Stats.cpp --------------------------------------------------===//

#include "service/Stats.h"

#include "support/Trace.h"

#include <sstream>

using namespace rml;
using namespace rml::service;

std::string ServiceStats::json() const {
  std::ostringstream Out;
  Out << "{\"submitted\":" << Submitted << ",\"rejected\":" << Rejected
      << ",\"shutdown_rejected\":" << ShutdownRejected
      << ",\"completed\":" << Completed
      << ",\"compile_errors\":" << CompileErrors
      << ",\"budget_exceeded\":" << BudgetExceeded
      << ",\"budget_auto_derived\":" << BudgetAutoDerived
      << ",\"internal_errors\":" << InternalErrors
      << ",\"runs_ok\":" << RunsOk << ",\"runs_failed\":" << RunsFailed
      << ",\"cache_hits\":" << CacheHits << ",\"cache_misses\":" << CacheMisses
      << ",\"cache_evictions\":" << CacheEvictions
      << ",\"disk_hits\":" << DiskHits << ",\"disk_misses\":" << DiskMisses
      << ",\"disk_write_errors\":" << DiskWriteErrors
      << ",\"disk_load_rejects\":" << DiskLoadRejects
      << ",\"disk_hydrations\":" << DiskHydrations
      << ",\"queue_depth\":" << QueueDepth
      << ",\"queue_high_water\":" << QueueHighWater
      << ",\"in_flight\":" << InFlight
      << ",\"workers\":" << Workers
      << ",\"sched\":\"" << jsonEscaped(Policy) << "\""
      << ",\"gc_count\":" << TotalGcCount
      << ",\"alloc_words\":" << TotalAllocWords
      << ",\"copied_words\":" << TotalCopiedWords
      << ",\"pool_hits\":" << PoolAcquireHits
      << ",\"pool_misses\":" << PoolAcquireMisses
      << ",\"pool_releases\":" << PoolReleases
      << ",\"pool_trims\":" << PoolTrims
      << ",\"pool_prewarmed\":" << PoolPrewarmed
      << ",\"pool_free_pages\":" << PoolFreePages
      << ",\"pool_capacity\":" << PoolCapacity
      << ",\"pool_reuse\":" << jsonFixed(poolReuseRatio())
      << ",\"cost_model\":{\"entries\":" << CostModelEntries
      << ",\"hits\":" << CostModelHits
      << ",\"prior_uses\":" << CostModelPriorUses
      << ",\"prior_per_byte\":" << jsonFixed(CostModelPriorPerByte) << "}"
      << ",\"phases\":{";
  for (size_t I = 0; I < Phases.size(); ++I) {
    if (I)
      Out << ",";
    Out << "\"" << jsonEscaped(Phases[I].Name)
        << "\":{\"sum_nanos\":" << Phases[I].SumNanos
        << ",\"max_nanos\":" << Phases[I].MaxNanos
        << ",\"count\":" << Phases[I].Count << "}";
  }
  Out << "},\"busy_nanos\":" << BusyNanos << ",\"uptime_nanos\":" << UptimeNanos
      << ",\"uptime_seconds\":" << UptimeNanos / 1000000000
      << ",\"utilization\":" << jsonFixed(utilization()) << "}";
  return Out.str();
}
