//===- service/Stats.cpp --------------------------------------------------===//

#include "service/Stats.h"

#include "support/Trace.h"

#include <sstream>

using namespace rml;
using namespace rml::service;

uint64_t ServiceStats::gcPausePercentileNanos(double P) const {
  if (GcPauseCount == 0)
    return 0;
  uint64_t Target = static_cast<uint64_t>(P * static_cast<double>(GcPauseCount));
  if (Target >= GcPauseCount)
    Target = GcPauseCount - 1;
  uint64_t Cum = 0;
  for (size_t I = 0; I < GcPauseBuckets; ++I) {
    Cum += GcPauseHist[I];
    if (Cum > Target) {
      uint64_t Bound = I + 1 >= 64 ? UINT64_MAX : (uint64_t(1) << (I + 1));
      return GcPauseMaxNanos && Bound > GcPauseMaxNanos ? GcPauseMaxNanos
                                                        : Bound;
    }
  }
  return GcPauseMaxNanos;
}

std::string ServiceStats::json() const {
  std::ostringstream Out;
  Out << "{\"submitted\":" << Submitted << ",\"rejected\":" << Rejected
      << ",\"shutdown_rejected\":" << ShutdownRejected
      << ",\"completed\":" << Completed
      << ",\"compile_errors\":" << CompileErrors
      << ",\"budget_exceeded\":" << BudgetExceeded
      << ",\"budget_auto_derived\":" << BudgetAutoDerived
      << ",\"internal_errors\":" << InternalErrors
      << ",\"runs_ok\":" << RunsOk << ",\"runs_failed\":" << RunsFailed
      << ",\"cache_hits\":" << CacheHits << ",\"cache_misses\":" << CacheMisses
      << ",\"cache_evictions\":" << CacheEvictions
      << ",\"disk_hits\":" << DiskHits << ",\"disk_misses\":" << DiskMisses
      << ",\"disk_write_errors\":" << DiskWriteErrors
      << ",\"disk_load_rejects\":" << DiskLoadRejects
      << ",\"disk_hydrations\":" << DiskHydrations
      << ",\"swept_files\":" << SweptFiles
      << ",\"swept_bytes\":" << SweptBytes
      << ",\"sweep_errors\":" << SweepErrors
      << ",\"queue_depth\":" << QueueDepth
      << ",\"queue_high_water\":" << QueueHighWater
      << ",\"in_flight\":" << InFlight
      << ",\"workers\":" << Workers
      << ",\"sched\":\"" << jsonEscaped(Policy) << "\""
      << ",\"gc_count\":" << TotalGcCount
      << ",\"alloc_words\":" << TotalAllocWords
      << ",\"copied_words\":" << TotalCopiedWords
      << ",\"pool_hits\":" << PoolAcquireHits
      << ",\"pool_misses\":" << PoolAcquireMisses
      << ",\"pool_releases\":" << PoolReleases
      << ",\"pool_trims\":" << PoolTrims
      << ",\"pool_prewarmed\":" << PoolPrewarmed
      << ",\"pool_steals\":" << PoolSteals
      << ",\"pool_batch_acquires\":" << PoolBatchAcquires
      << ",\"pool_batch_releases\":" << PoolBatchReleases
      << ",\"pool_lock_acquires\":" << PoolLockAcquires
      << ",\"pool_free_pages\":" << PoolFreePages
      << ",\"pool_capacity\":" << PoolCapacity
      << ",\"pool_reuse\":" << jsonFixed(poolReuseRatio())
      << ",\"gc_policy\":{\"adaptive_runs\":" << GcAdaptiveRuns
      << ",\"threshold_raises\":" << GcThresholdRaises
      << ",\"threshold_drops\":" << GcThresholdDrops
      << ",\"budget_backoffs\":" << GcBudgetBackoffs
      << ",\"over_budget_pauses\":" << GcOverBudgetPauses
      << ",\"minors_per_major_raises\":" << GcMinorsPerMajorRaises
      << ",\"minors_per_major_drops\":" << GcMinorsPerMajorDrops
      << ",\"pause_count\":" << GcPauseCount
      << ",\"pause_p50_ns\":" << gcPausePercentileNanos(0.50)
      << ",\"pause_p99_ns\":" << gcPausePercentileNanos(0.99)
      << ",\"pause_max_ns\":" << GcPauseMaxNanos << "}"
      << ",\"cost_model\":{\"entries\":" << CostModelEntries
      << ",\"hits\":" << CostModelHits
      << ",\"prior_uses\":" << CostModelPriorUses
      << ",\"prior_per_byte\":" << jsonFixed(CostModelPriorPerByte) << "}"
      << ",\"phases\":{";
  for (size_t I = 0; I < Phases.size(); ++I) {
    if (I)
      Out << ",";
    Out << "\"" << jsonEscaped(Phases[I].Name)
        << "\":{\"sum_nanos\":" << Phases[I].SumNanos
        << ",\"max_nanos\":" << Phases[I].MaxNanos
        << ",\"count\":" << Phases[I].Count << "}";
  }
  Out << "},\"tenants\":{";
  {
    bool First = true;
    for (const auto &[Name, T] : Tenants) {
      if (!First)
        Out << ",";
      First = false;
      Out << "\"" << jsonEscaped(Name) << "\":{\"admitted\":" << T.Admitted
          << ",\"completed\":" << T.Completed << ",\"shed\":" << T.Shed << "}";
    }
  }
  Out << "},\"busy_nanos\":" << BusyNanos << ",\"uptime_nanos\":" << UptimeNanos
      << ",\"uptime_seconds\":" << UptimeNanos / 1000000000
      << ",\"utilization\":" << jsonFixed(utilization()) << "}";
  return Out.str();
}
