//===- service/DiskCache.cpp ----------------------------------------------===//

#include "service/DiskCache.h"

#include "service/Cache.h"

#include "flat/Flat.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

using namespace rml;
using namespace rml::service;

namespace fs = std::filesystem;

constexpr char DiskCache::Magic[8];

namespace {

//===----------------------------------------------------------------------===//
// Serialisation primitives: explicit little-endian fixed widths, so an
// entry written on any platform parses on any other (and format drift
// is caught by the version field, not by silent misreads).
//===----------------------------------------------------------------------===//

void putU32(std::string &Out, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void putU64(std::string &Out, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void putStr(std::string &Out, std::string_view S) {
  putU64(Out, S.size());
  Out.append(S.data(), S.size());
}

/// Bounds-checked reader over a loaded entry. Every get sets Ok = false
/// on underrun and returns a zero value; the caller checks Ok once at
/// the end (plus "cursor consumed everything"), so any truncation or
/// corruption anywhere in the file degrades to one rejection.
struct Reader {
  std::string_view Buf;
  size_t Pos = 0;
  bool Ok = true;

  bool take(size_t N) {
    if (!Ok || Buf.size() - Pos < N) {
      Ok = false;
      return false;
    }
    return true;
  }
  uint32_t u32() {
    if (!take(4))
      return 0;
    uint32_t V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(static_cast<unsigned char>(Buf[Pos++]))
           << (8 * I);
    return V;
  }
  uint64_t u64() {
    if (!take(8))
      return 0;
    uint64_t V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(static_cast<unsigned char>(Buf[Pos++]))
           << (8 * I);
    return V;
  }
  uint8_t u8() {
    if (!take(1))
      return 0;
    return static_cast<unsigned char>(Buf[Pos++]);
  }
  std::string str() {
    uint64_t N = u64();
    if (!take(N))
      return std::string();
    std::string S(Buf.substr(Pos, N));
    Pos += N;
    return S;
  }
  bool done() const { return Ok && Pos == Buf.size(); }
};

} // namespace

DiskCache::DiskCache(std::string DirIn) : Dir(std::move(DirIn)) {
  // Best effort: a directory that cannot exist fails every store (each
  // counted), and every load misses — the service still serves.
  std::error_code Ec;
  fs::create_directories(Dir, Ec);
}

std::string DiskCache::entryFileName(uint64_t Hash) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%016llx.rmlc",
                static_cast<unsigned long long>(Hash));
  return Buf;
}

void DiskCache::store(const CacheKey &K, const CachedCompile &V) const {
  if (V.FromDisk)
    return; // round-tripping a loaded entry would rewrite its own bytes
  fs::path Final = fs::path(Dir) / entryFileName(K.Hash);
  std::error_code Ec;
  if (fs::exists(Final, Ec))
    return; // determinism: the resident bytes are already this entry

  std::string Buf;
  Buf.append(Magic, sizeof(Magic));
  putU32(Buf, FormatVersion);
  Buf.push_back(static_cast<char>(K.Strat));
  Buf.push_back(static_cast<char>(K.Spurious));
  Buf.push_back(K.Check ? 1 : 0);
  Buf.push_back(V.Ok ? 1 : 0);
  putU64(Buf, K.Hash);
  putStr(Buf, K.Source);
  putStr(Buf, V.Diagnostics);
  putStr(Buf, V.Printed);
  putU64(Buf, V.Schemes.size());
  for (const auto &[Name, Scheme] : V.Schemes) {
    putStr(Buf, Name);
    putStr(Buf, Scheme);
  }
  putU64(Buf, V.Profiles.size());
  for (const PhaseProfile &P : V.Profiles)
    putStr(Buf, P.Name);
  putU64(Buf, V.Cost);
  // The runnable payload: the flat unit's own self-checking encoding
  // (magic, version, checksum) nested as one counted string. Successful
  // compiles always carry one; failed compiles persist presence 0.
  if (V.Flat) {
    Buf.push_back(1);
    putStr(Buf, flat::encodeFlat(*V.Flat));
  } else {
    Buf.push_back(0);
  }

  // Atomic publish: a private temp file in the same directory, then
  // rename over the final name. Readers (and racing writers, in this
  // process or another) see a complete entry or none.
  fs::path Tmp = fs::path(Dir) /
                 ("." + entryFileName(K.Hash) + ".tmp." +
                  std::to_string(TmpCounter.fetch_add(1)) + "." +
                  std::to_string(reinterpret_cast<uintptr_t>(this) & 0xffff));
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out || !Out.write(Buf.data(), static_cast<std::streamsize>(Buf.size()))) {
      ++WriteErrors;
      fs::remove(Tmp, Ec);
      return;
    }
  }
  fs::rename(Tmp, Final, Ec);
  if (Ec) {
    ++WriteErrors;
    fs::remove(Tmp, Ec);
  }
}

CachedCompileRef DiskCache::load(const CacheKey &K) const {
  fs::path Path = fs::path(Dir) / entryFileName(K.Hash);
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    ++Misses;
    return nullptr;
  }
  std::string Buf((std::istreambuf_iterator<char>(In)),
                  std::istreambuf_iterator<char>());
  In.close();

  Reader R{Buf};
  char FileMagic[sizeof(Magic)];
  bool MagicOk = R.take(sizeof(Magic));
  if (MagicOk) {
    std::memcpy(FileMagic, Buf.data() + R.Pos, sizeof(Magic));
    R.Pos += sizeof(Magic);
    MagicOk = std::memcmp(FileMagic, Magic, sizeof(Magic)) == 0;
  }
  uint32_t Version = R.u32();
  uint8_t Strat = R.u8(), Spurious = R.u8(), Check = R.u8(), Ok = R.u8();
  uint64_t Hash = R.u64();
  std::string Source = R.str();
  auto CC = std::make_shared<CachedCompile>();
  CC->FromDisk = true;
  CC->Ok = Ok != 0;
  CC->Diagnostics = R.str();
  CC->Printed = R.str();
  uint64_t NumSchemes = R.u64();
  for (uint64_t I = 0; R.Ok && I < NumSchemes; ++I) {
    std::string Name = R.str();
    std::string Scheme = R.str();
    CC->Schemes.emplace_back(std::move(Name), std::move(Scheme));
  }
  uint64_t NumPhases = R.u64();
  for (uint64_t I = 0; R.Ok && I < NumPhases; ++I) {
    PhaseProfile P;
    P.Name = R.str();
    // The static work happened in some earlier process; this entry
    // reports the phase shape as reused, exactly like a memory hit.
    P.Skipped = true;
    CC->Profiles.push_back(std::move(P));
  }
  CC->Cost = std::max<uint64_t>(1, R.u64());
  uint8_t HasFlat = R.u8();
  std::string FlatBytes = HasFlat == 1 ? R.str() : std::string();

  // Fail closed: structural damage (truncation, trailing bytes, bad
  // magic/version) and key mismatches — including a genuine FNV-1a
  // collision, where the hash matches but the embedded source or
  // option bytes differ — all reject to a miss. Never a wrong answer.
  if (!R.done() || !MagicOk || Version != FormatVersion ||
      HasFlat > 1 || Hash != K.Hash || Source != K.Source ||
      Strat != static_cast<uint8_t>(K.Strat) ||
      Spurious != static_cast<uint8_t>(K.Spurious) ||
      Check != (K.Check ? 1 : 0)) {
    ++LoadRejects;
    return nullptr;
  }
  if (HasFlat == 1) {
    // The flat payload carries its own magic/version/checksum and an
    // exhaustive index validation; any damage decodes to null and
    // rejects the whole entry — a "hit" whose run would recompile (or
    // worse, misbehave) is not a hit.
    CC->Flat = flat::decodeFlat(FlatBytes);
    if (!CC->Flat) {
      ++LoadRejects;
      return nullptr;
    }
  }
  ++Hits;
  return CC;
}

DiskCache::Counters DiskCache::counters() const {
  Counters C;
  C.Hits = Hits.load(std::memory_order_relaxed);
  C.Misses = Misses.load(std::memory_order_relaxed);
  C.WriteErrors = WriteErrors.load(std::memory_order_relaxed);
  C.LoadRejects = LoadRejects.load(std::memory_order_relaxed);
  return C;
}
