//===- service/DiskCache.cpp ----------------------------------------------===//

#include "service/DiskCache.h"

#include "service/Cache.h"

#include "flat/Flat.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

using namespace rml;
using namespace rml::service;

namespace fs = std::filesystem;

constexpr char DiskCache::Magic[8];

namespace {

//===----------------------------------------------------------------------===//
// Serialisation primitives: explicit little-endian fixed widths, so an
// entry written on any platform parses on any other (and format drift
// is caught by the version field, not by silent misreads).
//===----------------------------------------------------------------------===//

void putU32(std::string &Out, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void putU64(std::string &Out, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void putStr(std::string &Out, std::string_view S) {
  putU64(Out, S.size());
  Out.append(S.data(), S.size());
}

/// Bounds-checked reader over a loaded entry. Every get sets Ok = false
/// on underrun and returns a zero value; the caller checks Ok once at
/// the end (plus "cursor consumed everything"), so any truncation or
/// corruption anywhere in the file degrades to one rejection.
struct Reader {
  std::string_view Buf;
  size_t Pos = 0;
  bool Ok = true;

  bool take(size_t N) {
    if (!Ok || Buf.size() - Pos < N) {
      Ok = false;
      return false;
    }
    return true;
  }
  uint32_t u32() {
    if (!take(4))
      return 0;
    uint32_t V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(static_cast<unsigned char>(Buf[Pos++]))
           << (8 * I);
    return V;
  }
  uint64_t u64() {
    if (!take(8))
      return 0;
    uint64_t V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(static_cast<unsigned char>(Buf[Pos++]))
           << (8 * I);
    return V;
  }
  uint8_t u8() {
    if (!take(1))
      return 0;
    return static_cast<unsigned char>(Buf[Pos++]);
  }
  std::string str() {
    uint64_t N = u64();
    if (!take(N))
      return std::string();
    std::string S(Buf.substr(Pos, N));
    Pos += N;
    return S;
  }
  bool done() const { return Ok && Pos == Buf.size(); }
};

} // namespace

DiskCache::DiskCache(std::string DirIn) : Dir(std::move(DirIn)) {
  // Best effort: a directory that cannot exist fails every store (each
  // counted), and every load misses — the service still serves.
  std::error_code Ec;
  fs::create_directories(Dir, Ec);
}

DiskCache::~DiskCache() { stopSweeper(); }

std::string DiskCache::entryFileName(uint64_t Hash) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%016llx.rmlc",
                static_cast<unsigned long long>(Hash));
  return Buf;
}

void DiskCache::store(const CacheKey &K, const CachedCompile &V) const {
  if (V.FromDisk)
    return; // round-tripping a loaded entry would rewrite its own bytes
  fs::path Final = fs::path(Dir) / entryFileName(K.Hash);
  std::error_code Ec;
  if (fs::exists(Final, Ec))
    return; // determinism: the resident bytes are already this entry

  std::string Buf;
  Buf.append(Magic, sizeof(Magic));
  putU32(Buf, FormatVersion);
  Buf.push_back(static_cast<char>(K.Strat));
  Buf.push_back(static_cast<char>(K.Spurious));
  Buf.push_back(K.Check ? 1 : 0);
  Buf.push_back(K.Captures ? 1 : 0);
  Buf.push_back(V.Ok ? 1 : 0);
  putU64(Buf, K.Hash);
  putStr(Buf, K.Source);
  putStr(Buf, V.Diagnostics);
  putStr(Buf, V.Printed);
  putStr(Buf, V.CaptureReport);
  putU64(Buf, V.Schemes.size());
  for (const auto &[Name, Scheme] : V.Schemes) {
    putStr(Buf, Name);
    putStr(Buf, Scheme);
  }
  putU64(Buf, V.Profiles.size());
  for (const PhaseProfile &P : V.Profiles)
    putStr(Buf, P.Name);
  putU64(Buf, V.Cost);
  // The runnable payload: the flat unit's own self-checking encoding
  // (magic, version, checksum) nested as one counted string. Successful
  // compiles always carry one; failed compiles persist presence 0.
  if (V.Flat) {
    Buf.push_back(1);
    putStr(Buf, flat::encodeFlat(*V.Flat));
  } else {
    Buf.push_back(0);
  }

  // Atomic publish: a private temp file in the same directory, then
  // rename over the final name. Readers (and racing writers, in this
  // process or another) see a complete entry or none.
  fs::path Tmp = fs::path(Dir) /
                 ("." + entryFileName(K.Hash) + ".tmp." +
                  std::to_string(TmpCounter.fetch_add(1)) + "." +
                  std::to_string(reinterpret_cast<uintptr_t>(this) & 0xffff));
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out || !Out.write(Buf.data(), static_cast<std::streamsize>(Buf.size()))) {
      ++WriteErrors;
      fs::remove(Tmp, Ec);
      return;
    }
  }
  fs::rename(Tmp, Final, Ec);
  if (Ec) {
    ++WriteErrors;
    fs::remove(Tmp, Ec);
  }
}

CachedCompileRef DiskCache::load(const CacheKey &K) const {
  fs::path Path = fs::path(Dir) / entryFileName(K.Hash);
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    ++Misses;
    return nullptr;
  }
  std::string Buf((std::istreambuf_iterator<char>(In)),
                  std::istreambuf_iterator<char>());
  In.close();

  Reader R{Buf};
  char FileMagic[sizeof(Magic)];
  bool MagicOk = R.take(sizeof(Magic));
  if (MagicOk) {
    std::memcpy(FileMagic, Buf.data() + R.Pos, sizeof(Magic));
    R.Pos += sizeof(Magic);
    MagicOk = std::memcmp(FileMagic, Magic, sizeof(Magic)) == 0;
  }
  uint32_t Version = R.u32();
  uint8_t Strat = R.u8(), Spurious = R.u8(), Check = R.u8();
  uint8_t Captures = R.u8(), Ok = R.u8();
  uint64_t Hash = R.u64();
  std::string Source = R.str();
  auto CC = std::make_shared<CachedCompile>();
  CC->FromDisk = true;
  CC->Ok = Ok != 0;
  CC->Diagnostics = R.str();
  CC->Printed = R.str();
  CC->CaptureReport = R.str();
  uint64_t NumSchemes = R.u64();
  for (uint64_t I = 0; R.Ok && I < NumSchemes; ++I) {
    std::string Name = R.str();
    std::string Scheme = R.str();
    CC->Schemes.emplace_back(std::move(Name), std::move(Scheme));
  }
  uint64_t NumPhases = R.u64();
  for (uint64_t I = 0; R.Ok && I < NumPhases; ++I) {
    PhaseProfile P;
    P.Name = R.str();
    // The static work happened in some earlier process; this entry
    // reports the phase shape as reused, exactly like a memory hit.
    P.Skipped = true;
    CC->Profiles.push_back(std::move(P));
  }
  CC->Cost = std::max<uint64_t>(1, R.u64());
  uint8_t HasFlat = R.u8();
  std::string FlatBytes = HasFlat == 1 ? R.str() : std::string();

  // Fail closed: structural damage (truncation, trailing bytes, bad
  // magic/version) and key mismatches — including a genuine FNV-1a
  // collision, where the hash matches but the embedded source or
  // option bytes differ — all reject to a miss. Never a wrong answer.
  if (!R.done() || !MagicOk || Version != FormatVersion ||
      HasFlat > 1 || Hash != K.Hash || Source != K.Source ||
      Strat != static_cast<uint8_t>(K.Strat) ||
      Spurious != static_cast<uint8_t>(K.Spurious) ||
      Check != (K.Check ? 1 : 0) || Captures != (K.Captures ? 1 : 0)) {
    ++LoadRejects;
    return nullptr;
  }
  if (HasFlat == 1) {
    // The flat payload carries its own magic/version/checksum and an
    // exhaustive index validation; any damage decodes to null and
    // rejects the whole entry — a "hit" whose run would recompile (or
    // worse, misbehave) is not a hit.
    CC->Flat = flat::decodeFlat(FlatBytes);
    if (!CC->Flat) {
      ++LoadRejects;
      return nullptr;
    }
  }
  ++Hits;
  return CC;
}

DiskCache::Counters DiskCache::counters() const {
  Counters C;
  C.Hits = Hits.load(std::memory_order_relaxed);
  C.Misses = Misses.load(std::memory_order_relaxed);
  C.WriteErrors = WriteErrors.load(std::memory_order_relaxed);
  C.LoadRejects = LoadRejects.load(std::memory_order_relaxed);
  C.SweptFiles = SweptFiles.load(std::memory_order_relaxed);
  C.SweptBytes = SweptBytes.load(std::memory_order_relaxed);
  C.SweepErrors = SweepErrors.load(std::memory_order_relaxed);
  return C;
}

//===----------------------------------------------------------------------===//
// Sweeper
//===----------------------------------------------------------------------===//

namespace {

/// Only published entry files ("<16 hex>.rmlc") are sweepable. Temp
/// files (dot-prefixed, mid-publication) and anything foreign the
/// operator parked in the directory are left alone.
bool isEntryFileName(const std::string &Name) {
  constexpr std::string_view Suffix = ".rmlc";
  if (Name.size() != 16 + Suffix.size())
    return false;
  if (std::string_view(Name).substr(16) != Suffix)
    return false;
  for (size_t I = 0; I < 16; ++I) {
    char C = Name[I];
    if (!((C >= '0' && C <= '9') || (C >= 'a' && C <= 'f')))
      return false;
  }
  return true;
}

struct SweepCandidate {
  fs::path Path;
  uint64_t Bytes = 0;
  fs::file_time_type Mtime;
};

} // namespace

uint64_t DiskCache::sweepNow(const SweepConfig &Cfg) const {
  if (Cfg.MaxBytes == 0 && Cfg.MaxAgeSeconds == 0)
    return 0; // unbounded: nothing to enforce

  // Snapshot the directory first. Entries published after the scan are
  // simply next sweep's problem; entries removed under us (another
  // sweeper, an operator's rm) just make the removal below a no-op.
  std::vector<SweepCandidate> Entries;
  uint64_t TotalBytes = 0;
  {
    std::error_code Ec;
    fs::directory_iterator It(Dir, Ec), End;
    if (Ec) {
      ++SweepErrors;
      return 0;
    }
    for (; It != End; It.increment(Ec)) {
      if (Ec) {
        ++SweepErrors;
        return 0;
      }
      std::error_code FileEc;
      if (!It->is_regular_file(FileEc) || FileEc)
        continue;
      std::string Name = It->path().filename().string();
      if (!isEntryFileName(Name))
        continue; // dot-prefixed temp files and foreign files stay
      SweepCandidate C;
      C.Path = It->path();
      auto Sz = fs::file_size(C.Path, FileEc);
      if (FileEc)
        continue; // unlinked between iteration and stat: already gone
      C.Bytes = Sz;
      C.Mtime = fs::last_write_time(C.Path, FileEc);
      if (FileEc)
        continue;
      TotalBytes += C.Bytes;
      Entries.push_back(std::move(C));
    }
  }

  uint64_t Evicted = 0;
  auto evict = [&](const SweepCandidate &C) {
    std::error_code Ec;
    if (fs::remove(C.Path, Ec) && !Ec) {
      ++SweptFiles;
      SweptBytes.fetch_add(C.Bytes, std::memory_order_relaxed);
      TotalBytes -= std::min(TotalBytes, C.Bytes);
      ++Evicted;
    } else if (Ec) {
      ++SweepErrors;
    } else {
      // remove() returned false without error: the file vanished under
      // us (a racing sweeper won). Not an error, but the bytes are
      // gone from the directory either way.
      TotalBytes -= std::min(TotalBytes, C.Bytes);
    }
  };

  // Age pass: anything older than the cut-off goes, independent of the
  // byte total.
  if (Cfg.MaxAgeSeconds) {
    auto CutOff = fs::file_time_type::clock::now() -
                  std::chrono::seconds(Cfg.MaxAgeSeconds);
    std::vector<SweepCandidate> Kept;
    Kept.reserve(Entries.size());
    for (SweepCandidate &C : Entries) {
      if (C.Mtime < CutOff)
        evict(C);
      else
        Kept.push_back(std::move(C));
    }
    Entries = std::move(Kept);
  }

  // Size pass: oldest mtime first until the watermark holds. Mtime is
  // the only recency signal every process sharing the directory
  // updates, which makes this LRU-by-publication — good enough, since
  // a wrongly evicted entry costs one recompile, never a wrong answer.
  if (Cfg.MaxBytes && TotalBytes > Cfg.MaxBytes) {
    std::sort(Entries.begin(), Entries.end(),
              [](const SweepCandidate &A, const SweepCandidate &B) {
                return A.Mtime < B.Mtime;
              });
    for (const SweepCandidate &C : Entries) {
      if (TotalBytes <= Cfg.MaxBytes)
        break;
      evict(C);
    }
  }
  return Evicted;
}

void DiskCache::startSweeper(const SweepConfig &Cfg) {
  if (Sweeper.joinable())
    return; // already running
  if (Cfg.MaxBytes == 0 && Cfg.MaxAgeSeconds == 0)
    return; // nothing to enforce, no thread to pay for
  {
    std::lock_guard<std::mutex> Lock(SweepM);
    SweepStop = false;
  }
  Sweeper = std::thread([this, Cfg] { sweeperMain(Cfg); });
}

void DiskCache::stopSweeper() {
  if (!Sweeper.joinable())
    return;
  {
    std::lock_guard<std::mutex> Lock(SweepM);
    SweepStop = true;
  }
  SweepCv.notify_all();
  Sweeper.join();
}

void DiskCache::sweeperMain(SweepConfig Cfg) {
  const auto Interval =
      std::chrono::milliseconds(std::max<uint64_t>(1, Cfg.IntervalMillis));
  // Sweep immediately: a process started against an over-watermark
  // directory (say, after lowering --cache-max-bytes) should bound it
  // now, not one interval from now.
  sweepNow(Cfg);
  for (;;) {
    std::unique_lock<std::mutex> Lock(SweepM);
    if (SweepCv.wait_for(Lock, Interval, [this] { return SweepStop; }))
      return;
    Lock.unlock();
    sweepNow(Cfg);
  }
}
