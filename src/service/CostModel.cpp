//===- service/CostModel.cpp ----------------------------------------------===//

#include "service/CostModel.h"

#include "core/Pipeline.h"

#include <algorithm>
#include <cmath>

using namespace rml;
using namespace rml::service;

namespace {

/// Clamps a non-negative double into the >= 1 nano contract.
uint64_t toNanos(double V) {
  if (!(V >= 1.0))
    return 1;
  return static_cast<uint64_t>(V);
}

uint64_t executedNanos(const std::vector<PhaseProfile> &Profiles) {
  uint64_t Total = 0;
  for (const PhaseProfile &P : Profiles)
    if (!P.Skipped)
      Total += P.WallNanos;
  return Total;
}

} // namespace

CostModel::Prediction CostModel::predict(uint64_t Hash,
                                         size_t SourceBytes) const {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Entries.find(Hash);
  if (It != Entries.end()) {
    ++Hits;
    return {toNanos(It->second.TotalNanos), /*FromPrior=*/false};
  }
  ++PriorUses;
  double Bytes = static_cast<double>(std::max<size_t>(SourceBytes, 1));
  if (PriorCount)
    return {toNanos(PriorPerByte * Bytes), /*FromPrior=*/true};
  // Bootstrap: no observation yet, so the byte count itself is the
  // estimate — wrong units, right order (see the file comment).
  return {toNanos(Bytes), /*FromPrior=*/true};
}

void CostModel::observe(uint64_t Hash, size_t SourceBytes,
                        const std::vector<PhaseProfile> &Profiles,
                        bool UpdatePrior) {
  uint64_t Total = executedNanos(Profiles);
  std::lock_guard<std::mutex> Lock(M);
  Entry &E = Entries[Hash];
  E.TotalNanos = E.Count ? Alpha * static_cast<double>(Total) +
                               (1.0 - Alpha) * E.TotalNanos
                         : static_cast<double>(Total);
  ++E.Count;
  if (UpdatePrior && SourceBytes) {
    double PerByte =
        static_cast<double>(Total) / static_cast<double>(SourceBytes);
    PriorPerByte =
        PriorCount ? Alpha * PerByte + (1.0 - Alpha) * PriorPerByte : PerByte;
    ++PriorCount;
  }
}

void CostModel::observePhase(const PhaseProfile &P) {
  std::lock_guard<std::mutex> Lock(M);
  PhaseRing &R = Rings[P.Name];
  if (R.Samples.size() < RingCapacity) {
    R.Samples.push_back(P.WallNanos);
  } else {
    R.Samples[R.Next] = P.WallNanos;
    R.Next = (R.Next + 1) % RingCapacity;
  }
}

std::map<std::string, uint64_t>
CostModel::deriveBudgets(double Quantile, double Multiplier,
                         size_t MinSamples) const {
  std::map<std::string, uint64_t> Out;
  double Q = std::clamp(Quantile, 0.0, 1.0);
  std::lock_guard<std::mutex> Lock(M);
  for (const auto &[Name, Ring] : Rings) {
    if (Name == Compiler::RunPhaseName)
      continue; // the runtime phase is not budgeted
    if (Ring.Samples.size() < std::max<size_t>(MinSamples, 1))
      continue;
    std::vector<uint64_t> S = Ring.Samples;
    size_t Idx = static_cast<size_t>(
        std::llround(Q * static_cast<double>(S.size() - 1)));
    std::nth_element(S.begin(), S.begin() + Idx, S.end());
    Out[Name] = toNanos(static_cast<double>(S[Idx]) * Multiplier);
  }
  return Out;
}

CostModel::Snapshot CostModel::snapshot() const {
  std::lock_guard<std::mutex> Lock(M);
  Snapshot S;
  S.Entries = Entries.size();
  S.Hits = Hits;
  S.PriorUses = PriorUses;
  S.PriorPerByte = PriorCount ? PriorPerByte : 0.0;
  return S;
}
