//===- rinfer/DropRegions.h - Dropping pure get-regions ---------*- C++ -*-===//
//
// Part of RegionML, a reproduction of "Garbage-Collection Safety for
// Region-Based Type-Polymorphic Programs" (Elsman, PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// "Dropping of quantified parameter regions that are not stored into by a
/// function" (Section 4.2): a quantified region is *droppable* when the
/// function never allocates into it and never forwards it as an
/// instantiation target to another function (conservative). Droppable
/// formals need no runtime region argument — values in them are only read,
/// and reading needs no region descriptor.
///
//===----------------------------------------------------------------------===//

#ifndef RML_RINFER_DROPREGIONS_H
#define RML_RINFER_DROPREGIONS_H

#include "region/RExpr.h"

#include <set>
#include <unordered_map>

namespace rml {

struct DropInfo {
  /// Per fun-binding: the quantified regions that need no runtime
  /// argument.
  std::unordered_map<const RExpr *, std::set<uint32_t>> Dropped;
  unsigned TotalFormals = 0;
  unsigned DroppedFormals = 0;

  bool isDropped(const RExpr *Fun, RegionVar R) const {
    auto It = Dropped.find(Fun);
    return It != Dropped.end() && It->second.count(R.Id);
  }
};

DropInfo analyzeDropRegions(const RProgram &P);

} // namespace rml

#endif // RML_RINFER_DROPREGIONS_H
