//===- rinfer/Strategy.h - Compilation strategies ---------------*- C++ -*-===//
//
// Part of RegionML, a reproduction of "Garbage-Collection Safety for
// Region-Based Type-Polymorphic Programs" (Elsman, PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three compilation strategies benchmarked in Section 5, plus the
/// spurious-scheme ablation knob of Section 2 (type scheme (2) vs (3)).
///
//===----------------------------------------------------------------------===//

#ifndef RML_RINFER_STRATEGY_H
#define RML_RINFER_STRATEGY_H

#include <cstdint>

namespace rml {

/// How region inference treats GC safety.
enum class Strategy : uint8_t {
  /// The paper's contribution: GC-safe region inference with spurious
  /// type variables carrying arrow effects; reference-tracing GC enabled.
  Rg,
  /// The pre-paper (unsound) system: captured variables' regions are kept
  /// alive, but spurious type variables are ignored, so polymorphic
  /// instantiations can hide dangling pointers from the GC. GC enabled.
  RgMinus,
  /// Pure Tofte-Talpin region inference: dangling pointers permitted
  /// (functions do not keep captured regions alive beyond their uses);
  /// GC disabled.
  R,
};

/// How a spurious type variable's arrow effect is chosen (Section 2).
enum class SpuriousMode : uint8_t {
  /// Type scheme (2): a fresh secondary effect variable eps'.{} per
  /// spurious variable, added to the function's latent effect on capture.
  FreshSecondary,
  /// Type scheme (3): identify the spurious variable's effect variable
  /// with the function's latent arrow-effect variable (the MLKit choice;
  /// avoids secondary effect variables at the cost of possibly larger
  /// region live ranges).
  IdentifyWithFun,
};

const char *strategyName(Strategy S);

} // namespace rml

#endif // RML_RINFER_STRATEGY_H
