//===- rinfer/Infer.h - Region inference ------------------------*- C++ -*-===//
//
// Part of RegionML, a reproduction of "Garbage-Collection Safety for
// Region-Based Type-Polymorphic Programs" (Elsman, PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Region inference (Section 4.1): consumes a Hindley-Milner-typed MiniML
/// program and produces a region-annotated program that is well-typed
/// under the GC-safe region type system of Section 3 (validated by
/// src/rcheck).
///
/// The algorithm is the classic unification-based scheme:
///
///  * *spreading*: each resolved ML type is decorated with fresh region
///    variables at every boxed constructor and a fresh effect variable at
///    every arrow;
///  * *unification*: term structure forces region/effect variables
///    together (union-find; effect-variable denotations grow
///    monotonically, the property Proposition 3 establishes);
///  * *generalisation*: `fun` declarations quantify the region and effect
///    variables of their type that do not escape into the environment
///    (tracked with Remy-style levels, the implementation of the paper's
///    "cones"), and quantified ML type variables enter the scheme's
///    type-variable context Delta — spurious ones with an arrow effect
///    (strategy rg), per Sections 4.1/4.3;
///  * *letregion insertion*: around let right-hand sides, function bodies
///    and the program, regions in the subexpression's (transitively
///    closed) effect that do not occur in the environment, the result
///    type, or the ambient type-variable context are discharged;
///  * *instantiation*: every use of a polymorphic binding records the full
///    substitution; under rg, substitution coverage adds the free region
///    and effect variables of each type instantiated for a spurious
///    variable to (the instance of) its arrow effect — the paper's fix.
///
/// Deliberate simplification (documented in DESIGN.md): recursive
/// self-calls are region-monomorphic (no region-polymorphic recursion);
/// the fixpoint phase of [41] only sharpens precision and is not needed
/// for soundness.
///
//===----------------------------------------------------------------------===//

#ifndef RML_RINFER_INFER_H
#define RML_RINFER_INFER_H

#include "ast/Ast.h"
#include "region/RExpr.h"
#include "region/RegionType.h"
#include "rinfer/Spurious.h"
#include "rinfer/Strategy.h"
#include "support/Diagnostics.h"
#include "support/Interner.h"
#include "types/TypeCheck.h"

#include <optional>

namespace rml {

/// Options controlling inference.
struct InferOptions {
  Strategy Strat = Strategy::Rg;
  SpuriousMode Spurious = SpuriousMode::FreshSecondary;
};

/// Result of region inference.
struct InferResult {
  RProgram Prog;
  /// The region type (mu) of the whole program.
  const Mu *RootMu = nullptr;
  /// Statistics for Figure 9 and the inference benchmarks.
  unsigned NumRegionVars = 0;
  unsigned NumEffectVars = 0;
  unsigned NumLetRegions = 0;
  unsigned NumSchemes = 0;
};

/// Runs region inference over a typed program. \p RArena owns the emitted
/// region types and \p EArena the emitted terms; both must outlive the
/// result. Returns std::nullopt after reporting through \p Diags.
std::optional<InferResult>
inferRegions(const Program &P, const TypeInfo &Types,
             const SpuriousInfo &Spurious, const InferOptions &Opts,
             RTypeArena &RArena, RExprArena &EArena, Interner &Names,
             DiagnosticEngine &Diags);

} // namespace rml

#endif // RML_RINFER_INFER_H
