//===- rinfer/Spurious.cpp ------------------------------------------------===//

#include "rinfer/Spurious.h"

#include <algorithm>

using namespace rml;

namespace {

/// One enclosing function expression during the walk: the type variables
/// of the function's own type, plus every symbol bound inside it so far.
struct FunFrame {
  std::unordered_set<const Type *> OwnTyVars;
};

class Walker {
public:
  Walker(const TypeInfo &Info, SpuriousInfo &Out) : Info(Info), Out(Out) {}

  void run(const Program &P) {
    for (const Dec *D : P.Decs)
      walkDec(D);
    walk(P.Result);
  }

private:
  static std::unordered_set<const Type *> tyVarsOf(Type *T) {
    std::unordered_set<const Type *> Set;
    if (!T)
      return Set;
    std::vector<Type *> Vars;
    collectAllVars(T, Vars);
    Set.insert(Vars.begin(), Vars.end());
    return Set;
  }

  void bind(Symbol S) { Bindings.emplace_back(S, Frames.size()); }
  void unbind(size_t Mark) { Bindings.resize(Mark); }

  /// Frame index at which \p S was bound (0 = outside every function).
  size_t bindingDepth(Symbol S) const {
    for (size_t I = Bindings.size(); I-- > 0;)
      if (Bindings[I].first == S)
        return Bindings[I].second;
    return 0; // unbound/top-level: free in every frame
  }

  /// Marks the variables of \p UseTy that are hidden from the types of
  /// all function frames strictly enclosing the binding (case (1) of the
  /// analysis).
  void markOccurrence(Symbol S, Type *UseTy) {
    if (!UseTy || Frames.empty())
      return;
    size_t Depth = bindingDepth(S);
    if (Depth >= Frames.size())
      return; // bound within the innermost function
    std::vector<Type *> Vars;
    collectAllVars(UseTy, Vars);
    if (Vars.empty())
      return;
    for (size_t F = Depth; F < Frames.size(); ++F) {
      for (Type *V : Vars) {
        V = resolve(V);
        if (V->K != TypeKind::Var || !V->Rigid)
          continue;
        if (!Frames[F].OwnTyVars.count(V))
          Out.SpuriousVars.insert(V);
      }
    }
  }

  void enterFunction(Type *FnTy, Symbol Name, Symbol Param) {
    Frames.push_back(FunFrame{tyVarsOf(FnTy)});
    if (Name.isValid())
      bind(Name);
    bind(Param);
  }

  void walkDec(const Dec *D) {
    switch (D->K) {
    case Dec::Kind::Val:
      walk(D->Body);
      bind(D->Name);
      return;
    case Dec::Kind::Fun: {
      ++Out.TotalFunctions;
      auto SchemeIt = Info.DecSchemes.find(D);
      Type *FnTy =
          SchemeIt != Info.DecSchemes.end() ? SchemeIt->second.Body : nullptr;
      size_t Mark = Bindings.size();
      enterFunction(FnTy, D->Name, D->Param);
      walk(D->Body);
      unbind(Mark);
      Frames.pop_back();
      bind(D->Name);
      return;
    }
    case Dec::Kind::Exn: {
      // Section 4.4: type variables in exception argument types are
      // spurious and pinned to the global region.
      auto It = Info.ExnArgTypes.find(D);
      if (It != Info.ExnArgTypes.end() && It->second) {
        std::vector<Type *> Vars;
        collectAllVars(It->second, Vars);
        for (Type *V : Vars) {
          V = resolve(V);
          if (V->K == TypeKind::Var && V->Rigid) {
            Out.SpuriousVars.insert(V);
            Out.ExnForcedVars.insert(V);
          }
        }
      }
      return;
    }
    }
  }

  void walk(const Expr *E) {
    if (!E)
      return;
    switch (E->K) {
    case Expr::Kind::Var:
      markOccurrence(E->Name, lookupType(E));
      return;
    case Expr::Kind::Fn: {
      ++Out.TotalFunctions;
      size_t Mark = Bindings.size();
      enterFunction(lookupType(E), Symbol(), E->Name);
      walk(E->A);
      unbind(Mark);
      Frames.pop_back();
      return;
    }
    case Expr::Kind::Let: {
      size_t Mark = Bindings.size();
      for (const Dec *D : E->Decs)
        walkDec(D);
      walk(E->A);
      unbind(Mark);
      return;
    }
    case Expr::Kind::ListCase: {
      walk(E->A);
      walk(E->B);
      size_t Mark = Bindings.size();
      bind(E->HeadName);
      bind(E->TailName);
      walk(E->C);
      unbind(Mark);
      return;
    }
    case Expr::Kind::Handle: {
      walk(E->A);
      size_t Mark = Bindings.size();
      if (E->BindName.isValid())
        bind(E->BindName);
      walk(E->B);
      unbind(Mark);
      return;
    }
    default:
      walk(E->A);
      walk(E->B);
      walk(E->C);
      for (const Expr *Item : E->Items)
        walk(Item);
      return;
    }
  }

  Type *lookupType(const Expr *E) const {
    auto It = Info.ExprTypes.find(E);
    return It == Info.ExprTypes.end() ? nullptr : resolve(It->second);
  }

  const TypeInfo &Info;
  SpuriousInfo &Out;
  std::vector<FunFrame> Frames;
  std::vector<std::pair<Symbol, size_t>> Bindings;
};

bool isBoxedMLType(Type *T) {
  switch (resolve(T)->K) {
  case TypeKind::Arrow:
  case TypeKind::Pair:
  case TypeKind::List:
  case TypeKind::Ref:
  case TypeKind::String:
  case TypeKind::Exn:
    return true;
  default:
    return false;
  }
}

} // namespace

SpuriousInfo rml::analyzeSpurious(const Program &P, const TypeInfo &Info) {
  SpuriousInfo Out;
  Walker W(Info, Out);
  W.run(P);

  // Case (2): close under "occurs in a type instantiated for another
  // spurious variable" (the Figure 8 chain).
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const auto &[Use, Inst] : Info.VarInsts) {
      auto SchemeIt = Info.DecSchemes.find(Inst.Origin);
      if (SchemeIt == Info.DecSchemes.end())
        continue;
      const TypeScheme &S = SchemeIt->second;
      for (size_t I = 0; I < S.Quantified.size() && I < Inst.Args.size();
           ++I) {
        const Type *Q = resolve(S.Quantified[I]);
        if (!Out.SpuriousVars.count(Q))
          continue;
        std::vector<Type *> Vars;
        collectAllVars(Inst.Args[I], Vars);
        for (Type *V : Vars) {
          V = resolve(V);
          if (V->K != TypeKind::Var || !V->Rigid)
            continue;
          if (Out.SpuriousVars.insert(V).second)
            Changed = true;
          // Exception-forcing also propagates: an instance of an
          // exn-forced variable must itself be globally allocatable.
          if (Out.ExnForcedVars.count(Q) &&
              Out.ExnForcedVars.insert(V).second)
            Changed = true;
        }
      }
    }
  }

  // Ownership: which declarations quantify a spurious variable.
  for (const auto &[D, S] : Info.DecSchemes) {
    bool Spurious = false;
    for (Type *Q : S.Quantified)
      if (Out.SpuriousVars.count(resolve(Q)))
        Spurious = true;
    if (Spurious)
      Out.SpuriousDecs.insert(D);
  }

  // Figure 9 statistics.
  for (const Dec *D : Out.SpuriousDecs) {
    if (D->K == Dec::Kind::Fun ||
        (D->K == Dec::Kind::Val && D->Body &&
         D->Body->K == Expr::Kind::Fn))
      ++Out.SpuriousFunctions;
  }
  for (const auto &[Use, Inst] : Info.VarInsts) {
    auto SchemeIt = Info.DecSchemes.find(Inst.Origin);
    if (SchemeIt == Info.DecSchemes.end())
      continue;
    const TypeScheme &S = SchemeIt->second;
    for (size_t I = 0; I < S.Quantified.size() && I < Inst.Args.size();
         ++I) {
      ++Out.TotalInsts;
      if (Out.SpuriousVars.count(resolve(S.Quantified[I])) &&
          isBoxedMLType(Inst.Args[I]))
        ++Out.SpuriousBoxedInsts;
    }
  }
  return Out;
}
