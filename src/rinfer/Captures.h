//===- rinfer/Captures.h - Per-closure captured-region analysis -*- C++ -*-===//
//
// Part of RegionML, a reproduction of "Garbage-Collection Safety for
// Region-Based Type-Polymorphic Programs" (Elsman, PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The capture-tracking analysis: for every lambda / fun binding in a
/// region-annotated program, which region variables does the closure
/// capture? Following "Tracking Captured Variables in Types", the set is
/// split two ways, because the split is exactly where the paper's
/// GC-safety argument lives:
///
///   * **via value** — the free region variables of the types of the
///     program variables the closure captures (fpv of Section 3.6).
///     These regions are reachable from the closure record itself, so
///     the collector will trace into them.
///   * **via latent effect** — the free region variables of the
///     closure's latent arrow effect (a lambda's recorded nu; a fun
///     binding's scheme-body nu minus the scheme's bound variables).
///     These are the regions the *type system* promises to keep alive
///     while the closure may still be applied.
///
/// The per-closure `value \ latent` residue — the *escaped* set — is
/// where the two views disagree: regions the closure record holds that
/// the effect system never mentions. Their liveness is exactly what the
/// paper's GC-safety side conditions exist for: under rg, region
/// containment pins each such region's letregion outside the closure's
/// lifetime, so the collector can trace into it; under rg- that
/// protection is weaker and the escaped set is the candidate dangling
/// window — on the paper's Figure 1 the report flags precisely r-box,
/// the region the rg- run dies tracing into. The pass is a separate
/// reconstruction over the finished inference output — "Algebraic
/// Reconstruction of Types and Effects" style — never a change to
/// inference itself.
///
/// Closures are enumerated in the same fixed pre-order the flattener's
/// function pass uses, so index i here is index i in FlatUnit::Fns and
/// the flat form can persist (and re-render) the table byte-identically.
///
//===----------------------------------------------------------------------===//

#ifndef RML_RINFER_CAPTURES_H
#define RML_RINFER_CAPTURES_H

#include "region/RExpr.h"
#include "rinfer/Strategy.h"
#include "support/Interner.h"

#include <cstdint>
#include <string>
#include <vector>

namespace rml {

/// One closure's capture sets. Region ids are strictly ascending and
/// never include the global region (id 0) — it is always live, so
/// listing it would only blur every diff.
struct ClosureCapture {
  bool IsFun = false; ///< FunBind (letrec) vs plain lambda
  Symbol Self;        ///< FunBind name; invalid for lambdas
  Symbol Param;
  std::vector<uint32_t> ViaValue;  ///< regions of captured variables' types
  std::vector<uint32_t> ViaEffect; ///< regions of the latent arrow effect
};

/// The whole program's capture table, closures in flatten order.
struct CaptureInfo {
  std::vector<ClosureCapture> Closures;
};

/// Runs the analysis over a finished region inference result. Pure and
/// deterministic: identical programs produce identical tables.
CaptureInfo analyzeCaptures(const RProgram &P);

/// One rendered row of the capture report — plain strings, so the tree
/// side (CaptureInfo + Interner) and the flat side (FlatUnit string
/// table) can feed the same formatter and stay byte-identical.
struct CaptureReportRow {
  bool IsFun = false;
  std::string Self;  ///< empty for lambdas
  std::string Param; ///< empty renders as "_"
  std::vector<uint32_t> ViaValue;
  std::vector<uint32_t> ViaEffect;
};

/// Renders the deterministic capture report: a `captures v1` header,
/// one line per closure (value / latent region sets, plus the
/// `value\latent` residue when it is nonempty), and a totals line with
/// the Figure-9-style counts (closures, distinct captured regions, and
/// the number of (closure, region) pairs escaping the latent effect —
/// the pairs whose liveness rests on the strategy's containment side
/// conditions rather than on the effect system).
std::string renderCaptureReport(Strategy Strat,
                                const std::vector<CaptureReportRow> &Rows);

/// Convenience: rows from an analysis result plus the interner that
/// owns its symbols.
std::vector<CaptureReportRow> captureReportRows(const CaptureInfo &Info,
                                                const Interner &Names);

} // namespace rml

#endif // RML_RINFER_CAPTURES_H
