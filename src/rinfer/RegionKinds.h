//===- rinfer/RegionKinds.h - Region kinds for tag-free GC ------*- C++ -*-===//
//
// Part of RegionML, a reproduction of "Garbage-Collection Safety for
// Region-Based Type-Polymorphic Programs" (Elsman, PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Region-kind analysis for the partly tag-free representation (Sections
/// 4.2 and 6): regions that hold only pairs (or only cons cells, or only
/// refs) store their objects without header words, BIBOP-style — the
/// collector derives the layout from the region's kind. Mixed regions and
/// closure/string regions keep headers. The paper credits this
/// representation with "dramatic savings on allocated memory".
///
//===----------------------------------------------------------------------===//

#ifndef RML_RINFER_REGIONKINDS_H
#define RML_RINFER_REGIONKINDS_H

#include "region/RExpr.h"

#include <map>

namespace rml {

enum class RegionKind : uint8_t {
  Empty,   // no allocation sites observed
  Pair,    // tag-free: 2 scanned words
  Cons,    // tag-free: 2 scanned words
  Ref,     // tag-free: 1 scanned word
  String,  // byte data with a length word
  Closure, // header required (variable size)
  Exn,     // header required
  Mixed,   // header required
};

struct RegionKindInfo {
  std::map<uint32_t, RegionKind> Kinds;
  unsigned tagFreeCount() const {
    unsigned N = 0;
    for (const auto &[R, K] : Kinds)
      if (K == RegionKind::Pair || K == RegionKind::Cons ||
          K == RegionKind::Ref)
        ++N;
    return N;
  }
  RegionKind kindOf(RegionVar R) const {
    auto It = Kinds.find(R.Id);
    return It == Kinds.end() ? RegionKind::Empty : It->second;
  }
};

RegionKindInfo analyzeRegionKinds(const RProgram &P);

const char *regionKindName(RegionKind K);

} // namespace rml

#endif // RML_RINFER_REGIONKINDS_H
