//===- rinfer/Multiplicity.cpp --------------------------------------------===//

#include "rinfer/Multiplicity.h"

#include <set>

using namespace rml;

namespace {

/// Conservative per-word size classes of the allocation performed by a
/// node (header included; strings depend on length).
unsigned allocWords(const RExpr *E) {
  switch (E->K) {
  case RExpr::Kind::PairE:
  case RExpr::Kind::ConsE:
    return 3;
  case RExpr::Kind::RefE:
    return 2;
  case RExpr::Kind::StrE:
    return 2 + static_cast<unsigned>((E->StrValue.size() + 7) / 8);
  case RExpr::Kind::ExnConE:
    return 3;
  case RExpr::Kind::Lam:
  case RExpr::Kind::FunBind:
  case RExpr::Kind::RApp:
    return 16; // closures: captures unknown here; conservative bound
  case RExpr::Kind::Prim:
    return E->PrimK == Expr::PrimKind::Itos ? 6 : 0;
  case RExpr::Kind::BinOp:
    return E->Op == BinOpKind::Concat ? 0 /*length unknown*/ : 0;
  default:
    return 0;
  }
}

class Walker {
public:
  explicit Walker(MultiplicityInfo &Out) : Out(Out) {}

  void walk(const RExpr *E, unsigned LambdaDepth) {
    if (!E)
      return;
    if (E->K == RExpr::Kind::LetRegion) {
      Birth[E->BoundRho.Id] = LambdaDepth;
      Sites[E->BoundRho.Id] = 0;
      Words[E->BoundRho.Id] = 0;
      Escaped.erase(E->BoundRho.Id);
      walk(E->A, LambdaDepth);
      // Classify at scope exit.
      auto It = Sites.find(E->BoundRho.Id);
      bool Finite = It != Sites.end() && It->second == 1 &&
                    !Escaped.count(E->BoundRho.Id) &&
                    Words[E->BoundRho.Id] != 0;
      Out.Mult[E->BoundRho.Id] =
          Finite ? RegionMult::Finite : RegionMult::Infinite;
      if (Finite)
        Out.FiniteWords[E->BoundRho.Id] = Words[E->BoundRho.Id];
      return;
    }

    unsigned ChildDepth = LambdaDepth;
    if (E->K == RExpr::Kind::Lam || E->K == RExpr::Kind::FunBind)
      ChildDepth = LambdaDepth + 1;

    if (E->AtRho.isValid())
      recordAlloc(E, LambdaDepth);

    walk(E->A, ChildDepth);
    walk(E->B, ChildDepth);
    walk(E->C, ChildDepth);
    for (const RExpr *Item : E->Items)
      walk(Item, ChildDepth);
  }

private:
  void recordAlloc(const RExpr *E, unsigned LambdaDepth) {
    uint32_t R = E->AtRho.Id;
    auto BirthIt = Birth.find(R);
    if (BirthIt == Birth.end())
      return; // not letregion-bound here (global/formal): infinite
    ++Sites[R];
    unsigned W = allocWords(E);
    if (W == 0)
      Escaped.insert(R); // unknown size: cannot bound
    Words[R] += W;
    // Allocation under a lambda entered after the region's birth may run
    // any number of times per activation.
    if (LambdaDepth > BirthIt->second)
      Escaped.insert(R);
  }

  MultiplicityInfo &Out;
  std::map<uint32_t, unsigned> Birth;
  std::map<uint32_t, unsigned> Sites;
  std::map<uint32_t, unsigned> Words;
  std::set<uint32_t> Escaped;
};

} // namespace

MultiplicityInfo rml::analyzeMultiplicity(const RProgram &P) {
  MultiplicityInfo Out;
  Walker W(Out);
  W.walk(P.Root, 0);
  return Out;
}
