//===- rinfer/DropRegions.cpp ---------------------------------------------===//

#include "rinfer/DropRegions.h"

using namespace rml;

namespace {

/// Collects every region that the subtree may store into: allocation
/// destinations plus any region used as the target of an instantiation
/// (which the callee may store into — conservative without a call graph).
void collectPuts(const RExpr *E, std::set<uint32_t> &Puts) {
  if (!E)
    return;
  if (E->AtRho.isValid())
    Puts.insert(E->AtRho.Id);
  if (E->K == RExpr::Kind::RApp)
    for (const auto &[From, To] : E->Inst.Sr) {
      // Identity pairs are region-monomorphic self-calls: the formal is
      // a put target only if the body itself stores into it, which the
      // AtRho walk already records.
      if (From != To)
        Puts.insert(To.Id);
    }
  collectPuts(E->A, Puts);
  collectPuts(E->B, Puts);
  collectPuts(E->C, Puts);
  for (const RExpr *Item : E->Items)
    collectPuts(Item, Puts);
}

void walk(const RExpr *E, DropInfo &Out) {
  if (!E)
    return;
  if (E->K == RExpr::Kind::FunBind) {
    std::set<uint32_t> Puts;
    collectPuts(E->A, Puts);
    std::set<uint32_t> Dropped;
    for (RegionVar R : E->Sigma.QRegions) {
      ++Out.TotalFormals;
      if (!Puts.count(R.Id)) {
        Dropped.insert(R.Id);
        ++Out.DroppedFormals;
      }
    }
    Out.Dropped.emplace(E, std::move(Dropped));
  }
  walk(E->A, Out);
  walk(E->B, Out);
  walk(E->C, Out);
  for (const RExpr *Item : E->Items)
    walk(Item, Out);
}

} // namespace

DropInfo rml::analyzeDropRegions(const RProgram &P) {
  DropInfo Out;
  walk(P.Root, Out);
  return Out;
}
