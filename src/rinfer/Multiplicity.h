//===- rinfer/Multiplicity.h - Finite vs infinite regions -------*- C++ -*-===//
//
// Part of RegionML, a reproduction of "Garbage-Collection Safety for
// Region-Based Type-Polymorphic Programs" (Elsman, PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multiplicity analysis of the MLKit's region-representation phases
/// (Birkedal/Tofte/Vejlstrup, POPL'96; Section 4.2 of the paper): a
/// letregion-bound region is *finite* (bounded, stack-allocatable) when at
/// most one allocation is executed into it per activation — approximated
/// here as "exactly one static allocation site, not under a lambda or
/// recursive function entered after the region's creation". All other
/// regions (including the global region and quantified formals) are
/// *infinite* and are the ones the reference-tracing collector manages.
///
//===----------------------------------------------------------------------===//

#ifndef RML_RINFER_MULTIPLICITY_H
#define RML_RINFER_MULTIPLICITY_H

#include "region/RExpr.h"

#include <map>

namespace rml {

enum class RegionMult : uint8_t { Finite, Infinite };

struct MultiplicityInfo {
  /// Multiplicity per letregion-bound region id; regions not in the map
  /// (global, quantified formals, instance regions) are infinite.
  std::map<uint32_t, RegionMult> Mult;
  /// Exact byte bound for finite regions (the single allocation's size
  /// class in words, 0 = unknown/not finite).
  std::map<uint32_t, unsigned> FiniteWords;

  unsigned finiteCount() const {
    unsigned N = 0;
    for (const auto &[R, M] : Mult)
      if (M == RegionMult::Finite)
        ++N;
    return N;
  }

  bool isFinite(RegionVar R) const {
    auto It = Mult.find(R.Id);
    return It != Mult.end() && It->second == RegionMult::Finite;
  }
};

/// Runs the analysis over a materialised region-annotated program.
MultiplicityInfo analyzeMultiplicity(const RProgram &P);

} // namespace rml

#endif // RML_RINFER_MULTIPLICITY_H
