//===- rinfer/RegionKinds.cpp ---------------------------------------------===//

#include "rinfer/RegionKinds.h"

using namespace rml;

const char *rml::regionKindName(RegionKind K) {
  switch (K) {
  case RegionKind::Empty:
    return "empty";
  case RegionKind::Pair:
    return "pair";
  case RegionKind::Cons:
    return "cons";
  case RegionKind::Ref:
    return "ref";
  case RegionKind::String:
    return "string";
  case RegionKind::Closure:
    return "closure";
  case RegionKind::Exn:
    return "exn";
  case RegionKind::Mixed:
    return "mixed";
  }
  return "?";
}

namespace {

RegionKind kindOfSite(const RExpr *E) {
  switch (E->K) {
  case RExpr::Kind::PairE:
    return RegionKind::Pair;
  case RExpr::Kind::ConsE:
    return RegionKind::Cons;
  case RExpr::Kind::RefE:
    return RegionKind::Ref;
  case RExpr::Kind::StrE:
    return RegionKind::String;
  case RExpr::Kind::ExnConE:
    return RegionKind::Exn;
  case RExpr::Kind::Lam:
  case RExpr::Kind::FunBind:
  case RExpr::Kind::RApp:
    return RegionKind::Closure;
  case RExpr::Kind::BinOp:
    return E->Op == BinOpKind::Concat ? RegionKind::String
                                      : RegionKind::Empty;
  case RExpr::Kind::Prim:
    return E->PrimK == Expr::PrimKind::Itos ? RegionKind::String
                                            : RegionKind::Empty;
  default:
    return RegionKind::Empty;
  }
}

RegionKind join(RegionKind A, RegionKind B) {
  if (A == RegionKind::Empty)
    return B;
  if (B == RegionKind::Empty || A == B)
    return A;
  return RegionKind::Mixed;
}

void walk(const RExpr *E, RegionKindInfo &Out) {
  if (!E)
    return;
  if (E->AtRho.isValid()) {
    RegionKind K = kindOfSite(E);
    if (K != RegionKind::Empty) {
      auto [It, New] = Out.Kinds.emplace(E->AtRho.Id, K);
      if (!New)
        It->second = join(It->second, K);
    }
  }
  // Quantified formal regions of fun bindings can be instantiated with
  // any region, so their own allocation sites join into the *actual*
  // regions at instantiation: conservatively treat a formal's sites as
  // applying to every instantiation target.
  if (E->K == RExpr::Kind::RApp) {
    for (const auto &[From, To] : E->Inst.Sr) {
      auto FromIt = Out.Kinds.find(From.Id);
      if (FromIt == Out.Kinds.end())
        continue;
      auto [It, New] = Out.Kinds.emplace(To.Id, FromIt->second);
      if (!New)
        It->second = join(It->second, FromIt->second);
    }
  }
  walk(E->A, Out);
  walk(E->B, Out);
  walk(E->C, Out);
  for (const RExpr *Item : E->Items)
    walk(Item, Out);
}

} // namespace

RegionKindInfo rml::analyzeRegionKinds(const RProgram &P) {
  RegionKindInfo Out;
  // Iterate to a fixpoint so formal-to-actual propagation chains settle
  // regardless of program order.
  std::map<uint32_t, RegionKind> Prev;
  do {
    Prev = Out.Kinds;
    walk(P.Root, Out);
  } while (Prev != Out.Kinds);
  return Out;
}
