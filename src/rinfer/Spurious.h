//===- rinfer/Spurious.h - Spurious type-variable analysis ------*- C++ -*-===//
//
// Part of RegionML, a reproduction of "Garbage-Collection Safety for
// Region-Based Type-Polymorphic Programs" (Elsman, PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The spurious type-variable analysis of Sections 4.1 and 4.3.
///
/// A quantified type variable alpha of a declaration's type scheme is
/// *spurious* iff
///
///  (1) alpha occurs free in the type of an identifier occurring free in a
///      function expression within the declaration, but not in the type of
///      the function expression itself (the "dead captured value" case of
///      Figure 1), or
///  (2) alpha occurs free in a type instantiated for another spurious type
///      variable (the Figure 8 chain through g and o), or
///  (3) alpha occurs free in the argument type of a local exception
///      declaration (Section 4.4) — such variables are additionally marked
///      ExnForced, and region inference pins their instances to the global
///      region.
///
/// Case (2) is a fixpoint over the program's instantiation records. The
/// analysis also produces the Figure 9 statistics: spurious functions /
/// total functions, and spurious-with-boxed-type instantiations / total
/// instantiations.
///
//===----------------------------------------------------------------------===//

#ifndef RML_RINFER_SPURIOUS_H
#define RML_RINFER_SPURIOUS_H

#include "ast/Ast.h"
#include "types/Type.h"
#include "types/TypeCheck.h"

#include <set>
#include <unordered_map>
#include <unordered_set>

namespace rml {

struct SpuriousInfo {
  /// Quantified ML type variables (rigid Type nodes) found spurious.
  std::unordered_set<const Type *> SpuriousVars;
  /// Spurious variables whose instances must live in global regions
  /// because they occur in exception argument types (Section 4.4).
  std::unordered_set<const Type *> ExnForcedVars;
  /// Declarations whose scheme quantifies at least one spurious variable
  /// ("spurious functions" in Figure 9).
  std::unordered_set<const Dec *> SpuriousDecs;

  // Figure 9 statistics.
  unsigned TotalFunctions = 0;    // declarations binding functions
  unsigned SpuriousFunctions = 0; // ... with a spurious quantified var
  unsigned TotalInsts = 0;        // type-variable instantiations
  unsigned SpuriousBoxedInsts = 0; // spurious var instantiated w/ boxed ty

  bool isSpurious(Type *V) const {
    return SpuriousVars.count(resolve(V)) != 0;
  }
};

/// Runs the analysis over a typed program.
SpuriousInfo analyzeSpurious(const Program &P, const TypeInfo &Info);

} // namespace rml

#endif // RML_RINFER_SPURIOUS_H
