//===- rinfer/Infer.cpp - Region inference --------------------------------===//

#include "rinfer/Infer.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>
#include <unordered_map>

using namespace rml;

const char *rml::strategyName(Strategy S) {
  switch (S) {
  case Strategy::Rg:
    return "rg";
  case Strategy::RgMinus:
    return "rg-";
  case Strategy::R:
    return "r";
  }
  return "?";
}

namespace {

//===----------------------------------------------------------------------===//
// The inference store: union-find over region and effect variables with
// levels ("cones") and grow-only effect-variable denotations.
//===----------------------------------------------------------------------===//

class InferStore {
public:
  InferStore() {
    // Region 0 / effect variable 0 are the global region and its effect
    // variable; the global region is permanently allocated.
    RegionVar G = freshRegion(0);
    EffectVar GE = freshEffect(0);
    assert(G.isGlobal() && GE == EffectVar::global());
    Regions[0].Bound = true;
    include(GE, AtomicEffect(G));
  }

  RegionVar freshRegion(uint32_t Level) {
    Regions.push_back({static_cast<uint32_t>(Regions.size()), Level, false,
                       false});
    return RegionVar(static_cast<uint32_t>(Regions.size() - 1));
  }

  EffectVar freshEffect(uint32_t Level) {
    Effects.push_back({static_cast<uint32_t>(Effects.size()), Level, false,
                       {}});
    return EffectVar(static_cast<uint32_t>(Effects.size() - 1));
  }

  RegionVar find(RegionVar R) {
    uint32_t I = R.Id;
    while (Regions[I].Parent != I) {
      Regions[I].Parent = Regions[Regions[I].Parent].Parent;
      I = Regions[I].Parent;
    }
    return RegionVar(I);
  }

  EffectVar find(EffectVar E) {
    uint32_t I = E.Id;
    while (Effects[I].Parent != I) {
      Effects[I].Parent = Effects[Effects[I].Parent].Parent;
      I = Effects[I].Parent;
    }
    return EffectVar(I);
  }

  AtomicEffect canon(AtomicEffect A) {
    return A.isRegion() ? AtomicEffect(find(A.region()))
                        : AtomicEffect(find(A.effect()));
  }

  void unifyRegion(RegionVar A, RegionVar B) {
    A = find(A);
    B = find(B);
    if (A == B)
      return;
    // The global region wins; otherwise keep the lower id (older).
    if (B.isGlobal() || (!A.isGlobal() && B.Id < A.Id))
      std::swap(A, B);
    Regions[B.Id].Parent = A.Id;
    Regions[A.Id].Level = std::min(Regions[A.Id].Level, Regions[B.Id].Level);
    Regions[A.Id].Bound = Regions[A.Id].Bound || Regions[B.Id].Bound;
  }

  void unifyEffect(EffectVar A, EffectVar B) {
    A = find(A);
    B = find(B);
    if (A == B)
      return;
    if (B == EffectVar::global() || (A != EffectVar::global() && B.Id < A.Id))
      std::swap(A, B);
    Effects[B.Id].Parent = A.Id;
    Effects[A.Id].Level = std::min(Effects[A.Id].Level, Effects[B.Id].Level);
    for (AtomicEffect X : Effects[B.Id].Deno)
      Effects[A.Id].Deno.insert(canon(X));
    Effects[B.Id].Deno.clear();
    lowerTransitively(AtomicEffect(A), Effects[A.Id].Level);
  }

  void include(EffectVar E, AtomicEffect A) {
    E = find(E);
    A = canon(A);
    // A recursive function's latent effect legitimately contains its own
    // handle (the body applies the function); closure() handles cycles.
    Effects[E.Id].Deno.insert(A);
    // Cone invariant: everything reachable from an effect variable lives
    // at most at the variable's level — a region reachable from an
    // escaping effect variable escapes too and must not be quantified.
    lowerTransitively(A, Effects[E.Id].Level);
  }

  /// Lowers \p A (and, through denotations, everything it reaches) to at
  /// most level \p L.
  void lowerTransitively(AtomicEffect A, uint32_t L) {
    std::vector<AtomicEffect> Work{canon(A)};
    while (!Work.empty()) {
      AtomicEffect Cur = Work.back();
      Work.pop_back();
      if (Cur.isRegion()) {
        RInfo &R = Regions[find(Cur.region()).Id];
        if (R.Level > L)
          R.Level = L;
        continue;
      }
      EInfo &E = Effects[find(Cur.effect()).Id];
      if (E.Level <= L)
        continue; // members already at most E.Level <= L
      E.Level = L;
      for (AtomicEffect M : E.Deno)
        Work.push_back(canon(M));
    }
  }

  void includeAll(EffectVar E, const Effect &Phi) {
    for (AtomicEffect A : Phi)
      include(E, A);
  }

  /// The transitively closed set of canonical atomic effects reachable
  /// from \p Seeds through effect-variable denotations.
  Effect closure(const Effect &Seeds) {
    std::set<AtomicEffect> Out;
    std::vector<EffectVar> Work;
    auto Add = [&](AtomicEffect A) {
      A = canon(A);
      if (Out.insert(A).second && A.isEffect())
        Work.push_back(A.effect());
    };
    for (AtomicEffect A : Seeds)
      Add(A);
    while (!Work.empty()) {
      EffectVar E = find(Work.back());
      Work.pop_back();
      // Copy: Add may not invalidate, but Deno canonicalisation below can.
      std::vector<AtomicEffect> Members(Effects[E.Id].Deno.begin(),
                                        Effects[E.Id].Deno.end());
      for (AtomicEffect A : Members)
        Add(A);
    }
    return Effect(std::vector<AtomicEffect>(Out.begin(), Out.end()));
  }

  uint32_t regionLevel(RegionVar R) { return Regions[find(R).Id].Level; }
  uint32_t effectLevel(EffectVar E) { return Effects[find(E).Id].Level; }

  bool isBound(RegionVar R) { return Regions[find(R).Id].Bound; }
  void markBound(RegionVar R) { Regions[find(R).Id].Bound = true; }

  bool isQuantified(RegionVar R) { return Regions[find(R).Id].Quantified; }
  bool isQuantified(EffectVar E) { return Effects[find(E).Id].Quantified; }
  void markQuantified(RegionVar R) { Regions[find(R).Id].Quantified = true; }
  void markQuantified(EffectVar E) { Effects[find(E).Id].Quantified = true; }

  const std::set<AtomicEffect> &denotation(EffectVar E) {
    return Effects[find(E).Id].Deno;
  }

  size_t numRegions() const { return Regions.size(); }
  size_t numEffects() const { return Effects.size(); }

private:
  struct RInfo {
    uint32_t Parent;
    uint32_t Level;
    bool Bound;      // discharged by letregion (or the global region)
    bool Quantified; // frozen in some scheme
  };
  struct EInfo {
    uint32_t Parent;
    uint32_t Level;
    bool Quantified;
    std::set<AtomicEffect> Deno;
  };
  std::vector<RInfo> Regions;
  std::vector<EInfo> Effects;
};

//===----------------------------------------------------------------------===//
// Environment bindings
//===----------------------------------------------------------------------===//

/// A quantified type variable of an inference-time scheme.
struct DeltaEntry {
  Type *MLVar = nullptr; // the rigid ML variable (scheme order)
  TyVarId Alpha;
  std::optional<EffectVar> Eps; // arrow effect handle when spurious (rg)
  bool ExnForced = false;       // instances pinned to the global region
};

struct PolyScheme {
  std::vector<RegionVar> QRegions;
  std::vector<EffectVar> QEffects;
  std::vector<DeltaEntry> Delta;
  const Tau *Body = nullptr;
  RegionVar Place;
  const Dec *Origin = nullptr;
};

struct InfBinding {
  const Mu *Mono = nullptr; // set iff monomorphic
  PolyScheme Poly;          // otherwise
  /// Polymorphic *constant* bindings (nil, pairs/conses of constants):
  /// the closed value is re-synthesised at each use's instance type —
  /// constants have no identity, so duplication is unobservable.
  const Expr *ConstValue = nullptr;
};

/// Result of inferring one expression.
struct Res {
  const Mu *M = nullptr;
  Effect Phi; // seed effect (closure computed on demand)
  RExpr *Term = nullptr;
};

//===----------------------------------------------------------------------===//
// The inference engine
//===----------------------------------------------------------------------===//

class Inferencer {
public:
  Inferencer(const TypeInfo &Types, const SpuriousInfo &Spurious,
             const InferOptions &Opts, RTypeArena &RArena, RExprArena &EArena,
             Interner &Names, DiagnosticEngine &Diags)
      : Types(Types), Spurious(Spurious), Opts(Opts), RArena(RArena),
        EArena(EArena), Names(Names), Diags(Diags) {}

  std::optional<InferResult> run(const Program &P);

private:
  //===--------------------------------------------------------------------===//
  // Spreading: ML type -> region type with fresh variables
  //===--------------------------------------------------------------------===//

  TyVarId tyVarIdFor(Type *V) {
    V = resolve(V);
    auto It = MLVarIds.find(V);
    if (It != MLVarIds.end())
      return It->second;
    TyVarId Id(NextTyVarId++);
    MLVarIds.emplace(V, Id);
    return Id;
  }

  const Mu *spread(Type *T) {
    T = resolve(T);
    switch (T->K) {
    case TypeKind::Var:
      if (T->Rigid)
        return RArena.tyVar(tyVarIdFor(T));
      // Unconstrained monomorphic variable: default to int (SML-style
      // defaulting keeps the region language ground).
      {
        static Type IntDefaultNode(TypeKind::Int);
        unify(T, &IntDefaultNode);
      }
      return RArena.intTy();
    case TypeKind::Int:
      return RArena.intTy();
    case TypeKind::Bool:
      return RArena.boolTy();
    case TypeKind::Unit:
      return RArena.unitTy();
    case TypeKind::Exn:
      return RArena.boxed(RArena.exnTy(), RegionVar::global());
    case TypeKind::String:
      return RArena.boxed(RArena.stringTy(), Store.freshRegion(Level));
    case TypeKind::Arrow: {
      const Mu *A = spread(T->A);
      const Mu *B = spread(T->B);
      ArrowEff Nu(Store.freshEffect(Level), Effect::empty());
      return RArena.boxed(RArena.arrowTy(A, Nu, B),
                          Store.freshRegion(Level));
    }
    case TypeKind::Pair:
      return RArena.boxed(RArena.pairTy(spread(T->A), spread(T->B)),
                          Store.freshRegion(Level));
    case TypeKind::List:
      return RArena.boxed(RArena.listTy(spread(T->A)),
                          Store.freshRegion(Level));
    case TypeKind::Ref:
      return RArena.boxed(RArena.refTy(spread(T->A)),
                          Store.freshRegion(Level));
    }
    return RArena.unitTy();
  }

  //===--------------------------------------------------------------------===//
  // Unification of region types (same underlying ML structure)
  //===--------------------------------------------------------------------===//

  void unifyMu(const Mu *A, const Mu *B, SrcLoc Loc) {
    if (A == B)
      return;
    if (A->K != B->K) {
      Diags.error(Loc, "region inference: structural mismatch between " +
                           printMu(A) + " and " + printMu(B) +
                           " (post-HM types should agree)");
      Failed = true;
      return;
    }
    switch (A->K) {
    case Mu::Kind::TyVar:
      if (A->Alpha != B->Alpha) {
        Diags.error(Loc, "region inference: distinct type variables " +
                             printTyVar(A->Alpha) + " and " +
                             printTyVar(B->Alpha));
        Failed = true;
      }
      return;
    case Mu::Kind::Int:
    case Mu::Kind::Bool:
    case Mu::Kind::Unit:
      return;
    case Mu::Kind::Boxed:
      Store.unifyRegion(A->Rho, B->Rho);
      unifyTau(A->T, B->T, Loc);
      return;
    }
  }

  void unifyTau(const Tau *A, const Tau *B, SrcLoc Loc) {
    if (A == B)
      return;
    if (A->K != B->K) {
      Diags.error(Loc, "region inference: constructor mismatch");
      Failed = true;
      return;
    }
    switch (A->K) {
    case Tau::Kind::Pair:
      unifyMu(A->A, B->A, Loc);
      unifyMu(A->B, B->B, Loc);
      return;
    case Tau::Kind::Arrow:
      Store.unifyEffect(A->Nu.Handle, B->Nu.Handle);
      unifyMu(A->A, B->A, Loc);
      unifyMu(A->B, B->B, Loc);
      return;
    case Tau::Kind::String:
    case Tau::Kind::Exn:
      return;
    case Tau::Kind::List:
    case Tau::Kind::Ref:
      unifyMu(A->A, B->A, Loc);
      return;
    }
  }

  //===--------------------------------------------------------------------===//
  // frev (inference side): seed atomics of a type, with spurious type
  // variables contributing their arrow-effect handles
  //===--------------------------------------------------------------------===//

  /// Seed atomics of a type. When \p TyVarEffects is set, a type
  /// variable contributes its ambient arrow-effect handle (the paper's
  /// frev(Omega(alpha)) reading, used for *requirements*: captured types,
  /// escape tests). When clear, type variables contribute nothing — the
  /// *syntactic* frev of the typing rules, used for what a function type
  /// already provides: an occurrence under a type variable is erased by
  /// type substitution, which is exactly the paper's counterexample.
  void frevSeedsMu(const Mu *M, Effect &Out, bool TyVarEffects = true) {
    switch (M->K) {
    case Mu::Kind::Int:
    case Mu::Kind::Bool:
    case Mu::Kind::Unit:
      return;
    case Mu::Kind::TyVar: {
      if (!TyVarEffects)
        return;
      auto It = TyCtx.find(M->Alpha);
      if (It != TyCtx.end() && It->second)
        Out.insert(AtomicEffect(Store.find(*It->second)));
      return;
    }
    case Mu::Kind::Boxed:
      Out.insert(AtomicEffect(Store.find(M->Rho)));
      frevSeedsTau(M->T, Out, TyVarEffects);
      return;
    }
  }

  void frevSeedsTau(const Tau *T, Effect &Out, bool TyVarEffects = true) {
    if (T->K == Tau::Kind::Arrow)
      Out.insert(AtomicEffect(Store.find(T->Nu.Handle)));
    if (T->A)
      frevSeedsMu(T->A, Out, TyVarEffects);
    if (T->B)
      frevSeedsMu(T->B, Out, TyVarEffects);
  }

  Effect frevSeeds(const Mu *M) {
    Effect Out;
    frevSeedsMu(M, Out);
    return Out;
  }

  Effect frevSeedsSyntactic(const Mu *M) {
    Effect Out;
    frevSeedsMu(M, Out, /*TyVarEffects=*/false);
    return Out;
  }

  Effect frevSeeds(const InfBinding &B) {
    Effect Out;
    if (B.Mono) {
      frevSeedsMu(B.Mono, Out);
      return Out;
    }
    if (B.ConstValue)
      return Out; // constants reference no regions until re-synthesised
    // frev of a scheme: body + place + spurious arrow effects, minus the
    // quantified variables. Close *before* subtracting: a quantified
    // handle's denotation may mention free atoms (e.g. the region of a
    // global closure the body applies) that stay free in the scheme.
    frevSeedsTau(B.Poly.Body, Out);
    Out.insert(AtomicEffect(Store.find(B.Poly.Place)));
    for (const DeltaEntry &D : B.Poly.Delta)
      if (D.Eps)
        Out.insert(AtomicEffect(Store.find(*D.Eps)));
    Effect Closed = Store.closure(Out);
    Effect Bound;
    for (RegionVar R : B.Poly.QRegions)
      Bound.insert(AtomicEffect(Store.find(R)));
    for (EffectVar E : B.Poly.QEffects)
      Bound.insert(AtomicEffect(Store.find(E)));
    return Closed.minus(Bound);
  }

  //===--------------------------------------------------------------------===//
  // Environment
  //===--------------------------------------------------------------------===//

  void bindMono(Symbol S, const Mu *M) {
    InfBinding B;
    B.Mono = M;
    Env.emplace_back(S, std::move(B));
  }

  const InfBinding *lookup(Symbol S) const {
    for (size_t I = Env.size(); I-- > 0;)
      if (Env[I].first == S)
        return &Env[I].second;
    return nullptr;
  }

  /// Seed atomics of the environment restricted to \p Syms.
  Effect envSeeds(const std::vector<Symbol> &Syms) {
    Effect Out;
    for (Symbol S : Syms)
      if (const InfBinding *B = lookup(S))
        Out = Out.unionWith(frevSeeds(*B));
    // The ambient type-variable context's arrow effects are also pinned.
    for (const auto &[Alpha, Eps] : TyCtx)
      if (Eps)
        Out.insert(AtomicEffect(Store.find(*Eps)));
    return Out;
  }

  //===--------------------------------------------------------------------===//
  // letregion insertion
  //===--------------------------------------------------------------------===//

  /// Wraps \p R.Term in letregion binders for every region (and effect
  /// variable) of its effect that escapes neither through the free
  /// variables of the term, nor the result type, nor the ambient
  /// type-variable context. Updates R.Phi.
  void insertLetregions(Res &R) {
    Effect PhiC = Store.closure(R.Phi);
    Effect Escaping =
        Store.closure(envSeeds(freeVars(R.Term)).unionWith(
            frevSeeds(R.M)));
    std::vector<RegionVar> MaskR;
    std::vector<EffectVar> MaskE;
    for (AtomicEffect A : PhiC) {
      if (Escaping.contains(A))
        continue;
      if (A.isRegion()) {
        RegionVar Rho = A.region();
        if (Rho.isGlobal() || Store.isBound(Rho) || Store.isQuantified(Rho))
          continue;
        MaskR.push_back(Rho);
      } else {
        EffectVar E = A.effect();
        if (E == EffectVar::global() || Store.isQuantified(E))
          continue;
        MaskE.push_back(E);
      }
    }
    if (MaskR.empty())
      return; // effect variables are only discharged together with regions
    Effect Masked;
    for (RegionVar Rho : MaskR) {
      Store.markBound(Rho);
      Masked.insert(AtomicEffect(Rho));
    }
    for (EffectVar E : MaskE)
      Masked.insert(AtomicEffect(E));
    // Innermost letregion carries the discharged effect variables.
    RExpr *Inner = EArena.make(RExpr::Kind::LetRegion);
    Inner->Loc = R.Term->Loc;
    Inner->BoundRho = MaskR.back();
    Inner->BoundEffs = MaskE;
    Inner->A = R.Term;
    Inner->MuOf = R.M;
    ++NumLetRegions;
    for (size_t I = MaskR.size() - 1; I-- > 0;) {
      RExpr *Next = EArena.make(RExpr::Kind::LetRegion);
      Next->Loc = R.Term->Loc;
      Next->BoundRho = MaskR[I];
      Next->A = Inner;
      Next->MuOf = R.M;
      Inner = Next;
      ++NumLetRegions;
    }
    R.Term = Inner;
    R.Phi = PhiC.minus(Masked);
  }

  //===--------------------------------------------------------------------===//
  // GC-safety inclusion (the Elsman'03 fix + this paper's spurious fix)
  //===--------------------------------------------------------------------===//

  /// Establishes the GC-safety relation G for a function of type \p FnMu
  /// with latent arrow-effect handle \p Eps: for every captured binding,
  /// the atoms of frev(Gamma(y)) that do not already occur in frev(pi)
  /// are added to the latent effect. Adding only the *missing* atoms is
  /// essential for fidelity: G is satisfied by occurrence anywhere in the
  /// function's type, and occurrences under instantiated type variables
  /// are precisely what type substitution erases — the paper's
  /// unsoundness. Under rg, spurious type variables contribute their
  /// arrow-effect handles (via frevSeeds and the ambient TyCtx); under
  /// rg- they contribute nothing (no TyCtx entries), reproducing the
  /// pre-paper behaviour; under r nothing is added at all (Tofte-Talpin,
  /// dangling pointers permitted).
  void includeCaptured(EffectVar Eps, const Mu *FnMu, const RExpr *Body,
                       std::initializer_list<Symbol> Params) {
    if (Opts.Strat == Strategy::R)
      return;
    Effect Have = Store.closure(frevSeedsSyntactic(FnMu));
    for (Symbol S : freeVars(Body)) {
      if (std::find(Params.begin(), Params.end(), S) != Params.end())
        continue;
      const InfBinding *B = lookup(S);
      if (!B)
        continue;
      for (AtomicEffect A : frevSeeds(*B)) {
        A = Store.canon(A);
        if (Have.contains(A))
          continue;
        Store.include(Eps, A);
        Have = Have.unionWith(Store.closure(Effect{A}));
      }
    }
  }

  //===--------------------------------------------------------------------===//
  // Substitution over inference types (instantiation)
  //===--------------------------------------------------------------------===//

  struct InstMaps {
    std::map<TyVarId, const Mu *> St;
    std::map<uint32_t, RegionVar> Sr;  // canonical region id -> fresh
    std::map<uint32_t, EffectVar> Se;  // canonical effect id -> fresh
  };

  RegionVar instRegion(const InstMaps &S, RegionVar R) {
    R = Store.find(R);
    auto It = S.Sr.find(R.Id);
    return It == S.Sr.end() ? R : It->second;
  }

  EffectVar instEffect(const InstMaps &S, EffectVar E) {
    E = Store.find(E);
    auto It = S.Se.find(E.Id);
    return It == S.Se.end() ? E : It->second;
  }

  const Mu *instMu(const InstMaps &S, const Mu *M) {
    switch (M->K) {
    case Mu::Kind::Int:
    case Mu::Kind::Bool:
    case Mu::Kind::Unit:
      return M;
    case Mu::Kind::TyVar: {
      auto It = S.St.find(M->Alpha);
      return It == S.St.end() ? M : It->second;
    }
    case Mu::Kind::Boxed:
      return RArena.boxed(instTau(S, M->T), instRegion(S, M->Rho));
    }
    return M;
  }

  const Tau *instTau(const InstMaps &S, const Tau *T) {
    switch (T->K) {
    case Tau::Kind::Pair:
      return RArena.pairTy(instMu(S, T->A), instMu(S, T->B));
    case Tau::Kind::Arrow: {
      ArrowEff Nu(instEffect(S, T->Nu.Handle), Effect::empty());
      return RArena.arrowTy(instMu(S, T->A), Nu, instMu(S, T->B));
    }
    case Tau::Kind::String:
    case Tau::Kind::Exn:
      return T;
    case Tau::Kind::List:
      return RArena.listTy(instMu(S, T->A));
    case Tau::Kind::Ref:
      return RArena.refTy(instMu(S, T->A));
    }
    return T;
  }

  /// Pins every region of \p M to the global region and every arrow
  /// effect to the global effect variable (Section 4.4).
  void forceGlobal(const Mu *M) {
    Effect Seeds = frevSeeds(M);
    for (AtomicEffect A : Store.closure(Seeds)) {
      if (A.isRegion())
        Store.unifyRegion(A.region(), RegionVar::global());
      else
        Store.unifyEffect(A.effect(), EffectVar::global());
    }
  }

  //===--------------------------------------------------------------------===//
  // Declarations and expressions
  //===--------------------------------------------------------------------===//

  Res infer(const Expr *E);
  Res inferVar(const Expr *E);

  /// True for closed constant values: literals, nil, and pairs/conses of
  /// constant values (no variables, no lambdas, no refs).
  static bool isConstValue(const Expr *E) {
    switch (E->K) {
    case Expr::Kind::IntLit:
    case Expr::Kind::StrLit:
    case Expr::Kind::BoolLit:
    case Expr::Kind::UnitLit:
    case Expr::Kind::Nil:
      return true;
    case Expr::Kind::Pair:
      return isConstValue(E->A) && isConstValue(E->B);
    case Expr::Kind::BinOp:
      return E->Op == BinOpKind::Cons && isConstValue(E->A) &&
             isConstValue(E->B);
    case Expr::Kind::Annot:
      return isConstValue(E->A);
    default:
      return false;
    }
  }

  /// Re-synthesises the constant \p E at the (resolved) instance type
  /// \p T, producing a fresh region-annotated term.
  Res reinferConst(const Expr *E, Type *T);
  Res inferFn(const Expr *E);
  Res inferLet(const Expr *E);

  /// Handles one declaration: binds the environment (and exception
  /// signatures), accumulates the declaration effect into \p PhiAcc and
  /// returns the right-hand-side term to let-bind (null for exception
  /// declarations).
  RExpr *inferDecl(const Dec *D, Effect &PhiAcc);

  /// The region-polymorphic function path shared by "fun f x = e" and
  /// polymorphic "val f = fn x => e".
  RExpr *inferFunLike(const Dec *D, Symbol FunName, Symbol Param,
                      Type *ParamType, Type *ResultType, const Expr *Body,
                      bool Recursive, SrcLoc Loc, Effect &PhiAcc);

  /// Builds the Delta entries for a declaration's quantified ML type
  /// variables and pushes them onto the ambient type-variable context.
  /// For recursive functions the spurious arrow effects are pinned at
  /// level 0 (never quantified): the recursive typing rule requires the
  /// quantified region/effect variables to be disjoint from frev(Delta).
  std::vector<DeltaEntry> pushDelta(const TypeScheme &S, EffectVar FunEps,
                                    bool Recursive);
  void popDelta(const std::vector<DeltaEntry> &Delta);

  /// Rewrites monomorphic self-references "f" inside \p Body into
  /// identity region applications "f [id] at Place" once the scheme of f
  /// is known (the recursive rule of Figure 4 binds f to a scheme).
  const RExpr *rewriteSelfCalls(const RExpr *Body, Symbol F,
                                const PolyScheme &Sch);

  //===--------------------------------------------------------------------===//
  // Materialisation: canonical ids and explicit effect sets
  //===--------------------------------------------------------------------===//

  RegionVar outRegion(RegionVar R) {
    R = Store.find(R);
    if (!Store.isBound(R) && !Store.isQuantified(R))
      // Escapes to the top level: allocate globally.
      return RegionVar::global();
    return R;
  }

  Effect outEffect(const Effect &Seeds) {
    // Closure with every atomic mapped through outRegion.
    std::vector<AtomicEffect> Out;
    for (AtomicEffect A : Store.closure(Seeds)) {
      if (A.isRegion())
        Out.push_back(AtomicEffect(outRegion(A.region())));
      else
        Out.push_back(A);
    }
    return Effect(std::move(Out));
  }

  ArrowEff outArrow(EffectVar E) {
    E = Store.find(E);
    Effect Seeds;
    for (AtomicEffect A : Store.denotation(E))
      Seeds.insert(A);
    return ArrowEff(E, outEffect(Seeds));
  }

  const Mu *outMu(const Mu *M) {
    switch (M->K) {
    case Mu::Kind::Int:
    case Mu::Kind::Bool:
    case Mu::Kind::Unit:
    case Mu::Kind::TyVar:
      return M;
    case Mu::Kind::Boxed:
      return RArena.boxed(outTau(M->T), outRegion(M->Rho));
    }
    return M;
  }

  const Tau *outTau(const Tau *T) {
    switch (T->K) {
    case Tau::Kind::Pair:
      return RArena.pairTy(outMu(T->A), outMu(T->B));
    case Tau::Kind::Arrow:
      return RArena.arrowTy(outMu(T->A), outArrow(T->Nu.Handle),
                            outMu(T->B));
    case Tau::Kind::String:
    case Tau::Kind::Exn:
      return T;
    case Tau::Kind::List:
      return RArena.listTy(outMu(T->A));
    case Tau::Kind::Ref:
      return RArena.refTy(outMu(T->A));
    }
    return T;
  }

  RScheme outScheme(const PolyScheme &P) {
    RScheme S;
    for (RegionVar R : P.QRegions)
      S.QRegions.push_back(Store.find(R));
    for (EffectVar E : P.QEffects)
      S.QEffects.push_back(Store.find(E));
    for (const DeltaEntry &D : P.Delta) {
      if (D.Eps)
        S.Delta.bind(D.Alpha, outArrow(*D.Eps));
      else
        S.Delta.bindPlain(D.Alpha);
    }
    S.Body = outTau(P.Body);
    return S;
  }

  void materialize(RExpr *E) {
    if (!E)
      return;
    materialize(const_cast<RExpr *>(E->A));
    materialize(const_cast<RExpr *>(E->B));
    materialize(const_cast<RExpr *>(E->C));
    for (const RExpr *Item : E->Items)
      materialize(const_cast<RExpr *>(Item));
    if (E->AtRho.isValid())
      E->AtRho = outRegion(E->AtRho);
    if (E->BoundRho.isValid())
      E->BoundRho = Store.find(E->BoundRho);
    for (EffectVar &Ev : E->BoundEffs)
      Ev = Store.find(Ev);
    if (E->MuOf)
      E->MuOf = outMu(E->MuOf);
    if (E->ParamMu)
      E->ParamMu = outMu(E->ParamMu);
    if (E->K == RExpr::Kind::Lam)
      E->LatentNu = outArrow(E->LatentNu.Handle);
    if (E->K == RExpr::Kind::FunBind) {
      auto It = PendingSchemes.find(E);
      assert(It != PendingSchemes.end() && "fun without recorded scheme");
      E->Sigma = outScheme(It->second);
    }
    if (E->K == RExpr::Kind::RApp) {
      auto It = PendingInsts.find(E);
      assert(It != PendingInsts.end() && "rapp without recorded inst");
      const PendingInst &P = It->second;
      Subst S;
      for (const auto &[Alpha, M] : P.Maps.St)
        S.St.emplace(Alpha, outMu(M));
      for (RegionVar Q : P.SchemeRegions)
        S.Sr.emplace(Store.find(Q),
                     outRegion(instRegion(P.Maps, Q)));
      for (EffectVar Q : P.SchemeEffects) {
        EffectVar Fresh = instEffect(P.Maps, Q);
        S.Se.emplace(Store.find(Q), outArrow(Fresh));
      }
      E->Inst = std::move(S);
    }
  }

  //===--------------------------------------------------------------------===//
  // State
  //===--------------------------------------------------------------------===//

  const TypeInfo &Types;
  const SpuriousInfo &Spurious;
  InferOptions Opts;
  RTypeArena &RArena;
  RExprArena &EArena;
  Interner &Names;
  DiagnosticEngine &Diags;

  InferStore Store;
  uint32_t Level = 0;
  bool Failed = false;

  std::vector<std::pair<Symbol, InfBinding>> Env;
  std::map<TyVarId, std::optional<EffectVar>> TyCtx;
  std::unordered_map<Type *, TyVarId> MLVarIds;
  uint32_t NextTyVarId = 0;

  // Exception signatures in scope: name -> payload mu (null = nullary).
  std::vector<std::pair<Symbol, const Mu *>> ExnSigs;
  // All exception signatures ever declared (for the emitted program).
  std::vector<std::pair<Symbol, const Mu *>> ExnSigsAll;

  // Deferred materialisation data.
  struct PendingInst {
    InstMaps Maps;
    std::vector<RegionVar> SchemeRegions;
    std::vector<EffectVar> SchemeEffects;
  };
  std::unordered_map<const RExpr *, PolyScheme> PendingSchemes;
  std::unordered_map<const RExpr *, PendingInst> PendingInsts;

  unsigned NumLetRegions = 0;
  unsigned NumSchemes = 0;
};

//===----------------------------------------------------------------------===//
// Recursion detection on the surface AST
//===----------------------------------------------------------------------===//

/// True when \p E mentions \p Name as a free variable (shadowing-aware).
bool mentionsVar(const Expr *E, Symbol Name) {
  if (!E)
    return false;
  switch (E->K) {
  case Expr::Kind::Var:
    return E->Name == Name;
  case Expr::Kind::Fn:
    return E->Name != Name && mentionsVar(E->A, Name);
  case Expr::Kind::Let: {
    for (const Dec *D : E->Decs) {
      if (D->K == Dec::Kind::Fun) {
        if (D->Name != Name && D->Param != Name && mentionsVar(D->Body, Name))
          return true;
      } else if (D->K == Dec::Kind::Val) {
        if (mentionsVar(D->Body, Name))
          return true;
      }
      if (D->K != Dec::Kind::Exn && D->Name == Name)
        return false; // shadowed for the remainder of the let
    }
    return mentionsVar(E->A, Name);
  }
  case Expr::Kind::ListCase:
    if (mentionsVar(E->A, Name) || mentionsVar(E->B, Name))
      return true;
    if (E->HeadName == Name || E->TailName == Name)
      return false;
    return mentionsVar(E->C, Name);
  case Expr::Kind::Handle:
    if (mentionsVar(E->A, Name))
      return true;
    if (E->BindName == Name)
      return false;
    return mentionsVar(E->B, Name);
  default:
    if (mentionsVar(E->A, Name) || mentionsVar(E->B, Name) ||
        mentionsVar(E->C, Name))
      return true;
    for (const Expr *Item : E->Items)
      if (mentionsVar(Item, Name))
        return true;
    return false;
  }
}

//===----------------------------------------------------------------------===//
// Delta handling
//===----------------------------------------------------------------------===//

std::vector<DeltaEntry> Inferencer::pushDelta(const TypeScheme &S,
                                              EffectVar FunEps,
                                              bool Recursive) {
  std::vector<DeltaEntry> Delta;
  for (Type *Q : S.Quantified) {
    DeltaEntry D;
    D.MLVar = resolve(Q);
    D.Alpha = tyVarIdFor(D.MLVar);
    bool IsSpurious =
        Opts.Strat == Strategy::Rg && Spurious.SpuriousVars.count(D.MLVar);
    if (IsSpurious) {
      D.ExnForced = Spurious.ExnForcedVars.count(D.MLVar) != 0;
      if (D.ExnForced) {
        // Section 4.4: associate with the global effect variable so that
        // coverage forces instances into global regions.
        D.Eps = EffectVar::global();
      } else if (Recursive) {
        // [TvRec] forbids quantifying variables of frev(Delta): pin the
        // arrow effect so it stays free (shared across instantiations —
        // the live-range cost the paper discusses for identification).
        D.Eps = Store.freshEffect(0);
      } else if (Opts.Spurious == SpuriousMode::IdentifyWithFun &&
                 FunEps.isValid()) {
        D.Eps = FunEps; // type scheme (3)
      } else {
        D.Eps = Store.freshEffect(Level); // type scheme (2)
      }
    }
    TyCtx[D.Alpha] = D.Eps;
    Delta.push_back(D);
  }
  return Delta;
}

void Inferencer::popDelta(const std::vector<DeltaEntry> &Delta) {
  for (const DeltaEntry &D : Delta)
    TyCtx.erase(D.Alpha);
}

//===----------------------------------------------------------------------===//
// Self-call rewriting
//===----------------------------------------------------------------------===//

const RExpr *Inferencer::rewriteSelfCalls(const RExpr *Body, Symbol F,
                                          const PolyScheme &Sch) {
  if (!Body)
    return nullptr;
  switch (Body->K) {
  case RExpr::Kind::Var: {
    if (Body->Name != F)
      return Body;
    // f  ==>  f [identity] at Place (the region-monomorphic self-call).
    RExpr *R = EArena.make(RExpr::Kind::RApp);
    R->Loc = Body->Loc;
    R->A = Body;
    R->AtRho = Sch.Place;
    R->MuOf = RArena.boxed(Sch.Body, Sch.Place);
    PendingInst P;
    for (RegionVar Q : Sch.QRegions) {
      P.Maps.Sr.emplace(Store.find(Q).Id, Store.find(Q));
      P.SchemeRegions.push_back(Q);
    }
    for (EffectVar Q : Sch.QEffects) {
      P.Maps.Se.emplace(Store.find(Q).Id, Store.find(Q));
      P.SchemeEffects.push_back(Q);
    }
    // Identity *type* entries too: composing with an outer instantiation
    // then carries the outer type substitution into the self-call (the
    // paper's TvRec re-typing, made syntax-directed).
    for (const DeltaEntry &De : Sch.Delta)
      P.Maps.St.emplace(De.Alpha, RArena.tyVar(De.Alpha));
    PendingInsts.emplace(R, std::move(P));
    return R;
  }
  case RExpr::Kind::Lam:
  case RExpr::Kind::ClosVal:
    if (Body->Param == F)
      return Body;
    break;
  case RExpr::Kind::FunBind:
  case RExpr::Kind::FunVal:
    if (Body->Param == F || Body->Name == F)
      return Body;
    break;
  case RExpr::Kind::Let: {
    const RExpr *A = rewriteSelfCalls(Body->A, F, Sch);
    const RExpr *B = Body->Name == F ? Body->B : rewriteSelfCalls(Body->B, F, Sch);
    if (A == Body->A && B == Body->B)
      return Body;
    RExpr *N = EArena.clone(Body);
    N->A = A;
    N->B = B;
    return N;
  }
  case RExpr::Kind::ListCase: {
    const RExpr *A = rewriteSelfCalls(Body->A, F, Sch);
    const RExpr *B = rewriteSelfCalls(Body->B, F, Sch);
    const RExpr *C = (Body->HeadName == F || Body->TailName == F)
                         ? Body->C
                         : rewriteSelfCalls(Body->C, F, Sch);
    if (A == Body->A && B == Body->B && C == Body->C)
      return Body;
    RExpr *N = EArena.clone(Body);
    N->A = A;
    N->B = B;
    N->C = C;
    return N;
  }
  case RExpr::Kind::Handle:
    if (Body->BindName == F) {
      const RExpr *A = rewriteSelfCalls(Body->A, F, Sch);
      if (A == Body->A)
        return Body;
      RExpr *N = EArena.clone(Body);
      N->A = A;
      return N;
    }
    break;
  default:
    break;
  }
  const RExpr *A = rewriteSelfCalls(Body->A, F, Sch);
  const RExpr *B = rewriteSelfCalls(Body->B, F, Sch);
  const RExpr *C = rewriteSelfCalls(Body->C, F, Sch);
  bool Changed = A != Body->A || B != Body->B || C != Body->C;
  std::vector<const RExpr *> Items = Body->Items;
  for (size_t I = 0; I < Items.size(); ++I) {
    const RExpr *NI = rewriteSelfCalls(Items[I], F, Sch);
    Changed |= NI != Items[I];
    Items[I] = NI;
  }
  if (!Changed)
    return Body;
  RExpr *N = EArena.clone(Body);
  N->A = A;
  N->B = B;
  N->C = C;
  N->Items = std::move(Items);
  // Cloned nodes must keep their deferred materialisation records.
  if (N->K == RExpr::Kind::FunBind) {
    auto It = PendingSchemes.find(Body);
    if (It != PendingSchemes.end())
      PendingSchemes.emplace(N, It->second);
  }
  if (N->K == RExpr::Kind::RApp) {
    auto It = PendingInsts.find(Body);
    if (It != PendingInsts.end())
      PendingInsts.emplace(N, It->second);
  }
  return N;
}

} // namespace

//===----------------------------------------------------------------------===//
// Entry point (implementation continues in this file)
//===----------------------------------------------------------------------===//

#include "rinfer/InferExpr.inc"

std::optional<InferResult>
rml::inferRegions(const Program &P, const TypeInfo &Types,
                  const SpuriousInfo &Spurious, const InferOptions &Opts,
                  RTypeArena &RArena, RExprArena &EArena, Interner &Names,
                  DiagnosticEngine &Diags) {
  Inferencer I(Types, Spurious, Opts, RArena, EArena, Names, Diags);
  return I.run(P);
}
