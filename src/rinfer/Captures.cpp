//===- rinfer/Captures.cpp ------------------------------------------------===//

#include "rinfer/Captures.h"

#include "region/RegionType.h"

#include <algorithm>
#include <set>

using namespace rml;

namespace {

/// Collects the free region variables of the types of \p E's free
/// program-variable occurrences. The binder scoping mirrors freeVars
/// (region/RExpr.cpp) exactly: a symbol bound between the closure and
/// the occurrence is not captured.
void collectValueRegions(const RExpr *E, std::vector<Symbol> &Bound,
                         std::set<uint32_t> &Out) {
  if (!E)
    return;
  auto IsBound = [&](Symbol S) {
    return std::find(Bound.begin(), Bound.end(), S) != Bound.end();
  };

  switch (E->K) {
  case RExpr::Kind::Var:
    if (!IsBound(E->Name) && E->MuOf)
      for (RegionVar R : frevOf(E->MuOf).regions())
        if (R.Id != 0)
          Out.insert(R.Id);
    return;
  case RExpr::Kind::Lam:
  case RExpr::Kind::ClosVal: {
    Bound.push_back(E->Param);
    collectValueRegions(E->A, Bound, Out);
    Bound.pop_back();
    return;
  }
  case RExpr::Kind::FunBind:
  case RExpr::Kind::FunVal: {
    Bound.push_back(E->Name);
    Bound.push_back(E->Param);
    collectValueRegions(E->A, Bound, Out);
    Bound.pop_back();
    Bound.pop_back();
    return;
  }
  case RExpr::Kind::Let: {
    collectValueRegions(E->A, Bound, Out);
    Bound.push_back(E->Name);
    collectValueRegions(E->B, Bound, Out);
    Bound.pop_back();
    return;
  }
  case RExpr::Kind::ListCase: {
    collectValueRegions(E->A, Bound, Out);
    collectValueRegions(E->B, Bound, Out);
    Bound.push_back(E->HeadName);
    Bound.push_back(E->TailName);
    collectValueRegions(E->C, Bound, Out);
    Bound.pop_back();
    Bound.pop_back();
    return;
  }
  case RExpr::Kind::Handle: {
    collectValueRegions(E->A, Bound, Out);
    if (E->BindName.isValid())
      Bound.push_back(E->BindName);
    collectValueRegions(E->B, Bound, Out);
    if (E->BindName.isValid())
      Bound.pop_back();
    return;
  }
  default:
    collectValueRegions(E->A, Bound, Out);
    collectValueRegions(E->B, Bound, Out);
    collectValueRegions(E->C, Bound, Out);
    for (const RExpr *Item : E->Items)
      collectValueRegions(Item, Bound, Out);
    return;
  }
}

/// The latent arrow effect's region set. For a lambda that is the
/// recorded nu; for a fun binding the scheme body's nu minus the
/// scheme's own quantifiers (those regions are formals, instantiated
/// per application, not captures).
std::vector<uint32_t> latentRegions(const RExpr *E) {
  Effect Latent;
  if (E->K == RExpr::Kind::Lam) {
    Latent = E->LatentNu.frev();
  } else if (E->Sigma.Body && E->Sigma.Body->K == Tau::Kind::Arrow) {
    Latent = E->Sigma.Body->Nu.frev().minus(E->Sigma.boundVars());
  }
  std::vector<uint32_t> Out;
  for (RegionVar R : Latent.regions())
    if (R.Id != 0)
      Out.push_back(R.Id);
  return Out;
}

/// Enumerates closures in exactly the flattener's FnPass pre-order
/// (flat/Flat.cpp), so CaptureInfo::Closures[i] describes
/// FlatUnit::Fns[i].
void walk(const RExpr *E, CaptureInfo &Info) {
  if (!E)
    return;
  switch (E->K) {
  case RExpr::Kind::Lam:
  case RExpr::Kind::FunBind: {
    ClosureCapture C;
    C.IsFun = E->K == RExpr::Kind::FunBind;
    if (C.IsFun)
      C.Self = E->Name;
    C.Param = E->Param;
    std::vector<Symbol> Bound;
    std::set<uint32_t> Value;
    if (C.IsFun)
      Bound.push_back(E->Name);
    Bound.push_back(E->Param);
    collectValueRegions(E->A, Bound, Value);
    C.ViaValue.assign(Value.begin(), Value.end());
    C.ViaEffect = latentRegions(E);
    Info.Closures.push_back(std::move(C));
    walk(E->A, Info);
    return;
  }
  default:
    walk(E->A, Info);
    walk(E->B, Info);
    walk(E->C, Info);
    for (const RExpr *Item : E->Items)
      walk(Item, Info);
    return;
  }
}

void appendRegionSet(std::string &Out, const std::vector<uint32_t> &Rs) {
  Out += '{';
  for (size_t I = 0; I < Rs.size(); ++I) {
    if (I)
      Out += ',';
    Out += 'r';
    Out += std::to_string(Rs[I]);
  }
  Out += '}';
}

} // namespace

CaptureInfo rml::analyzeCaptures(const RProgram &P) {
  CaptureInfo Info;
  walk(P.Root, Info);
  return Info;
}

std::string
rml::renderCaptureReport(Strategy Strat,
                         const std::vector<CaptureReportRow> &Rows) {
  std::string Out = "captures v1 strategy=";
  Out += strategyName(Strat);
  Out += " closures=" + std::to_string(Rows.size()) + "\n";

  std::set<uint32_t> Distinct;
  size_t Escaping = 0;
  for (size_t I = 0; I < Rows.size(); ++I) {
    const CaptureReportRow &R = Rows[I];
    Out += '#' + std::to_string(I) + ' ';
    if (R.IsFun) {
      Out += "fun ";
      Out += R.Self.empty() ? "_" : R.Self;
    } else {
      Out += "lam";
    }
    Out += '(';
    Out += R.Param.empty() ? "_" : R.Param;
    Out += ") value=";
    appendRegionSet(Out, R.ViaValue);
    Out += " latent=";
    appendRegionSet(Out, R.ViaEffect);
    Distinct.insert(R.ViaValue.begin(), R.ViaValue.end());
    Distinct.insert(R.ViaEffect.begin(), R.ViaEffect.end());
    // The GC-safety residue: value-captured regions the latent effect
    // does not promise to keep alive. Empty under rg by construction;
    // under rg- this is the observable unsoundness window.
    std::vector<uint32_t> Residue;
    std::set_difference(R.ViaValue.begin(), R.ViaValue.end(),
                        R.ViaEffect.begin(), R.ViaEffect.end(),
                        std::back_inserter(Residue));
    if (!Residue.empty()) {
      Out += " escaped=";
      appendRegionSet(Out, Residue);
      Escaping += Residue.size();
    }
    Out += '\n';
  }
  Out += "total closures=" + std::to_string(Rows.size()) +
         " regions=" + std::to_string(Distinct.size()) +
         " escaped=" + std::to_string(Escaping) + "\n";
  return Out;
}

std::vector<CaptureReportRow>
rml::captureReportRows(const CaptureInfo &Info, const Interner &Names) {
  std::vector<CaptureReportRow> Rows;
  Rows.reserve(Info.Closures.size());
  for (const ClosureCapture &C : Info.Closures) {
    CaptureReportRow R;
    R.IsFun = C.IsFun;
    if (C.Self.isValid())
      R.Self = std::string(Names.text(C.Self));
    if (C.Param.isValid())
      R.Param = std::string(Names.text(C.Param));
    R.ViaValue = C.ViaValue;
    R.ViaEffect = C.ViaEffect;
    Rows.push_back(std::move(R));
  }
  return Rows;
}
