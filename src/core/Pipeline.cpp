//===- core/Pipeline.cpp --------------------------------------------------===//

#include "core/Pipeline.h"

#include "rt/FlatEval.h"

#include <unordered_set>

using namespace rml;

PhaseGovernor::~PhaseGovernor() = default;

//===----------------------------------------------------------------------===//
// The phase registry and the individual steps
//===----------------------------------------------------------------------===//

const std::vector<Compiler::PhaseDef> &Compiler::staticPhaseRegistry() {
  // Const and magic-static-initialised: safe to read from any number of
  // threads (see the thread-safety contract in Pipeline.h).
  static const std::vector<PhaseDef> Registry = {
      {"parse", &Compiler::phaseParse},
      {"typecheck", &Compiler::phaseTypecheck},
      {"spurious", &Compiler::phaseSpurious},
      {"infer", &Compiler::phaseInfer},
      {"check", &Compiler::phaseCheck},
      {"multiplicity", &Compiler::phaseMultiplicity},
      {"kinds", &Compiler::phaseKinds},
      {"drops", &Compiler::phaseDrops},
      {"captures", &Compiler::phaseCaptures},
      {"flatten", &Compiler::phaseFlatten},
  };
  return Registry;
}

std::vector<std::string> Compiler::staticPhaseNames() {
  std::vector<std::string> Names;
  Names.reserve(staticPhaseRegistry().size());
  for (const PhaseDef &PD : staticPhaseRegistry())
    Names.push_back(PD.Name);
  return Names;
}

bool Compiler::phaseParse(std::string_view Source, CompiledUnit &Unit) {
  std::optional<Program> P = parseString(Source, Ast, Names, Diags);
  if (!P)
    return false;
  Unit.Ast = std::move(*P);
  // Lint: a top-level binding that reuses an earlier top-level name
  // silently shadows it — legal, but in a serving setting it is almost
  // always a copy-paste slip, and scheme queries only ever see the
  // outermost binding. Exceptions declare constructors, not values, so
  // they are exempt.
  std::unordered_set<Symbol> Seen;
  for (const Dec *D : Unit.Ast.Decs) {
    if (D->K == Dec::Kind::Exn)
      continue;
    if (!Seen.insert(D->Name).second)
      Diags.warning(D->Loc, "top-level binding '" + Names.text(D->Name) +
                                "' shadows an earlier binding of the same "
                                "name");
  }
  return true;
}

bool Compiler::phaseTypecheck(std::string_view, CompiledUnit &Unit) {
  return checkProgram(Unit.Ast, Types, Names, Diags, Unit.Types);
}

bool Compiler::phaseSpurious(std::string_view, CompiledUnit &Unit) {
  Unit.Spurious = analyzeSpurious(Unit.Ast, Unit.Types);
  return true;
}

bool Compiler::phaseInfer(std::string_view, CompiledUnit &Unit) {
  InferOptions IOpts;
  IOpts.Strat = Unit.Options.Strat;
  IOpts.Spurious = Unit.Options.Spurious;
  std::optional<InferResult> Inf =
      inferRegions(Unit.Ast, Unit.Types, Unit.Spurious, IOpts, RTypes,
                   RExprs, Names, Diags);
  if (!Inf)
    return false;
  Unit.Inferred = std::move(*Inf);
  return true;
}

bool Compiler::phaseCheck(std::string_view, CompiledUnit &Unit) {
  // The GC-safety side conditions are exactly what rg guarantees; the
  // rg- and r strategies produce Tofte-Talpin-correct programs that may
  // harbour dangling pointers, so they are checked with safety off.
  GcSafety Safety =
      Unit.Options.Strat == Strategy::Rg ? GcSafety::On : GcSafety::Off;
  Unit.Checked =
      checkRProgram(Unit.Inferred.Prog, RTypes, Names, Diags, Safety);
  return Unit.Checked.has_value();
}

bool Compiler::phaseMultiplicity(std::string_view, CompiledUnit &Unit) {
  Unit.Mult = analyzeMultiplicity(Unit.Inferred.Prog);
  return true;
}

bool Compiler::phaseKinds(std::string_view, CompiledUnit &Unit) {
  Unit.Kinds = analyzeRegionKinds(Unit.Inferred.Prog);
  return true;
}

bool Compiler::phaseDrops(std::string_view, CompiledUnit &Unit) {
  Unit.Drops = analyzeDropRegions(Unit.Inferred.Prog);
  return true;
}

bool Compiler::phaseCaptures(std::string_view, CompiledUnit &Unit) {
  Unit.Captures = analyzeCaptures(Unit.Inferred.Prog);
  return true;
}

bool Compiler::phaseFlatten(std::string_view, CompiledUnit &Unit) {
  // The last static phase: every analysis the runtime consults is
  // resolved into the self-contained flat form the caches persist —
  // including, when the captures phase ran, its per-closure table.
  Unit.Flat = std::make_shared<flat::FlatUnit>(flat::flattenProgram(
      Unit.Inferred.Prog, Unit.Inferred.RootMu, Unit.Mult, Unit.Kinds,
      Unit.Drops, Names, Unit.Options.Strat,
      Unit.Captures ? &*Unit.Captures : nullptr));
  return true;
}

//===----------------------------------------------------------------------===//
// The phase manager
//===----------------------------------------------------------------------===//

std::unique_ptr<CompiledUnit> Compiler::compile(std::string_view Source,
                                                const CompileOptions &Opts) {
  Diags.clear();
  LastProfiles.clear();
  CutOff = false;
  auto Unit = std::make_unique<CompiledUnit>();
  Unit->Options = Opts;

  for (const PhaseDef &PD : staticPhaseRegistry()) {
    size_t NodesBefore = arenaFootprint().total();
    size_t DiagsBefore = Diags.all().size();
    // Optional phases stay in the profile list (the phase shape is
    // stable across options) marked Skipped.
    bool Skip = (PD.Run == &Compiler::phaseCheck && !Opts.Check) ||
                (PD.Run == &Compiler::phaseCaptures && !Opts.Captures);
    bool Ok = true;
    {
      PhaseTimer Timer(PD.Name, Sink);
      if (!Skip)
        Ok = (this->*PD.Run)(Source, *Unit);
      PhaseProfile &P = Timer.stop();
      if (Skip) {
        // A skipped phase costs nothing: the few clock ticks the timer
        // itself took would otherwise leak into every aggregate.
        P.Skipped = true;
        P.WallNanos = 0;
      }
      P.DiagnosticsEmitted = Diags.all().size() - DiagsBefore;
      P.ArenaNodeDelta = arenaFootprint().total() - NodesBefore;
      LastProfiles.push_back(P);
      // Timer's destructor forwards the finished profile to the sink.
    }
    if (!Ok)
      return nullptr; // early exit: later phases never run or record
    // The budget check sits at the phase boundary: an over-budget phase
    // finishes (its profile records the real cost) and then the
    // governor cuts the pipeline off before the next phase starts.
    if (Governor && !Governor->keepGoing(LastProfiles.back())) {
      CutOff = true;
      return nullptr;
    }
  }

  Unit->Profiles = LastProfiles;
  return Unit;
}

rt::RunResult Compiler::run(const CompiledUnit &Unit,
                            rt::EvalOptions EvalOpts) const {
  PhaseTimer Timer(RunPhaseName, Sink);
  if (Unit.Options.Strat == Strategy::R)
    EvalOpts.GcEnabled = false;
  // Exact dangling detection and cross-request page pooling are
  // mutually exclusive: a pooled page could be handed to another run
  // while the detector can still attribute it to a dead region.
  if (EvalOpts.RetainReleasedPages)
    EvalOpts.SharedPool = nullptr;
  rt::RunResult R =
      rt::runProgram(Unit.program(), Unit.rootMu(), Unit.Mult, Unit.Kinds,
                     Unit.Drops, Names, EvalOpts);
  PhaseProfile &P = Timer.stop();
  P.GcCount = R.Heap.GcCount;
  P.AllocWords = R.Heap.AllocWords;
  P.CopiedWords = R.Heap.CopiedWords;
  // Fold the run's collector stalls into the profile so the sink (and
  // anyone reading RunResult::Phase) sees them nested inside this span.
  P.GcPauses = R.GcPauses;
  R.Phase = P;
  return R;
}

rt::RunResult Compiler::runFlat(const flat::FlatUnit &Flat,
                                rt::EvalOptions EvalOpts, TraceSink *Sink) {
  PhaseTimer Timer(RunPhaseName, Sink);
  if (static_cast<Strategy>(Flat.Strat) == Strategy::R)
    EvalOpts.GcEnabled = false;
  // Same quarantine rule as run(): exact dangling detection and
  // cross-request page pooling are mutually exclusive.
  if (EvalOpts.RetainReleasedPages)
    EvalOpts.SharedPool = nullptr;
  rt::RunResult R = rt::runFlatUnit(Flat, EvalOpts);
  PhaseProfile &P = Timer.stop();
  P.GcCount = R.Heap.GcCount;
  P.AllocWords = R.Heap.AllocWords;
  P.CopiedWords = R.Heap.CopiedWords;
  P.GcPauses = R.GcPauses;
  R.Phase = P;
  return R;
}

CompileAndRunResult Compiler::compileAndRun(std::string_view Source,
                                            const CompileOptions &Opts,
                                            rt::EvalOptions EvalOpts) {
  CompileAndRunResult Out;
  Out.Unit = compile(Source, Opts);
  if (Out.Unit)
    Out.Run = run(*Out.Unit, EvalOpts);
  return Out;
}

Compiler::ArenaFootprint Compiler::arenaFootprint() const {
  ArenaFootprint F;
  F.AstNodes = Ast.exprCount();
  F.TypeNodes = Types.size();
  F.RTypeNodes = RTypes.size();
  F.RExprNodes = RExprs.size();
  return F;
}

std::string Compiler::printProgram(const CompiledUnit &Unit) const {
  return printRExpr(Unit.program().Root, Names);
}

namespace {

/// Finds the FunBind bound under \p Name along the top-level let chain.
const RExpr *findTopLevelFun(const RExpr *Root, Symbol Name) {
  const RExpr *E = Root;
  while (E) {
    if (E->K == RExpr::Kind::LetRegion) {
      E = E->A;
      continue;
    }
    if (E->K == RExpr::Kind::Let) {
      if (E->Name == Name && E->A && E->A->K == RExpr::Kind::FunBind)
        return E->A;
      E = E->B;
      continue;
    }
    return nullptr;
  }
  return nullptr;
}

} // namespace

std::string Compiler::schemeOf(const CompiledUnit &Unit,
                               std::string_view Name) const {
  // A name that was never interned cannot be bound in the unit, so the
  // const lookup suffices and shared read-only units stay untouched.
  std::optional<Symbol> S = Names.lookup(Name);
  if (!S)
    return "";
  const RExpr *Fun = findTopLevelFun(Unit.program().Root, *S);
  if (!Fun)
    return "";
  return printScheme(Fun->Sigma);
}

std::string Compiler::captureReport(const CompiledUnit &Unit) const {
  if (!Unit.Captures)
    return "";
  return renderCaptureReport(Unit.Options.Strat,
                             captureReportRows(*Unit.Captures, Names));
}

std::vector<std::pair<std::string, std::string>>
Compiler::topLevelSchemes(const CompiledUnit &Unit) const {
  // The same walk as findTopLevelFun, collecting every function binding;
  // first-wins dedupe matches its outermost-binding-wins semantics.
  std::vector<std::pair<std::string, std::string>> Out;
  std::unordered_set<Symbol> Seen;
  const RExpr *E = Unit.program().Root;
  while (E) {
    if (E->K == RExpr::Kind::LetRegion) {
      E = E->A;
      continue;
    }
    if (E->K == RExpr::Kind::Let) {
      if (E->A && E->A->K == RExpr::Kind::FunBind && Seen.insert(E->Name).second)
        Out.emplace_back(Names.text(E->Name), printScheme(E->A->Sigma));
      E = E->B;
      continue;
    }
    break;
  }
  return Out;
}
