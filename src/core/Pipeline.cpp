//===- core/Pipeline.cpp --------------------------------------------------===//

#include "core/Pipeline.h"

using namespace rml;

std::unique_ptr<CompiledUnit> Compiler::compile(std::string_view Source,
                                                const CompileOptions &Opts) {
  Diags.clear();
  auto Unit = std::make_unique<CompiledUnit>();
  Unit->Options = Opts;

  std::optional<Program> P = parseString(Source, Ast, Names, Diags);
  if (!P)
    return nullptr;
  Unit->Ast = std::move(*P);

  if (!checkProgram(Unit->Ast, Types, Names, Diags, Unit->Types))
    return nullptr;

  Unit->Spurious = analyzeSpurious(Unit->Ast, Unit->Types);

  InferOptions IOpts;
  IOpts.Strat = Opts.Strat;
  IOpts.Spurious = Opts.Spurious;
  std::optional<InferResult> Inf =
      inferRegions(Unit->Ast, Unit->Types, Unit->Spurious, IOpts, RTypes,
                   RExprs, Names, Diags);
  if (!Inf)
    return nullptr;
  Unit->Inferred = std::move(*Inf);

  if (Opts.Check) {
    // The GC-safety side conditions are exactly what rg guarantees; the
    // rg- and r strategies produce Tofte-Talpin-correct programs that may
    // harbour dangling pointers, so they are checked with safety off.
    GcSafety Safety =
        Opts.Strat == Strategy::Rg ? GcSafety::On : GcSafety::Off;
    Unit->Checked = checkRProgram(Unit->Inferred.Prog, RTypes, Names, Diags,
                                  Safety);
    if (!Unit->Checked)
      return nullptr;
  }

  Unit->Mult = analyzeMultiplicity(Unit->Inferred.Prog);
  Unit->Kinds = analyzeRegionKinds(Unit->Inferred.Prog);
  Unit->Drops = analyzeDropRegions(Unit->Inferred.Prog);
  return Unit;
}

rt::RunResult Compiler::run(const CompiledUnit &Unit,
                            rt::EvalOptions EvalOpts) const {
  if (Unit.Options.Strat == Strategy::R)
    EvalOpts.GcEnabled = false;
  // Exact dangling detection and cross-request page pooling are
  // mutually exclusive: a pooled page could be handed to another run
  // while the detector can still attribute it to a dead region.
  if (EvalOpts.RetainReleasedPages)
    EvalOpts.SharedPool = nullptr;
  return rt::runProgram(Unit.program(), Unit.rootMu(), Unit.Mult, Unit.Kinds,
                        Unit.Drops, Names, EvalOpts);
}

CompileAndRunResult Compiler::compileAndRun(std::string_view Source,
                                            const CompileOptions &Opts,
                                            rt::EvalOptions EvalOpts) {
  CompileAndRunResult Out;
  Out.Unit = compile(Source, Opts);
  if (Out.Unit)
    Out.Run = run(*Out.Unit, EvalOpts);
  return Out;
}

Compiler::ArenaFootprint Compiler::arenaFootprint() const {
  ArenaFootprint F;
  F.AstNodes = Ast.exprCount();
  F.TypeNodes = Types.size();
  F.RTypeNodes = RTypes.size();
  F.RExprNodes = RExprs.size();
  return F;
}

std::string Compiler::printProgram(const CompiledUnit &Unit) const {
  return printRExpr(Unit.program().Root, Names);
}

namespace {

/// Finds the FunBind bound under \p Name along the top-level let chain.
const RExpr *findTopLevelFun(const RExpr *Root, Symbol Name) {
  const RExpr *E = Root;
  while (E) {
    if (E->K == RExpr::Kind::LetRegion) {
      E = E->A;
      continue;
    }
    if (E->K == RExpr::Kind::Let) {
      if (E->Name == Name && E->A && E->A->K == RExpr::Kind::FunBind)
        return E->A;
      E = E->B;
      continue;
    }
    return nullptr;
  }
  return nullptr;
}

} // namespace

std::string Compiler::schemeOf(const CompiledUnit &Unit,
                               std::string_view Name) const {
  // A name that was never interned cannot be bound in the unit, so the
  // const lookup suffices and shared read-only units stay untouched.
  std::optional<Symbol> S = Names.lookup(Name);
  if (!S)
    return "";
  const RExpr *Fun = findTopLevelFun(Unit.program().Root, *S);
  if (!Fun)
    return "";
  return printScheme(Fun->Sigma);
}
