//===- core/Pipeline.h - The RegionML public API ----------------*- C++ -*-===//
//
// Part of RegionML, a reproduction of "Garbage-Collection Safety for
// Region-Based Type-Polymorphic Programs" (Elsman, PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The library's front door. A Compiler owns all arenas and runs the full
/// pipeline over a MiniML source string:
///
///   parse -> Hindley-Milner typing -> spurious-type-variable analysis
///         -> region inference (strategy rg / rg- / r)
///         -> region type check (GC-safe rules of Figure 4)
///         -> region-representation analyses (multiplicity, drop, kinds)
///         -> execution on the region runtime with reference-tracing GC
///
/// Typical use:
/// \code
///   rml::Compiler C;
///   auto Unit = C.compile(Source, {rml::Strategy::Rg});
///   if (!Unit) { /* C.diagnostics() */ }
///   auto Run = C.run(*Unit);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef RML_CORE_PIPELINE_H
#define RML_CORE_PIPELINE_H

#include "ast/Ast.h"
#include "ast/Parser.h"
#include "flat/Flat.h"
#include "rcheck/Check.h"
#include "region/RExpr.h"
#include "rinfer/Captures.h"
#include "rinfer/DropRegions.h"
#include "rinfer/Infer.h"
#include "rinfer/Multiplicity.h"
#include "rinfer/RegionKinds.h"
#include "rinfer/Spurious.h"
#include "rinfer/Strategy.h"
#include "rt/Eval.h"
#include "support/Diagnostics.h"
#include "support/Interner.h"
#include "support/Trace.h"
#include "types/Type.h"
#include "types/TypeCheck.h"

#include <memory>
#include <optional>
#include <string>

namespace rml {

/// Budget policy consulted at phase boundaries. compile() asks after
/// every finished phase whether to keep going; a refusal stops the
/// pipeline exactly like a failed phase (nullptr, profiles up to and
/// including the over-budget phase), but without emitting diagnostics —
/// the governor owns the messaging. The service's Executor implements
/// this over ServiceConfig::PhaseBudgets.
///
/// The hook doubles as the pipeline's per-phase *observation stream*:
/// compile() guarantees keepGoing() fires exactly once per finished
/// phase, in execution order, Skipped phases included (with zero cost),
/// stopping only at a phase that fails outright (its profile never
/// reaches the hook — the early diagnostic exit predates the governor).
/// Observers that harvest per-phase cost distributions — the service
/// CostModel's quantile rings, from which --auto-budget derives default
/// budgets — ride on this contract rather than on a second callback.
class PhaseGovernor {
public:
  virtual ~PhaseGovernor();
  /// \returns false to cut compilation off at this phase boundary.
  /// \p P is the finished phase's profile (name, wall nanos, Skipped).
  /// Called exactly once per finished phase (see the class comment), so
  /// implementations may also treat it as an observation point.
  virtual bool keepGoing(const PhaseProfile &P) = 0;
};

/// Options for one compilation.
struct CompileOptions {
  Strategy Strat = Strategy::Rg;
  SpuriousMode Spurious = SpuriousMode::FreshSecondary;
  /// Validate the region-annotated program with the Figure 4 checker
  /// (GC-safety conditions enabled iff the strategy is rg).
  bool Check = true;
  /// Run the capture-tracking analysis (rinfer/Captures.h): per-closure
  /// captured-region sets, rendered by Compiler::captureReport and
  /// persisted through the caches. Off by default — the phase stays in
  /// the profile list marked Skipped, like an unchecked "check".
  bool Captures = false;
};

/// Everything produced by a successful compilation.
struct CompiledUnit {
  CompileOptions Options;
  Program Ast;
  TypeInfo Types;
  SpuriousInfo Spurious;
  InferResult Inferred;
  MultiplicityInfo Mult;
  RegionKindInfo Kinds;
  DropInfo Drops;
  /// Per-closure captured-region table (the "captures" phase); only set
  /// when Options.Captures. Closure order matches Flat->Fns, and the
  /// flatten phase embeds the same table in the flat unit so the report
  /// survives serialisation.
  std::optional<CaptureInfo> Captures;
  /// The flat, offset-based form of the program (built by the "flatten"
  /// phase): directly executable (Compiler::runFlat / rt::runFlatUnit)
  /// and what the disk cache persists to make warm restarts runnable.
  /// Shared, not owned — the service caches hand the same unit to the
  /// in-memory tier, the disk tier and concurrent runs.
  std::shared_ptr<const flat::FlatUnit> Flat;
  /// Region type and effect of the whole program (from the checker; only
  /// set when Options.Check).
  std::optional<CheckResult> Checked;
  /// One profile per static phase, in registry order (see
  /// Compiler::staticPhaseNames()); the "check" entry is marked Skipped
  /// when Options.Check is off and "captures" when Options.Captures is
  /// off. The runtime phase is not here — each run() returns its own
  /// profile in rt::RunResult::Phase.
  std::vector<PhaseProfile> Profiles;

  const RProgram &program() const { return Inferred.Prog; }
  const Mu *rootMu() const { return Inferred.RootMu; }
};

/// The result of Compiler::compileAndRun: the unit (null if compilation
/// failed — see Compiler::diagnostics()) plus, when compilation
/// succeeded, the runtime result.
struct CompileAndRunResult {
  std::unique_ptr<CompiledUnit> Unit;
  rt::RunResult Run; // meaningful only when Unit is non-null

  bool ok() const { return Unit && Run.Outcome == rt::RunOutcome::Ok; }
};

/// The pipeline owner. Not thread-safe; one Compiler per thread.
///
/// Thread-safety contract (relied on by src/service):
///  * Two Compiler instances share no mutable state — every arena, the
///    interner and the diagnostic engine are per-instance members, and
///    the library keeps no mutable globals (the only function-local
///    statics — the benchmark corpus in bench/Programs.cpp and the
///    phase registry in core/Pipeline.cpp — are const and initialised
///    under C++11 magic-statics). Distinct Compilers on distinct
///    threads never race, and identical inputs produce bit-identical
///    outputs.
///  * compile() mutates this Compiler and must stay on one thread, but
///    the mutating entry points are exactly compile()/compileAndRun();
///    run(), printProgram() and schemeOf() are const and touch only the
///    unit and const interner state. Once a compile has returned, any
///    number of threads may concurrently run()/print a CompiledUnit
///    provided no thread calls compile() on the owner in the meantime.
///    The service layer's compile cache freezes one Compiler per cached
///    unit to make shared units immutable by construction.
///  * Arenas grow monotonically: compiling N sources through one
///    Compiler keeps every previously returned CompiledUnit valid, at
///    the cost of memory linear in the total source compiled (see
///    arenaFootprint()). Long-lived single-Compiler loops should either
///    accept that linear growth or recycle the Compiler; the service
///    layer instead uses one short-lived Compiler per cache entry.
class Compiler {
public:
  Compiler() = default;

  /// Runs the static pipeline: the registered phases (see
  /// staticPhaseNames()) in order, stopping at the first phase that
  /// fails — exactly the historical early-exit-on-diagnostics
  /// behaviour. Returns nullptr after recording diagnostics (see
  /// diagnostics()); the profiles of the phases that did run — failed
  /// compiles stop the list at the failing phase — are available via
  /// lastPhaseProfiles().
  std::unique_ptr<CompiledUnit> compile(std::string_view Source,
                                        const CompileOptions &Opts = {});

  /// The registered static phases, in execution order. The runtime
  /// phase (RunPhaseName) is appended by run(), not listed here.
  static std::vector<std::string> staticPhaseNames();

  /// The name of the runtime phase run() profiles.
  static constexpr const char *RunPhaseName = "run";

  /// Profiles of the most recent compile() on this instance, in phase
  /// order; a failed compile records up to and including the failing
  /// phase and nothing after it.
  const std::vector<PhaseProfile> &lastPhaseProfiles() const {
    return LastProfiles;
  }

  /// Forwards every finished phase profile (static phases and run())
  /// to \p S. Null (the default) disables forwarding at zero cost.
  /// The sink must outlive the Compiler and, because run() may be
  /// called concurrently from several threads, must be thread-safe
  /// (ChromeTraceSink and NoopTraceSink are).
  void setTraceSink(TraceSink *S) { Sink = S; }

  /// Installs (or, with null, removes) the budget policy compile()
  /// consults at every phase boundary. Non-owning: the governor must
  /// outlive every compile() it governs, so owners with stack-local
  /// governors (the service Executor) must clear it before the Compiler
  /// escapes their scope. wasCutOff() distinguishes a governor stop
  /// from an ordinary failed compile.
  void setPhaseGovernor(PhaseGovernor *G) { Governor = G; }

  /// True iff the most recent compile() on this instance was stopped by
  /// the phase governor rather than finishing or failing on its own.
  bool wasCutOff() const { return CutOff; }

  /// Executes a compiled unit on the region runtime. GC is enabled
  /// unless the unit was compiled with Strategy::R. Const: safe to call
  /// concurrently from several threads on the same unit (each run gets
  /// its own heap). EvalOpts.SharedPool lets concurrent runs recycle
  /// standard region pages through one rt::PagePool; it is ignored when
  /// EvalOpts.RetainReleasedPages asks for exact dangling detection.
  rt::RunResult run(const CompiledUnit &Unit,
                    rt::EvalOptions EvalOpts = {}) const;

  /// Executes a flat unit — same contract and RunResult shape as run(),
  /// including the "run" PhaseProfile and the Strategy::R GC gate — but
  /// needs no Compiler instance at all: this is how disk-cache hits run
  /// without recompiling. Static because a decoded FlatUnit is
  /// self-contained (its own string table, resolved region facts).
  static rt::RunResult runFlat(const flat::FlatUnit &Flat,
                               rt::EvalOptions EvalOpts = {},
                               TraceSink *Sink = nullptr);

  /// compile() followed by run() — the one-call form the service workers
  /// and the batch driver use. Result.Unit is null on compile failure.
  CompileAndRunResult compileAndRun(std::string_view Source,
                                    const CompileOptions &Opts = {},
                                    rt::EvalOptions EvalOpts = {});

  /// Renders the region-annotated program (Figure 2 style).
  std::string printProgram(const CompiledUnit &Unit) const;

  /// The region type scheme a top-level declaration received, rendered in
  /// the paper's notation; empty if the name is unknown or monomorphic.
  /// Purely const (no interning), so safe on shared read-only units.
  std::string schemeOf(const CompiledUnit &Unit, std::string_view Name) const;

  /// Every top-level function binding's (name, rendered scheme),
  /// outermost first with later rebindings of a name dropped — exactly
  /// the per-name answers schemeOf() gives, enumerated in one pass.
  /// Purely const; the service's cache persists this table so scheme
  /// queries answer byte-identically across tiers and process restarts.
  std::vector<std::pair<std::string, std::string>>
  topLevelSchemes(const CompiledUnit &Unit) const;

  /// The rendered capture report (rinfer/Captures.h) of a unit compiled
  /// with Options.Captures; empty otherwise. Purely const, and
  /// byte-identical to flat::renderCaptureReport over the unit's flat
  /// form — the property the differential suites pin across cache
  /// tiers and process restarts.
  std::string captureReport(const CompiledUnit &Unit) const;

  DiagnosticEngine &diagnostics() { return Diags; }
  Interner &names() { return Names; }
  const Interner &names() const { return Names; }

  /// How many nodes the per-Compiler arenas hold. Grows linearly with
  /// the total amount of source compiled through this instance (nothing
  /// is freed until the Compiler dies); tests/service_test.cpp pins the
  /// growth to be per-compile constant for a fixed program.
  struct ArenaFootprint {
    size_t AstNodes = 0;
    size_t TypeNodes = 0;
    size_t RTypeNodes = 0;
    size_t RExprNodes = 0;
    size_t total() const {
      return AstNodes + TypeNodes + RTypeNodes + RExprNodes;
    }
  };
  ArenaFootprint arenaFootprint() const;

private:
  /// One named step of the static pipeline; Run returns false to stop
  /// compilation (the phase has already recorded why in Diags).
  struct PhaseDef {
    const char *Name;
    bool (Compiler::*Run)(std::string_view Source, CompiledUnit &Unit);
  };
  /// The ordered phase registry (const function-local static in
  /// Pipeline.cpp) that compile() drives.
  static const std::vector<PhaseDef> &staticPhaseRegistry();

  bool phaseParse(std::string_view Source, CompiledUnit &Unit);
  bool phaseTypecheck(std::string_view Source, CompiledUnit &Unit);
  bool phaseSpurious(std::string_view Source, CompiledUnit &Unit);
  bool phaseInfer(std::string_view Source, CompiledUnit &Unit);
  bool phaseCheck(std::string_view Source, CompiledUnit &Unit);
  bool phaseMultiplicity(std::string_view Source, CompiledUnit &Unit);
  bool phaseKinds(std::string_view Source, CompiledUnit &Unit);
  bool phaseDrops(std::string_view Source, CompiledUnit &Unit);
  bool phaseCaptures(std::string_view Source, CompiledUnit &Unit);
  bool phaseFlatten(std::string_view Source, CompiledUnit &Unit);

  Interner Names;
  DiagnosticEngine Diags;
  AstArena Ast;
  TypeArena Types;
  RTypeArena RTypes;
  RExprArena RExprs;
  std::vector<PhaseProfile> LastProfiles;
  TraceSink *Sink = nullptr;
  PhaseGovernor *Governor = nullptr;
  bool CutOff = false;
};

} // namespace rml

#endif // RML_CORE_PIPELINE_H
