//===- core/Pipeline.h - The RegionML public API ----------------*- C++ -*-===//
//
// Part of RegionML, a reproduction of "Garbage-Collection Safety for
// Region-Based Type-Polymorphic Programs" (Elsman, PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The library's front door. A Compiler owns all arenas and runs the full
/// pipeline over a MiniML source string:
///
///   parse -> Hindley-Milner typing -> spurious-type-variable analysis
///         -> region inference (strategy rg / rg- / r)
///         -> region type check (GC-safe rules of Figure 4)
///         -> region-representation analyses (multiplicity, drop, kinds)
///         -> execution on the region runtime with reference-tracing GC
///
/// Typical use:
/// \code
///   rml::Compiler C;
///   auto Unit = C.compile(Source, {rml::Strategy::Rg});
///   if (!Unit) { /* C.diagnostics() */ }
///   auto Run = C.run(*Unit);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef RML_CORE_PIPELINE_H
#define RML_CORE_PIPELINE_H

#include "ast/Ast.h"
#include "ast/Parser.h"
#include "rcheck/Check.h"
#include "region/RExpr.h"
#include "rinfer/DropRegions.h"
#include "rinfer/Infer.h"
#include "rinfer/Multiplicity.h"
#include "rinfer/RegionKinds.h"
#include "rinfer/Spurious.h"
#include "rinfer/Strategy.h"
#include "rt/Eval.h"
#include "support/Diagnostics.h"
#include "support/Interner.h"
#include "types/Type.h"
#include "types/TypeCheck.h"

#include <memory>
#include <optional>
#include <string>

namespace rml {

/// Options for one compilation.
struct CompileOptions {
  Strategy Strat = Strategy::Rg;
  SpuriousMode Spurious = SpuriousMode::FreshSecondary;
  /// Validate the region-annotated program with the Figure 4 checker
  /// (GC-safety conditions enabled iff the strategy is rg).
  bool Check = true;
};

/// Everything produced by a successful compilation.
struct CompiledUnit {
  CompileOptions Options;
  Program Ast;
  TypeInfo Types;
  SpuriousInfo Spurious;
  InferResult Inferred;
  MultiplicityInfo Mult;
  RegionKindInfo Kinds;
  DropInfo Drops;
  /// Region type and effect of the whole program (from the checker; only
  /// set when Options.Check).
  std::optional<CheckResult> Checked;

  const RProgram &program() const { return Inferred.Prog; }
  const Mu *rootMu() const { return Inferred.RootMu; }
};

/// The pipeline owner. Not thread-safe; one Compiler per thread.
class Compiler {
public:
  Compiler() = default;

  /// Runs the static pipeline. Returns nullptr after recording
  /// diagnostics (see diagnostics()).
  std::unique_ptr<CompiledUnit> compile(std::string_view Source,
                                        const CompileOptions &Opts = {});

  /// Executes a compiled unit on the region runtime. GC is enabled
  /// unless the unit was compiled with Strategy::R.
  rt::RunResult run(const CompiledUnit &Unit, rt::EvalOptions EvalOpts = {});

  /// Renders the region-annotated program (Figure 2 style).
  std::string printProgram(const CompiledUnit &Unit) const;

  /// The region type scheme a top-level declaration received, rendered in
  /// the paper's notation; empty if the name is unknown or monomorphic.
  std::string schemeOf(const CompiledUnit &Unit, std::string_view Name) const;

  DiagnosticEngine &diagnostics() { return Diags; }
  Interner &names() { return Names; }

private:
  Interner Names;
  DiagnosticEngine Diags;
  AstArena Ast;
  TypeArena Types;
  RTypeArena RTypes;
  RExprArena RExprs;
};

} // namespace rml

#endif // RML_CORE_PIPELINE_H
