//===- net/Latency.h - Open-loop latency accounting -------------*- C++ -*-===//
//
// Part of RegionML, a reproduction of "Garbage-Collection Safety for
// Region-Based Type-Polymorphic Programs" (Elsman, PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Latency bookkeeping for open-loop load drivers (bench_traffic). In an
/// open-loop bench a request's latency is measured from its *scheduled*
/// arrival time, not from the instant the sender finally got it onto
/// the wire: when the sender falls behind its own clock (oversleep, a
/// blocking send), that lag is queueing delay the target caused and
/// must be charged to it — measuring from the actual send instead
/// silently forgives it (the classic coordinated-omission mistake).
///
/// The scheduled basis has one sharp edge: a timestamp pair can come
/// out negative (a response stamped against a scheduled time by a
/// different clock read, coarse clocks, or plain bookkeeping bugs in a
/// driver). A naive unsigned subtraction turns that into a ~2^64 ns
/// "sample" that lands in the max bucket and wrecks every percentile
/// above it; silently dropping the sample skews the distribution the
/// other way. LatencyAccumulator does neither: it clamps the sample to
/// zero, keeps it in the population, and counts the clamp so the
/// summary can say how often it happened.
///
//===----------------------------------------------------------------------===//

#ifndef RML_NET_LATENCY_H
#define RML_NET_LATENCY_H

#include <algorithm>
#include <cstdint>
#include <vector>

namespace rml::net {

/// Collects latency samples on the scheduled-arrival basis, clamping
/// (and counting) negative pairs instead of dropping or wrapping them.
class LatencyAccumulator {
public:
  /// Records the latency of one response: \p RecvNanos minus
  /// \p ScheduledNanos, clamped to zero when the pair is inverted.
  /// \returns the recorded (clamped) sample.
  uint64_t record(uint64_t ScheduledNanos, uint64_t RecvNanos) {
    uint64_t Lat = 0;
    if (RecvNanos >= ScheduledNanos)
      Lat = RecvNanos - ScheduledNanos;
    else
      ++ClampedCount;
    Samples.push_back(Lat);
    return Lat;
  }

  size_t count() const { return Samples.size(); }
  uint64_t clamped() const { return ClampedCount; }

  /// Sorts the samples in place and returns them (call once, after the
  /// last record; percentile() assumes this ran).
  const std::vector<uint64_t> &finalize() {
    std::sort(Samples.begin(), Samples.end());
    return Samples;
  }

  /// The \p P-quantile (0..1) of the finalized samples, in
  /// milliseconds; 0 when empty.
  double percentileMs(double P) const {
    if (Samples.empty())
      return 0.0;
    size_t Idx = static_cast<size_t>(P * static_cast<double>(Samples.size()));
    if (Idx >= Samples.size())
      Idx = Samples.size() - 1;
    return static_cast<double>(Samples[Idx]) / 1e6;
  }

private:
  std::vector<uint64_t> Samples;
  uint64_t ClampedCount = 0;
};

} // namespace rml::net

#endif // RML_NET_LATENCY_H
