//===- net/Server.h - The epoll network front door --------------*- C++ -*-===//
//
// Part of RegionML, a reproduction of "Garbage-Collection Safety for
// Region-Based Type-Polymorphic Programs" (Elsman, PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The network front door in front of service::Service — the event-loop
/// frontend the callback submit path was built for. One thread runs the
/// epoll loop; the service's worker pool runs the requests:
///
///   accept ─> Connection ─> WireRequest ─> Service::trySubmit(cb)
///                 ^                            │ queue full?
///                 │                            ├── yes: Shed frame now
///        completion queue <─ worker callback ──┘   (load is shed at
///        (mutex + eventfd)                          admission, counted)
///
/// Admission is non-blocking by construction: the loop thread must
/// never park on a full queue, so a full queue turns into an immediate
/// Shed response — open-loop clients (bench_traffic) measure that shed
/// rate as the overload signal. Completions arrive on worker threads;
/// the callback encodes the response, pushes it onto a mutex-protected
/// queue and rings an eventfd, and the loop drains the queue and writes
/// the frames out — workers never touch a socket.
///
/// Shutdown: requestDrain() (thread- and signal-safe; rmld wires
/// SIGINT/SIGTERM to it via drainOnSignals) stops accepting, stops
/// parsing, lets every admitted request complete and flush, then run()
/// returns. Connections that will not drain within DrainGraceMs are
/// force-closed so a stuck client cannot hold the process hostage.
///
//===----------------------------------------------------------------------===//

#ifndef RML_NET_SERVER_H
#define RML_NET_SERVER_H

#include "net/Connection.h"
#include "net/EventLoop.h"
#include "net/Http.h"
#include "net/Protocol.h"

#include "service/Service.h"

#include <chrono>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace rml::net {

/// Front-door counters, disjoint from ServiceStats: everything here
/// happened at the wire, before (or instead of) the service.
struct NetStats {
  uint64_t Accepted = 0;
  uint64_t Closed = 0;
  /// Connections turned away because MaxConnections were already open.
  uint64_t AcceptOverflows = 0;
  uint64_t BinaryRequests = 0;
  uint64_t HttpRequests = 0;
  /// Binary responses queued (every disposition, Shed included).
  uint64_t Responses = 0;
  /// Requests answered Shed because Service::trySubmit found the queue
  /// full — the wire-level view of ServiceStats::Rejected.
  uint64_t Sheds = 0;
  /// Requests answered Shed at admission because the cost model's
  /// *learned* estimate for that exact source already exceeded the
  /// client's deadline (never on prior-based estimates — cold sources
  /// always get their chance). Disjoint from Sheds (queue-full).
  uint64_t DeadlineSheds = 0;
  /// Requests answered Shed at admission because the *expected wait*
  /// (summed predicted cost of the queued jobs divided by the worker
  /// count) plus the request's own predicted cost already exceeded its
  /// deadline. Fires only when work is actually queued, so an idle
  /// service never wait-sheds. Disjoint from Sheds and DeadlineSheds.
  uint64_t WaitSheds = 0;
  /// Malformed frames / HTTP noise; each costs its connection.
  uint64_t ProtocolErrors = 0;
  /// Completions whose connection was already gone (counted, dropped).
  uint64_t OrphanedCompletions = 0;
};

struct ServerConfig {
  std::string BindAddr = "127.0.0.1";
  /// 0 binds an ephemeral port; port() reports the real one.
  uint16_t Port = 0;
  int Backlog = 128;
  size_t MaxConnections = 1024;
  /// How long a drain may wait for in-flight responses to flush before
  /// force-closing the stragglers.
  unsigned DrainGraceMs = 5000;
  /// Evaluation fuel applied to every run the daemon admits (rmld
  /// --step-limit); 0 keeps rt::EvalOptions' own default. A network
  /// service should not let one hostile loop pin a worker forever.
  uint64_t StepLimit = 0;
  /// Run every admitted execution under the adaptive GC policy (rmld
  /// --adaptive-gc; see rt/GcPolicy.h). Results and diagnostics are
  /// unchanged by contract — only pause shape moves.
  bool AdaptiveGc = false;
  /// GC pause-time budget in nanoseconds applied to every run (rmld
  /// --gc-pause-budget); 0 = none.
  uint64_t GcPauseBudgetNanos = 0;
  /// Collection trigger in words applied to every run (rmld
  /// --gc-threshold); 0 keeps rt::EvalOptions' own default. Mostly a
  /// load-testing knob: small thresholds make short requests collect,
  /// so the pause histogram and the adaptive policy have something to
  /// chew on.
  uint64_t GcThresholdWords = 0;
  /// Tenant label substituted for requests that sent none (rmld
  /// --tenant-default): lets an operator fold untagged legacy traffic
  /// into a named fair-share bucket. Empty keeps them in the anonymous
  /// bucket.
  std::string TenantDefault;
};

/// The daemon core. Construct over a Service, then run() on the thread
/// that should own the loop. The Service must outlive the Server, and
/// —because completion callbacks capture `this`— the Server must not
/// be destroyed until Service::shutdown() has returned (rmld and the
/// tests declare Service first, Server second, and call shutdown()
/// after run(), which makes both orders fall out of scoping).
class Server final : public IoHandler {
public:
  explicit Server(service::Service &Svc, ServerConfig Cfg = {});
  ~Server() override;

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// The listening socket is up. When false, error() says why and
  /// run() returns immediately.
  bool ok() const { return Err.empty(); }
  const std::string &error() const { return Err; }

  /// The port actually bound (resolves Port == 0).
  uint16_t port() const { return BoundPort; }

  /// Runs the event loop until a drain completes. Call once.
  void run();

  /// Begins a graceful drain; safe from any thread and from signal
  /// handlers (one eventfd write). Idempotent.
  void requestDrain();

  /// Routes \p Sigs (e.g. {SIGINT, SIGTERM}) into requestDrain via a
  /// signalfd: the signals are blocked on the calling thread and
  /// consumed by the loop. Call before run(), from the loop thread;
  /// the caller is responsible for having blocked the signals
  /// process-wide before spawning other threads (rmld blocks them
  /// first thing in main).
  bool drainOnSignals(std::initializer_list<int> Sigs);

  NetStats stats() const;
  service::Service &svc() { return Svc; }

private:
  friend class Connection;

  struct Completion {
    uint64_t ConnId;
    std::string Encoded; // the wire frame, ready to send
  };

  /// Adapter so the eventfds/signalfd can register lambdas.
  struct FnHandler final : IoHandler {
    std::function<void(uint32_t)> Fn;
    void onIo(uint32_t Events) override { Fn(Events); }
  };

  // IoHandler for the listening socket.
  void onIo(uint32_t Events) override;

  void acceptConnections();
  void onRequest(Connection &C, WireRequest Req);
  void onHttp(Connection &C, const HttpRequest &Req);
  void onProtocolError(Connection &C, const std::string &What);
  void pushCompletion(Completion Done); // worker threads
  void drainCompletions();              // loop thread
  void beginDrain();
  void forceCloseAll();
  /// Logically closes \p C now; the object is destroyed at the end of
  /// the current loop batch (stale completions for it are counted as
  /// orphans).
  void closeConn(Connection &C);
  void maybeFinishDrain();
  bool draining() const { return Draining; }
  EventLoop &loop() { return Loop; }

  service::Service &Svc;
  ServerConfig Cfg;
  std::string Err; // construction failure, empty when ok()
  EventLoop Loop;
  int ListenFd = -1;
  int CompletionFd = -1; // eventfd rung by worker callbacks
  int StopFd = -1;       // eventfd rung by requestDrain
  int SignalFd = -1;     // optional signalfd (drainOnSignals)
  uint16_t BoundPort = 0;
  FnHandler CompletionHandler;
  FnHandler StopHandler;
  FnHandler SignalHandler;

  std::unordered_map<uint64_t, std::unique_ptr<Connection>> Conns;
  /// Connections closed during the current batch, kept alive until the
  /// batch ends so in-flight member functions stay valid.
  std::vector<std::unique_ptr<Connection>> Dead;
  uint64_t NextConnId = 1;
  /// Requests admitted into the service whose completions have not yet
  /// been drained (loop-thread-only; drain waits for zero).
  uint64_t InService = 0;
  bool Draining = false;
  bool Done = false;
  std::chrono::steady_clock::time_point DrainDeadline;

  std::mutex CompletionMutex;
  std::vector<Completion> Completions;

  mutable std::mutex StatsMutex;
  NetStats Stats;
};

} // namespace rml::net

#endif // RML_NET_SERVER_H
