//===- net/Http.h - Minimal HTTP GET shim for rmld --------------*- C++ -*-===//
//
// Part of RegionML, a reproduction of "Garbage-Collection Safety for
// Region-Based Type-Polymorphic Programs" (Elsman, PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Just enough HTTP/1.1 for `curl http://host:port/stats` and a
/// load-balancer `/healthz` probe: parse a request line, honor the
/// Connection header (keep-alive by default on HTTP/1.1, close on
/// 1.0), ignore everything else. A keep-alive connection serves at
/// most MaxHttpRequestsPerConn requests before the server closes it —
/// a polling scraper reconnects cheaply; an unbounded pipeline would
/// pin a connection slot forever. Anything beyond a well-formed
/// GET-shaped request line fails closed (Decode::Bad) and the server
/// answers 400 and hangs up — the binary protocol in net/Protocol.h is
/// the real API surface.
///
//===----------------------------------------------------------------------===//

#ifndef RML_NET_HTTP_H
#define RML_NET_HTTP_H

#include "net/Protocol.h"

#include <string>
#include <string_view>

namespace rml::net {

/// Header-block bound: a request whose headers exceed this without
/// terminating is malformed (or hostile) and fails closed.
inline constexpr size_t MaxHttpHeaderBytes = 8 * 1024;

/// Cap on requests served over one keep-alive connection before the
/// server answers Connection: close and hangs up.
inline constexpr uint32_t MaxHttpRequestsPerConn = 32;

/// The parts of a request the server routes on. Headers beyond
/// Connection are skipped.
struct HttpRequest {
  std::string Method; // "GET", ...
  std::string Target; // "/stats", ...
  /// The client's keep-alive intent: the Connection header when
  /// present, else the version default (1.1 keeps, 1.0 closes). The
  /// server may still close (pipeline cap, drain).
  bool KeepAlive = false;
};

/// Incremental request parse over a connection's read buffer: NeedMore
/// until the blank line arrives (Bad first if the request line is
/// already provably malformed or the header block outgrows
/// MaxHttpHeaderBytes); on Frame, \p Consumed spans through the blank
/// line. Request bodies are not supported — rmld routes GETs only.
Decode parseHttpRequest(std::string_view Buf, size_t &Consumed,
                        HttpRequest &Out, std::string &Err);

/// Renders a complete Content-Length-delimited response (status line,
/// Content-Type/-Length, Connection: keep-alive or close, body).
std::string httpResponse(int Code, std::string_view Reason,
                         std::string_view ContentType, std::string_view Body,
                         bool KeepAlive = false);

} // namespace rml::net

#endif // RML_NET_HTTP_H
