//===- net/Protocol.cpp ---------------------------------------------------===//

#include "net/Protocol.h"

#include <algorithm>

using namespace rml;
using namespace rml::net;

namespace {

//===----------------------------------------------------------------------===//
// Big-endian writers. All appends; frames are patched in place once the
// body size is known.
//===----------------------------------------------------------------------===//

void putU16(std::string &Out, uint16_t V) {
  Out.push_back(static_cast<char>(V >> 8));
  Out.push_back(static_cast<char>(V));
}

void putU32(std::string &Out, uint32_t V) {
  Out.push_back(static_cast<char>(V >> 24));
  Out.push_back(static_cast<char>(V >> 16));
  Out.push_back(static_cast<char>(V >> 8));
  Out.push_back(static_cast<char>(V));
}

void putU64(std::string &Out, uint64_t V) {
  putU32(Out, static_cast<uint32_t>(V >> 32));
  putU32(Out, static_cast<uint32_t>(V));
}

void patchU32(std::string &Out, size_t At, uint32_t V) {
  Out[At] = static_cast<char>(V >> 24);
  Out[At + 1] = static_cast<char>(V >> 16);
  Out[At + 2] = static_cast<char>(V >> 8);
  Out[At + 3] = static_cast<char>(V);
}

/// Truncates a string to what a u16/u32 length prefix can carry.
std::string_view clamp(std::string_view S, size_t Max) {
  return S.substr(0, std::min(S.size(), Max));
}

//===----------------------------------------------------------------------===//
// Bounds-checked body reader: every primitive verifies the remaining
// body before touching it, so a malformed inner length can never read
// past the frame (let alone the buffer).
//===----------------------------------------------------------------------===//

class Reader {
public:
  Reader(const char *Data, size_t Size)
      : P(reinterpret_cast<const unsigned char *>(Data)), N(Size) {}

  bool u8(uint8_t &V) {
    if (N - Off < 1)
      return false;
    V = P[Off++];
    return true;
  }

  bool u16(uint16_t &V) {
    if (N - Off < 2)
      return false;
    V = static_cast<uint16_t>(P[Off] << 8 | P[Off + 1]);
    Off += 2;
    return true;
  }

  bool u32(uint32_t &V) {
    if (N - Off < 4)
      return false;
    V = static_cast<uint32_t>(P[Off]) << 24 |
        static_cast<uint32_t>(P[Off + 1]) << 16 |
        static_cast<uint32_t>(P[Off + 2]) << 8 |
        static_cast<uint32_t>(P[Off + 3]);
    Off += 4;
    return true;
  }

  bool u64(uint64_t &V) {
    uint32_t Hi = 0, Lo = 0;
    if (!u32(Hi) || !u32(Lo))
      return false;
    V = static_cast<uint64_t>(Hi) << 32 | Lo;
    return true;
  }

  bool str(size_t Len, std::string &S) {
    if (N - Off < Len)
      return false;
    S.assign(reinterpret_cast<const char *>(P + Off), Len);
    Off += Len;
    return true;
  }

  /// The body was consumed exactly — anything less means trailing
  /// bytes, which decode rejects (fail closed on format drift).
  bool done() const { return Off == N; }

private:
  const unsigned char *P;
  size_t N;
  size_t Off = 0;
};

Decode bad(std::string &Err, std::string What) {
  Err = std::move(What);
  return Decode::Bad;
}

/// Shared prefix handling: NeedMore until the whole frame is buffered,
/// Bad on an oversized length prefix (the one malformation detectable
/// before the body arrives — waiting for 2 GiB that will never parse
/// would be an amplification hazard).
Decode frameBody(std::string_view Buf, uint32_t &BodyLen, std::string &Err) {
  if (Buf.size() < 4)
    return Decode::NeedMore;
  BodyLen = static_cast<uint32_t>(static_cast<uint8_t>(Buf[0])) << 24 |
            static_cast<uint32_t>(static_cast<uint8_t>(Buf[1])) << 16 |
            static_cast<uint32_t>(static_cast<uint8_t>(Buf[2])) << 8 |
            static_cast<uint32_t>(static_cast<uint8_t>(Buf[3]));
  if (BodyLen > MaxBodyBytes)
    return bad(Err, "length prefix " + std::to_string(BodyLen) +
                        " exceeds the " + std::to_string(MaxBodyBytes) +
                        "-byte frame bound");
  if (Buf.size() - 4 < BodyLen)
    return Decode::NeedMore;
  return Decode::Frame;
}

} // namespace

const char *rml::net::wireStatusName(WireStatus S) {
  switch (S) {
  case WireStatus::Ok:
    return "ok";
  case WireStatus::CompileError:
    return "compile_error";
  case WireStatus::RunFailed:
    return "run_failed";
  case WireStatus::Budget:
    return "budget";
  case WireStatus::Shutdown:
    return "shutdown";
  case WireStatus::InternalError:
    return "internal_error";
  case WireStatus::Shed:
    return "shed";
  case WireStatus::ProtocolError:
    return "protocol_error";
  }
  return "unknown";
}

Decode rml::net::decodeRequest(std::string_view Buf, size_t &Consumed,
                               WireRequest &Out, std::string &Err) {
  Consumed = 0;
  Err.clear();
  uint32_t BodyLen = 0;
  Decode D = frameBody(Buf, BodyLen, Err);
  if (D != Decode::Frame)
    return D;

  Reader R(Buf.data() + 4, BodyLen);
  WireRequest Req;
  uint8_t Kind = 0, Flags = 0;
  uint32_t SrcLen = 0;
  uint16_t NSchemes = 0;
  if (!R.u64(Req.Id) || !R.u8(Kind) || !R.u8(Flags) || !R.u32(SrcLen))
    return bad(Err, "truncated request header");
  if (Kind > static_cast<uint8_t>(MsgKind::CaptureQuery))
    return bad(Err, "unknown request kind " + std::to_string(Kind));
  if (Flags & ~(ReqFlagTenant | ReqFlagDeadline))
    return bad(Err, "unknown request flag bits");
  Req.Kind = static_cast<MsgKind>(Kind);
  if (!R.str(SrcLen, Req.Source))
    return bad(Err, "source length overruns the frame body");
  if (!R.u16(NSchemes))
    return bad(Err, "truncated scheme-name count");
  if (NSchemes > MaxSchemeNames)
    return bad(Err, "scheme-name count " + std::to_string(NSchemes) +
                        " exceeds the bound of " +
                        std::to_string(MaxSchemeNames));
  Req.SchemeNames.reserve(NSchemes);
  for (uint16_t I = 0; I < NSchemes; ++I) {
    uint16_t Len = 0;
    std::string Name;
    if (!R.u16(Len) || !R.str(Len, Name))
      return bad(Err, "scheme name overruns the frame body");
    Req.SchemeNames.push_back(std::move(Name));
  }
  if (Flags & ReqFlagTenant) {
    uint16_t Len = 0;
    if (!R.u16(Len) || !R.str(Len, Req.Tenant))
      return bad(Err, "tenant label overruns the frame body");
    if (Req.Tenant.size() > MaxTenantBytes)
      return bad(Err, "tenant label exceeds the bound of " +
                          std::to_string(MaxTenantBytes));
  }
  if ((Flags & ReqFlagDeadline) && !R.u64(Req.DeadlineNanos))
    return bad(Err, "truncated deadline");
  if (!R.done())
    return bad(Err, "trailing bytes in frame body");

  Out = std::move(Req);
  Consumed = 4 + static_cast<size_t>(BodyLen);
  return Decode::Frame;
}

Decode rml::net::decodeResponse(std::string_view Buf, size_t &Consumed,
                                WireResponse &Out, std::string &Err) {
  Consumed = 0;
  Err.clear();
  uint32_t BodyLen = 0;
  Decode D = frameBody(Buf, BodyLen, Err);
  if (D != Decode::Frame)
    return D;

  Reader R(Buf.data() + 4, BodyLen);
  WireResponse Resp;
  uint8_t Status = 0, Flags = 0;
  uint32_t Len32 = 0;
  uint16_t NSchemes = 0;
  if (!R.u64(Resp.Id) || !R.u8(Status) || !R.u8(Flags))
    return bad(Err, "truncated response header");
  if (Status > static_cast<uint8_t>(WireStatus::ProtocolError))
    return bad(Err, "unknown response status " + std::to_string(Status));
  if (Flags & ~0x7u)
    return bad(Err, "unknown response flag bits");
  Resp.Status = static_cast<WireStatus>(Status);
  Resp.CompileOk = Flags & 0x1;
  Resp.CacheHit = Flags & 0x2;
  Resp.Ran = Flags & 0x4;
  if (!R.u32(Len32) || !R.str(Len32, Resp.Result))
    return bad(Err, "result overruns the frame body");
  if (!R.u32(Len32) || !R.str(Len32, Resp.Error))
    return bad(Err, "error text overruns the frame body");
  if (!R.u16(NSchemes))
    return bad(Err, "truncated scheme count");
  if (NSchemes > MaxSchemeNames)
    return bad(Err, "scheme count exceeds the bound");
  Resp.Schemes.reserve(NSchemes);
  for (uint16_t I = 0; I < NSchemes; ++I) {
    uint16_t NameLen = 0;
    std::string Name, Scheme;
    if (!R.u16(NameLen) || !R.str(NameLen, Name) || !R.u32(Len32) ||
        !R.str(Len32, Scheme))
      return bad(Err, "scheme entry overruns the frame body");
    Resp.Schemes.emplace_back(std::move(Name), std::move(Scheme));
  }
  if (!R.done())
    return bad(Err, "trailing bytes in frame body");

  Out = std::move(Resp);
  Consumed = 4 + static_cast<size_t>(BodyLen);
  return Decode::Frame;
}

void rml::net::encodeRequest(const WireRequest &R, std::string &Out) {
  size_t Mark = Out.size();
  putU32(Out, 0); // body length, patched below
  putU64(Out, R.Id);
  Out.push_back(static_cast<char>(R.Kind));
  uint8_t Flags = (R.Tenant.empty() ? 0 : ReqFlagTenant) |
                  (R.DeadlineNanos ? ReqFlagDeadline : 0);
  Out.push_back(static_cast<char>(Flags));
  std::string_view Src = clamp(R.Source, MaxBodyBytes / 2);
  putU32(Out, static_cast<uint32_t>(Src.size()));
  Out += Src;
  size_t NSchemes = std::min<size_t>(R.SchemeNames.size(), MaxSchemeNames);
  putU16(Out, static_cast<uint16_t>(NSchemes));
  for (size_t I = 0; I < NSchemes; ++I) {
    std::string_view Name = clamp(R.SchemeNames[I], 0xFFFF);
    putU16(Out, static_cast<uint16_t>(Name.size()));
    Out += Name;
  }
  if (Flags & ReqFlagTenant) {
    std::string_view Tenant = clamp(R.Tenant, MaxTenantBytes);
    putU16(Out, static_cast<uint16_t>(Tenant.size()));
    Out += Tenant;
  }
  if (Flags & ReqFlagDeadline)
    putU64(Out, R.DeadlineNanos);
  patchU32(Out, Mark, static_cast<uint32_t>(Out.size() - Mark - 4));
}

void rml::net::encodeResponse(const WireResponse &R, std::string &Out) {
  size_t Mark = Out.size();
  putU32(Out, 0); // body length, patched below
  putU64(Out, R.Id);
  Out.push_back(static_cast<char>(R.Status));
  uint8_t Flags = (R.CompileOk ? 0x1 : 0) | (R.CacheHit ? 0x2 : 0) |
                  (R.Ran ? 0x4 : 0);
  Out.push_back(static_cast<char>(Flags));
  std::string_view Result = clamp(R.Result, MaxBodyBytes / 4);
  putU32(Out, static_cast<uint32_t>(Result.size()));
  Out += Result;
  std::string_view Error = clamp(R.Error, MaxBodyBytes / 4);
  putU32(Out, static_cast<uint32_t>(Error.size()));
  Out += Error;
  size_t NSchemes = std::min<size_t>(R.Schemes.size(), MaxSchemeNames);
  putU16(Out, static_cast<uint16_t>(NSchemes));
  for (size_t I = 0; I < NSchemes; ++I) {
    std::string_view Name = clamp(R.Schemes[I].first, 0xFFFF);
    putU16(Out, static_cast<uint16_t>(Name.size()));
    Out += Name;
    std::string_view Scheme = clamp(R.Schemes[I].second, MaxBodyBytes / 4);
    putU32(Out, static_cast<uint32_t>(Scheme.size()));
    Out += Scheme;
  }
  patchU32(Out, Mark, static_cast<uint32_t>(Out.size() - Mark - 4));
}
