//===- net/Connection.cpp -------------------------------------------------===//

#include "net/Connection.h"
#include "net/Server.h"

#include <cerrno>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace rml;
using namespace rml::net;

Connection::Connection(Server &Srv, int Fd, uint64_t Id)
    : Srv(Srv), Fd(Fd), ConnId(Id) {}

Connection::~Connection() {
  if (Fd >= 0)
    ::close(Fd);
}

void Connection::onIo(uint32_t Events) {
  if (Closed)
    return;
  if (Events & (EPOLLHUP | EPOLLERR)) {
    Srv.closeConn(*this);
    return;
  }
  if (Events & EPOLLIN) {
    readable();
    if (Closed)
      return;
  }
  if (Events & EPOLLOUT)
    writable();
}

void Connection::readable() {
  char Buf[16 * 1024];
  for (;;) {
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (N > 0) {
      // Once the connection is condemned (protocol error pending flush)
      // or the server is draining, input is discarded rather than
      // parsed: no new work is admitted, but a client that keeps
      // streaming cannot pin the level-triggered loop at 100%.
      if (!CloseAfterFlush && !Srv.draining()) {
        if (RdBuf.size() + static_cast<size_t>(N) >
            MaxBodyBytes + MaxHttpHeaderBytes + 64) {
          Srv.onProtocolError(*this, "read buffer overflow");
          return;
        }
        RdBuf.append(Buf, static_cast<size_t>(N));
      }
      continue;
    }
    if (N == 0) {
      // Half-close: the peer is done sending but may still be reading
      // our responses. Anything already buffered still gets parsed and
      // answered below; the close happens only once nothing is owed.
      PeerClosed = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      break;
    if (errno == EINTR)
      continue;
    Srv.closeConn(*this);
    return;
  }
  if (!RdBuf.empty())
    parse();
  if (!Closed && PeerClosed && Pending == 0 && writeIdle())
    Srv.closeConn(*this);
}

void Connection::parse() {
  if (M == Mode::Detect) {
    // Binary frames start with their big-endian length prefix, and
    // Protocol.h caps bodies below 2^24, so a legitimate first byte is
    // always 0x00. Anything else is (possibly malformed) HTTP.
    M = static_cast<uint8_t>(RdBuf[0]) == 0x00 ? Mode::Binary : Mode::Http;
  }
  if (M == Mode::Binary) {
    size_t Used = 0;
    while (Used < RdBuf.size()) {
      WireRequest Req;
      std::string DecodeErr;
      size_t Consumed = 0;
      Decode D = decodeRequest(std::string_view(RdBuf).substr(Used), Consumed,
                               Req, DecodeErr);
      if (D == Decode::NeedMore)
        break;
      if (D == Decode::Bad) {
        RdBuf.clear();
        Srv.onProtocolError(*this, DecodeErr);
        return;
      }
      Used += Consumed;
      Srv.onRequest(*this, std::move(Req));
      if (Closed)
        return;
      if (CloseAfterFlush) {
        RdBuf.clear();
        return;
      }
    }
    RdBuf.erase(0, Used);
    return;
  }
  // HTTP: requests are answered in order; a keep-alive connection
  // loops over pipelined requests until the client asks to close, the
  // per-connection cap trips, or the server drains (all of which set
  // CloseAfterFlush in onHttp).
  size_t Used = 0;
  while (Used < RdBuf.size()) {
    HttpRequest Req;
    std::string ParseErr;
    size_t Consumed = 0;
    Decode D = parseHttpRequest(std::string_view(RdBuf).substr(Used),
                                Consumed, Req, ParseErr);
    if (D == Decode::NeedMore)
      break;
    if (D == Decode::Bad) {
      RdBuf.clear();
      Srv.onProtocolError(*this, ParseErr);
      return;
    }
    Used += Consumed;
    Srv.onHttp(*this, Req);
    if (Closed)
      return;
    if (CloseAfterFlush) {
      RdBuf.clear();
      return;
    }
  }
  RdBuf.erase(0, Used);
}

void Connection::sendBytes(std::string Bytes) {
  if (Closed)
    return;
  if (WrBuf.empty())
    WrBuf = std::move(Bytes);
  else
    WrBuf += Bytes;
  writable();
}

void Connection::writable() {
  while (WrOff < WrBuf.size()) {
    ssize_t N = ::send(Fd, WrBuf.data() + WrOff, WrBuf.size() - WrOff,
                       MSG_NOSIGNAL);
    if (N > 0) {
      WrOff += static_cast<size_t>(N);
      continue;
    }
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Reclaim flushed prefix once it dominates the buffer.
      if (WrOff > 64 * 1024 && WrOff > WrBuf.size() / 2) {
        WrBuf.erase(0, WrOff);
        WrOff = 0;
      }
      if (!WantWrite) {
        WantWrite = true;
        Srv.loop().mod(Fd, EPOLLIN | EPOLLOUT, this);
      }
      return;
    }
    if (N < 0 && errno == EINTR)
      continue;
    Srv.closeConn(*this);
    return;
  }
  WrBuf.clear();
  WrOff = 0;
  if (WantWrite) {
    WantWrite = false;
    Srv.loop().mod(Fd, EPOLLIN, this);
  }
  if (CloseAfterFlush || (PeerClosed && Pending == 0))
    Srv.closeConn(*this);
}
