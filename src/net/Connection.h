//===- net/Connection.h - One client connection's state machine -*- C++ -*-===//
//
// Part of RegionML, a reproduction of "Garbage-Collection Safety for
// Region-Based Type-Polymorphic Programs" (Elsman, PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One accepted socket, owned by the Server and driven by the event
/// loop. The first byte decides the dialect — 0x00 is a binary frame's
/// length prefix (net/Protocol.h caps bodies below 2^24), anything else
/// is treated as an HTTP request line (net/Http.h) — after which the
/// connection parses frames out of its read buffer and hands them up:
///
///   Detect ──0x00──> Binary ── decodeRequest loop ──> Server::onRequest
///       └───else───> Http ──── parseHttpRequest ────> Server::onHttp
///
/// Any malformed input fails closed: Server::onProtocolError queues a
/// final ProtocolError frame (or a 400) and the connection closes once
/// it flushes. Writes are buffered with EPOLLOUT armed only while a
/// partial write is outstanding. A client may half-close (shutdown its
/// write side) after pipelining requests: the read side records the
/// EOF, responses still flush, and the connection closes once nothing
/// is pending. While the server drains (SIGTERM), reads are discarded
/// instead of parsed so no new work is admitted but backpressured
/// clients cannot wedge the loop.
///
//===----------------------------------------------------------------------===//

#ifndef RML_NET_CONNECTION_H
#define RML_NET_CONNECTION_H

#include "net/EventLoop.h"

#include <cstdint>
#include <string>

namespace rml::net {

class Server;

/// One client connection. Construction takes ownership of the fd;
/// destruction closes it. All methods run on the loop thread.
class Connection final : public IoHandler {
public:
  Connection(Server &Srv, int Fd, uint64_t Id);
  ~Connection() override;

  Connection(const Connection &) = delete;
  Connection &operator=(const Connection &) = delete;

  void onIo(uint32_t Events) override;

  uint64_t id() const { return ConnId; }
  int fd() const { return Fd; }

  /// Queues \p Bytes and flushes as far as the socket allows; arms
  /// EPOLLOUT for the remainder. May close the connection (write
  /// error, or a close-after-flush falling due).
  void sendBytes(std::string Bytes);

  /// No queued response bytes waiting to flush.
  bool writeIdle() const { return WrOff == WrBuf.size(); }

private:
  friend class Server;

  enum class Mode : uint8_t { Detect, Binary, Http };

  void readable();
  void writable();
  void parse();

  Server &Srv;
  int Fd;
  uint64_t ConnId;
  Mode M = Mode::Detect;
  std::string RdBuf;
  std::string WrBuf;
  size_t WrOff = 0;
  /// Requests admitted into the service whose responses have not yet
  /// been queued on this connection.
  uint32_t Pending = 0;
  /// HTTP requests served on this connection; at MaxHttpRequestsPerConn
  /// the server answers Connection: close regardless of the client's
  /// keep-alive intent.
  uint32_t HttpServed = 0;
  /// The peer half-closed (EOF on read); responses may still flush.
  bool PeerClosed = false;
  /// Close as soon as the write buffer drains (protocol error, HTTP
  /// response sent, or drain finishing).
  bool CloseAfterFlush = false;
  /// EPOLLOUT is currently armed.
  bool WantWrite = false;
  /// Set by Server::closeConn: the connection is logically gone (its
  /// destruction is deferred to the end of the loop batch).
  bool Closed = false;
};

} // namespace rml::net

#endif // RML_NET_CONNECTION_H
