//===- net/EventLoop.h - Single-threaded epoll dispatcher -------*- C++ -*-===//
//
// Part of RegionML, a reproduction of "Garbage-Collection Safety for
// Region-Based Type-Polymorphic Programs" (Elsman, PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thin, single-threaded epoll wrapper: file descriptors register an
/// IoHandler, runOnce() dispatches one epoll_wait batch. Dispatch looks
/// handlers up by fd at delivery time, so a handler that del()s another
/// fd mid-batch (a connection closing a peer, the completion drain
/// closing a finished connection) simply causes the stale event to be
/// skipped — no dangling handler pointer is ever invoked. The one
/// residual race — an fd number closed and re-accept()ed inside a
/// single batch — delivers at worst a spurious readable event to the
/// new owner, which a non-blocking read answers with EAGAIN.
///
/// Everything here is loop-thread-only. Cross-thread wake-ups are the
/// owner's business (the Server uses eventfds; see net/Server.h).
///
//===----------------------------------------------------------------------===//

#ifndef RML_NET_EVENTLOOP_H
#define RML_NET_EVENTLOOP_H

#include <cstddef>
#include <cstdint>
#include <unordered_map>

namespace rml::net {

/// Something dispatchable: one registered fd's event callback.
class IoHandler {
public:
  virtual ~IoHandler();
  /// \p Events is the epoll event mask (EPOLLIN | EPOLLOUT | ...).
  virtual void onIo(uint32_t Events) = 0;
};

/// The dispatcher. Not thread-safe by design (see the file comment).
class EventLoop {
public:
  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop &) = delete;
  EventLoop &operator=(const EventLoop &) = delete;

  /// epoll_create1 succeeded; when false every other call is a no-op
  /// (the owner reports construction failure its own way).
  bool ok() const { return Ep >= 0; }

  bool add(int Fd, uint32_t Events, IoHandler *H);
  bool mod(int Fd, uint32_t Events, IoHandler *H);
  /// Deregisters \p Fd; pending events for it in the current batch are
  /// dropped. Does not close the fd.
  void del(int Fd);

  /// One epoll_wait + dispatch pass. \p TimeoutMs < 0 blocks until an
  /// event arrives. \returns the number of events dispatched (0 on
  /// timeout or EINTR, -1 on a wait failure).
  int runOnce(int TimeoutMs);

  size_t handlerCount() const { return Handlers.size(); }

private:
  int Ep = -1;
  /// fd -> handler, consulted at delivery time (stale-event safety).
  std::unordered_map<int, IoHandler *> Handlers;
};

} // namespace rml::net

#endif // RML_NET_EVENTLOOP_H
