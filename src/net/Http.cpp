//===- net/Http.cpp -------------------------------------------------------===//

#include "net/Http.h"

using namespace rml;
using namespace rml::net;

namespace {

/// Validates "METHOD SP /target SP HTTP/1.x" and fills \p Out. The
/// method must be short upper-case ASCII, the target must start with
/// '/': binary garbage that happened to reach the HTTP path dies here
/// instead of being ferried around as a "request".
bool parseRequestLine(std::string_view Line, HttpRequest &Out,
                      std::string &Err) {
  size_t Sp1 = Line.find(' ');
  size_t Sp2 = Sp1 == std::string_view::npos ? Sp1 : Line.find(' ', Sp1 + 1);
  if (Sp2 == std::string_view::npos || Line.find(' ', Sp2 + 1) !=
                                           std::string_view::npos) {
    Err = "malformed HTTP request line";
    return false;
  }
  std::string_view Method = Line.substr(0, Sp1);
  std::string_view Target = Line.substr(Sp1 + 1, Sp2 - Sp1 - 1);
  std::string_view Version = Line.substr(Sp2 + 1);
  if (Method.empty() || Method.size() > 16) {
    Err = "malformed HTTP method";
    return false;
  }
  for (char C : Method)
    if (C < 'A' || C > 'Z') {
      Err = "malformed HTTP method";
      return false;
    }
  if (Target.empty() || Target[0] != '/') {
    Err = "malformed HTTP target";
    return false;
  }
  if (Version.substr(0, 7) != "HTTP/1.") {
    Err = "unsupported HTTP version";
    return false;
  }
  Out.Method = std::string(Method);
  Out.Target = std::string(Target);
  return true;
}

} // namespace

Decode rml::net::parseHttpRequest(std::string_view Buf, size_t &Consumed,
                                  HttpRequest &Out, std::string &Err) {
  Consumed = 0;
  Err.clear();
  // Reject a provably bad request line as soon as it is complete — a
  // garbage connection should not get to stream MaxHttpHeaderBytes of
  // noise before being told no.
  size_t Eol = Buf.find("\r\n");
  if (Eol != std::string_view::npos) {
    HttpRequest Probe;
    if (!parseRequestLine(Buf.substr(0, Eol), Probe, Err))
      return Decode::Bad;
  }
  size_t End = Buf.find("\r\n\r\n");
  if (End == std::string_view::npos) {
    if (Buf.size() > MaxHttpHeaderBytes) {
      Err = "HTTP header block exceeds " +
            std::to_string(MaxHttpHeaderBytes) + " bytes";
      return Decode::Bad;
    }
    return Decode::NeedMore;
  }
  if (!parseRequestLine(Buf.substr(0, Eol), Out, Err))
    return Decode::Bad;
  Consumed = End + 4;
  return Decode::Frame;
}

std::string rml::net::httpResponse(int Code, std::string_view Reason,
                                   std::string_view ContentType,
                                   std::string_view Body) {
  std::string Out;
  Out.reserve(Body.size() + 128);
  Out += "HTTP/1.1 ";
  Out += std::to_string(Code);
  Out += " ";
  Out += Reason;
  Out += "\r\nContent-Type: ";
  Out += ContentType;
  Out += "\r\nContent-Length: ";
  Out += std::to_string(Body.size());
  Out += "\r\nConnection: close\r\n\r\n";
  Out += Body;
  return Out;
}
