//===- net/Http.cpp -------------------------------------------------------===//

#include "net/Http.h"

#include <algorithm>
#include <cctype>

using namespace rml;
using namespace rml::net;

namespace {

/// Case-insensitive ASCII comparison (header names and the Connection
/// header's token values are case-insensitive per RFC 9110).
bool iequals(std::string_view A, std::string_view B) {
  return A.size() == B.size() &&
         std::equal(A.begin(), A.end(), B.begin(), [](char X, char Y) {
           return std::tolower(static_cast<unsigned char>(X)) ==
                  std::tolower(static_cast<unsigned char>(Y));
         });
}

std::string_view trimmed(std::string_view S) {
  while (!S.empty() && (S.front() == ' ' || S.front() == '\t'))
    S.remove_prefix(1);
  while (!S.empty() && (S.back() == ' ' || S.back() == '\t'))
    S.remove_suffix(1);
  return S;
}

/// Scans the header block (request line excluded, terminator excluded)
/// for a Connection header and resolves the keep-alive intent; absent,
/// \p VersionDefault (1.1 keeps, 1.0 closes) stands.
bool keepAliveFrom(std::string_view Headers, bool VersionDefault) {
  while (!Headers.empty()) {
    size_t Eol = Headers.find("\r\n");
    std::string_view Line =
        Eol == std::string_view::npos ? Headers : Headers.substr(0, Eol);
    Headers.remove_prefix(Eol == std::string_view::npos ? Headers.size()
                                                        : Eol + 2);
    size_t Colon = Line.find(':');
    if (Colon == std::string_view::npos ||
        !iequals(trimmed(Line.substr(0, Colon)), "Connection"))
      continue;
    // The Connection header is a comma-separated token list; "close"
    // anywhere wins, else "keep-alive" anywhere wins.
    std::string_view Value = Line.substr(Colon + 1);
    bool SawKeepAlive = false;
    while (!Value.empty()) {
      size_t Comma = Value.find(',');
      std::string_view Token = trimmed(
          Comma == std::string_view::npos ? Value : Value.substr(0, Comma));
      Value.remove_prefix(Comma == std::string_view::npos ? Value.size()
                                                          : Comma + 1);
      if (iequals(Token, "close"))
        return false;
      if (iequals(Token, "keep-alive"))
        SawKeepAlive = true;
    }
    return SawKeepAlive || VersionDefault;
  }
  return VersionDefault;
}

/// Validates "METHOD SP /target SP HTTP/1.x" and fills \p Out. The
/// method must be short upper-case ASCII, the target must start with
/// '/': binary garbage that happened to reach the HTTP path dies here
/// instead of being ferried around as a "request".
bool parseRequestLine(std::string_view Line, HttpRequest &Out,
                      std::string &Err) {
  size_t Sp1 = Line.find(' ');
  size_t Sp2 = Sp1 == std::string_view::npos ? Sp1 : Line.find(' ', Sp1 + 1);
  if (Sp2 == std::string_view::npos || Line.find(' ', Sp2 + 1) !=
                                           std::string_view::npos) {
    Err = "malformed HTTP request line";
    return false;
  }
  std::string_view Method = Line.substr(0, Sp1);
  std::string_view Target = Line.substr(Sp1 + 1, Sp2 - Sp1 - 1);
  std::string_view Version = Line.substr(Sp2 + 1);
  if (Method.empty() || Method.size() > 16) {
    Err = "malformed HTTP method";
    return false;
  }
  for (char C : Method)
    if (C < 'A' || C > 'Z') {
      Err = "malformed HTTP method";
      return false;
    }
  if (Target.empty() || Target[0] != '/') {
    Err = "malformed HTTP target";
    return false;
  }
  if (Version.substr(0, 7) != "HTTP/1.") {
    Err = "unsupported HTTP version";
    return false;
  }
  Out.Method = std::string(Method);
  Out.Target = std::string(Target);
  // Version default for the Connection header scan: 1.1 persists, 1.0
  // closes.
  Out.KeepAlive = Version != "HTTP/1.0";
  return true;
}

} // namespace

Decode rml::net::parseHttpRequest(std::string_view Buf, size_t &Consumed,
                                  HttpRequest &Out, std::string &Err) {
  Consumed = 0;
  Err.clear();
  // Reject a provably bad request line as soon as it is complete — a
  // garbage connection should not get to stream MaxHttpHeaderBytes of
  // noise before being told no.
  size_t Eol = Buf.find("\r\n");
  if (Eol != std::string_view::npos) {
    HttpRequest Probe;
    if (!parseRequestLine(Buf.substr(0, Eol), Probe, Err))
      return Decode::Bad;
  }
  size_t End = Buf.find("\r\n\r\n");
  if (End == std::string_view::npos) {
    if (Buf.size() > MaxHttpHeaderBytes) {
      Err = "HTTP header block exceeds " +
            std::to_string(MaxHttpHeaderBytes) + " bytes";
      return Decode::Bad;
    }
    return Decode::NeedMore;
  }
  if (!parseRequestLine(Buf.substr(0, Eol), Out, Err))
    return Decode::Bad;
  // The header block spans (request line, blank line); with no headers
  // End == Eol and the block is empty.
  if (End > Eol)
    Out.KeepAlive =
        keepAliveFrom(Buf.substr(Eol + 2, End - Eol - 2), Out.KeepAlive);
  Consumed = End + 4;
  return Decode::Frame;
}

std::string rml::net::httpResponse(int Code, std::string_view Reason,
                                   std::string_view ContentType,
                                   std::string_view Body, bool KeepAlive) {
  std::string Out;
  Out.reserve(Body.size() + 128);
  Out += "HTTP/1.1 ";
  Out += std::to_string(Code);
  Out += " ";
  Out += Reason;
  Out += "\r\nContent-Type: ";
  Out += ContentType;
  Out += "\r\nContent-Length: ";
  Out += std::to_string(Body.size());
  Out += KeepAlive ? "\r\nConnection: keep-alive\r\n\r\n"
                   : "\r\nConnection: close\r\n\r\n";
  Out += Body;
  return Out;
}
