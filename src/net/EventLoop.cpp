//===- net/EventLoop.cpp --------------------------------------------------===//

#include "net/EventLoop.h"

#include <cerrno>
#include <sys/epoll.h>
#include <unistd.h>

using namespace rml;
using namespace rml::net;

IoHandler::~IoHandler() = default;

EventLoop::EventLoop() : Ep(::epoll_create1(EPOLL_CLOEXEC)) {}

EventLoop::~EventLoop() {
  if (Ep >= 0)
    ::close(Ep);
}

bool EventLoop::add(int Fd, uint32_t Events, IoHandler *H) {
  if (Ep < 0 || Fd < 0 || !H)
    return false;
  epoll_event Ev{};
  Ev.events = Events;
  Ev.data.fd = Fd;
  if (::epoll_ctl(Ep, EPOLL_CTL_ADD, Fd, &Ev) != 0)
    return false;
  Handlers[Fd] = H;
  return true;
}

bool EventLoop::mod(int Fd, uint32_t Events, IoHandler *H) {
  if (Ep < 0 || Fd < 0 || !H)
    return false;
  epoll_event Ev{};
  Ev.events = Events;
  Ev.data.fd = Fd;
  if (::epoll_ctl(Ep, EPOLL_CTL_MOD, Fd, &Ev) != 0)
    return false;
  Handlers[Fd] = H;
  return true;
}

void EventLoop::del(int Fd) {
  if (Ep < 0 || Fd < 0)
    return;
  ::epoll_ctl(Ep, EPOLL_CTL_DEL, Fd, nullptr);
  Handlers.erase(Fd);
}

int EventLoop::runOnce(int TimeoutMs) {
  if (Ep < 0)
    return -1;
  epoll_event Evs[64];
  int N = ::epoll_wait(Ep, Evs, 64, TimeoutMs);
  if (N < 0)
    return errno == EINTR ? 0 : -1;
  int Dispatched = 0;
  for (int I = 0; I < N; ++I) {
    // Look the handler up now, not at wait time: an earlier handler in
    // this batch may have del()ed this fd.
    auto It = Handlers.find(Evs[I].data.fd);
    if (It == Handlers.end())
      continue;
    It->second->onIo(Evs[I].events);
    ++Dispatched;
  }
  return Dispatched;
}
