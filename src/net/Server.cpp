//===- net/Server.cpp -----------------------------------------------------===//

#include "net/Server.h"

#include "service/Hash.h"

#include <arpa/inet.h>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/signalfd.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace rml;
using namespace rml::net;

// WireStatus values 0..5 are defined to mirror RequestOutcome so the
// wire mapping is a cast; keep the two enums in lockstep.
static_assert(static_cast<uint8_t>(WireStatus::Ok) ==
              static_cast<uint8_t>(service::RequestOutcome::Ok));
static_assert(static_cast<uint8_t>(WireStatus::CompileError) ==
              static_cast<uint8_t>(service::RequestOutcome::CompileError));
static_assert(static_cast<uint8_t>(WireStatus::RunFailed) ==
              static_cast<uint8_t>(service::RequestOutcome::RunFailed));
static_assert(static_cast<uint8_t>(WireStatus::Budget) ==
              static_cast<uint8_t>(service::RequestOutcome::Budget));
static_assert(static_cast<uint8_t>(WireStatus::Shutdown) ==
              static_cast<uint8_t>(service::RequestOutcome::Shutdown));
static_assert(static_cast<uint8_t>(WireStatus::InternalError) ==
              static_cast<uint8_t>(service::RequestOutcome::InternalError));

namespace {

WireResponse toWire(uint64_t Id, const service::Response &R) {
  WireResponse W;
  W.Id = Id;
  W.Status = static_cast<WireStatus>(static_cast<uint8_t>(R.Status));
  W.CompileOk = R.CompileOk;
  W.CacheHit = R.CacheHit;
  W.Ran = R.Ran;
  W.Schemes = R.Schemes;
  // A capture query never runs, so ResultText is empty and the report
  // rides in the result slot; for every other kind the report is empty.
  W.Result = !R.CaptureReport.empty() ? R.CaptureReport : R.ResultText;
  W.Error = !R.Diagnostics.empty() ? R.Diagnostics : R.Error;
  return W;
}

} // namespace

Server::Server(service::Service &Svc, ServerConfig CfgIn)
    : Svc(Svc), Cfg(std::move(CfgIn)) {
  if (!Loop.ok()) {
    Err = "epoll_create1 failed";
    return;
  }
  CompletionFd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  StopFd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (CompletionFd < 0 || StopFd < 0) {
    Err = "eventfd failed";
    return;
  }
  ListenFd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (ListenFd < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return;
  }
  int One = 1;
  ::setsockopt(ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Cfg.Port);
  if (::inet_pton(AF_INET, Cfg.BindAddr.c_str(), &Addr.sin_addr) != 1) {
    Err = "bad bind address: " + Cfg.BindAddr;
    return;
  }
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
      0) {
    Err = std::string("bind ") + Cfg.BindAddr + ":" +
          std::to_string(Cfg.Port) + ": " + std::strerror(errno);
    return;
  }
  if (::listen(ListenFd, Cfg.Backlog) != 0) {
    Err = std::string("listen: ") + std::strerror(errno);
    return;
  }
  sockaddr_in Bound{};
  socklen_t Len = sizeof(Bound);
  if (::getsockname(ListenFd, reinterpret_cast<sockaddr *>(&Bound), &Len) == 0)
    BoundPort = ntohs(Bound.sin_port);
  CompletionHandler.Fn = [this](uint32_t) { drainCompletions(); };
  StopHandler.Fn = [this](uint32_t) {
    uint64_t Junk;
    while (::read(StopFd, &Junk, sizeof(Junk)) > 0) {
    }
    beginDrain();
  };
  if (!Loop.add(ListenFd, EPOLLIN, this) ||
      !Loop.add(CompletionFd, EPOLLIN, &CompletionHandler) ||
      !Loop.add(StopFd, EPOLLIN, &StopHandler)) {
    Err = "epoll_ctl registration failed";
    return;
  }
}

Server::~Server() {
  if (ListenFd >= 0)
    ::close(ListenFd);
  if (CompletionFd >= 0)
    ::close(CompletionFd);
  if (StopFd >= 0)
    ::close(StopFd);
  if (SignalFd >= 0)
    ::close(SignalFd);
}

bool Server::drainOnSignals(std::initializer_list<int> Sigs) {
  sigset_t Mask;
  sigemptyset(&Mask);
  for (int S : Sigs)
    sigaddset(&Mask, S);
  if (pthread_sigmask(SIG_BLOCK, &Mask, nullptr) != 0)
    return false;
  SignalFd = ::signalfd(-1, &Mask, SFD_NONBLOCK | SFD_CLOEXEC);
  if (SignalFd < 0)
    return false;
  SignalHandler.Fn = [this](uint32_t) {
    signalfd_siginfo Info;
    while (::read(SignalFd, &Info, sizeof(Info)) > 0) {
    }
    beginDrain();
  };
  return Loop.add(SignalFd, EPOLLIN, &SignalHandler);
}

void Server::run() {
  if (!ok())
    return;
  while (!Done) {
    if (Loop.runOnce(Draining ? 50 : -1) < 0)
      break;
    // Destroy connections closed during the batch only now, when no
    // frame of theirs can still be on the call stack.
    Dead.clear();
    if (Draining) {
      if (std::chrono::steady_clock::now() >= DrainDeadline)
        forceCloseAll();
      maybeFinishDrain();
    }
  }
  Dead.clear();
}

void Server::requestDrain() {
  uint64_t One = 1;
  // Signal-safe: one write to a nonblocking eventfd.
  [[maybe_unused]] ssize_t N = ::write(StopFd, &One, sizeof(One));
}

void Server::beginDrain() {
  if (Draining)
    return;
  Draining = true;
  DrainDeadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(Cfg.DrainGraceMs);
  if (ListenFd >= 0) {
    Loop.del(ListenFd);
    ::close(ListenFd);
    ListenFd = -1;
  }
  // Idle connections have nothing to wait for; ones owing responses or
  // mid-flush stay until they drain (or the grace deadline).
  std::vector<Connection *> Idle;
  for (auto &KV : Conns)
    if (KV.second->Pending == 0 && KV.second->writeIdle())
      Idle.push_back(KV.second.get());
  for (Connection *C : Idle)
    closeConn(*C);
  maybeFinishDrain();
}

void Server::forceCloseAll() {
  std::vector<Connection *> All;
  All.reserve(Conns.size());
  for (auto &KV : Conns)
    All.push_back(KV.second.get());
  for (Connection *C : All)
    closeConn(*C);
}

void Server::maybeFinishDrain() {
  if (Draining && Conns.empty() && InService == 0)
    Done = true;
}

void Server::onIo(uint32_t) { acceptConnections(); }

void Server::acceptConnections() {
  for (;;) {
    if (ListenFd < 0)
      return;
    int Fd = ::accept4(ListenFd, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      return; // EAGAIN, or a transient accept failure: wait for epoll
    }
    if (Conns.size() >= Cfg.MaxConnections) {
      {
        std::lock_guard<std::mutex> Lock(StatsMutex);
        ++Stats.AcceptOverflows;
      }
      ::close(Fd);
      continue;
    }
    int One = 1;
    ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
    uint64_t Id = NextConnId++;
    auto C = std::make_unique<Connection>(*this, Fd, Id);
    if (!Loop.add(Fd, EPOLLIN, C.get()))
      continue; // C's destructor closes Fd
    {
      std::lock_guard<std::mutex> Lock(StatsMutex);
      ++Stats.Accepted;
    }
    Conns.emplace(Id, std::move(C));
  }
}

void Server::onRequest(Connection &C, WireRequest Req) {
  {
    std::lock_guard<std::mutex> Lock(StatsMutex);
    ++Stats.BinaryRequests;
  }
  service::Request SR;
  SR.Source = std::move(Req.Source);
  SR.Tenant = Req.Tenant.empty() ? Cfg.TenantDefault : std::move(Req.Tenant);
  SR.DeadlineNanos = Req.DeadlineNanos;
  if (Cfg.StepLimit)
    SR.EvalOpts.StepLimit = Cfg.StepLimit;
  SR.EvalOpts.AdaptiveGc = Cfg.AdaptiveGc;
  if (Cfg.GcPauseBudgetNanos)
    SR.EvalOpts.GcPauseBudgetNanos = Cfg.GcPauseBudgetNanos;
  if (Cfg.GcThresholdWords)
    SR.EvalOpts.GcThresholdWords = Cfg.GcThresholdWords;
  switch (Req.Kind) {
  case MsgKind::Compile:
    SR.Run = false;
    break;
  case MsgKind::CompileRun:
    SR.Run = true;
    break;
  case MsgKind::SchemeQuery:
    SR.Run = false;
    SR.SchemeNames = std::move(Req.SchemeNames);
    break;
  case MsgKind::CaptureQuery:
    SR.Run = false;
    SR.Opts.Captures = true;
    break;
  }
  uint64_t Id = Req.Id;
  uint64_t ConnId = C.id();
  // Deadline-aware admission: when the model has *learned* this exact
  // source's cost (never on the per-byte prior — cold sources always
  // get their chance) and it already exceeds the client's deadline,
  // queueing the request only burns a worker on an answer the client
  // will have given up on. Shed it now, with the prediction.
  if (SR.DeadlineNanos) {
    service::CostModel::Prediction P = Svc.costModel().predict(
        service::hashCompileInputs(SR.Source, SR.Opts), SR.Source.size());
    if (!P.FromPrior && P.Nanos > SR.DeadlineNanos) {
      {
        std::lock_guard<std::mutex> Lock(StatsMutex);
        ++Stats.DeadlineSheds;
        ++Stats.Responses;
      }
      WireResponse W;
      W.Id = Id;
      W.Status = WireStatus::Shed;
      W.Error = "predicted cost " + std::to_string(P.Nanos) +
                "ns exceeds deadline " + std::to_string(SR.DeadlineNanos) +
                "ns: request shed at admission";
      std::string Out;
      encodeResponse(W, Out);
      C.sendBytes(std::move(Out));
      return;
    }
    // Predicted-wait shedding: the request may be cheap enough on its
    // own, but behind the currently queued work it would still miss its
    // deadline. The expected wait is the summed predicted cost of the
    // queued jobs spread over the workers — zero on an idle service, so
    // this path never sheds without actual queueing. Unlike the
    // own-cost check above, prior-based estimates participate: the wait
    // term is an aggregate over many requests, where the prior's noise
    // averages out instead of condemning one source.
    uint64_t Workers = Svc.config().effectiveWorkers();
    uint64_t Wait = Svc.queuedCostNanos() / (Workers ? Workers : 1);
    if (Wait && Wait + P.Nanos > SR.DeadlineNanos) {
      {
        std::lock_guard<std::mutex> Lock(StatsMutex);
        ++Stats.WaitSheds;
        ++Stats.Responses;
      }
      WireResponse W;
      W.Id = Id;
      W.Status = WireStatus::Shed;
      W.Error = "predicted wait " + std::to_string(Wait) + "ns + cost " +
                std::to_string(P.Nanos) + "ns exceeds deadline " +
                std::to_string(SR.DeadlineNanos) +
                "ns: request shed at admission";
      std::string Out;
      encodeResponse(W, Out);
      C.sendBytes(std::move(Out));
      return;
    }
  }
  // Count optimistically so a completion that races the admission
  // return can never observe InService == 0.
  ++InService;
  ++C.Pending;
  bool Admitted = Svc.trySubmit(
      std::move(SR), [this, Id, ConnId](service::Response R) {
        // Worker thread: encode here, hand the loop ready-to-send
        // bytes. Touches only the completion queue and the eventfd.
        std::string Encoded;
        encodeResponse(toWire(Id, R), Encoded);
        pushCompletion({ConnId, std::move(Encoded)});
      });
  if (Admitted)
    return;
  // Queue full: shed at admission, answer immediately from the loop.
  --InService;
  --C.Pending;
  {
    std::lock_guard<std::mutex> Lock(StatsMutex);
    ++Stats.Sheds;
    ++Stats.Responses;
  }
  WireResponse W;
  W.Id = Id;
  W.Status = WireStatus::Shed;
  W.Error = "queue full: request shed at admission";
  std::string Out;
  encodeResponse(W, Out);
  C.sendBytes(std::move(Out));
}

void Server::onHttp(Connection &C, const HttpRequest &Req) {
  {
    std::lock_guard<std::mutex> Lock(StatsMutex);
    ++Stats.HttpRequests;
  }
  // Honor the client's keep-alive intent, bounded: the per-connection
  // cap keeps a scraper from pinning a connection slot forever, and a
  // draining server closes regardless.
  ++C.HttpServed;
  bool Keep = Req.KeepAlive && C.HttpServed < MaxHttpRequestsPerConn &&
              !Draining && !C.PeerClosed;
  std::string Resp;
  if (Req.Method != "GET")
    Resp = httpResponse(405, "Method Not Allowed", "text/plain; charset=utf-8",
                        "method not allowed\n", Keep);
  else if (Req.Target == "/healthz")
    Resp = httpResponse(200, "OK", "text/plain; charset=utf-8", "ok\n", Keep);
  else if (Req.Target == "/stats")
    Resp = httpResponse(200, "OK", "application/json",
                        Svc.stats().json() + "\n", Keep);
  else
    Resp = httpResponse(404, "Not Found", "text/plain; charset=utf-8",
                        "not found\n", Keep);
  C.CloseAfterFlush = !Keep;
  C.sendBytes(std::move(Resp));
}

void Server::onProtocolError(Connection &C, const std::string &What) {
  {
    std::lock_guard<std::mutex> Lock(StatsMutex);
    ++Stats.ProtocolErrors;
  }
  std::string Out;
  if (C.M == Connection::Mode::Http) {
    Out = httpResponse(400, "Bad Request", "text/plain; charset=utf-8",
                       What + "\n");
  } else {
    WireResponse W;
    W.Status = WireStatus::ProtocolError;
    W.Error = What;
    encodeResponse(W, Out);
  }
  C.CloseAfterFlush = true;
  C.sendBytes(std::move(Out));
}

void Server::pushCompletion(Completion Done) {
  {
    std::lock_guard<std::mutex> Lock(CompletionMutex);
    Completions.push_back(std::move(Done));
  }
  uint64_t One = 1;
  [[maybe_unused]] ssize_t N = ::write(CompletionFd, &One, sizeof(One));
}

void Server::drainCompletions() {
  uint64_t Junk;
  while (::read(CompletionFd, &Junk, sizeof(Junk)) > 0) {
  }
  std::vector<Completion> Batch;
  {
    std::lock_guard<std::mutex> Lock(CompletionMutex);
    Batch.swap(Completions);
  }
  for (Completion &Done : Batch) {
    if (InService > 0)
      --InService;
    auto It = Conns.find(Done.ConnId);
    if (It == Conns.end()) {
      // The connection died before its response came back.
      std::lock_guard<std::mutex> Lock(StatsMutex);
      ++Stats.OrphanedCompletions;
      continue;
    }
    Connection &C = *It->second;
    if (C.Pending > 0)
      --C.Pending;
    {
      std::lock_guard<std::mutex> Lock(StatsMutex);
      ++Stats.Responses;
    }
    // A draining server (or a half-closed peer) keeps the connection
    // only as long as responses are owed.
    if ((Draining || C.PeerClosed) && C.Pending == 0)
      C.CloseAfterFlush = true;
    C.sendBytes(std::move(Done.Encoded));
  }
  maybeFinishDrain();
}

void Server::closeConn(Connection &C) {
  if (C.Closed)
    return;
  C.Closed = true;
  Loop.del(C.Fd);
  auto It = Conns.find(C.ConnId);
  if (It != Conns.end()) {
    // Keep the object alive until the current loop batch finishes: a
    // member function of C may still be on the call stack.
    Dead.push_back(std::move(It->second));
    Conns.erase(It);
  }
  {
    std::lock_guard<std::mutex> Lock(StatsMutex);
    ++Stats.Closed;
  }
  maybeFinishDrain();
}

NetStats Server::stats() const {
  std::lock_guard<std::mutex> Lock(StatsMutex);
  return Stats;
}
