//===- rt/Topology.h - CPU/NUMA topology probe ------------------*- C++ -*-===//
//
// Part of RegionML, a reproduction of "Garbage-Collection Safety for
// Region-Based Type-Polymorphic Programs" (Elsman, PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, dependency-free probe of the machine's NUMA layout, read
/// once from sysfs (`/sys/devices/system/node/node*/cpulist`) at first
/// use. The page pool homes its shards on nodes with this so a worker
/// thread's page traffic stays on memory attached to its own socket.
///
/// Deliberately libnuma-free: the probe parses the kernel's cpulist
/// files directly and degrades gracefully — on a single-node machine,
/// a kernel without NUMA sysfs, or any parse failure, it reports one
/// node containing every CPU, which reproduces the pre-NUMA behaviour
/// exactly.
///
//===----------------------------------------------------------------------===//

#ifndef RML_RT_TOPOLOGY_H
#define RML_RT_TOPOLOGY_H

#include <vector>

namespace rml::rt {

/// The machine's NUMA layout. Immutable after construction; the
/// process-wide instance from get() is safe to read from any thread.
class Topology {
public:
  /// The probed topology of this machine (probed once, then cached).
  static const Topology &get();

  /// Number of NUMA nodes, always >= 1.
  unsigned numNodes() const { return Nodes; }

  /// The node owning \p Cpu (0 when the CPU is unknown to the probe).
  unsigned nodeOf(unsigned Cpu) const {
    return Cpu < CpuToNode.size() ? CpuToNode[Cpu] : 0;
  }

  /// The node of the CPU the calling thread is running on right now
  /// (0 when the kernel cannot say). Cheap enough to cache per thread:
  /// migrations across nodes are rare and mis-homing is only a
  /// performance matter, never a correctness one.
  unsigned currentNode() const;

  /// Constructs directly from a cpu->node map (tests). \p CpuToNode[i]
  /// is the node of CPU i; node ids must be dense from 0.
  explicit Topology(std::vector<unsigned> CpuToNodeMap);

private:
  Topology(); // sysfs probe

  unsigned Nodes = 1;
  std::vector<unsigned> CpuToNode;
};

} // namespace rml::rt

#endif // RML_RT_TOPOLOGY_H
