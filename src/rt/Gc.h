//===- rt/Gc.h - Copying collector over regions -----------------*- C++ -*-===//
//
// Part of RegionML, a reproduction of "Garbage-Collection Safety for
// Region-Based Type-Polymorphic Programs" (Elsman, PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Cheney-style copying collector that evacuates every live region's
/// objects into fresh pages *of the same region* (MLKit preserves region
/// identity across collections). Scalars are tagged, boxed objects have
/// headers except in tag-free regions (pair/cons/ref kinds), where the
/// collector derives the layout from the region kind — the partly tag-free
/// scheme of Section 6.
///
/// The collector validates every traced pointer against the live-region
/// address map. A pointer that does not resolve to a live region is a
/// *dangling pointer*: exactly the failure the paper's Figure 1 program
/// provokes under the pre-paper (rg-) typing discipline, and exactly what
/// the rg type system proves impossible (Theorem 2).
///
//===----------------------------------------------------------------------===//

#ifndef RML_RT_GC_H
#define RML_RT_GC_H

#include "rt/Region.h"
#include "rt/Value.h"

#include <optional>
#include <string>
#include <vector>

namespace rml::rt {

/// Result of a collection.
struct GcResult {
  bool Ok = true;
  std::string Error; // dangling-pointer diagnostics when !Ok
  uint64_t CopiedWords = 0;
  /// Live regions the collection traced through (the from-space set).
  uint64_t LiveRegions = 0;
};

/// Collection kinds for the generational extension (the paper's [16,17]
/// integration of regions and generations): a *minor* collection
/// evacuates only pages allocated since the last collection; old-to-young
/// pointers created by mutation must be supplied as extra roots (the
/// evaluator's write barrier records them).
enum class GcKind : uint8_t { Major, Minor };

/// Runs one collection. \p Roots are slots holding values that must
/// survive (environment, temporaries, remembered old-to-young slots,
/// in-flight exception values); the collector updates them in place.
/// With \p Seal, surviving pages are marked old afterwards (generational
/// mode).
GcResult collectGarbage(RegionHeap &Heap, const std::vector<Value *> &Roots,
                        GcKind Kind = GcKind::Major, bool Seal = false);

} // namespace rml::rt

#endif // RML_RT_GC_H
