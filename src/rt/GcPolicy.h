//===- rt/GcPolicy.h - Adaptive collection policy ---------------*- C++ -*-===//
//
// Part of RegionML, a reproduction of "Garbage-Collection Safety for
// Region-Based Type-Polymorphic Programs" (Elsman, PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-run GC trigger policy shared by the tree and flat walkers.
/// In static mode (the default) it reproduces the historical constants
/// bit-for-bit: collect once allocSinceGc reaches GcThresholdWords, and
/// in generational mode make every MinorsPerMajor-th collection major.
/// In adaptive mode it consumes the run's own GcPauseRecord stream and
/// moves two knobs between collections:
///
///  * **Trigger threshold.** The survival ratio of a finished pause
///    (CopiedWords against the window of allocation that triggered it)
///    says whether collecting was worth it. A pause that copied at
///    least half the window mostly recopied live data — the threshold
///    doubles (capped at 16x the configured value) so the next window
///    is wider. A pause that copied under a sixteenth of the window
///    found mostly garbage — the threshold halves (never below the
///    configured value), keeping the heap small at negligible copy
///    cost.
///
///  * **Major cadence.** In generational mode, minor pauses steer
///    MinorsPerMajor the same way: cheap minors (little surviving)
///    push the next major out, survivor-heavy minors pull it in.
///
/// A pause-time budget (EvalOptions::GcPauseBudgetNanos, the runtime
/// analogue of the service's phase budgets) overrides the survival
/// rule: any pause that overruns the budget doubles the threshold
/// outright — collect less often until pauses fit. Over-budget pauses
/// are counted even in static mode (observability without adaptation).
///
/// Everything except the budget check depends only on deterministic
/// inputs (allocation word counts), so the tree and flat evaluators —
/// which produce identical allocation streams by construction — make
/// identical adaptive decisions, and the differential suites can pin
/// results, diagnostics and HeapStats across static vs adaptive runs
/// with only pause shape allowed to differ.
///
//===----------------------------------------------------------------------===//

#ifndef RML_RT_GCPOLICY_H
#define RML_RT_GCPOLICY_H

#include "rt/Gc.h"
#include "support/Trace.h"

#include <cstdint>

namespace rml::rt {

/// What the policy did over one run (the stats-JSON "gc_policy" block
/// aggregates these across requests).
struct GcPolicyStats {
  bool Adaptive = false;
  uint64_t ThresholdRaises = 0;  // survival-driven doublings
  uint64_t ThresholdDrops = 0;   // survival-driven halvings
  uint64_t BudgetBackoffs = 0;   // pause-budget-driven doublings
  uint64_t OverBudgetPauses = 0; // pauses exceeding the budget
  uint64_t MinorsPerMajorRaises = 0;
  uint64_t MinorsPerMajorDrops = 0;
  uint64_t FinalThresholdWords = 0;
  uint64_t FinalMinorsPerMajor = 0;
};

/// One evaluator's collection-trigger policy. Not thread-safe: each
/// run owns one instance, like the heap it polices.
class GcPolicy {
public:
  GcPolicy(bool Adaptive, uint64_t ThresholdWords, unsigned MinorsPerMajor,
           bool Generational, uint64_t PauseBudgetNanos);

  /// Collect now? Called at every allocation point with the words
  /// allocated since the last collection.
  bool shouldCollect(uint64_t AllocSinceGcWords) const {
    return AllocSinceGcWords >= Threshold;
  }

  /// The kind of the collection about to run; advances the
  /// minor/major cadence (generational mode only, exactly like the
  /// historical `++GcTick % MinorsPerMajor`).
  GcKind nextKind();

  /// Feeds one finished pause back into the policy. Returns true when
  /// a knob moved (the caller then emits trace counters).
  bool observe(const GcPauseRecord &Pause);

  uint64_t thresholdWords() const { return Threshold; }
  unsigned minorsPerMajor() const { return MPM; }
  GcPolicyStats stats() const;

private:
  const bool Adaptive;
  const bool Generational;
  const uint64_t InitialThreshold;
  const uint64_t PauseBudget; // nanos; 0 = no budget
  const unsigned InitialMPM;

  uint64_t Threshold;
  unsigned MPM;
  uint64_t Tick = 0;
  GcPolicyStats Counters;
};

} // namespace rml::rt

#endif // RML_RT_GCPOLICY_H
