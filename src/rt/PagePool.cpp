//===- rt/PagePool.cpp ----------------------------------------------------===//

#include "rt/PagePool.h"

#include "rt/Topology.h"

#include <algorithm>
#include <functional>
#include <thread>

using namespace rml;
using namespace rml::rt;

PagePool::PagePool(size_t MaxPages)
    : MaxPages(std::min<size_t>(MaxPages, NoNode - 1)),
      Nodes(this->MaxPages ? std::make_unique<Node[]>(this->MaxPages)
                           : nullptr) {
  // Thread the whole arena onto the node free list: slot I links to
  // I+1, the last slot terminates.
  for (size_t I = 0; I + 1 < this->MaxPages; ++I)
    Nodes[I].Next.store(static_cast<uint32_t>(I + 1),
                        std::memory_order_relaxed);
  if (this->MaxPages) {
    Nodes[this->MaxPages - 1].Next.store(NoNode, std::memory_order_relaxed);
    FreeNodes.store(packHead(0, 0), std::memory_order_relaxed);
  }
}

PagePool::~PagePool() {
  // No concurrent users by contract; free whatever is still pooled.
  for (Shard &S : Shards) {
    uint32_t Idx = headIndex(S.Head.load(std::memory_order_relaxed));
    while (Idx != NoNode) {
      delete[] Nodes[Idx].Page.load(std::memory_order_relaxed);
      Idx = Nodes[Idx].Next.load(std::memory_order_relaxed);
    }
  }
}

const PagePool::ShardOrder &PagePool::shardOrder() {
  // Computed once per thread: workers land on (mostly) distinct home
  // shards within their own NUMA node's partition and keep hitting the
  // same one, so the fast path is one uncontended CAS.
  thread_local const ShardOrder Cached = [] {
    ShardOrder S;
    const Topology &T = Topology::get();
    const size_t NN =
        std::min<size_t>(std::max(1u, T.numNodes()), NumShards);
    const size_t Node = T.currentNode() % NN;
    // Shard I belongs to node I mod NN: interleaved, so every node owns
    // at least floor(NumShards/NN) shards.
    std::array<uint8_t, NumShards> Mine{}, Others{};
    size_t MineCnt = 0, OtherCnt = 0;
    for (size_t I = 0; I < NumShards; ++I) {
      if (I % NN == Node)
        Mine[MineCnt++] = static_cast<uint8_t>(I);
      else
        Others[OtherCnt++] = static_cast<uint8_t>(I);
    }
    const size_t Hash =
        std::hash<std::thread::id>{}(std::this_thread::get_id());
    const size_t Rot = MineCnt ? Hash % MineCnt : 0;
    size_t K = 0;
    for (size_t I = 0; I < MineCnt; ++I)
      S.Order[K++] = Mine[(Rot + I) % MineCnt];
    for (size_t I = 0; I < OtherCnt; ++I)
      S.Order[K++] = Others[I];
    S.NodeCount = static_cast<uint8_t>(MineCnt ? MineCnt : 1);
    return S;
  }();
  return Cached;
}

//===----------------------------------------------------------------------===//
// Treiber primitives
//===----------------------------------------------------------------------===//

uint32_t PagePool::popNode(std::atomic<uint64_t> &Head) {
  uint64_t Old = Head.load(std::memory_order_acquire);
  for (;;) {
    uint32_t Idx = headIndex(Old);
    if (Idx == NoNode)
      return NoNode;
    // Speculative: Old may be stale and Idx already recycled onto
    // another list. Next is atomic and Idx is an always-live arena
    // slot, so the read is benign; the tag makes the CAS fail then.
    uint32_t Next = Nodes[Idx].Next.load(std::memory_order_relaxed);
    if (Head.compare_exchange_weak(Old, packHead(Next, headTag(Old) + 1),
                                   std::memory_order_acq_rel,
                                   std::memory_order_acquire))
      return Idx;
  }
}

void PagePool::pushChain(std::atomic<uint64_t> &Head, uint32_t First,
                         uint32_t Last) {
  uint64_t Old = Head.load(std::memory_order_relaxed);
  for (;;) {
    Nodes[Last].Next.store(headIndex(Old), std::memory_order_relaxed);
    if (Head.compare_exchange_weak(Old, packHead(First, headTag(Old) + 1),
                                   std::memory_order_release,
                                   std::memory_order_relaxed))
      return;
  }
}

uint32_t PagePool::detachChain(std::atomic<uint64_t> &Head) {
  uint64_t Old = Head.load(std::memory_order_acquire);
  for (;;) {
    uint32_t Idx = headIndex(Old);
    if (Idx == NoNode)
      return NoNode;
    if (Head.compare_exchange_weak(Old, packHead(NoNode, headTag(Old) + 1),
                                   std::memory_order_acq_rel,
                                   std::memory_order_acquire))
      return Idx;
  }
}

uint64_t *PagePool::popPage(Shard &S) {
  uint32_t Idx = popNode(S.Head);
  if (Idx == NoNode)
    return nullptr;
  uint64_t *Page = Nodes[Idx].Page.load(std::memory_order_relaxed);
  Nodes[Idx].Page.store(nullptr, std::memory_order_relaxed);
  pushChain(FreeNodes, Idx, Idx);
  TotalFree.fetch_sub(1, std::memory_order_relaxed);
  return Page;
}

size_t PagePool::reserveSlots(size_t Want) {
  // Win capacity under the bound before touching a shard, so a
  // concurrent release/prewarm mix can never overshoot MaxPages. The
  // arena holds exactly MaxPages nodes and every held node is covered
  // by a reserved slot, so a won slot guarantees a free node.
  size_t Cur = TotalFree.load(std::memory_order_relaxed);
  for (;;) {
    size_t Got = Cur < MaxPages ? std::min(Want, MaxPages - Cur) : 0;
    if (Got == 0)
      return 0;
    if (TotalFree.compare_exchange_weak(Cur, Cur + Got,
                                        std::memory_order_relaxed))
      return Got;
  }
}

//===----------------------------------------------------------------------===//
// Public API
//===----------------------------------------------------------------------===//

std::unique_ptr<uint64_t[]> PagePool::acquire() {
  const ShardOrder &O = shardOrder();
  // Home-shard fast path: one CAS, no lock.
  if (uint64_t *Page = popPage(Shards[O.Order[0]])) {
    Hits.fetch_add(1, std::memory_order_relaxed);
    return std::unique_ptr<uint64_t[]>(Page);
  }
  // Steal path: same-node shards first, then remote. The mutex only
  // serializes stealers against each other — threads hitting their
  // home shard never wait on it.
  if (TotalFree.load(std::memory_order_relaxed) > 0) {
    std::lock_guard<std::mutex> Lock(StealM);
    Locks.fetch_add(1, std::memory_order_relaxed);
    for (size_t I = 1; I < NumShards; ++I)
      if (uint64_t *Page = popPage(Shards[O.Order[I]])) {
        StealCount.fetch_add(1, std::memory_order_relaxed);
        Hits.fetch_add(1, std::memory_order_relaxed);
        return std::unique_ptr<uint64_t[]>(Page);
      }
  }
  Misses.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

void PagePool::release(std::unique_ptr<uint64_t[]> Buf) {
  if (!Buf)
    return;
  if (reserveSlots(1) == 0) {
    Trims.fetch_add(1, std::memory_order_relaxed);
    return; // Buf's destructor frees the page (the pool is full)
  }
  uint32_t Idx = popNode(FreeNodes);
  if (Idx == NoNode) { // unreachable by the slot/node invariant
    TotalFree.fetch_sub(1, std::memory_order_relaxed);
    Trims.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Nodes[Idx].Page.store(Buf.release(), std::memory_order_relaxed);
  Accepted.fetch_add(1, std::memory_order_relaxed);
  pushChain(Shards[shardOrder().Order[0]].Head, Idx, Idx);
}

size_t PagePool::acquireMany(std::vector<std::unique_ptr<uint64_t[]>> &Out,
                             size_t Pages) {
  if (Pages == 0)
    return 0;
  BatchAcq.fetch_add(1, std::memory_order_relaxed);
  const ShardOrder &O = shardOrder();
  size_t Got = 0;

  // Detach the whole home chain once, take up to Pages off its front
  // (preserving LIFO order), and re-prepend any remainder with one CAS.
  uint32_t Chain = detachChain(Shards[O.Order[0]].Head);
  uint32_t TakenFirst = NoNode, TakenLast = NoNode;
  while (Chain != NoNode && Got < Pages) {
    uint32_t Idx = Chain;
    Chain = Nodes[Idx].Next.load(std::memory_order_relaxed);
    Out.emplace_back(Nodes[Idx].Page.load(std::memory_order_relaxed));
    Nodes[Idx].Page.store(nullptr, std::memory_order_relaxed);
    Nodes[Idx].Next.store(TakenFirst, std::memory_order_relaxed);
    if (TakenFirst == NoNode)
      TakenLast = Idx;
    TakenFirst = Idx;
    ++Got;
  }
  if (Chain != NoNode) {
    uint32_t Last = Chain;
    for (uint32_t Next;
         (Next = Nodes[Last].Next.load(std::memory_order_relaxed)) != NoNode;)
      Last = Next;
    pushChain(Shards[O.Order[0]].Head, Chain, Last);
  }
  if (TakenFirst != NoNode) {
    pushChain(FreeNodes, TakenFirst, TakenLast);
    TotalFree.fetch_sub(Got, std::memory_order_relaxed);
  }

  // Steal for the shortfall so a batch behaves like that many single
  // acquires, just with the home shard touched once.
  if (Got < Pages && TotalFree.load(std::memory_order_relaxed) > 0) {
    std::lock_guard<std::mutex> Lock(StealM);
    Locks.fetch_add(1, std::memory_order_relaxed);
    for (size_t I = 1; I < NumShards && Got < Pages; ++I)
      while (Got < Pages) {
        uint64_t *Page = popPage(Shards[O.Order[I]]);
        if (!Page)
          break;
        Out.emplace_back(Page);
        StealCount.fetch_add(1, std::memory_order_relaxed);
        ++Got;
      }
  }

  Hits.fetch_add(Got, std::memory_order_relaxed);
  Misses.fetch_add(Pages - Got, std::memory_order_relaxed);
  return Got;
}

void PagePool::releaseMany(std::vector<std::unique_ptr<uint64_t[]>> Bufs) {
  Bufs.erase(std::remove_if(
                 Bufs.begin(), Bufs.end(),
                 [](const std::unique_ptr<uint64_t[]> &B) { return !B; }),
             Bufs.end());
  if (Bufs.empty())
    return;
  BatchRel.fetch_add(1, std::memory_order_relaxed);
  size_t Won = reserveSlots(Bufs.size());
  if (Won < Bufs.size())
    Trims.fetch_add(Bufs.size() - Won, std::memory_order_relaxed);
  if (Won == 0)
    return; // the vector's destructors free everything

  // Pre-link the accepted pages into one chain, then prepend it onto
  // the home shard with a single CAS: one shard touch per heap.
  uint32_t First = NoNode, Last = NoNode;
  size_t Linked = 0;
  for (size_t I = 0; I < Won; ++I) {
    uint32_t Idx = popNode(FreeNodes);
    if (Idx == NoNode) // unreachable by the slot/node invariant
      break;
    Nodes[Idx].Page.store(Bufs[I].release(), std::memory_order_relaxed);
    Nodes[Idx].Next.store(First, std::memory_order_relaxed);
    if (First == NoNode)
      Last = Idx;
    First = Idx;
    ++Linked;
  }
  if (Linked < Won) {
    TotalFree.fetch_sub(Won - Linked, std::memory_order_relaxed);
    Trims.fetch_add(Won - Linked, std::memory_order_relaxed);
  }
  if (Linked) {
    Accepted.fetch_add(Linked, std::memory_order_relaxed);
    pushChain(Shards[shardOrder().Order[0]].Head, First, Last);
  }
}

size_t PagePool::prewarm(size_t Pages) {
  const ShardOrder &O = shardOrder();
  size_t Added = 0;
  while (Added < Pages) {
    if (reserveSlots(1) == 0)
      break;
    uint32_t Idx = popNode(FreeNodes);
    if (Idx == NoNode) { // unreachable by the slot/node invariant
      TotalFree.fetch_sub(1, std::memory_order_relaxed);
      break;
    }
    auto Buf = std::make_unique<uint64_t[]>(PageWords);
    Nodes[Idx].Page.store(Buf.release(), std::memory_order_relaxed);
    // Spread across the calling thread's node partition only: a warm
    // page on a remote node would miss the point of prewarming.
    pushChain(Shards[O.Order[Added % O.NodeCount]].Head, Idx, Idx);
    ++Added;
  }
  Prewarms.fetch_add(Added, std::memory_order_relaxed);
  return Added;
}

void PagePool::trim() {
  // The mutex coordinates with concurrent steal scans and other trims
  // only; each shard is drained with one CAS, so the home-shard hit
  // path never serializes behind a trim.
  std::lock_guard<std::mutex> Lock(StealM);
  Locks.fetch_add(1, std::memory_order_relaxed);
  for (Shard &S : Shards) {
    uint32_t Chain = detachChain(S.Head);
    if (Chain == NoNode)
      continue;
    size_t N = 0;
    uint32_t Idx = Chain, Last = Chain;
    while (Idx != NoNode) {
      delete[] Nodes[Idx].Page.load(std::memory_order_relaxed);
      Nodes[Idx].Page.store(nullptr, std::memory_order_relaxed);
      Last = Idx;
      Idx = Nodes[Idx].Next.load(std::memory_order_relaxed);
      ++N;
    }
    pushChain(FreeNodes, Chain, Last);
    TotalFree.fetch_sub(N, std::memory_order_relaxed);
    Trims.fetch_add(N, std::memory_order_relaxed);
  }
}

PagePoolStats PagePool::stats() const {
  PagePoolStats Out;
  Out.AcquireHits = Hits.load(std::memory_order_relaxed);
  Out.AcquireMisses = Misses.load(std::memory_order_relaxed);
  Out.Releases = Accepted.load(std::memory_order_relaxed);
  Out.Trims = Trims.load(std::memory_order_relaxed);
  Out.Prewarmed = Prewarms.load(std::memory_order_relaxed);
  Out.Steals = StealCount.load(std::memory_order_relaxed);
  Out.BatchAcquires = BatchAcq.load(std::memory_order_relaxed);
  Out.BatchReleases = BatchRel.load(std::memory_order_relaxed);
  Out.LockAcquires = Locks.load(std::memory_order_relaxed);
  Out.FreePages = TotalFree.load(std::memory_order_relaxed);
  Out.Capacity = MaxPages;
  return Out;
}
