//===- rt/PagePool.cpp ----------------------------------------------------===//

#include "rt/PagePool.h"

#include <functional>
#include <thread>

using namespace rml;
using namespace rml::rt;

PagePool::PagePool(size_t MaxPages) : MaxPages(MaxPages) {}

size_t PagePool::homeShard() {
  // One hash per thread: workers land on (mostly) distinct shards and
  // keep hitting the same one, so the fast path is an uncontended lock.
  thread_local const size_t Home =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % NumShards;
  return Home;
}

std::unique_ptr<uint64_t[]> PagePool::acquire() {
  size_t Start = homeShard();
  for (size_t I = 0; I < NumShards; ++I) {
    Shard &S = Shards[(Start + I) % NumShards];
    std::lock_guard<std::mutex> Lock(S.M);
    if (S.Free.empty())
      continue; // steal from the next shard
    std::unique_ptr<uint64_t[]> Buf = std::move(S.Free.back());
    S.Free.pop_back();
    TotalFree.fetch_sub(1, std::memory_order_relaxed);
    Hits.fetch_add(1, std::memory_order_relaxed);
    return Buf;
  }
  Misses.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

void PagePool::release(std::unique_ptr<uint64_t[]> Buf) {
  if (!Buf)
    return;
  // Reserve a slot under the bound before touching a shard; on failure
  // the page is simply freed (the pool is full).
  size_t Cur = TotalFree.load(std::memory_order_relaxed);
  do {
    if (Cur >= MaxPages) {
      Trims.fetch_add(1, std::memory_order_relaxed);
      return; // Buf's destructor frees the page
    }
  } while (!TotalFree.compare_exchange_weak(Cur, Cur + 1,
                                            std::memory_order_relaxed));
  Accepted.fetch_add(1, std::memory_order_relaxed);
  Shard &S = Shards[homeShard()];
  std::lock_guard<std::mutex> Lock(S.M);
  S.Free.push_back(std::move(Buf));
}

size_t PagePool::prewarm(size_t Pages) {
  size_t Added = 0;
  while (Added < Pages) {
    // Reserve a slot under the bound, exactly as release() does, so a
    // concurrent prewarm/release mix can never overshoot MaxPages.
    size_t Cur = TotalFree.load(std::memory_order_relaxed);
    for (;;) {
      if (Cur >= MaxPages) {
        Prewarms.fetch_add(Added, std::memory_order_relaxed);
        return Added;
      }
      if (TotalFree.compare_exchange_weak(Cur, Cur + 1,
                                          std::memory_order_relaxed))
        break;
    }
    auto Buf = std::make_unique<uint64_t[]>(PageWords);
    Shard &S = Shards[Added % NumShards]; // spread across the shards
    std::lock_guard<std::mutex> Lock(S.M);
    S.Free.push_back(std::move(Buf));
    ++Added;
  }
  Prewarms.fetch_add(Added, std::memory_order_relaxed);
  return Added;
}

void PagePool::trim() {
  for (Shard &S : Shards) {
    std::vector<std::unique_ptr<uint64_t[]>> Drop;
    {
      std::lock_guard<std::mutex> Lock(S.M);
      Drop.swap(S.Free);
    }
    TotalFree.fetch_sub(Drop.size(), std::memory_order_relaxed);
    Trims.fetch_add(Drop.size(), std::memory_order_relaxed);
    // Drop's destructor frees the pages outside the lock.
  }
}

PagePoolStats PagePool::stats() const {
  PagePoolStats Out;
  Out.AcquireHits = Hits.load(std::memory_order_relaxed);
  Out.AcquireMisses = Misses.load(std::memory_order_relaxed);
  Out.Releases = Accepted.load(std::memory_order_relaxed);
  Out.Trims = Trims.load(std::memory_order_relaxed);
  Out.Prewarmed = Prewarms.load(std::memory_order_relaxed);
  Out.FreePages = TotalFree.load(std::memory_order_relaxed);
  Out.Capacity = MaxPages;
  return Out;
}
