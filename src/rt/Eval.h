//===- rt/Eval.h - Region-aware evaluator -----------------------*- C++ -*-===//
//
// Part of RegionML, a reproduction of "Garbage-Collection Safety for
// Region-Based Type-Polymorphic Programs" (Elsman, PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The realistic runtime: compiles a region-annotated program to a small
/// code table (one entry per lambda/fun with its capture and free-region
/// sets) and interprets it against the region heap, interleaving the
/// copying collector at allocation points — the execution model whose
/// safety Theorem 2 (containment) establishes.
///
///  * letregion creates/destroys regions following the stack discipline;
///  * closures are region-allocated records holding captured values plus
///    the region parameters bound by region application ([Rapp]);
///  * the collector runs when the allocation budget is exceeded, rooted
///    in the evaluator's environment and temporary stacks;
///  * under the unsound rg- annotations the collector reports a dangling
///    pointer (DanglingPointer outcome) — the paper's observable crash;
///  * exceptions unwind through letregion, releasing regions on the way
///    (their values live in the global region, Section 4.4).
///
//===----------------------------------------------------------------------===//

#ifndef RML_RT_EVAL_H
#define RML_RT_EVAL_H

#include "region/RExpr.h"
#include "rinfer/DropRegions.h"
#include "rinfer/Multiplicity.h"
#include "rinfer/RegionKinds.h"
#include "rt/GcPolicy.h"
#include "rt/Region.h"
#include "rt/Value.h"
#include "support/Interner.h"
#include "support/Trace.h"

#include <optional>
#include <string>
#include <vector>

namespace rml::rt {

/// Evaluator configuration.
struct EvalOptions {
  bool GcEnabled = true;
  uint64_t GcThresholdWords = 32 * 1024; // collect when exceeded
  bool TagFreePairs = true;              // partly tag-free representation
  bool UseFiniteRegions = true;          // multiplicity-driven sizing
  bool RetainReleasedPages = false;      // exact dangling detection
  uint64_t StepLimit = 400'000'000;      // interpreter fuel
  /// Native-stack budget for the tree-walking interpreter (no tail-call
  /// optimisation): once the evaluator has consumed this much C++ stack,
  /// the run fails gracefully instead of overflowing. Self-adjusts to
  /// frame sizes across build modes.
  size_t StackLimitBytes = 6u * 1024 * 1024 + 512 * 1024;
  /// Generational collection (the paper's [16,17] integration): minor
  /// collections evacuate only pages younger than the last collection,
  /// with a write barrier on assignments recording old-to-young slots; a
  /// major collection runs every MinorsPerMajor-th time.
  bool Generational = false;
  unsigned MinorsPerMajor = 8;
  /// Adaptive GC policy (see rt/GcPolicy.h): the run's GcPolicy moves
  /// the trigger threshold (and, in generational mode, the major
  /// cadence) from the pause history instead of holding them at the
  /// configured constants. Never changes results or diagnostics — only
  /// pause shape.
  bool AdaptiveGc = false;
  /// Pause-time budget in nanoseconds (0 = none): pauses that overrun
  /// it are counted, and in adaptive mode the policy backs collection
  /// frequency off until pauses fit.
  uint64_t GcPauseBudgetNanos = 0;
  /// Optional cross-request page pool (non-owning; must outlive the
  /// run). The run's heap draws standard pages from it and recycles
  /// them back on teardown. Ignored while RetainReleasedPages is on —
  /// exact dangling detection quarantines the pool (see rt/PagePool.h).
  PagePool *SharedPool = nullptr;
  /// Optional streaming sink for collector pauses (non-owning; must
  /// outlive the run and be thread-safe if runs share it). Each
  /// collection delivers one TraceSink::recordGcPause as it ends. The
  /// pauses also accumulate in RunResult::GcPauses regardless, and
  /// Compiler::run folds them into the run PhaseProfile — so a sink
  /// that already records run profiles must NOT also be installed here
  /// or it would see every pause twice.
  TraceSink *PauseSink = nullptr;
};

/// How a run ended.
enum class RunOutcome : uint8_t {
  Ok,
  UncaughtException,
  DanglingPointer, // the GC traced a pointer into a dead region
  RuntimeError,    // division by zero, fuel exhausted, internal error
};

struct RunResult {
  RunOutcome Outcome = RunOutcome::Ok;
  std::string Error;
  std::string Output;      // everything print-ed
  std::string ResultText;  // rendered final value
  HeapStats Heap;
  /// Per-static-region runtime profiles (allocation-heaviest first).
  std::vector<RegionProfile> Regions;
  uint64_t Steps = 0;
  /// Every collector stall of the run, in pause order (begin time, wall
  /// nanos, kind, copied words, live regions).
  std::vector<GcPauseRecord> GcPauses;
  /// What the run's GC policy did (threshold moves, budget overruns,
  /// final knob positions). Static-mode runs report zero moves.
  GcPolicyStats Policy;
  /// The runtime phase's profile (name Compiler::RunPhaseName, wall
  /// time, HeapStats fold-in, GcPauses fold-in). Filled by
  /// Compiler::run, which times the whole execution; empty when
  /// runProgram is called directly.
  PhaseProfile Phase;
};

/// Compiles and runs \p P.
RunResult runProgram(const RProgram &P, const Mu *RootMu,
                     const MultiplicityInfo &Mult, const RegionKindInfo &Kinds,
                     const DropInfo &Drops, const Interner &Names,
                     const EvalOptions &Opts);

} // namespace rml::rt

#endif // RML_RT_EVAL_H
