//===- rt/PagePool.h - Cross-request shared page pool -----------*- C++ -*-===//
//
// Part of RegionML, a reproduction of "Garbage-Collection Safety for
// Region-Based Type-Polymorphic Programs" (Elsman, PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide pool of standard region pages, shared across the
/// otherwise-private RegionHeaps of concurrent service workers. Every
/// `run` builds and tears down its own heap; without the pool each of
/// those round-trips every 2 KiB page through the system allocator,
/// and that churn dominates small-request latency. With the pool a
/// heap's standard pages are recycled into sharded free lists on heap
/// destruction and handed to the next request's heap on demand.
///
/// Design points (v2 — lock-free fast path):
///
///  * **Treiber free lists, no lock on the home shard.** Each shard is
///    a lock-free stack of free pages. The stack links live in a
///    fixed arena of index-linked nodes (one node per capacity slot,
///    never freed), not in the page memory itself: a stalled pop may
///    still read a node another thread just recycled, and keeping
///    those speculative reads on atomic fields of always-live nodes
///    makes the race benign by construction instead of by argument.
///    Heads carry a 32-bit ABA tag next to the 32-bit node index.
///
///  * **NUMA-aware homing.** Shards are partitioned across the NUMA
///    nodes reported by rt::Topology (single-node machines see the old
///    behaviour); a thread's home shard is picked among its own node's
///    shards, and prewarm fills the calling thread's node partition.
///    An acquire that finds its home shard empty steals from the other
///    shards — same-node shards first — before reporting a miss. Only
///    stealers and trim() take the pool's one mutex; the home-shard
///    hit path and release path are mutex-free, so a concurrent trim
///    or steal storm can never serialize hot acquires. Mutex
///    acquisitions are counted (LockAcquires) so benchmarks can show
///    locks per request.
///
///  * **Batch hand-offs.** releaseMany prepends a whole heap's pages
///    as one pre-linked chain with a single CAS on the home shard —
///    RegionHeap teardown touches the shard once per heap instead of
///    once per page. acquireMany detaches the home chain once and
///    takes up to N pages from it.
///
///  * **Bounded capacity.** The pool never holds more than MaxPages
///    pages in total (tracked by one atomic counter); releases beyond
///    the bound free the page instead (counted as a trim), so a burst
///    of huge heaps cannot pin memory forever. The same bound sizes
///    the node arena, which is why a release that won a capacity slot
///    is always guaranteed a free node.
///
///  * **Standard pages only.** The pool stores raw page buffers of
///    exactly RegionHeap::PageWords words. Oversized (finite-region)
///    blocks bypass it entirely — callers only release standard pages.
///
///  * **Safety w.r.t. exact dangling detection.** A pooled page must
///    never be handed out while `RetainReleasedPages` detection could
///    still attribute it to a dead region: a RegionHeap running with
///    detection on keeps every released page in its graveyard and
///    neither feeds the pool nor draws from it (see RegionHeap).
///
/// Thread safety: every member function is safe from any thread; the
/// counters are relaxed atomics (they are statistics, not
/// synchronisation — the release/acquire CAS pair on each list head
/// orders the page hand-offs).
///
//===----------------------------------------------------------------------===//

#ifndef RML_RT_PAGEPOOL_H
#define RML_RT_PAGEPOOL_H

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace rml::rt {

/// A point-in-time snapshot of the pool's counters.
struct PagePoolStats {
  uint64_t AcquireHits = 0;   // acquires served from the pool
  uint64_t AcquireMisses = 0; // acquires that found the pool empty
  uint64_t Releases = 0;      // pages accepted into the pool
  uint64_t Trims = 0;         // pages freed (over capacity, or trim())
  uint64_t Prewarmed = 0;     // pages allocated eagerly by prewarm()
  uint64_t Steals = 0;        // hits served from a non-home shard
  uint64_t BatchAcquires = 0; // acquireMany calls
  uint64_t BatchReleases = 0; // releaseMany calls
  uint64_t LockAcquires = 0;  // mutex acquisitions (steal scans, trims)
  uint64_t FreePages = 0;     // pages currently pooled
  uint64_t Capacity = 0;      // the bound (MaxPages)

  /// Fraction of page demand served by reuse, in [0,1].
  double reuseRatio() const {
    uint64_t Total = AcquireHits + AcquireMisses;
    return Total ? static_cast<double>(AcquireHits) / Total : 0.0;
  }
};

/// A bounded, sharded, lock-free free list of standard page buffers.
class PagePool {
public:
  static constexpr size_t NumShards = 8;
  static constexpr size_t DefaultMaxPages = 1024;
  /// Words per standard page — the one buffer size the pool stores.
  /// RegionHeap::PageWords aliases this constant, so the pool and the
  /// heap can never disagree about the unit.
  static constexpr size_t PageWords = 256; // 2 KiB

  explicit PagePool(size_t MaxPages = DefaultMaxPages);
  ~PagePool();

  PagePool(const PagePool &) = delete;
  PagePool &operator=(const PagePool &) = delete;

  /// A recycled standard page buffer, or null when the pool is empty
  /// (the caller then allocates fresh). Counts a hit or a miss.
  std::unique_ptr<uint64_t[]> acquire();

  /// Hands a standard page buffer back. Frees it instead when the pool
  /// already holds MaxPages pages (counted as a trim). \p Buf must be
  /// exactly RegionHeap::PageWords words — oversized blocks bypass the
  /// pool by contract.
  void release(std::unique_ptr<uint64_t[]> Buf);

  /// Appends up to \p Pages recycled buffers to \p Out, draining the
  /// home shard's chain in one detach and stealing for any shortfall.
  /// Counts one hit per page served and one miss per unfilled slot
  /// (the caller allocates those fresh), so the reuse ratio means the
  /// same thing whether demand arrives singly or batched. Returns the
  /// number appended.
  size_t acquireMany(std::vector<std::unique_ptr<uint64_t[]>> &Out,
                     size_t Pages);

  /// Hands a whole heap's standard pages back with a single CAS on the
  /// home shard. Pages beyond the capacity bound are freed (counted as
  /// trims), exactly as release() would.
  void releaseMany(std::vector<std::unique_ptr<uint64_t[]>> Bufs);

  /// Frees every pooled page (counted as trims). Never blocks the
  /// home-shard hit path: each shard's chain is detached with one CAS
  /// and freed outside any shared state.
  void trim();

  /// Eagerly allocates up to \p Pages standard pages into the free
  /// lists (spread round-robin across the calling thread's NUMA node's
  /// shards), stopping at the capacity bound. A cold service otherwise
  /// pays one allocator miss per page of the first request wave; a
  /// prewarmed pool serves that wave entirely from reuse. Returns how
  /// many pages were added.
  size_t prewarm(size_t Pages);

  PagePoolStats stats() const;
  size_t freePages() const { return TotalFree.load(std::memory_order_relaxed); }
  size_t capacity() const { return MaxPages; }

private:
  /// One link of a Treiber stack. Nodes live in the arena for the
  /// pool's whole lifetime and cycle between the shard chains and the
  /// node free list; every field a concurrent thread may read
  /// speculatively is atomic, so a stale pop attempt is a failed CAS,
  /// never a racy read.
  struct Node {
    std::atomic<uint32_t> Next{0};
    std::atomic<uint64_t *> Page{nullptr};
  };

  /// Head word layout: (ABA tag << 32) | node index.
  static constexpr uint32_t NoNode = UINT32_MAX;
  static constexpr uint64_t EmptyHead = NoNode;
  static uint32_t headIndex(uint64_t Head) {
    return static_cast<uint32_t>(Head);
  }
  static uint64_t packHead(uint32_t Index, uint64_t Tag) {
    return (Tag << 32) | Index;
  }
  static uint64_t headTag(uint64_t Head) { return Head >> 32; }

  /// Padded so two shards' heads never share a cache line.
  struct alignas(64) Shard {
    std::atomic<uint64_t> Head{EmptyHead};
  };

  /// This thread's home shard and its steal order (same-NUMA-node
  /// shards before remote ones), computed once per thread.
  struct ShardOrder {
    std::array<uint8_t, NumShards> Order; // Order[0] is home
    uint8_t NodeCount = NumShards;        // same-node prefix of Order
  };
  static const ShardOrder &shardOrder();

  // Treiber primitives over the node arena.
  uint32_t popNode(std::atomic<uint64_t> &Head);
  void pushChain(std::atomic<uint64_t> &Head, uint32_t First, uint32_t Last);
  /// Detaches a shard's whole chain (its first node index, or NoNode).
  uint32_t detachChain(std::atomic<uint64_t> &Head);

  /// Pops one page off \p Shard; null when that shard is empty.
  uint64_t *popPage(Shard &S);
  /// Reserves up to \p Want capacity slots; returns how many were won.
  size_t reserveSlots(size_t Want);

  const size_t MaxPages;
  std::array<Shard, NumShards> Shards;
  /// Free Node indices (arena slots not currently carrying a page).
  std::atomic<uint64_t> FreeNodes{EmptyHead};
  std::unique_ptr<Node[]> Nodes; // arena of MaxPages nodes
  /// Serializes cross-shard steal scans and trims against each other
  /// only — the home-shard acquire/release paths never touch it.
  std::mutex StealM;
  /// Pages currently pooled, summed over shards; the capacity bound is
  /// enforced on this counter so the total never exceeds MaxPages.
  std::atomic<size_t> TotalFree{0};
  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Misses{0};
  std::atomic<uint64_t> Accepted{0};
  std::atomic<uint64_t> Trims{0};
  std::atomic<uint64_t> Prewarms{0};
  std::atomic<uint64_t> StealCount{0};
  std::atomic<uint64_t> BatchAcq{0};
  std::atomic<uint64_t> BatchRel{0};
  std::atomic<uint64_t> Locks{0};
};

} // namespace rml::rt

#endif // RML_RT_PAGEPOOL_H
