//===- rt/PagePool.h - Cross-request shared page pool -----------*- C++ -*-===//
//
// Part of RegionML, a reproduction of "Garbage-Collection Safety for
// Region-Based Type-Polymorphic Programs" (Elsman, PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide pool of standard region pages, shared across the
/// otherwise-private RegionHeaps of concurrent service workers. Every
/// `run` builds and tears down its own heap; without the pool each of
/// those round-trips every 2 KiB page through the system allocator,
/// and that churn dominates small-request latency. With the pool a
/// heap's standard pages are recycled into sharded free lists on heap
/// destruction and handed to the next request's heap on demand.
///
/// Design points:
///
///  * **Sharded free lists, striped locks.** NumShards independent
///    vectors, each behind its own mutex; a thread's home shard is a
///    hash of its thread id, so workers mostly touch distinct shards.
///    An acquire that finds its home shard empty steals from the
///    others before reporting a miss.
///
///  * **Bounded capacity.** The pool never holds more than MaxPages
///    pages in total (tracked by one atomic counter); releases beyond
///    the bound free the page instead (counted as a trim), so a burst
///    of huge heaps cannot pin memory forever.
///
///  * **Standard pages only.** The pool stores raw page buffers of
///    exactly RegionHeap::PageWords words. Oversized (finite-region)
///    blocks bypass it entirely — callers only release standard pages.
///
///  * **Safety w.r.t. exact dangling detection.** A pooled page must
///    never be handed out while `RetainReleasedPages` detection could
///    still attribute it to a dead region: a RegionHeap running with
///    detection on keeps every released page in its graveyard and
///    neither feeds the pool nor draws from it (see RegionHeap).
///
/// Thread safety: every member function is safe from any thread; the
/// counters are relaxed atomics (they are statistics, not
/// synchronisation — the shard mutexes order the page hand-offs).
///
//===----------------------------------------------------------------------===//

#ifndef RML_RT_PAGEPOOL_H
#define RML_RT_PAGEPOOL_H

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace rml::rt {

/// A point-in-time snapshot of the pool's counters.
struct PagePoolStats {
  uint64_t AcquireHits = 0;   // acquires served from the pool
  uint64_t AcquireMisses = 0; // acquires that found the pool empty
  uint64_t Releases = 0;      // pages accepted into the pool
  uint64_t Trims = 0;         // pages freed (over capacity, or trim())
  uint64_t Prewarmed = 0;     // pages allocated eagerly by prewarm()
  uint64_t FreePages = 0;     // pages currently pooled
  uint64_t Capacity = 0;      // the bound (MaxPages)

  /// Fraction of page demand served by reuse, in [0,1].
  double reuseRatio() const {
    uint64_t Total = AcquireHits + AcquireMisses;
    return Total ? static_cast<double>(AcquireHits) / Total : 0.0;
  }
};

/// A bounded, sharded free list of standard page buffers.
class PagePool {
public:
  static constexpr size_t NumShards = 8;
  static constexpr size_t DefaultMaxPages = 1024;
  /// Words per standard page — the one buffer size the pool stores.
  /// RegionHeap::PageWords aliases this constant, so the pool and the
  /// heap can never disagree about the unit.
  static constexpr size_t PageWords = 256; // 2 KiB

  explicit PagePool(size_t MaxPages = DefaultMaxPages);
  ~PagePool() = default;

  PagePool(const PagePool &) = delete;
  PagePool &operator=(const PagePool &) = delete;

  /// A recycled standard page buffer, or null when the pool is empty
  /// (the caller then allocates fresh). Counts a hit or a miss.
  std::unique_ptr<uint64_t[]> acquire();

  /// Hands a standard page buffer back. Frees it instead when the pool
  /// already holds MaxPages pages (counted as a trim). \p Buf must be
  /// exactly RegionHeap::PageWords words — oversized blocks bypass the
  /// pool by contract.
  void release(std::unique_ptr<uint64_t[]> Buf);

  /// Frees every pooled page (counted as trims).
  void trim();

  /// Eagerly allocates up to \p Pages standard pages into the free
  /// lists (spread round-robin across the shards), stopping at the
  /// capacity bound. A cold service otherwise pays one allocator miss
  /// per page of the first request wave; a prewarmed pool serves that
  /// wave entirely from reuse. Returns how many pages were added.
  size_t prewarm(size_t Pages);

  PagePoolStats stats() const;
  size_t freePages() const { return TotalFree.load(std::memory_order_relaxed); }
  size_t capacity() const { return MaxPages; }

private:
  /// Padded so two shards' locks never share a cache line.
  struct alignas(64) Shard {
    std::mutex M;
    std::vector<std::unique_ptr<uint64_t[]>> Free;
  };

  static size_t homeShard();

  const size_t MaxPages;
  std::array<Shard, NumShards> Shards;
  /// Pages currently pooled, summed over shards; the capacity bound is
  /// enforced on this counter so the total never exceeds MaxPages.
  std::atomic<size_t> TotalFree{0};
  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Misses{0};
  std::atomic<uint64_t> Accepted{0};
  std::atomic<uint64_t> Trims{0};
  std::atomic<uint64_t> Prewarms{0};
};

} // namespace rml::rt

#endif // RML_RT_PAGEPOOL_H
