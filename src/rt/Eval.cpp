//===- rt/Eval.cpp --------------------------------------------------------===//

#include "rt/Eval.h"

#include "rt/Gc.h"

#include <cassert>
#include <cstring>
#include <set>
#include <unordered_map>

using namespace rml;
using namespace rml::rt;

namespace {

constexpr uint32_t ScratchStaticId = UINT32_MAX - 1;

/// One compiled lambda / fun binding.
struct CompiledFn {
  const RExpr *Node = nullptr;
  const RExpr *Body = nullptr;
  Symbol Param;
  Symbol SelfName; // valid for recursive fun bindings
  std::vector<Symbol> Captures;
  std::vector<uint32_t> FreeRegions;    // static region ids to capture
  std::vector<uint32_t> RuntimeFormals; // kept (non-dropped) formal ids
};

//===----------------------------------------------------------------------===//
// Compilation
//===----------------------------------------------------------------------===//

class Compiler {
public:
  Compiler(const DropInfo &Drops) : Drops(Drops) {}

  std::vector<CompiledFn> Fns;
  std::unordered_map<const RExpr *, uint32_t> FnIndex;
  /// Per RApp: (formal static id, target static id) pairs for the kept
  /// formals of the callee.
  std::unordered_map<const RExpr *, std::vector<std::pair<uint32_t, uint32_t>>>
      RAppArgs;
  std::unordered_map<Symbol, uint32_t> ExnIds;
  uint32_t NextExnId = 0;

  void run(const RProgram &P) {
    for (const auto &[Name, Sig] : P.ExnSigs)
      if (!ExnIds.count(Name))
        ExnIds.emplace(Name, NextExnId++);
    walk(P.Root);
    for (CompiledFn &F : Fns)
      computeFreeRegions(F);
  }

private:
  void bindFun(Symbol Name, const RExpr *Fun) {
    FunScope.emplace_back(Name, Fun);
  }
  const RExpr *lookupFun(Symbol Name) const {
    for (size_t I = FunScope.size(); I-- > 0;)
      if (FunScope[I].first == Name)
        return FunScope[I].second;
    return nullptr;
  }

  void walk(const RExpr *E) {
    if (!E)
      return;
    switch (E->K) {
    case RExpr::Kind::Lam: {
      CompiledFn F;
      F.Node = E;
      F.Body = E->A;
      F.Param = E->Param;
      F.Captures = freeVars(E);
      FnIndex.emplace(E, static_cast<uint32_t>(Fns.size()));
      Fns.push_back(std::move(F));
      walk(E->A);
      return;
    }
    case RExpr::Kind::FunBind: {
      CompiledFn F;
      F.Node = E;
      F.Body = E->A;
      F.Param = E->Param;
      F.SelfName = E->Name;
      F.Captures = freeVars(E);
      for (RegionVar R : E->Sigma.QRegions)
        if (!Drops.isDropped(E, R))
          F.RuntimeFormals.push_back(R.Id);
      FnIndex.emplace(E, static_cast<uint32_t>(Fns.size()));
      Fns.push_back(std::move(F));
      size_t Mark = FunScope.size();
      bindFun(E->Name, E); // self-calls resolve to this binding
      walk(E->A);
      FunScope.resize(Mark);
      return;
    }
    case RExpr::Kind::Let: {
      walk(E->A);
      size_t Mark = FunScope.size();
      if (E->A->K == RExpr::Kind::FunBind)
        bindFun(E->Name, E->A);
      walk(E->B);
      FunScope.resize(Mark);
      return;
    }
    case RExpr::Kind::RApp: {
      assert(E->A->K == RExpr::Kind::Var && "region application target");
      const RExpr *Callee = lookupFun(E->A->Name);
      std::vector<std::pair<uint32_t, uint32_t>> Args;
      if (Callee) {
        for (RegionVar Q : Callee->Sigma.QRegions) {
          if (Drops.isDropped(Callee, Q))
            continue;
          auto It = E->Inst.Sr.find(Q);
          Args.emplace_back(Q.Id,
                            It != E->Inst.Sr.end() ? It->second.Id : Q.Id);
        }
      }
      RAppArgs.emplace(E, std::move(Args));
      walk(E->A);
      return;
    }
    default:
      walk(E->A);
      walk(E->B);
      walk(E->C);
      for (const RExpr *Item : E->Items)
        walk(Item);
      return;
    }
  }

  void collectRegionRefs(const RExpr *E, std::set<uint32_t> &Bound,
                         std::set<uint32_t> &Out) {
    if (!E)
      return;
    if (E->AtRho.isValid() && E->AtRho.Id != 0 && !Bound.count(E->AtRho.Id))
      Out.insert(E->AtRho.Id);
    if (E->K == RExpr::Kind::RApp) {
      auto It = RAppArgs.find(E);
      if (It != RAppArgs.end())
        for (const auto &[Formal, Target] : It->second)
          if (Target != 0 && !Bound.count(Target))
            Out.insert(Target);
    }
    if (E->K == RExpr::Kind::LetRegion) {
      std::set<uint32_t> Inner = Bound;
      Inner.insert(E->BoundRho.Id);
      collectRegionRefs(E->A, Inner, Out);
      return;
    }
    if (E->K == RExpr::Kind::FunBind) {
      std::set<uint32_t> Inner = Bound;
      for (RegionVar R : E->Sigma.QRegions)
        Inner.insert(R.Id);
      collectRegionRefs(E->A, Inner, Out);
      return;
    }
    collectRegionRefs(E->A, Bound, Out);
    collectRegionRefs(E->B, Bound, Out);
    collectRegionRefs(E->C, Bound, Out);
    for (const RExpr *Item : E->Items)
      collectRegionRefs(Item, Bound, Out);
  }

  void computeFreeRegions(CompiledFn &F) {
    std::set<uint32_t> Bound, Out;
    for (uint32_t R : F.RuntimeFormals)
      Bound.insert(R);
    if (F.Node->K == RExpr::Kind::FunBind)
      for (RegionVar R : F.Node->Sigma.QRegions)
        Bound.insert(R.Id); // dropped formals are never referenced
    collectRegionRefs(F.Body, Bound, Out);
    F.FreeRegions.assign(Out.begin(), Out.end());
  }

  const DropInfo &Drops;
  std::vector<std::pair<Symbol, const RExpr *>> FunScope;
};

//===----------------------------------------------------------------------===//
// The machine
//===----------------------------------------------------------------------===//

class Machine {
public:
  Machine(const RProgram &P, const Mu *RootMu, const MultiplicityInfo &Mult,
          const RegionKindInfo &Kinds, const DropInfo &Drops,
          const Interner &Names, const EvalOptions &Opts)
      : Mult(Mult), Kinds(Kinds), Names(Names), Opts(Opts), C(Drops),
        RootMu(RootMu) {
    Heap.RetainReleasedPages = Opts.RetainReleasedPages;
    // The quarantine invariant, enforced at the single point where a
    // heap meets a pool: detection on => no shared pages.
    Heap.SharedPool = Opts.RetainReleasedPages ? nullptr : Opts.SharedPool;
    C.run(P);
    // The global region's representation follows the kind analysis like
    // any other region.
    Heap.region(0).Kind = staticKind(0);
    RegionEnv.emplace_back(0u, 0u); // global region
  }

  RunResult run(const RProgram &P) {
    char Base;
    StackBase = &Base;
    Value V = eval(P.Root);
    RunResult R;
    R.Heap = Heap.Stats;
    R.Regions = Heap.profiles();
    R.Output = std::move(Output);
    R.Steps = Steps;
    R.GcPauses = std::move(Pauses);
    R.Policy = Policy.stats();
    if (Fatal) {
      R.Outcome = FatalKind;
      R.Error = FatalMsg;
      return R;
    }
    if (Unwinding) {
      R.Outcome = RunOutcome::UncaughtException;
      R.Error = "uncaught exception " + exnNameOf(ExnVal);
      return R;
    }
    R.ResultText = render(V, RootMu, 0);
    return R;
  }

private:
  //===--------------------------------------------------------------------===//
  // Error handling and rooting
  //===--------------------------------------------------------------------===//

  Value fatal(RunOutcome Kind, std::string Msg) {
    if (!Fatal) {
      Fatal = true;
      FatalKind = Kind;
      FatalMsg = std::move(Msg);
    }
    return unitValue();
  }

  bool interrupted() const { return Fatal || Unwinding; }

  struct TempScope {
    Machine &M;
    size_t Mark;
    explicit TempScope(Machine &M) : M(M), Mark(M.Temps.size()) {}
    ~TempScope() { M.Temps.resize(Mark); }
    size_t push(Value V) {
      M.Temps.push_back(V);
      return M.Temps.size() - 1;
    }
  };

  void maybeGc() {
    if (!Opts.GcEnabled || !Policy.shouldCollect(Heap.allocSinceGc()))
      return;
    GcKind Kind = Policy.nextKind();
    std::vector<Value *> Roots;
    Roots.reserve(Env.size() + Temps.size() + Remembered.size() + 1);
    for (auto &[S, V] : Env)
      Roots.push_back(&V);
    for (Value &V : Temps)
      Roots.push_back(&V);
    // Old-to-young slots from the write barrier: roots for minor
    // collections (harmless extras for major ones).
    if (Kind == GcKind::Minor)
      for (Value *Slot : Remembered)
        Roots.push_back(Slot);
    Roots.push_back(&ExnVal);
    const uint64_t T0 = traceNowNanos();
    GcResult G = collectGarbage(Heap, Roots, Kind, Opts.Generational);
    GcPauseRecord Pause;
    Pause.StartNanos = T0;
    Pause.WallNanos = traceNowNanos() - T0;
    Pause.Minor = Kind == GcKind::Minor;
    Pause.CopiedWords = G.CopiedWords;
    Pause.LiveRegions = G.LiveRegions;
    Pauses.push_back(Pause);
    if (Opts.PauseSink)
      Opts.PauseSink->recordGcPause(Pause);
    if (Policy.observe(Pause) && Opts.PauseSink) {
      Opts.PauseSink->recordCounter("gc_threshold_words",
                                    Policy.thresholdWords());
      Opts.PauseSink->recordCounter("gc_minors_per_major",
                                    Policy.minorsPerMajor());
    }
    // After any collection every survivor is old: remembered slots are
    // obsolete (and, after a major, dangling into from-space).
    Remembered.clear();
    if (!G.Ok)
      fatal(RunOutcome::DanglingPointer, G.Error);
  }

  //===--------------------------------------------------------------------===//
  // Regions and allocation
  //===--------------------------------------------------------------------===//

  uint32_t resolveRegion(uint32_t StaticId) {
    if (StaticId == 0)
      return 0;
    for (size_t I = RegionEnv.size(); I-- > 0;)
      if (RegionEnv[I].first == StaticId)
        return RegionEnv[I].second;
    fatal(RunOutcome::RuntimeError,
          "internal: unbound region r" + std::to_string(StaticId));
    return 0;
  }

  RegionKind staticKind(uint32_t StaticId) const {
    if (!Opts.TagFreePairs)
      return RegionKind::Mixed;
    RegionKind K = Kinds.kindOf(RegionVar(StaticId));
    switch (K) {
    case RegionKind::Pair:
    case RegionKind::Cons:
    case RegionKind::Ref:
      return K;
    default:
      return RegionKind::Mixed;
    }
  }

  /// Drops remembered slots that pointed into pages of a just-released
  /// region (before the page pool can reuse the memory).
  void purgeRemembered() {
    if (!Opts.Generational || Remembered.empty())
      return;
    std::erase_if(Remembered, [&](Value *Slot) {
      return !Heap.ownerOf(reinterpret_cast<const uint64_t *>(Slot))
                  .has_value();
    });
  }

  bool tagFreeAt(const uint64_t *P, RegionKind &KindOut) {
    std::optional<uint32_t> Owner = Heap.ownerOf(P);
    if (!Owner) {
      KindOut = RegionKind::Mixed;
      return false;
    }
    KindOut = Heap.region(*Owner).Kind;
    return KindOut == RegionKind::Pair || KindOut == RegionKind::Cons ||
           KindOut == RegionKind::Ref;
  }

  uint64_t *allocAt(RegionVar StaticRho, size_t Words) {
    maybeGc();
    if (Fatal)
      return nullptr;
    uint32_t Handle = resolveRegion(StaticRho.Id);
    if (Fatal)
      return nullptr;
    return Heap.alloc(Handle, Words);
  }

  Value makeString(RegionVar StaticRho, std::string_view S) {
    size_t DataWords = (S.size() + 7) / 8;
    uint64_t *Obj = allocAt(StaticRho, 1 + DataWords);
    if (!Obj)
      return unitValue();
    Obj[0] = makeHeader(ObjKind::String, S.size());
    if (DataWords != 0) {
      Obj[DataWords] = 0; // zero the tail for deterministic comparisons
      std::memcpy(Obj + 1, S.data(), S.size());
    }
    return fromPtr(Obj);
  }

  std::string_view readString(Value V) {
    const uint64_t *Obj = asPtr(V);
    assert(isHeader(Obj[0]) && headerKind(Obj[0]) == ObjKind::String);
    return std::string_view(reinterpret_cast<const char *>(Obj + 1),
                            headerPayload(Obj[0]));
  }

  /// Allocates a 2-field cell (pair or cons); tag-free when the *runtime*
  /// region's kind allows (a formal region variable may be instantiated
  /// with a mixed-kind region, so the decision is per region, not per
  /// allocation site).
  Value makeCell(RegionVar StaticRho, ObjKind Kind, Value A, Value B) {
    TempScope T(*this);
    size_t IA = T.push(A), IB = T.push(B);
    maybeGc();
    if (Fatal)
      return unitValue();
    uint32_t Handle = resolveRegion(StaticRho.Id);
    if (Fatal)
      return unitValue();
    RegionKind RK = Heap.region(Handle).Kind;
    bool TagFree = RK == RegionKind::Pair || RK == RegionKind::Cons;
    uint64_t *Obj = Heap.alloc(Handle, TagFree ? 2 : 3);
    if (!Obj)
      return unitValue();
    size_t Off = 0;
    if (!TagFree)
      Obj[Off++] = makeHeader(Kind, 0);
    Obj[Off] = Temps[IA];
    Obj[Off + 1] = Temps[IB];
    return fromPtr(Obj);
  }

  /// Reads the fields of a 2-field cell.
  void readCell(Value V, Value &A, Value &B) {
    uint64_t *Obj = asPtr(V);
    RegionKind K;
    size_t Off = tagFreeAt(Obj, K) ? 0 : 1;
    A = Obj[Off];
    B = Obj[Off + 1];
  }

  //===--------------------------------------------------------------------===//
  // Closures
  //===--------------------------------------------------------------------===//

  Value lookupEnv(Symbol S) {
    for (size_t I = Env.size(); I-- > 0;)
      if (Env[I].first == S)
        return Env[I].second;
    fatal(RunOutcome::RuntimeError,
          "internal: unbound variable '" + Names.text(S) + "'");
    return unitValue();
  }

  static uint64_t packRegion(uint32_t StaticId, uint32_t Handle) {
    return (static_cast<uint64_t>(StaticId) << 32) | Handle;
  }

  Value makeClosure(uint32_t FnIdx, RegionVar AtRho) {
    const CompiledFn &F = C.Fns[FnIdx];
    size_t NRegions = F.FreeRegions.size();
    size_t NCaptures = F.Captures.size();
    size_t Words = 3 + NRegions + NCaptures;
    uint64_t *Obj = allocAt(AtRho, Words);
    if (!Obj)
      return unitValue();
    Obj[0] = makeHeader(ObjKind::Closure, Words - 1);
    Obj[1] = FnIdx;
    Obj[2] = NRegions;
    for (size_t I = 0; I < NRegions; ++I) {
      uint32_t Handle = resolveRegion(F.FreeRegions[I]);
      Obj[3 + I] = packRegion(F.FreeRegions[I], Handle);
    }
    for (size_t I = 0; I < NCaptures; ++I)
      Obj[3 + NRegions + I] = lookupEnv(F.Captures[I]);
    return fromPtr(Obj);
  }

  //===--------------------------------------------------------------------===//
  // Rendering
  //===--------------------------------------------------------------------===//

  std::string exnNameOf(Value V) {
    if (!isPointer(V))
      return "<exn>";
    uint64_t *Obj = asPtr(V);
    uint32_t Id = static_cast<uint32_t>(Obj[1]);
    for (const auto &[Name, EId] : C.ExnIds)
      if (EId == Id)
        return Names.text(Name);
    return "<exn>";
  }

  std::string render(Value V, const Mu *M, unsigned Depth) {
    if (Depth > 16 || Fatal)
      return "...";
    if (!M)
      return "<value>";
    switch (M->K) {
    case Mu::Kind::Int:
      return std::to_string(unboxScalar(V));
    case Mu::Kind::Bool:
      return unboxBool(V) ? "true" : "false";
    case Mu::Kind::Unit:
      return "()";
    case Mu::Kind::TyVar:
      return "<poly>";
    case Mu::Kind::Boxed:
      break;
    }
    const Tau *T = M->T;
    switch (T->K) {
    case Tau::Kind::String:
      return "\"" + std::string(readString(V)) + "\"";
    case Tau::Kind::Arrow:
      return "fn";
    case Tau::Kind::Exn:
      return "exn " + exnNameOf(V);
    case Tau::Kind::Ref: {
      uint64_t *Obj = asPtr(V);
      RegionKind K;
      size_t Off = tagFreeAt(Obj, K) ? 0 : 1;
      return "ref " + render(Obj[Off], T->A, Depth + 1);
    }
    case Tau::Kind::Pair: {
      Value A, B;
      readCell(V, A, B);
      return "(" + render(A, T->A, Depth + 1) + ", " +
             render(B, T->B, Depth + 1) + ")";
    }
    case Tau::Kind::List: {
      std::string Out = "[";
      Value Cur = V;
      unsigned N = 0;
      while (Cur != NilValue && N < 24) {
        Value A, B;
        readCell(Cur, A, B);
        if (N != 0)
          Out += ", ";
        Out += render(A, T->A, Depth + 1);
        Cur = B;
        ++N;
      }
      if (Cur != NilValue)
        Out += ", ...";
      Out += "]";
      return Out;
    }
    }
    return "<value>";
  }

  //===--------------------------------------------------------------------===//
  // Evaluation
  //===--------------------------------------------------------------------===//

  Value eval(const RExpr *E) {
    if (interrupted())
      return unitValue();
    if (++Steps > Opts.StepLimit)
      return fatal(RunOutcome::RuntimeError, "step limit exceeded");
    // Native-stack budget: downward-growing stacks on every supported
    // platform; the probe's distance from run()'s base approximates
    // consumption regardless of frame size (build-mode independent).
    char Probe;
    if (StackBase > &Probe &&
        static_cast<size_t>(StackBase - &Probe) > Opts.StackLimitBytes)
      return fatal(RunOutcome::RuntimeError,
                   "recursion exhausted the interpreter stack budget "
                   "(no tail-call optimisation)");

    switch (E->K) {
    case RExpr::Kind::IntLit:
      return boxScalar(E->IntValue);
    case RExpr::Kind::BoolLit:
      return boxBool(E->BoolValue);
    case RExpr::Kind::UnitLit:
      return unitValue();
    case RExpr::Kind::NilVal:
      return NilValue;
    case RExpr::Kind::StrE:
      return makeString(E->AtRho, E->StrValue);
    case RExpr::Kind::Var:
      return lookupEnv(E->Name);

    case RExpr::Kind::Lam:
    case RExpr::Kind::FunBind:
      return makeClosure(C.FnIndex.at(E), E->AtRho);

    case RExpr::Kind::Let: {
      Value V = eval(E->A);
      if (interrupted())
        return unitValue();
      Env.emplace_back(E->Name, V);
      Value R = eval(E->B);
      Env.pop_back();
      return R;
    }

    case RExpr::Kind::App: {
      TempScope T(*this);
      size_t IF = T.push(eval(E->A));
      if (interrupted())
        return unitValue();
      size_t IX = T.push(eval(E->B));
      if (interrupted())
        return unitValue();
      Value FV = Temps[IF];
      if (!isPointer(FV))
        return fatal(RunOutcome::RuntimeError,
                     "internal: application of a non-closure");
      uint64_t *Obj = asPtr(FV);
      uint32_t FnIdx = static_cast<uint32_t>(Obj[1]);
      size_t NRegions = Obj[2];
      const CompiledFn &F = C.Fns[FnIdx];
      size_t RMark = RegionEnv.size();
      for (size_t I = 0; I < NRegions; ++I) {
        uint64_t W = Obj[3 + I];
        RegionEnv.emplace_back(static_cast<uint32_t>(W >> 32),
                               static_cast<uint32_t>(W));
      }
      size_t EMark = Env.size();
      for (size_t I = 0; I < F.Captures.size(); ++I)
        Env.emplace_back(F.Captures[I], Obj[3 + NRegions + I]);
      if (F.SelfName.isValid())
        Env.emplace_back(F.SelfName, FV);
      Env.emplace_back(F.Param, Temps[IX]);
      // Obj may move from here on; no further reads.
      Value R = eval(F.Body);
      Env.resize(EMark);
      RegionEnv.resize(RMark);
      return R;
    }

    case RExpr::Kind::RApp: {
      TempScope T(*this);
      size_t IC = T.push(eval(E->A));
      if (interrupted())
        return unitValue();
      const auto &Args = C.RAppArgs.at(E);
      // Resolve the instantiating regions before allocating.
      std::vector<uint64_t> Extra;
      Extra.reserve(Args.size());
      for (const auto &[Formal, Target] : Args) {
        uint32_t Handle = resolveRegion(Target);
        if (Fatal)
          return unitValue();
        Extra.push_back(packRegion(Formal, Handle));
      }
      uint64_t *Old = asPtr(Temps[IC]);
      size_t NRegions = Old[2];
      size_t Total = headerPayload(Old[0]) + 1;
      size_t NCaptures = Total - 3 - NRegions;
      // Self-calls (and repeated instantiations at the same regions) add
      // no information: when every region pair is already bound in the
      // closure, reuse it instead of copying — MLKit compiles such
      // region applications as direct calls.
      bool Redundant = true;
      for (uint64_t W : Extra) {
        bool Found = false;
        for (size_t I = 0; I < NRegions && !Found; ++I)
          Found = Old[3 + I] == W;
        if (!Found) {
          Redundant = false;
          break;
        }
      }
      if (Redundant)
        return Temps[IC];
      size_t Words = Total + Extra.size();
      uint64_t *Obj = allocAt(E->AtRho, Words);
      if (!Obj)
        return unitValue();
      Old = asPtr(Temps[IC]); // may have moved during allocation
      Obj[0] = makeHeader(ObjKind::Closure, Words - 1);
      Obj[1] = Old[1];
      Obj[2] = NRegions + Extra.size();
      for (size_t I = 0; I < NRegions; ++I)
        Obj[3 + I] = Old[3 + I];
      for (size_t I = 0; I < Extra.size(); ++I)
        Obj[3 + NRegions + I] = Extra[I];
      for (size_t I = 0; I < NCaptures; ++I)
        Obj[3 + NRegions + Extra.size() + I] = Old[3 + NRegions + I];
      return fromPtr(Obj);
    }

    case RExpr::Kind::LetRegion: {
      unsigned FiniteWords = 0;
      if (Opts.UseFiniteRegions && Mult.isFinite(E->BoundRho)) {
        auto It = Mult.FiniteWords.find(E->BoundRho.Id);
        if (It != Mult.FiniteWords.end())
          FiniteWords = It->second;
      }
      uint32_t Handle =
          Heap.create(E->BoundRho.Id, staticKind(E->BoundRho.Id),
                      FiniteWords);
      RegionEnv.emplace_back(E->BoundRho.Id, Handle);
      Value V = eval(E->A);
      RegionEnv.pop_back();
      Heap.release(Handle);
      purgeRemembered();
      return V;
    }

    case RExpr::Kind::PairE: {
      Value A = eval(E->A);
      if (interrupted())
        return unitValue();
      TempScope T(*this);
      size_t IA = T.push(A);
      Value B = eval(E->B);
      if (interrupted())
        return unitValue();
      return makeCell(E->AtRho, ObjKind::Pair, Temps[IA], B);
    }

    case RExpr::Kind::ConsE: {
      Value A = eval(E->A);
      if (interrupted())
        return unitValue();
      TempScope T(*this);
      size_t IA = T.push(A);
      Value B = eval(E->B);
      if (interrupted())
        return unitValue();
      return makeCell(E->AtRho, ObjKind::Cons, Temps[IA], B);
    }

    case RExpr::Kind::Sel: {
      Value V = eval(E->A);
      if (interrupted())
        return unitValue();
      Value A, B;
      readCell(V, A, B);
      return E->SelIndex == 1 ? A : B;
    }

    case RExpr::Kind::If: {
      Value Cond = eval(E->A);
      if (interrupted())
        return unitValue();
      return unboxBool(Cond) ? eval(E->B) : eval(E->C);
    }

    case RExpr::Kind::BinOp:
      return evalBinOp(E);

    case RExpr::Kind::ListCase: {
      Value V = eval(E->A);
      if (interrupted())
        return unitValue();
      if (V == NilValue)
        return eval(E->B);
      Value Head, Tail;
      readCell(V, Head, Tail);
      Env.emplace_back(E->HeadName, Head);
      Env.emplace_back(E->TailName, Tail);
      Value R = eval(E->C);
      Env.pop_back();
      Env.pop_back();
      return R;
    }

    case RExpr::Kind::RefE: {
      Value V = eval(E->A);
      if (interrupted())
        return unitValue();
      TempScope T(*this);
      size_t IV = T.push(V);
      maybeGc();
      if (Fatal)
        return unitValue();
      uint32_t Handle = resolveRegion(E->AtRho.Id);
      if (Fatal)
        return unitValue();
      bool TagFree = Heap.region(Handle).Kind == RegionKind::Ref;
      uint64_t *Obj = Heap.alloc(Handle, TagFree ? 1 : 2);
      if (!Obj)
        return unitValue();
      size_t Off = 0;
      if (!TagFree)
        Obj[Off++] = makeHeader(ObjKind::Ref, 0);
      Obj[Off] = Temps[IV];
      return fromPtr(Obj);
    }

    case RExpr::Kind::Deref: {
      Value V = eval(E->A);
      if (interrupted())
        return unitValue();
      uint64_t *Obj = asPtr(V);
      RegionKind K;
      size_t Off = tagFreeAt(Obj, K) ? 0 : 1;
      return Obj[Off];
    }

    case RExpr::Kind::Assign: {
      Value R = eval(E->A);
      if (interrupted())
        return unitValue();
      TempScope T(*this);
      size_t IR = T.push(R);
      Value V = eval(E->B);
      if (interrupted())
        return unitValue();
      uint64_t *Obj = asPtr(Temps[IR]);
      RegionKind K;
      size_t Off = tagFreeAt(Obj, K) ? 0 : 1;
      Obj[Off] = V;
      // Write barrier: an old cell now referencing a (possibly young)
      // object must be a root of the next minor collection.
      if (Opts.Generational && isPointer(V) && Heap.isOldAddr(Obj))
        Remembered.push_back(&Obj[Off]);
      return unitValue();
    }

    case RExpr::Kind::Seq: {
      Value V = unitValue();
      for (const RExpr *Item : E->Items) {
        V = eval(Item);
        if (interrupted())
          return unitValue();
      }
      return V;
    }

    case RExpr::Kind::Raise: {
      Value V = eval(E->A);
      if (interrupted())
        return unitValue();
      Unwinding = true;
      ExnVal = V;
      return unitValue();
    }

    case RExpr::Kind::Handle: {
      Value V = eval(E->A);
      if (Fatal)
        return unitValue();
      if (!Unwinding)
        return V;
      // Match the handler.
      uint32_t WantId = UINT32_MAX;
      if (E->ExnName.isValid()) {
        auto It = C.ExnIds.find(E->ExnName);
        WantId = It != C.ExnIds.end() ? It->second : UINT32_MAX - 2;
      }
      uint64_t *Obj = isPointer(ExnVal) ? asPtr(ExnVal) : nullptr;
      uint32_t GotId = Obj ? static_cast<uint32_t>(Obj[1]) : UINT32_MAX - 3;
      if (E->ExnName.isValid() && WantId != GotId)
        return unitValue(); // keep unwinding
      Unwinding = false;
      size_t EMark = Env.size();
      if (E->BindName.isValid() && Obj && headerPayload(Obj[0]) == 1)
        Env.emplace_back(E->BindName, Obj[2]);
      else if (E->BindName.isValid())
        Env.emplace_back(E->BindName, unitValue());
      ExnVal = NilValue;
      Value R = eval(E->B);
      Env.resize(EMark);
      return R;
    }

    case RExpr::Kind::ExnConE: {
      Value Arg = unitValue();
      bool HasArg = E->A != nullptr;
      if (HasArg) {
        Arg = eval(E->A);
        if (interrupted())
          return unitValue();
      }
      TempScope T(*this);
      size_t IA = T.push(Arg);
      uint64_t *Obj = allocAt(RegionVar::global(), HasArg ? 3 : 2);
      if (!Obj)
        return unitValue();
      Obj[0] = makeHeader(ObjKind::Exn, HasArg ? 1 : 0);
      Obj[1] = C.ExnIds.count(E->ExnName) ? C.ExnIds.at(E->ExnName)
                                          : UINT32_MAX - 2;
      if (HasArg)
        Obj[2] = Temps[IA];
      return fromPtr(Obj);
    }

    case RExpr::Kind::Prim:
      return evalPrim(E);

    default:
      return fatal(RunOutcome::RuntimeError,
                   "internal: value form in executable position");
    }
  }

  Value evalBinOp(const RExpr *E) {
    // andalso / orelse are lazy.
    if (E->Op == BinOpKind::AndAlso || E->Op == BinOpKind::OrElse) {
      Value L = eval(E->A);
      if (interrupted())
        return unitValue();
      bool LB = unboxBool(L);
      if (E->Op == BinOpKind::AndAlso)
        return LB ? eval(E->B) : boxBool(false);
      return LB ? boxBool(true) : eval(E->B);
    }
    Value L = eval(E->A);
    if (interrupted())
      return unitValue();
    TempScope T(*this);
    size_t IL = T.push(L);
    Value R = eval(E->B);
    if (interrupted())
      return unitValue();
    L = Temps[IL];
    switch (E->Op) {
    case BinOpKind::Add:
      return boxScalar(unboxScalar(L) + unboxScalar(R));
    case BinOpKind::Sub:
      return boxScalar(unboxScalar(L) - unboxScalar(R));
    case BinOpKind::Mul:
      return boxScalar(unboxScalar(L) * unboxScalar(R));
    case BinOpKind::Div:
      if (unboxScalar(R) == 0)
        return fatal(RunOutcome::RuntimeError, "division by zero");
      return boxScalar(unboxScalar(L) / unboxScalar(R));
    case BinOpKind::Mod:
      if (unboxScalar(R) == 0)
        return fatal(RunOutcome::RuntimeError, "modulo by zero");
      return boxScalar(unboxScalar(L) % unboxScalar(R));
    case BinOpKind::Less:
      return boxBool(unboxScalar(L) < unboxScalar(R));
    case BinOpKind::LessEq:
      return boxBool(unboxScalar(L) <= unboxScalar(R));
    case BinOpKind::Greater:
      return boxBool(unboxScalar(L) > unboxScalar(R));
    case BinOpKind::GreaterEq:
      return boxBool(unboxScalar(L) >= unboxScalar(R));
    case BinOpKind::Eq:
    case BinOpKind::NotEq: {
      bool Equal;
      if (isScalar(L) || L == NilValue)
        Equal = L == R;
      else
        Equal = readString(L) == readString(R);
      return boxBool(E->Op == BinOpKind::Eq ? Equal : !Equal);
    }
    case BinOpKind::StrEq:
      return boxBool(readString(L) == readString(R));
    case BinOpKind::Concat: {
      std::string S(readString(L));
      S += readString(R);
      return makeString(E->AtRho, S);
    }
    case BinOpKind::Cons:
    case BinOpKind::AndAlso:
    case BinOpKind::OrElse:
      break; // Cons is ConsE; the lazy operators returned above
    }
    return fatal(RunOutcome::RuntimeError, "internal: bad operator");
  }

  Value evalPrim(const RExpr *E) {
    Value V = eval(E->A);
    if (interrupted())
      return unitValue();
    switch (E->PrimK) {
    case Expr::PrimKind::Print:
      Output += readString(V);
      return unitValue();
    case Expr::PrimKind::Size:
      return boxScalar(static_cast<int64_t>(readString(V).size()));
    case Expr::PrimKind::Itos:
      return makeString(E->AtRho, std::to_string(unboxScalar(V)));
    case Expr::PrimKind::Global:
      return V; // purely a region-inference directive
    case Expr::PrimKind::Work: {
      // Allocation churn in a private scratch region: provokes the
      // collector (the "trigger gc" of Figure 1).
      int64_t N = unboxScalar(V);
      uint32_t Handle =
          Heap.create(ScratchStaticId, RegionKind::Mixed, 0);
      TempScope T(*this);
      size_t Slot = T.push(NilValue);
      for (int64_t I = 0; I < N && !Fatal; ++I) {
        maybeGc();
        if (Fatal)
          break;
        uint64_t *Obj = Heap.alloc(Handle, 3);
        Obj[0] = makeHeader(ObjKind::Pair, 0);
        Obj[1] = boxScalar(I);
        Obj[2] = Temps[Slot] == NilValue ? boxScalar(0) : Temps[Slot];
        Temps[Slot] = fromPtr(Obj);
      }
      Temps[Slot] = NilValue;
      Heap.release(Handle);
      purgeRemembered();
      return unitValue();
    }
    }
    return unitValue();
  }

  const MultiplicityInfo &Mult;
  const RegionKindInfo &Kinds;
  const Interner &Names;
  EvalOptions Opts;
  Compiler C;
  const Mu *RootMu;

  RegionHeap Heap;
  std::vector<std::pair<Symbol, Value>> Env;
  std::vector<Value> Temps;
  std::vector<std::pair<uint32_t, uint32_t>> RegionEnv;
  bool Unwinding = false;
  Value ExnVal = NilValue;
  std::vector<Value *> Remembered; // old-to-young slots (write barrier)
  std::vector<GcPauseRecord> Pauses; // every collection of this run
  GcPolicy Policy{Opts.AdaptiveGc, Opts.GcThresholdWords, Opts.MinorsPerMajor,
                  Opts.Generational, Opts.GcPauseBudgetNanos};
  bool Fatal = false;
  RunOutcome FatalKind = RunOutcome::Ok;
  std::string FatalMsg;
  uint64_t Steps = 0;
  const char *StackBase = nullptr;
  std::string Output;
};

} // namespace

RunResult rml::rt::runProgram(const RProgram &P, const Mu *RootMu,
                              const MultiplicityInfo &Mult,
                              const RegionKindInfo &Kinds,
                              const DropInfo &Drops, const Interner &Names,
                              const EvalOptions &Opts) {
  Machine M(P, RootMu, Mult, Kinds, Drops, Names, Opts);
  return M.run(P);
}
