//===- rt/Topology.cpp ----------------------------------------------------===//

#include "rt/Topology.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#if defined(__linux__)
#include <sched.h>
#endif

using namespace rml;
using namespace rml::rt;

namespace {

/// Parses a kernel cpulist ("0-3,8,10-11") into CPU ids, appending
/// (Cpu, Node) assignments to \p CpuToNode (growing it as needed).
/// Returns false on any syntax it does not understand — the caller
/// then falls back to the single-node topology.
bool assignCpulist(const std::string &List, unsigned Node,
                   std::vector<unsigned> &CpuToNode) {
  const char *P = List.c_str();
  while (*P) {
    char *End = nullptr;
    unsigned long Lo = std::strtoul(P, &End, 10);
    if (End == P)
      return false;
    unsigned long Hi = Lo;
    if (*End == '-') {
      P = End + 1;
      Hi = std::strtoul(P, &End, 10);
      if (End == P || Hi < Lo)
        return false;
    }
    if (Hi >= 4096) // implausible cpu id: refuse rather than OOM
      return false;
    if (CpuToNode.size() <= Hi)
      CpuToNode.resize(Hi + 1, 0);
    for (unsigned long Cpu = Lo; Cpu <= Hi; ++Cpu)
      CpuToNode[Cpu] = Node;
    P = End;
    if (*P == ',')
      ++P;
    else if (*P == '\n' || *P == '\0')
      break;
    else
      return false;
  }
  return true;
}

} // namespace

Topology::Topology(std::vector<unsigned> CpuToNodeMap)
    : CpuToNode(std::move(CpuToNodeMap)) {
  for (unsigned Node : CpuToNode)
    if (Node + 1 > Nodes)
      Nodes = Node + 1;
}

Topology::Topology() {
#if defined(__linux__)
  std::vector<unsigned> Map;
  unsigned Found = 0;
  for (unsigned Node = 0; Node < 64; ++Node) {
    char Path[96];
    std::snprintf(Path, sizeof(Path),
                  "/sys/devices/system/node/node%u/cpulist", Node);
    std::FILE *F = std::fopen(Path, "r");
    if (!F)
      break; // node ids are dense: the first gap ends the scan
    char Buf[1024];
    size_t Len = std::fread(Buf, 1, sizeof(Buf) - 1, F);
    std::fclose(F);
    Buf[Len] = '\0';
    if (!assignCpulist(Buf, Node, Map))
      return; // parse failure: stay single-node
    ++Found;
  }
  if (Found >= 2) { // one node is the fallback anyway
    CpuToNode = std::move(Map);
    Nodes = Found;
  }
#endif
}

unsigned Topology::currentNode() const {
  if (Nodes <= 1)
    return 0;
#if defined(__linux__)
  int Cpu = sched_getcpu();
  if (Cpu >= 0)
    return nodeOf(static_cast<unsigned>(Cpu));
#endif
  return 0;
}

const Topology &Topology::get() {
  static const Topology T;
  return T;
}
