//===- rt/Gc.cpp ----------------------------------------------------------===//

#include "rt/Gc.h"

#include <cassert>
#include <map>
#include <unordered_map>

using namespace rml;
using namespace rml::rt;

namespace {

/// Layout of one object: total words and which of them are value fields.
struct Layout {
  size_t Words = 0;
  size_t FirstField = 0; // index of the first scanned word
  size_t NumFields = 0;  // scanned words (Values)
};

class Collector {
public:
  Collector(RegionHeap &Heap, GcKind Kind, bool Seal)
      : Heap(Heap), Kind(Kind), Seal(Seal) {}

  GcResult run(const std::vector<Value *> &Roots) {
    GcResult Result;
    ++Heap.Stats.GcCount;
    if (Kind == GcKind::Minor)
      ++Heap.Stats.MinorGcCount;
    else
      ++Heap.Stats.MajorGcCount;

    // Detach every live region's (young, for minor collections) pages:
    // they become from-space.
    const std::vector<uint32_t> Live = Heap.liveRegions();
    Result.LiveRegions = Live.size();
    for (uint32_t Handle : Live) {
      std::vector<RegionHeap::Page> Pages =
          Heap.detachPages(Handle, Kind == GcKind::Minor);
      for (const RegionHeap::Page &P : Pages) {
        uintptr_t Start = reinterpret_cast<uintptr_t>(P.Words.get());
        FromRanges[Start] = Start + P.Cap * 8;
      }
      FromSpace.emplace_back(Handle, std::move(Pages));
    }

    // Evacuate roots, then scan the to-space worklist.
    for (Value *Slot : Roots) {
      if (!evacuate(*Slot, Result))
        break;
    }
    while (Result.Ok && !Worklist.empty()) {
      auto [Obj, Handle] = Worklist.back();
      Worklist.pop_back();
      if (!scan(Obj, Handle, Result))
        break;
    }

    // Discard from-space; in generational mode the survivors become old.
    for (auto &[Handle, Pages] : FromSpace)
      Heap.dropFromSpace(std::move(Pages));
    if (Seal && Result.Ok)
      Heap.sealLivePages();
    Heap.Stats.CopiedWords += Result.CopiedWords;
    // Evacuation went through the ordinary allocator; copies are not
    // program allocations.
    Heap.Stats.AllocWords -= Result.CopiedWords;
    Heap.resetAllocSinceGc();
    return Result;
  }

private:
  bool inFromSpace(const uint64_t *P) const {
    uintptr_t Addr = reinterpret_cast<uintptr_t>(P);
    auto It = FromRanges.upper_bound(Addr);
    if (It == FromRanges.begin())
      return false;
    --It;
    return Addr >= It->first && Addr < It->second;
  }

  /// Object layout at \p Obj in a region of kind \p Kind.
  Layout layoutOf(const uint64_t *Obj, RegionKind Kind) const {
    switch (Kind) {
    case RegionKind::Pair:
    case RegionKind::Cons:
      return {2, 0, 2};
    case RegionKind::Ref:
      return {1, 0, 1};
    default:
      break;
    }
    uint64_t H = Obj[0];
    assert(isHeader(H) && "tagged object without header");
    switch (headerKind(H)) {
    case ObjKind::Pair:
    case ObjKind::Cons:
      return {3, 1, 2};
    case ObjKind::Ref:
      return {2, 1, 1};
    case ObjKind::String: {
      size_t DataWords = (headerPayload(H) + 7) / 8;
      return {1 + DataWords, 0, 0};
    }
    case ObjKind::Closure: {
      size_t Total = 1 + headerPayload(H);
      // [hdr][fnIdx][nRegions][regions...][captures...]
      size_t NRegions = Obj[2];
      size_t FirstField = 3 + NRegions;
      return {Total, FirstField, Total - FirstField};
    }
    case ObjKind::Exn: {
      size_t ArgCount = headerPayload(H);
      return {2 + ArgCount, 2, ArgCount};
    }
    }
    assert(false && "unknown header kind");
    return {1, 0, 0};
  }

  /// Evacuates the object referenced by \p Slot (if it is a from-space
  /// pointer) and updates the slot. Returns false on dangling pointer.
  bool evacuate(Value &Slot, GcResult &Result) {
    if (!isPointer(Slot))
      return true;
    uint64_t *Old = asPtr(Slot);
    if (!inFromSpace(Old)) {
      // Either already in to-space (shared object scanned twice) or a
      // pointer outside every live region: the dangling-pointer case.
      std::optional<uint32_t> Owner = Heap.ownerOf(Old);
      if (Owner && Heap.region(*Owner).Live)
        return true; // to-space
      Result.Ok = false;
      std::optional<uint32_t> Grave = Heap.graveyardOwnerOf(Old);
      Result.Error =
          "dangling pointer: traced a reference into a deallocated "
          "region" +
          (Grave ? (" r" + std::to_string(*Grave)) : std::string()) +
          " (the GC-unsafe region annotation let a dead region's value "
          "escape into a live closure)";
      return false;
    }
    auto Fwd = Forward.find(Old);
    if (Fwd != Forward.end()) {
      Slot = Fwd->second;
      return true;
    }
    std::optional<uint32_t> Owner = Heap.ownerOf(Old);
    assert(Owner && "from-space pointer without owner");
    RegionHeap::Region &R = Heap.region(*Owner);
    Layout L = layoutOf(Old, R.Kind);
    uint64_t *New = Heap.alloc(*Owner, L.Words);
    for (size_t I = 0; I < L.Words; ++I)
      New[I] = Old[I];
    Result.CopiedWords += L.Words;
    Value NewV = fromPtr(New);
    Forward.emplace(Old, NewV);
    Slot = NewV;
    Worklist.emplace_back(New, *Owner);
    return true;
  }

  bool scan(uint64_t *Obj, uint32_t Handle, GcResult &Result) {
    Layout L = layoutOf(Obj, Heap.region(Handle).Kind);
    for (size_t I = 0; I < L.NumFields; ++I)
      if (!evacuate(Obj[L.FirstField + I], Result))
        return false;
    return true;
  }

  RegionHeap &Heap;
  GcKind Kind;
  bool Seal;
  std::map<uintptr_t, uintptr_t> FromRanges;
  std::vector<std::pair<uint32_t, std::vector<RegionHeap::Page>>> FromSpace;
  std::unordered_map<uint64_t *, Value> Forward;
  std::vector<std::pair<uint64_t *, uint32_t>> Worklist;
};

} // namespace

GcResult rml::rt::collectGarbage(RegionHeap &Heap,
                                 const std::vector<Value *> &Roots,
                                 GcKind Kind, bool Seal) {
  Collector C(Heap, Kind, Seal);
  return C.run(Roots);
}
