//===- rt/FlatEval.h - Interpreter over flat compiled units -----*- C++ -*-===//
//
// Part of RegionML, a reproduction of "Garbage-Collection Safety for
// Region-Based Type-Polymorphic Programs" (Elsman, PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a flat::FlatUnit directly — no RExpr tree, no Interner, no
/// analysis structures. An exact operational mirror of the tree-walking
/// evaluator (rt/Eval.cpp): the same EvalOptions, the same allocation
/// sites and word counts, the same GC trigger points, write barrier,
/// step accounting and error strings, and the same RunResult shape —
/// so tree and flat runs of one program agree on every observable,
/// including HeapStats and GC-safety attribution (the differential
/// suite pins this across the rg/rg-/r strategy grid).
///
/// This is what makes disk-cache entries runnable: a decoded FlatUnit
/// needs nothing from its original Compiler.
///
//===----------------------------------------------------------------------===//

#ifndef RML_RT_FLATEVAL_H
#define RML_RT_FLATEVAL_H

#include "flat/Flat.h"
#include "rt/Eval.h"

namespace rml::rt {

/// Runs \p U under \p Opts. \p U must be structurally valid (as
/// produced by flat::flattenProgram or accepted by flat::decodeFlat).
RunResult runFlatUnit(const flat::FlatUnit &U, const EvalOptions &Opts);

} // namespace rml::rt

#endif // RML_RT_FLATEVAL_H
