//===- rt/GcPolicy.cpp ----------------------------------------------------===//

#include "rt/GcPolicy.h"

#include <algorithm>

using namespace rml;
using namespace rml::rt;

GcPolicy::GcPolicy(bool Adaptive, uint64_t ThresholdWords,
                   unsigned MinorsPerMajor, bool Generational,
                   uint64_t PauseBudgetNanos)
    : Adaptive(Adaptive), Generational(Generational),
      InitialThreshold(std::max<uint64_t>(1, ThresholdWords)),
      PauseBudget(PauseBudgetNanos),
      InitialMPM(std::max(1u, MinorsPerMajor)),
      Threshold(InitialThreshold), MPM(InitialMPM) {
  Counters.Adaptive = Adaptive;
}

GcKind GcPolicy::nextKind() {
  if (!Generational)
    return GcKind::Major;
  ++Tick;
  return (Tick % MPM == 0) ? GcKind::Major : GcKind::Minor;
}

bool GcPolicy::observe(const GcPauseRecord &Pause) {
  const bool OverBudget = PauseBudget && Pause.WallNanos > PauseBudget;
  if (OverBudget)
    ++Counters.OverBudgetPauses;
  if (!Adaptive)
    return false;

  bool Moved = false;
  const uint64_t Cap = InitialThreshold * 16;
  if (OverBudget) {
    // The pause overran its budget: back off — collect less often.
    if (Threshold < Cap) {
      Threshold = std::min(Cap, Threshold * 2);
      ++Counters.BudgetBackoffs;
      Moved = true;
    }
  } else if (2 * Pause.CopiedWords >= Threshold) {
    if (Threshold < Cap) {
      Threshold = std::min(Cap, Threshold * 2);
      ++Counters.ThresholdRaises;
      Moved = true;
    }
  } else if (16 * Pause.CopiedWords <= Threshold &&
             Threshold > InitialThreshold) {
    Threshold = std::max(InitialThreshold, Threshold / 2);
    ++Counters.ThresholdDrops;
    Moved = true;
  }

  if (Generational && Pause.Minor) {
    const unsigned MpmCap = InitialMPM * 4;
    const unsigned MpmFloor = std::max(2u, InitialMPM / 4);
    if (16 * Pause.CopiedWords <= Threshold && MPM < MpmCap) {
      MPM = std::min(MpmCap, MPM * 2);
      ++Counters.MinorsPerMajorRaises;
      Moved = true;
    } else if (2 * Pause.CopiedWords >= Threshold && MPM > MpmFloor) {
      MPM = std::max(MpmFloor, MPM / 2);
      ++Counters.MinorsPerMajorDrops;
      Moved = true;
    }
  }
  return Moved;
}

GcPolicyStats GcPolicy::stats() const {
  GcPolicyStats Out = Counters;
  Out.FinalThresholdWords = Threshold;
  Out.FinalMinorsPerMajor = MPM;
  return Out;
}
