//===- rt/Region.cpp ------------------------------------------------------===//

#include "rt/Region.h"

#include "rt/PagePool.h"

#include <algorithm>
#include <cassert>

using namespace rml;
using namespace rml::rt;

RegionHeap::RegionHeap() {
  // Handle 0 is the global region, always live.
  Regions.push_back(Region{0, RegionKind::Mixed, false, true, {}});
  Stats.RegionsCreated = 1;
}

RegionHeap::~RegionHeap() {
  // Recycle standard pages into the shared pool so the next request's
  // heap reuses them. Quarantine under exact dangling detection: a
  // detecting heap's pages (graveyard and live alike) never enter the
  // pool, so no other heap can be handed a page the detector could
  // still attribute to one of this heap's dead regions.
  if (!SharedPool || RetainReleasedPages)
    return;
  std::vector<std::unique_ptr<uint64_t[]>> Standard;
  Standard.reserve(Pool.size());
  for (Region &R : Regions)
    for (Page &P : R.Pages)
      if (P.Cap == PageWords)
        Standard.push_back(std::move(P.Words));
  for (Page &P : Pool)
    Standard.push_back(std::move(P.Words));
  // One batched hand-off: the shared pool's shard is touched once per
  // heap, not once per page.
  SharedPool->releaseMany(std::move(Standard));
}

RegionHeap::Page RegionHeap::newPage(size_t CapWords) {
  if (CapWords == PageWords && !Pool.empty()) {
    Page P = std::move(Pool.back());
    Pool.pop_back();
    P.Used = 0;
    P.Old = false;
    Stats.CurrentHeapWords += P.Cap;
    Stats.PeakHeapWords = std::max(Stats.PeakHeapWords,
                                   Stats.CurrentHeapWords);
    return P;
  }
  // The local free list is empty: try the cross-request pool before the
  // allocator. Standard pages only; finite-region blocks bypass it.
  if (CapWords == PageWords && SharedPool && !RetainReleasedPages) {
    if (std::unique_ptr<uint64_t[]> Buf = SharedPool->acquire()) {
      Page P;
      P.Words = std::move(Buf);
      P.Cap = PageWords;
      P.Used = 0;
      ++Stats.PagesFromSharedPool;
      Stats.CurrentHeapWords += PageWords;
      Stats.PeakHeapWords = std::max(Stats.PeakHeapWords,
                                     Stats.CurrentHeapWords);
      return P;
    }
  }
  Page P;
  P.Words = std::make_unique<uint64_t[]>(CapWords);
  P.Cap = CapWords;
  P.Used = 0;
  ++Stats.PagesAllocated;
  Stats.CurrentHeapWords += CapWords;
  Stats.PeakHeapWords = std::max(Stats.PeakHeapWords,
                                 Stats.CurrentHeapWords);
  return P;
}

void RegionHeap::retirePage(Page P) {
  assert(Stats.CurrentHeapWords >= P.Cap && "heap accounting underflow");
  Stats.CurrentHeapWords -= P.Cap;
  if (!RetainReleasedPages && P.Cap == PageWords) {
    Pool.push_back(std::move(P));
    return;
  }
  if (RetainReleasedPages)
    GraveyardPages.push_back(std::move(P));
  // Non-standard (finite) pages are simply freed.
}

void RegionHeap::mapPage(const Page &P, uint32_t Handle) {
  uintptr_t Start = reinterpret_cast<uintptr_t>(P.Words.get());
  AddrMap[Start] = {Start + P.Cap * 8, Handle, P.Old};
}

void RegionHeap::unmapPage(const Page &P) {
  AddrMap.erase(reinterpret_cast<uintptr_t>(P.Words.get()));
}

uint32_t RegionHeap::create(uint32_t StaticId, RegionKind Kind,
                            unsigned FiniteWords) {
  Region R;
  R.StaticId = StaticId;
  R.Kind = Kind;
  R.Finite = FiniteWords != 0;
  R.Live = true;
  uint32_t Handle = static_cast<uint32_t>(Regions.size());
  Regions.push_back(std::move(R));
  ++Stats.RegionsCreated;
  RegionProfile &Prof = Profiles[StaticId];
  Prof.StaticId = StaticId;
  Prof.Kind = Kind;
  Prof.Finite = FiniteWords != 0;
  ++Prof.Instances;
  if (FiniteWords != 0) {
    ++Stats.FiniteRegionsCreated;
    Page P = newPage(FiniteWords);
    mapPage(P, Handle);
    Regions[Handle].Pages.push_back(std::move(P));
  }
  return Handle;
}

void RegionHeap::release(uint32_t Handle) {
  Region &R = Regions[Handle];
  assert(R.Live && "double release of a region");
  R.Live = false;
  for (Page &P : R.Pages) {
    if (RetainReleasedPages) {
      uintptr_t Start = reinterpret_cast<uintptr_t>(P.Words.get());
      Graveyard[Start] = {Start + P.Cap * 8, R.StaticId};
    }
    unmapPage(P);
    retirePage(std::move(P));
  }
  R.Pages.clear();
}

uint64_t *RegionHeap::alloc(uint32_t Handle, size_t Words) {
  assert(Words > 0 && "empty allocation");
  Region &R = Regions[Handle];
  assert(R.Live && "allocation into a dead region");
  Stats.AllocWords += Words;
  AllocSinceGc += Words;
  Profiles[R.StaticId].AllocWords += Words;
  if (R.Pages.empty() || R.Pages.back().Old ||
      R.Pages.back().Used + Words > R.Pages.back().Cap) {
    size_t Cap = std::max(Words, PageWords);
    Page P = newPage(Cap);
    mapPage(P, Handle);
    R.Pages.push_back(std::move(P));
  }
  Page &P = R.Pages.back();
  uint64_t *Out = P.Words.get() + P.Used;
  P.Used += Words;
  return Out;
}

std::optional<uint32_t> RegionHeap::ownerOf(const uint64_t *Ptr) const {
  uintptr_t Addr = reinterpret_cast<uintptr_t>(Ptr);
  auto It = AddrMap.upper_bound(Addr);
  if (It == AddrMap.begin())
    return std::nullopt;
  --It;
  if (Addr >= It->first && Addr < It->second.End)
    return It->second.Region;
  return std::nullopt;
}

bool RegionHeap::isOldAddr(const uint64_t *Ptr) const {
  uintptr_t Addr = reinterpret_cast<uintptr_t>(Ptr);
  auto It = AddrMap.upper_bound(Addr);
  if (It == AddrMap.begin())
    return false;
  --It;
  return Addr >= It->first && Addr < It->second.End && It->second.Old;
}

std::optional<uint32_t>
RegionHeap::graveyardOwnerOf(const uint64_t *Ptr) const {
  uintptr_t Addr = reinterpret_cast<uintptr_t>(Ptr);
  auto It = Graveyard.upper_bound(Addr);
  if (It == Graveyard.begin())
    return std::nullopt;
  --It;
  if (Addr >= It->first && Addr < It->second.first)
    return It->second.second;
  return std::nullopt;
}

std::vector<uint32_t> RegionHeap::liveRegions() const {
  std::vector<uint32_t> Out;
  for (uint32_t I = 0; I < Regions.size(); ++I)
    if (Regions[I].Live)
      Out.push_back(I);
  return Out;
}

std::vector<RegionHeap::Page> RegionHeap::detachPages(uint32_t Handle,
                                                      bool YoungOnly) {
  Region &R = Regions[Handle];
  // Pages stay in the address map so the collector can resolve from-space
  // pointers; dropFromSpace removes them.
  if (!YoungOnly) {
    std::vector<Page> Out = std::move(R.Pages);
    R.Pages.clear();
    return Out;
  }
  std::vector<Page> Young, Kept;
  for (Page &P : R.Pages) {
    if (P.Old)
      Kept.push_back(std::move(P));
    else
      Young.push_back(std::move(P));
  }
  R.Pages = std::move(Kept);
  return Young;
}

void RegionHeap::sealLivePages() {
  for (Region &R : Regions) {
    if (!R.Live)
      continue;
    for (Page &P : R.Pages) {
      if (P.Old)
        continue;
      P.Old = true;
      uintptr_t Start = reinterpret_cast<uintptr_t>(P.Words.get());
      auto It = AddrMap.find(Start);
      if (It != AddrMap.end())
        It->second.Old = true;
    }
  }
}

std::vector<RegionProfile> RegionHeap::profiles() const {
  std::vector<RegionProfile> Out;
  Out.reserve(Profiles.size());
  for (const auto &[Id, P] : Profiles)
    Out.push_back(P);
  std::sort(Out.begin(), Out.end(),
            [](const RegionProfile &A, const RegionProfile &B) {
              return A.AllocWords > B.AllocWords;
            });
  return Out;
}

void RegionHeap::dropFromSpace(std::vector<Page> Pages) {
  for (Page &P : Pages) {
    unmapPage(P);
    retirePage(std::move(P));
  }
}
