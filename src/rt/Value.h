//===- rt/Value.h - Runtime value representation ----------------*- C++ -*-===//
//
// Part of RegionML, a reproduction of "Garbage-Collection Safety for
// Region-Based Type-Polymorphic Programs" (Elsman, PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MLKit-style value representation:
///
///  * unboxed scalars (int, bool, unit) are tagged words: (v << 1) | 1 —
///    the paper notes that "unboxed objects are tagged in our system,
///    which makes it possible to distinguish pointers from unboxed
///    objects at runtime";
///  * boxed objects are 8-byte-aligned pointers into region pages; nil is
///    the null pointer;
///  * boxed objects carry a one-word header [kind | payload] *except* in
///    regions whose kind analysis proves a uniform layout (pairs, cons
///    cells, refs) — those are stored tag-free, and the collector derives
///    the layout from the region kind (the partly tag-free scheme of
///    Section 6).
///
//===----------------------------------------------------------------------===//

#ifndef RML_RT_VALUE_H
#define RML_RT_VALUE_H

#include <cassert>
#include <cstdint>

namespace rml::rt {

/// A runtime value word.
using Value = uint64_t;

constexpr Value NilValue = 0;

inline bool isScalar(Value V) { return (V & 1) != 0; }
inline bool isPointer(Value V) { return (V & 1) == 0 && V != NilValue; }

inline Value boxScalar(int64_t I) {
  return (static_cast<uint64_t>(I) << 1) | 1;
}
inline int64_t unboxScalar(Value V) {
  assert(isScalar(V) && "not a scalar");
  return static_cast<int64_t>(V) >> 1;
}

inline Value boxBool(bool B) { return boxScalar(B ? 1 : 0); }
inline bool unboxBool(Value V) { return unboxScalar(V) != 0; }
inline Value unitValue() { return boxScalar(0); }

inline uint64_t *asPtr(Value V) {
  assert(isPointer(V) && "not a pointer");
  return reinterpret_cast<uint64_t *>(V);
}
inline Value fromPtr(const uint64_t *P) {
  return reinterpret_cast<Value>(P);
}

/// Header kinds for tagged objects. Headers are odd words (low bit set)
/// so they can never be confused with a pointer field.
enum class ObjKind : uint8_t {
  Pair = 1,    // 2 value fields
  Cons = 2,    // 2 value fields (head, tail)
  Ref = 3,     // 1 value field
  String = 4,  // payload = byte length; data words follow
  Closure = 5, // payload = word count; [fnIdx][nRegions][regions...]
               // [captures...]
  Exn = 6,     // [exnId][argCount(0/1)][arg]
};

/// Builds a header word: [payload:48 | kind:8 | 1].
inline uint64_t makeHeader(ObjKind K, uint64_t Payload) {
  return (Payload << 16) | (static_cast<uint64_t>(K) << 1) | 1;
}
inline bool isHeader(uint64_t W) { return (W & 1) != 0; }
inline ObjKind headerKind(uint64_t W) {
  return static_cast<ObjKind>((W >> 1) & 0x7F);
}
inline uint64_t headerPayload(uint64_t W) { return W >> 16; }

} // namespace rml::rt

#endif // RML_RT_VALUE_H
