//===- rt/Region.h - Region heap --------------------------------*- C++ -*-===//
//
// Part of RegionML, a reproduction of "Garbage-Collection Safety for
// Region-Based Type-Polymorphic Programs" (Elsman, PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MLKit-style region heap: a region is a growable list of fixed-size
/// pages; letregion pushes a region, its closing pops and releases the
/// pages. *Finite* regions (multiplicity analysis) hold one exact-size
/// block instead of a page. The heap tracks which pages belong to which
/// region so that the collector can (a) preserve region identity while
/// copying and (b) detect pointers into deallocated regions — the
/// dangling pointers whose absence the paper's type system guarantees.
///
//===----------------------------------------------------------------------===//

#ifndef RML_RT_REGION_H
#define RML_RT_REGION_H

#include "rinfer/RegionKinds.h"
#include "rt/PagePool.h"
#include "rt/Value.h"

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace rml::rt {

/// Per-static-region runtime profile (the MLKit region profiler's
/// per-region view): how many times the letregion executed and how many
/// words were allocated into its instances.
struct RegionProfile {
  uint32_t StaticId = 0;
  RegionKind Kind = RegionKind::Empty;
  uint64_t Instances = 0;
  uint64_t AllocWords = 0;
  bool Finite = false;
};

/// Runtime heap statistics (the "rss" and "gc #" columns of Figure 9).
struct HeapStats {
  uint64_t AllocWords = 0;       // total words ever allocated
  uint64_t CurrentHeapWords = 0; // words in pages currently held
  uint64_t PeakHeapWords = 0;    // high-water mark (the rss analogue)
  uint64_t GcCount = 0;    // all collections
  uint64_t MinorGcCount = 0;
  uint64_t MajorGcCount = 0;
  uint64_t CopiedWords = 0;      // evacuated by the collector
  uint64_t RegionsCreated = 0;
  uint64_t FiniteRegionsCreated = 0;
  uint64_t PagesAllocated = 0;       // fresh pages from the allocator
  uint64_t PagesFromSharedPool = 0;  // standard pages recycled via PagePool

  uint64_t peakBytes() const { return PeakHeapWords * 8; }
};

class RegionHeap {
public:
  /// 2 KiB pages — the pool's buffer unit is the single source of truth.
  static constexpr size_t PageWords = PagePool::PageWords;

  struct Page {
    std::unique_ptr<uint64_t[]> Words;
    size_t Used = 0;
    size_t Cap = 0;
    /// Generational extension: pages that survived a collection are
    /// *old*; minor collections evacuate young pages only (Elsman &
    /// Hallenberg's region+generation integration, the paper's [16,17]).
    bool Old = false;
  };

  struct Region {
    uint32_t StaticId = 0; // region variable id (diagnostics)
    RegionKind Kind = RegionKind::Mixed;
    bool Finite = false;
    bool Live = false;
    std::vector<Page> Pages;
  };

  /// When set, released pages are never reused, so every dangling pointer
  /// is detected exactly (used by the rg- demonstrations; benchmarks run
  /// with reuse on).
  bool RetainReleasedPages = false;

  /// Optional process-wide pool of standard pages (cross-request reuse;
  /// see rt/PagePool.h). Standard-page demand that misses the local free
  /// list is served from here, and on heap destruction the heap's
  /// standard pages are recycled into it. Quarantined whenever
  /// RetainReleasedPages is on: exact dangling detection must be able to
  /// attribute every released page to its dead region, so a detecting
  /// heap neither feeds the pool nor draws from it.
  PagePool *SharedPool = nullptr;

  explicit RegionHeap();
  ~RegionHeap();

  /// Creates a region; returns its runtime handle. \p FiniteWords != 0
  /// requests a finite region with an exact-size block.
  uint32_t create(uint32_t StaticId, RegionKind Kind,
                  unsigned FiniteWords = 0);

  /// Releases a region: its pages go back to the pool (or the graveyard
  /// when RetainReleasedPages).
  void release(uint32_t Handle);

  /// Bump-allocates \p Words words in \p Handle. Never GCs — the
  /// evaluator polices collection points.
  uint64_t *alloc(uint32_t Handle, size_t Words);

  /// The region owning \p P, if P points into a live region's pages.
  /// Returns std::nullopt for unknown addresses (released-and-unreused
  /// pages, foreign memory).
  std::optional<uint32_t> ownerOf(const uint64_t *P) const;

  /// For dangling-pointer diagnostics: the static region id a released
  /// page belonged to (graveyard mode only).
  std::optional<uint32_t> graveyardOwnerOf(const uint64_t *P) const;

  Region &region(uint32_t Handle) { return Regions[Handle]; }
  const Region &region(uint32_t Handle) const { return Regions[Handle]; }
  size_t numRegions() const { return Regions.size(); }

  /// Live regions' handles (for the collector).
  std::vector<uint32_t> liveRegions() const;

  /// Collector support: detaches a region's pages (from-space) and leaves
  /// it empty for evacuation; with \p YoungOnly, old pages stay in place
  /// (minor collection). The detached pages stay in the address map
  /// (marked from-space) until dropFromSpace.
  std::vector<Page> detachPages(uint32_t Handle, bool YoungOnly = false);
  void dropFromSpace(std::vector<Page> Pages);

  /// Marks every live page old (after a collection, survivors only) and
  /// forces the next allocation in each region onto a fresh young page.
  void sealLivePages();

  /// True when \p P points into an old page (the write-barrier test).
  bool isOldAddr(const uint64_t *P) const;

  /// Words allocated since the last collection (GC trigger input).
  uint64_t allocSinceGc() const { return AllocSinceGc; }
  void resetAllocSinceGc() { AllocSinceGc = 0; }

  HeapStats Stats;

  /// The per-static-region profiles, sorted by allocated words
  /// (descending).
  std::vector<RegionProfile> profiles() const;

private:
  Page newPage(size_t CapWords);
  void retirePage(Page P);
  void mapPage(const Page &P, uint32_t Handle);
  void unmapPage(const Page &P);

  std::vector<Region> Regions;
  /// Address map: page start -> (page end, region handle, old?).
  struct PageInfo {
    uintptr_t End;
    uint32_t Region;
    bool Old;
  };
  std::map<uintptr_t, PageInfo> AddrMap;
  /// Released page memory kept alive for exact dangling detection:
  /// page start -> (page end, static region id).
  std::map<uintptr_t, std::pair<uintptr_t, uint32_t>> Graveyard;
  std::vector<Page> GraveyardPages;
  std::vector<Page> Pool; // reusable standard pages
  uint64_t AllocSinceGc = 0;
  std::map<uint32_t, RegionProfile> Profiles; // keyed by static id
};

} // namespace rml::rt

#endif // RML_RT_REGION_H
