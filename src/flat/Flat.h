//===- flat/Flat.h - Flat, offset-based compiled units ----------*- C++ -*-===//
//
// Part of RegionML, a reproduction of "Garbage-Collection Safety for
// Region-Based Type-Polymorphic Programs" (Elsman, PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flat, serialisable form of a compiled program. A CompiledUnit is a
/// web of arena pointers (RExpr nodes, Mu/Tau types, interner symbols)
/// that cannot outlive its Compiler; a FlatUnit is the same program
/// rewritten into dense index-based tables that are (a) directly
/// executable by the runtime (rt/FlatEval.h) and (b) byte-serialisable
/// into the persistent disk cache, which is what makes a warm restart's
/// first Run=true request a pure disk hit.
///
/// Layout — six tables plus a string section, all cross-referenced by
/// u32 indices (UINT32_MAX = absent), never by pointer:
///
///   Nodes    flattened RExpr tree: kind + child indices + per-kind
///            payload (literal, name ids, region ids, fn/rapp links)
///   Fns      one entry per lambda / fun binding: body node, parameter
///            and self name ids, capture name-id span, free-region span
///   Aux      a shared u32 pool holding the variable-length spans:
///            Seq item lists, RApp (formal,target) pairs, fn captures
///            and free-region sets
///   Mus/Taus the result type reachable from RootMu, for rendering the
///            final value exactly like the tree walk does
///   Regions  per static region id: kind (tag-free layout decisions)
///            and finite-multiplicity sizing
///   ExnNames exception-constructor names in id order (the ids baked
///            into ExnConE/Handle nodes), for rendering
///   Strings  one deduplicated blob; name ids ARE string-table indices,
///            so a FlatUnit never needs the Compiler's interner
///
/// Everything semantic the tree-walking evaluator consults at runtime —
/// drop analysis (absorbed into RApp pairs and free-region sets),
/// multiplicity, region kinds, exception ids — is resolved at flatten
/// time, so executing a FlatUnit needs no analysis structures at all.
///
/// **Determinism and verification.** flattenProgram walks the program in
/// one fixed order, so equal compiled units flatten to equal tables and
/// encodeFlat is bit-deterministic. The encoding carries a checksum over
/// its body; decodeFlat verifies it, then validates every index and
/// span against its table before returning — truncation, bit flips,
/// out-of-range indices and section-length overruns all fail closed to
/// a null return (the disk cache counts that as a load rejection).
///
//===----------------------------------------------------------------------===//

#ifndef RML_FLAT_FLAT_H
#define RML_FLAT_FLAT_H

#include "region/RExpr.h"
#include "rinfer/Captures.h"
#include "rinfer/DropRegions.h"
#include "rinfer/Multiplicity.h"
#include "rinfer/RegionKinds.h"
#include "rinfer/Strategy.h"
#include "support/Interner.h"

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rml::flat {

/// "No index" for any u32 cross-reference (node, string, fn, type).
inline constexpr uint32_t NoIndex = UINT32_MAX;

/// One flattened RExpr. Fixed-size; the per-kind payload overlaps in
/// the obvious way (a node only reads the fields its kind defines).
struct FlatNode {
  uint8_t Kind = 0; ///< RExpr::Kind
  uint8_t Op = 0;   ///< BinOpKind (BinOp)
  uint8_t Prim = 0; ///< Expr::PrimKind (Prim)
  uint8_t Sel = 1;  ///< Sel field index (1 or 2)
  uint32_t A = NoIndex, B = NoIndex, C = NoIndex; ///< child nodes
  /// Span into FlatUnit::Aux — Seq: item node indices; RApp: resolved
  /// (formal, target) static region id pairs, flattened (count is the
  /// number of u32 entries, i.e. 2x the pair count).
  uint32_t AuxBegin = 0, AuxCount = 0;
  uint32_t Name = NoIndex;     ///< Var ref / Let binder (string index)
  uint32_t HeadName = NoIndex; ///< ListCase head binder
  uint32_t TailName = NoIndex; ///< ListCase tail binder
  uint32_t BindName = NoIndex; ///< Handle argument binder
  /// ExnConE: the resolved exception id (an unregistered constructor
  /// resolves to the tree evaluator's UINT32_MAX-2 sentinel). Handle:
  /// the id the handler matches, or NoIndex for a catch-all.
  uint32_t ExnId = NoIndex;
  uint32_t Str = NoIndex; ///< StrE literal (string index)
  int64_t Int = 0;        ///< IntLit value; BoolLit as 0/1
  uint32_t AtRho = NoIndex;    ///< allocation destination static id
  uint32_t BoundRho = NoIndex; ///< LetRegion binder static id
  uint32_t Fn = NoIndex;       ///< Lam/FunBind: FlatUnit::Fns index
};

/// One closure's captured-region sets (rinfer/Captures.h), spans into
/// Aux holding ascending static region ids. Present (Caps parallel to
/// Fns) only when the unit was compiled with the captures analysis.
struct FlatCapture {
  uint32_t ValueBegin = 0, ValueCount = 0;   ///< captured via value
  uint32_t EffectBegin = 0, EffectCount = 0; ///< in the latent effect
};

/// One compiled lambda / fun binding — the flat twin of the tree
/// evaluator's per-function record, with the drop analysis already
/// applied to the free-region set.
struct FlatFn {
  uint32_t Body = NoIndex;  ///< body node
  uint32_t Param = NoIndex; ///< parameter name id
  uint32_t Self = NoIndex;  ///< self name id (FunBind), else NoIndex
  /// Captured variable name ids, in freeVars order (span into Aux).
  uint32_t CapturesBegin = 0, CapturesCount = 0;
  /// Free static region ids to pack into closures (span into Aux;
  /// ascending, as the tree evaluator's set iteration produces).
  uint32_t FreeRegionsBegin = 0, FreeRegionsCount = 0;
};

/// Flattened result types: only what rendering reads (kind + children).
struct FlatMu {
  uint8_t Kind = 0;      ///< Mu::Kind
  uint32_t T = NoIndex;  ///< Taus index (Boxed)
};
struct FlatTau {
  uint8_t Kind = 0;                 ///< Tau::Kind
  uint32_t A = NoIndex, B = NoIndex; ///< Mus indices
};

/// Per static region id: the representation facts letregion consults.
struct FlatRegion {
  uint32_t Id = 0;
  uint8_t Kind = 0;   ///< RegionKind (unfiltered; TagFreePairs applies
                      ///< at runtime exactly like the tree walk)
  uint8_t Finite = 0; ///< multiplicity verdict
  uint32_t Words = 0; ///< exact block size for finite regions (0 unknown)
};

/// The flat program. Plain data: no pointers, no interner dependence;
/// safe to share across threads, processes and (serialised) restarts.
struct FlatUnit {
  /// Strategy the unit was compiled under (Strategy::R disables GC at
  /// run time, mirroring Compiler::run).
  uint8_t Strat = 0;
  /// 1 when the unit carries the capture-tracking table (then Caps is
  /// parallel to Fns — even when both are empty, so a closure-free
  /// program still renders a report).
  uint8_t HasCaptures = 0;
  uint32_t Root = NoIndex;   ///< program root node
  uint32_t RootMu = NoIndex; ///< result type (Mus index; NoIndex = none)
  std::vector<FlatNode> Nodes;
  std::vector<FlatFn> Fns;
  std::vector<FlatCapture> Caps; ///< empty, or one entry per Fns entry
  std::vector<uint32_t> Aux;
  std::vector<FlatMu> Mus;
  std::vector<FlatTau> Taus;
  std::vector<FlatRegion> Regions;  ///< strictly ascending by Id
  std::vector<uint32_t> ExnNames;   ///< exn id -> string index
  /// Deduplicated string section: Spans are contiguous and ascending,
  /// covering Blob exactly (the encode/decode invariant).
  std::string StringBlob;
  std::vector<std::pair<uint32_t, uint32_t>> StringSpans; ///< (offset, len)

  std::string_view str(uint32_t I) const {
    const auto &[Off, Len] = StringSpans[I];
    return std::string_view(StringBlob).substr(Off, Len);
  }

  /// Region facts for \p Id (binary search), or null when the id has no
  /// entry — then the kind is RegionKind::Empty and the region is
  /// infinite, exactly the tree evaluator's map-miss defaults.
  const FlatRegion *regionInfo(uint32_t Id) const;
};

/// Flattens a compiled program. Deterministic: the node, function and
/// string tables are filled in one fixed pre-order walk, so identical
/// inputs yield identical (and identically serialisable) units.
/// \p Caps, when non-null, is the capture-tracking table for \p P in
/// the same closure pre-order this pass discovers functions in; it is
/// embedded as the Caps/Aux sections so the report survives
/// serialisation.
FlatUnit flattenProgram(const RProgram &P, const Mu *RootMu,
                        const MultiplicityInfo &Mult,
                        const RegionKindInfo &Kinds, const DropInfo &Drops,
                        const Interner &Names, Strategy Strat,
                        const CaptureInfo *Caps = nullptr);

/// Renders the capture report from a flat unit's embedded table —
/// byte-identical to Compiler::captureReport on the tree side (same
/// formatter, same data). Empty when the unit carries no table.
std::string renderCaptureReport(const FlatUnit &U);

/// Serialises \p U: magic + version + body checksum + the tables in
/// fixed order, explicit little-endian widths. Bit-deterministic, and
/// a decode/encode round trip reproduces the input bytes exactly.
std::string encodeFlat(const FlatUnit &U);

/// Deserialises and fully validates: checksum first, then every index,
/// span and enum against its table. Returns null on any damage —
/// truncation, bit flips, out-of-range indices, section-length
/// overruns, trailing bytes — never throws, never returns a unit the
/// evaluator could walk out of bounds.
std::shared_ptr<const FlatUnit> decodeFlat(std::string_view Bytes);

} // namespace rml::flat

#endif // RML_FLAT_FLAT_H
