//===- flat/Flat.cpp ------------------------------------------------------===//

#include "flat/Flat.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <set>
#include <unordered_map>

using namespace rml;
using namespace rml::flat;

//===----------------------------------------------------------------------===//
// FlatUnit queries
//===----------------------------------------------------------------------===//

const FlatRegion *FlatUnit::regionInfo(uint32_t Id) const {
  auto It = std::lower_bound(
      Regions.begin(), Regions.end(), Id,
      [](const FlatRegion &R, uint32_t Id) { return R.Id < Id; });
  if (It == Regions.end() || It->Id != Id)
    return nullptr;
  return &*It;
}

//===----------------------------------------------------------------------===//
// Flattening
//===----------------------------------------------------------------------===//

namespace {

/// Mirror of the tree evaluator's per-function compilation pass
/// (rt/Eval.cpp): fun/lambda discovery in pre-order, capture lists,
/// RApp argument resolution against the lexical fun scope, and the
/// free-region computation with the drop analysis applied. Kept
/// operation-for-operation identical so a flat run allocates exactly
/// the words the tree run does — the differential suite pins this.
struct FnInfo {
  const RExpr *Node = nullptr;
  const RExpr *Body = nullptr;
  Symbol Param;
  Symbol SelfName;
  std::vector<Symbol> Captures;
  std::vector<uint32_t> FreeRegions;
  std::vector<uint32_t> RuntimeFormals;
};

class FnPass {
public:
  FnPass(const DropInfo &Drops) : Drops(Drops) {}

  std::vector<FnInfo> Fns;
  std::unordered_map<const RExpr *, uint32_t> FnIndex;
  std::unordered_map<const RExpr *, std::vector<std::pair<uint32_t, uint32_t>>>
      RAppArgs;
  std::unordered_map<Symbol, uint32_t> ExnIds;
  uint32_t NextExnId = 0;

  void run(const RProgram &P) {
    for (const auto &[Name, Sig] : P.ExnSigs)
      if (!ExnIds.count(Name))
        ExnIds.emplace(Name, NextExnId++);
    walk(P.Root);
    for (FnInfo &F : Fns)
      computeFreeRegions(F);
  }

private:
  void bindFun(Symbol Name, const RExpr *Fun) {
    FunScope.emplace_back(Name, Fun);
  }
  const RExpr *lookupFun(Symbol Name) const {
    for (size_t I = FunScope.size(); I-- > 0;)
      if (FunScope[I].first == Name)
        return FunScope[I].second;
    return nullptr;
  }

  void walk(const RExpr *E) {
    if (!E)
      return;
    switch (E->K) {
    case RExpr::Kind::Lam: {
      FnInfo F;
      F.Node = E;
      F.Body = E->A;
      F.Param = E->Param;
      F.Captures = freeVars(E);
      FnIndex.emplace(E, static_cast<uint32_t>(Fns.size()));
      Fns.push_back(std::move(F));
      walk(E->A);
      return;
    }
    case RExpr::Kind::FunBind: {
      FnInfo F;
      F.Node = E;
      F.Body = E->A;
      F.Param = E->Param;
      F.SelfName = E->Name;
      F.Captures = freeVars(E);
      for (RegionVar R : E->Sigma.QRegions)
        if (!Drops.isDropped(E, R))
          F.RuntimeFormals.push_back(R.Id);
      FnIndex.emplace(E, static_cast<uint32_t>(Fns.size()));
      Fns.push_back(std::move(F));
      size_t Mark = FunScope.size();
      bindFun(E->Name, E);
      walk(E->A);
      FunScope.resize(Mark);
      return;
    }
    case RExpr::Kind::Let: {
      walk(E->A);
      size_t Mark = FunScope.size();
      if (E->A->K == RExpr::Kind::FunBind)
        bindFun(E->Name, E->A);
      walk(E->B);
      FunScope.resize(Mark);
      return;
    }
    case RExpr::Kind::RApp: {
      assert(E->A->K == RExpr::Kind::Var && "region application target");
      const RExpr *Callee = lookupFun(E->A->Name);
      std::vector<std::pair<uint32_t, uint32_t>> Args;
      if (Callee) {
        for (RegionVar Q : Callee->Sigma.QRegions) {
          if (Drops.isDropped(Callee, Q))
            continue;
          auto It = E->Inst.Sr.find(Q);
          Args.emplace_back(Q.Id,
                            It != E->Inst.Sr.end() ? It->second.Id : Q.Id);
        }
      }
      RAppArgs.emplace(E, std::move(Args));
      walk(E->A);
      return;
    }
    default:
      walk(E->A);
      walk(E->B);
      walk(E->C);
      for (const RExpr *Item : E->Items)
        walk(Item);
      return;
    }
  }

  void collectRegionRefs(const RExpr *E, std::set<uint32_t> &Bound,
                         std::set<uint32_t> &Out) {
    if (!E)
      return;
    if (E->AtRho.isValid() && E->AtRho.Id != 0 && !Bound.count(E->AtRho.Id))
      Out.insert(E->AtRho.Id);
    if (E->K == RExpr::Kind::RApp) {
      auto It = RAppArgs.find(E);
      if (It != RAppArgs.end())
        for (const auto &[Formal, Target] : It->second)
          if (Target != 0 && !Bound.count(Target))
            Out.insert(Target);
    }
    if (E->K == RExpr::Kind::LetRegion) {
      std::set<uint32_t> Inner = Bound;
      Inner.insert(E->BoundRho.Id);
      collectRegionRefs(E->A, Inner, Out);
      return;
    }
    if (E->K == RExpr::Kind::FunBind) {
      std::set<uint32_t> Inner = Bound;
      for (RegionVar R : E->Sigma.QRegions)
        Inner.insert(R.Id);
      collectRegionRefs(E->A, Inner, Out);
      return;
    }
    collectRegionRefs(E->A, Bound, Out);
    collectRegionRefs(E->B, Bound, Out);
    collectRegionRefs(E->C, Bound, Out);
    for (const RExpr *Item : E->Items)
      collectRegionRefs(Item, Bound, Out);
  }

  void computeFreeRegions(FnInfo &F) {
    std::set<uint32_t> Bound, Out;
    for (uint32_t R : F.RuntimeFormals)
      Bound.insert(R);
    if (F.Node->K == RExpr::Kind::FunBind)
      for (RegionVar R : F.Node->Sigma.QRegions)
        Bound.insert(R.Id);
    collectRegionRefs(F.Body, Bound, Out);
    F.FreeRegions.assign(Out.begin(), Out.end());
  }

  const DropInfo &Drops;
  std::vector<std::pair<Symbol, const RExpr *>> FunScope;
};

/// The second pass: rewrites the RExpr web into the index tables,
/// consulting the FnPass results for fn links, RApp pairs and exn ids.
class Flattener {
public:
  Flattener(const FnPass &FP, const MultiplicityInfo &Mult,
            const RegionKindInfo &Kinds, const Interner &Names)
      : FP(FP), Mult(Mult), Kinds(Kinds), Names(Names) {}

  FlatUnit take(const RProgram &P, const Mu *RootMu, Strategy Strat,
                const CaptureInfo *Caps) {
    U.Strat = static_cast<uint8_t>(Strat);
    RegionIds.insert(0); // the global region always has an entry
    U.Root = flatten(P.Root);
    U.RootMu = flattenMu(RootMu);
    // Fn table: bodies and captures were flattened/interned while
    // walking the root (every body is a descendant of the root).
    for (const FnInfo &F : FP.Fns) {
      FlatFn FF;
      FF.Body = NodeIndex.at(F.Body);
      FF.Param = nameId(F.Param);
      FF.Self = nameId(F.SelfName);
      FF.CapturesBegin = static_cast<uint32_t>(U.Aux.size());
      FF.CapturesCount = static_cast<uint32_t>(F.Captures.size());
      for (Symbol S : F.Captures)
        U.Aux.push_back(nameId(S));
      FF.FreeRegionsBegin = static_cast<uint32_t>(U.Aux.size());
      FF.FreeRegionsCount = static_cast<uint32_t>(F.FreeRegions.size());
      for (uint32_t R : F.FreeRegions)
        U.Aux.push_back(R);
      U.Fns.push_back(FF);
    }
    // Capture table: the analysis enumerates closures in this pass's
    // own pre-order, so entry i annotates Fns[i]. A mismatched table
    // (impossible through the pipeline; conceivable for hand-built
    // inputs) is dropped rather than misattributed.
    if (Caps && Caps->Closures.size() == U.Fns.size()) {
      U.HasCaptures = 1;
      for (const ClosureCapture &C : Caps->Closures) {
        FlatCapture FC;
        FC.ValueBegin = static_cast<uint32_t>(U.Aux.size());
        FC.ValueCount = static_cast<uint32_t>(C.ViaValue.size());
        for (uint32_t R : C.ViaValue)
          U.Aux.push_back(R);
        FC.EffectBegin = static_cast<uint32_t>(U.Aux.size());
        FC.EffectCount = static_cast<uint32_t>(C.ViaEffect.size());
        for (uint32_t R : C.ViaEffect)
          U.Aux.push_back(R);
        U.Caps.push_back(FC);
      }
    }
    // Region facts, ascending by id (regionInfo binary-searches).
    for (uint32_t Id : RegionIds) {
      FlatRegion R;
      R.Id = Id;
      R.Kind = static_cast<uint8_t>(Kinds.kindOf(RegionVar(Id)));
      R.Finite = Mult.isFinite(RegionVar(Id)) ? 1 : 0;
      auto It = Mult.FiniteWords.find(Id);
      R.Words = It != Mult.FiniteWords.end() ? It->second : 0;
      U.Regions.push_back(R);
    }
    // Exception names in id order (ids were assigned sequentially).
    // Intern in id order too — iterating the unordered map directly
    // would make string-table order (and the encoding) nondeterministic.
    std::vector<Symbol> ById(FP.NextExnId);
    for (const auto &[Name, Id] : FP.ExnIds)
      ById[Id] = Name;
    U.ExnNames.reserve(ById.size());
    for (Symbol Name : ById)
      U.ExnNames.push_back(nameId(Name));
    return std::move(U);
  }

private:
  uint32_t stringId(std::string_view S) {
    auto It = StringIndex.find(std::string(S));
    if (It != StringIndex.end())
      return It->second;
    uint32_t Id = static_cast<uint32_t>(U.StringSpans.size());
    U.StringSpans.emplace_back(static_cast<uint32_t>(U.StringBlob.size()),
                               static_cast<uint32_t>(S.size()));
    U.StringBlob.append(S);
    StringIndex.emplace(std::string(S), Id);
    return Id;
  }

  uint32_t nameId(Symbol S) {
    return S.isValid() ? stringId(Names.text(S)) : NoIndex;
  }

  uint32_t exnIdOf(Symbol Name) const {
    // Unregistered constructors get the tree evaluator's sentinel.
    auto It = FP.ExnIds.find(Name);
    return It != FP.ExnIds.end() ? It->second : UINT32_MAX - 2;
  }

  uint32_t flattenMu(const Mu *M) {
    if (!M)
      return NoIndex;
    auto It = MuIndex.find(M);
    if (It != MuIndex.end())
      return It->second;
    FlatMu FM;
    FM.Kind = static_cast<uint8_t>(M->K);
    if (M->K == Mu::Kind::Boxed)
      FM.T = flattenTau(M->T);
    uint32_t Id = static_cast<uint32_t>(U.Mus.size());
    U.Mus.push_back(FM);
    MuIndex.emplace(M, Id);
    return Id;
  }

  uint32_t flattenTau(const Tau *T) {
    auto It = TauIndex.find(T);
    if (It != TauIndex.end())
      return It->second;
    FlatTau FT;
    FT.Kind = static_cast<uint8_t>(T->K);
    // Only what rendering reads: pair/list/ref element types. Arrow
    // renders as "fn" without recursing, so its children stay absent.
    switch (T->K) {
    case Tau::Kind::Pair:
      FT.A = flattenMu(T->A);
      FT.B = flattenMu(T->B);
      break;
    case Tau::Kind::List:
    case Tau::Kind::Ref:
      FT.A = flattenMu(T->A);
      break;
    default:
      break;
    }
    uint32_t Id = static_cast<uint32_t>(U.Taus.size());
    U.Taus.push_back(FT);
    TauIndex.emplace(T, Id);
    return Id;
  }

  uint32_t flatten(const RExpr *E) {
    if (!E)
      return NoIndex;
    // Substitution shares subtrees; flatten each node once so the flat
    // form keeps the DAG (and the table stays linear in program size).
    auto It = NodeIndex.find(E);
    if (It != NodeIndex.end())
      return It->second;

    FlatNode N;
    N.Kind = static_cast<uint8_t>(E->K);
    switch (E->K) {
    case RExpr::Kind::IntLit:
      N.Int = E->IntValue;
      break;
    case RExpr::Kind::BoolLit:
      N.Int = E->BoolValue ? 1 : 0;
      break;
    case RExpr::Kind::StrE:
      N.Str = stringId(E->StrValue);
      N.AtRho = E->AtRho.Id;
      break;
    case RExpr::Kind::Var:
      N.Name = nameId(E->Name);
      break;
    case RExpr::Kind::Lam:
    case RExpr::Kind::FunBind:
      N.Fn = FP.FnIndex.at(E);
      N.AtRho = E->AtRho.Id;
      N.A = flatten(E->A);
      break;
    case RExpr::Kind::Let:
      N.Name = nameId(E->Name);
      N.A = flatten(E->A);
      N.B = flatten(E->B);
      break;
    case RExpr::Kind::RApp: {
      N.AtRho = E->AtRho.Id;
      const auto &Args = FP.RAppArgs.at(E);
      N.AuxBegin = static_cast<uint32_t>(U.Aux.size());
      N.AuxCount = static_cast<uint32_t>(2 * Args.size());
      for (const auto &[Formal, Target] : Args) {
        U.Aux.push_back(Formal);
        U.Aux.push_back(Target);
      }
      N.A = flatten(E->A);
      break;
    }
    case RExpr::Kind::LetRegion:
      N.BoundRho = E->BoundRho.Id;
      RegionIds.insert(E->BoundRho.Id);
      N.A = flatten(E->A);
      break;
    case RExpr::Kind::Sel:
      N.Sel = static_cast<uint8_t>(E->SelIndex);
      N.A = flatten(E->A);
      break;
    case RExpr::Kind::BinOp:
      N.Op = static_cast<uint8_t>(E->Op);
      N.AtRho = E->AtRho.Id; // Concat allocates
      N.A = flatten(E->A);
      N.B = flatten(E->B);
      break;
    case RExpr::Kind::ListCase:
      N.HeadName = nameId(E->HeadName);
      N.TailName = nameId(E->TailName);
      N.A = flatten(E->A);
      N.B = flatten(E->B);
      N.C = flatten(E->C);
      break;
    case RExpr::Kind::Seq: {
      N.AuxBegin = static_cast<uint32_t>(U.Aux.size());
      N.AuxCount = static_cast<uint32_t>(E->Items.size());
      // Reserve the span before recursing: nested Seqs interleave
      // their own entries otherwise.
      size_t Base = U.Aux.size();
      U.Aux.resize(Base + E->Items.size(), NoIndex);
      for (size_t I = 0; I < E->Items.size(); ++I)
        U.Aux[Base + I] = flatten(E->Items[I]);
      break;
    }
    case RExpr::Kind::Handle:
      N.ExnId = E->ExnName.isValid() ? exnIdOf(E->ExnName) : NoIndex;
      N.BindName = nameId(E->BindName);
      N.A = flatten(E->A);
      N.B = flatten(E->B);
      break;
    case RExpr::Kind::ExnConE:
      N.ExnId = exnIdOf(E->ExnName);
      N.A = flatten(E->A);
      break;
    case RExpr::Kind::Prim:
      N.Prim = static_cast<uint8_t>(E->PrimK);
      N.AtRho = E->AtRho.Id; // Itos allocates
      N.A = flatten(E->A);
      break;
    default:
      // PairE/ConsE/RefE (allocation site), App/If/Deref/Assign/Raise
      // (plain children), UnitLit/NilVal (no payload), and the value
      // forms the evaluator rejects at runtime.
      N.AtRho = E->AtRho.Id;
      N.A = flatten(E->A);
      N.B = flatten(E->B);
      N.C = flatten(E->C);
      break;
    }

    uint32_t Id = static_cast<uint32_t>(U.Nodes.size());
    U.Nodes.push_back(N);
    NodeIndex.emplace(E, Id);
    return Id;
  }

  const FnPass &FP;
  const MultiplicityInfo &Mult;
  const RegionKindInfo &Kinds;
  const Interner &Names;
  FlatUnit U;
  std::unordered_map<const RExpr *, uint32_t> NodeIndex;
  std::unordered_map<const Mu *, uint32_t> MuIndex;
  std::unordered_map<const Tau *, uint32_t> TauIndex;
  std::unordered_map<std::string, uint32_t> StringIndex;
  std::set<uint32_t> RegionIds;
};

} // namespace

FlatUnit rml::flat::flattenProgram(const RProgram &P, const Mu *RootMu,
                                   const MultiplicityInfo &Mult,
                                   const RegionKindInfo &Kinds,
                                   const DropInfo &Drops,
                                   const Interner &Names, Strategy Strat,
                                   const CaptureInfo *Caps) {
  FnPass FP(Drops);
  FP.run(P);
  Flattener F(FP, Mult, Kinds, Names);
  return F.take(P, RootMu, Strat, Caps);
}

std::string rml::flat::renderCaptureReport(const FlatUnit &U) {
  if (!U.HasCaptures)
    return "";
  std::vector<CaptureReportRow> Rows;
  Rows.reserve(U.Caps.size());
  for (size_t I = 0; I < U.Caps.size(); ++I) {
    const FlatFn &F = U.Fns[I];
    const FlatCapture &C = U.Caps[I];
    CaptureReportRow R;
    R.IsFun = F.Self != NoIndex;
    if (F.Self != NoIndex)
      R.Self = std::string(U.str(F.Self));
    if (F.Param != NoIndex)
      R.Param = std::string(U.str(F.Param));
    R.ViaValue.assign(U.Aux.begin() + C.ValueBegin,
                      U.Aux.begin() + C.ValueBegin + C.ValueCount);
    R.ViaEffect.assign(U.Aux.begin() + C.EffectBegin,
                       U.Aux.begin() + C.EffectBegin + C.EffectCount);
    Rows.push_back(std::move(R));
  }
  return rml::renderCaptureReport(static_cast<Strategy>(U.Strat), Rows);
}

//===----------------------------------------------------------------------===//
// Serialisation
//===----------------------------------------------------------------------===//

namespace {

constexpr char Magic[8] = {'R', 'M', 'L', 'F', 'L', 'A', 'T', '1'};
/// v2 added the HasCaptures flag and the Caps table; v1 bytes are
/// version-rejected (the disk cache degrades that to a counted miss).
constexpr uint32_t FlatVersion = 2;

uint64_t fnv1a(std::string_view Bytes) {
  uint64_t H = 0xcbf29ce484222325ull;
  for (unsigned char C : Bytes) {
    H ^= C;
    H *= 0x100000001b3ull;
  }
  return H;
}

void putU8(std::string &B, uint8_t V) { B.push_back(static_cast<char>(V)); }
void putU32(std::string &B, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    B.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
}
void putU64(std::string &B, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    B.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
}

/// Bounds-checked little-endian reader; any overrun latches Ok=false
/// and subsequent reads return zeros.
struct Reader {
  std::string_view Bytes;
  size_t Pos = 0;
  bool Ok = true;

  bool take(void *Out, size_t N) {
    if (!Ok || Bytes.size() - Pos < N) {
      Ok = false;
      return false;
    }
    std::memcpy(Out, Bytes.data() + Pos, N);
    Pos += N;
    return true;
  }
  uint8_t u8() {
    uint8_t V = 0;
    take(&V, 1);
    return V;
  }
  uint32_t u32() {
    unsigned char Buf[4] = {};
    take(Buf, 4);
    uint32_t V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(Buf[I]) << (8 * I);
    return V;
  }
  uint64_t u64() {
    unsigned char Buf[8] = {};
    take(Buf, 8);
    uint64_t V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(Buf[I]) << (8 * I);
    return V;
  }
  size_t remaining() const { return Ok ? Bytes.size() - Pos : 0; }
  /// A table of \p N elements of at least \p ElemBytes each must fit in
  /// the remaining input — rejects absurd counts before any resize.
  bool fits(uint64_t N, size_t ElemBytes) const {
    return Ok && N <= remaining() / ElemBytes;
  }
  bool done() const { return Ok && Pos == Bytes.size(); }
};

void encodeNode(std::string &B, const FlatNode &N) {
  putU8(B, N.Kind);
  putU8(B, N.Op);
  putU8(B, N.Prim);
  putU8(B, N.Sel);
  putU32(B, N.A);
  putU32(B, N.B);
  putU32(B, N.C);
  putU32(B, N.AuxBegin);
  putU32(B, N.AuxCount);
  putU32(B, N.Name);
  putU32(B, N.HeadName);
  putU32(B, N.TailName);
  putU32(B, N.BindName);
  putU32(B, N.ExnId);
  putU32(B, N.Str);
  putU64(B, static_cast<uint64_t>(N.Int));
  putU32(B, N.AtRho);
  putU32(B, N.BoundRho);
  putU32(B, N.Fn);
}
constexpr size_t NodeBytes = 4 + 14 * 4 + 8;

FlatNode decodeNode(Reader &R) {
  FlatNode N;
  N.Kind = R.u8();
  N.Op = R.u8();
  N.Prim = R.u8();
  N.Sel = R.u8();
  N.A = R.u32();
  N.B = R.u32();
  N.C = R.u32();
  N.AuxBegin = R.u32();
  N.AuxCount = R.u32();
  N.Name = R.u32();
  N.HeadName = R.u32();
  N.TailName = R.u32();
  N.BindName = R.u32();
  N.ExnId = R.u32();
  N.Str = R.u32();
  N.Int = static_cast<int64_t>(R.u64());
  N.AtRho = R.u32();
  N.BoundRho = R.u32();
  N.Fn = R.u32();
  return N;
}

constexpr size_t FnBytes = 7 * 4;
constexpr size_t CapBytes = 4 * 4;
constexpr size_t MuBytes = 1 + 4;
constexpr size_t TauBytes = 1 + 2 * 4;
constexpr size_t RegionBytes = 4 + 1 + 1 + 4;

//===----------------------------------------------------------------------===//
// Validation
//===----------------------------------------------------------------------===//

bool spanOk(uint32_t Begin, uint32_t Count, size_t Limit) {
  return static_cast<uint64_t>(Begin) + Count <= Limit;
}

bool strOk(uint32_t Id, const FlatUnit &U) {
  return Id == NoIndex || Id < U.StringSpans.size();
}

bool nodeRefOk(uint32_t Id, const FlatUnit &U) {
  return Id == NoIndex || Id < U.Nodes.size();
}

/// Full structural validation: every cross-reference lands inside its
/// table, so the interpreter can index without bounds checks.
bool validate(const FlatUnit &U) {
  if (U.Strat > static_cast<uint8_t>(Strategy::R))
    return false;
  if (U.HasCaptures > 1)
    return false;
  // The capture table is all-or-nothing: parallel to Fns when the flag
  // is set, absent when it is not.
  if (U.Caps.size() != (U.HasCaptures ? U.Fns.size() : 0))
    return false;
  if (U.Root >= U.Nodes.size())
    return false;
  if (U.RootMu != NoIndex && U.RootMu >= U.Mus.size())
    return false;

  for (const FlatNode &N : U.Nodes) {
    if (N.Kind > static_cast<uint8_t>(RExpr::Kind::Prim))
      return false;
    if (N.Op > static_cast<uint8_t>(BinOpKind::StrEq))
      return false;
    if (N.Prim > static_cast<uint8_t>(Expr::PrimKind::Global))
      return false;
    if (N.Sel != 1 && N.Sel != 2)
      return false;
    if (!nodeRefOk(N.A, U) || !nodeRefOk(N.B, U) || !nodeRefOk(N.C, U))
      return false;
    if (!spanOk(N.AuxBegin, N.AuxCount, U.Aux.size()))
      return false;
    if (!strOk(N.Name, U) || !strOk(N.HeadName, U) || !strOk(N.TailName, U) ||
        !strOk(N.BindName, U) || !strOk(N.Str, U))
      return false;
    if (N.Fn != NoIndex && N.Fn >= U.Fns.size())
      return false;
    switch (static_cast<RExpr::Kind>(N.Kind)) {
    case RExpr::Kind::StrE:
      if (N.Str == NoIndex)
        return false;
      break;
    case RExpr::Kind::Lam:
    case RExpr::Kind::FunBind:
      if (N.Fn == NoIndex)
        return false;
      break;
    case RExpr::Kind::Seq:
      for (uint32_t I = 0; I < N.AuxCount; ++I)
        if (U.Aux[N.AuxBegin + I] >= U.Nodes.size())
          return false;
      break;
    case RExpr::Kind::RApp:
      if (N.AuxCount % 2 != 0)
        return false;
      break;
    default:
      break;
    }
  }

  for (const FlatFn &F : U.Fns) {
    if (F.Body >= U.Nodes.size())
      return false;
    if (!strOk(F.Param, U) || !strOk(F.Self, U))
      return false;
    if (!spanOk(F.CapturesBegin, F.CapturesCount, U.Aux.size()) ||
        !spanOk(F.FreeRegionsBegin, F.FreeRegionsCount, U.Aux.size()))
      return false;
    for (uint32_t I = 0; I < F.CapturesCount; ++I)
      if (U.Aux[F.CapturesBegin + I] >= U.StringSpans.size())
        return false;
  }

  for (const FlatCapture &C : U.Caps)
    if (!spanOk(C.ValueBegin, C.ValueCount, U.Aux.size()) ||
        !spanOk(C.EffectBegin, C.EffectCount, U.Aux.size()))
      return false;

  for (const FlatMu &M : U.Mus) {
    if (M.Kind > static_cast<uint8_t>(Mu::Kind::Boxed))
      return false;
    if (M.T != NoIndex && M.T >= U.Taus.size())
      return false;
    if (M.Kind == static_cast<uint8_t>(Mu::Kind::Boxed) && M.T == NoIndex)
      return false;
  }
  for (const FlatTau &T : U.Taus) {
    if (T.Kind > static_cast<uint8_t>(Tau::Kind::Exn))
      return false;
    if (T.A != NoIndex && T.A >= U.Mus.size())
      return false;
    if (T.B != NoIndex && T.B >= U.Mus.size())
      return false;
  }

  for (size_t I = 0; I < U.Regions.size(); ++I) {
    if (U.Regions[I].Kind > static_cast<uint8_t>(RegionKind::Mixed))
      return false;
    if (I != 0 && U.Regions[I - 1].Id >= U.Regions[I].Id)
      return false; // must be strictly ascending for binary search
  }

  for (uint32_t S : U.ExnNames)
    if (S >= U.StringSpans.size())
      return false;

  return true;
}

} // namespace

std::string rml::flat::encodeFlat(const FlatUnit &U) {
  std::string Body;
  putU8(Body, U.Strat);
  putU8(Body, U.HasCaptures);
  putU32(Body, U.Root);
  putU32(Body, U.RootMu);
  putU64(Body, U.Nodes.size());
  for (const FlatNode &N : U.Nodes)
    encodeNode(Body, N);
  putU64(Body, U.Fns.size());
  for (const FlatFn &F : U.Fns) {
    putU32(Body, F.Body);
    putU32(Body, F.Param);
    putU32(Body, F.Self);
    putU32(Body, F.CapturesBegin);
    putU32(Body, F.CapturesCount);
    putU32(Body, F.FreeRegionsBegin);
    putU32(Body, F.FreeRegionsCount);
  }
  putU64(Body, U.Caps.size());
  for (const FlatCapture &C : U.Caps) {
    putU32(Body, C.ValueBegin);
    putU32(Body, C.ValueCount);
    putU32(Body, C.EffectBegin);
    putU32(Body, C.EffectCount);
  }
  putU64(Body, U.Aux.size());
  for (uint32_t V : U.Aux)
    putU32(Body, V);
  putU64(Body, U.Mus.size());
  for (const FlatMu &M : U.Mus) {
    putU8(Body, M.Kind);
    putU32(Body, M.T);
  }
  putU64(Body, U.Taus.size());
  for (const FlatTau &T : U.Taus) {
    putU8(Body, T.Kind);
    putU32(Body, T.A);
    putU32(Body, T.B);
  }
  putU64(Body, U.Regions.size());
  for (const FlatRegion &R : U.Regions) {
    putU32(Body, R.Id);
    putU8(Body, R.Kind);
    putU8(Body, R.Finite);
    putU32(Body, R.Words);
  }
  putU64(Body, U.ExnNames.size());
  for (uint32_t S : U.ExnNames)
    putU32(Body, S);
  // String section: lengths in table order, then the blob. Spans are
  // contiguous and ascending (the flattener appends), so the blob *is*
  // the concatenation — decode rebuilds identical offsets.
  putU64(Body, U.StringSpans.size());
  for (const auto &[Off, Len] : U.StringSpans)
    putU32(Body, Len);
  putU64(Body, U.StringBlob.size());
  Body += U.StringBlob;

  std::string Out;
  Out.reserve(sizeof(Magic) + 12 + Body.size());
  Out.append(Magic, sizeof(Magic));
  putU32(Out, FlatVersion);
  putU64(Out, fnv1a(Body));
  Out += Body;
  return Out;
}

std::shared_ptr<const FlatUnit> rml::flat::decodeFlat(std::string_view Bytes) {
  constexpr size_t HeaderBytes = sizeof(Magic) + 4 + 8;
  if (Bytes.size() < HeaderBytes)
    return nullptr;
  if (std::memcmp(Bytes.data(), Magic, sizeof(Magic)) != 0)
    return nullptr;
  Reader H{Bytes.substr(sizeof(Magic))};
  if (H.u32() != FlatVersion)
    return nullptr;
  uint64_t WantHash = H.u64();
  std::string_view BodyBytes = Bytes.substr(HeaderBytes);
  // The checksum turns arbitrary in-body corruption (bit flips,
  // truncation mid-field) into a deterministic reject before any
  // structural parsing happens.
  if (fnv1a(BodyBytes) != WantHash)
    return nullptr;

  Reader R{BodyBytes};
  auto U = std::make_shared<FlatUnit>();
  U->Strat = R.u8();
  U->HasCaptures = R.u8();
  U->Root = R.u32();
  U->RootMu = R.u32();

  uint64_t NumNodes = R.u64();
  if (!R.fits(NumNodes, NodeBytes))
    return nullptr;
  U->Nodes.reserve(NumNodes);
  for (uint64_t I = 0; I < NumNodes && R.Ok; ++I)
    U->Nodes.push_back(decodeNode(R));

  uint64_t NumFns = R.u64();
  if (!R.fits(NumFns, FnBytes))
    return nullptr;
  U->Fns.reserve(NumFns);
  for (uint64_t I = 0; I < NumFns && R.Ok; ++I) {
    FlatFn F;
    F.Body = R.u32();
    F.Param = R.u32();
    F.Self = R.u32();
    F.CapturesBegin = R.u32();
    F.CapturesCount = R.u32();
    F.FreeRegionsBegin = R.u32();
    F.FreeRegionsCount = R.u32();
    U->Fns.push_back(F);
  }

  uint64_t NumCaps = R.u64();
  if (!R.fits(NumCaps, CapBytes))
    return nullptr;
  U->Caps.reserve(NumCaps);
  for (uint64_t I = 0; I < NumCaps && R.Ok; ++I) {
    FlatCapture C;
    C.ValueBegin = R.u32();
    C.ValueCount = R.u32();
    C.EffectBegin = R.u32();
    C.EffectCount = R.u32();
    U->Caps.push_back(C);
  }

  uint64_t NumAux = R.u64();
  if (!R.fits(NumAux, 4))
    return nullptr;
  U->Aux.reserve(NumAux);
  for (uint64_t I = 0; I < NumAux && R.Ok; ++I)
    U->Aux.push_back(R.u32());

  uint64_t NumMus = R.u64();
  if (!R.fits(NumMus, MuBytes))
    return nullptr;
  U->Mus.reserve(NumMus);
  for (uint64_t I = 0; I < NumMus && R.Ok; ++I) {
    FlatMu M;
    M.Kind = R.u8();
    M.T = R.u32();
    U->Mus.push_back(M);
  }

  uint64_t NumTaus = R.u64();
  if (!R.fits(NumTaus, TauBytes))
    return nullptr;
  U->Taus.reserve(NumTaus);
  for (uint64_t I = 0; I < NumTaus && R.Ok; ++I) {
    FlatTau T;
    T.Kind = R.u8();
    T.A = R.u32();
    T.B = R.u32();
    U->Taus.push_back(T);
  }

  uint64_t NumRegions = R.u64();
  if (!R.fits(NumRegions, RegionBytes))
    return nullptr;
  U->Regions.reserve(NumRegions);
  for (uint64_t I = 0; I < NumRegions && R.Ok; ++I) {
    FlatRegion G;
    G.Id = R.u32();
    G.Kind = R.u8();
    G.Finite = R.u8();
    G.Words = R.u32();
    U->Regions.push_back(G);
  }

  uint64_t NumExn = R.u64();
  if (!R.fits(NumExn, 4))
    return nullptr;
  U->ExnNames.reserve(NumExn);
  for (uint64_t I = 0; I < NumExn && R.Ok; ++I)
    U->ExnNames.push_back(R.u32());

  uint64_t NumStrings = R.u64();
  if (!R.fits(NumStrings, 4))
    return nullptr;
  std::vector<uint32_t> Lens;
  Lens.reserve(NumStrings);
  for (uint64_t I = 0; I < NumStrings && R.Ok; ++I)
    Lens.push_back(R.u32());
  uint64_t BlobLen = R.u64();
  if (!R.Ok || BlobLen > R.remaining())
    return nullptr;
  U->StringBlob.assign(BodyBytes.data() + R.Pos, BlobLen);
  R.Pos += BlobLen;
  // Rebuild the span table; the declared lengths must tile the blob
  // exactly (a section-length overrun fails here).
  uint64_t Off = 0;
  U->StringSpans.reserve(Lens.size());
  for (uint32_t L : Lens) {
    if (Off + L > BlobLen)
      return nullptr;
    U->StringSpans.emplace_back(static_cast<uint32_t>(Off), L);
    Off += L;
  }
  if (Off != BlobLen)
    return nullptr;

  // No trailing bytes, no short reads, and every index in range.
  if (!R.done())
    return nullptr;
  if (!validate(*U))
    return nullptr;
  return U;
}
