//===- rcheck/Check.cpp ---------------------------------------------------===//

#include "rcheck/Check.h"

#include "region/Subst.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace rml;

//===----------------------------------------------------------------------===//
// Value containment (Figure 3)
//===----------------------------------------------------------------------===//

bool rml::valueContained(const Effect &Phi, const RExpr *V) {
  switch (V->K) {
  case RExpr::Kind::IntLit:
  case RExpr::Kind::BoolLit:
  case RExpr::Kind::UnitLit:
  case RExpr::Kind::NilVal:
    return true;
  case RExpr::Kind::ClosVal:
    return Phi.contains(V->AtRho) && exprValuesContained(Phi, V->A);
  case RExpr::Kind::StrVal:
    return Phi.contains(V->AtRho);
  case RExpr::Kind::PairVal:
  case RExpr::Kind::ConsVal:
    return Phi.contains(V->AtRho) && valueContained(Phi, V->A) &&
           valueContained(Phi, V->B);
  case RExpr::Kind::FunVal: {
    if (!Phi.contains(V->AtRho))
      return false;
    // { \vec{rho} } cap phi = {} : the quantified regions are placeholders
    // bound inside the function value, not live regions.
    for (RegionVar R : V->Sigma.QRegions)
      if (Phi.contains(R))
        return false;
    return exprValuesContained(Phi, V->A);
  }
  default:
    return false; // not a value
  }
}

bool rml::exprValuesContained(const Effect &Phi, const RExpr *E) {
  if (!E)
    return true;
  if (E->isValue())
    return valueContained(Phi, E);
  switch (E->K) {
  case RExpr::Kind::LetRegion: {
    if (Phi.contains(E->BoundRho))
      return false;
    return exprValuesContained(Phi, E->A);
  }
  case RExpr::Kind::FunBind: {
    for (RegionVar R : E->Sigma.QRegions)
      if (Phi.contains(R))
        return false;
    return exprValuesContained(Phi, E->A);
  }
  default:
    if (!exprValuesContained(Phi, E->A) || !exprValuesContained(Phi, E->B) ||
        !exprValuesContained(Phi, E->C))
      return false;
    for (const RExpr *Item : E->Items)
      if (!exprValuesContained(Phi, Item))
        return false;
    return true;
  }
}

//===----------------------------------------------------------------------===//
// GC safety relation (definition (4))
//===----------------------------------------------------------------------===//

bool rml::gcSafe(const TyVarCtx &Omega,
                 const std::vector<std::pair<Symbol, Pi>> &FreeBindings,
                 const RExpr *E, const Pi &P, std::string *Why) {
  Effect Frev = frevOf(P);
  if (!P.isMu())
    Frev.insert(AtomicEffect(P.Place));
  // frv(pi) |=v e : value containment over the function body.
  Effect Frv;
  for (RegionVar R : Frev.regions())
    Frv.insert(AtomicEffect(R));
  if (!exprValuesContained(Frv, E)) {
    if (Why)
      *Why = "a value embedded in the body lives outside frv(pi)";
    return false;
  }
  // forall y in fpv(e)\X . Omega |- Gamma(y) : frev(pi). Non-spurious
  // (plain) type variables of a captured type are admissible exactly when
  // they occur in the function's own type: the substituted regions then
  // stay reachable through the function type itself.
  std::vector<TyVarId> PlainOk = ftvOf(P);
  for (const auto &[Y, PiY] : FreeBindings) {
    if (!piContained(Omega, PiY, Frev, &PlainOk)) {
      if (Why)
        *Why = "captured binding has type " + printPi(PiY) +
               " not contained in frev(pi) = " + printEffect(Frev);
      return false;
    }
  }
  return true;
}

//===----------------------------------------------------------------------===//
// The checker
//===----------------------------------------------------------------------===//

namespace {

class RChecker {
public:
  RChecker(RTypeArena &Arena, const Interner &Names, DiagnosticEngine &Diags,
           GcSafety Safety)
      : Arena(Arena), Names(Names), Diags(Diags), Safety(Safety) {}

  std::vector<std::pair<Symbol, Pi>> Gamma;
  std::vector<std::pair<Symbol, const Mu *>> ExnSigs;

  std::optional<CheckResult> check(const TyVarCtx &Omega, const RExpr *E);

  /// Validates the arrow-effect basis collected during checking:
  /// transitivity (functionality is enforced on insertion).
  bool validateBasis();

private:
  std::optional<CheckResult> fail(const RExpr *E, std::string Msg) {
    Diags.error(E ? E->Loc : SrcLoc(), std::move(Msg));
    return std::nullopt;
  }

  const Pi *lookup(Symbol S) const {
    for (size_t I = Gamma.size(); I-- > 0;)
      if (Gamma[I].first == S)
        return &Gamma[I].second;
    return nullptr;
  }

  const Mu *lookupExn(Symbol S) const {
    for (const auto &[Name, M] : ExnSigs)
      if (Name == S)
        return M;
    return nullptr;
  }

  /// Records every arrow effect occurring in \p M into the basis,
  /// enforcing functionality (Section 3.5).
  bool recordBasis(const Mu *M, const RExpr *At);
  bool recordBasisTau(const Tau *T, const RExpr *At);
  bool recordArrow(const ArrowEff &Nu, const RExpr *At);

  /// Gamma restricted to fpv(E) minus \p Exclude.
  std::vector<std::pair<Symbol, Pi>>
  freeBindings(const RExpr *E, const std::vector<Symbol> &Exclude) const;

  /// frev of Omega, the free bindings relevant to E, and Mu — the set the
  /// [TeReg] and fun rules must avoid.
  Effect contextFrev(const TyVarCtx &Omega, const RExpr *Scope,
                     const Mu *M) const;

  std::optional<Pi> checkValue(const RExpr *V);

  std::optional<CheckResult> checkLam(const TyVarCtx &Omega, const RExpr *E);
  std::optional<CheckResult> checkFun(const TyVarCtx &Omega, const RExpr *E);

  /// Requires the result of \p R to be a plain mu.
  const Mu *asMu(const CheckResult &R, const RExpr *E, const char *Ctx) {
    if (R.Type.isMu())
      return R.Type.AsMu;
    Diags.error(E->Loc, std::string(Ctx) +
                            ": expected a monomorphic type, found scheme " +
                            printPi(R.Type));
    return nullptr;
  }

  RTypeArena &Arena;
  const Interner &Names;
  DiagnosticEngine &Diags;
  GcSafety Safety;
  std::map<EffectVar, Effect> Basis;
};

bool RChecker::recordArrow(const ArrowEff &Nu, const RExpr *At) {
  auto It = Basis.find(Nu.Handle);
  if (It == Basis.end()) {
    Basis.emplace(Nu.Handle, Nu.Phi);
    return true;
  }
  if (It->second == Nu.Phi)
    return true;
  Diags.error(At ? At->Loc : SrcLoc(),
              "arrow-effect basis is not functional: " +
                  printEffectVar(Nu.Handle) + " denotes both " +
                  printEffect(It->second) + " and " + printEffect(Nu.Phi));
  return false;
}

bool RChecker::recordBasisTau(const Tau *T, const RExpr *At) {
  switch (T->K) {
  case Tau::Kind::Arrow:
    if (!recordArrow(T->Nu, At))
      return false;
    return recordBasis(T->A, At) && recordBasis(T->B, At);
  case Tau::Kind::Pair:
    return recordBasis(T->A, At) && recordBasis(T->B, At);
  case Tau::Kind::List:
  case Tau::Kind::Ref:
    return recordBasis(T->A, At);
  case Tau::Kind::String:
  case Tau::Kind::Exn:
    return true;
  }
  return true;
}

bool RChecker::recordBasis(const Mu *M, const RExpr *At) {
  if (M->K == Mu::Kind::Boxed)
    return recordBasisTau(M->T, At);
  return true;
}

bool RChecker::validateBasis() {
  for (const auto &[Handle, Phi] : Basis) {
    for (EffectVar Inner : Phi.effectVars()) {
      auto It = Basis.find(Inner);
      if (It == Basis.end())
        continue;
      if (!It->second.subsetOf(Phi)) {
        Diags.error(SrcLoc(), "arrow-effect basis is not transitive: " +
                                  printEffectVar(Inner) + " in " +
                                  printEffect(Phi) + " but its denotation " +
                                  printEffect(It->second) +
                                  " is not included");
        return false;
      }
    }
  }
  return true;
}

std::vector<std::pair<Symbol, Pi>>
RChecker::freeBindings(const RExpr *E,
                       const std::vector<Symbol> &Exclude) const {
  std::vector<std::pair<Symbol, Pi>> Out;
  for (Symbol S : freeVars(E)) {
    if (std::find(Exclude.begin(), Exclude.end(), S) != Exclude.end())
      continue;
    if (const Pi *P = lookup(S))
      Out.emplace_back(S, *P);
  }
  return Out;
}

Effect RChecker::contextFrev(const TyVarCtx &Omega, const RExpr *Scope,
                             const Mu *M) const {
  Effect Out = Omega.frev();
  for (Symbol S : freeVars(Scope))
    if (const Pi *P = lookup(S))
      Out = Out.unionWith(frevOf(*P));
  if (M)
    Out = Out.unionWith(frevOf(M));
  return Out;
}

//===----------------------------------------------------------------------===//
// Values (Figure 4, top)
//===----------------------------------------------------------------------===//

std::optional<Pi> RChecker::checkValue(const RExpr *V) {
  switch (V->K) {
  case RExpr::Kind::IntLit:
    return Pi(Arena.intTy());
  case RExpr::Kind::BoolLit:
    return Pi(Arena.boolTy());
  case RExpr::Kind::UnitLit:
    return Pi(Arena.unitTy());
  case RExpr::Kind::StrVal:
    return Pi(Arena.boxed(Arena.stringTy(), V->AtRho));
  case RExpr::Kind::NilVal: {
    if (!V->MuOf || V->MuOf->K != Mu::Kind::Boxed ||
        V->MuOf->T->K != Tau::Kind::List) {
      Diags.error(V->Loc, "nil value without a list type annotation");
      return std::nullopt;
    }
    return Pi(V->MuOf);
  }
  case RExpr::Kind::PairVal: {
    std::optional<Pi> A = checkValue(V->A);
    std::optional<Pi> B = checkValue(V->B);
    if (!A || !B || !A->isMu() || !B->isMu())
      return std::nullopt;
    return Pi(Arena.boxed(Arena.pairTy(A->AsMu, B->AsMu), V->AtRho));
  }
  case RExpr::Kind::ConsVal: {
    std::optional<Pi> A = checkValue(V->A);
    std::optional<Pi> B = checkValue(V->B);
    if (!A || !B || !A->isMu() || !B->isMu())
      return std::nullopt;
    const Mu *TailMu = B->AsMu;
    if (TailMu->K != Mu::Kind::Boxed || TailMu->T->K != Tau::Kind::List ||
        !muEquals(TailMu->T->A, A->AsMu)) {
      Diags.error(V->Loc, "ill-typed cons value");
      return std::nullopt;
    }
    if (TailMu->Rho != V->AtRho &&
        TailMu->T->A /* nil tail may sit anywhere conceptually */) {
      // List cells are region-uniform: every cell of a list lives in the
      // same region as the spine.
      if (V->B->K != RExpr::Kind::NilVal) {
        Diags.error(V->Loc, "cons cell and tail live in different regions");
        return std::nullopt;
      }
    }
    return Pi(Arena.boxed(Arena.listTy(A->AsMu), V->AtRho));
  }
  case RExpr::Kind::ClosVal: {
    // [TvLam]: {}, {x:mu1} |- e : mu2, phi ; frv(mu) |=v e.
    if (!V->ParamMu) {
      Diags.error(V->Loc, "closure value without parameter type");
      return std::nullopt;
    }
    std::vector<std::pair<Symbol, Pi>> Saved;
    Saved.swap(Gamma);
    Gamma.emplace_back(V->Param, Pi(V->ParamMu));
    std::optional<CheckResult> Body = check({}, V->A);
    Gamma.swap(Saved);
    if (!Body || !Body->Type.isMu())
      return std::nullopt;
    if (!Body->Phi.subsetOf(V->LatentNu.Phi)) {
      Diags.error(V->Loc,
                  "closure body effect " + printEffect(Body->Phi) +
                      " exceeds latent effect " + printEffect(V->LatentNu.Phi));
      return std::nullopt;
    }
    const Mu *M = Arena.boxed(
        Arena.arrowTy(V->ParamMu, V->LatentNu, Body->Type.AsMu), V->AtRho);
    if (!recordBasis(M, V))
      return std::nullopt;
    if (Safety == GcSafety::On) {
      Effect Frv;
      for (RegionVar R : frevOf(M).regions())
        Frv.insert(AtomicEffect(R));
      if (!exprValuesContained(Frv, V->A)) {
        Diags.error(V->Loc, "closure value captures a value outside the "
                            "regions of its type (dangling pointer)");
        return std::nullopt;
      }
    }
    return Pi(M);
  }
  case RExpr::Kind::FunVal: {
    // [TvFun]/[TvRec]: body under Delta (and f for recursive uses).
    const RScheme &S = V->Sigma;
    if (!S.Body || S.Body->K != Tau::Kind::Arrow) {
      Diags.error(V->Loc, "fun value scheme body is not a function type");
      return std::nullopt;
    }
    Effect Bound = S.boundVars();
    if (Bound.contains(V->AtRho)) {
      Diags.error(V->Loc, "fun value quantifies its own region");
      return std::nullopt;
    }
    std::vector<Symbol> Free = freeVars(V->A);
    bool Recursive = std::find(Free.begin(), Free.end(), V->Name) !=
                         Free.end() &&
                     V->Name != V->Param;
    if (Recursive && !Bound.disjointFrom(S.Delta.frev())) {
      Diags.error(V->Loc,
                  "[TvRec]: quantified region/effect variables intersect "
                  "frev(Delta)");
      return std::nullopt;
    }
    std::vector<std::pair<Symbol, Pi>> Saved;
    Saved.swap(Gamma);
    if (Recursive) {
      // [TvRec]: f is bound *without* Delta — its type variables are
      // already bound in the ambient context; self-sites instantiate
      // them by identity.
      RScheme FScheme;
      FScheme.QRegions = S.QRegions;
      FScheme.QEffects = S.QEffects;
      FScheme.Body = S.Body;
      Gamma.emplace_back(V->Name, Pi(FScheme, V->AtRho));
    }
    Gamma.emplace_back(V->Param, Pi(S.Body->A));
    std::optional<CheckResult> Body = check(S.Delta, V->A);
    Gamma.swap(Saved);
    if (!Body || !Body->Type.isMu())
      return std::nullopt;
    if (!muEquals(Body->Type.AsMu, S.Body->B)) {
      Diags.error(V->Loc, "fun value body type " + printMu(Body->Type.AsMu) +
                              " differs from scheme result " +
                              printMu(S.Body->B));
      return std::nullopt;
    }
    if (!Body->Phi.subsetOf(S.Body->Nu.Phi)) {
      Diags.error(V->Loc, "fun value body effect " + printEffect(Body->Phi) +
                              " exceeds latent effect " +
                              printEffect(S.Body->Nu.Phi));
      return std::nullopt;
    }
    Pi P(S, V->AtRho);
    if (!recordArrow(S.Body->Nu, V))
      return std::nullopt;
    if (Safety == GcSafety::On) {
      Effect Frv;
      for (RegionVar R : frevOf(P).regions())
        Frv.insert(AtomicEffect(R));
      Frv.insert(AtomicEffect(V->AtRho));
      if (!exprValuesContained(Frv, V->A)) {
        Diags.error(V->Loc, "fun value captures a value outside the regions "
                            "of its type (dangling pointer)");
        return std::nullopt;
      }
    }
    return P;
  }
  default:
    Diags.error(V->Loc, "expected a value");
    return std::nullopt;
  }
}

//===----------------------------------------------------------------------===//
// Lambda and fun expressions
//===----------------------------------------------------------------------===//

std::optional<CheckResult> RChecker::checkLam(const TyVarCtx &Omega,
                                              const RExpr *E) {
  // [TeLam].
  if (!E->ParamMu)
    return fail(E, "lambda without parameter type annotation");
  Gamma.emplace_back(E->Param, Pi(E->ParamMu));
  std::optional<CheckResult> Body = check(Omega, E->A);
  Gamma.pop_back();
  if (!Body)
    return std::nullopt;
  const Mu *BodyMu = asMu(*Body, E, "lambda body");
  if (!BodyMu)
    return std::nullopt;
  if (!Body->Phi.subsetOf(E->LatentNu.Phi))
    return fail(E, "lambda body effect " + printEffect(Body->Phi) +
                       " exceeds declared latent effect " +
                       printEffect(E->LatentNu.Phi));
  const Mu *M =
      Arena.boxed(Arena.arrowTy(E->ParamMu, E->LatentNu, BodyMu), E->AtRho);
  if (!wellFormed(Omega, M))
    return fail(E, "lambda type is not well-formed in the type variable "
                   "context: " +
                       printMu(M));
  if (!recordBasis(M, E))
    return std::nullopt;
  std::string GWhy;
  if (Safety == GcSafety::On &&
      !gcSafe(Omega, freeBindings(E->A, {E->Param}), E->A, Pi(M), &GWhy))
    return fail(E, "GC-safety violation [TeLam] for function of type " +
                       printMu(M) + ": " + GWhy);
  CheckResult R;
  R.Type = Pi(M);
  R.Phi = Effect{AtomicEffect(E->AtRho)};
  return R;
}

std::optional<CheckResult> RChecker::checkFun(const TyVarCtx &Omega,
                                              const RExpr *E) {
  // [TeFun] and the polymorphic-recursion variant.
  const RScheme &S = E->Sigma;
  if (!S.Body || S.Body->K != Tau::Kind::Arrow)
    return fail(E, "fun binding scheme body is not a function type");
  Pi P(S, E->AtRho);
  if (!wellFormed(Omega, P))
    return fail(E, "fun scheme is not well-formed: " + printPi(P));
  // (dom(Delta) u frev(rhos epss)) disjoint from fv(Omega, Gamma, rho).
  Effect Bound = S.boundVars();
  Effect CtxF = contextFrev(Omega, E, nullptr);
  CtxF.insert(AtomicEffect(E->AtRho));
  if (!Bound.disjointFrom(CtxF))
    return fail(E, "fun binding quantifies variables free in the context: " +
                       printEffect(Bound.intersect(CtxF)));
  for (const auto &[Alpha, Nu] : S.Delta)
    if (Omega.contains(Alpha))
      return fail(E, "fun binding re-quantifies type variable " +
                         printTyVar(Alpha));

  std::vector<Symbol> Free = freeVars(E->A);
  bool Recursive =
      std::find(Free.begin(), Free.end(), E->Name) != Free.end() &&
      E->Name != E->Param;
  if (Recursive && !Bound.disjointFrom(S.Delta.frev()))
    return fail(E, "[TeFun-rec]: quantified region/effect variables "
                   "intersect frev(Delta)");

  size_t Mark = Gamma.size();
  if (Recursive) {
    RScheme FScheme;
    FScheme.QRegions = S.QRegions;
    FScheme.QEffects = S.QEffects;
    FScheme.Body = S.Body;
    Gamma.emplace_back(E->Name, Pi(FScheme, E->AtRho));
  }
  Gamma.emplace_back(E->Param, Pi(S.Body->A));
  std::optional<CheckResult> Body = check(Omega.plus(S.Delta), E->A);
  Gamma.resize(Mark);
  if (!Body)
    return std::nullopt;
  const Mu *BodyMu = asMu(*Body, E, "fun body");
  if (!BodyMu)
    return std::nullopt;
  if (!muEquals(BodyMu, S.Body->B))
    return fail(E, "fun body type " + printMu(BodyMu) +
                       " differs from scheme result " + printMu(S.Body->B));
  if (!Body->Phi.subsetOf(S.Body->Nu.Phi))
    return fail(E, "fun body effect " + printEffect(Body->Phi) +
                       " exceeds latent effect " +
                       printEffect(S.Body->Nu.Phi));
  if (!recordArrow(S.Body->Nu, E))
    return std::nullopt;
  std::string GWhy;
  if (Safety == GcSafety::On &&
      !gcSafe(Omega, freeBindings(E->A, {E->Name, E->Param}), E->A, P,
              &GWhy))
    return fail(E, "GC-safety violation [TeFun] for scheme " + printPi(P) +
                       ": " + GWhy);
  CheckResult R;
  R.Type = P;
  R.Phi = Effect{AtomicEffect(E->AtRho)};
  return R;
}

//===----------------------------------------------------------------------===//
// Expressions (Figure 4, bottom)
//===----------------------------------------------------------------------===//

std::optional<CheckResult> RChecker::check(const TyVarCtx &Omega,
                                           const RExpr *E) {
  switch (E->K) {
  // [TeVal]
  case RExpr::Kind::IntLit:
  case RExpr::Kind::BoolLit:
  case RExpr::Kind::UnitLit:
  case RExpr::Kind::NilVal:
  case RExpr::Kind::ClosVal:
  case RExpr::Kind::FunVal:
  case RExpr::Kind::PairVal:
  case RExpr::Kind::StrVal:
  case RExpr::Kind::ConsVal: {
    std::optional<Pi> P = checkValue(E);
    if (!P)
      return std::nullopt;
    CheckResult R;
    R.Type = *P;
    return R;
  }

  // [TeVar]
  case RExpr::Kind::Var: {
    const Pi *P = lookup(E->Name);
    if (!P)
      return fail(E, "unbound variable '" + Names.text(E->Name) + "'");
    CheckResult R;
    R.Type = *P;
    return R;
  }

  case RExpr::Kind::Lam:
    return checkLam(Omega, E);
  case RExpr::Kind::FunBind:
    return checkFun(Omega, E);

  // [TeLet]
  case RExpr::Kind::Let: {
    std::optional<CheckResult> A = check(Omega, E->A);
    if (!A)
      return std::nullopt;
    Gamma.emplace_back(E->Name, A->Type);
    std::optional<CheckResult> B = check(Omega, E->B);
    Gamma.pop_back();
    if (!B)
      return std::nullopt;
    CheckResult R;
    R.Type = B->Type;
    R.Phi = A->Phi.unionWith(B->Phi);
    return R;
  }

  // [TeApp]
  case RExpr::Kind::App: {
    std::optional<CheckResult> F = check(Omega, E->A);
    std::optional<CheckResult> X = check(Omega, E->B);
    if (!F || !X)
      return std::nullopt;
    const Mu *FMu = asMu(*F, E, "application");
    const Mu *XMu = X->Type.isMu() ? X->Type.AsMu : nullptr;
    if (!FMu || !XMu)
      return std::nullopt;
    if (FMu->K != Mu::Kind::Boxed || FMu->T->K != Tau::Kind::Arrow)
      return fail(E, "applied expression has non-function type " +
                         printMu(FMu));
    if (!muEquals(FMu->T->A, XMu))
      return fail(E, "argument type " + printMu(XMu) +
                         " does not match parameter type " +
                         printMu(FMu->T->A));
    CheckResult R;
    R.Type = Pi(FMu->T->B);
    R.Phi = F->Phi.unionWith(X->Phi).unionWith(FMu->T->Nu.Phi);
    R.Phi.insert(AtomicEffect(FMu->T->Nu.Handle));
    R.Phi.insert(AtomicEffect(FMu->Rho));
    return R;
  }

  // [TeRapp]
  case RExpr::Kind::RApp: {
    std::optional<CheckResult> F = check(Omega, E->A);
    if (!F)
      return std::nullopt;
    if (F->Type.isMu())
      return fail(E, "region application of a monomorphic expression");
    if (!E->MuOf || E->MuOf->K != Mu::Kind::Boxed)
      return fail(E, "region application without a recorded result type");
    const Tau *Expected = E->MuOf->T;
    // Self-calls under [TvRec] carry identity type entries for the Delta
    // variables (so an outer instantiation composes into them); against
    // the Delta-free recursive scheme those identities are vacuous and
    // are stripped before checking the instance-of relation.
    Subst Inst = E->Inst;
    for (auto It = Inst.St.begin(); It != Inst.St.end();) {
      bool Identity = It->second->K == Mu::Kind::TyVar &&
                      It->second->Alpha == It->first;
      if (Identity && !F->Type.Sigma.Delta.contains(It->first))
        It = Inst.St.erase(It);
      else
        ++It;
    }
    std::string Why;
    if (Safety == GcSafety::On) {
      if (!instanceOf(Omega, F->Type.Sigma, Inst, Expected, Arena, &Why))
        return fail(E, "instantiation is not an instance of the scheme " +
                           printScheme(F->Type.Sigma) + ": " + Why);
    } else {
      // Tofte-Talpin instantiation: no coverage requirement.
      Subst RegionEffect;
      RegionEffect.Sr = Inst.Sr;
      RegionEffect.Se = Inst.Se;
      Subst TypeOnly;
      TypeOnly.St = Inst.St;
      const Tau *BodyInst = TypeOnly.apply(
          RegionEffect.apply(F->Type.Sigma.Body, Arena), Arena);
      if (!tauEquals(BodyInst, Expected))
        return fail(E, "instantiated body " + printTau(BodyInst) +
                           " differs from recorded type " +
                           printTau(Expected));
    }
    if (!wellFormed(Omega, E->MuOf))
      return fail(E, "instantiated type is not well-formed");
    if (!recordBasis(E->MuOf, E))
      return std::nullopt;
    CheckResult R;
    R.Type = Pi(E->MuOf);
    R.Phi = F->Phi;
    R.Phi.insert(AtomicEffect(E->AtRho));
    R.Phi.insert(AtomicEffect(F->Type.Place));
    return R;
  }

  // [TePair]
  case RExpr::Kind::PairE: {
    std::optional<CheckResult> A = check(Omega, E->A);
    std::optional<CheckResult> B = check(Omega, E->B);
    if (!A || !B)
      return std::nullopt;
    const Mu *AM = asMu(*A, E, "pair"), *BM = asMu(*B, E, "pair");
    if (!AM || !BM)
      return std::nullopt;
    CheckResult R;
    R.Type = Pi(Arena.boxed(Arena.pairTy(AM, BM), E->AtRho));
    R.Phi = A->Phi.unionWith(B->Phi);
    R.Phi.insert(AtomicEffect(E->AtRho));
    return R;
  }

  // [TeSel]
  case RExpr::Kind::Sel: {
    std::optional<CheckResult> A = check(Omega, E->A);
    if (!A)
      return std::nullopt;
    const Mu *AM = asMu(*A, E, "projection");
    if (!AM)
      return std::nullopt;
    if (AM->K != Mu::Kind::Boxed || AM->T->K != Tau::Kind::Pair)
      return fail(E, "projection from non-pair type " + printMu(AM));
    CheckResult R;
    R.Type = Pi(E->SelIndex == 1 ? AM->T->A : AM->T->B);
    R.Phi = A->Phi;
    R.Phi.insert(AtomicEffect(AM->Rho));
    return R;
  }

  // [TeReg]
  case RExpr::Kind::LetRegion: {
    std::optional<CheckResult> A = check(Omega, E->A);
    if (!A)
      return std::nullopt;
    const Mu *AM = asMu(*A, E, "letregion body");
    if (!AM)
      return std::nullopt;
    Effect Masked;
    Masked.insert(AtomicEffect(E->BoundRho));
    for (EffectVar Ev : E->BoundEffs)
      Masked.insert(AtomicEffect(Ev));
    Effect CtxF = contextFrev(Omega, E->A, AM);
    if (!Masked.disjointFrom(CtxF))
      return fail(E, "[TeReg]: " + printEffect(Masked.intersect(CtxF)) +
                         " escapes through the environment or result type");
    CheckResult R;
    R.Type = Pi(AM);
    R.Phi = A->Phi.minus(Masked);
    return R;
  }

  // Extensions ------------------------------------------------------------

  case RExpr::Kind::StrE: {
    CheckResult R;
    R.Type = Pi(Arena.boxed(Arena.stringTy(), E->AtRho));
    R.Phi = Effect{AtomicEffect(E->AtRho)};
    return R;
  }

  case RExpr::Kind::If: {
    std::optional<CheckResult> C = check(Omega, E->A);
    std::optional<CheckResult> T = check(Omega, E->B);
    std::optional<CheckResult> F = check(Omega, E->C);
    if (!C || !T || !F)
      return std::nullopt;
    const Mu *CM = asMu(*C, E, "condition");
    const Mu *TM = asMu(*T, E, "then branch");
    const Mu *FM = asMu(*F, E, "else branch");
    if (!CM || !TM || !FM)
      return std::nullopt;
    if (CM->K != Mu::Kind::Bool)
      return fail(E, "if condition is not boolean");
    if (!muEquals(TM, FM))
      return fail(E, "if branches have different types: " + printMu(TM) +
                         " vs " + printMu(FM));
    CheckResult R;
    R.Type = Pi(TM);
    R.Phi = C->Phi.unionWith(T->Phi).unionWith(F->Phi);
    return R;
  }

  case RExpr::Kind::BinOp: {
    std::optional<CheckResult> A = check(Omega, E->A);
    std::optional<CheckResult> B = check(Omega, E->B);
    if (!A || !B)
      return std::nullopt;
    const Mu *AM = asMu(*A, E, "operand"), *BM = asMu(*B, E, "operand");
    if (!AM || !BM)
      return std::nullopt;
    CheckResult R;
    R.Phi = A->Phi.unionWith(B->Phi);
    switch (E->Op) {
    case BinOpKind::Add:
    case BinOpKind::Sub:
    case BinOpKind::Mul:
    case BinOpKind::Div:
    case BinOpKind::Mod:
      if (AM->K != Mu::Kind::Int || BM->K != Mu::Kind::Int)
        return fail(E, "arithmetic on non-integers");
      R.Type = Pi(Arena.intTy());
      return R;
    case BinOpKind::Less:
    case BinOpKind::LessEq:
    case BinOpKind::Greater:
    case BinOpKind::GreaterEq:
      if (AM->K != Mu::Kind::Int || BM->K != Mu::Kind::Int)
        return fail(E, "comparison on non-integers");
      R.Type = Pi(Arena.boolTy());
      return R;
    case BinOpKind::Eq:
    case BinOpKind::NotEq:
      if (!muEquals(AM, BM))
        return fail(E, "equality on different types");
      if (AM->K == Mu::Kind::Boxed) {
        if (AM->T->K != Tau::Kind::String)
          return fail(E, "equality on non-equality type " + printMu(AM));
        R.Phi.insert(AtomicEffect(AM->Rho));
        R.Phi.insert(AtomicEffect(BM->Rho));
      }
      R.Type = Pi(Arena.boolTy());
      return R;
    case BinOpKind::StrEq:
    case BinOpKind::Concat: {
      if (AM->K != Mu::Kind::Boxed || AM->T->K != Tau::Kind::String ||
          BM->K != Mu::Kind::Boxed || BM->T->K != Tau::Kind::String)
        return fail(E, "string operation on non-strings");
      R.Phi.insert(AtomicEffect(AM->Rho));
      R.Phi.insert(AtomicEffect(BM->Rho));
      if (E->Op == BinOpKind::Concat) {
        R.Phi.insert(AtomicEffect(E->AtRho));
        R.Type = Pi(Arena.boxed(Arena.stringTy(), E->AtRho));
      } else {
        R.Type = Pi(Arena.boolTy());
      }
      return R;
    }
    case BinOpKind::AndAlso:
    case BinOpKind::OrElse:
      if (AM->K != Mu::Kind::Bool || BM->K != Mu::Kind::Bool)
        return fail(E, "boolean operation on non-booleans");
      R.Type = Pi(Arena.boolTy());
      return R;
    case BinOpKind::Cons:
      return std::nullopt; // handled by ConsE
    }
    return std::nullopt;
  }

  case RExpr::Kind::ConsE: {
    std::optional<CheckResult> A = check(Omega, E->A);
    std::optional<CheckResult> B = check(Omega, E->B);
    if (!A || !B)
      return std::nullopt;
    const Mu *AM = asMu(*A, E, "cons head"), *BM = asMu(*B, E, "cons tail");
    if (!AM || !BM)
      return std::nullopt;
    if (BM->K != Mu::Kind::Boxed || BM->T->K != Tau::Kind::List ||
        !muEquals(BM->T->A, AM))
      return fail(E, "cons tail has type " + printMu(BM) +
                         " which is not a list of " + printMu(AM));
    if (BM->Rho != E->AtRho)
      return fail(E, "cons destination region " + printRegionVar(E->AtRho) +
                         " differs from the spine region " +
                         printRegionVar(BM->Rho));
    CheckResult R;
    R.Type = Pi(Arena.boxed(Arena.listTy(AM), E->AtRho));
    R.Phi = A->Phi.unionWith(B->Phi);
    R.Phi.insert(AtomicEffect(E->AtRho));
    return R;
  }

  case RExpr::Kind::ListCase: {
    std::optional<CheckResult> S = check(Omega, E->A);
    if (!S)
      return std::nullopt;
    const Mu *SM = asMu(*S, E, "case scrutinee");
    if (!SM)
      return std::nullopt;
    if (SM->K != Mu::Kind::Boxed || SM->T->K != Tau::Kind::List)
      return fail(E, "case scrutinee is not a list");
    std::optional<CheckResult> N = check(Omega, E->B);
    Gamma.emplace_back(E->HeadName, Pi(SM->T->A));
    Gamma.emplace_back(E->TailName, Pi(SM));
    std::optional<CheckResult> C = check(Omega, E->C);
    Gamma.pop_back();
    Gamma.pop_back();
    if (!N || !C)
      return std::nullopt;
    const Mu *NM = asMu(*N, E, "nil branch"), *CM = asMu(*C, E, "cons branch");
    if (!NM || !CM)
      return std::nullopt;
    if (!muEquals(NM, CM))
      return fail(E, "case branches have different types");
    CheckResult R;
    R.Type = Pi(NM);
    R.Phi = S->Phi.unionWith(N->Phi).unionWith(C->Phi);
    R.Phi.insert(AtomicEffect(SM->Rho));
    return R;
  }

  case RExpr::Kind::RefE: {
    std::optional<CheckResult> A = check(Omega, E->A);
    if (!A)
      return std::nullopt;
    const Mu *AM = asMu(*A, E, "ref");
    if (!AM)
      return std::nullopt;
    CheckResult R;
    R.Type = Pi(Arena.boxed(Arena.refTy(AM), E->AtRho));
    R.Phi = A->Phi;
    R.Phi.insert(AtomicEffect(E->AtRho));
    return R;
  }

  case RExpr::Kind::Deref: {
    std::optional<CheckResult> A = check(Omega, E->A);
    if (!A)
      return std::nullopt;
    const Mu *AM = asMu(*A, E, "dereference");
    if (!AM)
      return std::nullopt;
    if (AM->K != Mu::Kind::Boxed || AM->T->K != Tau::Kind::Ref)
      return fail(E, "dereference of non-reference");
    CheckResult R;
    R.Type = Pi(AM->T->A);
    R.Phi = A->Phi;
    R.Phi.insert(AtomicEffect(AM->Rho));
    return R;
  }

  case RExpr::Kind::Assign: {
    std::optional<CheckResult> A = check(Omega, E->A);
    std::optional<CheckResult> B = check(Omega, E->B);
    if (!A || !B)
      return std::nullopt;
    const Mu *AM = asMu(*A, E, "assignment"), *BM = asMu(*B, E, "assignment");
    if (!AM || !BM)
      return std::nullopt;
    if (AM->K != Mu::Kind::Boxed || AM->T->K != Tau::Kind::Ref ||
        !muEquals(AM->T->A, BM))
      return fail(E, "assignment type mismatch");
    CheckResult R;
    R.Type = Pi(Arena.unitTy());
    R.Phi = A->Phi.unionWith(B->Phi);
    R.Phi.insert(AtomicEffect(AM->Rho));
    return R;
  }

  case RExpr::Kind::Seq: {
    CheckResult R;
    for (const RExpr *Item : E->Items) {
      std::optional<CheckResult> I = check(Omega, Item);
      if (!I)
        return std::nullopt;
      R.Type = I->Type;
      R.Phi = R.Phi.unionWith(I->Phi);
    }
    return R;
  }

  case RExpr::Kind::Raise: {
    std::optional<CheckResult> A = check(Omega, E->A);
    if (!A)
      return std::nullopt;
    const Mu *AM = asMu(*A, E, "raise");
    if (!AM)
      return std::nullopt;
    if (AM->K != Mu::Kind::Boxed || AM->T->K != Tau::Kind::Exn)
      return fail(E, "raised expression is not an exception");
    if (!E->MuOf)
      return fail(E, "raise without a recorded result type");
    CheckResult R;
    R.Type = Pi(E->MuOf);
    R.Phi = A->Phi;
    R.Phi.insert(AtomicEffect(AM->Rho));
    return R;
  }

  case RExpr::Kind::Handle: {
    std::optional<CheckResult> A = check(Omega, E->A);
    if (!A)
      return std::nullopt;
    const Mu *AM = asMu(*A, E, "handle body");
    if (!AM)
      return std::nullopt;
    size_t Mark = Gamma.size();
    if (E->BindName.isValid()) {
      const Mu *ArgMu = lookupExn(E->ExnName);
      if (!ArgMu)
        return fail(E, "handler for unknown or nullary exception");
      Gamma.emplace_back(E->BindName, Pi(ArgMu));
    }
    std::optional<CheckResult> B = check(Omega, E->B);
    Gamma.resize(Mark);
    if (!B)
      return std::nullopt;
    const Mu *BM = asMu(*B, E, "handler");
    if (!BM)
      return std::nullopt;
    if (!muEquals(AM, BM))
      return fail(E, "handle branches have different types");
    CheckResult R;
    R.Type = Pi(AM);
    R.Phi = A->Phi.unionWith(B->Phi);
    R.Phi.insert(AtomicEffect(RegionVar::global()));
    return R;
  }

  case RExpr::Kind::ExnConE: {
    const Mu *SigMu = lookupExn(E->ExnName);
    CheckResult R;
    R.Type = Pi(Arena.boxed(Arena.exnTy(), RegionVar::global()));
    R.Phi.insert(AtomicEffect(RegionVar::global()));
    if (E->A) {
      std::optional<CheckResult> A = check(Omega, E->A);
      if (!A)
        return std::nullopt;
      const Mu *AM = asMu(*A, E, "exception argument");
      if (!AM)
        return std::nullopt;
      if (!SigMu || !muEquals(AM, SigMu))
        return fail(E, "exception argument type mismatch");
      // Section 4.4: everything reachable from an exception value must
      // live in global regions because the value may escape to top level.
      Effect GlobalOnly{AtomicEffect(RegionVar::global()),
                        AtomicEffect(EffectVar::global())};
      if (Safety == GcSafety::On && !typeContained(Omega, AM, GlobalOnly))
        return fail(E, "exception argument may reference non-global "
                       "regions: " +
                           printMu(AM));
      R.Phi = R.Phi.unionWith(A->Phi);
    }
    return R;
  }

  case RExpr::Kind::Prim: {
    std::optional<CheckResult> A = check(Omega, E->A);
    if (!A)
      return std::nullopt;
    const Mu *AM = asMu(*A, E, "primitive argument");
    if (!AM)
      return std::nullopt;
    CheckResult R;
    R.Phi = A->Phi;
    switch (E->PrimK) {
    case Expr::PrimKind::Print:
      if (AM->K != Mu::Kind::Boxed || AM->T->K != Tau::Kind::String)
        return fail(E, "print expects a string");
      R.Phi.insert(AtomicEffect(AM->Rho));
      R.Type = Pi(Arena.unitTy());
      return R;
    case Expr::PrimKind::Itos:
      if (AM->K != Mu::Kind::Int)
        return fail(E, "itos expects an int");
      R.Phi.insert(AtomicEffect(E->AtRho));
      R.Type = Pi(Arena.boxed(Arena.stringTy(), E->AtRho));
      return R;
    case Expr::PrimKind::Size:
      if (AM->K != Mu::Kind::Boxed || AM->T->K != Tau::Kind::String)
        return fail(E, "size expects a string");
      R.Phi.insert(AtomicEffect(AM->Rho));
      R.Type = Pi(Arena.intTy());
      return R;
    case Expr::PrimKind::Work:
      if (AM->K != Mu::Kind::Int)
        return fail(E, "work expects an int");
      R.Type = Pi(Arena.unitTy());
      return R;
    case Expr::PrimKind::Global:
      // Identity at the term level; inference already pinned the regions.
      R.Type = Pi(AM);
      return R;
    }
    return std::nullopt;
  }
  }
  return fail(E, "unhandled region expression kind");
}

} // namespace

std::optional<CheckResult>
rml::checkRExpr(const RExpr *E, const TyVarCtx &Omega,
                const std::vector<std::pair<Symbol, Pi>> &Gamma,
                const std::vector<std::pair<Symbol, const Mu *>> &ExnSigs,
                RTypeArena &Arena, const Interner &Names,
                DiagnosticEngine &Diags, GcSafety Safety) {
  RChecker C(Arena, Names, Diags, Safety);
  C.Gamma = Gamma;
  C.ExnSigs = ExnSigs;
  std::optional<CheckResult> R = C.check(Omega, E);
  if (R && !C.validateBasis())
    return std::nullopt;
  return R;
}

std::optional<CheckResult>
rml::checkRProgram(const RProgram &P, RTypeArena &Arena,
                   const Interner &Names, DiagnosticEngine &Diags,
                   GcSafety Safety) {
  return checkRExpr(P.Root, TyVarCtx(), {}, P.ExnSigs, Arena, Names, Diags,
                    Safety);
}
