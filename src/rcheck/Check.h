//===- rcheck/Check.h - Region type checker ---------------------*- C++ -*-===//
//
// Part of RegionML, a reproduction of "Garbage-Collection Safety for
// Region-Based Type-Polymorphic Programs" (Elsman, PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The GC-safe region type system of Section 3: the typing rules of
/// Figure 4 for values and expressions, the value-containment judgement of
/// Figure 3, and the GC-safety relation G (definition (4)):
///
///   G(Omega, Gamma, e, X, pi) =  frv(pi) |=v e
///     and  forall y in fpv(e)\X.  Omega |- Gamma(y) : frev(pi)
///
/// The checker *validates* region-annotated programs produced by region
/// inference (or written by tests): every lambda records its latent arrow
/// effect, every fun-binding its scheme and every region application its
/// substitution, so checking is syntax-directed with no search. The
/// checker also validates the arrow-effect basis discipline of Section
/// 3.5: handles are functional (one denotation per effect variable) and
/// transitive (eps' in phi implies denotation(eps') subset phi).
///
/// Checking a program under the unsound rg- strategy succeeds with
/// GcSafety::Off — the paper's point is precisely that rg- output is
/// region-type-correct in the Tofte-Talpin sense yet not GC-safe; with
/// GcSafety::On the checker additionally enforces G and coverage,
/// rejecting such programs.
///
//===----------------------------------------------------------------------===//

#ifndef RML_RCHECK_CHECK_H
#define RML_RCHECK_CHECK_H

#include "region/Containment.h"
#include "region/RExpr.h"
#include "region/RegionType.h"
#include "support/Diagnostics.h"
#include "support/Interner.h"

#include <optional>
#include <string>
#include <vector>

namespace rml {

/// Whether the checker enforces the GC-safety side conditions (relation G
/// and substitution coverage at instantiations) on top of the plain
/// Tofte-Talpin region rules.
enum class GcSafety : uint8_t { Off, On };

/// Result of checking one expression: its type (scheme-and-place) and
/// effect.
struct CheckResult {
  Pi Type;
  Effect Phi;
};

/// Value containment (Figure 3): phi |= v. \p Phi is a set of regions.
bool valueContained(const Effect &Phi, const RExpr *V);

/// Value containment for expressions (Figure 3): phi |=v e.
bool exprValuesContained(const Effect &Phi, const RExpr *E);

/// The GC-safety relation G(Omega, Gamma, e, X, pi), where \p Gamma is
/// given as the bindings for the free variables of \p E minus \p X.
/// On failure, \p Why (if non-null) describes the offending binding.
bool gcSafe(const TyVarCtx &Omega,
            const std::vector<std::pair<Symbol, Pi>> &FreeBindings,
            const RExpr *E, const Pi &P, std::string *Why = nullptr);

/// Checks a whole region-annotated program. Returns the root's type and
/// effect, or std::nullopt after reporting through \p Diags.
std::optional<CheckResult>
checkRProgram(const RProgram &P, RTypeArena &Arena, const Interner &Names,
              DiagnosticEngine &Diags, GcSafety Safety = GcSafety::On);

/// Checks one expression under the given contexts (for tests and the
/// small-step preservation property). \p Gamma maps variables to types.
std::optional<CheckResult>
checkRExpr(const RExpr *E, const TyVarCtx &Omega,
           const std::vector<std::pair<Symbol, Pi>> &Gamma,
           const std::vector<std::pair<Symbol, const Mu *>> &ExnSigs,
           RTypeArena &Arena, const Interner &Names, DiagnosticEngine &Diags,
           GcSafety Safety = GcSafety::On);

} // namespace rml

#endif // RML_RCHECK_CHECK_H
