//===- ast/Parser.h - MiniML parser -----------------------------*- C++ -*-===//
//
// Part of RegionML, a reproduction of "Garbage-Collection Safety for
// Region-Based Type-Polymorphic Programs" (Elsman, PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for MiniML with SML-like operator precedence.
/// Curried `fun f x y = e` declarations are desugared into unary `fun`
/// plus nested `fn`, `[a, b]` into cons chains, and unit/wildcard
/// parameters into fresh variables, so later passes only see the small
/// term language of the paper (Section 3.6) plus its documented
/// extensions.
///
//===----------------------------------------------------------------------===//

#ifndef RML_AST_PARSER_H
#define RML_AST_PARSER_H

#include "ast/Ast.h"
#include "ast/Token.h"
#include "support/Diagnostics.h"
#include "support/Interner.h"

#include <optional>
#include <vector>

namespace rml {

class Parser {
public:
  Parser(std::vector<Token> Tokens, AstArena &Arena, Interner &Names,
         DiagnosticEngine &Diags)
      : Tokens(std::move(Tokens)), Arena(Arena), Names(Names), Diags(Diags) {}

  /// Parses a whole program: a sequence of top-level declarations followed
  /// by an optional result expression. Returns std::nullopt after emitting
  /// diagnostics on malformed input.
  std::optional<Program> parseProgram();

  /// Parses a single expression (tests).
  const Expr *parseExprOnly();

private:
  const Token &peek(size_t Ahead = 0) const {
    size_t I = Pos + Ahead;
    return I < Tokens.size() ? Tokens[I] : Tokens.back();
  }
  const Token &advance() {
    const Token &T = Tokens[Pos];
    if (Pos + 1 < Tokens.size())
      ++Pos;
    return T;
  }
  bool check(TokKind K) const { return peek().Kind == K; }
  bool accept(TokKind K) {
    if (!check(K))
      return false;
    advance();
    return true;
  }
  bool expect(TokKind K, const char *Context);

  bool atDecStart() const;
  const Dec *parseDec();
  const Expr *parseExp();
  const Expr *parseHandleTail(const Expr *Scrut);
  const Expr *parseInfix(int MinPrec);
  const Expr *parseApp();
  const Expr *parseAtExp();
  const Expr *parseSeqOrParen(SrcLoc Loc);
  const TyExpr *parseTy();
  const TyExpr *parseTyProduct();
  const TyExpr *parseTyAtom();

  /// Parses a parameter form: x | _ | () | (x) | (x : ty). Returns the
  /// bound symbol (fresh for _ and ()) and an optional annotation.
  struct Param {
    Symbol Name;
    const TyExpr *Annot = nullptr;
  };
  std::optional<Param> parseParam();

  const Expr *mkVar(Symbol S, SrcLoc Loc);
  const Expr *etaExpandPrim(Expr::PrimKind P, SrcLoc Loc);
  static bool isUpperIdent(const std::string &S);
  static std::optional<Expr::PrimKind> primForName(const std::string &S);

  std::vector<Token> Tokens;
  AstArena &Arena;
  Interner &Names;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
};

/// Convenience: lex + parse \p Source.
std::optional<Program> parseString(std::string_view Source, AstArena &Arena,
                                   Interner &Names, DiagnosticEngine &Diags);

} // namespace rml

#endif // RML_AST_PARSER_H
