//===- ast/Token.h - MiniML tokens ------------------------------*- C++ -*-===//
//
// Part of RegionML, a reproduction of "Garbage-Collection Safety for
// Region-Based Type-Polymorphic Programs" (Elsman, PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds for the MiniML frontend — an SML-flavoured subset that covers
/// everything the paper's programs exercise: higher-order functions,
/// let-polymorphism, pairs, lists, strings, references and exceptions.
///
//===----------------------------------------------------------------------===//

#ifndef RML_AST_TOKEN_H
#define RML_AST_TOKEN_H

#include "support/Diagnostics.h"

#include <cstdint>
#include <string>

namespace rml {

enum class TokKind : uint8_t {
  Eof,
  // Literals and identifiers.
  IntLit,    // 42
  StringLit, // "oh"
  Ident,     // x, foo'
  TyVar,     // 'a
  // Keywords.
  KwVal,
  KwFun,
  KwFn,
  KwLet,
  KwIn,
  KwEnd,
  KwIf,
  KwThen,
  KwElse,
  KwCase,
  KwOf,
  KwNil,
  KwTrue,
  KwFalse,
  KwAndalso,
  KwOrelse,
  KwDiv,
  KwMod,
  KwRef,
  KwException,
  KwRaise,
  KwHandle,
  KwInt,
  KwBool,
  KwString,
  KwUnit,
  KwList,
  // Punctuation and operators.
  LParen,
  RParen,
  LBracket,
  RBracket,
  Comma,
  Semi,
  Arrow,     // ->
  DArrow,    // =>
  Bar,       // |
  Eq,        // =
  NotEq,     // <>
  Less,      // <
  LessEq,    // <=
  Greater,   // >
  GreaterEq, // >=
  Plus,      // +
  Minus,     // -
  Star,      // *
  Caret,     // ^
  Cons,      // ::
  Bang,      // !
  Assign,    // :=
  Colon,     // :
  Hash1,     // #1
  Hash2,     // #2
  Tilde,     // ~ (unary negation)
  Wild,      // _
};

/// Returns a printable spelling for \p K (for diagnostics).
const char *tokKindName(TokKind K);

struct Token {
  TokKind Kind = TokKind::Eof;
  SrcLoc Loc;
  std::string Text; // Ident / TyVar spelling, or decoded string literal.
  int64_t IntValue = 0;
};

} // namespace rml

#endif // RML_AST_TOKEN_H
