//===- ast/Parser.cpp -----------------------------------------------------===//

#include "ast/Parser.h"

#include "ast/Lexer.h"

#include <cassert>
#include <cctype>

using namespace rml;

bool Parser::expect(TokKind K, const char *Context) {
  if (accept(K))
    return true;
  Diags.error(peek().Loc, std::string("expected ") + tokKindName(K) +
                              " in " + Context + ", found " +
                              tokKindName(peek().Kind));
  return false;
}

bool Parser::isUpperIdent(const std::string &S) {
  return !S.empty() && std::isupper(static_cast<unsigned char>(S[0]));
}

std::optional<Expr::PrimKind> Parser::primForName(const std::string &S) {
  if (S == "print")
    return Expr::PrimKind::Print;
  if (S == "itos")
    return Expr::PrimKind::Itos;
  if (S == "size")
    return Expr::PrimKind::Size;
  if (S == "work")
    return Expr::PrimKind::Work;
  if (S == "global")
    return Expr::PrimKind::Global;
  return std::nullopt;
}

const Expr *Parser::mkVar(Symbol S, SrcLoc Loc) {
  Expr *E = Arena.expr(Expr::Kind::Var, Loc);
  E->Name = S;
  return E;
}

/// Builtin primitives used in value position become "fn x => prim x".
const Expr *Parser::etaExpandPrim(Expr::PrimKind P, SrcLoc Loc) {
  Symbol X = Names.fresh("p");
  Expr *Body = Arena.expr(Expr::Kind::Prim, Loc);
  Body->Prim = P;
  Body->A = mkVar(X, Loc);
  Expr *Fn = Arena.expr(Expr::Kind::Fn, Loc);
  Fn->Name = X;
  Fn->A = Body;
  return Fn;
}

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

const TyExpr *Parser::parseTyAtom() {
  SrcLoc Loc = peek().Loc;
  const TyExpr *T = nullptr;
  switch (peek().Kind) {
  case TokKind::KwInt:
    advance();
    T = Arena.ty(TyExpr::Kind::Int, Loc);
    break;
  case TokKind::KwBool:
    advance();
    T = Arena.ty(TyExpr::Kind::Bool, Loc);
    break;
  case TokKind::KwString:
    advance();
    T = Arena.ty(TyExpr::Kind::String, Loc);
    break;
  case TokKind::KwUnit:
    advance();
    T = Arena.ty(TyExpr::Kind::Unit, Loc);
    break;
  case TokKind::TyVar: {
    TyExpr *V = Arena.ty(TyExpr::Kind::Var, Loc);
    V->VarName = Names.intern(advance().Text);
    T = V;
    break;
  }
  case TokKind::Ident:
    if (peek().Text == "exn") {
      advance();
      T = Arena.ty(TyExpr::Kind::Exn, Loc);
      break;
    }
    Diags.error(Loc, "unknown type constructor '" + peek().Text + "'");
    advance();
    return Arena.ty(TyExpr::Kind::Unit, Loc);
  case TokKind::LParen: {
    advance();
    const TyExpr *Inner = parseTy();
    expect(TokKind::RParen, "type");
    T = Inner;
    break;
  }
  default:
    Diags.error(Loc, std::string("expected a type, found ") +
                         tokKindName(peek().Kind));
    return Arena.ty(TyExpr::Kind::Unit, Loc);
  }
  // Postfix "list" / "ref" applications.
  while (true) {
    if (check(TokKind::KwList)) {
      advance();
      TyExpr *L = Arena.ty(TyExpr::Kind::List, Loc);
      L->A = T;
      T = L;
      continue;
    }
    if (check(TokKind::KwRef)) {
      advance();
      TyExpr *R = Arena.ty(TyExpr::Kind::Ref, Loc);
      R->A = T;
      T = R;
      continue;
    }
    return T;
  }
}

const TyExpr *Parser::parseTyProduct() {
  const TyExpr *L = parseTyAtom();
  if (!check(TokKind::Star))
    return L;
  advance();
  const TyExpr *R = parseTyProduct(); // right-nested products
  TyExpr *P = Arena.ty(TyExpr::Kind::Pair, L->Loc);
  P->A = L;
  P->B = R;
  return P;
}

const TyExpr *Parser::parseTy() {
  const TyExpr *L = parseTyProduct();
  if (!accept(TokKind::Arrow))
    return L;
  const TyExpr *R = parseTy(); // arrows are right associative
  TyExpr *A = Arena.ty(TyExpr::Kind::Arrow, L->Loc);
  A->A = L;
  A->B = R;
  return A;
}

//===----------------------------------------------------------------------===//
// Parameters and declarations
//===----------------------------------------------------------------------===//

std::optional<Parser::Param> Parser::parseParam() {
  SrcLoc Loc = peek().Loc;
  if (check(TokKind::Ident)) {
    Param P;
    P.Name = Names.intern(advance().Text);
    return P;
  }
  if (accept(TokKind::Wild)) {
    Param P;
    P.Name = Names.fresh("_w");
    return P;
  }
  if (check(TokKind::LParen)) {
    advance();
    if (accept(TokKind::RParen)) {
      // Unit parameter "()": bind a fresh variable annotated with unit.
      Param P;
      P.Name = Names.fresh("_u");
      P.Annot = Arena.ty(TyExpr::Kind::Unit, Loc);
      return P;
    }
    Param P;
    if (check(TokKind::Ident))
      P.Name = Names.intern(advance().Text);
    else if (accept(TokKind::Wild))
      P.Name = Names.fresh("_w");
    else {
      Diags.error(peek().Loc, "expected parameter name");
      return std::nullopt;
    }
    if (accept(TokKind::Colon))
      P.Annot = parseTy();
    if (!expect(TokKind::RParen, "parameter"))
      return std::nullopt;
    return P;
  }
  Diags.error(Loc, std::string("expected a parameter, found ") +
                       tokKindName(peek().Kind));
  return std::nullopt;
}

bool Parser::atDecStart() const {
  TokKind K = peek().Kind;
  return K == TokKind::KwVal || K == TokKind::KwFun ||
         K == TokKind::KwException;
}

const Dec *Parser::parseDec() {
  SrcLoc Loc = peek().Loc;
  if (accept(TokKind::KwVal)) {
    Dec *D = Arena.dec(Dec::Kind::Val, Loc);
    if (check(TokKind::Ident))
      D->Name = Names.intern(advance().Text);
    else if (accept(TokKind::Wild))
      D->Name = Names.fresh("_w");
    else {
      Diags.error(peek().Loc, "expected name after 'val'");
      return D;
    }
    if (accept(TokKind::Colon))
      D->Annot = parseTy();
    expect(TokKind::Eq, "val declaration");
    D->Body = parseExp();
    return D;
  }
  if (accept(TokKind::KwFun)) {
    Dec *D = Arena.dec(Dec::Kind::Fun, Loc);
    if (!check(TokKind::Ident)) {
      Diags.error(peek().Loc, "expected function name after 'fun'");
      return D;
    }
    D->Name = Names.intern(advance().Text);
    std::vector<Param> Params;
    std::optional<Param> First = parseParam();
    if (!First)
      return D;
    Params.push_back(*First);
    while (!check(TokKind::Colon) && !check(TokKind::Eq)) {
      std::optional<Param> P = parseParam();
      if (!P)
        return D;
      Params.push_back(*P);
    }
    if (accept(TokKind::Colon))
      D->ResultAnnot = parseTy();
    expect(TokKind::Eq, "fun declaration");
    const Expr *Body = parseExp();
    // Desugar extra curried parameters into nested fn.
    for (size_t I = Params.size(); I-- > 1;) {
      Expr *Fn = Arena.expr(Expr::Kind::Fn, Loc);
      Fn->Name = Params[I].Name;
      Fn->Ty = Params[I].Annot;
      Fn->A = Body;
      Body = Fn;
    }
    D->Param = Params[0].Name;
    D->ParamAnnot = Params[0].Annot;
    D->Body = Body;
    return D;
  }
  if (accept(TokKind::KwException)) {
    Dec *D = Arena.dec(Dec::Kind::Exn, Loc);
    if (!check(TokKind::Ident)) {
      Diags.error(peek().Loc, "expected exception name");
      return D;
    }
    D->Name = Names.intern(advance().Text);
    if (check(TokKind::KwOf)) {
      advance();
      D->Annot = parseTy();
    }
    return D;
  }
  Diags.error(Loc, "expected a declaration");
  advance();
  Dec *D = Arena.dec(Dec::Kind::Val, Loc);
  D->Name = Names.fresh("_err");
  Expr *U = Arena.expr(Expr::Kind::UnitLit, Loc);
  D->Body = U;
  return D;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

namespace {
struct OpInfo {
  BinOpKind Op;
  int Prec;
  bool RightAssoc;
};
} // namespace

static std::optional<OpInfo> infixInfo(TokKind K) {
  switch (K) {
  case TokKind::KwOrelse:
    return OpInfo{BinOpKind::OrElse, 1, false};
  case TokKind::KwAndalso:
    return OpInfo{BinOpKind::AndAlso, 2, false};
  case TokKind::Assign:
    return std::nullopt; // handled separately (non-associative, prec 3)
  case TokKind::Eq:
    return OpInfo{BinOpKind::Eq, 4, false};
  case TokKind::NotEq:
    return OpInfo{BinOpKind::NotEq, 4, false};
  case TokKind::Less:
    return OpInfo{BinOpKind::Less, 4, false};
  case TokKind::LessEq:
    return OpInfo{BinOpKind::LessEq, 4, false};
  case TokKind::Greater:
    return OpInfo{BinOpKind::Greater, 4, false};
  case TokKind::GreaterEq:
    return OpInfo{BinOpKind::GreaterEq, 4, false};
  case TokKind::Cons:
    return OpInfo{BinOpKind::Cons, 5, true};
  case TokKind::Plus:
    return OpInfo{BinOpKind::Add, 6, false};
  case TokKind::Minus:
    return OpInfo{BinOpKind::Sub, 6, false};
  case TokKind::Caret:
    return OpInfo{BinOpKind::Concat, 6, false};
  case TokKind::Star:
    return OpInfo{BinOpKind::Mul, 7, false};
  case TokKind::KwDiv:
    return OpInfo{BinOpKind::Div, 7, false};
  case TokKind::KwMod:
    return OpInfo{BinOpKind::Mod, 7, false};
  default:
    return std::nullopt;
  }
}

const Expr *Parser::parseExp() {
  SrcLoc Loc = peek().Loc;
  if (accept(TokKind::KwRaise)) {
    Expr *E = Arena.expr(Expr::Kind::Raise, Loc);
    E->A = parseExp();
    return E;
  }
  if (check(TokKind::KwFn)) {
    advance();
    std::optional<Param> P = parseParam();
    expect(TokKind::DArrow, "fn expression");
    Expr *E = Arena.expr(Expr::Kind::Fn, Loc);
    E->Name = P ? P->Name : Names.fresh("_err");
    E->Ty = P ? P->Annot : nullptr;
    E->A = parseExp();
    return parseHandleTail(E);
  }
  if (check(TokKind::KwIf)) {
    advance();
    Expr *E = Arena.expr(Expr::Kind::If, Loc);
    E->A = parseExp();
    expect(TokKind::KwThen, "if expression");
    E->B = parseExp();
    expect(TokKind::KwElse, "if expression");
    E->C = parseExp();
    return parseHandleTail(E);
  }
  if (check(TokKind::KwCase)) {
    advance();
    Expr *E = Arena.expr(Expr::Kind::ListCase, Loc);
    E->A = parseExp();
    expect(TokKind::KwOf, "case expression");
    expect(TokKind::KwNil, "case expression (the nil branch must be first)");
    expect(TokKind::DArrow, "case expression");
    E->B = parseExp();
    expect(TokKind::Bar, "case expression");
    // Head and tail binders (identifier or wildcard).
    auto parseBinder = [&]() -> Symbol {
      if (check(TokKind::Ident))
        return Names.intern(advance().Text);
      if (accept(TokKind::Wild))
        return Names.fresh("_w");
      Diags.error(peek().Loc, "expected cons-pattern binder");
      return Names.fresh("_err");
    };
    E->HeadName = parseBinder();
    expect(TokKind::Cons, "cons pattern");
    E->TailName = parseBinder();
    expect(TokKind::DArrow, "case expression");
    E->C = parseExp();
    return parseHandleTail(E);
  }
  const Expr *E = parseInfix(1);
  // ":=" at precedence 3, non-associative.
  if (check(TokKind::Assign)) {
    SrcLoc ALoc = advance().Loc;
    Expr *Asg = Arena.expr(Expr::Kind::Assign, ALoc);
    Asg->A = E;
    Asg->B = parseInfix(1);
    E = Asg;
  }
  return parseHandleTail(E);
}

const Expr *Parser::parseHandleTail(const Expr *Scrut) {
  if (!check(TokKind::KwHandle))
    return Scrut;
  SrcLoc Loc = advance().Loc;
  Expr *H = Arena.expr(Expr::Kind::Handle, Loc);
  H->A = Scrut;
  if (accept(TokKind::Wild)) {
    // wildcard handler: ExnName stays invalid.
  } else if (check(TokKind::Ident) && isUpperIdent(peek().Text)) {
    H->ExnName = Names.intern(advance().Text);
    if (check(TokKind::Ident))
      H->BindName = Names.intern(advance().Text);
    else if (accept(TokKind::Wild))
      H->BindName = Names.fresh("_w");
  } else {
    Diags.error(peek().Loc, "expected exception constructor or '_' after "
                            "'handle'");
  }
  expect(TokKind::DArrow, "handle expression");
  H->B = parseExp();
  return H;
}

const Expr *Parser::parseInfix(int MinPrec) {
  const Expr *Lhs = parseApp();
  while (true) {
    std::optional<OpInfo> Info = infixInfo(peek().Kind);
    if (!Info || Info->Prec < MinPrec)
      return Lhs;
    SrcLoc Loc = advance().Loc;
    const Expr *Rhs =
        parseInfix(Info->RightAssoc ? Info->Prec : Info->Prec + 1);
    Expr *E = Arena.expr(Expr::Kind::BinOp, Loc);
    E->Op = Info->Op;
    E->A = Lhs;
    E->B = Rhs;
    Lhs = E;
  }
}

static bool startsAtExp(TokKind K) {
  switch (K) {
  case TokKind::IntLit:
  case TokKind::StringLit:
  case TokKind::Ident:
  case TokKind::KwTrue:
  case TokKind::KwFalse:
  case TokKind::KwNil:
  case TokKind::KwLet:
  case TokKind::KwRef:
  case TokKind::LParen:
  case TokKind::LBracket:
  case TokKind::Bang:
  case TokKind::Tilde:
  case TokKind::Hash1:
  case TokKind::Hash2:
    return true;
  default:
    return false;
  }
}

const Expr *Parser::parseApp() {
  const Expr *Lhs = parseAtExp();
  while (startsAtExp(peek().Kind)) {
    const Expr *Arg = parseAtExp();
    // Exception construction "E e" and builtin primitive application
    // "print e" get dedicated nodes.
    if (Lhs->K == Expr::Kind::ExnCon && !Lhs->A) {
      Expr *Con = Arena.expr(Expr::Kind::ExnCon, Lhs->Loc);
      Con->Name = Lhs->Name;
      Con->A = Arg;
      Lhs = Con;
      continue;
    }
    if (Lhs->K == Expr::Kind::Fn && Lhs->A && Lhs->A->K == Expr::Kind::Prim &&
        Lhs->A->A && Lhs->A->A->K == Expr::Kind::Var &&
        Lhs->A->A->Name == Lhs->Name) {
      // "(fn p => prim p) arg" produced by eta expansion: contract back.
      Expr *P = Arena.expr(Expr::Kind::Prim, Lhs->Loc);
      P->Prim = Lhs->A->Prim;
      P->A = Arg;
      Lhs = P;
      continue;
    }
    Expr *App = Arena.expr(Expr::Kind::App, Arg->Loc);
    App->A = Lhs;
    App->B = Arg;
    Lhs = App;
  }
  return Lhs;
}

const Expr *Parser::parseSeqOrParen(SrcLoc Loc) {
  // Already consumed "(". Handles: () | (e) | (e, e) | (e; e; ...) |
  // (e : ty).
  if (accept(TokKind::RParen))
    return Arena.expr(Expr::Kind::UnitLit, Loc);
  const Expr *First = parseExp();
  if (accept(TokKind::Comma)) {
    const Expr *Second = parseExp();
    // Wider tuples become right-nested pairs.
    while (accept(TokKind::Comma)) {
      const Expr *Next = parseExp();
      Expr *P = Arena.expr(Expr::Kind::Pair, Loc);
      P->A = Second;
      P->B = Next;
      Second = P;
    }
    expect(TokKind::RParen, "pair");
    Expr *P = Arena.expr(Expr::Kind::Pair, Loc);
    P->A = First;
    P->B = Second;
    return P;
  }
  if (check(TokKind::Semi)) {
    Expr *Seq = Arena.expr(Expr::Kind::Seq, Loc);
    Seq->Items.push_back(First);
    while (accept(TokKind::Semi))
      Seq->Items.push_back(parseExp());
    expect(TokKind::RParen, "sequence");
    return Seq;
  }
  if (accept(TokKind::Colon)) {
    Expr *An = Arena.expr(Expr::Kind::Annot, Loc);
    An->A = First;
    An->Ty = parseTy();
    expect(TokKind::RParen, "type annotation");
    return An;
  }
  expect(TokKind::RParen, "parenthesised expression");
  return First;
}

const Expr *Parser::parseAtExp() {
  SrcLoc Loc = peek().Loc;
  switch (peek().Kind) {
  case TokKind::IntLit: {
    Expr *E = Arena.expr(Expr::Kind::IntLit, Loc);
    E->IntValue = advance().IntValue;
    return E;
  }
  case TokKind::StringLit: {
    Expr *E = Arena.expr(Expr::Kind::StrLit, Loc);
    E->StrValue = advance().Text;
    return E;
  }
  case TokKind::KwTrue:
  case TokKind::KwFalse: {
    Expr *E = Arena.expr(Expr::Kind::BoolLit, Loc);
    E->BoolValue = advance().Kind == TokKind::KwTrue;
    return E;
  }
  case TokKind::KwNil:
    advance();
    return Arena.expr(Expr::Kind::Nil, Loc);
  case TokKind::Ident: {
    const std::string &Text = peek().Text;
    if (std::optional<Expr::PrimKind> P = primForName(Text)) {
      advance();
      if (startsAtExp(peek().Kind)) {
        Expr *E = Arena.expr(Expr::Kind::Prim, Loc);
        E->Prim = *P;
        E->A = parseAtExp();
        return E;
      }
      return etaExpandPrim(*P, Loc);
    }
    if (isUpperIdent(Text)) {
      Expr *E = Arena.expr(Expr::Kind::ExnCon, Loc);
      E->Name = Names.intern(advance().Text);
      return E;
    }
    return mkVar(Names.intern(advance().Text), Loc);
  }
  case TokKind::KwLet: {
    advance();
    Expr *E = Arena.expr(Expr::Kind::Let, Loc);
    if (!atDecStart())
      Diags.error(peek().Loc, "expected a declaration after 'let'");
    while (atDecStart())
      E->Decs.push_back(parseDec());
    expect(TokKind::KwIn, "let expression");
    const Expr *Body = parseExp();
    // "let d in e1; e2 end" sequencing.
    if (check(TokKind::Semi)) {
      Expr *Seq = Arena.expr(Expr::Kind::Seq, Body->Loc);
      Seq->Items.push_back(Body);
      while (accept(TokKind::Semi))
        Seq->Items.push_back(parseExp());
      Body = Seq;
    }
    E->A = Body;
    expect(TokKind::KwEnd, "let expression");
    return E;
  }
  case TokKind::KwRef: {
    advance();
    Expr *E = Arena.expr(Expr::Kind::Ref, Loc);
    E->A = parseAtExp();
    return E;
  }
  case TokKind::Bang: {
    advance();
    Expr *E = Arena.expr(Expr::Kind::Deref, Loc);
    E->A = parseAtExp();
    return E;
  }
  case TokKind::Tilde: {
    advance();
    // Unary negation: desugar "~e" into "0 - e".
    Expr *Zero = Arena.expr(Expr::Kind::IntLit, Loc);
    Zero->IntValue = 0;
    Expr *E = Arena.expr(Expr::Kind::BinOp, Loc);
    E->Op = BinOpKind::Sub;
    E->A = Zero;
    E->B = parseAtExp();
    return E;
  }
  case TokKind::Hash1:
  case TokKind::Hash2: {
    unsigned Index = peek().Kind == TokKind::Hash1 ? 1 : 2;
    advance();
    Expr *E = Arena.expr(Expr::Kind::Sel, Loc);
    E->SelIndex = Index;
    E->A = parseAtExp();
    return E;
  }
  case TokKind::LParen:
    advance();
    return parseSeqOrParen(Loc);
  case TokKind::LBracket: {
    advance();
    // [a, b, c] => a :: b :: c :: nil
    std::vector<const Expr *> Elems;
    if (!check(TokKind::RBracket)) {
      Elems.push_back(parseExp());
      while (accept(TokKind::Comma))
        Elems.push_back(parseExp());
    }
    expect(TokKind::RBracket, "list literal");
    const Expr *Tail = Arena.expr(Expr::Kind::Nil, Loc);
    for (size_t I = Elems.size(); I-- > 0;) {
      Expr *ConsE = Arena.expr(Expr::Kind::BinOp, Loc);
      ConsE->Op = BinOpKind::Cons;
      ConsE->A = Elems[I];
      ConsE->B = Tail;
      Tail = ConsE;
    }
    return Tail;
  }
  default:
    Diags.error(Loc, std::string("expected an expression, found ") +
                         tokKindName(peek().Kind));
    advance();
    return Arena.expr(Expr::Kind::UnitLit, Loc);
  }
}

//===----------------------------------------------------------------------===//
// Program entry points
//===----------------------------------------------------------------------===//

std::optional<Program> Parser::parseProgram() {
  Program P;
  while (atDecStart()) {
    P.Decs.push_back(parseDec());
    // SML-style optional ';' terminator; required before a result
    // expression that could otherwise be swallowed as application
    // arguments of the preceding declaration's body.
    accept(TokKind::Semi);
  }
  if (!check(TokKind::Eof))
    P.Result = parseExp();
  else
    P.Result = Arena.expr(Expr::Kind::UnitLit, peek().Loc);
  if (!check(TokKind::Eof))
    Diags.error(peek().Loc, std::string("unexpected ") +
                                tokKindName(peek().Kind) +
                                " after program end");
  if (Diags.hasErrors())
    return std::nullopt;
  return P;
}

const Expr *Parser::parseExprOnly() {
  const Expr *E = parseExp();
  if (!check(TokKind::Eof))
    Diags.error(peek().Loc, "trailing tokens after expression");
  return E;
}

std::optional<Program> rml::parseString(std::string_view Source,
                                        AstArena &Arena, Interner &Names,
                                        DiagnosticEngine &Diags) {
  Lexer Lex(Source, Diags);
  std::vector<Token> Toks = Lex.lexAll();
  if (Diags.hasErrors())
    return std::nullopt;
  Parser P(std::move(Toks), Arena, Names, Diags);
  return P.parseProgram();
}
