//===- ast/Lexer.cpp ------------------------------------------------------===//

#include "ast/Lexer.h"

#include <cassert>
#include <cctype>
#include <unordered_map>

using namespace rml;

const char *rml::tokKindName(TokKind K) {
  switch (K) {
  case TokKind::Eof:
    return "end of input";
  case TokKind::IntLit:
    return "integer literal";
  case TokKind::StringLit:
    return "string literal";
  case TokKind::Ident:
    return "identifier";
  case TokKind::TyVar:
    return "type variable";
  case TokKind::KwVal:
    return "'val'";
  case TokKind::KwFun:
    return "'fun'";
  case TokKind::KwFn:
    return "'fn'";
  case TokKind::KwLet:
    return "'let'";
  case TokKind::KwIn:
    return "'in'";
  case TokKind::KwEnd:
    return "'end'";
  case TokKind::KwIf:
    return "'if'";
  case TokKind::KwThen:
    return "'then'";
  case TokKind::KwElse:
    return "'else'";
  case TokKind::KwCase:
    return "'case'";
  case TokKind::KwOf:
    return "'of'";
  case TokKind::KwNil:
    return "'nil'";
  case TokKind::KwTrue:
    return "'true'";
  case TokKind::KwFalse:
    return "'false'";
  case TokKind::KwAndalso:
    return "'andalso'";
  case TokKind::KwOrelse:
    return "'orelse'";
  case TokKind::KwDiv:
    return "'div'";
  case TokKind::KwMod:
    return "'mod'";
  case TokKind::KwRef:
    return "'ref'";
  case TokKind::KwException:
    return "'exception'";
  case TokKind::KwRaise:
    return "'raise'";
  case TokKind::KwHandle:
    return "'handle'";
  case TokKind::KwInt:
    return "'int'";
  case TokKind::KwBool:
    return "'bool'";
  case TokKind::KwString:
    return "'string'";
  case TokKind::KwUnit:
    return "'unit'";
  case TokKind::KwList:
    return "'list'";
  case TokKind::LParen:
    return "'('";
  case TokKind::RParen:
    return "')'";
  case TokKind::LBracket:
    return "'['";
  case TokKind::RBracket:
    return "']'";
  case TokKind::Comma:
    return "','";
  case TokKind::Semi:
    return "';'";
  case TokKind::Arrow:
    return "'->'";
  case TokKind::DArrow:
    return "'=>'";
  case TokKind::Bar:
    return "'|'";
  case TokKind::Eq:
    return "'='";
  case TokKind::NotEq:
    return "'<>'";
  case TokKind::Less:
    return "'<'";
  case TokKind::LessEq:
    return "'<='";
  case TokKind::Greater:
    return "'>'";
  case TokKind::GreaterEq:
    return "'>='";
  case TokKind::Plus:
    return "'+'";
  case TokKind::Minus:
    return "'-'";
  case TokKind::Star:
    return "'*'";
  case TokKind::Caret:
    return "'^'";
  case TokKind::Cons:
    return "'::'";
  case TokKind::Bang:
    return "'!'";
  case TokKind::Assign:
    return "':='";
  case TokKind::Colon:
    return "':'";
  case TokKind::Hash1:
    return "'#1'";
  case TokKind::Hash2:
    return "'#2'";
  case TokKind::Tilde:
    return "'~'";
  case TokKind::Wild:
    return "'_'";
  }
  return "<token>";
}

char Lexer::advance() {
  assert(!atEnd() && "advance past end of input");
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return C;
}

void Lexer::skipTrivia() {
  while (!atEnd()) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    // SML comments nest.
    if (C == '(' && peek(1) == '*') {
      SrcLoc Start = loc();
      advance();
      advance();
      unsigned Depth = 1;
      while (Depth != 0) {
        if (atEnd()) {
          Diags.error(Start, "unterminated comment");
          return;
        }
        if (peek() == '(' && peek(1) == '*') {
          advance();
          advance();
          ++Depth;
        } else if (peek() == '*' && peek(1) == ')') {
          advance();
          advance();
          --Depth;
        } else {
          advance();
        }
      }
      continue;
    }
    return;
  }
}

Token Lexer::lexNumber() {
  Token T = make(TokKind::IntLit, loc());
  int64_t Value = 0;
  while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
    Value = Value * 10 + (advance() - '0');
  T.IntValue = Value;
  return T;
}

Token Lexer::lexString() {
  Token T = make(TokKind::StringLit, loc());
  advance(); // opening quote
  std::string Out;
  while (true) {
    if (atEnd() || peek() == '\n') {
      Diags.error(T.Loc, "unterminated string literal");
      break;
    }
    char C = advance();
    if (C == '"')
      break;
    if (C != '\\') {
      Out += C;
      continue;
    }
    if (atEnd()) {
      Diags.error(T.Loc, "unterminated string literal");
      break;
    }
    char E = advance();
    switch (E) {
    case 'n':
      Out += '\n';
      break;
    case 't':
      Out += '\t';
      break;
    case '\\':
      Out += '\\';
      break;
    case '"':
      Out += '"';
      break;
    default:
      Diags.error(loc(), std::string("unknown string escape '\\") + E + "'");
      break;
    }
  }
  T.Text = std::move(Out);
  return T;
}

static bool isWordChar(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_' || C == '\'' ||
         C == '.';
}

Token Lexer::lexWord() {
  static const std::unordered_map<std::string_view, TokKind> Keywords = {
      {"val", TokKind::KwVal},         {"fun", TokKind::KwFun},
      {"fn", TokKind::KwFn},           {"let", TokKind::KwLet},
      {"in", TokKind::KwIn},           {"end", TokKind::KwEnd},
      {"if", TokKind::KwIf},           {"then", TokKind::KwThen},
      {"else", TokKind::KwElse},       {"case", TokKind::KwCase},
      {"of", TokKind::KwOf},           {"nil", TokKind::KwNil},
      {"true", TokKind::KwTrue},       {"false", TokKind::KwFalse},
      {"andalso", TokKind::KwAndalso}, {"orelse", TokKind::KwOrelse},
      {"div", TokKind::KwDiv},         {"mod", TokKind::KwMod},
      {"ref", TokKind::KwRef},         {"exception", TokKind::KwException},
      {"raise", TokKind::KwRaise},     {"handle", TokKind::KwHandle},
      {"int", TokKind::KwInt},         {"bool", TokKind::KwBool},
      {"string", TokKind::KwString},   {"unit", TokKind::KwUnit},
      {"list", TokKind::KwList},
  };

  SrcLoc Start = loc();
  std::string Word;
  while (!atEnd() && isWordChar(peek()))
    Word += advance();
  if (Word == "_")
    return make(TokKind::Wild, Start);
  auto It = Keywords.find(Word);
  if (It != Keywords.end())
    return make(It->second, Start);
  Token T = make(TokKind::Ident, Start);
  T.Text = std::move(Word);
  return T;
}

Token Lexer::lexTyVar() {
  SrcLoc Start = loc();
  advance(); // leading quote
  std::string Name = "'";
  while (!atEnd() && isWordChar(peek()))
    Name += advance();
  if (Name.size() == 1)
    Diags.error(Start, "expected type variable name after \"'\"");
  Token T = make(TokKind::TyVar, Start);
  T.Text = std::move(Name);
  return T;
}

Token Lexer::lexSymbol() {
  SrcLoc Start = loc();
  char C = advance();
  switch (C) {
  case '(':
    return make(TokKind::LParen, Start);
  case ')':
    return make(TokKind::RParen, Start);
  case '[':
    return make(TokKind::LBracket, Start);
  case ']':
    return make(TokKind::RBracket, Start);
  case ',':
    return make(TokKind::Comma, Start);
  case ';':
    return make(TokKind::Semi, Start);
  case '|':
    return make(TokKind::Bar, Start);
  case '+':
    return make(TokKind::Plus, Start);
  case '*':
    return make(TokKind::Star, Start);
  case '^':
    return make(TokKind::Caret, Start);
  case '!':
    return make(TokKind::Bang, Start);
  case '~':
    return make(TokKind::Tilde, Start);
  case '#':
    if (peek() == '1') {
      advance();
      return make(TokKind::Hash1, Start);
    }
    if (peek() == '2') {
      advance();
      return make(TokKind::Hash2, Start);
    }
    Diags.error(Start, "expected '#1' or '#2'");
    return make(TokKind::Hash1, Start);
  case '-':
    if (peek() == '>') {
      advance();
      return make(TokKind::Arrow, Start);
    }
    return make(TokKind::Minus, Start);
  case '=':
    if (peek() == '>') {
      advance();
      return make(TokKind::DArrow, Start);
    }
    return make(TokKind::Eq, Start);
  case '<':
    if (peek() == '>') {
      advance();
      return make(TokKind::NotEq, Start);
    }
    if (peek() == '=') {
      advance();
      return make(TokKind::LessEq, Start);
    }
    return make(TokKind::Less, Start);
  case '>':
    if (peek() == '=') {
      advance();
      return make(TokKind::GreaterEq, Start);
    }
    return make(TokKind::Greater, Start);
  case ':':
    if (peek() == ':') {
      advance();
      return make(TokKind::Cons, Start);
    }
    if (peek() == '=') {
      advance();
      return make(TokKind::Assign, Start);
    }
    return make(TokKind::Colon, Start);
  default:
    Diags.error(Start, std::string("unexpected character '") + C + "'");
    return make(TokKind::Eof, Start);
  }
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Out;
  while (true) {
    skipTrivia();
    if (atEnd())
      break;
    char C = peek();
    if (std::isdigit(static_cast<unsigned char>(C))) {
      Out.push_back(lexNumber());
    } else if (C == '"') {
      Out.push_back(lexString());
    } else if (C == '\'') {
      Out.push_back(lexTyVar());
    } else if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      Out.push_back(lexWord());
    } else {
      Token T = lexSymbol();
      if (T.Kind != TokKind::Eof || !atEnd())
        Out.push_back(T);
    }
  }
  Out.push_back(make(TokKind::Eof, loc()));
  return Out;
}
