//===- ast/Ast.h - MiniML surface syntax ------------------------*- C++ -*-===//
//
// Part of RegionML, a reproduction of "Garbage-Collection Safety for
// Region-Based Type-Polymorphic Programs" (Elsman, PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Surface abstract syntax for MiniML, the SML-flavoured source language fed
/// to Hindley-Milner typing and region inference. The node set mirrors the
/// term grammar of Section 3.6 of the paper (values, variables, let,
/// application, lambda, pairs, projections) extended with the constructs
/// the paper's examples and benchmarks require: conditionals, primitive
/// operators, lists with case analysis, strings, references, sequencing and
/// exceptions (Section 4.4).
///
/// Nodes are owned by an AstArena; all cross-references are raw non-owning
/// pointers, which is safe because the arena outlives every pass.
///
//===----------------------------------------------------------------------===//

#ifndef RML_AST_AST_H
#define RML_AST_AST_H

#include "support/Diagnostics.h"
#include "support/Interner.h"

#include <cassert>
#include <memory>
#include <string>
#include <vector>

namespace rml {

//===----------------------------------------------------------------------===//
// Surface types (annotations)
//===----------------------------------------------------------------------===//

/// A written type annotation, e.g. the "'a -> unit" in
/// "fun app (f : 'a -> unit) = ...". Annotations constrain HM inference;
/// they are how Section 4.2 removes spurious type variables from List.app.
struct TyExpr {
  enum class Kind : uint8_t {
    Int,
    Bool,
    String,
    Unit,
    Var,   // 'a
    Arrow, // t1 -> t2
    Pair,  // t1 * t2
    List,  // t list
    Ref,   // t ref
    Exn,   // exn
  };

  Kind K;
  SrcLoc Loc;
  Symbol VarName;       // Kind::Var
  const TyExpr *A = nullptr; // Arrow lhs / Pair lhs / List elem / Ref elem
  const TyExpr *B = nullptr; // Arrow rhs / Pair rhs

  explicit TyExpr(Kind K, SrcLoc Loc) : K(K), Loc(Loc) {}
};

//===----------------------------------------------------------------------===//
// Expressions and declarations
//===----------------------------------------------------------------------===//

struct Expr;

/// Primitive binary operators. Cons is the list constructor "::"; the
/// comparison operators are monomorphic over int; Concat ("^") is string
/// concatenation, which region inference annotates with a destination
/// region exactly as the paper's "op ^ [rho]" examples.
enum class BinOpKind : uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  Less,
  LessEq,
  Greater,
  GreaterEq,
  Eq,
  NotEq,
  Concat,
  Cons,
  AndAlso,
  OrElse,
  StrEq,
};

const char *binOpName(BinOpKind K);

/// A declaration inside "let ... in e end" or at top level.
struct Dec {
  enum class Kind : uint8_t {
    Val, // val x [: ty] = e
    Fun, // fun f x [: ty] ... = e  (recursive, curried via desugaring)
    Exn, // exception E [of ty]
  };

  Kind K;
  SrcLoc Loc;
  Symbol Name;
  const TyExpr *Annot = nullptr; // Val: binding annot; Exn: argument type.
  // Fun: parameter list with optional annotations; desugared by the
  // parser into nested fn for all but the first parameter.
  Symbol Param;
  const TyExpr *ParamAnnot = nullptr;
  const TyExpr *ResultAnnot = nullptr;
  const Expr *Body = nullptr; // Val initialiser / Fun body.
};

struct Expr {
  enum class Kind : uint8_t {
    IntLit,
    StrLit,
    BoolLit,
    UnitLit,
    Var,
    Fn,       // fn x => e
    App,      // e1 e2
    Pair,     // (e1, e2)
    Sel,      // #1 e / #2 e
    Let,      // let decs in e end
    If,       // if c then t else f
    BinOp,    // e1 op e2
    Nil,      // nil
    ListCase, // case e of nil => e1 | h :: t => e2
    Ref,      // ref e
    Deref,    // !e
    Assign,   // e1 := e2
    Seq,      // (e1; e2; ...)
    Raise,    // raise e
    Handle,   // e handle E x => e' | e handle _ => e'
    ExnCon,   // E or E e (construction of an exception value)
    Annot,    // (e : ty)
    Prim,     // print e / itos e / work e / ord e
  };

  /// Builtin unary primitives exposed as keywords-by-convention.
  enum class PrimKind : uint8_t {
    Print,  // string -> unit
    Itos,   // int -> string
    Size,   // string -> int
    Work,   // int -> unit: allocation churn to provoke a collection
    Global, // 'a -> 'a: pins the value's regions to the global region —
            // the paper's future-work "being explicit about regions ...
            // in expressions", in its minimal useful form
  };

  Kind K;
  SrcLoc Loc;

  // Literals.
  int64_t IntValue = 0;
  std::string StrValue;
  bool BoolValue = false;

  // Names.
  Symbol Name; // Var / Fn param / ListCase binders (HeadName,TailName below)

  // Children.
  const Expr *A = nullptr;
  const Expr *B = nullptr;
  const Expr *C = nullptr;

  // Fn / Annot.
  const TyExpr *Ty = nullptr;

  // Sel.
  unsigned SelIndex = 1;

  // Let.
  std::vector<const Dec *> Decs;

  // ListCase binders.
  Symbol HeadName, TailName;

  // BinOp.
  BinOpKind Op = BinOpKind::Add;

  // Seq.
  std::vector<const Expr *> Items;

  // Handle: the matched exception constructor (invalid => wildcard) and
  // the bound argument variable (invalid => none).
  Symbol ExnName;
  Symbol BindName;

  // Prim.
  PrimKind Prim = PrimKind::Print;

  explicit Expr(Kind K, SrcLoc Loc) : K(K), Loc(Loc) {}
};

//===----------------------------------------------------------------------===//
// Arena and program
//===----------------------------------------------------------------------===//

/// Owns every Expr/Dec/TyExpr node of a parse.
class AstArena {
public:
  Expr *expr(Expr::Kind K, SrcLoc Loc) {
    Exprs.push_back(std::make_unique<Expr>(K, Loc));
    return Exprs.back().get();
  }
  Dec *dec(Dec::Kind K, SrcLoc Loc) {
    Decs.push_back(std::make_unique<Dec>());
    Decs.back()->K = K;
    Decs.back()->Loc = Loc;
    return Decs.back().get();
  }
  TyExpr *ty(TyExpr::Kind K, SrcLoc Loc) {
    Tys.push_back(std::make_unique<TyExpr>(K, Loc));
    return Tys.back().get();
  }

  size_t exprCount() const { return Exprs.size(); }

private:
  std::vector<std::unique_ptr<Expr>> Exprs;
  std::vector<std::unique_ptr<Dec>> Decs;
  std::vector<std::unique_ptr<TyExpr>> Tys;
};

/// A parsed program: a sequence of top-level declarations and a result
/// expression (the parser supplies "()" when the program is only
/// declarations).
struct Program {
  std::vector<const Dec *> Decs;
  const Expr *Result = nullptr;
};

/// Renders \p E in source-like concrete syntax (tests and debugging).
std::string printExpr(const Expr *E, const Interner &Names);

/// Renders a surface type annotation.
std::string printTyExpr(const TyExpr *T, const Interner &Names);

} // namespace rml

#endif // RML_AST_AST_H
