//===- ast/Ast.cpp - AST printing -----------------------------------------===//

#include "ast/Ast.h"

using namespace rml;

const char *rml::binOpName(BinOpKind K) {
  switch (K) {
  case BinOpKind::Add:
    return "+";
  case BinOpKind::Sub:
    return "-";
  case BinOpKind::Mul:
    return "*";
  case BinOpKind::Div:
    return "div";
  case BinOpKind::Mod:
    return "mod";
  case BinOpKind::Less:
    return "<";
  case BinOpKind::LessEq:
    return "<=";
  case BinOpKind::Greater:
    return ">";
  case BinOpKind::GreaterEq:
    return ">=";
  case BinOpKind::Eq:
    return "=";
  case BinOpKind::NotEq:
    return "<>";
  case BinOpKind::Concat:
    return "^";
  case BinOpKind::Cons:
    return "::";
  case BinOpKind::AndAlso:
    return "andalso";
  case BinOpKind::OrElse:
    return "orelse";
  case BinOpKind::StrEq:
    return "seq";
  }
  return "?";
}

std::string rml::printTyExpr(const TyExpr *T, const Interner &Names) {
  if (!T)
    return "<null-ty>";
  switch (T->K) {
  case TyExpr::Kind::Int:
    return "int";
  case TyExpr::Kind::Bool:
    return "bool";
  case TyExpr::Kind::String:
    return "string";
  case TyExpr::Kind::Unit:
    return "unit";
  case TyExpr::Kind::Exn:
    return "exn";
  case TyExpr::Kind::Var:
    return Names.text(T->VarName);
  case TyExpr::Kind::Arrow:
    return "(" + printTyExpr(T->A, Names) + " -> " + printTyExpr(T->B, Names) +
           ")";
  case TyExpr::Kind::Pair:
    return "(" + printTyExpr(T->A, Names) + " * " + printTyExpr(T->B, Names) +
           ")";
  case TyExpr::Kind::List:
    return printTyExpr(T->A, Names) + " list";
  case TyExpr::Kind::Ref:
    return printTyExpr(T->A, Names) + " ref";
  }
  return "?";
}

static void printDec(const Dec *D, const Interner &Names, std::string &Out);

static void print(const Expr *E, const Interner &Names, std::string &Out) {
  if (!E) {
    Out += "<null>";
    return;
  }
  switch (E->K) {
  case Expr::Kind::IntLit:
    Out += std::to_string(E->IntValue);
    return;
  case Expr::Kind::StrLit:
    Out += '"';
    Out += E->StrValue;
    Out += '"';
    return;
  case Expr::Kind::BoolLit:
    Out += E->BoolValue ? "true" : "false";
    return;
  case Expr::Kind::UnitLit:
    Out += "()";
    return;
  case Expr::Kind::Var:
    Out += Names.text(E->Name);
    return;
  case Expr::Kind::Fn:
    Out += "(fn ";
    Out += Names.text(E->Name);
    Out += " => ";
    print(E->A, Names, Out);
    Out += ")";
    return;
  case Expr::Kind::App:
    Out += "(";
    print(E->A, Names, Out);
    Out += " ";
    print(E->B, Names, Out);
    Out += ")";
    return;
  case Expr::Kind::Pair:
    Out += "(";
    print(E->A, Names, Out);
    Out += ", ";
    print(E->B, Names, Out);
    Out += ")";
    return;
  case Expr::Kind::Sel:
    Out += "#";
    Out += std::to_string(E->SelIndex);
    Out += " ";
    print(E->A, Names, Out);
    return;
  case Expr::Kind::Let:
    Out += "let ";
    for (const Dec *D : E->Decs) {
      printDec(D, Names, Out);
      Out += " ";
    }
    Out += "in ";
    print(E->A, Names, Out);
    Out += " end";
    return;
  case Expr::Kind::If:
    Out += "(if ";
    print(E->A, Names, Out);
    Out += " then ";
    print(E->B, Names, Out);
    Out += " else ";
    print(E->C, Names, Out);
    Out += ")";
    return;
  case Expr::Kind::BinOp:
    Out += "(";
    print(E->A, Names, Out);
    Out += " ";
    Out += binOpName(E->Op);
    Out += " ";
    print(E->B, Names, Out);
    Out += ")";
    return;
  case Expr::Kind::Nil:
    Out += "nil";
    return;
  case Expr::Kind::ListCase:
    Out += "(case ";
    print(E->A, Names, Out);
    Out += " of nil => ";
    print(E->B, Names, Out);
    Out += " | ";
    Out += Names.text(E->HeadName);
    Out += " :: ";
    Out += Names.text(E->TailName);
    Out += " => ";
    print(E->C, Names, Out);
    Out += ")";
    return;
  case Expr::Kind::Ref:
    Out += "(ref ";
    print(E->A, Names, Out);
    Out += ")";
    return;
  case Expr::Kind::Deref:
    Out += "!";
    print(E->A, Names, Out);
    return;
  case Expr::Kind::Assign:
    Out += "(";
    print(E->A, Names, Out);
    Out += " := ";
    print(E->B, Names, Out);
    Out += ")";
    return;
  case Expr::Kind::Seq: {
    Out += "(";
    bool First = true;
    for (const Expr *Item : E->Items) {
      if (!First)
        Out += "; ";
      First = false;
      print(Item, Names, Out);
    }
    Out += ")";
    return;
  }
  case Expr::Kind::Raise:
    Out += "(raise ";
    print(E->A, Names, Out);
    Out += ")";
    return;
  case Expr::Kind::Handle:
    Out += "(";
    print(E->A, Names, Out);
    Out += " handle ";
    Out += E->ExnName.isValid() ? Names.text(E->ExnName) : "_";
    if (E->BindName.isValid()) {
      Out += " ";
      Out += Names.text(E->BindName);
    }
    Out += " => ";
    print(E->B, Names, Out);
    Out += ")";
    return;
  case Expr::Kind::ExnCon:
    Out += Names.text(E->Name);
    if (E->A) {
      Out += " ";
      print(E->A, Names, Out);
    }
    return;
  case Expr::Kind::Annot:
    Out += "(";
    print(E->A, Names, Out);
    Out += " : ";
    Out += printTyExpr(E->Ty, Names);
    Out += ")";
    return;
  case Expr::Kind::Prim: {
    const char *Name = "?";
    switch (E->Prim) {
    case Expr::PrimKind::Print:
      Name = "print";
      break;
    case Expr::PrimKind::Itos:
      Name = "itos";
      break;
    case Expr::PrimKind::Size:
      Name = "size";
      break;
    case Expr::PrimKind::Work:
      Name = "work";
      break;
    case Expr::PrimKind::Global:
      Name = "global";
      break;
    }
    Out += "(";
    Out += Name;
    Out += " ";
    print(E->A, Names, Out);
    Out += ")";
    return;
  }
  }
}

static void printDec(const Dec *D, const Interner &Names, std::string &Out) {
  switch (D->K) {
  case Dec::Kind::Val:
    Out += "val ";
    Out += Names.text(D->Name);
    if (D->Annot) {
      Out += " : ";
      Out += printTyExpr(D->Annot, Names);
    }
    Out += " = ";
    print(D->Body, Names, Out);
    return;
  case Dec::Kind::Fun:
    Out += "fun ";
    Out += Names.text(D->Name);
    Out += " ";
    Out += Names.text(D->Param);
    if (D->ParamAnnot) {
      Out += " : ";
      Out += printTyExpr(D->ParamAnnot, Names);
    }
    Out += " = ";
    print(D->Body, Names, Out);
    return;
  case Dec::Kind::Exn:
    Out += "exception ";
    Out += Names.text(D->Name);
    if (D->Annot) {
      Out += " of ";
      Out += printTyExpr(D->Annot, Names);
    }
    return;
  }
}

std::string rml::printExpr(const Expr *E, const Interner &Names) {
  std::string Out;
  print(E, Names, Out);
  return Out;
}
