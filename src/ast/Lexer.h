//===- ast/Lexer.h - MiniML lexer -------------------------------*- C++ -*-===//
//
// Part of RegionML, a reproduction of "Garbage-Collection Safety for
// Region-Based Type-Polymorphic Programs" (Elsman, PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for MiniML. Supports SML-style `(* ... *)` nested
/// comments, decimal integers with `~` negation handled by the parser,
/// string literals with the common escapes, and alphanumeric/symbolic
/// tokens.
///
//===----------------------------------------------------------------------===//

#ifndef RML_AST_LEXER_H
#define RML_AST_LEXER_H

#include "ast/Token.h"
#include "support/Diagnostics.h"

#include <string_view>
#include <vector>

namespace rml {

class Lexer {
public:
  Lexer(std::string_view Source, DiagnosticEngine &Diags)
      : Source(Source), Diags(Diags) {}

  /// Tokenises the whole input; the result always ends with an Eof token.
  /// On a lexical error a diagnostic is emitted and the offending character
  /// is skipped, so the token stream stays usable for recovery.
  std::vector<Token> lexAll();

private:
  bool atEnd() const { return Pos >= Source.size(); }
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
  }
  char advance();
  SrcLoc loc() const { return {Line, Col}; }

  void skipTrivia();
  Token lexNumber();
  Token lexString();
  Token lexWord();
  Token lexTyVar();
  Token lexSymbol();

  Token make(TokKind Kind, SrcLoc Loc) const {
    Token T;
    T.Kind = Kind;
    T.Loc = Loc;
    return T;
  }

  std::string_view Source;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Col = 1;
};

} // namespace rml

#endif // RML_AST_LEXER_H
