//===- region/Effect.cpp --------------------------------------------------===//

#include "region/Effect.h"

using namespace rml;

Effect Effect::unionWith(const Effect &Other) const {
  std::vector<AtomicEffect> Out;
  Out.reserve(Items.size() + Other.Items.size());
  std::set_union(Items.begin(), Items.end(), Other.Items.begin(),
                 Other.Items.end(), std::back_inserter(Out));
  Effect E;
  E.Items = std::move(Out);
  return E;
}

Effect Effect::minus(const Effect &Other) const {
  std::vector<AtomicEffect> Out;
  std::set_difference(Items.begin(), Items.end(), Other.Items.begin(),
                      Other.Items.end(), std::back_inserter(Out));
  Effect E;
  E.Items = std::move(Out);
  return E;
}

Effect Effect::intersect(const Effect &Other) const {
  std::vector<AtomicEffect> Out;
  std::set_intersection(Items.begin(), Items.end(), Other.Items.begin(),
                        Other.Items.end(), std::back_inserter(Out));
  Effect E;
  E.Items = std::move(Out);
  return E;
}

std::vector<RegionVar> Effect::regions() const {
  std::vector<RegionVar> Out;
  for (AtomicEffect A : Items)
    if (A.isRegion())
      Out.push_back(A.region());
  return Out;
}

std::vector<EffectVar> Effect::effectVars() const {
  std::vector<EffectVar> Out;
  for (AtomicEffect A : Items)
    if (A.isEffect())
      Out.push_back(A.effect());
  return Out;
}

std::string rml::printRegionVar(RegionVar R) {
  if (!R.isValid())
    return "r?";
  if (R.isGlobal())
    return "rG";
  return "r" + std::to_string(R.Id);
}

std::string rml::printEffectVar(EffectVar E) {
  if (!E.isValid())
    return "e?";
  if (E == EffectVar::global())
    return "eG";
  return "e" + std::to_string(E.Id);
}

std::string rml::printAtomic(AtomicEffect A) {
  return A.isRegion() ? printRegionVar(A.region())
                      : printEffectVar(A.effect());
}

std::string rml::printEffect(const Effect &Phi) {
  std::string Out = "{";
  bool First = true;
  for (AtomicEffect A : Phi) {
    if (!First)
      Out += ",";
    First = false;
    Out += printAtomic(A);
  }
  Out += "}";
  return Out;
}

std::string rml::printArrowEff(const ArrowEff &Nu) {
  return printEffectVar(Nu.Handle) + "." + printEffect(Nu.Phi);
}
