//===- region/RegionType.cpp ----------------------------------------------===//

#include "region/RegionType.h"

#include <algorithm>

using namespace rml;

//===----------------------------------------------------------------------===//
// Free variables
//===----------------------------------------------------------------------===//

static void frevMu(const Mu *M, Effect &Out);

static void frevTau(const Tau *T, Effect &Out) {
  switch (T->K) {
  case Tau::Kind::Pair:
    frevMu(T->A, Out);
    frevMu(T->B, Out);
    return;
  case Tau::Kind::Arrow:
    frevMu(T->A, Out);
    frevMu(T->B, Out);
    Out = Out.unionWith(T->Nu.frev());
    return;
  case Tau::Kind::String:
  case Tau::Kind::Exn:
    return;
  case Tau::Kind::List:
  case Tau::Kind::Ref:
    frevMu(T->A, Out);
    return;
  }
}

static void frevMu(const Mu *M, Effect &Out) {
  switch (M->K) {
  case Mu::Kind::TyVar:
  case Mu::Kind::Int:
  case Mu::Kind::Bool:
  case Mu::Kind::Unit:
    return;
  case Mu::Kind::Boxed:
    Out.insert(AtomicEffect(M->Rho));
    frevTau(M->T, Out);
    return;
  }
}

Effect rml::frevOf(const Mu *M) {
  Effect Out;
  frevMu(M, Out);
  return Out;
}

Effect rml::frevOf(const Tau *T) {
  Effect Out;
  frevTau(T, Out);
  return Out;
}

Effect rml::frevOf(const RScheme &S) {
  Effect Out = frevOf(S.Body);
  Out = Out.unionWith(S.Delta.frev());
  return Out.minus(S.boundVars());
}

Effect rml::frevOf(const Pi &P) {
  if (P.isMu())
    return frevOf(P.AsMu);
  Effect Out = frevOf(P.Sigma);
  Out.insert(AtomicEffect(P.Place));
  return Out;
}

std::vector<RegionVar> rml::frvOf(const Mu *M) { return frevOf(M).regions(); }
std::vector<RegionVar> rml::frvOf(const Pi &P) { return frevOf(P).regions(); }

static void ftvMu(const Mu *M, std::vector<TyVarId> &Out);

static void ftvTau(const Tau *T, std::vector<TyVarId> &Out) {
  if (T->A)
    ftvMu(T->A, Out);
  if (T->B)
    ftvMu(T->B, Out);
}

static void ftvMu(const Mu *M, std::vector<TyVarId> &Out) {
  if (M->K == Mu::Kind::TyVar) {
    if (std::find(Out.begin(), Out.end(), M->Alpha) == Out.end())
      Out.push_back(M->Alpha);
    return;
  }
  if (M->K == Mu::Kind::Boxed)
    ftvTau(M->T, Out);
}

std::vector<TyVarId> rml::ftvOf(const Mu *M) {
  std::vector<TyVarId> Out;
  ftvMu(M, Out);
  return Out;
}

std::vector<TyVarId> rml::ftvOf(const Tau *T) {
  std::vector<TyVarId> Out;
  ftvTau(T, Out);
  return Out;
}

std::vector<TyVarId> rml::ftvOf(const RScheme &S) {
  std::vector<TyVarId> Out = ftvOf(S.Body);
  std::erase_if(Out, [&](TyVarId A) { return S.Delta.contains(A); });
  return Out;
}

std::vector<TyVarId> rml::ftvOf(const Pi &P) {
  return P.isMu() ? ftvOf(P.AsMu) : ftvOf(P.Sigma);
}

//===----------------------------------------------------------------------===//
// Equality
//===----------------------------------------------------------------------===//

bool rml::tauEquals(const Tau *A, const Tau *B) {
  if (A == B)
    return true;
  if (A->K != B->K)
    return false;
  switch (A->K) {
  case Tau::Kind::Pair:
    return muEquals(A->A, B->A) && muEquals(A->B, B->B);
  case Tau::Kind::Arrow:
    return A->Nu == B->Nu && muEquals(A->A, B->A) && muEquals(A->B, B->B);
  case Tau::Kind::String:
  case Tau::Kind::Exn:
    return true;
  case Tau::Kind::List:
  case Tau::Kind::Ref:
    return muEquals(A->A, B->A);
  }
  return false;
}

bool rml::muEquals(const Mu *A, const Mu *B) {
  if (A == B)
    return true;
  if (A->K != B->K)
    return false;
  switch (A->K) {
  case Mu::Kind::TyVar:
    return A->Alpha == B->Alpha;
  case Mu::Kind::Int:
  case Mu::Kind::Bool:
  case Mu::Kind::Unit:
    return true;
  case Mu::Kind::Boxed:
    return A->Rho == B->Rho && tauEquals(A->T, B->T);
  }
  return false;
}

bool rml::schemeEquals(const RScheme &A, const RScheme &B) {
  // Structural (not alpha-equivalence): sufficient because inference
  // emits canonically named schemes.
  if (A.QRegions != B.QRegions || A.QEffects != B.QEffects)
    return false;
  if (A.Delta.size() != B.Delta.size())
    return false;
  auto It = B.Delta.begin();
  for (const auto &[Alpha, Nu] : A.Delta) {
    if (!(It->first == Alpha) || !(It->second == Nu))
      return false;
    ++It;
  }
  return tauEquals(A.Body, B.Body);
}

bool rml::piEquals(const Pi &A, const Pi &B) {
  if (A.isMu() != B.isMu())
    return false;
  if (A.isMu())
    return muEquals(A.AsMu, B.AsMu);
  return A.Place == B.Place && schemeEquals(A.Sigma, B.Sigma);
}

//===----------------------------------------------------------------------===//
// Well-formedness
//===----------------------------------------------------------------------===//

static bool wfTau(const TyVarCtx &Omega, const Tau *T);

static bool wfMu(const TyVarCtx &Omega, const Mu *M) {
  switch (M->K) {
  case Mu::Kind::TyVar:
    return Omega.contains(M->Alpha);
  case Mu::Kind::Int:
  case Mu::Kind::Bool:
  case Mu::Kind::Unit:
    return true;
  case Mu::Kind::Boxed:
    return wfTau(Omega, M->T);
  }
  return false;
}

static bool wfTau(const TyVarCtx &Omega, const Tau *T) {
  if (T->A && !wfMu(Omega, T->A))
    return false;
  if (T->B && !wfMu(Omega, T->B))
    return false;
  return true;
}

bool rml::wellFormed(const TyVarCtx &Omega, const Mu *M) {
  return wfMu(Omega, M);
}

bool rml::wellFormed(const TyVarCtx &Omega, const Pi &P) {
  if (P.isMu())
    return wfMu(Omega, P.AsMu);
  if (!Omega.domainDisjoint(P.Sigma.Delta))
    return false;
  return wfTau(Omega.plus(P.Sigma.Delta), P.Sigma.Body);
}

//===----------------------------------------------------------------------===//
// Printing
//===----------------------------------------------------------------------===//

std::string rml::printTyVar(TyVarId A) {
  if (!A.isValid())
    return "'?";
  std::string Out = "'";
  uint32_t I = A.Id;
  Out += static_cast<char>('a' + I % 26);
  if (I >= 26)
    Out += std::to_string(I / 26);
  return Out;
}

std::string rml::printTau(const Tau *T) {
  switch (T->K) {
  case Tau::Kind::Pair:
    return printMu(T->A) + " * " + printMu(T->B);
  case Tau::Kind::Arrow:
    return printMu(T->A) + " -" + printArrowEff(T->Nu) + "-> " +
           printMu(T->B);
  case Tau::Kind::String:
    return "string";
  case Tau::Kind::Exn:
    return "exn";
  case Tau::Kind::List:
    return printMu(T->A) + " list";
  case Tau::Kind::Ref:
    return printMu(T->A) + " ref";
  }
  return "?";
}

std::string rml::printMu(const Mu *M) {
  switch (M->K) {
  case Mu::Kind::TyVar:
    return printTyVar(M->Alpha);
  case Mu::Kind::Int:
    return "int";
  case Mu::Kind::Bool:
    return "bool";
  case Mu::Kind::Unit:
    return "unit";
  case Mu::Kind::Boxed:
    return "(" + printTau(M->T) + ", " + printRegionVar(M->Rho) + ")";
  }
  return "?";
}

std::string rml::printTyVarCtx(const TyVarCtx &Ctx) {
  std::string Out;
  bool First = true;
  for (const auto &[Alpha, Nu] : Ctx) {
    if (!First)
      Out += " ";
    First = false;
    Out += "(" + printTyVar(Alpha);
    if (Nu)
      Out += ":" + printArrowEff(*Nu);
    Out += ")";
  }
  return Out;
}

std::string rml::printScheme(const RScheme &S) {
  if (!S.hasQuantifiers())
    return printTau(S.Body);
  std::string Out = "forall";
  for (RegionVar R : S.QRegions)
    Out += " " + printRegionVar(R);
  for (EffectVar E : S.QEffects)
    Out += " " + printEffectVar(E);
  if (!S.Delta.empty())
    Out += " " + printTyVarCtx(S.Delta);
  Out += ". ";
  Out += printTau(S.Body);
  return Out;
}

std::string rml::printPi(const Pi &P) {
  if (P.isMu())
    return printMu(P.AsMu);
  return "(" + printScheme(P.Sigma) + ", " + printRegionVar(P.Place) + ")";
}
