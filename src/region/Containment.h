//===- region/Containment.h - Type containment ------------------*- C++ -*-===//
//
// Part of RegionML, a reproduction of "Garbage-Collection Safety for
// Region-Based Type-Polymorphic Programs" (Elsman, PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Type containment (Section 3.2): Omega |- mu : phi states that every
/// region and effect variable a value of type mu may reference is in phi.
/// For a bound type variable alpha, containment delegates to the arrow
/// effect Omega(alpha) — frev(Omega(alpha)) subset phi — which is the
/// mechanism that lets the type system "see" the regions hidden behind a
/// polymorphic instantiation. The scheme-level extension and the key
/// consequence frev(o) subset phi (Proposition 2) are also provided.
///
//===----------------------------------------------------------------------===//

#ifndef RML_REGION_CONTAINMENT_H
#define RML_REGION_CONTAINMENT_H

#include "region/Effect.h"
#include "region/RegionType.h"

#include <vector>

namespace rml {

/// Omega |- mu : phi.
///
/// A type variable is contained when the frev of its arrow effect in
/// Omega is included in phi. *Plain* entries (Section 4.1's non-spurious
/// variables, which carry no arrow effect) are only contained when listed
/// in \p PlainOk — the GC-safety relation passes the type variables of
/// the function's own type there, since an occurrence in the function
/// type keeps the (substituted) regions reachable; everywhere else plain
/// variables are not containable, which is exactly why a variable hidden
/// from the function type must be spurious.
bool typeContained(const TyVarCtx &Omega, const Mu *M, const Effect &Phi,
                   const std::vector<TyVarId> *PlainOk = nullptr);

/// Omega |- tau : phi at a given place rho (internal form of the boxed
/// rules; exposed for the checker).
bool tauContained(const TyVarCtx &Omega, const Tau *T, RegionVar Rho,
                  const Effect &Phi,
                  const std::vector<TyVarId> *PlainOk = nullptr);

/// Omega |- pi : phi (type scheme containment).
bool piContained(const TyVarCtx &Omega, const Pi &P, const Effect &Phi,
                 const std::vector<TyVarId> *PlainOk = nullptr);

} // namespace rml

#endif // RML_REGION_CONTAINMENT_H
