//===- region/RegionType.h - Region-annotated types -------------*- C++ -*-===//
//
// Part of RegionML, a reproduction of "Garbage-Collection Safety for
// Region-Based Type-Polymorphic Programs" (Elsman, PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Region-annotated types, type schemes and type-variable contexts
/// (Section 3.2 of the paper):
///
///   mu  ::= (tau, rho) | alpha | int | bool | unit
///   tau ::= mu1 x mu2 | mu1 --eps.phi--> mu2
///         | string | mu list | mu ref | exn          (documented extensions)
///   sigma ::= forall rhos eps's Delta . tau          (normalised form)
///   pi  ::= (sigma, rho) | mu
///
/// A *type variable context* (Omega or Delta) maps type variables to arrow
/// effects; this is the paper's key device: the arrow effect of a bound
/// type variable captures the free region and effect variables of any type
/// instantiated for it (substitution coverage, Section 3.4), which is what
/// rules out the dangling pointers of Figure 1.
///
/// All nodes are immutable and owned by an RTypeArena.
///
//===----------------------------------------------------------------------===//

#ifndef RML_REGION_REGIONTYPE_H
#define RML_REGION_REGIONTYPE_H

#include "region/Effect.h"

#include <cassert>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace rml {

/// A region-calculus type variable (alpha). Distinct from the ML
/// unification variables of src/types; translation assigns ids.
struct TyVarId {
  uint32_t Id = UINT32_MAX;

  constexpr TyVarId() = default;
  constexpr explicit TyVarId(uint32_t Id) : Id(Id) {}

  bool isValid() const { return Id != UINT32_MAX; }
  friend bool operator==(TyVarId A, TyVarId B) { return A.Id == B.Id; }
  friend bool operator!=(TyVarId A, TyVarId B) { return A.Id != B.Id; }
  friend bool operator<(TyVarId A, TyVarId B) { return A.Id < B.Id; }
};

/// A type variable context Omega / Delta: a finite map from type
/// variables to arrow effects. Ordered for deterministic iteration.
///
/// Following the implementation refinement of Section 4.1, an entry may be
/// *plain* (no arrow effect): only spurious type variables need arrow
/// effects, and plain entries record that a variable is bound without
/// imposing coverage. Containment of a plain variable is not derivable —
/// exactly why a variable occurring in a captured binding's type must be
/// spurious.
class TyVarCtx {
public:
  TyVarCtx() = default;

  bool contains(TyVarId A) const { return Map.count(A) != 0; }
  /// The arrow effect of \p A, or null when \p A is unbound *or* plain.
  const ArrowEff *lookup(TyVarId A) const {
    auto It = Map.find(A);
    if (It == Map.end() || !It->second)
      return nullptr;
    return &*It->second;
  }
  void bind(TyVarId A, ArrowEff Nu) { Map[A] = std::move(Nu); }
  void bindPlain(TyVarId A) { Map[A] = std::nullopt; }

  /// Omega + Delta: right-biased union.
  TyVarCtx plus(const TyVarCtx &Other) const {
    TyVarCtx Out = *this;
    for (const auto &[A, Nu] : Other.Map)
      Out.Map[A] = Nu;
    return Out;
  }

  bool domainDisjoint(const TyVarCtx &Other) const {
    for (const auto &[A, Nu] : Other.Map)
      if (Map.count(A))
        return false;
    return true;
  }

  bool empty() const { return Map.empty(); }
  size_t size() const { return Map.size(); }
  auto begin() const { return Map.begin(); }
  auto end() const { return Map.end(); }

  /// frev of all arrow effects in the range (plain entries contribute
  /// nothing).
  Effect frev() const {
    Effect Out;
    for (const auto &[A, Nu] : Map)
      if (Nu)
        Out = Out.unionWith(Nu->frev());
    return Out;
  }

private:
  std::map<TyVarId, std::optional<ArrowEff>> Map;
};

struct Tau;

/// mu ::= (tau, rho) | alpha | int | bool | unit. Boxed types carry the
/// region their values live in; scalars are unboxed and placeless.
struct Mu {
  enum class Kind : uint8_t { TyVar, Int, Bool, Unit, Boxed };

  Kind K;
  TyVarId Alpha;            // TyVar
  const Tau *T = nullptr;   // Boxed
  RegionVar Rho;            // Boxed

  bool isBoxed() const { return K == Kind::Boxed; }
};

/// tau: the boxed type constructors.
struct Tau {
  enum class Kind : uint8_t { Pair, Arrow, String, List, Ref, Exn };

  Kind K;
  const Mu *A = nullptr; // Pair lhs / Arrow dom / List elem / Ref elem
  const Mu *B = nullptr; // Pair rhs / Arrow cod
  ArrowEff Nu;           // Arrow latent arrow effect
};

/// A (normalised) region type scheme: forall QRegions QEffects Delta. Body.
/// Every combination may be empty; a fully monomorphic boxed type is the
/// scheme with no quantifiers.
struct RScheme {
  std::vector<RegionVar> QRegions;
  std::vector<EffectVar> QEffects;
  TyVarCtx Delta;
  const Tau *Body = nullptr;

  bool hasQuantifiers() const {
    return !QRegions.empty() || !QEffects.empty() || !Delta.empty();
  }
  Effect boundVars() const {
    Effect Out;
    for (RegionVar R : QRegions)
      Out.insert(AtomicEffect(R));
    for (EffectVar E : QEffects)
      Out.insert(AtomicEffect(E));
    return Out;
  }
};

/// pi ::= (sigma, rho) | mu.
struct Pi {
  const Mu *AsMu = nullptr; // set iff pi is a plain mu
  RScheme Sigma;
  RegionVar Place;

  Pi() = default;
  explicit Pi(const Mu *M) : AsMu(M) {}
  Pi(RScheme S, RegionVar Place) : Sigma(std::move(S)), Place(Place) {}

  bool isMu() const { return AsMu != nullptr; }
};

/// Allocates immutable Mu/Tau nodes.
class RTypeArena {
public:
  const Mu *tyVar(TyVarId A) {
    Mu M;
    M.K = Mu::Kind::TyVar;
    M.Alpha = A;
    return add(M);
  }
  const Mu *intTy() { return scalar(Mu::Kind::Int); }
  const Mu *boolTy() { return scalar(Mu::Kind::Bool); }
  const Mu *unitTy() { return scalar(Mu::Kind::Unit); }
  const Mu *boxed(const Tau *T, RegionVar Rho) {
    Mu M;
    M.K = Mu::Kind::Boxed;
    M.T = T;
    M.Rho = Rho;
    return add(M);
  }

  const Tau *pairTy(const Mu *A, const Mu *B) {
    Tau T;
    T.K = Tau::Kind::Pair;
    T.A = A;
    T.B = B;
    return add(T);
  }
  const Tau *arrowTy(const Mu *A, ArrowEff Nu, const Mu *B) {
    Tau T;
    T.K = Tau::Kind::Arrow;
    T.A = A;
    T.B = B;
    T.Nu = std::move(Nu);
    return add(T);
  }
  const Tau *stringTy() {
    Tau T;
    T.K = Tau::Kind::String;
    return add(T);
  }
  const Tau *listTy(const Mu *A) {
    Tau T;
    T.K = Tau::Kind::List;
    T.A = A;
    return add(T);
  }
  const Tau *refTy(const Mu *A) {
    Tau T;
    T.K = Tau::Kind::Ref;
    T.A = A;
    return add(T);
  }
  const Tau *exnTy() {
    Tau T;
    T.K = Tau::Kind::Exn;
    return add(T);
  }

  size_t size() const { return Mus.size() + Taus.size(); }

private:
  const Mu *scalar(Mu::Kind K) {
    Mu M;
    M.K = K;
    return add(M);
  }
  const Mu *add(Mu M) {
    Mus.push_back(std::make_unique<Mu>(std::move(M)));
    return Mus.back().get();
  }
  const Tau *add(Tau T) {
    Taus.push_back(std::make_unique<Tau>(std::move(T)));
    return Taus.back().get();
  }

  std::vector<std::unique_ptr<Mu>> Mus;
  std::vector<std::unique_ptr<Tau>> Taus;
};

//===----------------------------------------------------------------------===//
// Free variables (frv / frev / ftv)
//===----------------------------------------------------------------------===//

/// Free region variables of a type (schemes subtract their bound vars).
Effect frevOf(const Mu *M);
Effect frevOf(const Tau *T);
Effect frevOf(const RScheme &S);
Effect frevOf(const Pi &P);

/// Free region variables only (the regions of frev).
std::vector<RegionVar> frvOf(const Mu *M);
std::vector<RegionVar> frvOf(const Pi &P);

/// Free type variables.
std::vector<TyVarId> ftvOf(const Mu *M);
std::vector<TyVarId> ftvOf(const Tau *T);
std::vector<TyVarId> ftvOf(const RScheme &S);
std::vector<TyVarId> ftvOf(const Pi &P);

//===----------------------------------------------------------------------===//
// Structural equality and well-formedness
//===----------------------------------------------------------------------===//

bool muEquals(const Mu *A, const Mu *B);
bool tauEquals(const Tau *A, const Tau *B);
bool schemeEquals(const RScheme &A, const RScheme &B);
bool piEquals(const Pi &A, const Pi &B);

/// Well-formedness Omega |- mu (all free type variables bound in Omega).
bool wellFormed(const TyVarCtx &Omega, const Mu *M);
bool wellFormed(const TyVarCtx &Omega, const Pi &P);

//===----------------------------------------------------------------------===//
// Printing (paper-like notation)
//===----------------------------------------------------------------------===//

std::string printMu(const Mu *M);
std::string printTau(const Tau *T);
std::string printScheme(const RScheme &S);
std::string printPi(const Pi &P);
std::string printTyVar(TyVarId A);
std::string printTyVarCtx(const TyVarCtx &Ctx);

} // namespace rml

#endif // RML_REGION_REGIONTYPE_H
