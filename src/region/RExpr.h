//===- region/RExpr.h - Region-annotated terms ------------------*- C++ -*-===//
//
// Part of RegionML, a reproduction of "Garbage-Collection Safety for
// Region-Based Type-Polymorphic Programs" (Elsman, PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The region-annotated intermediate language of Section 3.6, the target of
/// region inference and the subject of the region type checker, the
/// small-step semantics and the runtime:
///
///   v ::= d | <v1,v2>^rho | <\x.e>^rho | <fun f [rhos] x = e>^rho
///   e ::= v | x | let x = e1 in e2 | e1 e2 | \x.e at rho
///       | letregion rho in e
///       | fun f [rhos] x = e at rho | e [S] at rho
///       | (e1,e2) at rho | #i e
///
/// extended — as Section 4 prescribes for full ML — with conditionals,
/// integer/boolean operators, strings ("s" at rho, ^ at rho), lists
/// (nil, :: at rho, case), references (ref at rho, !, :=), sequencing,
/// exceptions (at the global region, Section 4.4) and primitives.
///
/// Differences from the paper's concrete notation, chosen to make checking
/// deterministic:
///  * lambdas record their parameter type and latent arrow effect,
///  * fun-bindings record their full region type scheme
///    (forall rhos epss Delta. tau),
///  * region application records the entire instantiating substitution
///    (St, Sr, Se), not just the region instance list, so the checker
///    *verifies* rather than reconstructs the instance-of relation,
///  * letregion records the secondary effect variables it discharges
///    (the \vec{eps} of rule [TeReg]).
///
/// Value forms (IntVal is shared with literals) only appear during
/// small-step evaluation; region inference never emits them.
///
//===----------------------------------------------------------------------===//

#ifndef RML_REGION_REXPR_H
#define RML_REGION_REXPR_H

#include "ast/Ast.h"
#include "region/Effect.h"
#include "region/RegionType.h"
#include "region/Subst.h"
#include "support/Interner.h"

#include <memory>
#include <string>
#include <vector>

namespace rml {

struct RExpr {
  enum class Kind : uint8_t {
    // Unboxed constants (values).
    IntLit,
    BoolLit,
    UnitLit,
    // Allocating expressions (with an at-rho annotation).
    Lam,     // \x.e at rho
    FunBind, // fun f [rhos epss Delta] x = e at rho (a binding *value
             // expression*; see Let for its typical position)
    PairE,   // (e1, e2) at rho
    StrE,    // "s" at rho
    ConsE,   // e1 :: e2 at rho
    RefE,    // ref e at rho
    RApp,    // e [S] at rho
    ExnConE, // E e at rG (global region)
    // Boxed values (small-step results).
    ClosVal, // <\x.e>^rho
    FunVal,  // <fun f [rhos] x = e>^rho
    PairVal, // <v1,v2>^rho
    StrVal,  // <"s">^rho
    ConsVal, // <v1::v2>^rho
    NilVal,  // nil (unboxed empty list)
    // Non-allocating expressions.
    Var,
    Let,       // let x = e1 in e2
    App,       // e1 e2
    LetRegion, // letregion rho [discharging epss] in e
    Sel,       // #i e
    If,
    BinOp,
    ListCase,
    Deref,
    Assign,
    Seq,
    Raise,
    Handle,
    Prim,
  };

  Kind K;
  SrcLoc Loc;

  /// The region-annotated type of this expression, recorded by inference
  /// and validated by the checker. For FunBind this is the *scheme*
  /// (see Sigma/Place); MuOf then holds the scheme body at its place.
  const Mu *MuOf = nullptr;

  // Constants.
  int64_t IntValue = 0;
  bool BoolValue = false;
  std::string StrValue;

  // Names.
  Symbol Name;               // Var, Lam/FunBind param via Param, binder names
  Symbol Param;              // Lam / FunBind parameter
  Symbol HeadName, TailName; // ListCase
  Symbol ExnName;            // ExnConE / Handle constructor
  Symbol BindName;           // Handle argument binder

  // Children.
  const RExpr *A = nullptr;
  const RExpr *B = nullptr;
  const RExpr *C = nullptr;
  std::vector<const RExpr *> Items; // Seq

  // Region annotations.
  RegionVar AtRho;                  // allocation destination
  RegionVar BoundRho;               // LetRegion binder
  std::vector<EffectVar> BoundEffs; // LetRegion discharged effect vars

  // Lam: parameter type and the latent arrow effect of the lambda.
  const Mu *ParamMu = nullptr;
  ArrowEff LatentNu;

  // FunBind / FunVal: the recorded scheme (quantifiers + Delta + body).
  RScheme Sigma;

  // RApp: the recorded instantiation.
  Subst Inst;

  // BinOp.
  BinOpKind Op = BinOpKind::Add;

  // Sel.
  unsigned SelIndex = 1;

  // Prim.
  Expr::PrimKind PrimK = Expr::PrimKind::Print;

  explicit RExpr(Kind K) : K(K) {}

  bool isValue() const {
    switch (K) {
    case Kind::IntLit:
    case Kind::BoolLit:
    case Kind::UnitLit:
    case Kind::ClosVal:
    case Kind::FunVal:
    case Kind::PairVal:
    case Kind::StrVal:
    case Kind::ConsVal:
    case Kind::NilVal:
      return true;
    default:
      return false;
    }
  }
};

/// Owns RExpr nodes. Small-step evaluation allocates new nodes while
/// rewriting, so the arena is shared between inference and evaluation.
class RExprArena {
public:
  RExpr *make(RExpr::Kind K) {
    Nodes.push_back(std::make_unique<RExpr>(K));
    return Nodes.back().get();
  }
  /// Shallow copy (children shared) — the workhorse of substitution.
  RExpr *clone(const RExpr *E) {
    Nodes.push_back(std::make_unique<RExpr>(*E));
    return Nodes.back().get();
  }
  size_t size() const { return Nodes.size(); }

private:
  std::vector<std::unique_ptr<RExpr>> Nodes;
};

/// A whole region-annotated program together with the bookkeeping the
/// later phases need.
struct RProgram {
  const RExpr *Root = nullptr;
  /// Exception constructor argument types (null = nullary), keyed by name.
  std::vector<std::pair<Symbol, const Mu *>> ExnSigs;
};

/// Free program variables of \p E (fpv of Section 3.6).
std::vector<Symbol> freeVars(const RExpr *E);

/// Renders \p E in paper-like notation, e.g.
/// "letregion r1 in (\x.() at r1) end". Multi-line with indentation.
std::string printRExpr(const RExpr *E, const Interner &Names);

} // namespace rml

#endif // RML_REGION_REXPR_H
