//===- region/RExpr.cpp ---------------------------------------------------===//

#include "region/RExpr.h"

#include <algorithm>
#include <cassert>

using namespace rml;

namespace {

void collectFree(const RExpr *E, std::vector<Symbol> &Bound,
                 std::vector<Symbol> &Out) {
  if (!E)
    return;
  auto IsBound = [&](Symbol S) {
    return std::find(Bound.begin(), Bound.end(), S) != Bound.end();
  };
  auto Add = [&](Symbol S) {
    if (!IsBound(S) && std::find(Out.begin(), Out.end(), S) == Out.end())
      Out.push_back(S);
  };

  switch (E->K) {
  case RExpr::Kind::Var:
    Add(E->Name);
    return;
  case RExpr::Kind::Lam:
  case RExpr::Kind::ClosVal: {
    Bound.push_back(E->Param);
    collectFree(E->A, Bound, Out);
    Bound.pop_back();
    return;
  }
  case RExpr::Kind::FunBind:
  case RExpr::Kind::FunVal: {
    Bound.push_back(E->Name);
    Bound.push_back(E->Param);
    collectFree(E->A, Bound, Out);
    Bound.pop_back();
    Bound.pop_back();
    return;
  }
  case RExpr::Kind::Let: {
    collectFree(E->A, Bound, Out);
    Bound.push_back(E->Name);
    collectFree(E->B, Bound, Out);
    Bound.pop_back();
    return;
  }
  case RExpr::Kind::ListCase: {
    collectFree(E->A, Bound, Out);
    collectFree(E->B, Bound, Out);
    Bound.push_back(E->HeadName);
    Bound.push_back(E->TailName);
    collectFree(E->C, Bound, Out);
    Bound.pop_back();
    Bound.pop_back();
    return;
  }
  case RExpr::Kind::Handle: {
    collectFree(E->A, Bound, Out);
    if (E->BindName.isValid())
      Bound.push_back(E->BindName);
    collectFree(E->B, Bound, Out);
    if (E->BindName.isValid())
      Bound.pop_back();
    return;
  }
  default:
    collectFree(E->A, Bound, Out);
    collectFree(E->B, Bound, Out);
    collectFree(E->C, Bound, Out);
    for (const RExpr *Item : E->Items)
      collectFree(Item, Bound, Out);
    return;
  }
}

} // namespace

std::vector<Symbol> rml::freeVars(const RExpr *E) {
  std::vector<Symbol> Bound, Out;
  collectFree(E, Bound, Out);
  return Out;
}

//===----------------------------------------------------------------------===//
// Printing
//===----------------------------------------------------------------------===//

namespace {

class RPrinter {
public:
  explicit RPrinter(const Interner &Names) : Names(Names) {}

  std::string run(const RExpr *E) {
    print(E, 0);
    return std::move(Out);
  }

private:
  void indent(unsigned Depth) {
    Out += '\n';
    Out.append(2 * Depth, ' ');
  }

  void printQuantifiers(const RScheme &S) {
    Out += '[';
    bool First = true;
    for (RegionVar R : S.QRegions) {
      if (!First)
        Out += ',';
      First = false;
      Out += printRegionVar(R);
    }
    for (EffectVar E : S.QEffects) {
      if (!First)
        Out += ',';
      First = false;
      Out += printEffectVar(E);
    }
    for (const auto &[A, Nu] : S.Delta) {
      if (!First)
        Out += ',';
      First = false;
      Out += printTyVar(A);
      if (Nu)
        Out += ":" + printArrowEff(*Nu);
    }
    Out += ']';
  }

  void print(const RExpr *E, unsigned Depth) {
    if (!E) {
      Out += "<null>";
      return;
    }
    switch (E->K) {
    case RExpr::Kind::IntLit:
      Out += std::to_string(E->IntValue);
      return;
    case RExpr::Kind::BoolLit:
      Out += E->BoolValue ? "true" : "false";
      return;
    case RExpr::Kind::UnitLit:
      Out += "()";
      return;
    case RExpr::Kind::Var:
      Out += Names.text(E->Name);
      return;
    case RExpr::Kind::Lam:
      Out += "(fn ";
      Out += Names.text(E->Param);
      Out += " => ";
      print(E->A, Depth);
      Out += ") at ";
      Out += printRegionVar(E->AtRho);
      return;
    case RExpr::Kind::ClosVal:
      Out += "<fn ";
      Out += Names.text(E->Param);
      Out += " => ";
      print(E->A, Depth);
      Out += ">^";
      Out += printRegionVar(E->AtRho);
      return;
    case RExpr::Kind::FunBind:
    case RExpr::Kind::FunVal: {
      bool IsVal = E->K == RExpr::Kind::FunVal;
      Out += IsVal ? "<fun " : "fun ";
      Out += Names.text(E->Name);
      printQuantifiers(E->Sigma);
      Out += ' ';
      Out += Names.text(E->Param);
      Out += " = ";
      print(E->A, Depth + 1);
      if (IsVal) {
        Out += ">^";
      } else {
        Out += " at ";
      }
      Out += printRegionVar(E->AtRho);
      return;
    }
    case RExpr::Kind::PairE:
      Out += '(';
      print(E->A, Depth);
      Out += ", ";
      print(E->B, Depth);
      Out += ") at ";
      Out += printRegionVar(E->AtRho);
      return;
    case RExpr::Kind::PairVal:
      Out += '<';
      print(E->A, Depth);
      Out += ", ";
      print(E->B, Depth);
      Out += ">^";
      Out += printRegionVar(E->AtRho);
      return;
    case RExpr::Kind::StrE:
      Out += '"';
      Out += E->StrValue;
      Out += "\" at ";
      Out += printRegionVar(E->AtRho);
      return;
    case RExpr::Kind::StrVal:
      Out += "<\"";
      Out += E->StrValue;
      Out += "\">^";
      Out += printRegionVar(E->AtRho);
      return;
    case RExpr::Kind::ConsE:
      Out += '(';
      print(E->A, Depth);
      Out += " :: ";
      print(E->B, Depth);
      Out += ") at ";
      Out += printRegionVar(E->AtRho);
      return;
    case RExpr::Kind::ConsVal:
      Out += '<';
      print(E->A, Depth);
      Out += " :: ";
      print(E->B, Depth);
      Out += ">^";
      Out += printRegionVar(E->AtRho);
      return;
    case RExpr::Kind::NilVal:
      Out += "nil";
      return;
    case RExpr::Kind::RefE:
      Out += "(ref ";
      print(E->A, Depth);
      Out += ") at ";
      Out += printRegionVar(E->AtRho);
      return;
    case RExpr::Kind::RApp:
      print(E->A, Depth);
      Out += ' ';
      Out += E->Inst.str();
      Out += " at ";
      Out += printRegionVar(E->AtRho);
      return;
    case RExpr::Kind::ExnConE:
      Out += Names.text(E->ExnName);
      if (E->A) {
        Out += ' ';
        print(E->A, Depth);
      }
      Out += " at ";
      Out += printRegionVar(E->AtRho);
      return;
    case RExpr::Kind::Let:
      Out += "let val ";
      Out += Names.text(E->Name);
      if (E->A && E->A->MuOf) {
        Out += " : ";
        Out += printMu(E->A->MuOf);
      }
      Out += " =";
      indent(Depth + 1);
      print(E->A, Depth + 1);
      indent(Depth);
      Out += "in ";
      print(E->B, Depth + 1);
      Out += " end";
      return;
    case RExpr::Kind::App:
      Out += '(';
      print(E->A, Depth);
      Out += ' ';
      print(E->B, Depth);
      Out += ')';
      return;
    case RExpr::Kind::LetRegion: {
      // Coalesce nested binders into the paper's "letregion r1,r2,r3 in"
      // notation (Figure 2).
      Out += "letregion ";
      const RExpr *Cur = E;
      bool First = true;
      while (true) {
        if (!First)
          Out += ',';
        First = false;
        Out += printRegionVar(Cur->BoundRho);
        for (EffectVar Ev : Cur->BoundEffs) {
          Out += ',';
          Out += printEffectVar(Ev);
        }
        if (Cur->A->K != RExpr::Kind::LetRegion)
          break;
        Cur = Cur->A;
      }
      Out += " in";
      indent(Depth + 1);
      print(Cur->A, Depth + 1);
      indent(Depth);
      Out += "end";
      return;
    }
    case RExpr::Kind::Sel:
      Out += '#';
      Out += std::to_string(E->SelIndex);
      Out += ' ';
      print(E->A, Depth);
      return;
    case RExpr::Kind::If:
      Out += "(if ";
      print(E->A, Depth);
      Out += " then ";
      print(E->B, Depth);
      Out += " else ";
      print(E->C, Depth);
      Out += ')';
      return;
    case RExpr::Kind::BinOp:
      Out += '(';
      print(E->A, Depth);
      Out += ' ';
      Out += binOpName(E->Op);
      if (E->AtRho.isValid()) {
        Out += '[';
        Out += printRegionVar(E->AtRho);
        Out += ']';
      }
      Out += ' ';
      print(E->B, Depth);
      Out += ')';
      return;
    case RExpr::Kind::ListCase:
      Out += "(case ";
      print(E->A, Depth);
      Out += " of nil => ";
      print(E->B, Depth);
      Out += " | ";
      Out += Names.text(E->HeadName);
      Out += "::";
      Out += Names.text(E->TailName);
      Out += " => ";
      print(E->C, Depth);
      Out += ')';
      return;
    case RExpr::Kind::Deref:
      Out += '!';
      print(E->A, Depth);
      return;
    case RExpr::Kind::Assign:
      Out += '(';
      print(E->A, Depth);
      Out += " := ";
      print(E->B, Depth);
      Out += ')';
      return;
    case RExpr::Kind::Seq: {
      Out += '(';
      bool First = true;
      for (const RExpr *Item : E->Items) {
        if (!First)
          Out += "; ";
        First = false;
        print(Item, Depth);
      }
      Out += ')';
      return;
    }
    case RExpr::Kind::Raise:
      Out += "(raise ";
      print(E->A, Depth);
      Out += ')';
      return;
    case RExpr::Kind::Handle:
      Out += '(';
      print(E->A, Depth);
      Out += " handle ";
      Out += E->ExnName.isValid() ? Names.text(E->ExnName) : "_";
      if (E->BindName.isValid()) {
        Out += ' ';
        Out += Names.text(E->BindName);
      }
      Out += " => ";
      print(E->B, Depth);
      Out += ')';
      return;
    case RExpr::Kind::Prim: {
      const char *Name = "?";
      switch (E->PrimK) {
      case Expr::PrimKind::Print:
        Name = "print";
        break;
      case Expr::PrimKind::Itos:
        Name = "itos";
        break;
      case Expr::PrimKind::Size:
        Name = "size";
        break;
      case Expr::PrimKind::Work:
        Name = "work";
        break;
      case Expr::PrimKind::Global:
        Name = "global";
        break;
      }
      Out += '(';
      Out += Name;
      if (E->AtRho.isValid()) {
        Out += '[';
        Out += printRegionVar(E->AtRho);
        Out += ']';
      }
      Out += ' ';
      print(E->A, Depth);
      Out += ')';
      return;
    }
    }
  }

  const Interner &Names;
  std::string Out;
};

} // namespace

std::string rml::printRExpr(const RExpr *E, const Interner &Names) {
  return RPrinter(Names).run(E);
}
