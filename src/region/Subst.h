//===- region/Subst.h - Substitutions and instantiation ---------*- C++ -*-===//
//
// Part of RegionML, a reproduction of "Garbage-Collection Safety for
// Region-Based Type-Polymorphic Programs" (Elsman, PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Substitutions S = (St, Sr, Se) over the region calculus (Section 3.3):
///
///   * St maps type variables to region-annotated types (mu),
///   * Sr maps region variables to region variables,
///   * Se maps effect variables to arrow effects.
///
/// Substitution on effects follows the paper exactly:
///
///   S(phi)     = { Sr(rho) | rho in phi }
///                union { eta | exists eps in phi, eta in frev(Se(eps)) }
///   S(eps.phi) = eps'.(phi' union S(phi))   where Se(eps) = eps'.phi'
///
/// so applying a substitution can only grow arrow effects — the property
/// (Proposition 3) that makes unification-based region inference work.
///
/// The file also implements *substitution coverage* (Omega |- St : Delta)
/// and the *instance-of* relation (Omega |- sigma >= tau via S) from
/// Section 3.4. Coverage is the paper's fix: the arrow effect a scheme
/// associates with a bound (spurious) type variable must contain the free
/// region/effect variables of any type instantiated for it.
///
//===----------------------------------------------------------------------===//

#ifndef RML_REGION_SUBST_H
#define RML_REGION_SUBST_H

#include "region/Effect.h"
#include "region/RegionType.h"

#include <map>
#include <string>

namespace rml {

/// A substitution triple (St, Sr, Se). Identity outside its domain.
struct Subst {
  std::map<TyVarId, const Mu *> St;
  std::map<RegionVar, RegionVar> Sr;
  std::map<EffectVar, ArrowEff> Se;

  bool isRegionEffect() const { return St.empty(); }
  bool isIdentity() const {
    return St.empty() && Sr.empty() && Se.empty();
  }

  RegionVar apply(RegionVar R) const {
    auto It = Sr.find(R);
    return It == Sr.end() ? R : It->second;
  }

  /// Se(eps) with identity default eps.{}.
  ArrowEff applyEffectVar(EffectVar E) const {
    auto It = Se.find(E);
    return It == Se.end() ? ArrowEff(E, Effect::empty()) : It->second;
  }

  /// S(phi) per the paper definition above.
  Effect apply(const Effect &Phi) const;

  /// S(eps.phi) = eps'.(phi' union S(phi)).
  ArrowEff apply(const ArrowEff &Nu) const;

  const Mu *apply(const Mu *M, RTypeArena &Arena) const;
  const Tau *apply(const Tau *T, RTypeArena &Arena) const;

  /// S(Delta): defined only when dom(S) is disjoint from dom(Delta);
  /// asserts that precondition.
  TyVarCtx apply(const TyVarCtx &Delta) const;

  /// S(sigma): bound variables must already be renamed apart from the
  /// domain and range of S; asserts that precondition.
  RScheme apply(const RScheme &S, RTypeArena &Arena) const;

  Pi apply(const Pi &P, RTypeArena &Arena) const;

  std::string str() const;
};

/// Composition helper used by Propositions 6/7: (Outer o Inner)
/// restricted to dom(Inner).
Subst composeRestricted(const Subst &Outer, const Subst &Inner,
                        RTypeArena &Arena);

/// Substitution coverage (Section 3.4): Omega |- St : Delta iff
/// dom(St) = dom(Delta) and, for each alpha, Omega |- St(alpha) :
/// frev(Delta(alpha)). Uses type containment (region/Containment.h).
bool covers(const TyVarCtx &Omega, const Subst &S, const TyVarCtx &Delta);

/// The instance-of relation Omega |- sigma >= tau via S: S's region and
/// effect components must exactly cover sigma's quantified variables, the
/// type component must be covered through the (substituted) Delta, and
/// applying S to the scheme body must yield \p Expected. Returns false
/// with \p Why describing the first failed condition.
bool instanceOf(const TyVarCtx &Omega, const RScheme &Sigma,
                const Subst &S, const Tau *Expected, RTypeArena &Arena,
                std::string *Why = nullptr);

} // namespace rml

#endif // RML_REGION_SUBST_H
