//===- region/Effect.h - Effects and arrow effects --------------*- C++ -*-===//
//
// Part of RegionML, a reproduction of "Garbage-Collection Safety for
// Region-Based Type-Polymorphic Programs" (Elsman, PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The effect layer of the region calculus (Section 3.1):
///
///   * region variables        rho
///   * effect variables        eps
///   * atomic effects          eta ::= rho | eps
///   * effects                 phi  (finite sets of atomic effects)
///   * arrow effects           nu ::= eps.phi
///
/// These are the *explicit* paper-faithful representations used by the
/// region type checker, the small-step semantics and the metatheory
/// property tests. Region inference (src/rinfer) uses its own mutable
/// union-find store and materialises its results into these types.
///
//===----------------------------------------------------------------------===//

#ifndef RML_REGION_EFFECT_H
#define RML_REGION_EFFECT_H

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace rml {

/// A region variable (rho). Id 0 is reserved for the global region that
/// holds top-level values and escaping exception values.
struct RegionVar {
  uint32_t Id = UINT32_MAX;

  constexpr RegionVar() = default;
  constexpr explicit RegionVar(uint32_t Id) : Id(Id) {}

  bool isValid() const { return Id != UINT32_MAX; }
  bool isGlobal() const { return Id == 0; }
  static constexpr RegionVar global() { return RegionVar(0); }

  friend bool operator==(RegionVar A, RegionVar B) { return A.Id == B.Id; }
  friend bool operator!=(RegionVar A, RegionVar B) { return A.Id != B.Id; }
  friend bool operator<(RegionVar A, RegionVar B) { return A.Id < B.Id; }
};

/// An effect variable (eps). Id 0 is reserved for the global effect
/// variable associated with the global region.
struct EffectVar {
  uint32_t Id = UINT32_MAX;

  constexpr EffectVar() = default;
  constexpr explicit EffectVar(uint32_t Id) : Id(Id) {}

  bool isValid() const { return Id != UINT32_MAX; }
  static constexpr EffectVar global() { return EffectVar(0); }

  friend bool operator==(EffectVar A, EffectVar B) { return A.Id == B.Id; }
  friend bool operator!=(EffectVar A, EffectVar B) { return A.Id != B.Id; }
  friend bool operator<(EffectVar A, EffectVar B) { return A.Id < B.Id; }
};

/// An atomic effect eta: either a region variable or an effect variable.
struct AtomicEffect {
  enum class Kind : uint8_t { Region, Effect };
  Kind K = Kind::Region;
  uint32_t Id = UINT32_MAX;

  constexpr AtomicEffect() = default;
  constexpr AtomicEffect(RegionVar R) : K(Kind::Region), Id(R.Id) {}
  constexpr AtomicEffect(EffectVar E) : K(Kind::Effect), Id(E.Id) {}

  bool isRegion() const { return K == Kind::Region; }
  bool isEffect() const { return K == Kind::Effect; }
  RegionVar region() const { return RegionVar(Id); }
  EffectVar effect() const { return EffectVar(Id); }

  friend bool operator==(AtomicEffect A, AtomicEffect B) {
    return A.K == B.K && A.Id == B.Id;
  }
  friend bool operator!=(AtomicEffect A, AtomicEffect B) { return !(A == B); }
  friend bool operator<(AtomicEffect A, AtomicEffect B) {
    return A.K != B.K ? A.K < B.K : A.Id < B.Id;
  }
};

/// An effect phi: a finite set of atomic effects, kept sorted and
/// deduplicated so equality and subset tests are linear merges.
class Effect {
public:
  Effect() = default;
  Effect(std::initializer_list<AtomicEffect> Init)
      : Items(Init) {
    normalize();
  }
  explicit Effect(std::vector<AtomicEffect> Items) : Items(std::move(Items)) {
    normalize();
  }

  static Effect empty() { return Effect(); }

  bool isEmpty() const { return Items.empty(); }
  size_t size() const { return Items.size(); }

  bool contains(AtomicEffect A) const {
    return std::binary_search(Items.begin(), Items.end(), A);
  }
  bool contains(RegionVar R) const { return contains(AtomicEffect(R)); }
  bool contains(EffectVar E) const { return contains(AtomicEffect(E)); }

  /// True if every element of this effect is in \p Other.
  bool subsetOf(const Effect &Other) const {
    return std::includes(Other.Items.begin(), Other.Items.end(),
                         Items.begin(), Items.end());
  }

  void insert(AtomicEffect A) {
    auto It = std::lower_bound(Items.begin(), Items.end(), A);
    if (It == Items.end() || *It != A)
      Items.insert(It, A);
  }

  /// Set union / difference / intersection (pure).
  Effect unionWith(const Effect &Other) const;
  Effect minus(const Effect &Other) const;
  Effect intersect(const Effect &Other) const;
  bool disjointFrom(const Effect &Other) const {
    return intersect(Other).isEmpty();
  }

  /// The region variables / effect variables contained in this effect.
  std::vector<RegionVar> regions() const;
  std::vector<EffectVar> effectVars() const;

  const std::vector<AtomicEffect> &items() const { return Items; }
  auto begin() const { return Items.begin(); }
  auto end() const { return Items.end(); }

  friend bool operator==(const Effect &A, const Effect &B) {
    return A.Items == B.Items;
  }
  friend bool operator!=(const Effect &A, const Effect &B) {
    return !(A == B);
  }

private:
  void normalize() {
    std::sort(Items.begin(), Items.end());
    Items.erase(std::unique(Items.begin(), Items.end()), Items.end());
  }

  std::vector<AtomicEffect> Items;
};

/// An arrow effect nu = eps.phi: an effect variable (the handle) paired
/// with the effect it denotes. The typing rules rely on the enclosing
/// derivation being *functional* (one denotation per handle) and
/// *transitive* (eps' in phi implies phi' subset phi) — see Section 3.5;
/// rcheck validates both.
struct ArrowEff {
  EffectVar Handle;
  Effect Phi;

  ArrowEff() = default;
  ArrowEff(EffectVar Handle, Effect Phi)
      : Handle(Handle), Phi(std::move(Phi)) {}

  /// frev(eps.phi) = {eps} union phi.
  Effect frev() const {
    Effect Out = Phi;
    Out.insert(AtomicEffect(Handle));
    return Out;
  }

  friend bool operator==(const ArrowEff &A, const ArrowEff &B) {
    return A.Handle == B.Handle && A.Phi == B.Phi;
  }
  friend bool operator!=(const ArrowEff &A, const ArrowEff &B) {
    return !(A == B);
  }
};

/// Printable forms: "r3", "e7", "{r1,e2}", "e0.{r1}".
std::string printRegionVar(RegionVar R);
std::string printEffectVar(EffectVar E);
std::string printAtomic(AtomicEffect A);
std::string printEffect(const Effect &Phi);
std::string printArrowEff(const ArrowEff &Nu);

} // namespace rml

#endif // RML_REGION_EFFECT_H
