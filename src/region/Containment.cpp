//===- region/Containment.cpp ---------------------------------------------===//

#include "region/Containment.h"

#include <algorithm>

using namespace rml;

bool rml::tauContained(const TyVarCtx &Omega, const Tau *T, RegionVar Rho,
                       const Effect &Phi,
                       const std::vector<TyVarId> *PlainOk) {
  if (!Phi.contains(Rho))
    return false;
  switch (T->K) {
  case Tau::Kind::Pair:
    return typeContained(Omega, T->A, Phi, PlainOk) &&
           typeContained(Omega, T->B, Phi, PlainOk);
  case Tau::Kind::Arrow:
    // phi0 subset phi and {rho, eps} subset phi.
    return typeContained(Omega, T->A, Phi, PlainOk) &&
           typeContained(Omega, T->B, Phi, PlainOk) &&
           T->Nu.Phi.subsetOf(Phi) && Phi.contains(T->Nu.Handle);
  case Tau::Kind::String:
    return true;
  case Tau::Kind::Exn:
    // Exception payloads live in global regions by construction
    // (Section 4.4), so the box itself is the only constraint.
    return true;
  case Tau::Kind::List:
  case Tau::Kind::Ref:
    return typeContained(Omega, T->A, Phi, PlainOk);
  }
  return false;
}

bool rml::typeContained(const TyVarCtx &Omega, const Mu *M,
                        const Effect &Phi,
                        const std::vector<TyVarId> *PlainOk) {
  switch (M->K) {
  case Mu::Kind::Int:
  case Mu::Kind::Bool:
  case Mu::Kind::Unit:
    return true;
  case Mu::Kind::TyVar: {
    const ArrowEff *Nu = Omega.lookup(M->Alpha);
    if (Nu)
      return Nu->frev().subsetOf(Phi);
    // Plain entry (or unbound): contained only when explicitly allowed.
    return PlainOk && std::find(PlainOk->begin(), PlainOk->end(),
                                M->Alpha) != PlainOk->end();
  }
  case Mu::Kind::Boxed:
    return tauContained(Omega, M->T, M->Rho, Phi, PlainOk);
  }
  return false;
}

bool rml::piContained(const TyVarCtx &Omega, const Pi &P, const Effect &Phi,
                      const std::vector<TyVarId> *PlainOk) {
  if (P.isMu())
    return typeContained(Omega, P.AsMu, Phi, PlainOk);

  const RScheme &S = P.Sigma;
  // Bound region/effect variables must not collide with the context or
  // the place (the paper assumes schemes renamed apart; we check).
  Effect Bound = S.boundVars();
  Effect CtxFrev = Omega.frev();
  CtxFrev.insert(AtomicEffect(P.Place));
  if (!Bound.disjointFrom(CtxFrev))
    return false;
  if (!Omega.domainDisjoint(S.Delta))
    return false;
  if (!Phi.contains(P.Place))
    return false;
  // By effect extensibility it suffices to check against the largest
  // premise effect phi union bound. The scheme's own *bound* plain type
  // variables are admissible inside the body — they are binders, exactly
  // like the quantified region/effect variables unioned into the premise
  // effect; a value of the scheme type cannot leak their instances.
  Effect Inner = Phi.unionWith(Bound);
  std::vector<TyVarId> InnerPlainOk;
  if (PlainOk)
    InnerPlainOk = *PlainOk;
  for (const auto &[Alpha, Nu] : S.Delta)
    if (!Nu)
      InnerPlainOk.push_back(Alpha);
  return tauContained(Omega.plus(S.Delta), S.Body, P.Place, Inner,
                      &InnerPlainOk);
}
