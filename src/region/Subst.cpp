//===- region/Subst.cpp ---------------------------------------------------===//

#include "region/Subst.h"

#include "region/Containment.h"

#include <cassert>

using namespace rml;

Effect Subst::apply(const Effect &Phi) const {
  Effect Out;
  for (AtomicEffect A : Phi) {
    if (A.isRegion()) {
      Out.insert(AtomicEffect(apply(A.region())));
      continue;
    }
    ArrowEff Nu = applyEffectVar(A.effect());
    Out = Out.unionWith(Nu.frev());
  }
  return Out;
}

ArrowEff Subst::apply(const ArrowEff &Nu) const {
  ArrowEff Mapped = applyEffectVar(Nu.Handle);
  return ArrowEff(Mapped.Handle, Mapped.Phi.unionWith(apply(Nu.Phi)));
}

const Mu *Subst::apply(const Mu *M, RTypeArena &Arena) const {
  switch (M->K) {
  case Mu::Kind::Int:
  case Mu::Kind::Bool:
  case Mu::Kind::Unit:
    return M;
  case Mu::Kind::TyVar: {
    auto It = St.find(M->Alpha);
    return It == St.end() ? M : It->second;
  }
  case Mu::Kind::Boxed:
    return Arena.boxed(apply(M->T, Arena), apply(M->Rho));
  }
  return M;
}

const Tau *Subst::apply(const Tau *T, RTypeArena &Arena) const {
  switch (T->K) {
  case Tau::Kind::Pair:
    return Arena.pairTy(apply(T->A, Arena), apply(T->B, Arena));
  case Tau::Kind::Arrow:
    return Arena.arrowTy(apply(T->A, Arena), apply(T->Nu),
                         apply(T->B, Arena));
  case Tau::Kind::String:
  case Tau::Kind::Exn:
    return T;
  case Tau::Kind::List:
    return Arena.listTy(apply(T->A, Arena));
  case Tau::Kind::Ref:
    return Arena.refTy(apply(T->A, Arena));
  }
  return T;
}

TyVarCtx Subst::apply(const TyVarCtx &Delta) const {
  TyVarCtx Out;
  for (const auto &[Alpha, Nu] : Delta) {
    assert(!St.count(Alpha) &&
           "substitution domain overlaps type variable context");
    if (Nu)
      Out.bind(Alpha, apply(*Nu));
    else
      Out.bindPlain(Alpha);
  }
  return Out;
}

/// The free region/effect variables mentioned anywhere in \p S (domain
/// and range) — used to detect variable capture.
static Effect substFootprint(const Subst &S) {
  Effect Out;
  for (const auto &[R, R2] : S.Sr) {
    Out.insert(AtomicEffect(R));
    Out.insert(AtomicEffect(R2));
  }
  for (const auto &[E, Nu] : S.Se) {
    Out.insert(AtomicEffect(E));
    Out = Out.unionWith(Nu.frev());
  }
  for (const auto &[A, M] : S.St)
    Out = Out.unionWith(frevOf(M));
  return Out;
}

RScheme Subst::apply(const RScheme &Sigma, RTypeArena &Arena) const {
  assert(Sigma.boundVars().disjointFrom(substFootprint(*this)) &&
         "scheme bound variables capture the substitution");
  RScheme Out;
  Out.QRegions = Sigma.QRegions;
  Out.QEffects = Sigma.QEffects;
  Out.Delta = apply(Sigma.Delta);
  Out.Body = apply(Sigma.Body, Arena);
  return Out;
}

Pi Subst::apply(const Pi &P, RTypeArena &Arena) const {
  if (P.isMu())
    return Pi(apply(P.AsMu, Arena));
  return Pi(apply(P.Sigma, Arena), apply(P.Place));
}

std::string Subst::str() const {
  std::string Out = "[";
  bool First = true;
  for (const auto &[A, M] : St) {
    if (!First)
      Out += ", ";
    First = false;
    Out += printTyVar(A) + ":=" + printMu(M);
  }
  for (const auto &[R, R2] : Sr) {
    if (!First)
      Out += ", ";
    First = false;
    Out += printRegionVar(R) + ":=" + printRegionVar(R2);
  }
  for (const auto &[E, Nu] : Se) {
    if (!First)
      Out += ", ";
    First = false;
    Out += printEffectVar(E) + ":=" + printArrowEff(Nu);
  }
  Out += "]";
  return Out;
}

Subst rml::composeRestricted(const Subst &Outer, const Subst &Inner,
                             RTypeArena &Arena) {
  Subst Out;
  for (const auto &[A, M] : Inner.St)
    Out.St.emplace(A, Outer.apply(M, Arena));
  for (const auto &[R, R2] : Inner.Sr)
    Out.Sr.emplace(R, Outer.apply(R2));
  for (const auto &[E, Nu] : Inner.Se)
    Out.Se.emplace(E, Outer.apply(Nu));
  return Out;
}

bool rml::covers(const TyVarCtx &Omega, const Subst &S,
                 const TyVarCtx &Delta) {
  if (S.St.size() != Delta.size())
    return false;
  for (const auto &[Alpha, Nu] : Delta) {
    auto It = S.St.find(Alpha);
    if (It == S.St.end())
      return false;
    // Plain entries (Section 4.1) impose no coverage constraint.
    if (Nu && !typeContained(Omega, It->second, Nu->frev()))
      return false;
  }
  return true;
}

bool rml::instanceOf(const TyVarCtx &Omega, const RScheme &Sigma,
                     const Subst &S, const Tau *Expected, RTypeArena &Arena,
                     std::string *Why) {
  auto Fail = [&](std::string Msg) {
    if (Why)
      *Why = std::move(Msg);
    return false;
  };

  // 1. dom(Sr) = quantified regions, dom(Se) = quantified effect vars.
  if (S.Sr.size() != Sigma.QRegions.size())
    return Fail("region substitution domain does not match the quantified "
                "region variables");
  for (RegionVar R : Sigma.QRegions)
    if (!S.Sr.count(R))
      return Fail("quantified region " + printRegionVar(R) +
                  " is not in the substitution domain");
  if (S.Se.size() != Sigma.QEffects.size())
    return Fail("effect substitution domain does not match the quantified "
                "effect variables");
  for (EffectVar E : Sigma.QEffects)
    if (!S.Se.count(E))
      return Fail("quantified effect variable " + printEffectVar(E) +
                  " is not in the substitution domain");

  // 2. Apply the region-effect part, then check coverage of the type part
  // through the substituted Delta and compare the resulting body.
  Subst RegionEffect;
  RegionEffect.Sr = S.Sr;
  RegionEffect.Se = S.Se;
  TyVarCtx DeltaInst = RegionEffect.apply(Sigma.Delta);
  Subst TypeOnly;
  TypeOnly.St = S.St;
  if (!covers(Omega, TypeOnly, DeltaInst))
    return Fail("type substitution is not covered: an instantiated type "
                "mentions regions outside the bound type variable's arrow "
                "effect");
  const Tau *BodyInst =
      TypeOnly.apply(RegionEffect.apply(Sigma.Body, Arena), Arena);
  if (!tauEquals(BodyInst, Expected))
    return Fail("instantiated scheme body " + printTau(BodyInst) +
                " differs from the expected type " + printTau(Expected));
  return true;
}
