//===- types/TypeCheck.cpp ------------------------------------------------===//

#include "types/TypeCheck.h"

#include <algorithm>
#include <cassert>

using namespace rml;

namespace {

/// One lexical binding: either a (possibly polymorphic) scheme from a
/// declaration, or a monomorphic parameter type.
struct EnvEntry {
  TypeScheme Scheme;
  const Dec *Origin = nullptr; // declaration that introduced the binding
};

class Checker {
public:
  Checker(TypeArena &Arena, Interner &Names, DiagnosticEngine &Diags,
          TypeInfo &Info)
      : Arena(Arena), Names(Names), Diags(Diags), Info(Info) {}

  bool run(const Program &P) {
    for (const Dec *D : P.Decs)
      checkDec(D);
    checkExp(P.Result);
    return !Diags.hasErrors();
  }

private:
  //===--------------------------------------------------------------------===//
  // Environment
  //===--------------------------------------------------------------------===//

  using Scope = size_t;

  Scope openScope() { return Bindings.size(); }
  void closeScope(Scope S) { Bindings.resize(S); }

  void bindMono(Symbol Name, Type *T) {
    EnvEntry E;
    E.Scheme.Body = T;
    Bindings.emplace_back(Name, std::move(E));
  }

  void bindScheme(Symbol Name, TypeScheme S, const Dec *Origin) {
    EnvEntry E;
    E.Scheme = std::move(S);
    E.Origin = Origin;
    Bindings.emplace_back(Name, std::move(E));
  }

  const EnvEntry *lookup(Symbol Name) const {
    for (size_t I = Bindings.size(); I-- > 0;)
      if (Bindings[I].first == Name)
        return &Bindings[I].second;
    return nullptr;
  }

  //===--------------------------------------------------------------------===//
  // Helpers
  //===--------------------------------------------------------------------===//

  void reportUnifyError(SrcLoc Loc, Type *Want, Type *Got,
                        const char *Context) {
    Diags.error(Loc, std::string("type mismatch in ") + Context +
                         ": expected " + printType(Want) + ", found " +
                         printType(Got));
  }

  bool unifyAt(SrcLoc Loc, Type *Want, Type *Got, const char *Context) {
    if (unify(Want, Got))
      return true;
    reportUnifyError(Loc, Want, Got, Context);
    return false;
  }

  /// Converts a surface annotation into a type, mapping annotation type
  /// variables ('a) to per-top-level-declaration unification variables.
  Type *tyFromAnnot(const TyExpr *T) {
    switch (T->K) {
    case TyExpr::Kind::Int:
      return Arena.intTy();
    case TyExpr::Kind::Bool:
      return Arena.boolTy();
    case TyExpr::Kind::String:
      return Arena.stringTy();
    case TyExpr::Kind::Unit:
      return Arena.unitTy();
    case TyExpr::Kind::Exn:
      return Arena.exnTy();
    case TyExpr::Kind::Var: {
      auto It = AnnotVars.find(T->VarName);
      if (It != AnnotVars.end())
        return It->second;
      Type *V = Arena.freshVar(Level);
      AnnotVars.emplace(T->VarName, V);
      return V;
    }
    case TyExpr::Kind::Arrow:
      return Arena.arrow(tyFromAnnot(T->A), tyFromAnnot(T->B));
    case TyExpr::Kind::Pair:
      return Arena.pair(tyFromAnnot(T->A), tyFromAnnot(T->B));
    case TyExpr::Kind::List:
      return Arena.list(tyFromAnnot(T->A));
    case TyExpr::Kind::Ref:
      return Arena.ref(tyFromAnnot(T->A));
    }
    return Arena.unitTy();
  }

  /// Instantiates \p S with fresh variables; records the per-variable
  /// instances so region inference can apply substitution coverage.
  Type *instantiate(const TypeScheme &S, std::vector<Type *> *ArgsOut) {
    if (S.Quantified.empty())
      return S.Body;
    std::unordered_map<Type *, Type *> Map;
    for (Type *Q : S.Quantified) {
      Type *Fresh = Arena.freshVar(Level);
      Map.emplace(Q, Fresh);
      if (ArgsOut)
        ArgsOut->push_back(Fresh);
    }
    return copy(S.Body, Map);
  }

  Type *copy(Type *T, std::unordered_map<Type *, Type *> &Map) {
    T = resolve(T);
    auto It = Map.find(T);
    if (It != Map.end())
      return It->second;
    switch (T->K) {
    case TypeKind::Var:
    case TypeKind::Int:
    case TypeKind::Bool:
    case TypeKind::String:
    case TypeKind::Unit:
    case TypeKind::Exn:
      return T;
    case TypeKind::Arrow:
    case TypeKind::Pair: {
      Type *A = copy(T->A, Map);
      Type *B = copy(T->B, Map);
      if (A == T->A && B == T->B)
        return T;
      return Arena.make(T->K, A, B);
    }
    case TypeKind::List:
    case TypeKind::Ref: {
      Type *A = copy(T->A, Map);
      if (A == T->A)
        return T;
      return Arena.make(T->K, A);
    }
    }
    return T;
  }

  /// The value restriction: only syntactic values may be generalised.
  static bool isSyntacticValue(const Expr *E) {
    switch (E->K) {
    case Expr::Kind::IntLit:
    case Expr::Kind::StrLit:
    case Expr::Kind::BoolLit:
    case Expr::Kind::UnitLit:
    case Expr::Kind::Var:
    case Expr::Kind::Fn:
    case Expr::Kind::Nil:
      return true;
    case Expr::Kind::Pair:
      return isSyntacticValue(E->A) && isSyntacticValue(E->B);
    case Expr::Kind::BinOp:
      return E->Op == BinOpKind::Cons && isSyntacticValue(E->A) &&
             isSyntacticValue(E->B);
    case Expr::Kind::ExnCon:
      return !E->A || isSyntacticValue(E->A);
    case Expr::Kind::Annot:
      return isSyntacticValue(E->A);
    default:
      return false;
    }
  }

  /// Generalises \p T at the current level, freezing quantified variables
  /// as rigid nodes.
  TypeScheme generalize(Type *T) {
    TypeScheme S;
    S.Body = T;
    collectGeneralizable(T, Level, S.Quantified);
    for (Type *V : S.Quantified)
      V->Rigid = true;
    return S;
  }

  //===--------------------------------------------------------------------===//
  // Declarations
  //===--------------------------------------------------------------------===//

  void checkDec(const Dec *D) {
    // Annotation type variables ('a) scope over the smallest enclosing
    // declaration, so each val/fun gets a fresh annotation-variable map.
    std::unordered_map<Symbol, Type *> SavedAnnotVars;
    std::swap(SavedAnnotVars, AnnotVars);
    checkDecInner(D);
    std::swap(SavedAnnotVars, AnnotVars);
  }

  void checkDecInner(const Dec *D) {
    switch (D->K) {
    case Dec::Kind::Val: {
      ++Level;
      Type *T = checkExp(D->Body);
      if (D->Annot)
        unifyAt(D->Loc, tyFromAnnot(D->Annot), T, "val annotation");
      --Level;
      TypeScheme S;
      if (isSyntacticValue(D->Body)) {
        S = generalize(T);
      } else {
        S.Body = T;
        // Keep inner variables from being generalised later.
        std::vector<Type *> Escaping;
        collectGeneralizable(T, Level, Escaping);
        for (Type *V : Escaping)
          V->Level = Level;
      }
      Info.DecSchemes.emplace(D, S);
      bindScheme(D->Name, S, D);
      return;
    }
    case Dec::Kind::Fun: {
      ++Level;
      Type *ParamT = Arena.freshVar(Level);
      Type *ResultT = Arena.freshVar(Level);
      Type *FnT = Arena.arrow(ParamT, ResultT);
      if (D->ParamAnnot)
        unifyAt(D->Loc, tyFromAnnot(D->ParamAnnot), ParamT,
                "parameter annotation");
      if (D->ResultAnnot)
        unifyAt(D->Loc, tyFromAnnot(D->ResultAnnot), ResultT,
                "result annotation");
      Scope Sc = openScope();
      bindMono(D->Name, FnT); // monomorphic recursion
      bindMono(D->Param, ParamT);
      Type *BodyT = checkExp(D->Body);
      closeScope(Sc);
      unifyAt(D->Loc, ResultT, BodyT, "function body");
      --Level;
      TypeScheme S = generalize(FnT);
      Info.DecSchemes.emplace(D, S);
      Info.DecParamTypes.emplace(D, ParamT);
      bindScheme(D->Name, S, D);
      return;
    }
    case Dec::Kind::Exn: {
      Type *ArgT = D->Annot ? tyFromAnnot(D->Annot) : nullptr;
      Info.ExnArgTypes.emplace(D, ArgT);
      Exns.emplace_back(D->Name, D);
      return;
    }
    }
  }

  const Dec *lookupExn(Symbol Name) const {
    for (size_t I = Exns.size(); I-- > 0;)
      if (Exns[I].first == Name)
        return Exns[I].second;
    return nullptr;
  }

  //===--------------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------------===//

  Type *checkExp(const Expr *E) {
    Type *T = checkExpInner(E);
    Info.ExprTypes[E] = T;
    return T;
  }

  Type *checkExpInner(const Expr *E) {
    switch (E->K) {
    case Expr::Kind::IntLit:
      return Arena.intTy();
    case Expr::Kind::StrLit:
      return Arena.stringTy();
    case Expr::Kind::BoolLit:
      return Arena.boolTy();
    case Expr::Kind::UnitLit:
      return Arena.unitTy();

    case Expr::Kind::Var: {
      const EnvEntry *Entry = lookup(E->Name);
      if (!Entry) {
        Diags.error(E->Loc, "unbound variable '" + Names.text(E->Name) + "'");
        return Arena.freshVar(Level);
      }
      if (Entry->Scheme.isMono())
        return Entry->Scheme.Body;
      InstInfo Inst;
      Inst.Origin = Entry->Origin;
      Type *T = instantiate(Entry->Scheme, &Inst.Args);
      Info.VarInsts.emplace(E, std::move(Inst));
      return T;
    }

    case Expr::Kind::Fn: {
      Type *ParamT = Arena.freshVar(Level);
      if (E->Ty)
        unifyAt(E->Loc, tyFromAnnot(E->Ty), ParamT, "parameter annotation");
      Scope Sc = openScope();
      bindMono(E->Name, ParamT);
      Type *BodyT = checkExp(E->A);
      closeScope(Sc);
      Info.BinderTypes[E] = ParamT;
      return Arena.arrow(ParamT, BodyT);
    }

    case Expr::Kind::App: {
      Type *FnT = checkExp(E->A);
      Type *ArgT = checkExp(E->B);
      Type *ResT = Arena.freshVar(Level);
      if (!unify(FnT, Arena.arrow(ArgT, ResT))) {
        Type *R = resolve(FnT);
        if (R->K != TypeKind::Arrow && R->K != TypeKind::Var)
          Diags.error(E->Loc, "applied expression is not a function (type " +
                                  printType(FnT) + ")");
        else
          Diags.error(E->Loc,
                      "argument type mismatch: function expects " +
                          printType(R->K == TypeKind::Arrow ? R->A : FnT) +
                          ", found " + printType(ArgT));
      }
      return ResT;
    }

    case Expr::Kind::Pair:
      return Arena.pair(checkExp(E->A), checkExp(E->B));

    case Expr::Kind::Sel: {
      Type *PairT = checkExp(E->A);
      Type *L = Arena.freshVar(Level);
      Type *R = Arena.freshVar(Level);
      unifyAt(E->Loc, Arena.pair(L, R), PairT, "pair projection");
      return E->SelIndex == 1 ? L : R;
    }

    case Expr::Kind::Let: {
      Scope Sc = openScope();
      size_t ExnMark = Exns.size();
      for (const Dec *D : E->Decs)
        checkDec(D);
      Type *T = checkExp(E->A);
      closeScope(Sc);
      Exns.resize(ExnMark);
      return T;
    }

    case Expr::Kind::If: {
      Type *CondT = checkExp(E->A);
      unifyAt(E->A->Loc, Arena.boolTy(), CondT, "if condition");
      Type *ThenT = checkExp(E->B);
      Type *ElseT = checkExp(E->C);
      unifyAt(E->Loc, ThenT, ElseT, "if branches");
      return ThenT;
    }

    case Expr::Kind::BinOp:
      return checkBinOp(E);

    case Expr::Kind::Nil:
      return Arena.list(Arena.freshVar(Level));

    case Expr::Kind::ListCase: {
      Type *ScrutT = checkExp(E->A);
      Type *ElemT = Arena.freshVar(Level);
      unifyAt(E->A->Loc, Arena.list(ElemT), ScrutT, "case scrutinee");
      Type *NilT = checkExp(E->B);
      Scope Sc = openScope();
      bindMono(E->HeadName, ElemT);
      bindMono(E->TailName, Arena.list(ElemT));
      Type *ConsT = checkExp(E->C);
      closeScope(Sc);
      unifyAt(E->Loc, NilT, ConsT, "case branches");
      Info.BinderTypes[E] = ElemT;
      return NilT;
    }

    case Expr::Kind::Ref:
      return Arena.ref(checkExp(E->A));

    case Expr::Kind::Deref: {
      Type *RefT = checkExp(E->A);
      Type *ElemT = Arena.freshVar(Level);
      unifyAt(E->Loc, Arena.ref(ElemT), RefT, "dereference");
      return ElemT;
    }

    case Expr::Kind::Assign: {
      Type *RefT = checkExp(E->A);
      Type *ValT = checkExp(E->B);
      unifyAt(E->Loc, Arena.ref(ValT), RefT, "assignment");
      return Arena.unitTy();
    }

    case Expr::Kind::Seq: {
      assert(!E->Items.empty() && "empty sequence");
      Type *T = nullptr;
      for (const Expr *Item : E->Items)
        T = checkExp(Item);
      return T;
    }

    case Expr::Kind::Raise: {
      Type *ExnT = checkExp(E->A);
      unifyAt(E->Loc, Arena.exnTy(), ExnT, "raise");
      return Arena.freshVar(Level);
    }

    case Expr::Kind::Handle: {
      Type *BodyT = checkExp(E->A);
      Scope Sc = openScope();
      if (E->ExnName.isValid()) {
        const Dec *ExnD = lookupExn(E->ExnName);
        if (!ExnD) {
          Diags.error(E->Loc, "unbound exception constructor '" +
                                  Names.text(E->ExnName) + "'");
        } else {
          Info.ExnRefs.emplace(E, ExnD);
          Type *ArgT = Info.ExnArgTypes.at(ExnD);
          if (E->BindName.isValid()) {
            if (!ArgT) {
              Diags.error(E->Loc, "exception '" + Names.text(E->ExnName) +
                                      "' carries no argument");
              ArgT = Arena.unitTy();
            }
            bindMono(E->BindName, ArgT);
            Info.BinderTypes[E] = ArgT;
          }
        }
      }
      Type *HandlerT = checkExp(E->B);
      closeScope(Sc);
      unifyAt(E->Loc, BodyT, HandlerT, "handle branches");
      return BodyT;
    }

    case Expr::Kind::ExnCon: {
      const Dec *ExnD = lookupExn(E->Name);
      if (!ExnD) {
        Diags.error(E->Loc, "unbound exception constructor '" +
                                Names.text(E->Name) + "'");
        if (E->A)
          checkExp(E->A);
        return Arena.exnTy();
      }
      Info.ExnRefs.emplace(E, ExnD);
      Type *ArgT = Info.ExnArgTypes.at(ExnD);
      if (E->A) {
        Type *GotT = checkExp(E->A);
        if (!ArgT)
          Diags.error(E->Loc, "exception '" + Names.text(E->Name) +
                                  "' carries no argument");
        else
          unifyAt(E->Loc, ArgT, GotT, "exception argument");
      } else if (ArgT) {
        Diags.error(E->Loc, "exception '" + Names.text(E->Name) +
                                "' requires an argument");
      }
      return Arena.exnTy();
    }

    case Expr::Kind::Annot: {
      Type *T = checkExp(E->A);
      unifyAt(E->Loc, tyFromAnnot(E->Ty), T, "type annotation");
      return T;
    }

    case Expr::Kind::Prim: {
      Type *ArgT = checkExp(E->A);
      switch (E->Prim) {
      case Expr::PrimKind::Print:
        unifyAt(E->Loc, Arena.stringTy(), ArgT, "print");
        return Arena.unitTy();
      case Expr::PrimKind::Itos:
        unifyAt(E->Loc, Arena.intTy(), ArgT, "itos");
        return Arena.stringTy();
      case Expr::PrimKind::Size:
        unifyAt(E->Loc, Arena.stringTy(), ArgT, "size");
        return Arena.intTy();
      case Expr::PrimKind::Work:
        unifyAt(E->Loc, Arena.intTy(), ArgT, "work");
        return Arena.unitTy();
      case Expr::PrimKind::Global:
        return ArgT; // identity; only region inference cares
      }
      return Arena.unitTy();
    }
    }
    assert(false && "unhandled expression kind");
    return Arena.unitTy();
  }

  Type *checkBinOp(const Expr *E) {
    Type *L = checkExp(E->A);
    Type *R = checkExp(E->B);
    switch (E->Op) {
    case BinOpKind::Add:
    case BinOpKind::Sub:
    case BinOpKind::Mul:
    case BinOpKind::Div:
    case BinOpKind::Mod:
      unifyAt(E->A->Loc, Arena.intTy(), L, "arithmetic operand");
      unifyAt(E->B->Loc, Arena.intTy(), R, "arithmetic operand");
      return Arena.intTy();
    case BinOpKind::Less:
    case BinOpKind::LessEq:
    case BinOpKind::Greater:
    case BinOpKind::GreaterEq:
      unifyAt(E->A->Loc, Arena.intTy(), L, "comparison operand");
      unifyAt(E->B->Loc, Arena.intTy(), R, "comparison operand");
      return Arena.boolTy();
    case BinOpKind::Eq:
    case BinOpKind::NotEq: {
      unifyAt(E->Loc, L, R, "equality");
      Type *T = resolve(L);
      // Overloaded equality on the ground scalar and string types;
      // unconstrained operands default to int.
      if (T->K == TypeKind::Var && !T->Rigid)
        unify(T, Arena.intTy());
      else if (T->K != TypeKind::Int && T->K != TypeKind::Bool &&
               T->K != TypeKind::String && T->K != TypeKind::Unit)
        Diags.error(E->Loc,
                    "equality is only defined on int, bool, string and "
                    "unit, not " +
                        printType(T));
      return Arena.boolTy();
    }
    case BinOpKind::StrEq:
      unifyAt(E->A->Loc, Arena.stringTy(), L, "string equality");
      unifyAt(E->B->Loc, Arena.stringTy(), R, "string equality");
      return Arena.boolTy();
    case BinOpKind::Concat:
      unifyAt(E->A->Loc, Arena.stringTy(), L, "string concatenation");
      unifyAt(E->B->Loc, Arena.stringTy(), R, "string concatenation");
      return Arena.stringTy();
    case BinOpKind::Cons:
      unifyAt(E->Loc, Arena.list(L), R, "cons");
      return Arena.list(L);
    case BinOpKind::AndAlso:
    case BinOpKind::OrElse:
      unifyAt(E->A->Loc, Arena.boolTy(), L, "boolean operand");
      unifyAt(E->B->Loc, Arena.boolTy(), R, "boolean operand");
      return Arena.boolTy();
    }
    return Arena.unitTy();
  }

  TypeArena &Arena;
  Interner &Names;
  DiagnosticEngine &Diags;
  TypeInfo &Info;
  uint32_t Level = 0;
  std::vector<std::pair<Symbol, EnvEntry>> Bindings;
  std::vector<std::pair<Symbol, const Dec *>> Exns;
  std::unordered_map<Symbol, Type *> AnnotVars;
};

} // namespace

bool rml::checkProgram(const Program &P, TypeArena &Arena, Interner &Names,
                       DiagnosticEngine &Diags, TypeInfo &Info) {
  Checker C(Arena, Names, Diags, Info);
  return C.run(P);
}
