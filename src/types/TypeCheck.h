//===- types/TypeCheck.h - Algorithm W --------------------------*- C++ -*-===//
//
// Part of RegionML, a reproduction of "Garbage-Collection Safety for
// Region-Based Type-Polymorphic Programs" (Elsman, PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hindley-Milner type inference (algorithm W with Remy levels and the
/// value restriction) over the MiniML AST. Besides checking the program,
/// it records everything region inference needs:
///
///  * the resolved ML type of every expression and binder,
///  * the ML type scheme of every val/fun declaration,
///  * for every use of a polymorphic binding, the types instantiated for
///    each quantified type variable (the data from which the paper's
///    substitution-coverage side condition is enforced, Section 3.4),
///  * exception constructor signatures (Section 4.4).
///
/// Scheme-bound type variables are frozen as rigid Type nodes, so the body
/// of a polymorphic function keeps referring to the very nodes listed in
/// its scheme — region inference relies on this identity.
///
//===----------------------------------------------------------------------===//

#ifndef RML_TYPES_TYPECHECK_H
#define RML_TYPES_TYPECHECK_H

#include "ast/Ast.h"
#include "support/Diagnostics.h"
#include "support/Interner.h"
#include "types/Type.h"

#include <unordered_map>
#include <vector>

namespace rml {

/// Instantiation record for one use of a polymorphic binding: Args[i] is
/// the type substituted for Scheme.Quantified[i].
struct InstInfo {
  const Dec *Origin = nullptr;
  std::vector<Type *> Args;
};

/// All typing facts produced by checkProgram.
struct TypeInfo {
  std::unordered_map<const Expr *, Type *> ExprTypes;
  /// Fn: parameter type. ListCase: element type of the scrutinised list.
  /// Handle: type of the bound exception argument (if any).
  std::unordered_map<const Expr *, Type *> BinderTypes;
  std::unordered_map<const Dec *, TypeScheme> DecSchemes;
  std::unordered_map<const Dec *, Type *> DecParamTypes; // Fun only
  std::unordered_map<const Dec *, Type *> ExnArgTypes;   // Exn (null = none)
  std::unordered_map<const Expr *, InstInfo> VarInsts;   // polymorphic uses
  /// Exception constructor uses/handlers resolved to their declaration.
  std::unordered_map<const Expr *, const Dec *> ExnRefs;

  Type *typeOf(const Expr *E) const {
    auto It = ExprTypes.find(E);
    assert(It != ExprTypes.end() && "expression was not typed");
    return resolve(It->second);
  }
  Type *binderType(const Expr *E) const {
    auto It = BinderTypes.find(E);
    assert(It != BinderTypes.end() && "binder was not typed");
    return resolve(It->second);
  }
};

/// Runs algorithm W over \p P. Returns false (after reporting through
/// \p Diags) if the program is ill-typed; \p Info is still filled for the
/// prefix that checked.
bool checkProgram(const Program &P, TypeArena &Arena, Interner &Names,
                  DiagnosticEngine &Diags, TypeInfo &Info);

} // namespace rml

#endif // RML_TYPES_TYPECHECK_H
