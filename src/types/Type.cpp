//===- types/Type.cpp -----------------------------------------------------===//

#include "types/Type.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

using namespace rml;

Type *rml::resolve(Type *T) {
  assert(T && "resolve(null)");
  while (T->K == TypeKind::Var && T->Link) {
    if (T->Link->K == TypeKind::Var && T->Link->Link)
      T->Link = T->Link->Link; // path compression
    T = T->Link;
  }
  return T;
}

bool rml::occursIn(const Type *Var, Type *T) {
  T = resolve(T);
  if (T == Var)
    return true;
  if (T->A && occursIn(Var, T->A))
    return true;
  if (T->B && occursIn(Var, T->B))
    return true;
  return false;
}

/// Lowers the level of every unbound variable in \p T to at most
/// \p Level, so generalisation never quantifies a variable that leaked
/// into an outer scope through unification.
static void lowerLevels(Type *T, uint32_t Level) {
  T = resolve(T);
  if (T->K == TypeKind::Var) {
    if (T->Level > Level)
      T->Level = Level;
    return;
  }
  if (T->A)
    lowerLevels(T->A, Level);
  if (T->B)
    lowerLevels(T->B, Level);
}

bool rml::unify(Type *A, Type *B) {
  A = resolve(A);
  B = resolve(B);
  if (A == B)
    return true;
  if (A->K == TypeKind::Var && !A->Rigid) {
    if (occursIn(A, B))
      return false;
    lowerLevels(B, A->Level);
    A->Link = B;
    return true;
  }
  if (B->K == TypeKind::Var && !B->Rigid)
    return unify(B, A);
  if (A->K != B->K)
    return false;
  switch (A->K) {
  case TypeKind::Var: // two distinct rigid variables
    return false;
  case TypeKind::Int:
  case TypeKind::Bool:
  case TypeKind::String:
  case TypeKind::Unit:
  case TypeKind::Exn:
    return true;
  case TypeKind::Arrow:
  case TypeKind::Pair:
    return unify(A->A, B->A) && unify(A->B, B->B);
  case TypeKind::List:
  case TypeKind::Ref:
    return unify(A->A, B->A);
  }
  return false;
}

void rml::collectGeneralizable(Type *T, uint32_t Level,
                               std::vector<Type *> &Out) {
  T = resolve(T);
  if (T->K == TypeKind::Var) {
    if (!T->Rigid && T->Level > Level &&
        std::find(Out.begin(), Out.end(), T) == Out.end())
      Out.push_back(T);
    return;
  }
  if (T->A)
    collectGeneralizable(T->A, Level, Out);
  if (T->B)
    collectGeneralizable(T->B, Level, Out);
}

void rml::collectFreeVars(Type *T, std::vector<Type *> &Out) {
  collectGeneralizable(T, 0, Out);
}

void rml::collectAllVars(Type *T, std::vector<Type *> &Out) {
  T = resolve(T);
  if (T->K == TypeKind::Var) {
    if (std::find(Out.begin(), Out.end(), T) == Out.end())
      Out.push_back(T);
    return;
  }
  if (T->A)
    collectAllVars(T->A, Out);
  if (T->B)
    collectAllVars(T->B, Out);
}

namespace {
/// Assigns 'a, 'b, ... to variables in order of first appearance.
class TypePrinter {
public:
  std::string print(Type *T, bool Paren = false) {
    T = resolve(T);
    switch (T->K) {
    case TypeKind::Var:
      return name(T);
    case TypeKind::Int:
      return "int";
    case TypeKind::Bool:
      return "bool";
    case TypeKind::String:
      return "string";
    case TypeKind::Unit:
      return "unit";
    case TypeKind::Exn:
      return "exn";
    case TypeKind::Arrow: {
      std::string S = print(T->A, true) + " -> " + print(T->B);
      return Paren ? "(" + S + ")" : S;
    }
    case TypeKind::Pair: {
      std::string S = print(T->A, true) + " * " + print(T->B, true);
      return Paren ? "(" + S + ")" : S;
    }
    case TypeKind::List:
      return print(T->A, true) + " list";
    case TypeKind::Ref:
      return print(T->A, true) + " ref";
    }
    return "?";
  }

  std::string name(Type *V) {
    auto It = Named.find(V);
    if (It != Named.end())
      return It->second;
    std::string N = "'";
    unsigned I = static_cast<unsigned>(Named.size());
    if (I < 26) {
      N += static_cast<char>('a' + I);
    } else {
      N += static_cast<char>('a' + I % 26);
      N += std::to_string(I / 26);
    }
    Named.emplace(V, N);
    return N;
  }

private:
  std::unordered_map<Type *, std::string> Named;
};
} // namespace

std::string rml::printType(Type *T) { return TypePrinter().print(T); }

std::string rml::printScheme(const TypeScheme &S) {
  TypePrinter P;
  std::string Out;
  if (!S.Quantified.empty()) {
    Out += "forall";
    for (Type *V : S.Quantified) {
      Out += ' ';
      Out += P.name(V);
    }
    Out += ". ";
  }
  Out += P.print(S.Body);
  return Out;
}
