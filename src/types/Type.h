//===- types/Type.h - Hindley-Milner types ----------------------*- C++ -*-===//
//
// Part of RegionML, a reproduction of "Garbage-Collection Safety for
// Region-Based Type-Polymorphic Programs" (Elsman, PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The underlying (non-region-annotated) ML type language: unification
/// variables with Remy-style levels for efficient let-generalisation, the
/// ground types of MiniML, and ML type schemes. Region inference consumes
/// the fully resolved types produced here and "spreads" region and effect
/// annotations over them (Section 4.1 of the paper).
///
//===----------------------------------------------------------------------===//

#ifndef RML_TYPES_TYPE_H
#define RML_TYPES_TYPE_H

#include "support/Interner.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace rml {

struct Type;

/// Constructors of the ML type language.
enum class TypeKind : uint8_t {
  Var,    // unification variable or (after generalisation) scheme-bound var
  Int,
  Bool,
  String,
  Unit,
  Exn,
  Arrow, // A -> B
  Pair,  // A * B
  List,  // A list
  Ref,   // A ref
};

/// An ML type node. Var nodes act as union-find entries through Link.
/// Types are owned by a TypeArena and freely shared; only Var nodes are
/// mutated (path-compressing resolution, level adjustment, binding).
struct Type {
  TypeKind K;
  Type *A = nullptr; // Arrow lhs / Pair lhs / List elem / Ref elem
  Type *B = nullptr; // Arrow rhs / Pair rhs

  // Var fields.
  Type *Link = nullptr;   // bound unification variable
  uint32_t VarId = 0;     // stable identity for printing and maps
  uint32_t Level = 0;     // Remy level at creation; lowered by unification
  bool Rigid = false;     // scheme-bound variable (never unifies with a
                          // different constructor; used when checking
                          // explicit annotations)

  explicit Type(TypeKind K) : K(K) {}
};

/// An ML type scheme: forall Quantified . Body.
struct TypeScheme {
  std::vector<Type *> Quantified; // Var nodes marked Rigid
  Type *Body = nullptr;

  bool isMono() const { return Quantified.empty(); }
};

/// Allocates and resolves ML types.
class TypeArena {
public:
  Type *make(TypeKind K, Type *A = nullptr, Type *B = nullptr) {
    Nodes.push_back(std::make_unique<Type>(K));
    Type *T = Nodes.back().get();
    T->A = A;
    T->B = B;
    return T;
  }

  Type *freshVar(uint32_t Level) {
    Type *T = make(TypeKind::Var);
    T->VarId = NextVarId++;
    T->Level = Level;
    return T;
  }

  /// Ground types are hash-consed singletons.
  Type *intTy() { return single(TypeKind::Int, IntT); }
  Type *boolTy() { return single(TypeKind::Bool, BoolT); }
  Type *stringTy() { return single(TypeKind::String, StringT); }
  Type *unitTy() { return single(TypeKind::Unit, UnitT); }
  Type *exnTy() { return single(TypeKind::Exn, ExnT); }
  Type *arrow(Type *A, Type *B) { return make(TypeKind::Arrow, A, B); }
  Type *pair(Type *A, Type *B) { return make(TypeKind::Pair, A, B); }
  Type *list(Type *A) { return make(TypeKind::List, A); }
  Type *ref(Type *A) { return make(TypeKind::Ref, A); }

  size_t size() const { return Nodes.size(); }

private:
  Type *single(TypeKind K, Type *&Slot) {
    if (!Slot)
      Slot = make(K);
    return Slot;
  }

  std::vector<std::unique_ptr<Type>> Nodes;
  uint32_t NextVarId = 0;
  Type *IntT = nullptr, *BoolT = nullptr, *StringT = nullptr,
       *UnitT = nullptr, *ExnT = nullptr;
};

/// Follows Var links with path compression; the result is either a
/// non-Var node or an unbound Var.
Type *resolve(Type *T);

/// Structural unification. Returns false (without diagnostics) on
/// constructor clash or occurs-check failure; the caller reports.
bool unify(Type *A, Type *B);

/// Collects the unbound variables of \p T with level greater than
/// \p Level, in first-occurrence order (deterministic generalisation).
void collectGeneralizable(Type *T, uint32_t Level, std::vector<Type *> &Out);

/// Collects all unbound variables of \p T in first-occurrence order.
void collectFreeVars(Type *T, std::vector<Type *> &Out);

/// Collects every variable of \p T, including rigid (scheme-bound) ones,
/// in first-occurrence order. Used by the spurious-type-variable analysis,
/// which reasons about scheme-bound variables.
void collectAllVars(Type *T, std::vector<Type *> &Out);

/// True if unbound variable \p Var occurs in \p T.
bool occursIn(const Type *Var, Type *T);

/// Renders \p T with 'a, 'b, ... names assigned in order of appearance.
std::string printType(Type *T);

/// Renders a scheme as "forall 'a 'b. ty".
std::string printScheme(const TypeScheme &S);

} // namespace rml

#endif // RML_TYPES_TYPE_H
