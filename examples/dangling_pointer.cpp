//===- examples/dangling_pointer.cpp - Figure 1, live ---------------------===//
//
// Runs the paper's Figure 1 program — a composition capturing a dead
// string in a closure — under the three strategies:
//
//   rg  : the string's region is kept alive through the spurious type
//         variable's arrow effect; the GC runs and the program finishes.
//   rg- : the pre-paper system deallocates the region; when `work`
//         triggers a collection, the GC traces h and finds a pointer into
//         the dead region — the paper's crash, reported as a
//         DanglingPointer outcome.
//   r   : dangling pointers are permitted (no GC); the program finishes
//         because it never dereferences the dead value.
//
//===----------------------------------------------------------------------===//

#include "bench/Programs.h"
#include "core/Pipeline.h"

#include <cstdio>

using namespace rml;

static const char *outcomeName(rt::RunOutcome O) {
  switch (O) {
  case rt::RunOutcome::Ok:
    return "ok";
  case rt::RunOutcome::UncaughtException:
    return "uncaught exception";
  case rt::RunOutcome::DanglingPointer:
    return "DANGLING POINTER detected by the collector";
  case rt::RunOutcome::RuntimeError:
    return "runtime error";
  }
  return "?";
}

int main() {
  const std::string &Source = bench::danglingPointerProgram();
  std::printf("Figure 1: composing (fn x => (), fn () => \"oh\"^\"no\"),\n"
              "then triggering a collection while the composed closure is "
              "live.\n\n");

  for (Strategy S : {Strategy::Rg, Strategy::RgMinus, Strategy::R}) {
    Compiler C;
    CompileOptions Opts;
    Opts.Strat = S;
    auto Unit = C.compile(Source, Opts);
    if (!Unit) {
      std::printf("%-4s: compile failed\n%s\n", strategyName(S),
                  C.diagnostics().str().c_str());
      return 1;
    }
    rt::EvalOptions E;
    E.GcThresholdWords = 2048;
    E.RetainReleasedPages = true; // exact dangling detection
    rt::RunResult R = C.run(*Unit, E);
    std::printf("%-4s: %-45s (gc runs: %llu)\n", strategyName(S),
                outcomeName(R.Outcome),
                static_cast<unsigned long long>(R.Heap.GcCount));
    if (!R.Error.empty())
      std::printf("      %s\n", R.Error.c_str());
  }
  return 0;
}
