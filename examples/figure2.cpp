//===- examples/figure2.cpp - Regenerating Figure 2 -----------------------===//
//
// The paper's Figure 2 shows the Figure 1 program twice: (a) the unsound
// region annotation, where the dead string's region rho is deallocated
// inside the h binding, and (b) the sound annotation, where rho is bound
// around h's whole live range and appears in h's arrow effect. This
// example regenerates both from the same source: (a) is the rg-
// strategy's output, (b) is rg's.
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"

#include <cstdio>

using namespace rml;

namespace {

/// Trims the output to the "run" function (where Figure 2 lives).
std::string focusOnRun(const std::string &Program) {
  size_t Pos = Program.find("let val run");
  if (Pos == std::string::npos)
    return Program;
  return Program.substr(Pos);
}

} // namespace

int main() {
  // Figure 1's program, with the basis composition function.
  const char *Source =
      "fun compose fg = fn x => #1 fg (#2 fg x)\n"
      "fun run u =\n"
      "  let val h = compose (let val x = \"oh\" ^ \"no\"\n"
      "                       in (fn _ => (), fn v => x) end)\n"
      "      val w = work 20000\n"
      "  in h () end\n"
      ";run ()\n";

  struct Variant {
    const char *Title;
    Strategy S;
  } Variants[] = {
      {"(a) the unsound annotation (rg-): the string's region is bound "
       "inside the h binding",
       Strategy::RgMinus},
      {"(b) the sound annotation (rg): the region is bound around h's "
       "whole live range,\n    visible in h's arrow effect",
       Strategy::Rg},
  };

  for (const Variant &V : Variants) {
    Compiler C;
    CompileOptions Opts;
    Opts.Strat = V.S;
    auto Unit = C.compile(Source, Opts);
    if (!Unit) {
      std::printf("compile failed:\n%s\n", C.diagnostics().str().c_str());
      return 1;
    }
    std::printf("== Figure 2%s ==\n\n%s\n\n", V.Title,
                focusOnRun(C.printProgram(*Unit)).c_str());
  }
  std::printf("Spot the difference: under rg, h's latent arrow effect "
              "mentions the string's\nregion (kept alive); under rg- it "
              "does not, and the region's letregion sits\ninside the h "
              "binding — the dangling pointer of Figure 1.\n");
  return 0;
}
