//===- examples/region_profiles.cpp - Region-representation report --------===//
//
// Compiles each benchmark and reports what the region-representation
// analyses (Section 4.2) decided: letregions inserted, finite regions,
// tag-free regions, dropped formal region parameters — the analyses the
// paper's type-system change had to stay compatible with.
//
//===----------------------------------------------------------------------===//

#include "bench/Programs.h"
#include "core/Pipeline.h"

#include <cstdio>

using namespace rml;

int main() {
  std::printf("%-10s %9s %10s %8s %9s %9s\n", "program", "schemes",
              "letregion", "finite", "tagfree", "dropped");
  for (const bench::BenchProgram &P : bench::benchmarkSuite()) {
    Compiler C;
    auto Unit = C.compile(P.Source);
    if (!Unit) {
      std::printf("%-10s compile failed\n%s\n", P.Name.c_str(),
                  C.diagnostics().str().c_str());
      return 1;
    }
    std::printf("%-10s %9u %10u %8u %9u %5u/%-3u\n", P.Name.c_str(),
                Unit->Inferred.NumSchemes, Unit->Inferred.NumLetRegions,
                Unit->Mult.finiteCount(), Unit->Kinds.tagFreeCount(),
                Unit->Drops.DroppedFormals, Unit->Drops.TotalFormals);
  }

  // The runtime region profiler's view of one allocation-heavy program
  // (the MLKit region profiler's per-region numbers).
  std::printf("\nruntime region profile of 'msort' (top 6 regions):\n");
  Compiler C;
  auto Unit = C.compile(bench::findBenchmark("msort")->Source);
  if (!Unit)
    return 1;
  rt::RunResult R = C.run(*Unit);
  if (R.Outcome != rt::RunOutcome::Ok) {
    std::printf("run failed: %s\n", R.Error.c_str());
    return 1;
  }
  std::printf("  %-8s %-8s %12s %12s\n", "region", "kind", "instances",
              "alloc words");
  unsigned Shown = 0;
  for (const rt::RegionProfile &Prof : R.Regions) {
    if (Prof.AllocWords == 0 || Shown++ >= 6)
      break;
    std::printf("  r%-7u %-8s %12llu %12llu%s\n", Prof.StaticId,
                regionKindName(Prof.Kind),
                static_cast<unsigned long long>(Prof.Instances),
                static_cast<unsigned long long>(Prof.AllocWords),
                Prof.Finite ? "  [finite]" : "");
  }
  return 0;
}
