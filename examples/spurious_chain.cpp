//===- examples/spurious_chain.cpp - Figure 8, live -----------------------===//
//
// The Section 4.3 program: the spurious variable of `g` is instantiated
// for the spurious variable of `compose`, so only the transitive
// spurious-dependency tracking of the paper catches the chain. Prints
// the inferred schemes (compare with the paper's scheme for g) and runs
// the program under rg and rg-.
//
//===----------------------------------------------------------------------===//

#include "bench/Programs.h"
#include "core/Pipeline.h"

#include <cstdio>

using namespace rml;

int main() {
  const std::string &Source = bench::spuriousChainProgram();

  Compiler C;
  auto Unit = C.compile(Source);
  if (!Unit) {
    std::printf("compile failed:\n%s\n", C.diagnostics().str().c_str());
    return 1;
  }
  std::printf("scheme of compose (rg):\n  %s\n",
              C.schemeOf(*Unit, "compose").c_str());
  std::printf("scheme of g (rg):\n  %s\n", C.schemeOf(*Unit, "g").c_str());
  std::printf("spurious functions: %u of %u\n\n",
              Unit->Spurious.SpuriousFunctions,
              Unit->Spurious.TotalFunctions);

  for (Strategy S : {Strategy::Rg, Strategy::RgMinus}) {
    Compiler C2;
    CompileOptions Opts;
    Opts.Strat = S;
    auto U = C2.compile(Source, Opts);
    if (!U) {
      std::printf("%s: compile failed\n", strategyName(S));
      return 1;
    }
    rt::EvalOptions E;
    E.GcThresholdWords = 2048;
    E.RetainReleasedPages = true;
    rt::RunResult R = C2.run(*U, E);
    std::printf("%-4s: %s%s\n", strategyName(S),
                R.Outcome == rt::RunOutcome::Ok ? "ok" : "failed: ",
                R.Outcome == rt::RunOutcome::Ok ? "" : R.Error.c_str());
  }
  return 0;
}
