//===- examples/quickstart.cpp - RegionML in five minutes -----------------===//
//
// Compiles a small MiniML program under the paper's three strategies,
// prints the inferred region type scheme of the composition function
// (Section 2's type schemes (1)/(2)), the region-annotated program
// (Figure 2 style), and runs it on the region runtime.
//
// Build & run:  ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"

#include <cstdio>

using namespace rml;

int main() {
  const char *Source =
      "fun compose fg = fn x => #1 fg (#2 fg x)\n"
      "fun inc x = x + 1\n"
      "fun dbl x = x * 2\n"
      "val h = compose (inc, dbl)\n"
      ";h 20\n";

  std::printf("== source ==\n%s\n", Source);

  for (Strategy S : {Strategy::Rg, Strategy::RgMinus, Strategy::R}) {
    Compiler C;
    CompileOptions Opts;
    Opts.Strat = S;
    auto Unit = C.compile(Source, Opts);
    if (!Unit) {
      std::printf("compile failed under %s:\n%s\n", strategyName(S),
                  C.diagnostics().str().c_str());
      return 1;
    }
    std::printf("== strategy %s ==\n", strategyName(S));
    std::printf("scheme of compose:\n  %s\n",
                C.schemeOf(*Unit, "compose").c_str());
    std::printf("spurious functions: %u of %u; letregions: %u\n",
                Unit->Spurious.SpuriousFunctions,
                Unit->Spurious.TotalFunctions, Unit->Inferred.NumLetRegions);
    rt::RunResult R = C.run(*Unit);
    if (R.Outcome != rt::RunOutcome::Ok) {
      std::printf("run failed: %s\n", R.Error.c_str());
      return 1;
    }
    std::printf("result: %s   (allocated %llu words, %llu collections)\n\n",
                R.ResultText.c_str(),
                static_cast<unsigned long long>(R.Heap.AllocWords),
                static_cast<unsigned long long>(R.Heap.GcCount));
  }

  // The region-annotated program, Figure 2 style (rg).
  Compiler C;
  auto Unit = C.compile(Source);
  if (Unit)
    std::printf("== region-annotated program (rg) ==\n%s\n",
                C.printProgram(*Unit).c_str());
  return 0;
}
