//===- bench/bench_ablation.cpp - Spurious-scheme ablation ----------------===//
//
// Section 2 offers two sound schemes for spurious type variables:
//   (2) a fresh secondary effect variable per spurious variable,
//   (3) identifying it with the function's arrow-effect variable
//       (the MLKit choice; can enlarge region live ranges).
// This harness compiles and runs the suite under both modes and reports
// time and peak memory, plus the count of quantified effect variables
// (scheme size) — the trade-off the paper describes.
//
//===----------------------------------------------------------------------===//

#include "bench/Programs.h"
#include "core/Pipeline.h"

#include <benchmark/benchmark.h>

using namespace rml;

namespace {

void BM_SpuriousMode(benchmark::State &State, const std::string &Source,
                     SpuriousMode Mode) {
  Compiler C;
  CompileOptions Opts;
  Opts.Strat = Strategy::Rg;
  Opts.Spurious = Mode;
  auto Unit = C.compile(Source, Opts);
  if (!Unit) {
    State.SkipWithError("compile failed");
    return;
  }
  uint64_t Peak = 0, Gc = 0;
  for (auto _ : State) {
    rt::RunResult R = C.run(*Unit);
    if (R.Outcome != rt::RunOutcome::Ok) {
      State.SkipWithError(R.Error.c_str());
      return;
    }
    Peak = R.Heap.peakBytes();
    Gc = R.Heap.GcCount;
  }
  State.counters["peak_kb"] = static_cast<double>(Peak) / 1024.0;
  State.counters["gc"] = static_cast<double>(Gc);
  State.counters["effect_vars"] =
      static_cast<double>(Unit->Inferred.NumEffectVars);
}

} // namespace

int main(int argc, char **argv) {
  for (const bench::BenchProgram &P : bench::benchmarkSuite()) {
    benchmark::RegisterBenchmark(
        ("spurious_fresh/" + P.Name).c_str(),
        [Src = P.Source](benchmark::State &S) {
          BM_SpuriousMode(S, Src, SpuriousMode::FreshSecondary);
        });
    benchmark::RegisterBenchmark(
        ("spurious_identify/" + P.Name).c_str(),
        [Src = P.Source](benchmark::State &S) {
          BM_SpuriousMode(S, Src, SpuriousMode::IdentifyWithFun);
        });
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
