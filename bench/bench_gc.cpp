//===- bench/bench_gc.cpp - Runtime micro-benchmarks ----------------------===//
//
// google-benchmark microbenchmarks of the region runtime: allocation
// throughput, letregion create/release, collection cost as a function of
// live data, and GC-on vs GC-off allocation (the r strategy's advantage).
//
//===----------------------------------------------------------------------===//

#include "rt/Gc.h"
#include "rt/Region.h"

#include <benchmark/benchmark.h>

using namespace rml;
using namespace rml::rt;

namespace {

void BM_RegionAlloc(benchmark::State &State) {
  RegionHeap Heap;
  uint32_t R = Heap.create(1, RegionKind::Pair, 0);
  for (auto _ : State) {
    uint64_t *P = Heap.alloc(R, 2);
    P[0] = boxScalar(1);
    P[1] = boxScalar(2);
    benchmark::DoNotOptimize(P);
    if (Heap.allocSinceGc() > 1 << 20) {
      // Roll the region over to keep memory bounded.
      Heap.release(R);
      R = Heap.create(1, RegionKind::Pair, 0);
      Heap.resetAllocSinceGc();
    }
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_RegionAlloc);

void BM_LetregionCreateRelease(benchmark::State &State) {
  RegionHeap Heap;
  for (auto _ : State) {
    uint32_t R = Heap.create(2, RegionKind::Mixed, 0);
    uint64_t *P = Heap.alloc(R, 3);
    benchmark::DoNotOptimize(P);
    Heap.release(R);
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_LetregionCreateRelease);

void BM_FiniteRegionCreateRelease(benchmark::State &State) {
  RegionHeap Heap;
  for (auto _ : State) {
    uint32_t R = Heap.create(3, RegionKind::Pair, /*FiniteWords=*/3);
    uint64_t *P = Heap.alloc(R, 3);
    benchmark::DoNotOptimize(P);
    Heap.release(R);
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_FiniteRegionCreateRelease);

/// Collection cost scales with live data, not garbage (copying GC).
void BM_CollectLiveList(benchmark::State &State) {
  const int64_t Live = State.range(0);
  for (auto _ : State) {
    State.PauseTiming();
    RegionHeap Heap;
    uint32_t R = Heap.create(1, RegionKind::Cons, 0);
    Value Head = NilValue;
    for (int64_t I = 0; I < Live; ++I) {
      uint64_t *Cell = Heap.alloc(R, 2);
      Cell[0] = boxScalar(I);
      Cell[1] = Head;
      Head = fromPtr(Cell);
    }
    // Garbage: twice as many dead cells.
    for (int64_t I = 0; I < 2 * Live; ++I) {
      uint64_t *Cell = Heap.alloc(R, 2);
      Cell[0] = boxScalar(I);
      Cell[1] = NilValue;
    }
    State.ResumeTiming();
    std::vector<Value *> Roots{&Head};
    GcResult G = collectGarbage(Heap, Roots);
    benchmark::DoNotOptimize(G.CopiedWords);
    if (!G.Ok)
      State.SkipWithError("dangling pointer in benchmark heap");
  }
  State.SetItemsProcessed(State.iterations() * Live);
}
BENCHMARK(BM_CollectLiveList)->Arg(1000)->Arg(10000)->Arg(100000);

} // namespace

BENCHMARK_MAIN();
