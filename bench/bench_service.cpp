//===- bench/bench_service.cpp - Service throughput harness ---------------===//
//
// Cold vs warm (cache-hit) compile throughput of the concurrent service
// over the Figure 9 corpus, at 1, 4 and 8 workers. Like bench_fig9 this
// prints its table directly (custom main) rather than going through
// google-benchmark: each cell is one timed batch, and the cold cell
// needs a fresh service per measurement so the cache starts empty.
//
//   cold  — every request misses: 12 option variants (3 strategies x 2
//           spurious modes x check on/off) of every corpus program,
//           distinct cache keys throughout.
//   warm  — the identical batch resubmitted to the same service: every
//           request hits the cache.
//
// Requests in the first table are compile-only (Run = false): run time
// is identical on hit and miss — the cache addresses the static
// pipeline — so including it would only blur the measurement. The final
// lines report the warm/cold speedup (the cache's value) and the 1→N
// cold scaling (the pool's value; bounded by the machine's core count).
//
// The second table measures the *run* path (Run = true) over the same
// corpus: every request executes on the region runtime, drawing its
// heap's standard pages from the service's cross-request PagePool. The
// cold batch starts with an empty pool (every page is a fresh
// allocation); the warm batch reuses the pages the cold batch recycled,
// and the table reports that phase's pages-reused ratio next to the
// cold and warm run throughput.
//
// The third table decomposes a cold batch and its warm resubmission by
// pipeline phase (the service's per-phase aggregates): the warm column
// shows the static phases vanishing behind the cache while the runtime
// phase is paid in full both times.
//
//===----------------------------------------------------------------------===//

#include "service/Service.h"

#include "bench/Programs.h"

#include <chrono>
#include <cstdio>
#include <vector>

using namespace rml;
using namespace rml::service;

namespace {

/// Every (program, options) pair in the batch: 12 variants per program.
std::vector<Request> buildBatch() {
  std::vector<Request> Batch;
  for (const bench::BenchProgram &P : bench::benchmarkSuite())
    for (Strategy S : {Strategy::Rg, Strategy::RgMinus, Strategy::R})
      for (SpuriousMode M :
           {SpuriousMode::FreshSecondary, SpuriousMode::IdentifyWithFun})
        for (bool Check : {true, false}) {
          Request Req;
          Req.Source = P.Source;
          Req.Opts.Strat = S;
          Req.Opts.Spurious = M;
          Req.Opts.Check = Check;
          Req.Run = false; // compile throughput; see the file comment
          Batch.push_back(std::move(Req));
        }
  return Batch;
}

double submitAll(Service &Svc, const std::vector<Request> &Batch) {
  auto T0 = std::chrono::steady_clock::now();
  std::vector<std::future<Response>> Futures;
  Futures.reserve(Batch.size());
  for (const Request &Req : Batch)
    Futures.push_back(Svc.submit(Req));
  for (auto &F : Futures) {
    Response R = F.get();
    if (!R.CompileOk)
      std::fprintf(stderr, "bench_service: unexpected compile failure\n");
    else if (R.Ran && R.Outcome != rt::RunOutcome::Ok)
      std::fprintf(stderr, "bench_service: unexpected run failure: %s\n",
                   R.Error.c_str());
  }
  auto T1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(T1 - T0).count();
}

/// The Run = true batch: every corpus program under rg, executed on the
/// region runtime with a threshold low enough to exercise the collector.
std::vector<Request> buildRunBatch() {
  std::vector<Request> Batch;
  for (const bench::BenchProgram &P : bench::benchmarkSuite()) {
    Request Req;
    Req.Source = P.Source;
    Req.Run = true;
    Req.EvalOpts.GcThresholdWords = 8 * 1024;
    Batch.push_back(std::move(Req));
  }
  return Batch;
}

void runModeTable() {
  const std::vector<Request> Batch = buildRunBatch();
  std::printf("\nservice run mode (Run = true), %zu run requests per "
              "batch, shared page pool\n",
              Batch.size());
  std::printf("%-8s %12s %12s %14s %12s\n", "workers", "cold req/s",
              "warm req/s", "pages reused", "pool pages");

  for (unsigned Workers : {1u, 4u, 8u}) {
    ServiceConfig Cfg;
    Cfg.Workers = Workers;
    Cfg.QueueCapacity = Batch.size();
    Cfg.CacheCapacity = 2 * Batch.size();
    Service Svc(Cfg);

    double ColdSecs = submitAll(Svc, Batch); // empty pool: fresh pages
    ServiceStats S0 = Svc.stats();
    double WarmSecs = submitAll(Svc, Batch); // recycled pages
    ServiceStats S1 = Svc.stats();

    uint64_t WarmHits = S1.PoolAcquireHits - S0.PoolAcquireHits;
    uint64_t WarmMisses = S1.PoolAcquireMisses - S0.PoolAcquireMisses;
    double Reused = WarmHits + WarmMisses
                        ? 100.0 * WarmHits / (WarmHits + WarmMisses)
                        : 0.0;
    std::printf("%-8u %12.1f %12.1f %13.1f%% %12llu\n", Workers,
                Batch.size() / ColdSecs, Batch.size() / WarmSecs, Reused,
                static_cast<unsigned long long>(S1.PoolFreePages));
  }
}

/// Where the time goes, per pipeline phase: the cold batch pays every
/// static phase plus the run; the warm (cached) batch re-pays only the
/// runtime phase — skipped cache-hit profiles carry no nanos, so the
/// warm column shows the static pipeline vanishing.
void phaseBreakdownTable() {
  const std::vector<Request> Batch = buildRunBatch();
  ServiceConfig Cfg;
  Cfg.Workers = 4;
  Cfg.QueueCapacity = Batch.size();
  Cfg.CacheCapacity = 2 * Batch.size();
  Service Svc(Cfg);

  submitAll(Svc, Batch); // cold: every request compiles
  ServiceStats S0 = Svc.stats();
  submitAll(Svc, Batch); // warm: every request hits the cache
  ServiceStats S1 = Svc.stats();

  std::printf("\nphase breakdown (4 workers, %zu run requests per batch)\n",
              Batch.size());
  std::printf("%-14s %12s %12s\n", "phase", "cold (ms)", "warm (ms)");
  uint64_t ColdTotal = 0, WarmTotal = 0;
  for (size_t I = 0; I < S1.Phases.size(); ++I) {
    uint64_t Cold = S0.Phases[I].SumNanos;
    uint64_t Warm = S1.Phases[I].SumNanos - Cold;
    ColdTotal += Cold;
    WarmTotal += Warm;
    std::printf("%-14s %12.3f %12.3f\n", S1.Phases[I].Name.c_str(),
                Cold / 1e6, Warm / 1e6);
  }
  std::printf("%-14s %12.3f %12.3f\n", "total", ColdTotal / 1e6,
              WarmTotal / 1e6);
}

} // namespace

int main() {
  const std::vector<Request> Batch = buildBatch();
  std::printf("service throughput, %zu compile requests per batch "
              "(%zu programs x 12 option variants)\n",
              Batch.size(), bench::benchmarkSuite().size());
  std::printf("%-8s %12s %12s %12s %9s\n", "workers", "cold req/s",
              "warm req/s", "warm/cold", "hit rate");

  double Cold1 = 0, ColdBest = 0;
  for (unsigned Workers : {1u, 4u, 8u}) {
    ServiceConfig Cfg;
    Cfg.Workers = Workers;
    Cfg.QueueCapacity = Batch.size(); // no producer-side stalls
    Cfg.CacheCapacity = 2 * Batch.size();
    Service Svc(Cfg);

    double ColdSecs = submitAll(Svc, Batch); // all misses
    double WarmSecs = submitAll(Svc, Batch); // all hits

    ServiceStats S = Svc.stats();
    double ColdRate = Batch.size() / ColdSecs;
    double WarmRate = Batch.size() / WarmSecs;
    std::printf("%-8u %12.1f %12.1f %11.1fx %8.1f%%\n", Workers, ColdRate,
                WarmRate, WarmRate / ColdRate,
                100.0 * S.CacheHits / (S.CacheHits + S.CacheMisses));
    if (Workers == 1)
      Cold1 = ColdRate;
    if (ColdRate > ColdBest)
      ColdBest = ColdRate;
  }

  std::printf("\ncold scaling best/1-worker: %.2fx (hardware threads: %u)\n",
              Cold1 > 0 ? ColdBest / Cold1 : 0.0,
              std::thread::hardware_concurrency());

  runModeTable();
  phaseBreakdownTable();
  return 0;
}
