//===- bench/bench_service.cpp - Service throughput harness ---------------===//
//
// Cold vs warm (cache-hit) compile throughput of the concurrent service
// over the Figure 9 corpus, at 1, 4 and 8 workers. Like bench_fig9 this
// prints its table directly (custom main) rather than going through
// google-benchmark: each cell is one timed batch, and the cold cell
// needs a fresh service per measurement so the cache starts empty.
//
//   cold  — every request misses: 12 option variants (3 strategies x 2
//           spurious modes x check on/off) of every corpus program,
//           distinct cache keys throughout.
//   warm  — the identical batch resubmitted to the same service: every
//           request hits the cache.
//
// Requests in the first table are compile-only (Run = false): run time
// is identical on hit and miss — the cache addresses the static
// pipeline — so including it would only blur the measurement. The final
// lines report the warm/cold speedup (the cache's value) and the 1→N
// cold scaling (the pool's value; bounded by the machine's core count).
//
// The second table measures the *run* path (Run = true) over the same
// corpus: every request executes on the region runtime, drawing its
// heap's standard pages from the service's cross-request PagePool. The
// cold batch starts with an empty pool (every page is a fresh
// allocation); the warm batch reuses the pages the cold batch recycled,
// and the table reports that phase's pages-reused ratio next to the
// cold and warm run throughput.
//
// The third table decomposes a cold batch and its warm resubmission by
// pipeline phase (the service's per-phase aggregates): the warm column
// shows the static phases vanishing behind the cache while the runtime
// phase is paid in full both times.
//
//===----------------------------------------------------------------------===//

#include "service/Hash.h"
#include "service/Service.h"

#include "bench/Programs.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <vector>

using namespace rml;
using namespace rml::service;

namespace {

/// Every (program, options) pair in the batch: 12 variants per program.
std::vector<Request> buildBatch() {
  std::vector<Request> Batch;
  for (const bench::BenchProgram &P : bench::benchmarkSuite())
    for (Strategy S : {Strategy::Rg, Strategy::RgMinus, Strategy::R})
      for (SpuriousMode M :
           {SpuriousMode::FreshSecondary, SpuriousMode::IdentifyWithFun})
        for (bool Check : {true, false}) {
          Request Req;
          Req.Source = P.Source;
          Req.Opts.Strat = S;
          Req.Opts.Spurious = M;
          Req.Opts.Check = Check;
          Req.Run = false; // compile throughput; see the file comment
          Batch.push_back(std::move(Req));
        }
  return Batch;
}

double submitAll(Service &Svc, const std::vector<Request> &Batch) {
  auto T0 = std::chrono::steady_clock::now();
  std::vector<std::future<Response>> Futures;
  Futures.reserve(Batch.size());
  for (const Request &Req : Batch)
    Futures.push_back(Svc.submit(Req));
  for (auto &F : Futures) {
    Response R = F.get();
    if (!R.CompileOk)
      std::fprintf(stderr, "bench_service: unexpected compile failure\n");
    else if (R.Ran && R.Outcome != rt::RunOutcome::Ok)
      std::fprintf(stderr, "bench_service: unexpected run failure: %s\n",
                   R.Error.c_str());
  }
  auto T1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(T1 - T0).count();
}

/// The Run = true batch: every corpus program under rg, executed on the
/// region runtime with a threshold low enough to exercise the collector.
std::vector<Request> buildRunBatch() {
  std::vector<Request> Batch;
  for (const bench::BenchProgram &P : bench::benchmarkSuite()) {
    Request Req;
    Req.Source = P.Source;
    Req.Run = true;
    Req.EvalOpts.GcThresholdWords = 8 * 1024;
    Batch.push_back(std::move(Req));
  }
  return Batch;
}

void runModeTable() {
  const std::vector<Request> Batch = buildRunBatch();
  std::printf("\nservice run mode (Run = true), %zu run requests per "
              "batch, shared page pool\n",
              Batch.size());
  std::printf("%-8s %12s %12s %14s %12s %10s %8s\n", "workers", "cold req/s",
              "warm req/s", "pages reused", "pool pages", "locks/req",
              "steals");

  for (unsigned Workers : {1u, 4u, 8u}) {
    ServiceConfig Cfg;
    Cfg.Workers = Workers;
    Cfg.QueueCapacity = Batch.size();
    Cfg.CacheCapacity = 2 * Batch.size();
    Service Svc(Cfg);

    double ColdSecs = submitAll(Svc, Batch); // empty pool: fresh pages
    ServiceStats S0 = Svc.stats();
    double WarmSecs = submitAll(Svc, Batch); // recycled pages
    ServiceStats S1 = Svc.stats();

    uint64_t WarmHits = S1.PoolAcquireHits - S0.PoolAcquireHits;
    uint64_t WarmMisses = S1.PoolAcquireMisses - S0.PoolAcquireMisses;
    double Reused = WarmHits + WarmMisses
                        ? 100.0 * WarmHits / (WarmHits + WarmMisses)
                        : 0.0;
    // Contention figure of merit: the v2 pool's home-shard fast path is
    // lock-free, so mutex acquisitions per request (steal scans and
    // trims only) should sit far below the pages-per-request rate that
    // the v1 single-mutex pool paid.
    double LocksPerReq =
        static_cast<double>(S1.PoolLockAcquires) / (2.0 * Batch.size());
    std::printf("%-8u %12.1f %12.1f %13.1f%% %12llu %10.2f %8llu\n", Workers,
                Batch.size() / ColdSecs, Batch.size() / WarmSecs, Reused,
                static_cast<unsigned long long>(S1.PoolFreePages), LocksPerReq,
                static_cast<unsigned long long>(S1.PoolSteals));
  }
}

/// The persistent tier's value: a cold *process* (empty memory cache,
/// empty directory) pays the full compile for every request and writes
/// through; a second cold process pointed at the same directory serves
/// the whole batch from disk without compiling. Both services start
/// with an empty memory tier, so the delta is purely the disk tier.
void diskTierTable() {
  namespace fs = std::filesystem;
  const std::vector<Request> Batch = buildBatch();
  fs::path Dir = fs::temp_directory_path() / "rml_bench_disk_cache";
  fs::remove_all(Dir);

  std::printf("\npersistent disk tier (fresh process each row, shared "
              "--cache-dir, %zu compile requests)\n",
              Batch.size());
  std::printf("%-8s %14s %18s %12s %11s\n", "workers", "cold-dir req/s",
              "warm-dir req/s", "disk hits", "speedup");

  for (unsigned Workers : {1u, 4u, 8u}) {
    ServiceConfig Cfg;
    Cfg.Workers = Workers;
    Cfg.QueueCapacity = Batch.size();
    Cfg.CacheCapacity = 2 * Batch.size();
    Cfg.CacheDir = Dir.string();

    fs::remove_all(Dir);
    double ColdSecs, WarmSecs;
    uint64_t DiskHits;
    {
      Service Cold(Cfg); // empty directory: misses + write-through
      ColdSecs = submitAll(Cold, Batch);
    }
    {
      Service Warm(Cfg); // fresh memory tier, populated directory
      WarmSecs = submitAll(Warm, Batch);
      DiskHits = Warm.stats().DiskHits;
    }
    std::printf("%-8u %14.1f %18.1f %9llu/%zu %10.1fx\n", Workers,
                Batch.size() / ColdSecs, Batch.size() / WarmSecs,
                static_cast<unsigned long long>(DiskHits), Batch.size(),
                ColdSecs / WarmSecs);
  }
  fs::remove_all(Dir);
}

/// The flat runnable artifacts' value: the same fresh-process pair, but
/// with Run = true. The warm process executes every request straight
/// from the disk entries' embedded flat units — zero compile phases —
/// so its advantage is the whole static pipeline, paid only by the cold
/// row. disk hydrations must stay 0: a nonzero count would mean the
/// "hits" silently recompiled.
void diskRunTable() {
  namespace fs = std::filesystem;
  const std::vector<Request> Batch = buildRunBatch();
  fs::path Dir = fs::temp_directory_path() / "rml_bench_disk_run";
  fs::remove_all(Dir);

  std::printf("\npersistent disk tier, Run = true (fresh process each row, "
              "shared --cache-dir, %zu run requests)\n",
              Batch.size());
  std::printf("%-8s %14s %18s %12s %12s %11s\n", "workers", "cold-dir req/s",
              "warm-dir req/s", "disk hits", "hydrations", "speedup");

  for (unsigned Workers : {1u, 4u, 8u}) {
    ServiceConfig Cfg;
    Cfg.Workers = Workers;
    Cfg.QueueCapacity = Batch.size();
    Cfg.CacheCapacity = 2 * Batch.size();
    Cfg.CacheDir = Dir.string();

    fs::remove_all(Dir);
    double ColdSecs, WarmSecs;
    uint64_t DiskHits, Hydrations;
    {
      Service Cold(Cfg); // empty directory: full compiles + runs
      ColdSecs = submitAll(Cold, Batch);
    }
    {
      Service Warm(Cfg); // fresh memory tier: flat units from disk + runs
      WarmSecs = submitAll(Warm, Batch);
      DiskHits = Warm.stats().DiskHits;
      Hydrations = Warm.stats().DiskHydrations;
    }
    std::printf("%-8u %14.1f %18.1f %9llu/%zu %12llu %10.1fx\n", Workers,
                Batch.size() / ColdSecs, Batch.size() / WarmSecs,
                static_cast<unsigned long long>(DiskHits), Batch.size(),
                static_cast<unsigned long long>(Hydrations),
                ColdSecs / WarmSecs);
  }
  fs::remove_all(Dir);
}

/// Where the time goes, per pipeline phase: the cold batch pays every
/// static phase plus the run; the warm (cached) batch re-pays only the
/// runtime phase — skipped cache-hit profiles carry no nanos, so the
/// warm column shows the static pipeline vanishing.
void phaseBreakdownTable() {
  const std::vector<Request> Batch = buildRunBatch();
  ServiceConfig Cfg;
  Cfg.Workers = 4;
  Cfg.QueueCapacity = Batch.size();
  Cfg.CacheCapacity = 2 * Batch.size();
  Service Svc(Cfg);

  submitAll(Svc, Batch); // cold: every request compiles
  ServiceStats S0 = Svc.stats();
  submitAll(Svc, Batch); // warm: every request hits the cache
  ServiceStats S1 = Svc.stats();

  std::printf("\nphase breakdown (4 workers, %zu run requests per batch)\n",
              Batch.size());
  std::printf("%-14s %12s %12s\n", "phase", "cold (ms)", "warm (ms)");
  uint64_t ColdTotal = 0, WarmTotal = 0;
  for (size_t I = 0; I < S1.Phases.size(); ++I) {
    uint64_t Cold = S0.Phases[I].SumNanos;
    uint64_t Warm = S1.Phases[I].SumNanos - Cold;
    ColdTotal += Cold;
    WarmTotal += Warm;
    std::printf("%-14s %12.3f %12.3f\n", S1.Phases[I].Name.c_str(),
                Cold / 1e6, Warm / 1e6);
  }
  std::printf("%-14s %12.3f %12.3f\n", "total", ColdTotal / 1e6,
              WarmTotal / 1e6);
}

/// One program of the heterogeneous corpus. Weight scales the number of
/// `work` bindings, so both the source length (the Ljf cost key) and
/// the runtime cost grow with it — the correlation Ljf banks on.
std::string gradedProgram(unsigned Weight) {
  std::string S = "fun run u =\n  let val w0 = work 100000\n";
  for (unsigned I = 1; I < Weight; ++I)
    S += "      val w" + std::to_string(I) + " = work 100000\n";
  S += "  in " + std::to_string(Weight) + " end\n;run ()\n";
  return S;
}

/// 15 light + 5 heavy run requests for an 8-worker service, heavies at
/// every 4th position (the last one at the end of the batch). This is
/// the regime where dequeue order moves the tail: under FIFO each
/// heavy starts only when its turn in the arrival order comes up, so
/// the late heavies are still running after everything else has
/// drained and the end of the schedule is ragged; Ljf front-loads all
/// five onto the 8 workers and back-fills with the light jobs, so the
/// workers go idle together. List-schedule simulation of this shape
/// puts Ljf's p95 at ~0.7-0.8x of FIFO's across cost jitter.
std::vector<Request> buildHeterogeneousBatch() {
  std::vector<Request> Batch;
  for (unsigned I = 0; I < 20; ++I) {
    Request Req;
    Req.Source = gradedProgram(I % 4 == 3 ? 5 : 1);
    Req.Run = true;
    Req.EvalOpts.GcThresholdWords = 8 * 1024;
    Batch.push_back(std::move(Req));
  }
  return Batch;
}

/// Replays the batch through a bare Scheduler to obtain the dequeue
/// order the service would use under \p Policy (cost keys stamped the
/// way Service::enqueue stamps them: source length, submission seq).
std::vector<size_t> dequeueOrder(SchedPolicy Policy,
                                 const std::vector<Request> &Batch) {
  std::unique_ptr<Scheduler> Sched = makeScheduler(Policy);
  for (size_t I = 0; I < Batch.size(); ++I) {
    ScheduledJob J;
    J.Req = Batch[I];
    J.CostKey = J.Req.Source.size();
    J.Seq = I;
    Sched->push(std::move(J));
  }
  std::vector<size_t> Order;
  while (!Sched->empty())
    Order.push_back(static_cast<size_t>(Sched->pop().Seq));
  return Order;
}

/// Ideal m-worker list schedule over serially measured costs: each job
/// in dequeue order starts on the earliest-free worker. This is what
/// the wall-clock table converges to once the host has >= m real
/// cores; deriving it from serial timings keeps the policy comparison
/// meaningful on small hosts where the workers time-share.
std::vector<double> modelCompletion(const std::vector<size_t> &Order,
                                    const std::vector<double> &CostMs,
                                    unsigned Workers) {
  std::vector<double> Free(Workers, 0.0);
  std::vector<double> Completion(CostMs.size(), 0.0);
  for (size_t Idx : Order) {
    auto Slot = std::min_element(Free.begin(), Free.end());
    *Slot += CostMs[Idx];
    Completion[Idx] = *Slot;
  }
  return Completion;
}

/// Sorted-vector percentile (nearest-rank on the closed interval).
double percentile(const std::vector<double> &Sorted, double Q) {
  size_t Idx = static_cast<size_t>(
      std::llround(Q * static_cast<double>(Sorted.size() - 1)));
  return Sorted[Idx];
}

struct LatencyResult {
  double P50Ms = 0, P95Ms = 0, P99Ms = 0, MaxMs = 0;
  std::vector<std::string> Results; // per-request ResultText
};

/// Submits the whole batch at t=0 through the callback API and measures
/// per-request completion latency under \p Policy.
LatencyResult measureLatency(SchedPolicy Policy,
                             const std::vector<Request> &Batch) {
  ServiceConfig Cfg;
  Cfg.Workers = 8;
  Cfg.QueueCapacity = Batch.size();
  Cfg.CacheCapacity = 2 * Batch.size();
  Cfg.Policy = Policy;
  Service Svc(Cfg);

  LatencyResult Out;
  Out.Results.resize(Batch.size());
  std::vector<uint64_t> EndNanos(Batch.size(), 0);
  std::atomic<size_t> Done{0};
  uint64_t T0 = traceNowNanos();
  for (size_t I = 0; I < Batch.size(); ++I)
    Svc.submit(Batch[I], [&, I](Response R) {
      // Runs on the worker thread; each callback owns its own slot.
      EndNanos[I] = traceNowNanos();
      Out.Results[I] = std::move(R.ResultText);
      Done.fetch_add(1, std::memory_order_release);
    });
  while (Done.load(std::memory_order_acquire) < Batch.size())
    std::this_thread::yield();

  std::vector<double> LatMs;
  LatMs.reserve(Batch.size());
  for (uint64_t End : EndNanos)
    LatMs.push_back((End - T0) / 1e6);
  std::sort(LatMs.begin(), LatMs.end());
  Out.P50Ms = percentile(LatMs, 0.50);
  Out.P95Ms = percentile(LatMs, 0.95);
  Out.P99Ms = percentile(LatMs, 0.99);
  Out.MaxMs = LatMs.back();
  return Out;
}

/// The tail-latency claim, measured: p50/p95/p99 per scheduler policy
/// over the heterogeneous corpus, plus a response-identity check (the
/// dequeue order must never change what a request computes).
void latencyTable() {
  const std::vector<Request> Batch = buildHeterogeneousBatch();
  std::printf("\nlatency by scheduler (8 workers, %zu mixed requests: "
              "15 light + 5 heavy)\n",
              Batch.size());
  std::printf("%-8s %12s %12s %12s %12s\n", "policy", "p50 (ms)", "p95 (ms)",
              "p99 (ms)", "max (ms)");

  LatencyResult Fifo = measureLatency(SchedPolicy::Fifo, Batch);
  LatencyResult Ljf = measureLatency(SchedPolicy::Ljf, Batch);
  std::printf("%-8s %12.2f %12.2f %12.2f %12.2f\n", "fifo", Fifo.P50Ms,
              Fifo.P95Ms, Fifo.P99Ms, Fifo.MaxMs);
  std::printf("%-8s %12.2f %12.2f %12.2f %12.2f\n", "ljf", Ljf.P50Ms,
              Ljf.P95Ms, Ljf.P99Ms, Ljf.MaxMs);
  std::printf("ljf p95 %.2fx of fifo; responses %s\n",
              Fifo.P95Ms > 0 ? Ljf.P95Ms / Fifo.P95Ms : 0.0,
              Fifo.Results == Ljf.Results ? "identical" : "DIFFER (bug!)");
  if (std::thread::hardware_concurrency() < 8)
    std::printf("(note: %u hardware thread(s) — the 8 workers time-share, "
                "which narrows the gap between the policies)\n",
                std::thread::hardware_concurrency());

  // Deterministic counterpart: serially measured per-request cost (one
  // worker, so no core sharing skews the timings) replayed through an
  // ideal 4-worker schedule under each policy's dequeue order.
  ServiceConfig SerialCfg;
  SerialCfg.Workers = 1;
  SerialCfg.QueueCapacity = Batch.size();
  SerialCfg.CacheCapacity = 2 * Batch.size();
  Service Serial(SerialCfg);
  std::vector<double> CostMs;
  for (const Request &Req : Batch) {
    Response R = Serial.submit(Req).get();
    double Ms = 0;
    for (const PhaseProfile &P : R.Profiles)
      if (!P.Skipped)
        Ms += P.WallNanos / 1e6;
    CostMs.push_back(Ms);
  }

  std::printf("\nmodeled on 8 dedicated cores (serial costs, list "
              "schedule)\n");
  std::printf("%-8s %12s %12s %12s %12s\n", "policy", "p50 (ms)", "p95 (ms)",
              "p99 (ms)", "max (ms)");
  double ModelP95[2] = {0, 0};
  const SchedPolicy Policies[2] = {SchedPolicy::Fifo, SchedPolicy::Ljf};
  for (int K = 0; K < 2; ++K) {
    std::vector<double> C =
        modelCompletion(dequeueOrder(Policies[K], Batch), CostMs, 8);
    std::sort(C.begin(), C.end());
    ModelP95[K] = percentile(C, 0.95);
    std::printf("%-8s %12.2f %12.2f %12.2f %12.2f\n",
                schedPolicyName(Policies[K]), percentile(C, 0.50),
                ModelP95[K], percentile(C, 0.99), C.back());
  }
  std::printf("ljf modeled p95 %.2fx of fifo\n",
              ModelP95[0] > 0 ? ModelP95[1] / ModelP95[0] : 0.0);
}

/// The learned cost model's convergence, replayed: before each pass the
/// table records what the model *would* predict for every request, the
/// pass then runs (cache disabled, so each completion feeds a full-cost
/// observation), and the row reports the mean relative error of those
/// predictions. Ground truth for a request is its mean measured cost
/// across all passes — a single run's wall time carries a few percent
/// of scheduler noise, and judging pass N against pass N's own noise
/// would hide the EWMA's variance reduction. Pass 1 predicts from the
/// bootstrap prior (bytes — ordinally useful, dimensionally wrong,
/// hence the ~100% error); pass 2 predicts from one observation; pass
/// 4 from the EWMA of three. The error must shrink down the rows.
void costModelReplayTable() {
  const std::vector<Request> Batch = buildHeterogeneousBatch();
  ServiceConfig Cfg;
  Cfg.Workers = 1; // serial: per-request costs are not core-shared
  Cfg.QueueCapacity = Batch.size();
  Cfg.CacheCapacity = 0; // every pass recompiles at full cost
  Service Svc(Cfg);

  const int Passes = 4;
  std::vector<std::vector<CostModel::Prediction>> Preds(Passes);
  std::vector<double> MeanActual(Batch.size(), 0);
  for (int Pass = 0; Pass < Passes; ++Pass) {
    Preds[Pass].reserve(Batch.size());
    for (const Request &Req : Batch)
      Preds[Pass].push_back(Svc.costModel().predict(
          hashCompileInputs(Req.Source, Req.Opts), Req.Source.size()));
    for (size_t I = 0; I < Batch.size(); ++I) {
      Response R = Svc.submit(Batch[I]).get();
      double ActualNanos = 0;
      for (const PhaseProfile &P : R.Profiles)
        if (!P.Skipped)
          ActualNanos += static_cast<double>(P.WallNanos);
      MeanActual[I] += ActualNanos / Passes;
    }
  }

  std::printf("\ncost model replay (1 worker, cache disabled, %zu run "
              "requests per pass)\n",
              Batch.size());
  std::printf("%-6s %22s %20s\n", "pass", "mean |pred-act|/act",
              "prior-based preds");
  double PrevErr = 0;
  bool Monotone = true;
  for (int Pass : {1, 2, 4}) {
    double ErrSum = 0;
    size_t PriorPreds = 0;
    for (size_t I = 0; I < Batch.size(); ++I) {
      const CostModel::Prediction &P = Preds[Pass - 1][I];
      if (MeanActual[I] > 0)
        ErrSum += std::abs(static_cast<double>(P.Nanos) - MeanActual[I]) /
                  MeanActual[I];
      if (P.FromPrior)
        ++PriorPreds;
    }
    double MeanErr = 100.0 * ErrSum / static_cast<double>(Batch.size());
    std::printf("%-6d %21.1f%% %17zu/%zu\n", Pass, MeanErr, PriorPreds,
                Batch.size());
    if (Pass > 1 && MeanErr > PrevErr)
      Monotone = false;
    PrevErr = MeanErr;
  }
  std::printf("prediction error %s over passes 1/2/4\n",
              Monotone ? "shrinks monotonically"
                       : "did NOT shrink monotonically (timing noise?)");
}

/// Figure-9-style capture-tracking counts per corpus program: closure
/// count, distinct captured region variables, and the escaped residue
/// (value-captured regions missing from the latent effect) under rg and
/// rg-. The capture sets are a static product of the shared region
/// inference, so the two strategy columns agree — what differs is what
/// the number means: rg's containment side conditions pin every escaped
/// region's letregion outside the closure's lifetime, while under rg-
/// the same (closure, region) pairs are exactly the dangling-pointer
/// window the paper closes (the figure1 demo dies tracing into one).
void captureTable() {
  struct Counts {
    size_t Closures = 0, Regions = 0, Escaped = 0;
  };
  auto countsOf = [](const std::string &Source, Strategy S) {
    Compiler C;
    CompileOptions Opts;
    Opts.Strat = S;
    Opts.Captures = true;
    auto Unit = C.compile(Source, Opts);
    Counts N;
    if (!Unit || !Unit->Captures)
      return N;
    std::set<uint32_t> Distinct;
    for (const ClosureCapture &CC : Unit->Captures->Closures) {
      ++N.Closures;
      Distinct.insert(CC.ViaValue.begin(), CC.ViaValue.end());
      Distinct.insert(CC.ViaEffect.begin(), CC.ViaEffect.end());
      std::vector<uint32_t> Residue;
      std::set_difference(CC.ViaValue.begin(), CC.ViaValue.end(),
                          CC.ViaEffect.begin(), CC.ViaEffect.end(),
                          std::back_inserter(Residue));
      N.Escaped += Residue.size();
    }
    N.Regions = Distinct.size();
    return N;
  };

  std::printf("\ncapture tracking (closures, captured region variables, "
              "escaped = value \\ latent)\n");
  std::printf("%-12s %9s %12s %12s %12s\n", "program", "closures",
              "regions(rg)", "escaped(rg)", "escaped(rg-)");
  for (const bench::BenchProgram &P : bench::benchmarkSuite()) {
    Counts Rg = countsOf(P.Source, Strategy::Rg);
    Counts RgMinus = countsOf(P.Source, Strategy::RgMinus);
    std::printf("%-12s %9zu %12zu %12zu %12zu\n", P.Name.c_str(),
                Rg.Closures, Rg.Regions, Rg.Escaped, RgMinus.Escaped);
  }
}

} // namespace

int main() {
  const std::vector<Request> Batch = buildBatch();
  std::printf("service throughput, %zu compile requests per batch "
              "(%zu programs x 12 option variants)\n",
              Batch.size(), bench::benchmarkSuite().size());
  std::printf("%-8s %12s %12s %12s %9s\n", "workers", "cold req/s",
              "warm req/s", "warm/cold", "hit rate");

  double Cold1 = 0, ColdBest = 0;
  for (unsigned Workers : {1u, 4u, 8u}) {
    ServiceConfig Cfg;
    Cfg.Workers = Workers;
    Cfg.QueueCapacity = Batch.size(); // no producer-side stalls
    Cfg.CacheCapacity = 2 * Batch.size();
    Service Svc(Cfg);

    double ColdSecs = submitAll(Svc, Batch); // all misses
    double WarmSecs = submitAll(Svc, Batch); // all hits

    ServiceStats S = Svc.stats();
    double ColdRate = Batch.size() / ColdSecs;
    double WarmRate = Batch.size() / WarmSecs;
    std::printf("%-8u %12.1f %12.1f %11.1fx %8.1f%%\n", Workers, ColdRate,
                WarmRate, WarmRate / ColdRate,
                100.0 * S.CacheHits / (S.CacheHits + S.CacheMisses));
    if (Workers == 1)
      Cold1 = ColdRate;
    if (ColdRate > ColdBest)
      ColdBest = ColdRate;
  }

  std::printf("\ncold scaling best/1-worker: %.2fx (hardware threads: %u)\n",
              Cold1 > 0 ? ColdBest / Cold1 : 0.0,
              std::thread::hardware_concurrency());

  runModeTable();
  diskTierTable();
  diskRunTable();
  phaseBreakdownTable();
  latencyTable();
  costModelReplayTable();
  captureTable();
  return 0;
}
