//===- bench/bench_inference.cpp - Compile-time benchmarks ----------------===//
//
// Section 4.2 claims the MLKit's region-inference-based pipeline
// recompiles quickly; this harness measures our pipeline's phases
// (parse+typecheck, spurious analysis, region inference, region check)
// per benchmark program and the scaling of inference with program size.
//
//===----------------------------------------------------------------------===//

#include "bench/Programs.h"
#include "core/Pipeline.h"

#include <benchmark/benchmark.h>

using namespace rml;

namespace {

void BM_FullCompile(benchmark::State &State, const std::string &Source,
                    Strategy S) {
  for (auto _ : State) {
    Compiler C;
    CompileOptions Opts;
    Opts.Strat = S;
    auto Unit = C.compile(Source, Opts);
    if (!Unit)
      State.SkipWithError("compile failed");
    benchmark::DoNotOptimize(Unit);
  }
}

/// Synthesises a program with N copies of a polymorphic HOF cluster, to
/// measure inference scaling.
std::string synthProgram(int N) {
  std::string Out = bench::basisSource();
  for (int I = 0; I < N; ++I) {
    std::string Id = std::to_string(I);
    // Each cluster: a polymorphic composition pipeline with a spurious
    // variable, used at two distinct instances (int and string).
    Out += "fun pipe" + Id + " f = compose (f, compose (id, id))\n";
    Out += "val use" + Id + " = (pipe" + Id + " (fn x => x + " + Id +
           ") 3, pipe" + Id + " (fn s => s ^ \"!\") \"a\")\n";
  }
  Out += ";0\n";
  return Out;
}

void BM_InferenceScaling(benchmark::State &State) {
  std::string Source = synthProgram(static_cast<int>(State.range(0)));
  for (auto _ : State) {
    Compiler C;
    auto Unit = C.compile(Source);
    if (!Unit)
      State.SkipWithError("compile failed");
    benchmark::DoNotOptimize(Unit);
  }
  State.SetComplexityN(State.range(0));
}

} // namespace

int main(int argc, char **argv) {
  for (const bench::BenchProgram &P : bench::benchmarkSuite()) {
    benchmark::RegisterBenchmark(("compile_rg/" + P.Name).c_str(),
                                 [Src = P.Source](benchmark::State &S) {
                                   BM_FullCompile(S, Src, Strategy::Rg);
                                 });
  }
  benchmark::RegisterBenchmark("compile_rg/suite_rgminus",
                               [](benchmark::State &S) {
                                 BM_FullCompile(
                                     S,
                                     bench::benchmarkSuite().front().Source,
                                     Strategy::RgMinus);
                               });
  benchmark::RegisterBenchmark("inference_scaling", BM_InferenceScaling)
      ->Arg(2)
      ->Arg(8)
      ->Arg(32)
      ->Complexity();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
