//===- bench/bench_fig9.cpp - The Figure 9 table ---------------------------===//
//
// Regenerates the paper's evaluation table (Figure 9): for every
// benchmark, lines of code, spurious functions / total functions,
// spurious boxed instantiations / total instantiations, whether the
// spurious treatment changed the generated program (diff), and execution
// time / resident memory / collection counts under the rg, rg- and r
// strategies.
//
// Absolute numbers differ from the paper (interpreter vs native MLKit
// code); the *shape* — rg ~ rg-, r faster but sometimes much larger
// memory, spurious functions rare, diff only with spurious functions —
// is the reproduced claim. See EXPERIMENTS.md.
//
// Usage: bench_fig9 [--reps N] [--bench NAME] [--csv]
//
//===----------------------------------------------------------------------===//

#include "bench/Programs.h"
#include "core/Pipeline.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace rml;

namespace {

/// A structural signature of the generated program that ignores effect
/// annotations: preorder (kind, at-region, bound-region). Two strategies
/// "differ" (the paper's diff column) when region placement differs.
void signature(const RExpr *E, std::string &Out) {
  if (!E)
    return;
  Out += static_cast<char>('A' + static_cast<int>(E->K));
  if (E->AtRho.isValid()) {
    Out += 'r';
    Out += std::to_string(E->AtRho.Id);
  }
  if (E->BoundRho.isValid()) {
    Out += 'L';
    Out += std::to_string(E->BoundRho.Id);
  }
  signature(E->A, Out);
  signature(E->B, Out);
  signature(E->C, Out);
  for (const RExpr *Item : E->Items)
    signature(Item, Out);
}

struct Measurement {
  double MeanMs = 0;
  double RelStddev = 0; // percent
  uint64_t PeakBytes = 0;
  uint64_t GcCount = 0;
  bool Ok = false;
  std::string Error;
};

Measurement measure(const std::string &Source, Strategy S, unsigned Reps) {
  Measurement M;
  Compiler C;
  CompileOptions Opts;
  Opts.Strat = S;
  auto Unit = C.compile(Source, Opts);
  if (!Unit) {
    M.Error = "compile failed";
    return M;
  }
  std::vector<double> Times;
  for (unsigned I = 0; I < Reps; ++I) {
    auto T0 = std::chrono::steady_clock::now();
    rt::RunResult R = C.run(*Unit);
    auto T1 = std::chrono::steady_clock::now();
    if (R.Outcome != rt::RunOutcome::Ok) {
      M.Error = R.Error;
      return M;
    }
    Times.push_back(
        std::chrono::duration<double, std::milli>(T1 - T0).count());
    M.PeakBytes = R.Heap.peakBytes();
    M.GcCount = R.Heap.GcCount;
  }
  double Sum = 0;
  for (double T : Times)
    Sum += T;
  M.MeanMs = Sum / Times.size();
  double Var = 0;
  for (double T : Times)
    Var += (T - M.MeanMs) * (T - M.MeanMs);
  M.RelStddev = Times.size() > 1 && M.MeanMs > 0
                    ? 100.0 * std::sqrt(Var / (Times.size() - 1)) / M.MeanMs
                    : 0;
  M.Ok = true;
  return M;
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Reps = 5;
  std::string Only;
  bool Csv = false;
  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--reps") && I + 1 < Argc)
      Reps = static_cast<unsigned>(std::atoi(Argv[++I]));
    else if (!std::strcmp(Argv[I], "--bench") && I + 1 < Argc)
      Only = Argv[++I];
    else if (!std::strcmp(Argv[I], "--csv"))
      Csv = true;
  }

  if (Csv)
    std::printf("program,loc,spurious_fcns,total_fcns,spurious_boxed_insts,"
                "total_insts,diff,rg_ms,rgminus_ms,r_ms,rg_rss_kb,"
                "rgminus_rss_kb,r_rss_kb,rg_gc,rgminus_gc\n");
  else
    std::printf("Figure 9 — benchmark programs under rg / rg- / r\n");
  if (!Csv) {
    std::printf("(times in ms with relative stddev; rss = peak region-heap "
                "bytes; %u reps)\n\n",
                Reps);
    std::printf(
        "%-8s %4s %7s %9s %4s | %13s %13s %13s | %9s %9s %9s | %6s %6s\n",
        "program", "loc", "fcns", "inst", "diff", "rg time", "rg- time",
        "r time", "rg rss", "rg- rss", "r rss", "rg gc", "rg- gc");
  }

  for (const bench::BenchProgram &P : bench::benchmarkSuite()) {
    if (!Only.empty() && P.Name != Only)
      continue;

    // Static columns from the rg compilation.
    Compiler Crg, Crgm;
    CompileOptions ORg, ORgm;
    ORg.Strat = Strategy::Rg;
    ORgm.Strat = Strategy::RgMinus;
    auto URg = Crg.compile(P.Source, ORg);
    auto URgm = Crgm.compile(P.Source, ORgm);
    if (!URg || !URgm) {
      std::printf("%-8s compile failed\n%s%s\n", P.Name.c_str(),
                  Crg.diagnostics().str().c_str(),
                  Crgm.diagnostics().str().c_str());
      return 1;
    }
    std::string SigRg, SigRgm;
    signature(URg->program().Root, SigRg);
    signature(URgm->program().Root, SigRgm);
    bool Diff = SigRg != SigRgm;

    char Fcns[32], Inst[32];
    std::snprintf(Fcns, sizeof(Fcns), "%u/%u",
                  URg->Spurious.SpuriousFunctions,
                  URg->Spurious.TotalFunctions);
    std::snprintf(Inst, sizeof(Inst), "%u/%u",
                  URg->Spurious.SpuriousBoxedInsts, URg->Spurious.TotalInsts);

    Measurement MRg = measure(P.Source, Strategy::Rg, Reps);
    Measurement MRgm = measure(P.Source, Strategy::RgMinus, Reps);
    Measurement MR = measure(P.Source, Strategy::R, Reps);
    for (const Measurement *M : {&MRg, &MRgm, &MR}) {
      if (!M->Ok) {
        std::printf("%-8s RUN FAILED: %s\n", P.Name.c_str(),
                    M->Error.c_str());
        return 1;
      }
    }

    auto Fmt = [](const Measurement &M) {
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%7.2f±%2.0f%%", M.MeanMs,
                    M.RelStddev);
      return std::string(Buf);
    };
    auto Kb = [](uint64_t Bytes) {
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%7lluKb",
                    static_cast<unsigned long long>(Bytes / 1024));
      return std::string(Buf);
    };

    if (Csv) {
      std::printf("%s,%u,%u,%u,%u,%u,%d,%.3f,%.3f,%.3f,%llu,%llu,%llu,"
                  "%llu,%llu\n",
                  P.Name.c_str(), P.Loc, URg->Spurious.SpuriousFunctions,
                  URg->Spurious.TotalFunctions,
                  URg->Spurious.SpuriousBoxedInsts,
                  URg->Spurious.TotalInsts, Diff ? 1 : 0, MRg.MeanMs,
                  MRgm.MeanMs, MR.MeanMs,
                  static_cast<unsigned long long>(MRg.PeakBytes / 1024),
                  static_cast<unsigned long long>(MRgm.PeakBytes / 1024),
                  static_cast<unsigned long long>(MR.PeakBytes / 1024),
                  static_cast<unsigned long long>(MRg.GcCount),
                  static_cast<unsigned long long>(MRgm.GcCount));
      continue;
    }
    std::printf(
        "%-8s %4u %7s %9s %4s | %13s %13s %13s | %9s %9s %9s | %6llu %6llu\n",
        P.Name.c_str(), P.Loc, Fcns, Inst, Diff ? "y" : "", Fmt(MRg).c_str(),
        Fmt(MRgm).c_str(), Fmt(MR).c_str(), Kb(MRg.PeakBytes).c_str(),
        Kb(MRgm.PeakBytes).c_str(), Kb(MR.PeakBytes).c_str(),
        static_cast<unsigned long long>(MRg.GcCount),
        static_cast<unsigned long long>(MRgm.GcCount));
  }
  return 0;
}
