//===- bench/bench_tagfree.cpp - Tag-free representation ablation ---------===//
//
// Section 6: the partly tag-free representation (headerless pairs, cons
// cells and refs in uniform-kind regions) "leads to significant time and
// memory savings, in particular because pairs and triples are used for
// the implementation of many dynamic data structures". This harness runs
// the list/pair-heavy benchmarks with the representation on and off.
//
//===----------------------------------------------------------------------===//

#include "bench/Programs.h"
#include "core/Pipeline.h"

#include <benchmark/benchmark.h>

using namespace rml;

namespace {

void BM_TagMode(benchmark::State &State, const std::string &Source,
                bool TagFree) {
  Compiler C;
  auto Unit = C.compile(Source);
  if (!Unit) {
    State.SkipWithError("compile failed");
    return;
  }
  uint64_t Alloc = 0, Peak = 0;
  for (auto _ : State) {
    rt::EvalOptions E;
    E.TagFreePairs = TagFree;
    rt::RunResult R = C.run(*Unit, E);
    if (R.Outcome != rt::RunOutcome::Ok) {
      State.SkipWithError(R.Error.c_str());
      return;
    }
    Alloc = R.Heap.AllocWords;
    Peak = R.Heap.peakBytes();
  }
  State.counters["alloc_words"] = static_cast<double>(Alloc);
  State.counters["peak_kb"] = static_cast<double>(Peak) / 1024.0;
}

} // namespace

int main(int argc, char **argv) {
  for (const char *Name : {"nrev", "msort", "qsort", "sieve", "life",
                           "queens", "refs"}) {
    const bench::BenchProgram *P = bench::findBenchmark(Name);
    if (!P)
      continue;
    benchmark::RegisterBenchmark(
        (std::string("tagfree_on/") + Name).c_str(),
        [Src = P->Source](benchmark::State &S) { BM_TagMode(S, Src, true); });
    benchmark::RegisterBenchmark(
        (std::string("tagfree_off/") + Name).c_str(),
        [Src = P->Source](benchmark::State &S) {
          BM_TagMode(S, Src, false);
        });
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
