//===- bench/bench_generational.cpp - Regions + generations ---------------===//
//
// The paper's introduction observes that "region-inference is
// complementary to adding generations to a reference-tracing collector"
// (developed in Elsman & Hallenberg, PADL'20 / JFP'21 — the paper's
// [16, 17]). This harness compares the non-generational and generational
// collectors across the suite: wall time, collection counts, and copied
// words (the re-copy traffic generations are meant to save).
//
//===----------------------------------------------------------------------===//

#include "bench/Programs.h"
#include "core/Pipeline.h"

#include <benchmark/benchmark.h>

using namespace rml;

namespace {

void BM_GcMode(benchmark::State &State, const std::string &Source,
               bool Generational) {
  Compiler C;
  auto Unit = C.compile(Source);
  if (!Unit) {
    State.SkipWithError("compile failed");
    return;
  }
  uint64_t Copied = 0, Minor = 0, Major = 0;
  for (auto _ : State) {
    rt::EvalOptions E;
    E.Generational = Generational;
    E.GcThresholdWords = 8 * 1024;
    rt::RunResult R = C.run(*Unit, E);
    if (R.Outcome != rt::RunOutcome::Ok) {
      State.SkipWithError(R.Error.c_str());
      return;
    }
    Copied = R.Heap.CopiedWords;
    Minor = R.Heap.MinorGcCount;
    Major = R.Heap.MajorGcCount;
  }
  State.counters["copied_words"] = static_cast<double>(Copied);
  State.counters["minor"] = static_cast<double>(Minor);
  State.counters["major"] = static_cast<double>(Major);
}

} // namespace

int main(int argc, char **argv) {
  for (const bench::BenchProgram &P : bench::benchmarkSuite()) {
    benchmark::RegisterBenchmark(
        ("gc_nongen/" + P.Name).c_str(),
        [Src = P.Source](benchmark::State &S) { BM_GcMode(S, Src, false); });
    benchmark::RegisterBenchmark(
        ("gc_gen/" + P.Name).c_str(),
        [Src = P.Source](benchmark::State &S) { BM_GcMode(S, Src, true); });
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
