//===- bench/bench_traffic.cpp - Open-loop load driver for rmld -----------===//
//
// Drive an rmld daemon with an open-loop arrival process and report the
// latency distribution and shed rate:
//
//   bench_traffic --port P --rate 200 --duration 5
//   bench_traffic --port P --rate 500 --conns 8 --mix 1:8:1 --poisson
//   bench_traffic --port P --hot 4 --hot-ratio 0.9   (cache-hit heavy)
//   bench_traffic --port P --tenants 2               (flood vs light,
//                                per-tenant latency; pair with an rmld
//                                running --sched fair to see isolation)
//
// Open-loop means arrivals are scheduled by the clock, not by
// completions: when the daemon saturates, requests queue (and shed)
// instead of the driver politely slowing down — which is exactly the
// regime the admission-control path (Service::trySubmit + WireStatus::
// Shed) exists for. Closed-loop drivers hide that cliff; this one is
// built to find it.
//
// Requests are numbered 0..N-1 and the id is echoed by the server, so
// one receiver per connection matches out-of-order completions to their
// send timestamps without any cross-thread bookkeeping. After the last
// send the driver half-closes every connection (SHUT_WR) and reads
// until EOF: the daemon's half-close handling flushes every owed
// response before closing.
//
// The last stdout line is a one-line JSON summary for scripts
// (tools/smoke_net.sh greps the shed count out of it).
//
//===----------------------------------------------------------------------===//

#include "net/Latency.h"
#include "net/Protocol.h"

#include <algorithm>
#include <arpa/inet.h>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <random>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace rml;
using namespace rml::net;
using Clock = std::chrono::steady_clock;

namespace {

struct Options {
  std::string Host = "127.0.0.1";
  uint16_t Port = 0;
  double Rate = 100.0;     // requests per second
  double Duration = 5.0;   // seconds of arrivals
  unsigned Conns = 4;      // connections (requests round-robin)
  unsigned MixCompile = 1; // --mix c:r:s[:q] weights
  unsigned MixRun = 8;
  unsigned MixScheme = 1;
  unsigned MixCapture = 0;
  unsigned HotPrograms = 4;  // size of the hot (cache-friendly) set
  double HotRatio = 0.8;     // probability a request draws from it
  bool Poisson = false;      // exponential inter-arrivals vs fixed pace
  unsigned Tenants = 0;      // 0 = untagged; >=2 = flood-vs-light tenants
  uint64_t Seed = 1;
  unsigned DrainTimeoutSecs = 30; // receive timeout after the last send
};

void usage() {
  std::fprintf(
      stderr,
      "usage: bench_traffic --port P [options]\n"
      "  --host ADDR            daemon address (default 127.0.0.1)\n"
      "  --port N               daemon port (required)\n"
      "  --rate R               arrivals per second (default 100)\n"
      "  --duration S           seconds of arrivals (default 5)\n"
      "  --conns N              client connections (default 4)\n"
      "  --mix C:R:S[:Q]        weight of compile-only, compile+run,\n"
      "                         scheme-query and capture-query requests\n"
      "                         (default 1:8:1:0)\n"
      "  --hot K                hot program set size (default 4)\n"
      "  --hot-ratio F          fraction of requests drawn from the hot\n"
      "                         set; the rest are unique cold sources\n"
      "                         (default 0.8)\n"
      "  --poisson              exponential inter-arrival gaps instead\n"
      "                         of a fixed pace\n"
      "  --tenants N            tag traffic with N tenants (2..8): t0\n"
      "                         floods cold compile+run work (7 of 8\n"
      "                         arrivals) while t1..tN-1 round-robin the\n"
      "                         rest as cheap cache-hot requests; the\n"
      "                         report gains per-tenant latency lines\n"
      "                         (overrides --mix and --hot-ratio)\n"
      "  --seed N               RNG seed (default 1)\n"
      "  --drain-timeout S      give up on missing responses after S\n"
      "                         seconds past the last send (default 30)\n");
}

/// The service_test workhorse program family: polymorphic closures and
/// enough allocation to exercise GC. \p Salt specializes literals so
/// distinct salts are distinct cache keys (cold traffic); equal salts
/// hit the compile cache (hot traffic).
std::string programSource(uint64_t Salt) {
  return "fun compose fg = fn x => #1 fg (#2 fg x)\n"
         "fun iter n acc =\n"
         "  if n = 0 then acc\n"
         "  else let val h = compose (fn x => x + " +
         std::to_string(1 + Salt % 7) +
         ", fn x => x * 2)\n"
         "       in iter (n - 1) acc + h n - h n end\n"
         ";iter " +
         std::to_string(60 + Salt % 40) + " " + std::to_string(Salt % 1000) +
         "\n";
}

int connectTo(const std::string &Host, uint16_t Port, unsigned RcvTimeoutSecs,
              std::string &Err) {
  int Fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (Fd < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  if (::inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr) != 1) {
    Err = "bad address: " + Host;
    ::close(Fd);
    return -1;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    Err = std::string("connect: ") + std::strerror(errno);
    ::close(Fd);
    return -1;
  }
  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  timeval Tv{};
  Tv.tv_sec = RcvTimeoutSecs;
  ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv));
  return Fd;
}

bool sendAll(int Fd, const std::string &Bytes) {
  size_t Off = 0;
  while (Off < Bytes.size()) {
    ssize_t N = ::send(Fd, Bytes.data() + Off, Bytes.size() - Off,
                       MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

struct Received {
  uint64_t Id;
  uint64_t RecvNanos;
  WireStatus Status;
};

/// Reads responses off one connection until EOF/timeout; purely local
/// state, merged after join.
void receiverMain(int Fd, Clock::time_point T0, std::vector<Received> &Out) {
  std::string Buf;
  char Chunk[64 * 1024];
  for (;;) {
    ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0)
      return; // EOF, timeout or error: the tally below reports shortfalls
    Buf.append(Chunk, static_cast<size_t>(N));
    size_t Used = 0;
    for (;;) {
      WireResponse R;
      std::string Err;
      size_t Consumed = 0;
      Decode D = decodeResponse(std::string_view(Buf).substr(Used), Consumed,
                                R, Err);
      if (D != Decode::Frame)
        break;
      Used += Consumed;
      uint64_t Nanos = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               T0)
              .count());
      Out.push_back({R.Id, Nanos, R.Status});
    }
    Buf.erase(0, Used);
  }
}

/// Fetches the daemon's /stats JSON (empty on any failure — the server
/// view is a best-effort addendum, never a reason to fail the bench).
std::string httpGetStats(const std::string &Host, uint16_t Port) {
  std::string Err;
  int Fd = connectTo(Host, Port, 5, Err);
  if (Fd < 0)
    return "";
  if (!sendAll(Fd, "GET /stats HTTP/1.1\r\nHost: bench\r\n"
                   "Connection: close\r\n\r\n")) {
    ::close(Fd);
    return "";
  }
  std::string Buf;
  char Chunk[16 * 1024];
  for (;;) {
    ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0)
      break;
    Buf.append(Chunk, static_cast<size_t>(N));
  }
  ::close(Fd);
  size_t H = Buf.find("\r\n\r\n");
  return H == std::string::npos ? std::string() : Buf.substr(H + 4);
}

/// First integer following \p Key in \p Body; 0 when absent. Enough
/// JSON "parsing" for pulling a few counters out of a line we wrote.
uint64_t jsonU64(const std::string &Body, const char *Key) {
  size_t P = Body.find(Key);
  if (P == std::string::npos)
    return 0;
  return std::strtoull(Body.c_str() + P + std::strlen(Key), nullptr, 10);
}

/// The raw balanced {...} object following \p Key; empty when absent.
std::string jsonObject(const std::string &Body, const char *Key) {
  size_t P = Body.find(Key);
  if (P == std::string::npos)
    return "";
  P = Body.find('{', P);
  if (P == std::string::npos)
    return "";
  int Depth = 0;
  for (size_t I = P; I < Body.size(); ++I) {
    if (Body[I] == '{')
      ++Depth;
    else if (Body[I] == '}' && --Depth == 0)
      return Body.substr(P, I - P + 1);
  }
  return "";
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opt;
  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "bench_traffic: %s needs an argument\n", A);
        std::exit(2);
      }
      return Argv[++I];
    };
    if (!std::strcmp(A, "--host")) {
      Opt.Host = Next();
    } else if (!std::strcmp(A, "--port")) {
      Opt.Port = static_cast<uint16_t>(std::strtoul(Next(), nullptr, 10));
    } else if (!std::strcmp(A, "--rate")) {
      Opt.Rate = std::strtod(Next(), nullptr);
    } else if (!std::strcmp(A, "--duration")) {
      Opt.Duration = std::strtod(Next(), nullptr);
    } else if (!std::strcmp(A, "--conns")) {
      Opt.Conns = static_cast<unsigned>(std::strtoul(Next(), nullptr, 10));
    } else if (!std::strcmp(A, "--mix")) {
      const char *S = Next();
      // Three weights is the historical spelling; the optional fourth
      // slot adds capture queries without breaking existing scripts.
      Opt.MixCapture = 0;
      int Got = std::sscanf(S, "%u:%u:%u:%u", &Opt.MixCompile, &Opt.MixRun,
                            &Opt.MixScheme, &Opt.MixCapture);
      if (Got < 3 || Opt.MixCompile + Opt.MixRun + Opt.MixScheme +
                             Opt.MixCapture ==
                         0) {
        std::fprintf(stderr,
                     "bench_traffic: --mix wants C:R:S[:Q], got '%s'\n", S);
        return 2;
      }
    } else if (!std::strcmp(A, "--hot")) {
      Opt.HotPrograms =
          static_cast<unsigned>(std::strtoul(Next(), nullptr, 10));
    } else if (!std::strcmp(A, "--hot-ratio")) {
      Opt.HotRatio = std::strtod(Next(), nullptr);
    } else if (!std::strcmp(A, "--poisson")) {
      Opt.Poisson = true;
    } else if (!std::strcmp(A, "--tenants")) {
      Opt.Tenants = static_cast<unsigned>(std::strtoul(Next(), nullptr, 10));
      if (Opt.Tenants < 2 || Opt.Tenants > 8) {
        std::fprintf(stderr, "bench_traffic: --tenants wants 2..8\n");
        return 2;
      }
    } else if (!std::strcmp(A, "--seed")) {
      Opt.Seed = std::strtoull(Next(), nullptr, 10);
    } else if (!std::strcmp(A, "--drain-timeout")) {
      Opt.DrainTimeoutSecs =
          static_cast<unsigned>(std::strtoul(Next(), nullptr, 10));
    } else if (!std::strcmp(A, "--help") || !std::strcmp(A, "-h")) {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "bench_traffic: unknown option '%s'\n", A);
      usage();
      return 2;
    }
  }
  if (Opt.Port == 0) {
    std::fprintf(stderr, "bench_traffic: --port is required\n");
    usage();
    return 2;
  }
  if (Opt.Conns == 0)
    Opt.Conns = 1;
  if (Opt.HotPrograms == 0)
    Opt.HotPrograms = 1;
  uint64_t N = static_cast<uint64_t>(Opt.Rate * Opt.Duration);
  if (N == 0)
    N = 1;

  // Connect the whole fleet before the first arrival.
  std::vector<int> Fds;
  for (unsigned I = 0; I < Opt.Conns; ++I) {
    std::string Err;
    int Fd = connectTo(Opt.Host, Opt.Port, Opt.DrainTimeoutSecs, Err);
    if (Fd < 0) {
      std::fprintf(stderr, "bench_traffic: %s\n", Err.c_str());
      for (int F : Fds)
        ::close(F);
      return 1;
    }
    Fds.push_back(Fd);
  }

  Clock::time_point T0 = Clock::now();
  std::vector<std::vector<Received>> PerConn(Opt.Conns);
  std::vector<std::thread> Receivers;
  for (unsigned I = 0; I < Opt.Conns; ++I)
    Receivers.emplace_back(
        [&, I] { receiverMain(Fds[I], T0, PerConn[I]); });

  // The open-loop sender: arrival i is scheduled at T0 + sum of gaps
  // (fixed 1/rate, or exponential with mean 1/rate), regardless of how
  // the daemon is doing.
  std::mt19937_64 Rng(Opt.Seed);
  std::exponential_distribution<double> Gap(Opt.Rate);
  std::uniform_real_distribution<double> Unit(0.0, 1.0);
  unsigned MixTotal =
      Opt.MixCompile + Opt.MixRun + Opt.MixScheme + Opt.MixCapture;
  // Latency is measured from the *scheduled* arrival (see net/Latency.h):
  // sender lag behind its own clock is queueing delay charged to the
  // daemon, not silently forgiven.
  std::vector<uint64_t> ScheduledNanos(N, 0);
  std::vector<uint8_t> SentTenant(N, 0);
  uint64_t SendFailures = 0;
  std::vector<uint64_t> SentKind(4, 0);
  double DueSecs = 0.0;
  for (uint64_t I = 0; I < N; ++I) {
    DueSecs += Opt.Poisson ? Gap(Rng) : 1.0 / Opt.Rate;
    std::this_thread::sleep_until(
        T0 + std::chrono::duration_cast<Clock::duration>(
                 std::chrono::duration<double>(DueSecs)));

    WireRequest Req;
    Req.Id = I;
    if (Opt.Tenants >= 2) {
      // The fair-share scenario: t0 floods the queue with cold
      // compile+run work (every salt unique, so each one pays the full
      // compile); the light tenants trickle cache-hot requests in at 1
      // arrival in 8, round-robined among them. Under FIFO the light
      // requests wait behind t0's backlog; under --sched fair they are
      // interleaved ahead of it.
      unsigned Slot = static_cast<unsigned>(I % 8);
      unsigned TI = Slot < Opt.Tenants - 1 ? 1 + Slot : 0;
      Req.Kind = MsgKind::CompileRun;
      Req.Tenant = "t" + std::to_string(TI);
      SentTenant[I] = static_cast<uint8_t>(TI);
      Req.Source =
          programSource(TI == 0 ? 1000 + I : Rng() % Opt.HotPrograms);
      ++SentKind[static_cast<unsigned>(Req.Kind)];
    } else {
      unsigned Pick =
          static_cast<unsigned>(Unit(Rng) * static_cast<double>(MixTotal));
      if (Pick < Opt.MixCompile) {
        Req.Kind = MsgKind::Compile;
      } else if (Pick < Opt.MixCompile + Opt.MixRun) {
        Req.Kind = MsgKind::CompileRun;
      } else if (Pick < Opt.MixCompile + Opt.MixRun + Opt.MixScheme) {
        Req.Kind = MsgKind::SchemeQuery;
        Req.SchemeNames = {"compose", "iter"};
      } else {
        Req.Kind = MsgKind::CaptureQuery;
      }
      ++SentKind[static_cast<unsigned>(Req.Kind)];
      // Hot draws repeat a small salt set (compile-cache hits); cold
      // draws salt by a per-request unique value (guaranteed misses).
      bool Hot = Unit(Rng) < Opt.HotRatio;
      Req.Source = programSource(Hot ? Rng() % Opt.HotPrograms : 1000 + I);
    }

    std::string Frame;
    encodeRequest(Req, Frame);
    ScheduledNanos[I] =
        static_cast<uint64_t>(DueSecs * 1e9);
    if (!sendAll(Fds[I % Opt.Conns], Frame))
      ++SendFailures;
  }
  // Half-close: "no more requests", but keep reading until the daemon
  // has flushed every owed response.
  for (int Fd : Fds)
    ::shutdown(Fd, SHUT_WR);
  for (std::thread &T : Receivers)
    T.join();
  double WallSecs =
      std::chrono::duration<double>(Clock::now() - T0).count();
  for (int Fd : Fds)
    ::close(Fd);

  // Merge and tally. Every non-shed response with a known id lands one
  // latency sample — negative pairs are clamped and counted, never
  // dropped (a silently thinned population skews every percentile).
  uint64_t Responses = 0, Sheds = 0, Ok = 0, Errors = 0;
  LatencyAccumulator Lat;
  std::vector<LatencyAccumulator> TenantLat(Opt.Tenants);
  std::vector<uint64_t> TenantOk(Opt.Tenants, 0), TenantShed(Opt.Tenants, 0);
  for (const std::vector<Received> &V : PerConn)
    for (const Received &R : V) {
      ++Responses;
      unsigned TI = R.Id < N ? SentTenant[R.Id] : 0;
      if (R.Status == WireStatus::Shed) {
        ++Sheds;
        if (Opt.Tenants >= 2 && R.Id < N)
          ++TenantShed[TI];
        continue; // shed responses are instant; keep them out of latency
      }
      if (R.Status == WireStatus::Ok)
        ++Ok;
      else
        ++Errors;
      if (R.Id < N) {
        Lat.record(ScheduledNanos[R.Id], R.RecvNanos);
        if (Opt.Tenants >= 2) {
          ++TenantOk[TI];
          TenantLat[TI].record(ScheduledNanos[R.Id], R.RecvNanos);
        }
      }
    }
  Lat.finalize();
  double P50 = Lat.percentileMs(0.50);
  double P95 = Lat.percentileMs(0.95);
  double P99 = Lat.percentileMs(0.99);
  double Throughput =
      WallSecs > 0 ? static_cast<double>(Responses - Sheds) / WallSecs : 0.0;
  double ShedRate =
      N > 0 ? static_cast<double>(Sheds) / static_cast<double>(N) : 0.0;

  std::printf("bench_traffic: %llu arrivals over %.2fs (%s pace, "
              "%.0f/s target, %u conns, mix c:r:s:q = "
              "%llu:%llu:%llu:%llu)\n",
              static_cast<unsigned long long>(N), WallSecs,
              Opt.Poisson ? "poisson" : "fixed", Opt.Rate, Opt.Conns,
              static_cast<unsigned long long>(SentKind[0]),
              static_cast<unsigned long long>(SentKind[1]),
              static_cast<unsigned long long>(SentKind[2]),
              static_cast<unsigned long long>(SentKind[3]));
  std::printf("  responses %llu (ok %llu, errors %llu, shed %llu"
              ", send failures %llu, missing %lld)\n",
              static_cast<unsigned long long>(Responses),
              static_cast<unsigned long long>(Ok),
              static_cast<unsigned long long>(Errors),
              static_cast<unsigned long long>(Sheds),
              static_cast<unsigned long long>(SendFailures),
              static_cast<long long>(N - Responses - SendFailures));
  std::printf("  served throughput %.1f/s, shed rate %.1f%%\n", Throughput,
              100.0 * ShedRate);
  std::printf("  latency p50 %.2fms p95 %.2fms p99 %.2fms (n=%zu, "
              "clamped %llu; scheduled-arrival basis)\n",
              P50, P95, P99, Lat.count(),
              static_cast<unsigned long long>(Lat.clamped()));
  // The server-side view: GC pause shape (the figure an operator reads
  // against rmld --gc-pause-budget) and, for tenant runs, the daemon's
  // own per-tenant admitted/completed/shed ledger.
  std::string StatsBody = httpGetStats(Opt.Host, Opt.Port);
  if (!StatsBody.empty()) {
    uint64_t PauseCount = jsonU64(StatsBody, "\"pause_count\":");
    if (PauseCount) {
      std::printf("  server gc pauses: %llu, p50 %.3fms p99 %.3fms "
                  "max %.3fms, over budget %llu, adaptive runs %llu\n",
                  static_cast<unsigned long long>(PauseCount),
                  static_cast<double>(jsonU64(StatsBody, "\"pause_p50_ns\":")) /
                      1e6,
                  static_cast<double>(jsonU64(StatsBody, "\"pause_p99_ns\":")) /
                      1e6,
                  static_cast<double>(jsonU64(StatsBody, "\"pause_max_ns\":")) /
                      1e6,
                  static_cast<unsigned long long>(
                      jsonU64(StatsBody, "\"over_budget_pauses\":")),
                  static_cast<unsigned long long>(
                      jsonU64(StatsBody, "\"adaptive_runs\":")));
    }
    if (Opt.Tenants >= 2) {
      std::string ServerTenants = jsonObject(StatsBody, "\"tenants\":");
      if (!ServerTenants.empty())
        std::printf("  server tenants: %s\n", ServerTenants.c_str());
    }
  }
  std::string TenantJson;
  if (Opt.Tenants >= 2) {
    TenantJson = ",\"tenants\":[";
    for (unsigned TI = 0; TI < Opt.Tenants; ++TI) {
      TenantLat[TI].finalize();
      double TP50 = TenantLat[TI].percentileMs(0.50);
      double TP95 = TenantLat[TI].percentileMs(0.95);
      double TP99 = TenantLat[TI].percentileMs(0.99);
      std::printf("  tenant t%u (%s): ok %llu shed %llu latency "
                  "p50 %.2fms p95 %.2fms p99 %.2fms\n",
                  TI, TI == 0 ? "heavy flood" : "light",
                  static_cast<unsigned long long>(TenantOk[TI]),
                  static_cast<unsigned long long>(TenantShed[TI]), TP50,
                  TP95, TP99);
      char Row[192];
      std::snprintf(Row, sizeof(Row),
                    "%s{\"tenant\":\"t%u\",\"ok\":%llu,\"shed\":%llu,"
                    "\"p50_ms\":%.2f,\"p95_ms\":%.2f,\"p99_ms\":%.2f}",
                    TI ? "," : "", TI,
                    static_cast<unsigned long long>(TenantOk[TI]),
                    static_cast<unsigned long long>(TenantShed[TI]), TP50,
                    TP95, TP99);
      TenantJson += Row;
    }
    TenantJson += "]";
  }
  std::printf("{\"sent\":%llu,\"responses\":%llu,\"ok\":%llu,"
              "\"errors\":%llu,\"shed\":%llu,\"shed_rate\":%.4f,"
              "\"throughput_rps\":%.1f,\"p50_ms\":%.2f,\"p95_ms\":%.2f,"
              "\"p99_ms\":%.2f,\"clamped\":%llu%s}\n",
              static_cast<unsigned long long>(N),
              static_cast<unsigned long long>(Responses),
              static_cast<unsigned long long>(Ok),
              static_cast<unsigned long long>(Errors),
              static_cast<unsigned long long>(Sheds), ShedRate, Throughput,
              P50, P95, P99,
              static_cast<unsigned long long>(Lat.clamped()),
              TenantJson.c_str());
  // Missing responses (beyond sheds and send failures) mean the daemon
  // broke its contract; make scripts notice.
  return Responses + SendFailures >= N ? 0 : 1;
}
