//===- tests/rinfer_spurious_test.cpp - Spurious analysis tests -----------===//
//
// The spurious type-variable analysis of Sections 4.1-4.4: the paper's
// examples (o, List.app, Array.copy-style loops, the Figure 8 chain,
// local exceptions) and the statistics columns of Figure 9.
//
//===----------------------------------------------------------------------===//

#include "rinfer/Spurious.h"

#include "ast/Parser.h"
#include "types/TypeCheck.h"

#include <gtest/gtest.h>

using namespace rml;

namespace {

class SpuriousTest : public ::testing::Test {
protected:
  SpuriousInfo analyze(std::string_view Src) {
    Diags.clear();
    Info = TypeInfo();
    std::optional<Program> P = parseString(Src, Arena, Names, Diags);
    if (!P) {
      ADD_FAILURE() << "parse failed: " << Diags.str();
      return {};
    }
    Prog = *P;
    if (!checkProgram(Prog, Types, Names, Diags, Info)) {
      ADD_FAILURE() << "typecheck failed: " << Diags.str();
      return {};
    }
    return analyzeSpurious(Prog, Info);
  }

  /// Is declaration \p I's scheme spurious?
  static bool decSpurious(const SpuriousInfo &S, const Program &P,
                          size_t I) {
    return S.SpuriousDecs.count(P.Decs[I]) != 0;
  }

  AstArena Arena;
  TypeArena Types;
  Interner Names;
  DiagnosticEngine Diags;
  TypeInfo Info;
  Program Prog;
};

TEST_F(SpuriousTest, ComposeIsSpurious) {
  // The paper's o: gamma occurs in the captured pair's type but not in
  // the result function's type.
  SpuriousInfo S =
      analyze("fun compose fg = fn x => #1 fg (#2 fg x)\n;()");
  EXPECT_EQ(S.SpuriousVars.size(), 1u);
  EXPECT_TRUE(decSpurious(S, Prog, 0));
  EXPECT_EQ(S.SpuriousFunctions, 1u);
}

TEST_F(SpuriousTest, IdentityIsNotSpurious) {
  SpuriousInfo S = analyze("fun id x = x\n;()");
  EXPECT_TRUE(S.SpuriousVars.empty());
  EXPECT_EQ(S.SpuriousFunctions, 0u);
}

TEST_F(SpuriousTest, ListAppFromSection42) {
  // app : forall 'a 'b. ('a -> 'b) -> 'a list -> unit. beta occurs in
  // f's type inside loop but not in loop's type: spurious.
  SpuriousInfo S = analyze(
      "fun app f = let fun loop xs = case xs of nil => () "
      "| x :: t => (f x; loop t) in loop end\n;()");
  EXPECT_EQ(S.SpuriousVars.size(), 1u);
  EXPECT_TRUE(decSpurious(S, Prog, 0));
}

TEST_F(SpuriousTest, AnnotationRemovesTheSpuriousVariable) {
  // Section 4.2: constraining f : 'a -> unit eliminates beta.
  SpuriousInfo S = analyze(
      "fun app (f : 'a -> unit) = let fun loop xs = case xs of nil => () "
      "| x :: t => (f x; loop t) in loop end\n;()");
  EXPECT_TRUE(S.SpuriousVars.empty());
}

TEST_F(SpuriousTest, ArrayCopyStyleLoop) {
  // Section 4.2's Array.copy: a local worker whose type hides the
  // element type entirely (here: a loop reading from a captured list).
  SpuriousInfo S = analyze(
      "fun consume src =\n"
      "  let fun loop n = case src of nil => n | _ :: _ => n\n"
      "  in loop 0 end\n;()");
  // 'a (the element type of src) occurs in loop's captured src but not
  // in loop : int -> int.
  EXPECT_EQ(S.SpuriousVars.size(), 1u);
  EXPECT_TRUE(decSpurious(S, Prog, 0));
}

TEST_F(SpuriousTest, PassingTheSourceAvoidsSpuriousness) {
  // The paper's fix for Array.copy: pass the source as a (tupled)
  // parameter, so the element type occurs in the worker's own type.
  // (A *curried* extra parameter would not help: the desugared inner
  // lambda still captures the source.)
  SpuriousInfo S = analyze(
      "fun consume src =\n"
      "  let fun loop p = case #1 p of nil => #2 p | _ :: _ => #2 p\n"
      "  in loop (src, 0) end\n;()");
  EXPECT_TRUE(S.SpuriousVars.empty());
}

TEST_F(SpuriousTest, Figure8ChainPropagates) {
  // g's alpha is spurious only through instantiation for compose's
  // spurious gamma (Section 4.3).
  SpuriousInfo S = analyze(
      "fun compose fg = fn x => #1 fg (#2 fg x)\n"
      "fun g f = compose (let val x = f () in "
      "(fn _ => (), fn u => x) end)\n"
      ";()");
  EXPECT_TRUE(decSpurious(S, Prog, 0)); // compose
  EXPECT_TRUE(decSpurious(S, Prog, 1)); // g, via the chain
  EXPECT_EQ(S.SpuriousFunctions, 2u);
}

TEST_F(SpuriousTest, ExceptionTypeVariablesAreForced) {
  // Section 4.4: 'a in a local exception's argument type.
  SpuriousInfo S = analyze(
      "fun poly (x : 'a) = let exception E of 'a in E x end\n;()");
  EXPECT_EQ(S.SpuriousVars.size(), 1u);
  EXPECT_EQ(S.ExnForcedVars.size(), 1u);
  EXPECT_TRUE(decSpurious(S, Prog, 0));
}

TEST_F(SpuriousTest, InstantiationStatistics) {
  SpuriousInfo S = analyze(
      "fun compose fg = fn x => #1 fg (#2 fg x)\n"
      "val hInt = compose (fn x => x + 1, fn x => x * 2)\n"
      "val hStr = compose (fn s => size s, fn u => \"a\" ^ \"b\")\n"
      ";hInt 1 + hStr ()");
  // Each compose use instantiates alpha, beta, gamma: 6 instantiations.
  EXPECT_EQ(S.TotalInsts, 6u);
  // gamma := int (unboxed) once and gamma := string (boxed) once.
  EXPECT_EQ(S.SpuriousBoxedInsts, 1u);
}

TEST_F(SpuriousTest, FunctionCounting) {
  SpuriousInfo S = analyze(
      "fun f x = x\nval g = fn y => y\nfun h a b = a\n;()");
  // f, the anonymous fn, h, and h's curried inner fn.
  EXPECT_EQ(S.TotalFunctions, 4u);
}

TEST_F(SpuriousTest, MultipleSpuriousVarsInOneScheme) {
  // Both components of the captured pair are hidden from the result.
  SpuriousInfo S = analyze(
      "fun hide p = fn u => (#1 p; #2 p; 3)\n;()");
  EXPECT_EQ(S.SpuriousVars.size(), 2u);
  EXPECT_EQ(S.SpuriousFunctions, 1u);
}

} // namespace
