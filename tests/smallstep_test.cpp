//===- tests/smallstep_test.cpp - Small-step semantics tests --------------===//
//
// The contextual semantics of Section 3.10 and the executable metatheory:
//
//   * whole pure-fragment programs evaluate to the expected values,
//   * Proposition 18 (preservation): every intermediate term re-checks
//     with the same type and a shrinking effect,
//   * Proposition 19 (progress): no well-typed term gets stuck,
//   * Theorem 2 (containment): context containment holds after every
//     step,
//   * the deallocation model: access to a region outside the allocated
//     set is the paper's dangling-pointer failure.
//
//===----------------------------------------------------------------------===//

#include "smallstep/Step.h"

#include "core/Pipeline.h"
#include "rcheck/Check.h"

#include <gtest/gtest.h>

using namespace rml;

namespace {

class SmallStepTest : public ::testing::Test {
protected:
  /// Compiles a pure-fragment program (rg) and returns the root term.
  const RExpr *compileRoot(std::string_view Src,
                           Strategy S = Strategy::Rg) {
    CompileOptions Opts;
    Opts.Strat = S;
    Unit = C.compile(Src, Opts);
    if (!Unit) {
      ADD_FAILURE() << C.diagnostics().str();
      return nullptr;
    }
    return Unit->program().Root;
  }

  /// Runs to a value with the global region allocated.
  SmallStep::RunResult run(const RExpr *E, uint64_t Fuel = 200000) {
    Machine = std::make_unique<SmallStep>(Arena, C.names());
    Effect Phi{AtomicEffect(RegionVar::global())};
    return Machine->run(E, Phi, Fuel);
  }

  /// Steps the program, re-checking type and containment at every step.
  /// With GcSafety::On this also witnesses Propositions 8-10: the
  /// GC-safety relation survives every value/region substitution the
  /// machine performs. Returns the number of steps or -1 on a violated
  /// property.
  int64_t runChecked(const RExpr *E, uint64_t Fuel = 5000,
                     GcSafety Safety = GcSafety::Off) {
    Machine = std::make_unique<SmallStep>(Arena, C.names());
    Effect Phi{AtomicEffect(RegionVar::global())};

    DiagnosticEngine D;
    RTypeArena A;
    std::optional<CheckResult> Prev =
        checkRExpr(E, {}, {}, {}, A, C.names(), D, Safety);
    if (!Prev) {
      ADD_FAILURE() << "initial term does not check: " << D.str();
      return -1;
    }
    if (!contextContained(Phi, E)) {
      ADD_FAILURE() << "initial containment fails";
      return -1;
    }

    const RExpr *Cur = E;
    for (uint64_t I = 0; I < Fuel; ++I) {
      StepOutcome O = Machine->step(Cur, Phi);
      if (O.K == StepOutcome::Kind::IsValue)
        return static_cast<int64_t>(I);
      if (O.K == StepOutcome::Kind::Stuck) {
        ADD_FAILURE() << "progress violated: " << O.Why << "\nat: "
                      << printRExpr(Cur, C.names());
        return -1;
      }
      Cur = O.Next;
      // Theorem 2: containment is preserved.
      if (!contextContained(Phi, Cur)) {
        ADD_FAILURE() << "containment violated after step " << I << ":\n"
                      << printRExpr(Cur, C.names());
        return -1;
      }
      // Proposition 18: the term re-checks at the same type with an
      // effect included in the previous one.
      DiagnosticEngine D2;
      std::optional<CheckResult> Next =
          checkRExpr(Cur, {}, {}, {}, A, C.names(), D2, Safety);
      if (!Next) {
        ADD_FAILURE() << "preservation violated after step " << I << ": "
                      << D2.str() << "\nterm: " << printRExpr(Cur, C.names());
        return -1;
      }
      EXPECT_TRUE(piEquals(Prev->Type, Next->Type))
          << "type changed at step " << I << ": " << printPi(Prev->Type)
          << " vs " << printPi(Next->Type);
      EXPECT_TRUE(Next->Phi.subsetOf(Prev->Phi))
          << "effect grew at step " << I;
      Prev = Next;
    }
    ADD_FAILURE() << "out of fuel";
    return -1;
  }

  Compiler C;
  std::unique_ptr<CompiledUnit> Unit;
  RExprArena Arena;
  std::unique_ptr<SmallStep> Machine;
};

TEST_F(SmallStepTest, Arithmetic) {
  const RExpr *E = compileRoot("1 + 2 * 3");
  ASSERT_NE(E, nullptr);
  SmallStep::RunResult R = run(E);
  ASSERT_TRUE(R.Finished) << R.Why;
  EXPECT_EQ(R.Final->K, RExpr::Kind::IntLit);
  EXPECT_EQ(R.Final->IntValue, 7);
}

TEST_F(SmallStepTest, LetregionAllocAndDealloc) {
  const RExpr *E = compileRoot("#1 (1, 2) + #2 (3, 4)");
  ASSERT_NE(E, nullptr);
  SmallStep::RunResult R = run(E);
  ASSERT_TRUE(R.Finished) << R.Why;
  EXPECT_EQ(R.Final->IntValue, 5);
}

TEST_F(SmallStepTest, HigherOrderFunctions) {
  const RExpr *E = compileRoot(
      "fun twice f = fn x => f (f x)\n;(twice (fn n => n * 2)) 5");
  ASSERT_NE(E, nullptr);
  SmallStep::RunResult R = run(E);
  ASSERT_TRUE(R.Finished) << R.Why;
  EXPECT_EQ(R.Final->IntValue, 20);
}

TEST_F(SmallStepTest, RecursionThroughRapp) {
  const RExpr *E = compileRoot(
      "fun sum n = if n = 0 then 0 else n + sum (n - 1)\n;sum 10");
  ASSERT_NE(E, nullptr);
  SmallStep::RunResult R = run(E);
  ASSERT_TRUE(R.Finished) << R.Why;
  EXPECT_EQ(R.Final->IntValue, 55);
}

TEST_F(SmallStepTest, Strings) {
  const RExpr *E = compileRoot("\"oh\" ^ \"no\"");
  ASSERT_NE(E, nullptr);
  SmallStep::RunResult R = run(E);
  ASSERT_TRUE(R.Finished) << R.Why;
  ASSERT_EQ(R.Final->K, RExpr::Kind::StrVal);
  EXPECT_EQ(R.Final->StrValue, "ohno");
}

TEST_F(SmallStepTest, Lists) {
  const RExpr *E = compileRoot(
      "fun len xs = case xs of nil => 0 | _ :: t => 1 + len t\n"
      ";len [1, 2, 3, 4, 5]");
  ASSERT_NE(E, nullptr);
  SmallStep::RunResult R = run(E);
  ASSERT_TRUE(R.Finished) << R.Why;
  EXPECT_EQ(R.Final->IntValue, 5);
}

TEST_F(SmallStepTest, PreservationAndContainmentArithmetic) {
  const RExpr *E = compileRoot("(1 + 2, \"a\" ^ \"b\")");
  ASSERT_NE(E, nullptr);
  EXPECT_GT(runChecked(E), 0);
}

TEST_F(SmallStepTest, PreservationAndContainmentHof) {
  const RExpr *E = compileRoot(
      "fun compose fg = fn x => #1 fg (#2 fg x)\n"
      "val h = compose (fn x => x + 1, fn x => x * 2)\n;h 20");
  ASSERT_NE(E, nullptr);
  EXPECT_GT(runChecked(E), 0);
}

TEST_F(SmallStepTest, PreservationAndContainmentLists) {
  const RExpr *E = compileRoot(
      "fun rv xs = case xs of nil => nil | h :: t => "
      "(case rv t of nil => [h] | h2 :: t2 => h2 :: "
      "(case t2 of nil => [h] | _ :: _ => t2))\n"
      ";rv [1, 2]");
  ASSERT_NE(E, nullptr);
  EXPECT_GT(runChecked(E), 0);
}

TEST_F(SmallStepTest, GcSafePreservationWitnessesProps8To10) {
  // Per-step preservation with the GC-safety conditions *on*: relation G
  // and substitution coverage survive every [App]/[Let]/[Rapp]
  // substitution the machine performs (Propositions 8, 9 and 10).
  // (size/prims are outside the formal fragment, so the pipeline stays
  // pure: the dead-string composition pattern with an int result.)
  const RExpr *E = compileRoot(
      "fun compose fg = fn x => #1 fg (#2 fg x)\n"
      "val h = compose (fn _ => 1, fn u => \"oh\" ^ \"no\")\n;h ()");
  ASSERT_NE(E, nullptr);
  EXPECT_GT(runChecked(E, 5000, GcSafety::On), 0);
}

TEST_F(SmallStepTest, GcSafePreservationOnRecursion) {
  const RExpr *E = compileRoot(
      "fun len xs = case xs of nil => 0 | _ :: t => 1 + len t\n"
      ";len [(1, \"a\"), (2, \"b\")]");
  ASSERT_NE(E, nullptr);
  EXPECT_GT(runChecked(E, 5000, GcSafety::On), 0);
}

TEST_F(SmallStepTest, PreservationFigure1UnderRg) {
  // The rg-annotated Figure-1 core (without work/prims): stepping the
  // composition program preserves types and containment throughout.
  const RExpr *E = compileRoot(
      "fun compose fg = fn x => #1 fg (#2 fg x)\n"
      "fun mk u = compose (let val x = \"oh\" ^ \"no\" in "
      "(fn _ => 0, fn v => x) end)\n"
      "val h = mk ()\n;(fn u => 1) (h ())");
  ASSERT_NE(E, nullptr);
  EXPECT_GT(runChecked(E), 0);
  const RExpr *E2 = compileRoot(
      "fun compose fg = fn x => #1 fg (#2 fg x)\n"
      "fun mk u = compose (let val x = \"oh\" ^ \"no\" in "
      "(fn _ => 0, fn v => x) end)\n"
      "val h = mk ()\n;(fn u => 1) (h ())");
  ASSERT_NE(E2, nullptr);
  EXPECT_GT(runChecked(E2, 5000, GcSafety::On), 0);
}

TEST_F(SmallStepTest, AccessToDeallocatedRegionIsStuck) {
  // A hand-built violation: allocate outside the allocated region set.
  RExpr *S = Arena.make(RExpr::Kind::StrE);
  S->StrValue = "x";
  S->AtRho = RegionVar(42); // never introduced
  Machine = std::make_unique<SmallStep>(Arena, C.names());
  Effect Phi{AtomicEffect(RegionVar::global())};
  StepOutcome O = Machine->step(S, Phi);
  EXPECT_EQ(O.K, StepOutcome::Kind::Stuck);
  EXPECT_NE(O.Why.find("not allocated"), std::string::npos);
}

TEST_F(SmallStepTest, LetregionIntroducesItsRegion) {
  // letregion r42 in "x" at r42 steps fine (allocation inside).
  RExpr *S = Arena.make(RExpr::Kind::StrE);
  S->StrValue = "x";
  S->AtRho = RegionVar(42);
  RExpr *LR = Arena.make(RExpr::Kind::LetRegion);
  LR->BoundRho = RegionVar(42);
  LR->A = S;
  Machine = std::make_unique<SmallStep>(Arena, C.names());
  Effect Phi{AtomicEffect(RegionVar::global())};
  StepOutcome O = Machine->step(LR, Phi);
  EXPECT_EQ(O.K, StepOutcome::Kind::Stepped);
}

TEST_F(SmallStepTest, ValueEscapingLetregionKeepsItsPointer) {
  // [Reg]: letregion rho in v --> v. The value may dangle afterwards —
  // exactly what the containment theorem tracks.
  RExpr *V = Arena.make(RExpr::Kind::StrVal);
  V->StrValue = "dead";
  V->AtRho = RegionVar(42);
  RExpr *LR = Arena.make(RExpr::Kind::LetRegion);
  LR->BoundRho = RegionVar(42);
  LR->A = V;
  Machine = std::make_unique<SmallStep>(Arena, C.names());
  Effect Phi{AtomicEffect(RegionVar::global())};
  StepOutcome O = Machine->step(LR, Phi);
  ASSERT_EQ(O.K, StepOutcome::Kind::Stepped);
  EXPECT_EQ(O.Next, V);
  // The escaped value violates containment w.r.t. the outer region set.
  EXPECT_FALSE(contextContained(Phi, O.Next));
}

TEST_F(SmallStepTest, DivisionByZeroIsStuckInTheFormalFragment) {
  const RExpr *E = compileRoot("1 div 0");
  ASSERT_NE(E, nullptr);
  SmallStep::RunResult R = run(E);
  EXPECT_FALSE(R.Finished);
  EXPECT_NE(R.Why.find("zero"), std::string::npos);
}

} // namespace
