//===- tests/rt_stress_test.cpp - Region-runtime stress over a pool -------===//
//
// Seeded-PRNG stress for the cross-request page pool: eight threads
// each run dozens of mixed Figure-9 corpus programs over ONE shared
// rt::PagePool, with the GC threshold low enough that every run traces
// (and validates) live pointers across several collections. Every
// pooled run must be bit-identical to its fresh-heap baseline — same
// outcome, output, final value, allocation count and GC count — and no
// run may report a dangling pointer: recycled pages must be
// indistinguishable from fresh ones. Labelled `pool` in ctest and
// expected to be clean under -DRML_SANITIZE=thread (the pool is the
// only state shared between the threads' heaps).
//
//===----------------------------------------------------------------------===//

#include "rt/PagePool.h"

#include "bench/Programs.h"
#include "service/Cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <thread>

using namespace rml;
using namespace rml::service;

namespace {

constexpr int NumThreads = 8;
constexpr int RunsPerThread = 30; // 240 pooled runs in total

/// Corpus programs small enough for a TSan-instrumented stress run but
/// allocation-heavy enough to churn pages and trigger collections.
const char *StressCorpus[] = {"fib", "nrev", "strings", "refs", "hof"};

struct Baseline {
  rt::RunOutcome Outcome;
  std::string Output;
  std::string ResultText;
  uint64_t AllocWords;
  uint64_t GcCount;
  uint64_t Steps;
};

rt::EvalOptions stressOptions() {
  rt::EvalOptions E;
  E.GcThresholdWords = 2048; // several collections per run
  return E;
}

TEST(RtStressTest, EightThreadsOneSharedPoolBitIdenticalRuns) {
  // One frozen compilation per program, shared read-only by all
  // threads (the service's sharing model), plus a fresh-heap baseline.
  std::vector<CachedCompileRef> Units;
  std::vector<Baseline> Baselines;
  uint64_t TotalBaselineGcs = 0;
  for (const char *Name : StressCorpus) {
    const bench::BenchProgram *P = bench::findBenchmark(Name);
    ASSERT_NE(P, nullptr) << Name;
    CachedCompileRef CC = compileShared(P->Source, CompileOptions{});
    ASSERT_TRUE(CC->ok()) << Name << ": " << CC->Diagnostics;
    rt::RunResult R = CC->run(stressOptions());
    ASSERT_EQ(R.Outcome, rt::RunOutcome::Ok) << Name << ": " << R.Error;
    Baselines.push_back({R.Outcome, R.Output, R.ResultText,
                         R.Heap.AllocWords, R.Heap.GcCount, R.Steps});
    TotalBaselineGcs += R.Heap.GcCount;
    Units.push_back(std::move(CC));
  }
  ASSERT_GT(TotalBaselineGcs, 0u) << "corpus must exercise the collector";

  rt::PagePool Pool(256);
  std::atomic<int> Mismatches{0};
  std::atomic<int> GcFailures{0};

  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      // Seeded per thread: the schedule is reproducible, the
      // interleaving is not — which is the point.
      std::mt19937 Rng(0xE15A + T);
      for (int I = 0; I < RunsPerThread; ++I) {
        size_t Idx = Rng() % Units.size();
        rt::EvalOptions E = stressOptions();
        E.SharedPool = &Pool;
        rt::RunResult R = Units[Idx]->run(E);
        if (R.Outcome == rt::RunOutcome::DanglingPointer) {
          ++GcFailures;
          continue;
        }
        const Baseline &B = Baselines[Idx];
        if (R.Outcome != B.Outcome || R.Output != B.Output ||
            R.ResultText != B.ResultText ||
            R.Heap.AllocWords != B.AllocWords ||
            R.Heap.GcCount != B.GcCount || R.Steps != B.Steps)
          ++Mismatches;
      }
    });
  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(GcFailures.load(), 0) << "recycled pages broke GC validation";
  EXPECT_EQ(Mismatches.load(), 0);

  rt::PagePoolStats S = Pool.stats();
  // The pool actually carried the load: later runs reuse earlier runs'
  // pages, and the bound was respected throughout.
  EXPECT_GT(S.AcquireHits, 0u);
  EXPECT_EQ(S.Releases, S.AcquireHits + S.FreePages + 0u)
      << "every pooled page was either re-acquired or is still free";
  EXPECT_LE(S.FreePages, S.Capacity);
  EXPECT_EQ(S.Capacity, 256u);
}

TEST(RtStressTest, MixedDetectionAndPooledTrafficStaySeparate) {
  // Half the threads run pooled rg traffic, half run rg- with exact
  // dangling detection (quarantined from the pool). The detecting runs
  // must still crash exactly; the pooled runs must still be clean.
  const bench::BenchProgram *P = bench::findBenchmark("nrev");
  ASSERT_NE(P, nullptr);
  CachedCompileRef Ok = compileShared(P->Source, CompileOptions{});
  ASSERT_TRUE(Ok->ok()) << Ok->Diagnostics;
  CompileOptions RgMinusOpts;
  RgMinusOpts.Strat = Strategy::RgMinus;
  CachedCompileRef Crash =
      compileShared(bench::danglingPointerProgram(), RgMinusOpts);
  ASSERT_TRUE(Crash->ok()) << Crash->Diagnostics;

  rt::RunResult OkBase = Ok->run(stressOptions());
  ASSERT_EQ(OkBase.Outcome, rt::RunOutcome::Ok) << OkBase.Error;

  rt::PagePool Pool(128);
  std::atomic<int> Failures{0};
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      for (int I = 0; I < 12; ++I) {
        rt::EvalOptions E = stressOptions();
        E.SharedPool = &Pool;
        if (T % 2 == 0) {
          rt::RunResult R = Ok->run(E);
          if (R.Outcome != rt::RunOutcome::Ok ||
              R.ResultText != OkBase.ResultText)
            ++Failures;
        } else {
          E.RetainReleasedPages = true; // quarantines the pool
          rt::RunResult R = Crash->run(E);
          if (R.Outcome != rt::RunOutcome::DanglingPointer)
            ++Failures;
        }
      }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Failures.load(), 0);
}

} // namespace
