//===- tests/generational_test.cpp - Generational GC tests ----------------===//
//
// The generational extension (the paper's introduction: "region-inference
// is complementary to adding generations to a reference-tracing
// collector", developed in Elsman & Hallenberg [16, 17]): minor
// collections over young pages with a write barrier, major collections on
// a schedule, and full behavioural equivalence with the non-generational
// collector.
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"

#include "bench/Programs.h"
#include "rt/Gc.h"

#include <gtest/gtest.h>

using namespace rml;
using namespace rml::rt;

namespace {

//===----------------------------------------------------------------------===//
// Collector-level tests
//===----------------------------------------------------------------------===//

class GenGcTest : public ::testing::Test {
protected:
  Value pair(uint32_t R, Value A, Value B) {
    uint64_t *P = H.alloc(R, 3);
    P[0] = makeHeader(ObjKind::Pair, 0);
    P[1] = A;
    P[2] = B;
    return fromPtr(P);
  }
  Value refCell(uint32_t R, Value V) {
    uint64_t *P = H.alloc(R, 2);
    P[0] = makeHeader(ObjKind::Ref, 0);
    P[1] = V;
    return fromPtr(P);
  }

  RegionHeap H;
};

TEST_F(GenGcTest, MinorCollectionsSkipOldPages) {
  uint32_t R = H.create(1, RegionKind::Mixed, 0);
  Value OldV = pair(R, boxScalar(1), boxScalar(2));
  std::vector<Value *> Roots{&OldV};
  // Major + seal: OldV's page becomes old.
  ASSERT_TRUE(collectGarbage(H, Roots, GcKind::Major, true).Ok);
  Value OldAddr = OldV;
  // Young garbage, then a minor collection.
  for (int I = 0; I < 200; ++I)
    pair(R, boxScalar(I), boxScalar(I));
  GcResult G = collectGarbage(H, Roots, GcKind::Minor, true);
  ASSERT_TRUE(G.Ok) << G.Error;
  // The old object did not move; nothing live was young.
  EXPECT_EQ(OldV, OldAddr);
  EXPECT_EQ(G.CopiedWords, 0u);
}

TEST_F(GenGcTest, YoungSurvivorsAreEvacuatedAndBecomeOld) {
  uint32_t R = H.create(1, RegionKind::Mixed, 0);
  Value V = pair(R, boxScalar(7), boxScalar(8));
  std::vector<Value *> Roots{&V};
  GcResult G = collectGarbage(H, Roots, GcKind::Minor, true);
  ASSERT_TRUE(G.Ok) << G.Error;
  EXPECT_EQ(G.CopiedWords, 3u);
  EXPECT_TRUE(H.isOldAddr(asPtr(V)));
  EXPECT_EQ(unboxScalar(asPtr(V)[1]), 7);
}

TEST_F(GenGcTest, RememberedSlotKeepsYoungTargetAlive) {
  uint32_t R = H.create(1, RegionKind::Mixed, 0);
  // An old ref cell...
  Value Ref = refCell(R, NilValue);
  std::vector<Value *> Roots{&Ref};
  ASSERT_TRUE(collectGarbage(H, Roots, GcKind::Major, true).Ok);
  ASSERT_TRUE(H.isOldAddr(asPtr(Ref)));
  // ...mutated to point at a young pair (the write barrier's case).
  Value Young = pair(R, boxScalar(42), boxScalar(43));
  asPtr(Ref)[1] = Young;
  Value *Slot = reinterpret_cast<Value *>(asPtr(Ref) + 1);
  // Without the remembered slot the young pair would be collected; with
  // it, the minor collection evacuates it and fixes the old field.
  std::vector<Value *> MinorRoots{&Ref, Slot};
  GcResult G = collectGarbage(H, MinorRoots, GcKind::Minor, true);
  ASSERT_TRUE(G.Ok) << G.Error;
  Value Stored = asPtr(Ref)[1];
  ASSERT_TRUE(isPointer(Stored));
  EXPECT_EQ(unboxScalar(asPtr(Stored)[1]), 42);
}

TEST_F(GenGcTest, StatsDistinguishMinorAndMajor) {
  uint32_t R = H.create(1, RegionKind::Mixed, 0);
  Value V = pair(R, boxScalar(1), boxScalar(1));
  std::vector<Value *> Roots{&V};
  ASSERT_TRUE(collectGarbage(H, Roots, GcKind::Minor, true).Ok);
  ASSERT_TRUE(collectGarbage(H, Roots, GcKind::Minor, true).Ok);
  ASSERT_TRUE(collectGarbage(H, Roots, GcKind::Major, true).Ok);
  EXPECT_EQ(H.Stats.GcCount, 3u);
  EXPECT_EQ(H.Stats.MinorGcCount, 2u);
  EXPECT_EQ(H.Stats.MajorGcCount, 1u);
}

TEST_F(GenGcTest, DanglingDetectionStillWorksInMinors) {
  H.RetainReleasedPages = true;
  uint32_t Dead = H.create(9, RegionKind::Mixed, 0);
  Value Doomed = pair(Dead, boxScalar(1), boxScalar(2));
  H.release(Dead);
  std::vector<Value *> Roots{&Doomed};
  GcResult G = collectGarbage(H, Roots, GcKind::Minor, true);
  EXPECT_FALSE(G.Ok);
  EXPECT_NE(G.Error.find("dangling"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// End-to-end tests
//===----------------------------------------------------------------------===//

class GenerationalEndToEnd : public ::testing::Test {
protected:
  rt::RunResult run(const std::string &Src, bool Generational,
                    uint64_t Threshold = 2048) {
    Compiler C;
    auto Unit = C.compile(Src);
    if (!Unit) {
      rt::RunResult R;
      R.Outcome = rt::RunOutcome::RuntimeError;
      R.Error = "compile failed: " + C.diagnostics().str();
      return R;
    }
    rt::EvalOptions E;
    E.Generational = Generational;
    E.GcThresholdWords = Threshold;
    E.MinorsPerMajor = 4;
    return C.run(*Unit, E);
  }
};

TEST_F(GenerationalEndToEnd, SuiteResultsMatchNonGenerational) {
  for (const char *Name : {"nrev", "msort", "sieve", "refs", "exn", "life"}) {
    const bench::BenchProgram *P = bench::findBenchmark(Name);
    ASSERT_NE(P, nullptr);
    rt::RunResult NonGen = run(P->Source, false);
    rt::RunResult Gen = run(P->Source, true);
    ASSERT_EQ(NonGen.Outcome, rt::RunOutcome::Ok) << Name << NonGen.Error;
    ASSERT_EQ(Gen.Outcome, rt::RunOutcome::Ok) << Name << ": " << Gen.Error;
    EXPECT_EQ(Gen.ResultText, NonGen.ResultText) << Name;
    EXPECT_GT(Gen.Heap.MinorGcCount, 0u) << Name;
  }
}

TEST_F(GenerationalEndToEnd, MutationHeavyProgramsAreCorrect) {
  // Old refs repeatedly assigned fresh (young) structures: the write
  // barrier must keep every young target alive.
  const char *Src =
      "fun fill r n = if n = 0 then () else (r := (n, n * 2); fill r (n - 1))\n"
      "fun spin r n = if n = 0 then #2 (!r)\n"
      "  else let val w = work 300 in (fill r 3; spin r (n - 1)) end\n"
      "val cell = ref (0, 0)\n"
      ";spin cell 120";
  rt::RunResult R = run(Src, true, 512);
  ASSERT_EQ(R.Outcome, rt::RunOutcome::Ok) << R.Error;
  EXPECT_EQ(R.ResultText, "2"); // last fill stores (1, 2)
  EXPECT_GT(R.Heap.MinorGcCount, 2u);
}

TEST_F(GenerationalEndToEnd, MinorsCopyLessThanMajorsWould) {
  // Long-lived structure + short-lived churn: minors keep re-copy cost
  // low — the generational payoff the paper's [16, 17] measure.
  const char *Src =
      "fun build n = if n = 0 then nil else (n, n) :: build (n - 1)\n"
      "fun keepalive xs n = if n = 0 then xs "
      "else let val w = work 600 in keepalive xs (n - 1) end\n"
      "fun len xs = case xs of nil => 0 | _ :: t => 1 + len t\n"
      "val longlived = build 400\n"
      ";len (keepalive longlived 60)";
  rt::RunResult Gen = run(Src, true, 1024);
  rt::RunResult NonGen = run(Src, false, 1024);
  ASSERT_EQ(Gen.Outcome, rt::RunOutcome::Ok) << Gen.Error;
  ASSERT_EQ(NonGen.Outcome, rt::RunOutcome::Ok) << NonGen.Error;
  EXPECT_EQ(Gen.ResultText, NonGen.ResultText);
  // The long-lived list is copied by (almost) every non-generational
  // collection, but only by the majors in generational mode.
  EXPECT_LT(Gen.Heap.CopiedWords, NonGen.Heap.CopiedWords);
}

TEST_F(GenerationalEndToEnd, GcSafetyHoldsGenerationally) {
  // rg stays safe and rg- still crashes with the generational collector.
  Compiler C;
  auto URg = C.compile(bench::danglingPointerProgram());
  ASSERT_NE(URg, nullptr) << C.diagnostics().str();
  rt::EvalOptions E;
  E.Generational = true;
  E.GcThresholdWords = 1024;
  E.RetainReleasedPages = true;
  rt::RunResult RRg = C.run(*URg, E);
  EXPECT_EQ(RRg.Outcome, rt::RunOutcome::Ok) << RRg.Error;

  Compiler C2;
  CompileOptions Opts;
  Opts.Strat = Strategy::RgMinus;
  auto URgm = C2.compile(bench::danglingPointerProgram(), Opts);
  ASSERT_NE(URgm, nullptr) << C2.diagnostics().str();
  rt::RunResult RRgm = C2.run(*URgm, E);
  EXPECT_EQ(RRgm.Outcome, rt::RunOutcome::DanglingPointer);
}

} // namespace
