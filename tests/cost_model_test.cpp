//===- tests/cost_model_test.cpp - Learned cost-model tests ---------------===//
//
// The CostModel in isolation: the bootstrap and per-byte-prior
// prediction ladder (and its FromPrior marking, which admission's
// never-shed-cold rule rides on), EWMA convergence of per-key entries,
// the prior's cold-completions-only update rule, budget derivation from
// the per-phase quantile rings (run-phase exclusion, minimum-sample
// gating, multiplier), and the snapshot counters /stats exposes.
// Labelled `cost` in ctest and expected to be clean under
// -DRML_SANITIZE=thread.
//
//===----------------------------------------------------------------------===//

#include "service/CostModel.h"

#include "core/Pipeline.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

using namespace rml;
using namespace rml::service;

namespace {

/// One non-skipped phase profile worth \p Nanos of wall time.
PhaseProfile phase(const char *Name, uint64_t Nanos, bool Skipped = false) {
  PhaseProfile P;
  P.Name = Name;
  P.WallNanos = Nanos;
  P.Skipped = Skipped;
  return P;
}

TEST(CostModelUnit, BootstrapPredictionIsByteCountAndFromPrior) {
  CostModel M;
  // No history at all: the prediction is the byte count itself — wrong
  // units, right order — and marked FromPrior so admission never sheds
  // on it.
  CostModel::Prediction P = M.predict(/*Hash=*/1, /*SourceBytes=*/100);
  EXPECT_EQ(P.Nanos, 100u);
  EXPECT_TRUE(P.FromPrior);
  // Predictions are clamped to >= 1 (a zero cost would confuse every
  // consumer: Ljf ties, deficit charges, shed comparisons).
  EXPECT_EQ(M.predict(2, 0).Nanos, 1u);
  EXPECT_TRUE(M.predict(2, 0).FromPrior);
}

TEST(CostModelUnit, ObservationCreatesALearnedEntry) {
  CostModel M;
  std::vector<PhaseProfile> Profiles = {
      phase("parse", 600),
      phase("rcheck", 0, /*Skipped=*/true), // reused work: not a cost
      phase("eval", 400),
  };
  M.observe(/*Hash=*/7, /*SourceBytes=*/50, Profiles, /*UpdatePrior=*/true);
  CostModel::Prediction P = M.predict(7, 50);
  EXPECT_FALSE(P.FromPrior);
  EXPECT_EQ(P.Nanos, 1000u); // 600 + 400; the skipped phase is free
}

TEST(CostModelUnit, EntryEwmaWeighsNewObservationsByAlpha) {
  CostModel M;
  M.observe(7, 10, {phase("parse", 1000)}, true);
  M.observe(7, 10, {phase("parse", 2000)}, true);
  // First observation seeds the entry, the second folds in at Alpha:
  // 0.4 * 2000 + 0.6 * 1000 = 1400.
  EXPECT_EQ(M.predict(7, 10).Nanos, 1400u);

  // Repeated identical observations converge on the stable cost, each
  // step shrinking the gap by (1 - Alpha).
  uint64_t PrevGap = UINT64_MAX;
  for (int I = 0; I < 12; ++I) {
    M.observe(7, 10, {phase("parse", 2000)}, true);
    uint64_t Gap = 2000 - M.predict(7, 10).Nanos;
    EXPECT_LE(Gap, PrevGap);
    PrevGap = Gap;
  }
  EXPECT_LE(PrevGap, 10u);
}

TEST(CostModelUnit, PerBytePriorScalesColdPredictions) {
  CostModel M;
  // One cold completion: 100 bytes costing 1000ns makes the prior
  // 10ns/byte; a never-seen 50-byte source now predicts 500ns.
  M.observe(/*Hash=*/1, /*SourceBytes=*/100, {phase("parse", 1000)},
            /*UpdatePrior=*/true);
  CostModel::Prediction Cold = M.predict(/*Hash=*/999, /*SourceBytes=*/50);
  EXPECT_TRUE(Cold.FromPrior);
  EXPECT_EQ(Cold.Nanos, 500u);

  // Cache-hit completions must not drag the prior down: UpdatePrior is
  // false, so the per-key entry moves but the prior holds at 10ns/byte.
  M.observe(/*Hash=*/2, /*SourceBytes=*/100, {phase("run", 10)},
            /*UpdatePrior=*/false);
  EXPECT_EQ(M.predict(999, 50).Nanos, 500u);
  EXPECT_EQ(M.predict(2, 100).Nanos, 10u); // the entry itself did learn
  EXPECT_FALSE(M.predict(2, 100).FromPrior);
}

TEST(CostModelUnit, DeriveBudgetsGatesOnSamplesAndExcludesRun) {
  CostModel M;
  // 100 parse samples of 10..1000ns (uniform), plus run-phase samples
  // that must never produce a budget (budgets bind compiles only).
  for (uint64_t I = 1; I <= 100; ++I) {
    M.observePhase(phase("parse", I * 10));
    M.observePhase(phase(Compiler::RunPhaseName, I * 1000));
  }
  // Not enough history yet under a higher gate: empty means "no
  // budgets", never "budget everything at zero".
  EXPECT_TRUE(M.deriveBudgets(0.95, 8.0, 101).empty());

  std::map<std::string, uint64_t> B = M.deriveBudgets(0.95, 8.0, 100);
  ASSERT_EQ(B.size(), 1u);
  ASSERT_TRUE(B.count("parse"));
  EXPECT_FALSE(B.count(Compiler::RunPhaseName));
  // p95 of 10,20,...,1000 sits at sample index round(0.95 * 99) = 94
  // (zero-based) = 950ns; the safety multiplier scales it to 7600.
  EXPECT_EQ(B["parse"], 7600u);
}

TEST(CostModelUnit, PhaseRingRetainsOnlyTheNewestSamples) {
  CostModel M;
  // Overfill the ring with cheap samples, then refill it entirely with
  // expensive ones: the quantile must reflect only the survivors.
  for (size_t I = 0; I < CostModel::RingCapacity; ++I)
    M.observePhase(phase("parse", 10));
  for (size_t I = 0; I < CostModel::RingCapacity; ++I)
    M.observePhase(phase("parse", 1000));
  std::map<std::string, uint64_t> B = M.deriveBudgets(0.5, 1.0, 1);
  ASSERT_TRUE(B.count("parse"));
  EXPECT_EQ(B["parse"], 1000u);
}

TEST(CostModelUnit, SnapshotCountsEntriesHitsAndPriorUses) {
  CostModel M;
  CostModel::Snapshot S0 = M.snapshot();
  EXPECT_EQ(S0.Entries, 0u);
  EXPECT_EQ(S0.Hits, 0u);
  EXPECT_EQ(S0.PriorUses, 0u);
  EXPECT_EQ(S0.PriorPerByte, 0.0);

  M.predict(1, 10); // bootstrap: a prior use
  M.observe(1, 10, {phase("parse", 500)}, true);
  M.predict(1, 10); // entry hit
  M.predict(2, 10); // prior use
  CostModel::Snapshot S = M.snapshot();
  EXPECT_EQ(S.Entries, 1u);
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_EQ(S.PriorUses, 2u);
  EXPECT_DOUBLE_EQ(S.PriorPerByte, 50.0);
}

TEST(CostModelUnit, ConcurrentObserversAndPredictorsStayCoherent) {
  // Hammer the model from several threads (TSan runs this suite): the
  // test is that counters add up and nothing tears, not any ordering.
  CostModel M;
  constexpr int Threads = 4;
  constexpr int PerThread = 500;
  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T)
    Ts.emplace_back([&M, T] {
      for (int I = 0; I < PerThread; ++I) {
        uint64_t Hash = static_cast<uint64_t>(T * PerThread + I);
        M.observe(Hash, 10, {phase("parse", 100)}, true);
        M.observePhase(phase("parse", 100));
        M.predict(Hash, 10);
      }
    });
  for (std::thread &T : Ts)
    T.join();
  CostModel::Snapshot S = M.snapshot();
  EXPECT_EQ(S.Entries, static_cast<uint64_t>(Threads * PerThread));
  // Every predict followed its own observe: all hits, no prior uses.
  EXPECT_EQ(S.Hits, static_cast<uint64_t>(Threads * PerThread));
  EXPECT_EQ(S.PriorUses, 0u);
  EXPECT_EQ(M.deriveBudgets(0.95, 1.0, 1).at("parse"), 100u);
}

} // namespace
