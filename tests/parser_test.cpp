//===- tests/parser_test.cpp - Parser unit tests --------------------------===//

#include "ast/Parser.h"

#include <gtest/gtest.h>

using namespace rml;

namespace {

class ParserTest : public ::testing::Test {
protected:
  std::string parseExprText(std::string_view Src) {
    Diags.clear();
    std::optional<Program> P = parseString(Src, Arena, Names, Diags);
    if (!P) {
      ADD_FAILURE() << "parse failed: " << Diags.str();
      return "";
    }
    return printExpr(P->Result, Names);
  }

  std::optional<Program> parse(std::string_view Src) {
    Diags.clear();
    return parseString(Src, Arena, Names, Diags);
  }

  AstArena Arena;
  Interner Names;
  DiagnosticEngine Diags;
};

TEST_F(ParserTest, Literals) {
  EXPECT_EQ(parseExprText("42"), "42");
  EXPECT_EQ(parseExprText("true"), "true");
  EXPECT_EQ(parseExprText("()"), "()");
  EXPECT_EQ(parseExprText("\"hi\""), "\"hi\"");
  EXPECT_EQ(parseExprText("nil"), "nil");
}

TEST_F(ParserTest, ArithmeticPrecedence) {
  EXPECT_EQ(parseExprText("1 + 2 * 3"), "(1 + (2 * 3))");
  EXPECT_EQ(parseExprText("1 * 2 + 3"), "((1 * 2) + 3)");
  EXPECT_EQ(parseExprText("1 + 2 - 3"), "((1 + 2) - 3)");
  EXPECT_EQ(parseExprText("1 < 2 + 3"), "(1 < (2 + 3))");
}

TEST_F(ParserTest, ConsIsRightAssociative) {
  EXPECT_EQ(parseExprText("1 :: 2 :: nil"), "(1 :: (2 :: nil))");
}

TEST_F(ParserTest, ApplicationBindsTighterThanOperators) {
  EXPECT_EQ(parseExprText("fn f => fn x => f x + 1"),
            "(fn f => (fn x => ((f x) + 1)))");
}

TEST_F(ParserTest, ApplicationIsLeftAssociative) {
  EXPECT_EQ(parseExprText("fn f => fn x => fn y => f x y"),
            "(fn f => (fn x => (fn y => ((f x) y))))");
}

TEST_F(ParserTest, UnaryNegationDesugars) {
  EXPECT_EQ(parseExprText("~5"), "(0 - 5)");
}

TEST_F(ParserTest, ListLiteralDesugars) {
  EXPECT_EQ(parseExprText("[1, 2]"), "(1 :: (2 :: nil))");
  EXPECT_EQ(parseExprText("[]"), "nil");
}

TEST_F(ParserTest, PairsAndSelectors) {
  EXPECT_EQ(parseExprText("(1, 2)"), "(1, 2)");
  EXPECT_EQ(parseExprText("#1 (1, 2)"), "#1 (1, 2)");
  // Triples become right-nested pairs.
  EXPECT_EQ(parseExprText("(1, 2, 3)"), "(1, (2, 3))");
}

TEST_F(ParserTest, Sequencing) {
  EXPECT_EQ(parseExprText("(1; 2; 3)"), "(1; 2; 3)");
}

TEST_F(ParserTest, LetValAndFun) {
  EXPECT_EQ(parseExprText("let val x = 1 in x end"),
            "let val x = 1 in x end");
  EXPECT_EQ(parseExprText("let fun f x = x in f 1 end"),
            "let fun f x = x in (f 1) end");
}

TEST_F(ParserTest, CurriedFunDesugars) {
  EXPECT_EQ(parseExprText("let fun f x y = x + y in f end"),
            "let fun f x = (fn y => (x + y)) in f end");
}

TEST_F(ParserTest, UnitParameterDesugars) {
  // fun f () = e binds a fresh unit-annotated parameter.
  std::optional<Program> P = parse("fun f () = 1");
  ASSERT_TRUE(P.has_value());
  ASSERT_EQ(P->Decs.size(), 1u);
  EXPECT_NE(P->Decs[0]->ParamAnnot, nullptr);
  EXPECT_EQ(P->Decs[0]->ParamAnnot->K, TyExpr::Kind::Unit);
}

TEST_F(ParserTest, CaseOnLists) {
  EXPECT_EQ(parseExprText("case [1] of nil => 0 | h :: t => h"),
            "(case (1 :: nil) of nil => 0 | h :: t => h)");
}

TEST_F(ParserTest, IfThenElse) {
  EXPECT_EQ(parseExprText("if 1 < 2 then 3 else 4"),
            "(if (1 < 2) then 3 else 4)");
}

TEST_F(ParserTest, References) {
  EXPECT_EQ(parseExprText("let val r = ref 1 in (r := 2; !r) end"),
            "let val r = (ref 1) in ((r := 2); !r) end");
}

TEST_F(ParserTest, AnnotatedParameter) {
  EXPECT_EQ(parseExprText("fn (x : 'a) => x"), "(fn x => x)");
}

TEST_F(ParserTest, TypeAnnotationExpr) {
  EXPECT_EQ(parseExprText("(1 : int)"), "(1 : int)");
}

TEST_F(ParserTest, ExceptionsAndHandlers) {
  std::optional<Program> P =
      parse("exception E of int\n(raise E 3) handle E v => v");
  ASSERT_TRUE(P.has_value());
  ASSERT_EQ(P->Decs.size(), 1u);
  EXPECT_EQ(P->Decs[0]->K, Dec::Kind::Exn);
  EXPECT_EQ(printExpr(P->Result, Names), "((raise E 3) handle E v => v)");
}

TEST_F(ParserTest, WildcardHandler) {
  std::optional<Program> P = parse("exception E\n(raise E) handle _ => 2");
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(printExpr(P->Result, Names), "((raise E) handle _ => 2)");
}

TEST_F(ParserTest, PrimitivesApplied) {
  EXPECT_EQ(parseExprText("print \"x\""), "(print \"x\")");
  EXPECT_EQ(parseExprText("itos 5"), "(itos 5)");
  EXPECT_EQ(parseExprText("size \"abc\""), "(size \"abc\")");
  EXPECT_EQ(parseExprText("work 10"), "(work 10)");
}

TEST_F(ParserTest, PrimitiveAsValueEtaExpands) {
  // "print" in value position becomes a lambda.
  std::string S = parseExprText("fn f => f print");
  EXPECT_NE(S.find("fn"), std::string::npos);
  EXPECT_NE(S.find("print"), std::string::npos);
}

TEST_F(ParserTest, AndAlsoOrElsePrecedence) {
  EXPECT_EQ(parseExprText("true andalso false orelse true"),
            "((true andalso false) orelse true)");
  EXPECT_EQ(parseExprText("1 < 2 andalso 2 < 3"),
            "((1 < 2) andalso (2 < 3))");
}

TEST_F(ParserTest, TopLevelProgram) {
  std::optional<Program> P = parse("val x = 1\nfun f y = y + x\n;f 2");
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(P->Decs.size(), 2u);
  EXPECT_EQ(printExpr(P->Result, Names), "(f 2)");
}

TEST_F(ParserTest, MissingParenReported) {
  EXPECT_FALSE(parse("(1 + 2").has_value());
  EXPECT_TRUE(Diags.hasErrors());
}

TEST_F(ParserTest, MissingEndReported) {
  EXPECT_FALSE(parse("let val x = 1 in x").has_value());
  EXPECT_TRUE(Diags.hasErrors());
}

TEST_F(ParserTest, TypeSyntax) {
  std::optional<Program> P =
      parse("fun f (x : int * string -> bool list) = x\n;()");
  ASSERT_TRUE(P.has_value());
  const Dec *D = P->Decs[0];
  ASSERT_NE(D->ParamAnnot, nullptr);
  EXPECT_EQ(printTyExpr(D->ParamAnnot, Names),
            "((int * string) -> bool list)");
}

} // namespace
