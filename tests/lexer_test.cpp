//===- tests/lexer_test.cpp - Lexer unit tests ----------------------------===//

#include "ast/Lexer.h"

#include <gtest/gtest.h>

using namespace rml;

namespace {

std::vector<Token> lex(std::string_view Src, bool ExpectOk = true) {
  DiagnosticEngine Diags;
  Lexer L(Src, Diags);
  std::vector<Token> Toks = L.lexAll();
  EXPECT_EQ(ExpectOk, !Diags.hasErrors()) << Diags.str();
  return Toks;
}

std::vector<TokKind> kinds(const std::vector<Token> &Toks) {
  std::vector<TokKind> Out;
  for (const Token &T : Toks)
    Out.push_back(T.Kind);
  return Out;
}

TEST(Lexer, Empty) {
  auto Toks = lex("");
  ASSERT_EQ(Toks.size(), 1u);
  EXPECT_EQ(Toks[0].Kind, TokKind::Eof);
}

TEST(Lexer, Integers) {
  auto Toks = lex("0 42 1234567");
  ASSERT_EQ(Toks.size(), 4u);
  EXPECT_EQ(Toks[0].IntValue, 0);
  EXPECT_EQ(Toks[1].IntValue, 42);
  EXPECT_EQ(Toks[2].IntValue, 1234567);
}

TEST(Lexer, Keywords) {
  auto Toks = lex("val fun fn let in end if then else case of nil");
  std::vector<TokKind> Want = {
      TokKind::KwVal,  TokKind::KwFun,  TokKind::KwFn,  TokKind::KwLet,
      TokKind::KwIn,   TokKind::KwEnd,  TokKind::KwIf,  TokKind::KwThen,
      TokKind::KwElse, TokKind::KwCase, TokKind::KwOf,  TokKind::KwNil,
      TokKind::Eof};
  EXPECT_EQ(kinds(Toks), Want);
}

TEST(Lexer, Identifiers) {
  auto Toks = lex("x foo' bar_baz Option.compose");
  ASSERT_EQ(Toks.size(), 5u);
  EXPECT_EQ(Toks[0].Text, "x");
  EXPECT_EQ(Toks[1].Text, "foo'");
  EXPECT_EQ(Toks[2].Text, "bar_baz");
  EXPECT_EQ(Toks[3].Text, "Option.compose");
}

TEST(Lexer, TypeVariables) {
  auto Toks = lex("'a 'b2");
  EXPECT_EQ(Toks[0].Kind, TokKind::TyVar);
  EXPECT_EQ(Toks[0].Text, "'a");
  EXPECT_EQ(Toks[1].Text, "'b2");
}

TEST(Lexer, Operators) {
  auto Toks = lex("-> => :: := <> <= >= < > = + - * ^ ! ~ | ; , : #1 #2 _");
  std::vector<TokKind> Want = {
      TokKind::Arrow, TokKind::DArrow,    TokKind::Cons,  TokKind::Assign,
      TokKind::NotEq, TokKind::LessEq,    TokKind::GreaterEq,
      TokKind::Less,  TokKind::Greater,   TokKind::Eq,    TokKind::Plus,
      TokKind::Minus, TokKind::Star,      TokKind::Caret, TokKind::Bang,
      TokKind::Tilde, TokKind::Bar,       TokKind::Semi,  TokKind::Comma,
      TokKind::Colon, TokKind::Hash1,     TokKind::Hash2, TokKind::Wild,
      TokKind::Eof};
  EXPECT_EQ(kinds(Toks), Want);
}

TEST(Lexer, StringLiterals) {
  auto Toks = lex(R"("oh" "no" "a\nb\t\"q\"")");
  EXPECT_EQ(Toks[0].Text, "oh");
  EXPECT_EQ(Toks[1].Text, "no");
  EXPECT_EQ(Toks[2].Text, "a\nb\t\"q\"");
}

TEST(Lexer, NestedComments) {
  auto Toks = lex("1 (* outer (* inner *) still out *) 2");
  ASSERT_EQ(Toks.size(), 3u);
  EXPECT_EQ(Toks[0].IntValue, 1);
  EXPECT_EQ(Toks[1].IntValue, 2);
}

TEST(Lexer, UnterminatedComment) {
  DiagnosticEngine Diags;
  Lexer L("1 (* never closed", Diags);
  L.lexAll();
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Lexer, UnterminatedString) {
  DiagnosticEngine Diags;
  Lexer L("\"abc", Diags);
  L.lexAll();
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Lexer, SourceLocations) {
  auto Toks = lex("a\n  b");
  EXPECT_EQ(Toks[0].Loc.Line, 1u);
  EXPECT_EQ(Toks[0].Loc.Col, 1u);
  EXPECT_EQ(Toks[1].Loc.Line, 2u);
  EXPECT_EQ(Toks[1].Loc.Col, 3u);
}

TEST(Lexer, HashRequiresDigit) {
  DiagnosticEngine Diags;
  Lexer L("#x", Diags);
  L.lexAll();
  EXPECT_TRUE(Diags.hasErrors());
}

} // namespace
