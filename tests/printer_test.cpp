//===- tests/printer_test.cpp - Region-program printer tests --------------===//
//
// The Figure 2-style pretty printer: annotated programs must show the
// paper's notation (letregion binders, at-annotations, region
// instantiation lists, schemes with type-variable contexts).
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"

#include <gtest/gtest.h>

using namespace rml;

namespace {

class PrinterTest : public ::testing::Test {
protected:
  std::string printed(std::string_view Src, Strategy S = Strategy::Rg) {
    CompileOptions Opts;
    Opts.Strat = S;
    auto Unit = C.compile(Src, Opts);
    if (!Unit) {
      ADD_FAILURE() << C.diagnostics().str();
      return "";
    }
    return C.printProgram(*Unit);
  }

  Compiler C;
};

TEST_F(PrinterTest, AllocationAnnotations) {
  std::string P = printed("#1 (1, 2) + 3");
  EXPECT_NE(P.find(") at r"), std::string::npos) << P;
  EXPECT_NE(P.find("letregion r"), std::string::npos) << P;
}

TEST_F(PrinterTest, StringConcatShowsDestination) {
  std::string P = printed("size (\"a\" ^ \"b\")");
  EXPECT_NE(P.find("^[r"), std::string::npos) << P;
  EXPECT_NE(P.find("\"a\" at r"), std::string::npos) << P;
}

TEST_F(PrinterTest, SchemesShowQuantifiersAndDelta) {
  std::string P =
      printed("fun compose fg = fn x => #1 fg (#2 fg x)\n;()");
  // Quantifier block with regions, effect vars and a spurious entry.
  EXPECT_NE(P.find("fun compose["), std::string::npos) << P;
  EXPECT_NE(P.find("'a:e"), std::string::npos) << P;
  // rg- prints plain type variables (no arrow effect).
  std::string P2 =
      printed("fun compose fg = fn x => #1 fg (#2 fg x)\n;()",
              Strategy::RgMinus);
  EXPECT_EQ(P2.find("'a:e"), std::string::npos) << P2;
  EXPECT_NE(P2.find("'a"), std::string::npos) << P2;
}

TEST_F(PrinterTest, RegionApplicationShowsSubstitution) {
  std::string P = printed("fun id x = x\n;id 3");
  EXPECT_NE(P.find("id ["), std::string::npos) << P;
  EXPECT_NE(P.find(":="), std::string::npos) << P;
  EXPECT_NE(P.find("] at r"), std::string::npos) << P;
}

TEST_F(PrinterTest, LetShowsBindingTypes) {
  std::string P = printed("let val s = \"x\" in size s end");
  EXPECT_NE(P.find("let val s : (string, r"), std::string::npos) << P;
}

TEST_F(PrinterTest, LetregionListsDischargedEffectVariables) {
  // At least one letregion in the compose program discharges secondary
  // effect variables alongside its region.
  std::string P = printed(
      "fun compose fg = fn x => #1 fg (#2 fg x)\n"
      "val h = compose (fn x => x + 1, fn x => x * 2)\n;h 1");
  bool Found = false;
  for (size_t Pos = P.find("letregion r"); Pos != std::string::npos;
       Pos = P.find("letregion r", Pos + 1)) {
    size_t In = P.find(" in", Pos);
    if (In != std::string::npos &&
        P.substr(Pos, In - Pos).find(",e") != std::string::npos)
      Found = true;
  }
  EXPECT_TRUE(Found) << P;
}

} // namespace
