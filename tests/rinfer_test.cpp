//===- tests/rinfer_test.cpp - Region inference integration tests ---------===//
//
// Region inference produces programs that the Figure 4 checker accepts:
// under rg with the GC-safety conditions on, under rg-/r with the plain
// Tofte-Talpin reading. Also checks the structural properties of the
// output (letregion insertion, region application at polymorphic uses,
// scheme quantification).
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"

#include "bench/Programs.h"

#include <gtest/gtest.h>

using namespace rml;

namespace {

class RInferTest : public ::testing::Test {
protected:
  std::unique_ptr<CompiledUnit> compile(std::string_view Src,
                                        Strategy S = Strategy::Rg,
                                        bool Check = true) {
    CompileOptions Opts;
    Opts.Strat = S;
    Opts.Check = Check;
    auto Unit = C.compile(Src, Opts);
    EXPECT_NE(Unit, nullptr) << C.diagnostics().str();
    return Unit;
  }

  static unsigned countKind(const RExpr *E, RExpr::Kind K) {
    if (!E)
      return 0;
    unsigned N = E->K == K ? 1 : 0;
    N += countKind(E->A, K) + countKind(E->B, K) + countKind(E->C, K);
    for (const RExpr *Item : E->Items)
      N += countKind(Item, K);
    return N;
  }

  Compiler C;
};

TEST_F(RInferTest, OutputChecksUnderAllStrategies) {
  const char *Src =
      "fun twice f = fn x => f (f x)\n"
      "fun inc x = x + 1\n"
      "val p = (twice inc 3, twice (fn s => s ^ s) \"ab\")\n"
      ";#1 p + size (#2 p)";
  for (Strategy S : {Strategy::Rg, Strategy::RgMinus, Strategy::R}) {
    auto Unit = compile(Src, S);
    ASSERT_NE(Unit, nullptr);
    EXPECT_TRUE(Unit->Checked.has_value());
  }
}

TEST_F(RInferTest, MonomorphicProgramHasNoSchemeQuantifiers) {
  auto Unit = compile("val x = (1, 2)\n;#1 x");
  ASSERT_NE(Unit, nullptr);
  EXPECT_EQ(countKind(Unit->program().Root, RExpr::Kind::RApp), 0u);
}

TEST_F(RInferTest, PolymorphicUseGoesThroughRegionApplication) {
  auto Unit = compile("fun id x = x\n;(id 1, id \"a\")");
  ASSERT_NE(Unit, nullptr);
  // Two polymorphic uses => two region applications.
  EXPECT_EQ(countKind(Unit->program().Root, RExpr::Kind::RApp), 2u);
}

TEST_F(RInferTest, LetregionsAreInserted) {
  // The intermediate pair dies inside: at least one letregion.
  auto Unit = compile("val n = #1 (1, 2) + #2 (3, 4)\n;n");
  ASSERT_NE(Unit, nullptr);
  EXPECT_GT(Unit->Inferred.NumLetRegions, 0u);
  EXPECT_GT(countKind(Unit->program().Root, RExpr::Kind::LetRegion), 0u);
}

TEST_F(RInferTest, EscapingValuesAreNotMasked) {
  // The string escapes as the program result: its region must not be
  // letregion-bound, so it materialises as the global region.
  auto Unit = compile("\"oh\" ^ \"no\"");
  ASSERT_NE(Unit, nullptr);
  const Mu *Root = Unit->rootMu();
  ASSERT_EQ(Root->K, Mu::Kind::Boxed);
  EXPECT_TRUE(Root->Rho.isGlobal());
}

static void placementSignature(const RExpr *E, std::string &Out) {
  if (!E)
    return;
  Out += static_cast<char>('A' + static_cast<int>(E->K));
  if (E->AtRho.isValid())
    Out += 'r' + std::to_string(E->AtRho.Id);
  if (E->BoundRho.isValid())
    Out += 'L' + std::to_string(E->BoundRho.Id);
  placementSignature(E->A, Out);
  placementSignature(E->B, Out);
  placementSignature(E->C, Out);
  for (const RExpr *Item : E->Items)
    placementSignature(Item, Out);
}

TEST_F(RInferTest, DeadStringRegionIsMaskedUnderRgMinus) {
  // Figure 1's essence: under rg- the captured dead string's region is
  // bound tightly inside the h binding (Figure 2(a)); under rg it is
  // bound around h's whole live range (Figure 2(b)). Same regions,
  // different letregion *placement* — the paper's "diff" column.
  const std::string &Src = bench::danglingPointerProgram();
  auto URg = compile(Src, Strategy::Rg);
  auto URgm = compile(Src, Strategy::RgMinus);
  ASSERT_NE(URg, nullptr);
  ASSERT_NE(URgm, nullptr);
  std::string SigRg, SigRgm;
  placementSignature(URg->program().Root, SigRg);
  placementSignature(URgm->program().Root, SigRgm);
  EXPECT_NE(SigRg, SigRgm);
}

TEST_F(RInferTest, RecursiveFunctionsSelfInstantiate) {
  auto Unit = compile(
      "fun count xs = case xs of nil => 0 | _ :: t => 1 + count t\n"
      ";count [1, 2, 3]");
  ASSERT_NE(Unit, nullptr);
  // One self-call region application plus one outer use.
  EXPECT_GE(countKind(Unit->program().Root, RExpr::Kind::RApp), 2u);
}

TEST_F(RInferTest, SchemesRecordQuantifiers) {
  auto Unit = compile("fun pairup x = (x, x)\n;pairup 1");
  ASSERT_NE(Unit, nullptr);
  std::string S = C.schemeOf(*Unit, "pairup");
  EXPECT_NE(S.find("forall"), std::string::npos) << S;
  // The result pair's region is a quantified formal.
  EXPECT_NE(S.find("r"), std::string::npos) << S;
}

TEST_F(RInferTest, StatisticsArepopulated) {
  auto Unit = compile(bench::findBenchmark("msort")->Source);
  ASSERT_NE(Unit, nullptr);
  EXPECT_GT(Unit->Inferred.NumRegionVars, 0u);
  EXPECT_GT(Unit->Inferred.NumEffectVars, 0u);
  EXPECT_GT(Unit->Inferred.NumLetRegions, 0u);
  EXPECT_GT(Unit->Inferred.NumSchemes, 0u);
}

TEST_F(RInferTest, SpuriousModesBothCheck) {
  const char *Src = "fun compose fg = fn x => #1 fg (#2 fg x)\n"
                    "val h = compose (fn s => size s, fn u => \"a\" ^ \"b\")\n"
                    ";h ()";
  for (SpuriousMode M :
       {SpuriousMode::FreshSecondary, SpuriousMode::IdentifyWithFun}) {
    CompileOptions Opts;
    Opts.Strat = Strategy::Rg;
    Opts.Spurious = M;
    auto Unit = C.compile(Src, Opts);
    ASSERT_NE(Unit, nullptr) << C.diagnostics().str();
    rt::RunResult R = C.run(*Unit);
    EXPECT_EQ(R.Outcome, rt::RunOutcome::Ok) << R.Error;
    EXPECT_EQ(R.ResultText, "2");
  }
}

TEST_F(RInferTest, RgMinusOutputFailsTheGcSafeChecker) {
  // The central claim, checker-level: rg- output is region-type-correct
  // (Tofte-Talpin) but violates the GC-safe rules.
  Compiler C2;
  CompileOptions Opts;
  Opts.Strat = Strategy::RgMinus;
  Opts.Check = true; // checks with GcSafety::Off internally: passes
  auto Unit = C2.compile(bench::danglingPointerProgram(), Opts);
  ASSERT_NE(Unit, nullptr) << C2.diagnostics().str();

  DiagnosticEngine D2;
  RTypeArena A2;
  std::optional<CheckResult> Strict = checkRProgram(
      Unit->program(), A2, C2.names(), D2, GcSafety::On);
  EXPECT_FALSE(Strict.has_value())
      << "rg- output unexpectedly satisfies the GC-safe rules";
}

TEST_F(RInferTest, RgOutputPassesTheGcSafeChecker) {
  Compiler C2;
  auto Unit = C2.compile(bench::danglingPointerProgram());
  ASSERT_NE(Unit, nullptr) << C2.diagnostics().str();
  EXPECT_TRUE(Unit->Checked.has_value());
}

} // namespace
