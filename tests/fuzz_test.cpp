//===- tests/fuzz_test.cpp - Type-directed program fuzzing ----------------===//
//
// Generates random *well-typed* MiniML programs (type-directed, seeded,
// deterministic) in the pure fragment and checks, for every program:
//
//   * the full pipeline compiles under rg and the strict Figure 4
//     checker accepts the result,
//   * rg, rg-, r, scheme (3), and the generational collector all compute
//     the same value under an aggressive collection schedule,
//   * the small-step semantics of Section 3.10 computes the same value
//     as the realistic runtime.
//
// The generator deliberately instantiates the composition function's
// spurious type variable with random (often boxed) types — the exact
// shape of the paper's counterexample — so GC safety is exercised far
// beyond the hand-written programs.
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"

#include "smallstep/Step.h"

#include <gtest/gtest.h>

#include <memory>
#include <random>

using namespace rml;

namespace {

//===----------------------------------------------------------------------===//
// Generator types
//===----------------------------------------------------------------------===//

struct GTy;
using GTyRef = std::shared_ptr<GTy>;

struct GTy {
  enum class Kind : uint8_t { Int, Bool, Str, Pair, List, Fun };
  Kind K;
  GTyRef A, B;

  static GTyRef mk(Kind K, GTyRef A = nullptr, GTyRef B = nullptr) {
    auto T = std::make_shared<GTy>();
    T->K = K;
    T->A = std::move(A);
    T->B = std::move(B);
    return T;
  }
};

bool sameTy(const GTyRef &X, const GTyRef &Y) {
  if (X->K != Y->K)
    return false;
  if (X->A && !sameTy(X->A, Y->A))
    return false;
  if (X->B && !sameTy(X->B, Y->B))
    return false;
  return true;
}

std::string tyName(const GTyRef &T) {
  switch (T->K) {
  case GTy::Kind::Int:
    return "int";
  case GTy::Kind::Bool:
    return "bool";
  case GTy::Kind::Str:
    return "string";
  case GTy::Kind::Pair:
    return "(" + tyName(T->A) + " * " + tyName(T->B) + ")";
  case GTy::Kind::List:
    return tyName(T->A) + " list";
  case GTy::Kind::Fun:
    return "(" + tyName(T->A) + " -> " + tyName(T->B) + ")";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// The program generator
//===----------------------------------------------------------------------===//

class ProgGen {
public:
  explicit ProgGen(uint32_t Seed) : Rng(Seed) {}

  /// A full program of type int, using the polymorphic mini-basis.
  std::string program() {
    std::string Basis =
        "fun compose fg = fn x => #1 fg (#2 fg x)\n"
        "fun id x = x\n"
        "fun fst p = #1 p\n"
        "fun snd p = #2 p\n";
    return Basis + ";" + gen(GTy::mk(GTy::Kind::Int), 5);
  }

private:
  unsigned pick(unsigned N) { return static_cast<unsigned>(Rng() % N); }
  bool chance(unsigned Percent) { return pick(100) < Percent; }

  std::string freshVar() { return "v" + std::to_string(NextId++); }

  GTyRef randomTy(int Depth) {
    switch (pick(Depth > 0 ? 6 : 3)) {
    case 0:
      return GTy::mk(GTy::Kind::Int);
    case 1:
      return GTy::mk(GTy::Kind::Bool);
    case 2:
      return GTy::mk(GTy::Kind::Str);
    case 3:
      return GTy::mk(GTy::Kind::Pair, randomTy(Depth - 1),
                     randomTy(Depth - 1));
    case 4:
      return GTy::mk(GTy::Kind::List, randomTy(Depth - 1));
    default:
      return GTy::mk(GTy::Kind::Fun, randomTy(Depth - 1),
                     randomTy(Depth - 1));
    }
  }

  /// A variable of type \p T from the environment, or "".
  std::string varOf(const GTyRef &T) {
    std::vector<const std::string *> Hits;
    for (const auto &[Name, Ty] : Env)
      if (sameTy(Ty, T))
        Hits.push_back(&Name);
    if (Hits.empty())
      return "";
    return *Hits[pick(static_cast<unsigned>(Hits.size()))];
  }

  std::string gen(const GTyRef &T, int Depth) {
    // Leaves when out of budget.
    if (Depth <= 0)
      return leaf(T);
    // Shared generic forms.
    if (chance(25))
      return genericForm(T, Depth);
    // Type-directed forms.
    switch (T->K) {
    case GTy::Kind::Int:
      switch (pick(4)) {
      case 0:
        return leaf(T);
      case 1:
        return "(" + gen(T, Depth - 1) + " + " + gen(T, Depth - 1) + ")";
      case 2:
        return "(" + gen(T, Depth - 1) + " - " + gen(T, Depth - 1) + ")";
      default: {
        // Fold a list down to an int through its length.
        GTyRef ElemT = randomTy(1);
        GTyRef ListT = GTy::mk(GTy::Kind::List, ElemT);
        std::string Scrut = gen(ListT, Depth - 1);
        std::string H = freshVar(), Tl = freshVar();
        return "(case " + Scrut + " of nil => " + gen(T, 0) + " | " + H +
               " :: " + Tl + " => " + gen(T, 0) + ")";
      }
      }
    case GTy::Kind::Bool:
      switch (pick(3)) {
      case 0:
        return leaf(T);
      case 1:
        return "(" + gen(GTy::mk(GTy::Kind::Int), Depth - 1) + " < " +
               gen(GTy::mk(GTy::Kind::Int), Depth - 1) + ")";
      default:
        return "(" + gen(T, Depth - 1) +
               (chance(50) ? " andalso " : " orelse ") +
               gen(T, Depth - 1) + ")";
      }
    case GTy::Kind::Str:
      if (chance(55))
        return "(" + gen(T, Depth - 1) + " ^ " + gen(T, Depth - 1) + ")";
      return leaf(T);
    case GTy::Kind::Pair:
      return "(" + gen(T->A, Depth - 1) + ", " + gen(T->B, Depth - 1) + ")";
    case GTy::Kind::List:
      if (chance(60))
        return "(" + gen(T->A, Depth - 1) + " :: " + gen(T, Depth - 1) +
               ")";
      return leaf(T);
    case GTy::Kind::Fun: {
      std::string X = freshVar();
      size_t Mark = Env.size();
      Env.emplace_back(X, T->A);
      std::string Body = gen(T->B, Depth - 1);
      Env.resize(Mark);
      return "(fn (" + X + " : " + tyName(T->A) + ") => " + Body + ")";
    }
    }
    return leaf(T);
  }

  /// Forms available at every type: let, if, projection, application,
  /// polymorphic basis uses (incl. compose with a random boxed pivot),
  /// and (for int) a bounded recursive countdown.
  std::string genericForm(const GTyRef &T, int Depth) {
    if (T->K == GTy::Kind::Int && chance(12)) {
      // let fun f k = if k < 1 then e0 else eStep + f (k - 1)
      // in f smallN end — guaranteed-terminating recursion through the
      // full fun/region-application machinery.
      std::string F = freshVar(), K = freshVar();
      size_t Mark = Env.size();
      Env.emplace_back(K, GTy::mk(GTy::Kind::Int));
      std::string Base = gen(T, Depth - 2);
      std::string Step = gen(T, Depth - 2);
      Env.resize(Mark);
      return "let fun " + F + " " + K + " = if " + K + " < 1 then " +
             Base + " else " + Step + " + " + F + " (" + K +
             " - 1) in " + F + " " + std::to_string(pick(6) + 1) + " end";
    }
    switch (pick(7)) {
    case 0: { // let val x = e1 in e2 end
      GTyRef T1 = randomTy(Depth - 2);
      std::string X = freshVar();
      std::string Rhs = gen(T1, Depth - 1);
      size_t Mark = Env.size();
      Env.emplace_back(X, T1);
      std::string Body = gen(T, Depth - 1);
      Env.resize(Mark);
      return "let val " + X + " = " + Rhs + " in " + Body + " end";
    }
    case 1: // if
      return "(if " + gen(GTy::mk(GTy::Kind::Bool), Depth - 1) + " then " +
             gen(T, Depth - 1) + " else " + gen(T, Depth - 1) + ")";
    case 2: { // projection
      GTyRef Other = randomTy(Depth - 2);
      if (chance(50))
        return "#1 " + gen(GTy::mk(GTy::Kind::Pair, T, Other), Depth - 1);
      return "#2 " + gen(GTy::mk(GTy::Kind::Pair, Other, T), Depth - 1);
    }
    case 3: { // immediate application
      GTyRef ArgT = randomTy(Depth - 2);
      return "(" + gen(GTy::mk(GTy::Kind::Fun, ArgT, T), Depth - 1) + " " +
             gen(ArgT, Depth - 1) + ")";
    }
    case 4: // id instantiation
      return "(id " + gen(T, Depth - 1) + ")";
    case 5: { // fst/snd instantiation (a polymorphic pair use)
      GTyRef Other = randomTy(Depth - 2);
      if (chance(50))
        return "(fst (" + gen(T, Depth - 1) + ", " +
               gen(Other, Depth - 1) + "))";
      return "(snd (" + gen(Other, Depth - 1) + ", " + gen(T, Depth - 1) +
             "))";
    }
    default: { // compose with a random pivot type C — the paper's shape:
               // gamma := C, often boxed.
      GTyRef C = randomTy(Depth - 2);
      GTyRef ArgT = randomTy(Depth - 2);
      std::string F = gen(GTy::mk(GTy::Kind::Fun, C, T), Depth - 1);
      std::string G = gen(GTy::mk(GTy::Kind::Fun, ArgT, C), Depth - 1);
      std::string Arg = gen(ArgT, Depth - 1);
      return "(compose (" + F + ", " + G + ") " + Arg + ")";
    }
    }
  }

  std::string leaf(const GTyRef &T) {
    std::string V = varOf(T);
    if (!V.empty() && chance(60))
      return V;
    switch (T->K) {
    case GTy::Kind::Int:
      return std::to_string(pick(90));
    case GTy::Kind::Bool:
      return chance(50) ? "true" : "false";
    case GTy::Kind::Str: {
      const char *Words[] = {"\"oh\"", "\"no\"", "\"ok\"", "\"\""};
      return Words[pick(4)];
    }
    case GTy::Kind::Pair:
      return "(" + leaf(T->A) + ", " + leaf(T->B) + ")";
    case GTy::Kind::List:
      return chance(40) ? "nil"
                        : "(" + leaf(T->A) + " :: nil)";
    case GTy::Kind::Fun: {
      std::string X = freshVar();
      size_t Mark = Env.size();
      Env.emplace_back(X, T->A);
      std::string Body = leaf(T->B);
      Env.resize(Mark);
      return "(fn (" + X + " : " + tyName(T->A) + ") => " + Body + ")";
    }
    }
    return "0";
  }

  std::mt19937 Rng;
  unsigned NextId = 0;
  std::vector<std::pair<std::string, GTyRef>> Env;
};

//===----------------------------------------------------------------------===//
// The properties
//===----------------------------------------------------------------------===//

/// Runs \p Unit's flat form under the same options and pins it to the
/// tree walk's result: outcome, printed output, rendered value, error
/// text, step count and the full heap accounting. The flat interpreter
/// is a second implementation of the same operational semantics — any
/// divergence on a generated program is a bug in one of the two.
void expectFlatAgrees(const CompiledUnit &Unit, const rt::EvalOptions &E,
                      const rt::RunResult &Tree, const std::string &Src,
                      const char *Cfg) {
  ASSERT_NE(Unit.Flat, nullptr) << Cfg << "\n" << Src;
  rt::RunResult F = Compiler::runFlat(*Unit.Flat, E);
  EXPECT_EQ(F.Outcome, Tree.Outcome) << Cfg << "\n" << Src;
  EXPECT_EQ(F.Error, Tree.Error) << Cfg << "\n" << Src;
  EXPECT_EQ(F.Output, Tree.Output) << Cfg << "\n" << Src;
  EXPECT_EQ(F.ResultText, Tree.ResultText) << Cfg << "\n" << Src;
  EXPECT_EQ(F.Steps, Tree.Steps) << Cfg << "\n" << Src;
  EXPECT_EQ(F.Heap.AllocWords, Tree.Heap.AllocWords) << Cfg << "\n" << Src;
  EXPECT_EQ(F.Heap.GcCount, Tree.Heap.GcCount) << Cfg << "\n" << Src;
  EXPECT_EQ(F.Heap.MinorGcCount, Tree.Heap.MinorGcCount) << Cfg;
  EXPECT_EQ(F.Heap.MajorGcCount, Tree.Heap.MajorGcCount) << Cfg;
  EXPECT_EQ(F.Heap.CopiedWords, Tree.Heap.CopiedWords) << Cfg << "\n" << Src;
  EXPECT_EQ(F.Heap.RegionsCreated, Tree.Heap.RegionsCreated) << Cfg;
  EXPECT_EQ(F.Heap.FiniteRegionsCreated, Tree.Heap.FiniteRegionsCreated)
      << Cfg;
  EXPECT_EQ(F.Heap.PagesAllocated, Tree.Heap.PagesAllocated) << Cfg;
}

class FuzzTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(FuzzTest, PipelineAgreementAndGcSafety) {
  const int ProgramsPerSeed = 40;
  ProgGen Gen(GetParam());
  for (int I = 0; I < ProgramsPerSeed; ++I) {
    std::string Src = ProgGen(GetParam() * 1000 + I).program();

    // Reference: rg with the strict checker.
    Compiler C;
    auto Unit = C.compile(Src);
    ASSERT_NE(Unit, nullptr)
        << "rg compile failed:\n" << C.diagnostics().str() << "\n" << Src;
    rt::EvalOptions Aggressive;
    Aggressive.GcThresholdWords = 256; // collect constantly
    Aggressive.RetainReleasedPages = true;
    rt::RunResult Ref = C.run(*Unit, Aggressive);
    ASSERT_EQ(Ref.Outcome, rt::RunOutcome::Ok) << Ref.Error << "\n" << Src;
    expectFlatAgrees(*Unit, Aggressive, Ref, Src, "rg/flat");

    // And the flat unit survives a serialisation round trip unchanged:
    // decode(encode(U)) re-encodes to the same bytes and still computes
    // the same run (what the disk tier actually executes after a warm
    // restart).
    {
      std::string Bytes = flat::encodeFlat(*Unit->Flat);
      std::shared_ptr<const flat::FlatUnit> Back = flat::decodeFlat(Bytes);
      ASSERT_NE(Back, nullptr) << Src;
      EXPECT_EQ(flat::encodeFlat(*Back), Bytes) << Src;
      rt::RunResult FR = Compiler::runFlat(*Back, Aggressive);
      EXPECT_EQ(FR.Outcome, rt::RunOutcome::Ok) << FR.Error << "\n" << Src;
      EXPECT_EQ(FR.ResultText, Ref.ResultText) << Src;
      EXPECT_EQ(FR.Steps, Ref.Steps) << Src;
    }

    // The capture-tracking table rides the same flat container: on
    // every generated program the report the compiler renders survives
    // encode -> decode byte-identically (what a disk-tier process
    // re-renders after a warm restart), and the fail-closed decoder
    // accepts everything the flattener emits.
    {
      Compiler CapC;
      CompileOptions CapOpts;
      CapOpts.Captures = true;
      auto CapUnit = CapC.compile(Src, CapOpts);
      ASSERT_NE(CapUnit, nullptr)
          << "captures compile failed:\n" << CapC.diagnostics().str() << Src;
      std::string Report = CapC.captureReport(*CapUnit);
      ASSERT_NE(CapUnit->Flat, nullptr) << Src;
      EXPECT_EQ(CapUnit->Flat->HasCaptures, 1u) << Src;
      EXPECT_EQ(flat::renderCaptureReport(*CapUnit->Flat), Report) << Src;
      auto CapBack = flat::decodeFlat(flat::encodeFlat(*CapUnit->Flat));
      ASSERT_NE(CapBack, nullptr) << Src;
      EXPECT_EQ(flat::renderCaptureReport(*CapBack), Report) << Src;
    }

    // Every other configuration computes the same value.
    struct Config {
      const char *Name;
      Strategy S;
      SpuriousMode M;
      bool Generational;
    };
    const Config Configs[] = {
        {"rg-", Strategy::RgMinus, SpuriousMode::FreshSecondary, false},
        {"r", Strategy::R, SpuriousMode::FreshSecondary, false},
        {"rg/identify", Strategy::Rg, SpuriousMode::IdentifyWithFun, false},
        {"rg/generational", Strategy::Rg, SpuriousMode::FreshSecondary,
         true},
    };
    for (const Config &Cfg : Configs) {
      Compiler C2;
      CompileOptions Opts;
      Opts.Strat = Cfg.S;
      Opts.Spurious = Cfg.M;
      auto U2 = C2.compile(Src, Opts);
      ASSERT_NE(U2, nullptr) << Cfg.Name << " compile failed:\n"
                             << C2.diagnostics().str() << "\n" << Src;
      rt::EvalOptions E = Aggressive;
      E.Generational = Cfg.Generational;
      rt::RunResult R = C2.run(*U2, E);
      // Tree and flat must agree even when the run crashes: an rg-
      // dangling pointer is part of the semantics being mirrored.
      expectFlatAgrees(*U2, E, R, Src, Cfg.Name);
      // rg- may legitimately crash with a dangling pointer when the
      // generator builds a Figure-1 shape; anything else must agree.
      if (Cfg.S == Strategy::RgMinus &&
          R.Outcome == rt::RunOutcome::DanglingPointer)
        continue;
      ASSERT_EQ(R.Outcome, rt::RunOutcome::Ok)
          << Cfg.Name << ": " << R.Error << "\n" << Src;
      EXPECT_EQ(R.ResultText, Ref.ResultText) << Cfg.Name << "\n" << Src;
    }

    // The formal semantics agrees with the runtime.
    RExprArena Arena;
    SmallStep Machine(Arena, C.names());
    Effect Phi{AtomicEffect(RegionVar::global())};
    SmallStep::RunResult SR =
        Machine.run(Unit->program().Root, Phi, 400000);
    ASSERT_TRUE(SR.Finished) << SR.Why << "\n" << Src;
    ASSERT_EQ(SR.Final->K, RExpr::Kind::IntLit) << Src;
    EXPECT_EQ(std::to_string(SR.Final->IntValue), Ref.ResultText) << Src;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Values(11u, 23u, 37u, 53u, 71u, 97u));

} // namespace
