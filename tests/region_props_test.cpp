//===- tests/region_props_test.cpp - Metatheory property sweeps -----------===//
//
// Executable versions of the paper's Propositions 1-5 over randomly
// generated (seeded, deterministic) region types, effects and
// substitutions:
//
//   Prop 1: containment implies well-formedness.
//   Prop 2: Omega |- o : phi implies frev(o) subset phi.
//   Prop 3: substitution effect monotonicity.
//   Prop 4: containment closed under region-effect substitution.
//   Prop 5: containment closed under *covered* type substitution.
//
// Plus the extensibility properties stated between them.
//
//===----------------------------------------------------------------------===//

#include "region/Containment.h"
#include "region/Subst.h"

#include <gtest/gtest.h>

#include <random>

using namespace rml;

namespace {

/// Deterministic random generator for region types and substitutions.
class Gen {
public:
  Gen(uint32_t Seed, RTypeArena &A) : Rng(Seed), A(A) {}

  RegionVar region() { return RegionVar(pick(1, 8)); }
  EffectVar effectVar() { return EffectVar(pick(1, 8)); }
  TyVarId tyVar() { return TyVarId(pick(0, 3)); }

  Effect effect(unsigned MaxSize = 4) {
    Effect Out;
    unsigned N = pick(0, MaxSize);
    for (unsigned I = 0; I < N; ++I) {
      if (flip())
        Out.insert(AtomicEffect(region()));
      else
        Out.insert(AtomicEffect(effectVar()));
    }
    return Out;
  }

  ArrowEff arrow() { return ArrowEff(effectVar(), effect()); }

  /// A random mu of bounded depth; type variables drawn from Omega's
  /// domain when \p Omega is given.
  const Mu *mu(unsigned Depth, const TyVarCtx *Omega = nullptr) {
    unsigned Choice = pick(0, Depth == 0 ? 2 : 6);
    switch (Choice) {
    case 0:
      return A.intTy();
    case 1:
      return A.boolTy();
    case 2:
      return Omega && !Omega->empty() ? muTyVarFrom(*Omega) : A.unitTy();
    case 3:
      return A.boxed(A.stringTy(), region());
    case 4:
      return A.boxed(
          A.pairTy(mu(Depth - 1, Omega), mu(Depth - 1, Omega)), region());
    case 5:
      return A.boxed(A.listTy(mu(Depth - 1, Omega)), region());
    default:
      return A.boxed(A.arrowTy(mu(Depth - 1, Omega), arrow(),
                               mu(Depth - 1, Omega)),
                     region());
    }
  }

  const Mu *muTyVarFrom(const TyVarCtx &Omega) {
    std::vector<TyVarId> Vars;
    for (const auto &[V, Nu] : Omega)
      Vars.push_back(V);
    return A.tyVar(Vars[pick(0, static_cast<unsigned>(Vars.size()) - 1)]);
  }

  TyVarCtx omega(unsigned N) {
    TyVarCtx Out;
    for (unsigned I = 0; I < N; ++I)
      Out.bind(TyVarId(I), arrow());
    return Out;
  }

  /// A region-effect substitution (empty St).
  Subst regionEffectSubst() {
    Subst S;
    unsigned NR = pick(0, 4);
    for (unsigned I = 0; I < NR; ++I)
      S.Sr.emplace(region(), region());
    unsigned NE = pick(0, 3);
    for (unsigned I = 0; I < NE; ++I)
      S.Se.emplace(effectVar(), arrow());
    return S;
  }

  bool flip() { return pick(0, 1) == 1; }
  unsigned pick(unsigned Lo, unsigned Hi) {
    return Lo + static_cast<unsigned>(Rng() % (Hi - Lo + 1));
  }

private:
  std::mt19937 Rng;
  RTypeArena &A;
};

class RegionProps : public ::testing::TestWithParam<uint32_t> {};

TEST_P(RegionProps, ContainmentImpliesWellFormedness) {
  // Proposition 1.
  RTypeArena A;
  Gen G(GetParam(), A);
  TyVarCtx Omega = G.omega(3);
  for (int I = 0; I < 40; ++I) {
    const Mu *M = G.mu(3, &Omega);
    Effect Phi = frevOf(M).unionWith(Omega.frev()).unionWith(G.effect());
    if (typeContained(Omega, M, Phi))
      EXPECT_TRUE(wellFormed(Omega, M)) << printMu(M);
  }
}

TEST_P(RegionProps, ContainmentImpliesFrevSubset) {
  // Proposition 2.
  RTypeArena A;
  Gen G(GetParam() + 1000, A);
  TyVarCtx Omega = G.omega(2);
  for (int I = 0; I < 40; ++I) {
    const Mu *M = G.mu(3, &Omega);
    Effect Phi = frevOf(M).unionWith(Omega.frev()).unionWith(G.effect());
    if (typeContained(Omega, M, Phi))
      EXPECT_TRUE(frevOf(M).subsetOf(Phi))
          << printMu(M) << " : " << printEffect(Phi);
  }
}

TEST_P(RegionProps, SubstitutionEffectMonotonicity) {
  // Proposition 3: phi subset phi' implies S(phi) subset S(phi').
  RTypeArena A;
  Gen G(GetParam() + 2000, A);
  for (int I = 0; I < 60; ++I) {
    Subst S = G.regionEffectSubst();
    Effect Small = G.effect();
    Effect Big = Small.unionWith(G.effect());
    EXPECT_TRUE(S.apply(Small).subsetOf(S.apply(Big)))
        << S.str() << " on " << printEffect(Small) << " subset "
        << printEffect(Big);
  }
}

TEST_P(RegionProps, ArrowEffectSubstitutionInterchange) {
  // frev(S(eps.phi)) = S({eps} u phi).
  RTypeArena A;
  Gen G(GetParam() + 3000, A);
  for (int I = 0; I < 60; ++I) {
    Subst S = G.regionEffectSubst();
    ArrowEff Nu = G.arrow();
    Effect Lhs = S.apply(Nu).frev();
    Effect Arg = Nu.Phi;
    Arg.insert(AtomicEffect(Nu.Handle));
    EXPECT_EQ(Lhs, S.apply(Arg)) << S.str() << " on " << printArrowEff(Nu);
  }
}

TEST_P(RegionProps, ContainmentClosedUnderRegionEffectSubstitution) {
  // Proposition 4: if Omega |- mu : phi and S is a region-effect
  // substitution then S(Omega) |- S(mu) : S(phi).
  RTypeArena A;
  Gen G(GetParam() + 4000, A);
  TyVarCtx Omega = G.omega(2);
  for (int I = 0; I < 40; ++I) {
    const Mu *M = G.mu(3, &Omega);
    Effect Phi = frevOf(M).unionWith(Omega.frev()).unionWith(G.effect());
    if (!typeContained(Omega, M, Phi))
      continue;
    Subst S = G.regionEffectSubst();
    TyVarCtx OmegaS = S.apply(Omega);
    EXPECT_TRUE(typeContained(OmegaS, S.apply(M, A), S.apply(Phi)))
        << S.str() << " on " << printMu(M) << " : " << printEffect(Phi);
  }
}

TEST_P(RegionProps, ContainmentClosedUnderCoveredTypeSubstitution) {
  // Proposition 5: if Omega + Delta |- mu : phi and Omega |- S : Delta
  // then Omega |- S(mu) : phi.
  RTypeArena A;
  Gen G(GetParam() + 5000, A);
  // Omega binds 'a0,'a1; Delta binds 'a2 with a random arrow effect.
  TyVarCtx Omega = G.omega(2);
  for (int I = 0; I < 40; ++I) {
    TyVarCtx Delta;
    ArrowEff Nu = G.arrow();
    Delta.bind(TyVarId(2), Nu);
    TyVarCtx Sum = Omega.plus(Delta);

    // A covered substitution: choose an instance contained in
    // frev(Delta('a2)).
    const Mu *Inst = nullptr;
    for (int Tries = 0; Tries < 20 && !Inst; ++Tries) {
      const Mu *Cand = G.mu(2, &Omega);
      if (typeContained(Omega, Cand, Nu.frev()))
        Inst = Cand;
    }
    if (!Inst)
      Inst = A.intTy(); // int is contained in any effect
    Subst S;
    S.St.emplace(TyVarId(2), Inst);
    ASSERT_TRUE(covers(Omega, S, Delta));

    const Mu *M = G.mu(3, &Sum);
    Effect Phi = frevOf(M).unionWith(Sum.frev()).unionWith(G.effect());
    if (!typeContained(Sum, M, Phi))
      continue;
    EXPECT_TRUE(typeContained(Omega, S.apply(M, A), Phi))
        << printMu(M) << " with 'a2 := " << printMu(Inst) << " : "
        << printEffect(Phi);
  }
}

TEST_P(RegionProps, ContextAndEffectExtensibility) {
  // If Omega |- o : phi then Omega + Delta |- o : phi (disjoint domains)
  // and Omega |- o : phi' for phi subset phi'.
  RTypeArena A;
  Gen G(GetParam() + 6000, A);
  TyVarCtx Omega = G.omega(2);
  TyVarCtx Delta;
  Delta.bind(TyVarId(9), G.arrow());
  for (int I = 0; I < 40; ++I) {
    const Mu *M = G.mu(3, &Omega);
    Effect Phi = frevOf(M).unionWith(Omega.frev()).unionWith(G.effect());
    if (!typeContained(Omega, M, Phi))
      continue;
    EXPECT_TRUE(typeContained(Omega.plus(Delta), M, Phi));
    EXPECT_TRUE(typeContained(Omega, M, Phi.unionWith(G.effect())));
  }
}

TEST_P(RegionProps, InstantiationClosedUnderRegionEffectSubstitution) {
  // Proposition 6: if S is a region-effect substitution and
  // Omega |- sigma >= tau via S' then
  // S(Omega) |- S(sigma) >= S(tau) via (S o S')|dom(S').
  RTypeArena A;
  Gen G(GetParam() + 7000, A);
  TyVarCtx Omega = G.omega(1);
  for (int I = 0; I < 25; ++I) {
    // Build sigma = forall r20 e20 ('a2 : e21.phi). tau with the body
    // mentioning the bound variables.
    RegionVar QR(20);
    EffectVar QE(20), QA(21);
    ArrowEff DeltaNu(QA, Effect{});
    RScheme Sigma;
    Sigma.QRegions = {QR};
    Sigma.QEffects = {QE, QA};
    Sigma.Delta.bind(TyVarId(2), DeltaNu);
    Sigma.Body = A.arrowTy(A.tyVar(TyVarId(2)), ArrowEff(QE, Effect{}),
                           A.boxed(A.stringTy(), QR));

    // An instantiating substitution S' with a covered type component.
    Subst SPrime;
    SPrime.Sr.emplace(QR, G.region());
    SPrime.Se.emplace(QE, G.arrow());
    ArrowEff InstNu = G.arrow();
    SPrime.Se.emplace(QA, InstNu);
    const Mu *Inst = nullptr;
    for (int T = 0; T < 20 && !Inst; ++T) {
      const Mu *Cand = G.mu(2, &Omega);
      if (typeContained(Omega, Cand, InstNu.frev()))
        Inst = Cand;
    }
    if (!Inst)
      Inst = A.intTy();
    SPrime.St.emplace(TyVarId(2), Inst);

    Subst RE;
    RE.Sr = SPrime.Sr;
    RE.Se = SPrime.Se;
    const Tau *TauInst = Subst{SPrime.St, {}, {}}.apply(
        RE.apply(Sigma.Body, A), A);
    ASSERT_TRUE(instanceOf(Omega, Sigma, SPrime, TauInst, A));

    // An outer region-effect substitution whose domain avoids the bound
    // variables (the paper's renamed-apart convention).
    Subst S;
    for (int K = 0; K < 3; ++K) {
      RegionVar From = G.region();
      if (From != QR)
        S.Sr.emplace(From, G.region());
    }
    for (int K = 0; K < 2; ++K) {
      EffectVar From = G.effectVar();
      if (From != QE && From != QA)
        S.Se.emplace(From, G.arrow());
    }
    // Also keep the ranges clear of the bound variables.
    bool Captures = !Sigma.boundVars().disjointFrom([&] {
      Effect Foot;
      for (const auto &[R1, R2] : S.Sr)
        Foot.insert(AtomicEffect(R2));
      for (const auto &[E1, Nu] : S.Se)
        Foot = Foot.unionWith(Nu.frev());
      return Foot;
    }());
    if (Captures)
      continue;

    Subst SComposed = composeRestricted(S, SPrime, A);
    TyVarCtx OmegaS = S.apply(Omega);
    RScheme SigmaS = S.apply(Sigma, A);
    const Tau *TauS = S.apply(TauInst, A);
    EXPECT_TRUE(instanceOf(OmegaS, SigmaS, SComposed, TauS, A))
        << "sigma = " << printScheme(Sigma) << "\nS = " << S.str()
        << "\nS' = " << SPrime.str();
  }
}

TEST_P(RegionProps, InstantiationClosedUnderCoveredTypeSubstitution) {
  // Proposition 7: if Omega + Delta |- sigma >= tau via S' and
  // Omega |- S : Delta then Omega |- S(sigma) >= S(tau) via the
  // restricted composition.
  RTypeArena A;
  Gen G(GetParam() + 8000, A);
  TyVarCtx Omega = G.omega(1);
  for (int I = 0; I < 25; ++I) {
    // Delta binds 'a3; sigma's body mentions 'a3 (free in the scheme).
    TyVarCtx Delta;
    ArrowEff DeltaNu = G.arrow();
    Delta.bind(TyVarId(3), DeltaNu);
    TyVarCtx Sum = Omega.plus(Delta);

    EffectVar QE(20);
    RScheme Sigma;
    Sigma.QEffects = {QE};
    Sigma.Body = A.arrowTy(A.tyVar(TyVarId(3)), ArrowEff(QE, Effect{}),
                           A.intTy());

    Subst SPrime;
    SPrime.Se.emplace(QE, G.arrow());
    Subst RE;
    RE.Se = SPrime.Se;
    const Tau *TauInst = RE.apply(Sigma.Body, A);
    ASSERT_TRUE(instanceOf(Sum, Sigma, SPrime, TauInst, A));

    // A covered S for Delta.
    const Mu *Inst = nullptr;
    for (int T = 0; T < 20 && !Inst; ++T) {
      const Mu *Cand = G.mu(2, &Omega);
      if (typeContained(Omega, Cand, DeltaNu.frev()))
        Inst = Cand;
    }
    if (!Inst)
      Inst = A.intTy();
    Subst S;
    S.St.emplace(TyVarId(3), Inst);
    ASSERT_TRUE(covers(Omega, S, Delta));

    Subst SComposed = composeRestricted(S, SPrime, A);
    const Tau *TauS = S.apply(TauInst, A);
    EXPECT_TRUE(instanceOf(Omega, S.apply(Sigma, A), SComposed, TauS, A))
        << printScheme(Sigma) << " with 'a3 := " << printMu(Inst);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegionProps,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u, 55u, 89u));

} // namespace
