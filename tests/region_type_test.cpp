//===- tests/region_type_test.cpp - Region type unit tests ----------------===//

#include "region/RegionType.h"

#include <gtest/gtest.h>

using namespace rml;

namespace {

class RegionTypeTest : public ::testing::Test {
protected:
  RegionVar r(uint32_t I) { return RegionVar(I); }
  EffectVar e(uint32_t I) { return EffectVar(I); }
  TyVarId a(uint32_t I) { return TyVarId(I); }

  RTypeArena A;
};

TEST_F(RegionTypeTest, ScalarsHaveNoFrev) {
  EXPECT_TRUE(frevOf(A.intTy()).isEmpty());
  EXPECT_TRUE(frevOf(A.boolTy()).isEmpty());
  EXPECT_TRUE(frevOf(A.unitTy()).isEmpty());
  EXPECT_TRUE(frevOf(A.tyVar(a(0))).isEmpty());
}

TEST_F(RegionTypeTest, BoxedTypesCarryTheirRegion) {
  const Mu *S = A.boxed(A.stringTy(), r(3));
  Effect F = frevOf(S);
  EXPECT_EQ(F.size(), 1u);
  EXPECT_TRUE(F.contains(r(3)));
}

TEST_F(RegionTypeTest, ArrowFrevIncludesLatentEffect) {
  // (int -e1.{r2}-> int, r1): frev = {r1, e1, r2}.
  ArrowEff Nu(e(1), Effect{AtomicEffect(r(2))});
  const Mu *M = A.boxed(A.arrowTy(A.intTy(), Nu, A.intTy()), r(1));
  Effect F = frevOf(M);
  EXPECT_EQ(F.size(), 3u);
  EXPECT_TRUE(F.contains(r(1)));
  EXPECT_TRUE(F.contains(r(2)));
  EXPECT_TRUE(F.contains(e(1)));
}

TEST_F(RegionTypeTest, SchemeFrevSubtractsBoundVars) {
  // forall r2 e1. (int -e1.{r2,r9}-> int): frev = {r9}.
  ArrowEff Nu(e(1), Effect{AtomicEffect(r(2)), AtomicEffect(r(9))});
  RScheme S;
  S.QRegions = {r(2)};
  S.QEffects = {e(1)};
  S.Body = A.arrowTy(A.intTy(), Nu, A.intTy());
  Effect F = frevOf(S);
  EXPECT_EQ(F.size(), 1u);
  EXPECT_TRUE(F.contains(r(9)));
}

TEST_F(RegionTypeTest, SchemeFrevIncludesDeltaArrowEffects) {
  RScheme S;
  S.Delta.bind(a(0), ArrowEff(e(5), Effect{AtomicEffect(r(7))}));
  S.Body = A.pairTy(A.tyVar(a(0)), A.intTy());
  Effect F = frevOf(S);
  EXPECT_TRUE(F.contains(e(5)));
  EXPECT_TRUE(F.contains(r(7)));
}

TEST_F(RegionTypeTest, FtvCollectsTypeVariables) {
  const Mu *M =
      A.boxed(A.pairTy(A.tyVar(a(1)), A.boxed(A.listTy(A.tyVar(a(2))), r(1))),
              r(2));
  std::vector<TyVarId> Vars = ftvOf(M);
  ASSERT_EQ(Vars.size(), 2u);
  EXPECT_EQ(Vars[0], a(1));
  EXPECT_EQ(Vars[1], a(2));
}

TEST_F(RegionTypeTest, FtvOfSchemeSubtractsDelta) {
  RScheme S;
  S.Delta.bindPlain(a(1));
  S.Body = A.pairTy(A.tyVar(a(1)), A.tyVar(a(2)));
  std::vector<TyVarId> Vars = ftvOf(S);
  ASSERT_EQ(Vars.size(), 1u);
  EXPECT_EQ(Vars[0], a(2));
}

TEST_F(RegionTypeTest, StructuralEquality) {
  const Mu *P1 = A.boxed(A.pairTy(A.intTy(), A.boolTy()), r(1));
  const Mu *P2 = A.boxed(A.pairTy(A.intTy(), A.boolTy()), r(1));
  const Mu *P3 = A.boxed(A.pairTy(A.intTy(), A.boolTy()), r(2));
  const Mu *P4 = A.boxed(A.pairTy(A.boolTy(), A.boolTy()), r(1));
  EXPECT_TRUE(muEquals(P1, P2));
  EXPECT_FALSE(muEquals(P1, P3)); // different region
  EXPECT_FALSE(muEquals(P1, P4)); // different component
}

TEST_F(RegionTypeTest, ArrowEqualityIncludesLatentEffect) {
  ArrowEff N1(e(1), Effect{AtomicEffect(r(2))});
  ArrowEff N2(e(1), Effect{});
  const Mu *M1 = A.boxed(A.arrowTy(A.intTy(), N1, A.intTy()), r(1));
  const Mu *M2 = A.boxed(A.arrowTy(A.intTy(), N2, A.intTy()), r(1));
  EXPECT_FALSE(muEquals(M1, M2));
}

TEST_F(RegionTypeTest, WellFormedness) {
  TyVarCtx Omega;
  Omega.bindPlain(a(1));
  EXPECT_TRUE(wellFormed(Omega, A.tyVar(a(1))));
  EXPECT_FALSE(wellFormed(Omega, A.tyVar(a(2))));
  EXPECT_TRUE(wellFormed(Omega, A.intTy()));
  const Mu *M = A.boxed(A.listTy(A.tyVar(a(2))), r(1));
  EXPECT_FALSE(wellFormed(Omega, M));
}

TEST_F(RegionTypeTest, SchemeWellFormednessRequiresDisjointDelta) {
  TyVarCtx Omega;
  Omega.bindPlain(a(1));
  RScheme S;
  S.Delta.bindPlain(a(1)); // collides with Omega
  S.Body = A.pairTy(A.tyVar(a(1)), A.intTy());
  EXPECT_FALSE(wellFormed(Omega, Pi(S, r(1))));
  TyVarCtx Empty;
  EXPECT_TRUE(wellFormed(Empty, Pi(S, r(1))));
}

TEST_F(RegionTypeTest, TyVarCtxPlusIsRightBiased) {
  TyVarCtx A1, A2;
  A1.bind(a(1), ArrowEff(e(1), Effect{}));
  A2.bind(a(1), ArrowEff(e(2), Effect{}));
  TyVarCtx Sum = A1.plus(A2);
  const ArrowEff *Nu = Sum.lookup(a(1));
  ASSERT_NE(Nu, nullptr);
  EXPECT_EQ(Nu->Handle, e(2));
}

TEST_F(RegionTypeTest, PlainEntriesAreBoundButEffectless) {
  TyVarCtx Ctx;
  Ctx.bindPlain(a(1));
  EXPECT_TRUE(Ctx.contains(a(1)));
  EXPECT_EQ(Ctx.lookup(a(1)), nullptr);
  EXPECT_TRUE(Ctx.frev().isEmpty());
}

TEST_F(RegionTypeTest, Printing) {
  ArrowEff Nu(e(1), Effect{AtomicEffect(r(2))});
  const Mu *M = A.boxed(A.arrowTy(A.intTy(), Nu, A.tyVar(a(0))), r(1));
  EXPECT_EQ(printMu(M), "(int -e1.{r2}-> 'a, r1)");
  RScheme S;
  S.QRegions = {r(1), r(2)};
  S.QEffects = {e(1)};
  S.Delta.bind(a(0), ArrowEff(e(9), Effect{}));
  S.Body = A.arrowTy(A.intTy(), Nu, A.tyVar(a(0)));
  EXPECT_EQ(printScheme(S),
            "forall r1 r2 e1 ('a:e9.{}). int -e1.{r2}-> 'a");
}

} // namespace
