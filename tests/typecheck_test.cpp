//===- tests/typecheck_test.cpp - Algorithm W unit tests ------------------===//

#include "types/TypeCheck.h"

#include "ast/Parser.h"

#include <gtest/gtest.h>

using namespace rml;

namespace {

class TypeCheckTest : public ::testing::Test {
protected:
  /// Typechecks a program and returns the printed type of the result
  /// expression, or "" on failure.
  std::string typeOf(std::string_view Src) {
    Diags.clear();
    Info = TypeInfo();
    std::optional<Program> P = parseString(Src, Arena, Names, Diags);
    if (!P) {
      ADD_FAILURE() << "parse failed: " << Diags.str();
      return "";
    }
    Prog = *P;
    if (!checkProgram(Prog, Types, Names, Diags, Info))
      return "";
    return printType(Info.typeOf(Prog.Result));
  }

  /// The printed scheme of top-level declaration number \p I.
  std::string schemeOf(size_t I) {
    return printScheme(Info.DecSchemes.at(Prog.Decs[I]));
  }

  bool fails(std::string_view Src) {
    Diags.clear();
    Info = TypeInfo();
    std::optional<Program> P = parseString(Src, Arena, Names, Diags);
    if (!P)
      return true;
    return !checkProgram(*P, Types, Names, Diags, Info);
  }

  AstArena Arena;
  TypeArena Types;
  Interner Names;
  DiagnosticEngine Diags;
  TypeInfo Info;
  Program Prog;
};

TEST_F(TypeCheckTest, Literals) {
  EXPECT_EQ(typeOf("42"), "int");
  EXPECT_EQ(typeOf("true"), "bool");
  EXPECT_EQ(typeOf("\"s\""), "string");
  EXPECT_EQ(typeOf("()"), "unit");
}

TEST_F(TypeCheckTest, Arithmetic) {
  EXPECT_EQ(typeOf("1 + 2 * 3"), "int");
  EXPECT_EQ(typeOf("1 < 2"), "bool");
  EXPECT_EQ(typeOf("\"a\" ^ \"b\""), "string");
}

TEST_F(TypeCheckTest, Identity) {
  EXPECT_EQ(typeOf("fn x => x"), "'a -> 'a");
}

TEST_F(TypeCheckTest, Application) {
  EXPECT_EQ(typeOf("(fn x => x + 1) 2"), "int");
}

TEST_F(TypeCheckTest, Pairs) {
  EXPECT_EQ(typeOf("(1, \"a\")"), "int * string");
  EXPECT_EQ(typeOf("#1 (1, \"a\")"), "int");
  EXPECT_EQ(typeOf("#2 (1, \"a\")"), "string");
}

TEST_F(TypeCheckTest, Lists) {
  EXPECT_EQ(typeOf("[1, 2, 3]"), "int list");
  EXPECT_EQ(typeOf("1 :: nil"), "int list");
  EXPECT_EQ(typeOf("case [1] of nil => 0 | h :: t => h"), "int");
}

TEST_F(TypeCheckTest, LetPolymorphism) {
  EXPECT_EQ(typeOf("let val id = fn x => x in (id 1, id \"a\") end"),
            "int * string");
}

TEST_F(TypeCheckTest, ValueRestriction) {
  // The RHS is an application, so x stays monomorphic.
  EXPECT_TRUE(
      fails("let val f = (fn x => x) (fn y => y) in (f 1, f \"a\") end"));
}

TEST_F(TypeCheckTest, FunSchemes) {
  typeOf("fun id x = x;\n()");
  EXPECT_EQ(schemeOf(0), "forall 'a. 'a -> 'a");
}

TEST_F(TypeCheckTest, ComposeScheme) {
  // The paper's o: (gamma -> beta) * (alpha -> gamma) -> alpha -> beta.
  typeOf("fun compose fg = fn x => #1 fg (#2 fg x);\n()");
  EXPECT_EQ(schemeOf(0),
            "forall 'a 'b 'c. (('a -> 'b) * ('c -> 'a)) -> 'c -> 'b");
}

TEST_F(TypeCheckTest, RecursionIsMonomorphicInside) {
  EXPECT_EQ(typeOf("fun fib n = if n < 2 then n else fib (n-1) + fib (n-2)\n"
                   ";fib 10"),
            "int");
}

TEST_F(TypeCheckTest, AppFromThePaper) {
  // Section 4.2: algorithm W gives app the scheme
  // forall 'a 'b. ('a -> 'b) -> 'a list -> unit.
  typeOf("fun app f = let fun loop xs = case xs of nil => () "
         "| x :: t => (f x; loop t) in loop end;\n()");
  EXPECT_EQ(schemeOf(0), "forall 'a 'b. ('a -> 'b) -> 'a list -> unit");
}

TEST_F(TypeCheckTest, AppWithAnnotationLosesSpuriousVar) {
  // Constraining f : 'a -> unit removes the spurious beta (Section 4.2).
  typeOf("fun app (f : 'a -> unit) = let fun loop xs = case xs of nil => () "
         "| x :: t => (f x; loop t) in loop end;\n()");
  EXPECT_EQ(schemeOf(0), "forall 'a. ('a -> unit) -> 'a list -> unit");
}

TEST_F(TypeCheckTest, References) {
  EXPECT_EQ(typeOf("let val r = ref 1 in (r := 2; !r) end"), "int");
  EXPECT_TRUE(fails("let val r = ref 1 in r := \"a\" end"));
}

TEST_F(TypeCheckTest, RefsRespectValueRestriction) {
  EXPECT_TRUE(fails(
      "let val r = ref nil in (r := [1]; r := [\"a\"]) end"));
}

TEST_F(TypeCheckTest, Exceptions) {
  EXPECT_EQ(typeOf("exception E of int\n(raise E 3) handle E v => v + 1"),
            "int");
  EXPECT_EQ(typeOf("exception E\n(raise E) handle _ => 7"), "int");
  EXPECT_TRUE(fails("exception E of int\nraise E \"s\""));
  EXPECT_TRUE(fails("exception E\nE 1"));
  EXPECT_TRUE(fails("raise Unknown"));
}

TEST_F(TypeCheckTest, ExceptionWithTypeVariable) {
  // Section 4.4: a local exception with a free type variable.
  EXPECT_EQ(typeOf("fun poly (x : 'a) = let exception E of 'a\n"
                   "fun thrower u = raise E x\n"
                   "in (thrower ()) handle E v => v end;\n"
                   "poly 3"),
            "int");
}

TEST_F(TypeCheckTest, InstantiationRecords) {
  typeOf("fun id x = x;\n(id 1, id \"a\")");
  // Two polymorphic uses with int and string instances.
  unsigned Ints = 0, Strings = 0;
  for (const auto &[Use, Inst] : Info.VarInsts) {
    ASSERT_EQ(Inst.Args.size(), 1u);
    TypeKind K = resolve(Inst.Args[0])->K;
    Ints += K == TypeKind::Int;
    Strings += K == TypeKind::String;
  }
  EXPECT_EQ(Ints, 1u);
  EXPECT_EQ(Strings, 1u);
}

TEST_F(TypeCheckTest, Errors) {
  EXPECT_TRUE(fails("1 + \"a\""));
  EXPECT_TRUE(fails("if 1 then 2 else 3"));
  EXPECT_TRUE(fails("if true then 1 else \"a\""));
  EXPECT_TRUE(fails("1 2"));
  EXPECT_TRUE(fails("unboundvariable"));
  EXPECT_TRUE(fails("#1 5"));
  EXPECT_TRUE(fails("1 :: [\"a\"]"));
  EXPECT_TRUE(fails("case 1 of nil => 0 | h :: t => h"));
}

TEST_F(TypeCheckTest, EqualityDefaultsAndRestricts) {
  EXPECT_EQ(typeOf("\"a\" = \"b\""), "bool");
  EXPECT_EQ(typeOf("1 = 2"), "bool");
  EXPECT_EQ(typeOf("true <> false"), "bool");
  EXPECT_TRUE(fails("(1, 2) = (3, 4)"));
  EXPECT_TRUE(fails("(fn x => x) = (fn y => y)"));
}

TEST_F(TypeCheckTest, AnnotationsConstrain) {
  EXPECT_EQ(typeOf("(fn (x : int) => x) 3"), "int");
  EXPECT_TRUE(fails("(fn (x : string) => x) 3"));
  EXPECT_TRUE(fails("(1 : string)"));
}

TEST_F(TypeCheckTest, Prims) {
  EXPECT_EQ(typeOf("print \"x\""), "unit");
  EXPECT_EQ(typeOf("itos 3"), "string");
  EXPECT_EQ(typeOf("size \"abc\""), "int");
  EXPECT_EQ(typeOf("work 5"), "unit");
  EXPECT_TRUE(fails("print 3"));
}

} // namespace
