//===- tests/support_test.cpp - Support library unit tests ----------------===//

#include "service/Stats.h"
#include "support/Diagnostics.h"
#include "support/Interner.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>

using namespace rml;

namespace {

TEST(Interner, InterningIsIdempotent) {
  Interner I;
  Symbol A = I.intern("foo");
  Symbol B = I.intern("foo");
  Symbol C = I.intern("bar");
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  EXPECT_EQ(I.text(A), "foo");
  EXPECT_EQ(I.text(C), "bar");
  EXPECT_EQ(I.size(), 2u);
}

TEST(Interner, FreshSymbolsNeverCollide) {
  Interner I;
  I.intern("x$0");
  Symbol F1 = I.fresh("x");
  Symbol F2 = I.fresh("x");
  EXPECT_NE(F1, F2);
  EXPECT_NE(I.text(F1), "x$0"); // the taken spelling is skipped
  EXPECT_NE(I.text(F1), I.text(F2));
}

TEST(Interner, InvalidSymbol) {
  Symbol S;
  EXPECT_FALSE(S.isValid());
  EXPECT_TRUE(Interner().intern("a").isValid());
}

TEST(Interner, ManySymbolsStayStable) {
  Interner I;
  std::vector<Symbol> Syms;
  for (int K = 0; K < 1000; ++K)
    Syms.push_back(I.intern("sym" + std::to_string(K)));
  for (int K = 0; K < 1000; ++K) {
    EXPECT_EQ(I.text(Syms[K]), "sym" + std::to_string(K));
    EXPECT_EQ(I.intern("sym" + std::to_string(K)), Syms[K]);
  }
}

TEST(Diagnostics, CountsAndRenders) {
  DiagnosticEngine D;
  EXPECT_FALSE(D.hasErrors());
  D.error({3, 7}, "something is off");
  D.warning({1, 1}, "suspicious");
  D.note({}, "context");
  EXPECT_TRUE(D.hasErrors());
  EXPECT_EQ(D.errorCount(), 1u);
  EXPECT_EQ(D.all().size(), 3u);
  std::string S = D.str();
  EXPECT_NE(S.find("3:7: error: something is off"), std::string::npos);
  EXPECT_NE(S.find("1:1: warning: suspicious"), std::string::npos);
  EXPECT_NE(S.find("note: context"), std::string::npos);
}

TEST(Diagnostics, ClearResets) {
  DiagnosticEngine D;
  D.error({1, 1}, "x");
  D.clear();
  EXPECT_FALSE(D.hasErrors());
  EXPECT_TRUE(D.all().empty());
}

TEST(SrcLoc, Rendering) {
  EXPECT_EQ(SrcLoc().str(), "<unknown>");
  EXPECT_EQ((SrcLoc{12, 34}).str(), "12:34");
  EXPECT_FALSE(SrcLoc().isValid());
  EXPECT_TRUE((SrcLoc{1, 1}).isValid());
}

/// Counts record() calls; remembers the last profile it saw.
class CountingSink final : public TraceSink {
public:
  void record(const PhaseProfile &P) override {
    ++Records;
    Last = P;
  }
  unsigned Records = 0;
  PhaseProfile Last;
};

TEST(Trace, PhaseTimerMeasuresAndEmitsOnce) {
  CountingSink Sink;
  {
    PhaseTimer T("infer", &Sink);
    PhaseProfile &P = T.stop();
    EXPECT_EQ(P.Name, "infer");
    EXPECT_FALSE(P.Skipped);
    uint64_t First = P.WallNanos;
    EXPECT_EQ(&T.stop(), &P); // idempotent: same profile,
    EXPECT_EQ(P.WallNanos, First); // clock not re-read
    P.DiagnosticsEmitted = 7; // caller fills deltas after stop()
    EXPECT_EQ(Sink.Records, 0u); // nothing emitted before destruction
  }
  EXPECT_EQ(Sink.Records, 1u);
  EXPECT_EQ(Sink.Last.Name, "infer");
  EXPECT_EQ(Sink.Last.DiagnosticsEmitted, 7u);
}

TEST(Trace, PhaseTimerWithoutSinkIsSafe) {
  PhaseTimer T("parse");
  T.stop();
  EXPECT_EQ(T.profile().Name, "parse");
}

TEST(Trace, NoopSinkIsShared) {
  NoopTraceSink &A = NoopTraceSink::instance();
  NoopTraceSink &B = NoopTraceSink::instance();
  EXPECT_EQ(&A, &B);
  A.record(PhaseProfile{}); // and discarding is harmless
}

TEST(Trace, MonotonicClock) {
  uint64_t A = traceNowNanos();
  uint64_t B = traceNowNanos();
  EXPECT_LE(A, B);
}

/// Chrome trace-event shape: {"traceEvents":[...],"displayTimeUnit":"ms"}
/// where every event is an "X" (complete) event carrying name/cat/ph/
/// ts/dur/pid/tid/args. chrome://tracing and Perfetto both require
/// exactly this envelope, so the test pins it key by key.
TEST(Trace, ChromeTraceEventShape) {
  ChromeTraceSink Sink;
  PhaseProfile A;
  A.Name = "parse";
  A.StartNanos = 5'000;
  A.WallNanos = 2'500;
  A.DiagnosticsEmitted = 1;
  A.ArenaNodeDelta = 42;
  PhaseProfile B;
  B.Name = "run";
  B.StartNanos = 9'000;
  B.WallNanos = 10'000;
  B.GcCount = 3;
  B.AllocWords = 1'000;
  B.CopiedWords = 250;
  Sink.record(A);
  Sink.record(B);
  ASSERT_EQ(Sink.eventCount(), 2u);

  std::string J = Sink.json();
  // Envelope.
  EXPECT_EQ(J.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(J.find("],\"displayTimeUnit\":\"ms\"}"), std::string::npos);
  // Balanced structure (the cheap well-formedness proxy).
  EXPECT_EQ(std::count(J.begin(), J.end(), '{'),
            std::count(J.begin(), J.end(), '}'));
  EXPECT_EQ(std::count(J.begin(), J.end(), '['),
            std::count(J.begin(), J.end(), ']'));
  // Every event is a complete event with the required keys.
  EXPECT_EQ(std::count(J.begin(), J.end(), 'X'), 2);
  for (const char *Key :
       {"\"name\":", "\"cat\":\"phase\"", "\"ph\":\"X\"", "\"ts\":",
        "\"dur\":", "\"pid\":1", "\"tid\":", "\"args\":{"})
    EXPECT_NE(J.find(Key), std::string::npos) << Key;
  // Timestamps are microseconds normalised to the earliest phase:
  // A starts the trace at ts 0, B starts 4000ns = 4us later.
  EXPECT_NE(J.find("\"ts\":0.000,\"dur\":2.500"), std::string::npos);
  EXPECT_NE(J.find("\"ts\":4.000,\"dur\":10.000"), std::string::npos);
  // The args carry the profile's counters.
  EXPECT_NE(J.find("\"diagnostics\":1,\"arena_nodes\":42"),
            std::string::npos);
  EXPECT_NE(J.find("\"gc\":3,\"alloc_words\":1000,\"copied_words\":250"),
            std::string::npos);
}

TEST(Trace, ChromeSinkEscapesNames) {
  ChromeTraceSink Sink;
  PhaseProfile P;
  P.Name = "we\"ird\\phase\n\t\x01";
  Sink.record(P);
  std::string J = Sink.json();
  EXPECT_NE(J.find("we\\\"ird\\\\phase\\n\\t\\u0001"), std::string::npos);
  EXPECT_EQ(J.find('\n'), std::string::npos);
}

TEST(Trace, JsonEscapedCoversControlAndQuoting) {
  EXPECT_EQ(jsonEscaped("plain"), "plain");
  EXPECT_EQ(jsonEscaped("a\\b"), "a\\\\b");
  EXPECT_EQ(jsonEscaped("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(jsonEscaped("\b\f\n\r\t"), "\\b\\f\\n\\r\\t");
  EXPECT_EQ(jsonEscaped(std::string("\x01\x1f", 2)), "\\u0001\\u001f");
  // UTF-8 multibyte sequences pass through untouched.
  EXPECT_EQ(jsonEscaped("r\xc3\xa9gion"), "r\xc3\xa9gion");
}

TEST(Trace, ChromeSinkNestsGcPausesInsideTheirPhase) {
  ChromeTraceSink Sink;
  PhaseProfile P;
  P.Name = "run";
  P.StartNanos = 10'000;
  P.WallNanos = 50'000;
  P.GcPauses.push_back({/*StartNanos=*/14'000, /*WallNanos=*/2'000,
                        /*Minor=*/true, /*CopiedWords=*/128,
                        /*LiveRegions=*/3});
  P.GcPauses.push_back({/*StartNanos=*/40'000, /*WallNanos=*/6'000,
                        /*Minor=*/false, /*CopiedWords=*/512,
                        /*LiveRegions=*/2});
  Sink.record(P);
  std::string J = Sink.json();
  // The pause events sit on the same pid/tid as the run span, offset
  // from the trace base (the run starts it at ts 0), so a viewer nests
  // them under the enclosing slice.
  EXPECT_NE(J.find("\"name\":\"gc:minor\",\"cat\":\"gc\",\"ph\":\"X\","
                   "\"ts\":4.000,\"dur\":2.000"),
            std::string::npos)
      << J;
  EXPECT_NE(J.find("\"name\":\"gc:major\",\"cat\":\"gc\",\"ph\":\"X\","
                   "\"ts\":30.000,\"dur\":6.000"),
            std::string::npos)
      << J;
  EXPECT_NE(J.find("\"copied_words\":128,\"live_regions\":3"),
            std::string::npos);
  EXPECT_NE(J.find("\"copied_words\":512,\"live_regions\":2"),
            std::string::npos);
  // Well-formedness proxy: still balanced after the nested events.
  EXPECT_EQ(std::count(J.begin(), J.end(), '{'),
            std::count(J.begin(), J.end(), '}'));
}

TEST(Trace, ChromeSinkAssignsOneTidPerThread) {
  ChromeTraceSink Sink;
  auto Record = [&Sink](const char *Name) {
    PhaseProfile P;
    P.Name = Name;
    Sink.record(P);
  };
  // Both threads alive at once: std::thread::id values may be reused
  // after a join, which would collapse the two tids into one.
  std::thread T1([&] { Record("a"); });
  std::thread T2([&] { Record("b"); });
  T1.join();
  T2.join();
  std::string J = Sink.json();
  EXPECT_NE(J.find("\"tid\":1"), std::string::npos);
  EXPECT_NE(J.find("\"tid\":2"), std::string::npos);
}

TEST(Trace, WriteFileRoundTripsAndFailsGracefully) {
  ChromeTraceSink Sink;
  PhaseProfile P;
  P.Name = "parse";
  P.WallNanos = 1'000;
  Sink.record(P);

  std::string Path = ::testing::TempDir() + "rml_trace_test.json";
  ASSERT_TRUE(Sink.writeFile(Path));
  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::ostringstream Got;
  Got << In.rdbuf();
  EXPECT_EQ(Got.str(), Sink.json() + "\n"); // file gets a final newline
  std::remove(Path.c_str());

  EXPECT_FALSE(Sink.writeFile("/nonexistent-dir-rml/trace.json"));
}

TEST(Trace, JsonFixedRendersLocaleIndependentNumbers) {
  EXPECT_EQ(jsonFixed(0.0), "0.000000");
  EXPECT_EQ(jsonFixed(0.5), "0.500000");
  EXPECT_EQ(jsonFixed(1.0), "1.000000");
  EXPECT_EQ(jsonFixed(-0.25), "-0.250000");
  EXPECT_EQ(jsonFixed(1.0 / 3.0), "0.333333");
  // Rounds, not truncates.
  EXPECT_EQ(jsonFixed(0.9999995), "1.000000");
}

TEST(Trace, JsonFixedClampsNonFiniteAndHugeValues) {
  // operator<< would spell these "nan"/"inf" — invalid JSON; jsonFixed
  // clamps instead so stats documents always parse.
  EXPECT_EQ(jsonFixed(std::numeric_limits<double>::quiet_NaN()), "0.000000");
  EXPECT_EQ(jsonFixed(std::numeric_limits<double>::infinity()), "0.000000");
  EXPECT_EQ(jsonFixed(-std::numeric_limits<double>::infinity()), "0.000000");
  EXPECT_EQ(jsonFixed(1e300), "1000000000000.000000");
  EXPECT_EQ(jsonFixed(-1e300), "-1000000000000.000000");
}

TEST(Stats, TenantKeysRenderSortedAndEscaped) {
  // The per-tenant block must render in sorted key order — Tenants is a
  // std::map precisely so two snapshots of the same state are the same
  // bytes, regardless of tenant arrival order — and tenant names are
  // user input, so they go through jsonEscaped like every other string.
  service::ServiceStats S;
  S.Tenants["zeta"] = {/*Admitted=*/3, /*Completed=*/2, /*Shed=*/1};
  S.Tenants["alpha"] = {/*Admitted=*/5, /*Completed=*/5, /*Shed=*/0};
  S.Tenants[""] = {/*Admitted=*/1, /*Completed=*/1, /*Shed=*/0};
  S.Tenants["with\"quote"] = {/*Admitted=*/1, /*Completed=*/0, /*Shed=*/0};
  std::string J = S.json();
  EXPECT_NE(
      J.find("\"tenants\":{"
             "\"\":{\"admitted\":1,\"completed\":1,\"shed\":0},"
             "\"alpha\":{\"admitted\":5,\"completed\":5,\"shed\":0},"
             "\"with\\\"quote\":{\"admitted\":1,\"completed\":0,\"shed\":0},"
             "\"zeta\":{\"admitted\":3,\"completed\":2,\"shed\":1}}"),
      std::string::npos)
      << J;
}

TEST(Stats, SaturationGaugesRenderInJson) {
  // The live gauges an operator polls from rmld's /stats endpoint:
  // queue depth, requests mid-worker, and uptime in whole seconds
  // (truncated, not rounded — 2.5 s of nanos reads as 2).
  service::ServiceStats S;
  S.QueueDepth = 3;
  S.InFlight = 2;
  S.UptimeNanos = 2'500'000'000ull;
  std::string J = S.json();
  EXPECT_NE(J.find("\"queue_depth\":3"), std::string::npos) << J;
  EXPECT_NE(J.find("\"in_flight\":2"), std::string::npos) << J;
  EXPECT_NE(J.find("\"uptime_seconds\":2"), std::string::npos) << J;
}

} // namespace
