//===- tests/support_test.cpp - Support library unit tests ----------------===//

#include "support/Diagnostics.h"
#include "support/Interner.h"

#include <gtest/gtest.h>

using namespace rml;

namespace {

TEST(Interner, InterningIsIdempotent) {
  Interner I;
  Symbol A = I.intern("foo");
  Symbol B = I.intern("foo");
  Symbol C = I.intern("bar");
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  EXPECT_EQ(I.text(A), "foo");
  EXPECT_EQ(I.text(C), "bar");
  EXPECT_EQ(I.size(), 2u);
}

TEST(Interner, FreshSymbolsNeverCollide) {
  Interner I;
  I.intern("x$0");
  Symbol F1 = I.fresh("x");
  Symbol F2 = I.fresh("x");
  EXPECT_NE(F1, F2);
  EXPECT_NE(I.text(F1), "x$0"); // the taken spelling is skipped
  EXPECT_NE(I.text(F1), I.text(F2));
}

TEST(Interner, InvalidSymbol) {
  Symbol S;
  EXPECT_FALSE(S.isValid());
  EXPECT_TRUE(Interner().intern("a").isValid());
}

TEST(Interner, ManySymbolsStayStable) {
  Interner I;
  std::vector<Symbol> Syms;
  for (int K = 0; K < 1000; ++K)
    Syms.push_back(I.intern("sym" + std::to_string(K)));
  for (int K = 0; K < 1000; ++K) {
    EXPECT_EQ(I.text(Syms[K]), "sym" + std::to_string(K));
    EXPECT_EQ(I.intern("sym" + std::to_string(K)), Syms[K]);
  }
}

TEST(Diagnostics, CountsAndRenders) {
  DiagnosticEngine D;
  EXPECT_FALSE(D.hasErrors());
  D.error({3, 7}, "something is off");
  D.warning({1, 1}, "suspicious");
  D.note({}, "context");
  EXPECT_TRUE(D.hasErrors());
  EXPECT_EQ(D.errorCount(), 1u);
  EXPECT_EQ(D.all().size(), 3u);
  std::string S = D.str();
  EXPECT_NE(S.find("3:7: error: something is off"), std::string::npos);
  EXPECT_NE(S.find("1:1: warning: suspicious"), std::string::npos);
  EXPECT_NE(S.find("note: context"), std::string::npos);
}

TEST(Diagnostics, ClearResets) {
  DiagnosticEngine D;
  D.error({1, 1}, "x");
  D.clear();
  EXPECT_FALSE(D.hasErrors());
  EXPECT_TRUE(D.all().empty());
}

TEST(SrcLoc, Rendering) {
  EXPECT_EQ(SrcLoc().str(), "<unknown>");
  EXPECT_EQ((SrcLoc{12, 34}).str(), "12:34");
  EXPECT_FALSE(SrcLoc().isValid());
  EXPECT_TRUE((SrcLoc{1, 1}).isValid());
}

} // namespace
