//===- tests/gc_safety_test.cpp - The paper's theorem, executable ----------===//
//
// The headline reproduction: the three programs for which the pre-paper
// discipline is unsound (Figure 1, the Figure 8 chain, the Section 4.4
// exception) run under all three strategies:
//
//   rg  : completes, with collections interleaved (Theorem 2);
//   rg- : the collector traces a pointer into a deallocated region —
//         the observable crash the paper reports from the MLKit;
//   r   : completes without a collector (dangling pointers permitted and
//         never dereferenced).
//
// Parameterised over GC thresholds: GC safety cannot depend on *when*
// collections happen.
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"

#include "bench/Programs.h"

#include <gtest/gtest.h>

using namespace rml;

namespace {

rt::RunResult runWith(const std::string &Src, Strategy S,
                      uint64_t ThresholdWords) {
  Compiler C;
  CompileOptions Opts;
  Opts.Strat = S;
  auto Unit = C.compile(Src, Opts);
  if (!Unit) {
    rt::RunResult R;
    R.Outcome = rt::RunOutcome::RuntimeError;
    R.Error = "compile failed: " + C.diagnostics().str();
    return R;
  }
  rt::EvalOptions E;
  E.GcThresholdWords = ThresholdWords;
  E.RetainReleasedPages = true; // exact dangling detection
  return C.run(*Unit, E);
}

struct Case {
  const char *Name;
  const std::string *Source;
};

class GcSafetyTest : public ::testing::TestWithParam<uint64_t> {
protected:
  static std::vector<Case> cases() {
    return {
        {"figure1", &bench::danglingPointerProgram()},
        {"figure8", &bench::spuriousChainProgram()},
        {"section44", &bench::exnDanglingProgram()},
    };
  }
};

TEST_P(GcSafetyTest, RgIsSafeAtEveryThreshold) {
  for (const Case &C : cases()) {
    rt::RunResult R = runWith(*C.Source, Strategy::Rg, GetParam());
    EXPECT_EQ(R.Outcome, rt::RunOutcome::Ok)
        << C.Name << " @ threshold " << GetParam() << ": " << R.Error;
  }
}

TEST_P(GcSafetyTest, RgMinusCrashesWithADanglingPointer) {
  for (const Case &C : cases()) {
    rt::RunResult R = runWith(*C.Source, Strategy::RgMinus, GetParam());
    EXPECT_EQ(R.Outcome, rt::RunOutcome::DanglingPointer)
        << C.Name << " @ threshold " << GetParam()
        << " unexpectedly survived (" << R.Error << ")";
    EXPECT_NE(R.Error.find("dangling"), std::string::npos);
  }
}

TEST_P(GcSafetyTest, TofteTalpinWithoutGcIsFine) {
  for (const Case &C : cases()) {
    rt::RunResult R = runWith(*C.Source, Strategy::R, GetParam());
    EXPECT_EQ(R.Outcome, rt::RunOutcome::Ok) << C.Name << ": " << R.Error;
    EXPECT_EQ(R.Heap.GcCount, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, GcSafetyTest,
                         ::testing::Values(512u, 2048u, 8192u));

TEST(GcSafetySuite, OrdinaryBenchmarksNeverCrashUnderRgMinus) {
  // The paper's point in Section 5: the unsoundness is real but rare —
  // none of the ordinary benchmarks expose it.
  for (const bench::BenchProgram &P : bench::benchmarkSuite()) {
    rt::RunResult R = runWith(P.Source, Strategy::RgMinus, 4096);
    EXPECT_EQ(R.Outcome, rt::RunOutcome::Ok) << P.Name << ": " << R.Error;
  }
}

TEST(GcSafetySuite, GcCountsAreNonTrivialForTheCrashPrograms) {
  // Make sure rg really interleaves collections (the safety claim is
  // vacuous otherwise).
  rt::RunResult R =
      runWith(bench::danglingPointerProgram(), Strategy::Rg, 512);
  ASSERT_EQ(R.Outcome, rt::RunOutcome::Ok) << R.Error;
  EXPECT_GT(R.Heap.GcCount, 3u);
}

TEST(GcSafetySuite, ResultsAgreeAcrossStrategiesWhereAllComplete) {
  // Where all three strategies complete, they compute the same value:
  // region annotation is semantically transparent.
  const char *Src =
      "fun compose fg = fn x => #1 fg (#2 fg x)\n"
      "fun g f = compose (let val x = f () in (fn _ => x, fn u => x) end)\n"
      "val h = g (fn u => \"oh\" ^ \"no\")\n"
      ";size (h ())";
  std::string Results[3];
  int I = 0;
  for (Strategy S : {Strategy::Rg, Strategy::RgMinus, Strategy::R}) {
    rt::RunResult R = runWith(Src, S, 4096);
    ASSERT_EQ(R.Outcome, rt::RunOutcome::Ok)
        << strategyName(S) << ": " << R.Error;
    Results[I++] = R.ResultText;
  }
  EXPECT_EQ(Results[0], Results[1]);
  EXPECT_EQ(Results[1], Results[2]);
  EXPECT_EQ(Results[0], "4");
}

} // namespace
