//===- tests/analyses_test.cpp - Region-representation analyses -----------===//
//
// The Section 4.2 analyses the type-system change must stay compatible
// with: multiplicity (finite vs infinite regions), dropping of pure
// get-regions, and region kinds for the partly tag-free representation.
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"

#include "bench/Programs.h"

#include <gtest/gtest.h>

using namespace rml;

namespace {

class AnalysesTest : public ::testing::Test {
protected:
  std::unique_ptr<CompiledUnit> compile(std::string_view Src) {
    auto Unit = C.compile(Src);
    EXPECT_NE(Unit, nullptr) << C.diagnostics().str();
    return Unit;
  }

  Compiler C;
};

TEST_F(AnalysesTest, SingleAllocationRegionsAreFinite) {
  // The dead pair has exactly one allocation site: a finite region.
  auto Unit = compile("#1 (1, 2) + 3");
  ASSERT_NE(Unit, nullptr);
  EXPECT_GE(Unit->Mult.finiteCount(), 1u);
}

TEST_F(AnalysesTest, AllocationUnderLambdaIsInfinite) {
  // Every cons cell of the accumulating loop goes into one region that
  // receives many allocations: infinite.
  auto Unit = compile(
      "fun build n = if n = 0 then nil else n :: build (n - 1)\n"
      "fun len xs = case xs of nil => 0 | _ :: t => 1 + len t\n"
      ";len (build 10)");
  ASSERT_NE(Unit, nullptr);
  for (const auto &[R, M] : Unit->Mult.Mult) {
    if (M == RegionMult::Finite) {
      EXPECT_GT(Unit->Mult.FiniteWords.at(R), 0u);
    }
  }
  // The list spine region is not finite.
  bool FoundInfinite = false;
  for (const auto &[R, M] : Unit->Mult.Mult)
    FoundInfinite |= M == RegionMult::Infinite;
  EXPECT_TRUE(FoundInfinite);
}

TEST_F(AnalysesTest, RegionKindsAreUniformWherePossible) {
  auto Unit = compile("fun build n = if n = 0 then nil "
                      "else (n, n) :: build (n - 1)\n"
                      "fun len xs = case xs of nil => 0 | _ :: t => 1 + len t\n"
                      ";len (build 5)");
  ASSERT_NE(Unit, nullptr);
  unsigned Pair = 0, Cons = 0;
  for (const auto &[R, K] : Unit->Kinds.Kinds) {
    Pair += K == RegionKind::Pair;
    Cons += K == RegionKind::Cons;
  }
  EXPECT_GE(Pair, 1u);
  EXPECT_GE(Cons, 1u);
}

TEST_F(AnalysesTest, MixedRegionsDetected) {
  // Force a pair and a string into one region through a conditional.
  auto Unit = compile(
      "fun pick b = if b then (fn u => (\"a\" ^ \"b\"; 1)) "
      "else (fn u => (#1 (1, 2)))\n"
      ";(pick true) ()");
  ASSERT_NE(Unit, nullptr);
  // Just require the analysis to produce kinds without contradiction:
  // every region has exactly one kind entry.
  for (const auto &[R, K] : Unit->Kinds.Kinds)
    EXPECT_NE(K, RegionKind::Empty);
}

TEST_F(AnalysesTest, PureGetFormalsAreDropped) {
  // len reads its list but never allocates into its regions: all its
  // formal regions are droppable.
  auto Unit = compile(
      "fun len xs = case xs of nil => 0 | _ :: t => 1 + len t\n"
      ";len [1, 2, 3]");
  ASSERT_NE(Unit, nullptr);
  EXPECT_GT(Unit->Drops.DroppedFormals, 0u);
}

TEST_F(AnalysesTest, PutFormalsAreKept) {
  // mkpair stores into its result region: that formal must be kept.
  auto Unit = compile("fun mkpair x = (x, x)\n;#1 (mkpair 3)");
  ASSERT_NE(Unit, nullptr);
  EXPECT_LT(Unit->Drops.DroppedFormals, Unit->Drops.TotalFormals);
}

TEST_F(AnalysesTest, DropStatisticsConsistent) {
  for (const char *Name : {"msort", "life", "hof"}) {
    auto Unit = compile(bench::findBenchmark(Name)->Source);
    ASSERT_NE(Unit, nullptr);
    EXPECT_LE(Unit->Drops.DroppedFormals, Unit->Drops.TotalFormals)
        << Name;
  }
}

TEST_F(AnalysesTest, KindPropagationThroughFormals) {
  // A function allocating pairs into its formal region: the actual
  // region at the call site must not be classified, say, Cons-only.
  auto Unit = compile("fun dup x = (x, x)\n"
                      "val a = dup 1\n"
                      "val b = dup 2\n"
                      ";#1 a + #1 b");
  ASSERT_NE(Unit, nullptr);
  // Run to make sure representation decisions are consistent end-to-end.
  rt::RunResult R = C.run(*Unit);
  ASSERT_EQ(R.Outcome, rt::RunOutcome::Ok) << R.Error;
  EXPECT_EQ(R.ResultText, "3");
}

TEST_F(AnalysesTest, FiniteRegionsReduceFootprint) {
  auto Unit = compile(bench::findBenchmark("mandel")->Source);
  ASSERT_NE(Unit, nullptr);
  rt::EvalOptions On, Off;
  On.UseFiniteRegions = true;
  Off.UseFiniteRegions = false;
  rt::RunResult ROn = C.run(*Unit, On);
  rt::RunResult ROff = C.run(*Unit, Off);
  ASSERT_EQ(ROn.Outcome, rt::RunOutcome::Ok) << ROn.Error;
  ASSERT_EQ(ROff.Outcome, rt::RunOutcome::Ok) << ROff.Error;
  EXPECT_EQ(ROn.ResultText, ROff.ResultText);
  // Exact-size blocks never exceed page-based footprint.
  EXPECT_LE(ROn.Heap.PeakHeapWords, ROff.Heap.PeakHeapWords);
}

} // namespace
