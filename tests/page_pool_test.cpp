//===- tests/page_pool_test.cpp - Cross-request page pool -----------------===//
//
// The rt::PagePool invariants: acquire/release/trim bookkeeping,
// capacity bounding, the oversized-page bypass, and the quarantine
// that keeps pooling and RetainReleasedPages exact dangling detection
// mutually exclusive. Labelled `pool` in ctest and expected to be
// clean under -DRML_SANITIZE=thread.
//
//===----------------------------------------------------------------------===//

#include "rt/PagePool.h"

#include "bench/Programs.h"
#include "core/Pipeline.h"
#include "rt/Region.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace rml;
using namespace rml::rt;

namespace {

std::unique_ptr<uint64_t[]> standardBuffer() {
  return std::make_unique<uint64_t[]>(RegionHeap::PageWords);
}

//===----------------------------------------------------------------------===//
// Pool-only invariants.
//===----------------------------------------------------------------------===//

TEST(PagePoolTest, AcquireOnEmptyPoolMisses) {
  PagePool Pool(8);
  EXPECT_EQ(Pool.acquire(), nullptr);
  PagePoolStats S = Pool.stats();
  EXPECT_EQ(S.AcquireHits, 0u);
  EXPECT_EQ(S.AcquireMisses, 1u);
  EXPECT_EQ(S.FreePages, 0u);
  EXPECT_EQ(S.reuseRatio(), 0.0);
}

TEST(PagePoolTest, ReleaseThenAcquireReturnsTheSameBuffer) {
  PagePool Pool(8);
  std::unique_ptr<uint64_t[]> Buf = standardBuffer();
  const uint64_t *Raw = Buf.get();
  Pool.release(std::move(Buf));
  EXPECT_EQ(Pool.freePages(), 1u);

  std::unique_ptr<uint64_t[]> Again = Pool.acquire();
  ASSERT_NE(Again, nullptr);
  EXPECT_EQ(Again.get(), Raw); // same thread => same shard => same page
  EXPECT_EQ(Pool.freePages(), 0u);

  PagePoolStats S = Pool.stats();
  EXPECT_EQ(S.AcquireHits, 1u);
  EXPECT_EQ(S.AcquireMisses, 0u);
  EXPECT_EQ(S.Releases, 1u);
  EXPECT_EQ(S.reuseRatio(), 1.0);
}

TEST(PagePoolTest, CapacityBoundsTheTotalAndCountsTrims) {
  PagePool Pool(4);
  for (int I = 0; I < 6; ++I)
    Pool.release(standardBuffer());
  EXPECT_EQ(Pool.freePages(), 4u); // never exceeds the bound
  PagePoolStats S = Pool.stats();
  EXPECT_EQ(S.Releases, 4u); // accepted
  EXPECT_EQ(S.Trims, 2u);    // dropped over capacity
  EXPECT_EQ(S.Capacity, 4u);
}

TEST(PagePoolTest, TrimFreesEverything) {
  PagePool Pool(8);
  for (int I = 0; I < 5; ++I)
    Pool.release(standardBuffer());
  ASSERT_EQ(Pool.freePages(), 5u);
  Pool.trim();
  EXPECT_EQ(Pool.freePages(), 0u);
  EXPECT_EQ(Pool.stats().Trims, 5u);
  EXPECT_EQ(Pool.acquire(), nullptr); // empty again
}

TEST(PagePoolTest, CountersStayConsistentUnderMixedTraffic) {
  PagePool Pool(16);
  uint64_t Hits = 0, Misses = 0, Releases = 0;
  for (int Round = 0; Round < 3; ++Round) {
    for (int I = 0; I < 4; ++I) {
      Pool.release(standardBuffer());
      ++Releases;
    }
    for (int I = 0; I < 6; ++I) {
      if (Pool.acquire())
        ++Hits;
      else
        ++Misses;
    }
  }
  PagePoolStats S = Pool.stats();
  EXPECT_EQ(S.AcquireHits, Hits);
  EXPECT_EQ(S.AcquireMisses, Misses);
  EXPECT_EQ(S.Releases, Releases);
  EXPECT_EQ(S.FreePages, Releases - Hits);
  EXPECT_EQ(S.AcquireHits + S.AcquireMisses, 18u);
}

TEST(PagePoolTest, PrewarmFillsToCapacityAndPinsZeroMisses) {
  PagePool Pool(8);
  EXPECT_EQ(Pool.prewarm(8), 8u);
  PagePoolStats S0 = Pool.stats();
  EXPECT_EQ(S0.Prewarmed, 8u);
  EXPECT_EQ(S0.FreePages, 8u);

  // The entire first wave of demand is served without one allocator
  // round-trip: eight hits, zero misses.
  for (int I = 0; I < 8; ++I)
    EXPECT_NE(Pool.acquire(), nullptr) << "page " << I;
  PagePoolStats S1 = Pool.stats();
  EXPECT_EQ(S1.AcquireHits, 8u);
  EXPECT_EQ(S1.AcquireMisses, 0u);
  EXPECT_EQ(S1.FreePages, 0u);

  // Only the ninth acquire — beyond what was prewarmed — misses.
  EXPECT_EQ(Pool.acquire(), nullptr);
  EXPECT_EQ(Pool.stats().AcquireMisses, 1u);
}

TEST(PagePoolTest, PrewarmRespectsTheCapacityBound) {
  PagePool Pool(4);
  EXPECT_EQ(Pool.prewarm(100), 4u); // clamped, not overshot
  EXPECT_EQ(Pool.freePages(), 4u);
  EXPECT_EQ(Pool.stats().Prewarmed, 4u);
  EXPECT_EQ(Pool.prewarm(1), 0u); // already full
  EXPECT_EQ(Pool.freePages(), 4u);

  // Prewarmed pages and released pages share the capacity accounting:
  // a release into the full pool is trimmed, not stacked on top.
  Pool.release(standardBuffer());
  EXPECT_EQ(Pool.freePages(), 4u);
  EXPECT_EQ(Pool.stats().Trims, 1u);
}

TEST(PagePoolTest, HomeShardTrafficNeverTakesTheMutex) {
  // The v2 contract: same-thread release/acquire pairs ride the
  // lock-free home-shard fast path; the pool's one mutex is reserved
  // for steal scans and trims.
  PagePool Pool(16);
  for (int I = 0; I < 8; ++I)
    Pool.release(standardBuffer());
  for (int I = 0; I < 8; ++I)
    EXPECT_NE(Pool.acquire(), nullptr);
  EXPECT_EQ(Pool.stats().LockAcquires, 0u);
  EXPECT_EQ(Pool.stats().Steals, 0u);
}

TEST(PagePoolTest, AcquireStealsFromOtherShardsBeforeMissing) {
  // prewarm spreads round-robin across this thread's node partition, so
  // with one page per shard all but the home shard's page must be
  // served by steal scans — each of which takes the mutex.
  PagePool Pool(PagePool::NumShards);
  ASSERT_EQ(Pool.prewarm(PagePool::NumShards), PagePool::NumShards);
  for (size_t I = 0; I < PagePool::NumShards; ++I)
    EXPECT_NE(Pool.acquire(), nullptr) << "page " << I;
  PagePoolStats S = Pool.stats();
  EXPECT_EQ(S.AcquireHits, PagePool::NumShards);
  EXPECT_EQ(S.AcquireMisses, 0u); // nothing missed while pages remained
  EXPECT_GT(S.Steals, 0u);
  EXPECT_GT(S.LockAcquires, 0u);
  EXPECT_EQ(S.FreePages, 0u);
}

TEST(PagePoolTest, AcquireManyOnEmptyPoolCountsOneMissPerSlot) {
  PagePool Pool(8);
  std::vector<std::unique_ptr<uint64_t[]>> Out;
  EXPECT_EQ(Pool.acquireMany(Out, 5), 0u);
  EXPECT_TRUE(Out.empty());
  PagePoolStats S = Pool.stats();
  EXPECT_EQ(S.BatchAcquires, 1u);
  EXPECT_EQ(S.AcquireMisses, 5u); // reuse ratio means the same batched
  EXPECT_EQ(S.AcquireHits, 0u);
}

TEST(PagePoolTest, BatchReleaseThenBatchAcquireRoundTrips) {
  PagePool Pool(16);
  std::vector<std::unique_ptr<uint64_t[]>> Bufs;
  for (int I = 0; I < 6; ++I)
    Bufs.push_back(standardBuffer());
  Pool.releaseMany(std::move(Bufs));
  PagePoolStats S0 = Pool.stats();
  EXPECT_EQ(S0.BatchReleases, 1u);
  EXPECT_EQ(S0.Releases, 6u); // accounted page-by-page
  EXPECT_EQ(S0.FreePages, 6u);

  std::vector<std::unique_ptr<uint64_t[]>> Out;
  EXPECT_EQ(Pool.acquireMany(Out, 6), 6u);
  ASSERT_EQ(Out.size(), 6u);
  for (const auto &B : Out)
    EXPECT_NE(B, nullptr);
  PagePoolStats S1 = Pool.stats();
  EXPECT_EQ(S1.AcquireHits, 6u);
  EXPECT_EQ(S1.AcquireMisses, 0u);
  EXPECT_EQ(S1.FreePages, 0u);
  // Same thread, same home shard: the whole round trip is lock-free.
  EXPECT_EQ(S1.LockAcquires, 0u);
}

TEST(PagePoolTest, BatchReleaseRespectsTheCapacityBound) {
  PagePool Pool(4);
  std::vector<std::unique_ptr<uint64_t[]>> Bufs;
  for (int I = 0; I < 7; ++I)
    Bufs.push_back(standardBuffer());
  Pool.releaseMany(std::move(Bufs));
  EXPECT_EQ(Pool.freePages(), 4u);
  PagePoolStats S = Pool.stats();
  EXPECT_EQ(S.Releases, 4u);
  EXPECT_EQ(S.Trims, 3u); // the overflow was freed, exactly as release()
}

TEST(PagePoolTest, AcquireManyPartialFillCountsTheShortfallAsMisses) {
  PagePool Pool(16);
  std::vector<std::unique_ptr<uint64_t[]>> Bufs;
  for (int I = 0; I < 3; ++I)
    Bufs.push_back(standardBuffer());
  Pool.releaseMany(std::move(Bufs));

  std::vector<std::unique_ptr<uint64_t[]>> Out;
  EXPECT_EQ(Pool.acquireMany(Out, 5), 3u);
  EXPECT_EQ(Out.size(), 3u);
  PagePoolStats S = Pool.stats();
  EXPECT_EQ(S.AcquireHits, 3u);
  EXPECT_EQ(S.AcquireMisses, 2u); // the caller allocates these fresh
}

TEST(PagePoolTest, ConcurrentTrimNeverLosesOrDoublesAPage) {
  // Trim storms against acquire/release traffic: the invariant checked
  // is conservation — every page that entered the pool left exactly
  // once (acquired or trimmed) or is still free at the end.
  PagePool Pool(64);
  std::atomic<bool> Stop{false};
  std::thread Trimmer([&] {
    while (!Stop.load(std::memory_order_relaxed))
      Pool.trim();
  });
  std::vector<std::thread> Workers;
  for (int T = 0; T < 4; ++T)
    Workers.emplace_back([&] {
      for (int I = 0; I < 2000; ++I) {
        Pool.release(standardBuffer());
        auto P = Pool.acquire(); // may hit or miss under the storm
      }
    });
  for (std::thread &W : Workers)
    W.join();
  Stop.store(true, std::memory_order_relaxed);
  Trimmer.join();

  PagePoolStats S = Pool.stats();
  EXPECT_EQ(S.Releases + S.Prewarmed,
            S.AcquireHits + (S.Trims - (8000 - S.Releases)) + S.FreePages)
      << "pages in != pages out (trims over capacity excluded)";
  EXPECT_LE(S.FreePages, Pool.capacity());
}

//===----------------------------------------------------------------------===//
// RegionHeap integration.
//===----------------------------------------------------------------------===//

TEST(PagePoolTest, HeapTeardownUsesOneBatchRelease) {
  PagePool Pool(64);
  {
    RegionHeap Heap;
    Heap.SharedPool = &Pool;
    uint32_t R = Heap.create(1, RegionKind::Mixed);
    for (int I = 0; I < 4; ++I)
      Heap.alloc(R, RegionHeap::PageWords);
    Heap.release(R);
  }
  PagePoolStats S = Pool.stats();
  EXPECT_GE(S.Releases, 4u);
  EXPECT_EQ(S.BatchReleases, 1u); // one shard touch per heap, not per page
}

TEST(PagePoolTest, HeapRecyclesStandardPagesAcrossHeaps) {
  PagePool Pool(64);
  {
    RegionHeap Heap;
    Heap.SharedPool = &Pool;
    uint32_t R = Heap.create(1, RegionKind::Mixed);
    for (int I = 0; I < 4; ++I)
      Heap.alloc(R, RegionHeap::PageWords); // one fresh page each
    EXPECT_GE(Heap.Stats.PagesAllocated, 4u);
    EXPECT_EQ(Heap.Stats.PagesFromSharedPool, 0u); // pool was empty
    Heap.release(R);
    // Released pages sit on the heap-local free list until teardown.
    EXPECT_EQ(Pool.freePages(), 0u);
  }
  // Heap destruction flushed the standard pages into the shared pool.
  EXPECT_GE(Pool.freePages(), 4u);

  RegionHeap Next;
  Next.SharedPool = &Pool;
  uint32_t R = Next.create(1, RegionKind::Mixed);
  for (int I = 0; I < 4; ++I)
    Next.alloc(R, RegionHeap::PageWords);
  EXPECT_EQ(Next.Stats.PagesFromSharedPool, 4u); // all demand reused
  EXPECT_EQ(Next.Stats.PagesAllocated, 0u);
  EXPECT_GT(Pool.stats().AcquireHits, 0u);
}

TEST(PagePoolTest, OversizedPagesBypassThePool) {
  PagePool Pool(64);
  {
    RegionHeap Heap;
    Heap.SharedPool = &Pool;
    uint32_t R = Heap.create(1, RegionKind::Mixed);
    // An allocation larger than a standard page gets an exact-size
    // oversized page; a finite region gets an exact-size small block.
    Heap.alloc(R, 4 * RegionHeap::PageWords);
    uint32_t F = Heap.create(2, RegionKind::Pair, /*FiniteWords=*/4);
    Heap.release(R);
    Heap.release(F);
  }
  // Neither the oversized nor the finite block entered the pool.
  EXPECT_EQ(Pool.freePages(), 0u);
  EXPECT_EQ(Pool.stats().Releases, 0u);
}

TEST(PagePoolTest, RetainReleasedPagesQuarantinesThePool) {
  PagePool Pool(64);
  // Seed the pool so a (wrongly) drawing heap would hit.
  Pool.release(standardBuffer());
  uint64_t SeedHits = Pool.stats().AcquireHits;
  {
    RegionHeap Heap;
    Heap.RetainReleasedPages = true;
    Heap.SharedPool = &Pool;
    uint32_t R = Heap.create(7, RegionKind::Mixed);
    uint64_t *P = Heap.alloc(R, 8);
    Heap.release(R);
    // Exact detection still attributes the released page to r7...
    std::optional<uint32_t> Grave = Heap.graveyardOwnerOf(P);
    ASSERT_TRUE(Grave.has_value());
    EXPECT_EQ(*Grave, 7u);
  }
  // ...and the pool saw no traffic from the detecting heap: no page
  // drawn (the seeded one is still there), none recycled at teardown.
  PagePoolStats S = Pool.stats();
  EXPECT_EQ(S.AcquireHits, SeedHits);
  EXPECT_EQ(S.Releases, 1u); // only the seed
  EXPECT_EQ(Pool.freePages(), 1u);
}

//===----------------------------------------------------------------------===//
// Through the pipeline.
//===----------------------------------------------------------------------===//

TEST(PagePoolTest, PooledRunsAreBitIdenticalToFreshHeapRuns) {
  const bench::BenchProgram *P = bench::findBenchmark("nrev");
  ASSERT_NE(P, nullptr);
  Compiler C;
  auto Unit = C.compile(P->Source);
  ASSERT_NE(Unit, nullptr) << C.diagnostics().str();

  rt::EvalOptions Fresh;
  Fresh.GcThresholdWords = 2048; // force collections
  rt::RunResult Base = C.run(*Unit, Fresh);
  ASSERT_EQ(Base.Outcome, rt::RunOutcome::Ok) << Base.Error;
  ASSERT_GT(Base.Heap.GcCount, 0u);

  PagePool Pool(256);
  for (int Rep = 0; Rep < 3; ++Rep) {
    rt::EvalOptions Pooled = Fresh;
    Pooled.SharedPool = &Pool;
    rt::RunResult R = C.run(*Unit, Pooled);
    ASSERT_EQ(R.Outcome, rt::RunOutcome::Ok) << R.Error;
    EXPECT_EQ(R.ResultText, Base.ResultText) << "rep " << Rep;
    EXPECT_EQ(R.Output, Base.Output) << "rep " << Rep;
    EXPECT_EQ(R.Heap.AllocWords, Base.Heap.AllocWords) << "rep " << Rep;
    EXPECT_EQ(R.Heap.GcCount, Base.Heap.GcCount) << "rep " << Rep;
    EXPECT_EQ(R.Steps, Base.Steps) << "rep " << Rep;
  }
  // The warm repetitions drew their pages from the pool.
  EXPECT_GT(Pool.stats().AcquireHits, 0u);
  EXPECT_LE(Pool.freePages(), Pool.capacity());
}

TEST(PagePoolTest, DanglingDetectionWinsOverThePoolThroughRun) {
  Compiler C;
  CompileOptions Opts;
  Opts.Strat = Strategy::RgMinus;
  auto Unit = C.compile(bench::danglingPointerProgram(), Opts);
  ASSERT_NE(Unit, nullptr) << C.diagnostics().str();

  PagePool Pool(64);
  rt::EvalOptions E;
  E.GcThresholdWords = 2048;
  E.RetainReleasedPages = true; // exact detection requested...
  E.SharedPool = &Pool;         // ...and a pool offered
  rt::RunResult R = C.run(*Unit, E);
  // The paper's crash is still reported exactly, and the pool was
  // quarantined for the whole run.
  EXPECT_EQ(R.Outcome, rt::RunOutcome::DanglingPointer) << R.Error;
  PagePoolStats S = Pool.stats();
  EXPECT_EQ(S.AcquireHits + S.AcquireMisses, 0u);
  EXPECT_EQ(S.Releases, 0u);
  EXPECT_EQ(Pool.freePages(), 0u);
}

} // namespace
